package lrcrace

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestDocLinksResolve audits every relative markdown link in README.md and
// docs/*.md: the target file must exist, and a #fragment must match a
// heading in the target (GitHub's slug rules). Docs grow by cross-linking
// — README → docs/SCALING.md → DETECTOR/PROTOCOL/ROBUSTNESS and back —
// and a renamed file or heading silently strands every link into it.
func TestDocLinksResolve(t *testing.T) {
	files := []string{"README.md"}
	docs, err := filepath.Glob(filepath.Join("docs", "*.md"))
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, docs...)
	if len(docs) == 0 {
		t.Fatal("no docs/*.md files found")
	}

	anchors := map[string]map[string]bool{} // file -> set of heading slugs
	headingRe := regexp.MustCompile(`(?m)^#{1,6}\s+(.+)$`)
	loadAnchors := func(path string) (map[string]bool, error) {
		if got, ok := anchors[path]; ok {
			return got, nil
		}
		b, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		set := map[string]bool{}
		for _, m := range headingRe.FindAllStringSubmatch(string(b), -1) {
			set[githubSlug(m[1])] = true
		}
		anchors[path] = set
		return set, nil
	}

	linkRe := regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)
	for _, src := range files {
		b, err := os.ReadFile(src)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range linkRe.FindAllStringSubmatch(string(b), -1) {
			target := m[1]
			if strings.Contains(target, "://") || strings.HasPrefix(target, "mailto:") {
				continue
			}
			path, frag, _ := strings.Cut(target, "#")
			resolved := src
			if path != "" {
				resolved = filepath.Join(filepath.Dir(src), path)
				if st, err := os.Stat(resolved); err != nil {
					t.Errorf("%s links to %q: %v", src, target, err)
					continue
				} else if st.IsDir() {
					continue // directory links have no anchors to check
				}
			}
			if frag == "" {
				continue
			}
			if !strings.HasSuffix(resolved, ".md") {
				continue // only markdown targets get heading-slug anchors
			}
			set, err := loadAnchors(resolved)
			if err != nil {
				t.Errorf("%s links to %q: %v", src, target, err)
				continue
			}
			if !set[frag] {
				t.Errorf("%s links to %q: no heading in %s slugs to #%s", src, target, resolved, frag)
			}
		}
	}
}

// githubSlug reduces a markdown heading to GitHub's anchor slug: inline
// markup stripped, lowercased, punctuation dropped, spaces to hyphens.
func githubSlug(heading string) string {
	// [text](url) -> text, then drop `, *, _ markup characters.
	heading = regexp.MustCompile(`\[([^\]]*)\]\([^)]*\)`).ReplaceAllString(heading, "$1")
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(heading)) {
		switch {
		case r >= 'a' && r <= 'z' || r >= '0' && r <= '9' || r == '_':
			b.WriteRune(r)
		case r == ' ' || r == '-':
			b.WriteRune('-')
		}
	}
	return b.String()
}
