package lrcrace_test

import (
	"fmt"

	"lrcrace"
)

// Example demonstrates the library's core flow: build a DSM with detection
// on, run a racy worker, and print the distinct races with variable names.
func Example() {
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs:   2,
		SharedSize: 8192,
		Detect:     true,
	})
	if err != nil {
		panic(err)
	}
	x, _ := sys.AllocWords("x", 1)
	y, _ := sys.AllocWords("y", 1)

	_ = sys.Run(func(p *lrcrace.Proc) {
		p.Write(x, uint64(p.ID())) // racy: no synchronization
		p.Lock(0)
		p.Write(y, p.Read(y)+1) // clean: lock-ordered
		p.Unlock(0)
		p.Barrier()
	})

	for _, r := range lrcrace.DedupRaces(sys.Races()) {
		sym, _ := sys.SymbolAt(r.Addr)
		kind := "read-write"
		if r.WriteWrite() {
			kind = "write-write"
		}
		fmt.Printf("%s race on %s\n", kind, sym.Name)
	}
	fmt.Printf("y = %d\n", sys.SnapshotWord(y))
	// Output:
	// write-write race on x
	// y = 2
}

// Example_firstRaces shows §6.4 filtering: only the earliest racy epoch's
// races are reported.
func Example_firstRaces() {
	sys, _ := lrcrace.New(lrcrace.Config{
		NumProcs:   2,
		SharedSize: 32 * 1024,
		Detect:     true,
		FirstOnly:  true,
	})
	a, _ := sys.Alloc("a", 8192) // separate pages
	b, _ := sys.Alloc("b", 8192)
	_ = sys.Run(func(p *lrcrace.Proc) {
		p.Write(a, uint64(p.ID()))
		p.Barrier() // first racy epoch
		p.Write(b, uint64(p.ID()))
		p.Barrier() // suppressed
	})
	for _, r := range lrcrace.DedupRaces(sys.Races()) {
		sym, _ := sys.SymbolAt(r.Addr)
		fmt.Println("race on", sym.Name)
	}
	// Output:
	// race on a
}
