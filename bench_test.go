// Benchmarks regenerating the paper's evaluation, one per table and figure,
// plus ablations of the design choices called out in DESIGN.md. Full-size
// reproduction output comes from cmd/benchtables; these testing.B benches
// run reduced inputs so `go test -bench=.` finishes in minutes and report
// the papers' headline metrics via ReportMetric.
package lrcrace_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"lrcrace"
	"lrcrace/internal/costmodel"
	"lrcrace/internal/harness"
	"lrcrace/internal/instr"
	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/vc"
)

const benchScale = 0.25 // reduced inputs for bench runs

// pairFor runs one baseline/detection pair and reports paper-shaped metrics.
func pairFor(b *testing.B, app string, procs int) (*harness.Result, *harness.Result) {
	b.Helper()
	scale := benchScale * harness.PaperScaleFactors[app]
	base, det, err := harness.Pair(harness.RunConfig{App: app, Scale: scale, Procs: procs})
	if err != nil {
		b.Fatal(err)
	}
	return base, det
}

// BenchmarkTable1 regenerates Table 1's slowdown and intervals-per-barrier
// columns per application.
func BenchmarkTable1(b *testing.B) {
	for _, app := range lrcrace.Apps() {
		b.Run(app, func(b *testing.B) {
			var slow, ipb float64
			for i := 0; i < b.N; i++ {
				base, det := pairFor(b, app, 4)
				slow = harness.Slowdown(base, det)
				ipb = det.IntervalsPerBarrier()
			}
			b.ReportMetric(slow, "slowdown")
			b.ReportMetric(ipb, "intervals/barrier")
		})
	}
}

// BenchmarkTable2 regenerates Table 2: the ATOM-model classifier over the
// synthesized application binaries.
func BenchmarkTable2(b *testing.B) {
	for _, app := range lrcrace.Apps() {
		prof := instr.PaperProfiles[app]
		b.Run(app, func(b *testing.B) {
			var elim float64
			for i := 0; i < b.N; i++ {
				st := instr.Classify(instr.Synthesize(prof))
				elim = st.PercentEliminated()
			}
			b.ReportMetric(elim, "%eliminated")
		})
	}
}

// BenchmarkTable3 regenerates Table 3's dynamic metrics per application.
func BenchmarkTable3(b *testing.B) {
	for _, app := range lrcrace.Apps() {
		b.Run(app, func(b *testing.B) {
			var iu, bu, mo float64
			for i := 0; i < b.N; i++ {
				_, det := pairFor(b, app, 4)
				iu = det.IntervalsUsedPct()
				bu = det.BitmapsUsedPct()
				mo = det.MsgOverheadPct()
			}
			b.ReportMetric(iu, "%intervals-used")
			b.ReportMetric(bu, "%bitmaps-used")
			b.ReportMetric(mo, "%msg-overhead")
		})
	}
}

// BenchmarkFigure3 regenerates Figure 3's overhead decomposition.
func BenchmarkFigure3(b *testing.B) {
	for _, app := range lrcrace.Apps() {
		b.Run(app, func(b *testing.B) {
			var o harness.Overheads
			for i := 0; i < b.N; i++ {
				base, det := pairFor(b, app, 4)
				o = harness.Breakdown(base, det)
			}
			b.ReportMetric(o.CVMMods, "%cvm-mods")
			b.ReportMetric(o.ProcCall, "%proc-call")
			b.ReportMetric(o.AccessCheck, "%access-check")
			b.ReportMetric(o.Intervals, "%intervals")
			b.ReportMetric(o.Bitmaps, "%bitmaps")
		})
	}
}

// BenchmarkFigure4 regenerates Figure 4: slowdown at 2, 4 and 8 processors.
func BenchmarkFigure4(b *testing.B) {
	for _, app := range lrcrace.Apps() {
		for _, procs := range []int{2, 4, 8} {
			b.Run(fmt.Sprintf("%s/procs=%d", app, procs), func(b *testing.B) {
				var slow float64
				for i := 0; i < b.N; i++ {
					base, det := pairFor(b, app, procs)
					slow = harness.Slowdown(base, det)
				}
				b.ReportMetric(slow, "slowdown")
			})
		}
	}
}

// --- ablations ---

// syntheticEpoch builds an epoch of interval records with random notices.
func syntheticEpoch(nproc, perProc, pages, noticeLen int, seed int64) []*interval.Record {
	r := rand.New(rand.NewSource(seed))
	var recs []*interval.Record
	for p := 0; p < nproc; p++ {
		for i := 1; i <= perProc; i++ {
			rec := &interval.Record{
				ID: vc.IntervalID{Proc: p, Index: vc.Index(i)},
				VC: vc.New(nproc),
			}
			rec.VC[p] = vc.Index(i)
			for k := 0; k < noticeLen; k++ {
				rec.WriteNotices = append(rec.WriteNotices, mem.PageID(r.Intn(pages)))
				rec.ReadNotices = append(rec.ReadNotices, mem.PageID(r.Intn(pages)))
			}
			interval.SortPages(rec.WriteNotices)
			interval.SortPages(rec.ReadNotices)
			recs = append(recs, rec)
		}
	}
	return recs
}

// BenchmarkAblationPageOverlap compares the two §6.2 page-list overlap
// implementations: sorted-list merge (default) versus system-page bitmaps.
func BenchmarkAblationPageOverlap(b *testing.B) {
	l, _ := mem.NewLayout(512*mem.DefaultPageSize, mem.DefaultPageSize)
	for _, noticeLen := range []int{4, 32, 128} {
		recs := syntheticEpoch(8, 8, 512, noticeLen, 42)
		b.Run(fmt.Sprintf("lists/notices=%d", noticeLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := race.NewDetector(l, race.Options{})
				d.BuildCheckList(recs)
			}
		})
		b.Run(fmt.Sprintf("bitmaps/notices=%d", noticeLen), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d := race.NewDetector(l, race.Options{PageBitmapOverlap: true, NumPages: 512})
				d.BuildCheckList(recs)
			}
		})
	}
}

// BenchmarkAblationProtocol compares the single-writer protocol the paper
// ran against the §6.5 multi-writer diff protocol, and the diff-derived
// write detection variant, on the Water workload.
func BenchmarkAblationProtocol(b *testing.B) {
	cfgs := []struct {
		name string
		cfg  harness.RunConfig
	}{
		{"single-writer", harness.RunConfig{App: "Water", Scale: 1, Procs: 4, Detect: true}},
		{"multi-writer", harness.RunConfig{App: "Water", Scale: 1, Procs: 4, Detect: true, Protocol: lrcrace.MultiWriter}},
		{"multi-writer-diff-detect", harness.RunConfig{App: "Water", Scale: 1, Procs: 4, Detect: true, Protocol: lrcrace.MultiWriter, WritesFromDiffs: true}},
	}
	for _, c := range cfgs {
		b.Run(c.name, func(b *testing.B) {
			var vt float64
			for i := 0; i < b.N; i++ {
				res, err := harness.Run(c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				vt = float64(res.VirtualNS) / 1e6
			}
			b.ReportMetric(vt, "virtual-ms")
		})
	}
}

// BenchmarkAblationFirstOnly measures the cost/benefit of §6.4 filtering on
// a many-epoch racy workload.
func BenchmarkAblationFirstOnly(b *testing.B) {
	run := func(b *testing.B, firstOnly bool) {
		var reports float64
		for i := 0; i < b.N; i++ {
			sys, err := lrcrace.New(lrcrace.Config{
				NumProcs: 4, SharedSize: 64 * 1024, PageSize: 1024,
				Detect: true, FirstOnly: firstOnly,
			})
			if err != nil {
				b.Fatal(err)
			}
			base, _ := sys.Alloc("arr", 64*1024-1024)
			if err := sys.Run(func(p *lrcrace.Proc) {
				for e := 0; e < 8; e++ {
					p.Write(base+lrcrace.Addr(e*1024), uint64(p.ID()))
					p.Barrier()
				}
			}); err != nil {
				b.Fatal(err)
			}
			reports = float64(len(sys.Races()))
		}
		b.ReportMetric(reports, "reports")
	}
	b.Run("all-races", func(b *testing.B) { run(b, false) })
	b.Run("first-only", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationLRCvsERC compares the lazy protocol against eager
// release consistency on a lock-intensive workload: messages per run and
// virtual time. The LRC advantage (no per-release broadcast) is the paper's
// §3.1 foundation.
func BenchmarkAblationLRCvsERC(b *testing.B) {
	run := func(b *testing.B, proto lrcrace.Protocol) {
		var msgs, vms float64
		for i := 0; i < b.N; i++ {
			sys, err := lrcrace.New(lrcrace.Config{
				NumProcs: 4, SharedSize: 16 * 1024, Protocol: proto,
			})
			if err != nil {
				b.Fatal(err)
			}
			ctr, _ := sys.AllocWords("ctr", 1)
			if err := sys.Run(func(p *lrcrace.Proc) {
				for k := 0; k < 25; k++ {
					p.Lock(1)
					p.Write(ctr, p.Read(ctr)+1)
					p.Unlock(1)
				}
			}); err != nil {
				b.Fatal(err)
			}
			msgs = float64(sys.NetStats().TotalMessages())
			vms = float64(sys.VirtualTime()) / 1e6
		}
		b.ReportMetric(msgs, "messages")
		b.ReportMetric(vms, "virtual-ms")
	}
	b.Run("lrc-single-writer", func(b *testing.B) { run(b, lrcrace.SingleWriter) })
	b.Run("eager-rc", func(b *testing.B) { run(b, lrcrace.EagerRC) })
}

// BenchmarkAblationOnlineVsPostmortem measures what the paper's online
// approach eliminates: the per-access storage of the post-mortem trace
// pipeline (§7), alongside the online run on the same workload.
func BenchmarkAblationOnlineVsPostmortem(b *testing.B) {
	workload := func(sys *lrcrace.System) (lrcrace.Addr, func(p *lrcrace.Proc)) {
		racy, _ := sys.AllocWords("racy", 1)
		locked, _ := sys.AllocWords("locked", 1)
		return racy, func(p *lrcrace.Proc) {
			for i := 0; i < 20; i++ {
				p.Lock(0)
				p.Write(locked, p.Read(locked)+1)
				p.Unlock(0)
				p.Write(racy, uint64(p.ID()))
				p.Barrier()
			}
		}
	}
	b.Run("online", func(b *testing.B) {
		var n float64
		for i := 0; i < b.N; i++ {
			sys, err := lrcrace.New(lrcrace.Config{NumProcs: 4, SharedSize: 16 * 1024, Detect: true})
			if err != nil {
				b.Fatal(err)
			}
			_, w := workload(sys)
			if err := sys.Run(w); err != nil {
				b.Fatal(err)
			}
			n = float64(len(lrcrace.DedupRaces(sys.Races())))
		}
		b.ReportMetric(n, "distinct-races")
		b.ReportMetric(0, "trace-bytes")
	})
	b.Run("postmortem", func(b *testing.B) {
		var n, sz float64
		for i := 0; i < b.N; i++ {
			var log bytes.Buffer
			tw, err := lrcrace.NewTraceWriter(&log, 4)
			if err != nil {
				b.Fatal(err)
			}
			sys, err := lrcrace.New(lrcrace.Config{NumProcs: 4, SharedSize: 16 * 1024, Tracer: tw})
			if err != nil {
				b.Fatal(err)
			}
			_, w := workload(sys)
			if err := sys.Run(w); err != nil {
				b.Fatal(err)
			}
			if err := tw.Flush(); err != nil {
				b.Fatal(err)
			}
			addrs, err := lrcrace.AnalyzeTrace(bytes.NewReader(log.Bytes()))
			if err != nil {
				b.Fatal(err)
			}
			n = float64(len(addrs))
			sz = float64(tw.Bytes())
		}
		b.ReportMetric(n, "distinct-races")
		b.ReportMetric(sz, "trace-bytes")
	})
}

// --- microbenchmarks of the constant-time primitives the paper leans on ---

// BenchmarkVectorConcurrencyCheck: the two-integer-comparison concurrency
// test at the heart of the detector.
func BenchmarkVectorConcurrencyCheck(b *testing.B) {
	a := vc.IntervalID{Proc: 0, Index: 5}
	c := vc.IntervalID{Proc: 1, Index: 7}
	avc := vc.VC{5, 2, 9, 1}
	cvc := vc.VC{4, 7, 3, 0}
	for i := 0; i < b.N; i++ {
		if !vc.Concurrent(a, avc, c, cvc) {
			b.Fatal("should be concurrent")
		}
	}
}

// BenchmarkBitmapCompare: the word-bitmap intersection (constant in page
// size) that decides false versus true sharing.
func BenchmarkBitmapCompare(b *testing.B) {
	x := mem.NewBitmap(1024)
	y := mem.NewBitmap(1024)
	for i := 0; i < 1024; i += 7 {
		x.Set(i)
	}
	for i := 3; i < 1024; i += 11 {
		y.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x.Intersects(y)
	}
}

// BenchmarkMessageRoundTrip: wire encode+decode of a notice-carrying
// message (the bandwidth unit behind Table 3).
func BenchmarkMessageRoundTrip(b *testing.B) {
	rec := &interval.Record{
		ID:           vc.IntervalID{Proc: 3, Index: 17},
		VC:           vc.VC{1, 2, 3, 17, 0, 0, 0, 9},
		WriteNotices: []mem.PageID{2, 9, 77},
		ReadNotices:  []mem.PageID{1, 2, 3, 50, 51, 52, 53},
	}
	m := &msg.AcquireGrant{Lock: 5, Intervals: []*interval.Record{rec, rec, rec}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := msg.Marshal(m)
		if _, err := msg.Unmarshal(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAccessCheck: the runtime analysis-routine bounds check that every
// instrumented access pays (the "Access Check" column of Figure 3). The
// virtual-time model charges it at costmodel.Default().AccessCheck.
func BenchmarkAccessCheck(b *testing.B) {
	c := &instr.Checker{Lo: 1 << 16, Hi: 1 << 24}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Check(uint64(i) * 64)
	}
	_ = costmodel.Default()
}

// BenchmarkAblationPairScan compares the paper's simple all-pairs interval
// scan with the index-pruned variant, on epochs where lock chains order
// most pairs (the situation the paper says makes "the number of comparisons
// usually quite small").
func BenchmarkAblationPairScan(b *testing.B) {
	l, _ := mem.NewLayout(512*mem.DefaultPageSize, mem.DefaultPageSize)
	// Chained epoch: proc p's interval i has seen everything up to (p,i).
	mkChained := func(nproc, perProc int) []*interval.Record {
		var recs []*interval.Record
		cur := vc.New(nproc)
		for i := 1; i <= perProc; i++ {
			for p := 0; p < nproc; p++ {
				cur[p] = vc.Index(i)
				recs = append(recs, &interval.Record{
					ID: vc.IntervalID{Proc: p, Index: vc.Index(i)},
					VC: cur.Copy(),
				})
			}
		}
		return recs
	}
	for _, shape := range []struct {
		name string
		recs []*interval.Record
	}{
		{"chained-8x32", mkChained(8, 32)},
		{"independent-8x32", syntheticEpoch(8, 32, 512, 2, 7)},
	} {
		b.Run("all-pairs/"+shape.name, func(b *testing.B) {
			var cmp float64
			for i := 0; i < b.N; i++ {
				d := race.NewDetector(l, race.Options{})
				d.BuildCheckList(shape.recs)
				cmp = float64(d.Stats().PairComparisons)
			}
			b.ReportMetric(cmp, "comparisons")
		})
		b.Run("pruned/"+shape.name, func(b *testing.B) {
			var cmp float64
			for i := 0; i < b.N; i++ {
				d := race.NewDetector(l, race.Options{PrunedPairs: true})
				d.BuildCheckList(shape.recs)
				cmp = float64(d.Stats().PairComparisons)
			}
			b.ReportMetric(cmp, "comparisons")
		})
	}
}
