module lrcrace

go 1.22
