// Command racefind runs one of the paper's benchmark applications on the
// LRC DSM with on-the-fly race detection and prints every distinct race
// with its shared-variable name, plus the detector's work statistics —
// the tool-shaped version of the paper's §5 experiments.
//
// Usage:
//
//	racefind -app TSP -procs 8
//	racefind -app Water -procs 4 -protocol mw
//	racefind -frontend go -app KV -racy        # Go-native frontend (docs/GOFRONT.md)
//	racefind -frontend go -app Sessions -hot-skew 0.8
//	racefind -app SOR -first
//	racefind -app Water -trace water.trc     # also write a post-mortem log
//	racefind -analyze water.trc              # offline analysis of a log
//	racefind -app TSP -trace-out tsp.json    # Chrome/Perfetto cluster timeline
//	racefind -app TSP -metrics-out tsp.prom  # Prometheus-style metrics
//	racefind -app TSP -flight-recorder 256   # dump last events on failure
//	racefind -app TSP -barrier-timeout 30s   # abort (and dump) a stalled barrier
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"os"
	"strings"

	"lrcrace"
	"lrcrace/cmd/internal/cli"
)

func main() {
	app := flag.String("app", "TSP", "application: FFT, SOR, TSP, Water; with -frontend go: KV, Sessions")
	frontend := flag.String("frontend", "", "execution frontend: dsm (default) or go (Go-native happens-before frontend)")
	racy := flag.Bool("racy", false, "go frontend: plant the workload's racy fast path")
	hotSkew := flag.Float64("hot-skew", 0, "go frontend: fraction of reads hitting the hot keys (0 = uniform)")
	ops := flag.Int("ops", 0, "go frontend: operations per client goroutine (0 = workload default)")
	seed := flag.Int64("seed", 0, "go frontend: workload traffic seed")
	procs := flag.Int("procs", 8, "number of DSM processes (go frontend: client goroutines)")
	scale := flag.Float64("scale", 1, "problem scale (1 = laptop default)")
	protocol := flag.String("protocol", "sw", "coherence protocol: sw (single-writer) or mw (multi-writer)")
	first := flag.Bool("first", false, "report only first races (§6.4)")
	diffs := flag.Bool("diff-writes", false, "derive write bitmaps from diffs (§6.5; implies -protocol mw)")
	explain := flag.Bool("explain", false, "print the happens-before derivation for each distinct race")
	traceOut := flag.String("trace", "", "also write a post-mortem trace log to this file (§7 baseline)")
	analyze := flag.String("analyze", "", "skip running: analyze an existing trace log offline")
	chromeOut := flag.String("trace-out", "", "write the run's protocol events as Chrome trace-event JSON (open in Perfetto or chrome://tracing)")
	metricsOut := flag.String("metrics-out", "", "write the run's metrics in Prometheus text format")
	flight := flag.Int("flight-recorder", 0, "arm the flight recorder: dump the last N events to stderr if the run fails (0 = off)")
	barrierTimeout := flag.Duration("barrier-timeout", 0, "abort if a barrier round stalls this long in real time (trips the flight recorder; 0 = wait forever)")
	metricsAddr := flag.String("metrics-addr", "", "serve the run's live metrics as Prometheus text on this address under /metrics")
	flag.Parse()

	if *analyze != "" {
		f, err := os.Open(*analyze)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		addrs, err := lrcrace.AnalyzeTrace(f)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("post-mortem analysis of %s: %d racy address(es)\n", *analyze, len(addrs))
		for _, a := range addrs {
			fmt.Printf("  0x%x\n", uint64(a))
		}
		return
	}

	cfg := lrcrace.ExperimentConfig{
		App:                canonical(*app, *frontend),
		Frontend:           *frontend,
		Scale:              *scale,
		Procs:              *procs,
		Detect:             true,
		FirstOnly:          *first,
		BarrierWallTimeout: *barrierTimeout,
	}
	if *frontend == "go" {
		cfg.Racy = *racy
		cfg.HotKeySkew = *hotSkew
		cfg.OpsPerClient = *ops
		cfg.Seed = *seed
		cfg.FirstOnly = false
		cfg.BarrierWallTimeout = 0
	}
	if *protocol == "mw" || *diffs {
		cfg.Protocol = lrcrace.MultiWriter
	}
	cfg.WritesFromDiffs = *diffs

	if *metricsAddr != "" {
		// A live endpoint needs the recorder handle before the run starts,
		// so build it here (handle-scoped — nothing global) and serve its
		// registry while the experiment executes.
		rec := lrcrace.NewTelemetryRecorder(lrcrace.TelemetryConfig{FlightN: *flight, Procs: *procs})
		cfg.Recorder = rec
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			log.Fatal(err)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			rec.Metrics().WriteProm(w)
		})
		go http.Serve(ln, mux)
		fmt.Printf("live metrics: http://%s/metrics\n", ln.Addr())
	} else if *chromeOut != "" || *metricsOut != "" || *flight > 0 {
		cfg.Telemetry = &lrcrace.TelemetryConfig{FlightN: *flight}
	}

	var tw *lrcrace.TraceWriter
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			log.Fatal(err)
		}
		tw, err = lrcrace.NewTraceWriter(f, *procs)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Tracer = tw
	}

	if *frontend == "go" && (*traceOut != "" || *diffs || *protocol == "mw" || *first) {
		log.Fatal("racefind: -trace, -diff-writes, -first, and -protocol mw apply to the dsm frontend only")
	}

	res, err := lrcrace.RunExperiment(cfg)
	if err != nil {
		// If the flight recorder was armed, its dump already went to stderr
		// at the moment of failure.
		log.Fatal(err)
	}
	if rec := res.Telemetry; rec != nil {
		if *chromeOut != "" {
			writeFile(*chromeOut, rec.WriteChromeTrace)
			fmt.Printf("chrome trace: %s (%d procs + system track; load in Perfetto)\n", *chromeOut, rec.Procs())
		}
		if *metricsOut != "" {
			writeFile(*metricsOut, rec.Metrics().WriteProm)
			fmt.Printf("metrics: %s\n", *metricsOut)
		}
	}
	if tw != nil {
		if err := tw.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace log: %s (%d events, %d bytes)\n", *traceOut, tw.Events(), tw.Bytes())
	}

	if gf := res.GoFront; gf != nil {
		fmt.Printf("%s on %d goroutines, go frontend (seed %d, hot-skew %g, racy %v)\n",
			cfg.App, gf.NumGs, cfg.Seed, cfg.HotKeySkew, cfg.Racy)
		fmt.Printf("virtual runtime %.1f ms\n\n", float64(res.VirtualNS)/1e6)
		distinct := lrcrace.DedupRaces(res.Races)
		if len(distinct) == 0 {
			fmt.Println("no data races detected")
		} else {
			fmt.Printf("%d dynamic race reports, %d distinct:\n", len(res.Races), len(distinct))
			for _, r := range distinct {
				name := fmt.Sprintf("0x%x", uint64(r.Addr))
				if sym, ok := gf.SymbolAt(r.Addr); ok {
					name = sym
				}
				kind := "read-write"
				if r.WriteWrite() {
					kind = "write-write"
				}
				fmt.Printf("  %-11s race on %-14q (addr 0x%x, epoch %d)\n",
					kind, name, uint64(r.Addr), r.Epoch)
			}
		}
		s := gf.Stats
		fmt.Printf("\nfrontend: %d goroutines, %d loads, %d stores, %d sync ops\n",
			s.Goroutines, s.Loads, s.Stores, s.Syncs)
		fmt.Printf("detector: %d intervals, %d pairs examined, %d concurrent,\n",
			s.Intervals, s.PairsExamined, s.ConcurrentPairs)
		fmt.Printf("          %d bitmaps compared, %d word overlaps, %d records GCed\n",
			s.BitmapsCompared, s.WordOverlaps, s.RecordsGCed)
		return
	}

	fmt.Printf("%s (%s, %s) on %d processes, %s protocol\n",
		res.App.Name(), res.App.InputDesc(), res.App.SyncKinds(),
		*procs, cfg.Protocol)
	fmt.Printf("result verified; virtual runtime %.1f ms\n\n",
		float64(res.VirtualNS)/1e6)

	distinct := lrcrace.DedupRaces(res.Races)
	if len(distinct) == 0 {
		fmt.Println("no data races detected")
	} else {
		fmt.Printf("%d dynamic race reports, %d distinct:\n", len(res.Races), len(distinct))
		for _, r := range distinct {
			name := fmt.Sprintf("0x%x", uint64(r.Addr))
			if sym, ok := res.Sys.SymbolAt(r.Addr); ok {
				name = sym.Name
			}
			kind := "read-write"
			if r.WriteWrite() {
				kind = "write-write"
			}
			fmt.Printf("  %-11s race on %-10q (addr 0x%x, epoch %d)\n",
				kind, name, uint64(r.Addr), r.Epoch)
			if *explain {
				if text, ok := res.Sys.ExplainRace(r); ok {
					fmt.Println(indent(text, "      "))
				}
			}
		}
	}

	d := res.Det
	fmt.Printf("\ndetector: %d epochs, %d intervals, %d vector comparisons,\n",
		d.Epochs, d.IntervalsTotal, d.PairComparisons)
	fmt.Printf("          %d concurrent pairs, %d with page overlap, %d bitmaps compared\n",
		d.ConcurrentPairs, d.OverlappingPairs, d.BitmapsCompared)
	if d.SuppressedReports > 0 {
		fmt.Printf("          %d later-epoch reports suppressed by first-race filtering\n", d.SuppressedReports)
	}
}

func writeFile(path string, write func(io.Writer) error) {
	if err := cli.WriteFile(path, write); err != nil {
		log.Fatal(err)
	}
}

func indent(text, prefix string) string {
	lines := strings.Split(strings.TrimRight(text, "\n"), "\n")
	for i, l := range lines {
		lines[i] = prefix + l
	}
	return strings.Join(lines, "\n")
}

func canonical(app, frontend string) string {
	names := lrcrace.Apps()
	if frontend == "go" {
		names = lrcrace.GoWorkloads()
	}
	for _, a := range names {
		if strings.EqualFold(a, app) {
			return a
		}
	}
	fmt.Fprintf(os.Stderr, "unknown app %q for frontend %q (have %v)\n", app, frontend, names)
	os.Exit(2)
	return ""
}
