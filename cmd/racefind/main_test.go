package main

import "testing"

func TestIndent(t *testing.T) {
	got := indent("a\nb\n", "> ")
	if got != "> a\n> b" {
		t.Errorf("indent = %q", got)
	}
	if got := indent("x", "  "); got != "  x" {
		t.Errorf("single line = %q", got)
	}
}

func TestCanonical(t *testing.T) {
	for in, want := range map[string]string{
		"tsp": "TSP", "TSP": "TSP", "water": "Water", "fft": "FFT", "sor": "SOR",
	} {
		if got := canonical(in, ""); got != want {
			t.Errorf("canonical(%q) = %q, want %q", in, got, want)
		}
	}
	for in, want := range map[string]string{"kv": "KV", "KV": "KV", "sessions": "Sessions"} {
		if got := canonical(in, "go"); got != want {
			t.Errorf("canonical(%q, go) = %q, want %q", in, got, want)
		}
	}
}
