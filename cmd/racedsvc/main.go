// Command racedsvc is the long-running detection service: a multi-tenant
// HTTP front end over the race-detection harness. Clients POST run
// requests to open sessions; each session executes its own System with a
// dedicated scoped telemetry recorder under admission control (a bounded
// concurrent-session pool with a bounded queue and per-session wall
// deadline). Race reports, crash/recovery milestones, and flight-recorder
// trips land in an append-only report store that clients tail live over
// SSE or long-poll. See docs/SERVICE.md.
//
// Usage:
//
//	racedsvc -addr :8321
//	racedsvc -addr :8321 -max-sessions 8 -queue 128 -session-timeout 5m
//	racedsvc -addr :8321 -data /var/lib/racedsvc        # durable report store
//	racedsvc -addr :8321 -tenant-max-active 4           # per-tenant quotas
//
// Then:
//
//	curl -s localhost:8321/healthz
//	curl -s -X POST localhost:8321/sessions -d '{"app":"TSP","procs":4}'
//	curl -s localhost:8321/reports/stream?since=0
//	sweeprun -apps TSP,Water -procs 2,4 -remote localhost:8321
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lrcrace/cmd/internal/cli"
	"lrcrace/internal/service"
)

func main() {
	addr := flag.String("addr", ":8321", "listen address")
	maxSessions := flag.Int("max-sessions", 4, "sessions run concurrently")
	queue := flag.Int("queue", 64, "admitted sessions waiting for a slot before submissions get 503")
	sessionTimeout := flag.Duration("session-timeout", 2*time.Minute, "per-session wall deadline")
	storeCap := flag.Int("store-cap", service.DefaultStoreCap, "report-store retention (records)")
	subBuf := flag.Int("subscriber-buf", service.DefaultSubscriberBuf, "per-subscriber buffer (records)")
	keepDone := flag.Int("keep-done", 1024, "finished sessions kept queryable")
	grace := flag.Duration("grace", 10*time.Second, "shutdown grace for in-flight HTTP requests")
	dataDir := flag.String("data", "", "durable report-store directory: records persist to a content-addressed segment log and replay on restart (empty = in-memory only)")
	storeSync := flag.Int("store-sync", 1, "fsync the report log every N records (1 = every record durable before the append returns; negative = only on shutdown)")
	tenantMaxActive := flag.Int("tenant-max-active", 0, "per-tenant cap on queued+running sessions; beyond it that tenant gets 429 (0 = unlimited)")
	tenantMaxQueued := flag.Int("tenant-max-queued", 0, "per-tenant cap on queued sessions (0 = unlimited)")
	flag.Parse()

	svc, replay, err := service.Open(service.Config{
		MaxSessions:     *maxSessions,
		QueueDepth:      *queue,
		SessionTimeout:  *sessionTimeout,
		StoreCap:        *storeCap,
		SubscriberBuf:   *subBuf,
		KeepDone:        *keepDone,
		DataDir:         *dataDir,
		StoreSyncEvery:  *storeSync,
		TenantMaxActive: *tenantMaxActive,
		TenantMaxQueued: *tenantMaxQueued,
	})
	if err != nil {
		log.Fatalf("racedsvc: opening report store: %v", err)
	}
	if *dataDir != "" {
		fmt.Printf("report store: durable at %s (%d records replayed, resuming at seq %d)\n",
			*dataDir, replay.Records, replay.LastSeq+1)
		if replay.Truncation != "" {
			fmt.Fprintf(os.Stderr, "racedsvc: WARNING: %s\n", replay.Truncation)
		}
	}
	// WriteTimeout 0: /reports/stream subscribers hold their response open
	// for as long as they like; per-write deadlines would cut them off.
	srv, bound, err := cli.Serve(*addr, cli.Mux(svc.Handler()), 0)
	if err != nil { // svc.Close syncs the report log even on listen failure
		svc.Close()
		log.Fatal(err)
	}
	fmt.Printf("racedsvc on http://%s: POST /sessions, GET /reports[/stream], /metrics, /healthz, /version\n", bound)
	fmt.Printf("pool: %d concurrent sessions, queue depth %d, %v per-session deadline\n",
		*maxSessions, *queue, *sessionTimeout)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()

	// Shutdown order: close the service first so new submissions get a typed
	// shutting_down rejection while in-flight sessions drain, then drain the
	// HTTP side (streaming subscribers are cut when the grace expires).
	fmt.Println("racedsvc: shutting down (draining running sessions)")
	svc.Close()
	if err := cli.Shutdown(srv, *grace); err != nil {
		fmt.Fprintf(os.Stderr, "racedsvc: forced shutdown: %v\n", err)
	}
}
