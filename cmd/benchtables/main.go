// Command benchtables regenerates every table and figure of the paper's
// evaluation: Table 1 (application characteristics and slowdown), Table 2
// (static instrumentation statistics), Table 3 (dynamic metrics), Figure 3
// (overhead breakdown) and Figure 4 (slowdown versus processors), plus the
// §5 race findings. Paper reference values are printed alongside.
//
// Usage:
//
//	benchtables                # everything, paper-scale inputs, 8 procs
//	benchtables -table 2       # just the static classifier table
//	benchtables -figure 4 -procs 2,4,8
//	benchtables -scale 0.25    # quick small-input pass
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"lrcrace"
	"lrcrace/cmd/internal/cli"
)

func main() {
	scale := flag.Float64("scale", 1, "problem scale multiplier (1 = near-paper inputs)")
	procs := flag.Int("procs", 8, "processes for tables 1/3 and figure 3")
	table := flag.Int("table", 0, "print only this table (1, 2 or 3)")
	figure := flag.Int("figure", 0, "print only this figure (3 or 4)")
	races := flag.Bool("races", false, "print only the race findings")
	enhance := flag.Bool("enhancements", false, "print only the §6.5 enhancement predictions")
	shardCmp := flag.Bool("shardcompare", false, "print only the serial-vs-sharded barrier check comparison")
	treeCmp := flag.Bool("treecompare", false, "print only the flat-vs-combining-tree barrier comparison")
	figProcs := flag.String("figprocs", "2,4,8", "processor counts for figure 4")
	shardProcs := flag.String("shardprocs", "4,8", "processor counts for -shardcompare")
	treeProcs := flag.String("treeprocs", "8,16,32,64", "processor counts for -treecompare")
	treeArity := flag.Int("treearity", 2, "combining-tree arity for -treecompare")
	metricsOut := flag.String("metrics-out", "", "also write machine-readable metrics JSON (per-app baseline/detect snapshots) to this file")
	canonical := flag.Bool("canonical", false, "strip wall-clock-dependent series from -metrics-out (byte-deterministic for deterministic apps)")
	prefill := flag.Int("prefill", 0, "run up to N application pairs concurrently before printing (0 = sequential)")
	flag.Parse()

	suite := lrcrace.NewSuite(*scale, *procs)
	suite.Canonical = *canonical
	if *prefill > 0 {
		if err := suite.Prefill(*prefill); err != nil {
			log.Fatalf("prefill: %v", err)
		}
	}
	all := *table == 0 && *figure == 0 && !*races && !*enhance && !*shardCmp && !*treeCmp

	out := os.Stdout
	run := func(name string, f func() error) {
		if err := f(); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		fmt.Fprintln(out)
	}

	if all || *table == 1 {
		run("table 1", func() error { return suite.Table1(out) })
	}
	if all || *table == 2 {
		lrcrace.WriteTable2(out)
		fmt.Fprintln(out)
	}
	if all || *table == 3 {
		run("table 3", func() error { return suite.Table3(out) })
	}
	if all || *figure == 3 {
		run("figure 3", func() error { return suite.Figure3(out) })
	}
	if all || *figure == 4 {
		counts, err := cli.Ints(*figProcs, 1)
		if err != nil {
			log.Fatalf("-figprocs: %v", err)
		}
		run("figure 4", func() error { return suite.Figure4(out, counts) })
	}
	if all || *races {
		run("races", func() error { return suite.RacesReport(out) })
	}
	if all || *enhance {
		run("enhancements", func() error { return suite.EnhancementsTable(out) })
	}
	if *shardCmp {
		counts, err := cli.Ints(*shardProcs, 2)
		if err != nil {
			log.Fatalf("-shardprocs: %v", err)
		}
		run("shardcompare", func() error { return suite.ShardCompareTable(out, counts) })
	}
	if *treeCmp {
		counts, err := cli.Ints(*treeProcs, 2)
		if err != nil {
			log.Fatalf("-treeprocs: %v", err)
		}
		run("treecompare", func() error { return suite.TreeCompareTable(out, counts, *treeArity) })
	}
	if *metricsOut != "" {
		if err := cli.WriteFile(*metricsOut, suite.WriteMetricsJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics JSON: %s\n", *metricsOut)
	}
}
