// Package cli holds the small scaffolding shared by the lrcrace commands:
// writing generated output files and parsing comma-separated flag values.
package cli

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// WriteFile atomically replaces path with what write streams out: the
// content goes to a temp file in the destination directory, is synced,
// and only then renamed over path — a crash mid-write can never leave a
// torn manifest or metrics file, only the old content or the new.
func WriteFile(path string, write func(io.Writer) error) error {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// fields splits a comma-separated flag value, trimming blanks; an empty
// string yields nil.
func fields(csv string) []string {
	var out []string
	for _, s := range strings.Split(csv, ",") {
		if s = strings.TrimSpace(s); s != "" {
			out = append(out, s)
		}
	}
	return out
}

// Strings parses a comma-separated list of strings ("" → nil).
func Strings(csv string) []string { return fields(csv) }

// Ints parses a comma-separated list of integers, each at least min.
func Ints(csv string, min int) ([]int, error) {
	var out []int
	for _, s := range fields(csv) {
		n, err := strconv.Atoi(s)
		if err != nil || n < min {
			return nil, fmt.Errorf("bad integer %q (want >= %d)", s, min)
		}
		out = append(out, n)
	}
	return out, nil
}

// Int64s parses a comma-separated list of 64-bit integers.
func Int64s(csv string) ([]int64, error) {
	var out []int64
	for _, s := range fields(csv) {
		n, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad integer %q", s)
		}
		out = append(out, n)
	}
	return out, nil
}

// Floats parses a comma-separated list of floats.
func Floats(csv string) ([]float64, error) {
	var out []float64
	for _, s := range fields(csv) {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}

// Bools parses a comma-separated list of booleans (strconv.ParseBool
// forms: 1/0, t/f, true/false).
func Bools(csv string) ([]bool, error) {
	var out []bool
	for _, s := range fields(csv) {
		v, err := strconv.ParseBool(s)
		if err != nil {
			return nil, fmt.Errorf("bad boolean %q", s)
		}
		out = append(out, v)
	}
	return out, nil
}
