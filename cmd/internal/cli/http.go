package cli

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"runtime"
	"runtime/debug"
	"time"

	"lrcrace/internal/dsm"
)

// Mux wraps a handler with the operational endpoints every lrcrace
// server shares:
//
//	/healthz — liveness: always 200 {"status":"ok"}
//	/version — module version, Go runtime, VCS revision when the binary
//	           embeds one, and the checkpoint format version (so
//	           operators can tell whether two deployments' checkpoint
//	           stores are interchangeable)
//
// Everything else falls through to h.
func Mux(h http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(versionInfo())
	})
	mux.Handle("/", h)
	return mux
}

// VersionInfo is the /version payload.
type VersionInfo struct {
	Module            string `json:"module"`
	Version           string `json:"version"`
	Go                string `json:"go"`
	Revision          string `json:"vcs_revision,omitempty"`
	CheckpointVersion int    `json:"checkpoint_version"`
}

func versionInfo() VersionInfo {
	v := VersionInfo{
		Module:            "lrcrace",
		Version:           "(devel)",
		Go:                runtime.Version(),
		CheckpointVersion: dsm.CheckpointVersion,
	}
	if bi, ok := debug.ReadBuildInfo(); ok {
		v.Module = bi.Main.Path
		if bi.Main.Version != "" {
			v.Version = bi.Main.Version
		}
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" {
				v.Revision = s.Value
			}
		}
	}
	return v
}

// Serve listens on addr and serves h in the background, returning the
// server and its bound address. The server always carries header/idle
// timeouts; writeTimeout bounds each response write — pass 0 for servers
// with streaming endpoints (SSE feeds must outlive any fixed write
// deadline). Stop with Shutdown.
func Serve(addr string, h http.Handler, writeTimeout time.Duration) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("listening on %s: %w", addr, err)
	}
	srv := &http.Server{
		Handler:           h,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

// Shutdown drains srv gracefully, waiting at most grace for in-flight
// requests (streaming subscribers are closed by the handler's context),
// then closes whatever remains.
func Shutdown(srv *http.Server, grace time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), grace)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		srv.Close()
		return err
	}
	return nil
}
