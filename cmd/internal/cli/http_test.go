package cli

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"lrcrace/internal/dsm"
)

func TestServeMuxEndpoints(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprint(w, "inner")
	})
	srv, addr, err := Serve("127.0.0.1:0", Mux(inner), 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer Shutdown(srv, time.Second)
	base := "http://" + addr

	// /healthz
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("/healthz: status %d body %+v", resp.StatusCode, health)
	}

	// /version carries the checkpoint format version so operators can tell
	// whether two deployments' checkpoint stores interoperate.
	resp, err = http.Get(base + "/version")
	if err != nil {
		t.Fatal(err)
	}
	var v VersionInfo
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if v.CheckpointVersion != dsm.CheckpointVersion {
		t.Errorf("/version checkpoint_version = %d, want %d", v.CheckpointVersion, dsm.CheckpointVersion)
	}
	if v.Go == "" || v.Module == "" {
		t.Errorf("/version incomplete: %+v", v)
	}

	// Everything else falls through to the wrapped handler.
	resp, err = http.Get(base + "/anything")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "inner" {
		t.Errorf("fall-through body %q, want %q", body, "inner")
	}

	// Graceful shutdown: the listener closes, later requests fail.
	if err := Shutdown(srv, time.Second); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still answering after Shutdown")
	}
}
