package cli

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v1")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("wrote %q, want v1", b)
	}

	// A failing writer must leave the previous content intact and no temp
	// file behind — the atomicity contract.
	err := WriteFile(path, func(w io.Writer) error {
		io.WriteString(w, "torn")
		return fmt.Errorf("mid-write crash")
	})
	if err == nil || err.Error() != "mid-write crash" {
		t.Fatalf("writer error not propagated: %v", err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v1" {
		t.Fatalf("failed write corrupted the destination: %q", b)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		names := make([]string, len(ents))
		for i, e := range ents {
			names[i] = e.Name()
		}
		t.Fatalf("temp droppings left behind: %v", names)
	}

	// A successful rewrite replaces the content whole.
	if err := WriteFile(path, func(w io.Writer) error {
		_, err := io.WriteString(w, "v2")
		return err
	}); err != nil {
		t.Fatal(err)
	}
	if b, _ := os.ReadFile(path); string(b) != "v2" {
		t.Fatalf("rewrite produced %q, want v2", b)
	}
}

func TestWriteFileMissingDir(t *testing.T) {
	err := WriteFile(filepath.Join(t.TempDir(), "no-such-dir", "x"), func(io.Writer) error { return nil })
	if err == nil {
		t.Fatal("writing into a missing directory succeeded")
	}
}
