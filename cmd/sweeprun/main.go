// Command sweeprun drives a parameter sweep over the DSM benchmark grid:
// the cartesian product of the axis flags (or a JSON plan file) expands to
// cells, a bounded worker pool runs them concurrently — each cell in its
// own System with its own scoped telemetry recorder — and the results land
// as a summary table, a summary JSON, and a deterministic aggregated
// metrics document. See docs/SWEEP.md.
//
// Usage:
//
//	sweeprun -apps TSP,Water -procs 2,4 -workers 4
//	sweeprun -apps SOR -protocols sw,mw -sharded 0,1 -metrics-out m.json
//	sweeprun -apps Water -procs 8,16,32 -barrier-tree 0,2 # flat vs tree barrier
//	sweeprun -plan plan.json -dir sweep.ckpt        # resumable
//	sweeprun -apps Water -metrics-addr :9090        # live /metrics, /sweep
//	sweeprun -apps TSP -drop 0.05 -seeds 0,1,2      # wire-fault sweep
//	sweeprun -apps ChaosTSP -crash single,double -corrupt none,chunk -seeds 0,1
//	sweeprun -apps TSP,Water -remote host:8321      # dispatch cells to racedsvc
//	sweeprun -apps KV,Sessions -frontends go -hot-skews 0,0.8 -racy 0,1 -seeds 0,1
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"lrcrace/cmd/internal/cli"
	"lrcrace/internal/service"
	"lrcrace/internal/sweep"
)

func main() {
	planFile := flag.String("plan", "", "JSON plan file (overrides the axis flags)")
	apps := flag.String("apps", "", "applications axis, e.g. TSP,Water")
	scales := flag.String("scales", "", "problem-scale axis (default 1)")
	procs := flag.String("procs", "", "process-count axis (default 4)")
	protocols := flag.String("protocols", "", "protocol axis: sw,mw (default sw)")
	detect := flag.String("detect", "", "detection axis: true,false (default true)")
	sharded := flag.String("sharded", "", "sharded-check axis: true,false (default false)")
	barrierTree := flag.String("barrier-tree", "", "combining-tree barrier arity axis: 0 = flat, else arity >= 2 (default 0)")
	checkpoint := flag.String("checkpoint", "", "checkpointing axis: true,false (default true)")
	crash := flag.String("crash", "", "crash-mode axis for chaos apps: none,single,double,recovery (default none)")
	corrupt := flag.String("corrupt", "", "checkpoint-corruption axis: none,chunk,delete (default none; needs -crash)")
	seeds := flag.String("seeds", "", "fault-seed axis (default 0; needs a fault, chaos, or go-frontend flag)")
	frontends := flag.String("frontends", "", "frontend axis: dsm,go (default dsm; go pairs with gofront workloads, see docs/GOFRONT.md)")
	hotSkews := flag.String("hot-skews", "", "go-frontend hot-key-skew axis in [0,1) (default 0)")
	racy := flag.String("racy", "", "go-frontend racy-fast-path axis: true,false (default false)")
	drop := flag.Float64("drop", 0, "fault template: per-message drop probability")
	dup := flag.Float64("dup", 0, "fault template: per-message duplication probability")
	reorder := flag.Float64("reorder", 0, "fault template: per-message reorder probability")
	jitterUS := flag.Int64("jitter-us", 0, "fault template: max extra latency jitter (µs)")
	msgDelayUS := flag.Int64("msg-delay-us", 0, "override the per-app real message delay (µs)")

	workers := flag.Int("workers", 4, "cells run concurrently")
	cellTimeout := flag.Duration("cell-timeout", 2*time.Minute, "per-cell wall-time deadline")
	retries := flag.Int("retries", 0, "extra attempts for failed/panicking cells")
	dir := flag.String("dir", "", "checkpoint directory: persist per-cell results and resume an interrupted grid")
	out := flag.String("out", "", "write the summary JSON here")
	metricsOut := flag.String("metrics-out", "", "write the aggregated metrics JSON here (deterministic)")
	metricsAddr := flag.String("metrics-addr", "", "serve live /metrics, /sweep and /flight/<cell> on this address during the run")
	remote := flag.String("remote", "", "dispatch cells to racedsvc nodes (comma-separated addresses) instead of running locally; failed nodes fail over")
	tenant := flag.String("tenant", "", "tenant identity stamped on remote sessions (quota accounting)")
	flag.Parse()

	plan, err := buildPlan(*planFile, axisFlags{
		apps: *apps, scales: *scales, procs: *procs, protocols: *protocols,
		detect: *detect, sharded: *sharded, barrierTree: *barrierTree, checkpoint: *checkpoint,
		crash: *crash, corrupt: *corrupt, seeds: *seeds,
		frontends: *frontends, hotSkews: *hotSkews, racy: *racy,
		drop: *drop, dup: *dup, reorder: *reorder, jitterUS: *jitterUS, msgDelayUS: *msgDelayUS,
	})
	if err != nil {
		log.Fatal(err)
	}

	s, err := sweep.New(plan, sweep.Options{
		Workers:     *workers,
		CellTimeout: *cellTimeout,
		Retries:     *retries,
		Dir:         *dir,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep %0.12s: %d cells, %d workers\n", plan.Fingerprint(), len(s.Cells()), *workers)

	if *metricsAddr != "" {
		// The shared scaffolding adds /healthz and /version next to the
		// sweep's own endpoints and drains scrapes on exit.
		srv, addr, err := cli.Serve(*metricsAddr, cli.Mux(s.Handler()), 30*time.Second)
		if err != nil {
			log.Fatal(err)
		}
		defer cli.Shutdown(srv, 2*time.Second)
		fmt.Printf("live endpoint: http://%s/metrics /sweep /flight/<cell-id>\n", addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	var summary *sweep.Summary
	if *remote != "" {
		summary, err = runRemote(ctx, s, plan, cli.Strings(*remote), *tenant, *workers)
	} else {
		summary, err = s.Run(ctx)
	}
	if err != nil {
		// An interrupted sweep still summarizes what finished; the
		// checkpoint directory (if any) lets the next invocation resume.
		fmt.Fprintf(os.Stderr, "sweep interrupted: %v\n", err)
	}

	if err := summary.WriteTable(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if *out != "" {
		if err := cli.WriteFile(*out, summary.WriteJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("summary JSON: %s\n", *out)
	}
	if *metricsOut != "" {
		if err := cli.WriteFile(*metricsOut, s.WriteMetricsJSON); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics JSON: %s\n", *metricsOut)
	}
	if summary.OK != summary.Total {
		os.Exit(1)
	}
}

// runRemote dispatches every pending cell across the detection-service
// nodes as sessions and merges the returned results through sweep.Record
// — the same results map and checkpoint files a local run uses, so the
// summary, metrics document, and resume behavior are identical to
// running locally. With several nodes, cells go to the least-loaded live
// node and fail over to survivors when a node dies mid-run.
func runRemote(ctx context.Context, s *sweep.Sweep, plan *sweep.Plan, addrs []string, tenant string, workers int) (*sweep.Summary, error) {
	if len(addrs) == 0 {
		return s.Summary(), fmt.Errorf("remote dispatch: no node addresses")
	}
	d := service.NewDispatcher(addrs, service.DispatchConfig{
		Workers: workers,
		Logf: func(format string, args ...interface{}) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}).Tenant(tenant)
	pending := s.Pending()
	fmt.Printf("remote dispatch: %d pending cells -> %d node(s)\n", len(pending), len(addrs))
	err := d.Run(ctx, pending, plan.Faults, plan.RealMsgDelayUS, s.Record)
	for _, ns := range d.Stats() {
		fmt.Printf("node %s: %d cells, %d failures, %d breaker trips\n",
			ns.Addr, ns.Dispatched, ns.Failures, ns.BreakerTrips)
	}
	if n := d.Redispatches(); n > 0 {
		fmt.Printf("failover re-dispatches: %d\n", n)
	}
	return s.Summary(), err
}

type axisFlags struct {
	apps, scales, procs, protocols, detect, sharded string
	barrierTree, checkpoint, crash, corrupt, seeds  string
	frontends, hotSkews, racy                       string
	drop, dup, reorder                              float64
	jitterUS, msgDelayUS                            int64
}

func buildPlan(planFile string, a axisFlags) (*sweep.Plan, error) {
	if planFile != "" {
		b, err := os.ReadFile(planFile)
		if err != nil {
			return nil, err
		}
		var p sweep.Plan
		if err := json.Unmarshal(b, &p); err != nil {
			return nil, fmt.Errorf("parsing %s: %w", planFile, err)
		}
		return &p, nil
	}
	p := &sweep.Plan{Apps: cli.Strings(a.apps), RealMsgDelayUS: a.msgDelayUS}
	if len(p.Apps) == 0 {
		return nil, fmt.Errorf("no applications: set -apps or -plan")
	}
	var err error
	if p.Scales, err = cli.Floats(a.scales); err != nil {
		return nil, fmt.Errorf("-scales: %w", err)
	}
	if p.Procs, err = cli.Ints(a.procs, 1); err != nil {
		return nil, fmt.Errorf("-procs: %w", err)
	}
	p.Protocols = cli.Strings(a.protocols)
	if p.Detect, err = cli.Bools(a.detect); err != nil {
		return nil, fmt.Errorf("-detect: %w", err)
	}
	if p.Sharded, err = cli.Bools(a.sharded); err != nil {
		return nil, fmt.Errorf("-sharded: %w", err)
	}
	if p.BarrierTrees, err = cli.Ints(a.barrierTree, 0); err != nil {
		return nil, fmt.Errorf("-barrier-tree: %w", err)
	}
	if p.Checkpoint, err = cli.Bools(a.checkpoint); err != nil {
		return nil, fmt.Errorf("-checkpoint: %w", err)
	}
	p.CrashModes = cli.Strings(a.crash)
	p.CorruptModes = cli.Strings(a.corrupt)
	if p.Seeds, err = cli.Int64s(a.seeds); err != nil {
		return nil, fmt.Errorf("-seeds: %w", err)
	}
	p.Frontends = cli.Strings(a.frontends)
	if p.HotSkews, err = cli.Floats(a.hotSkews); err != nil {
		return nil, fmt.Errorf("-hot-skews: %w", err)
	}
	if p.Racy, err = cli.Bools(a.racy); err != nil {
		return nil, fmt.Errorf("-racy: %w", err)
	}
	if a.drop > 0 || a.dup > 0 || a.reorder > 0 || a.jitterUS > 0 {
		p.Faults = &sweep.FaultAxis{Drop: a.drop, Dup: a.dup, Reorder: a.reorder, JitterUS: a.jitterUS}
	}
	return p, nil
}
