// Package lrcrace is an implementation and experimental reproduction of
// "Online Data-Race Detection via Coherency Guarantees" (Perković &
// Keleher, OSDI 1996): an on-the-fly data-race detector built into a
// lazy-release-consistent (LRC) software distributed shared memory system.
//
// The key idea of the paper is that an LRC DSM already maintains enough
// ordering metadata — intervals, version vectors, write notices — to decide
// in constant time whether two shared accesses are concurrent. Adding read
// notices and word-granularity access bitmaps, and running a comparison
// pass at barriers, yields a detector for every data race that occurs in an
// execution, with no compiler support.
//
// The package exposes the full system:
//
//   - a CVM-equivalent DSM (System/Proc): paged shared memory with
//     per-process copies, a single-writer ownership protocol and a
//     multi-writer home-based diff protocol, distributed locks, barriers,
//     and a simulated network that really serializes every message;
//   - the race detector, enabled with Config.Detect, reporting races by
//     address with symbol-table resolution;
//   - §6.4 first-race filtering (Config.FirstOnly), §6.5 diff-derived write
//     detection (Config.WritesFromDiffs), and the §6.1 two-run replay
//     scheme (SyncRecord/Enforcer/SiteCollector);
//   - the four benchmark applications of the paper's evaluation (FFT, SOR,
//     TSP with its deliberately racy tour bound, Water with the seeded
//     Splash2 write-write bug), and the experiment harness that regenerates
//     every table and figure.
//
// # Quick start
//
//	sys, _ := lrcrace.New(lrcrace.Config{NumProcs: 2, SharedSize: 8192, Detect: true})
//	x, _ := sys.AllocWords("x", 1)
//	_ = sys.Run(func(p *lrcrace.Proc) {
//	    p.Write(x, uint64(p.ID())) // unsynchronized concurrent writes
//	    p.Barrier()                // detection runs here
//	})
//	for _, r := range lrcrace.DedupRaces(sys.Races()) {
//	    fmt.Println(r) // write-write race at addr 0x0 ...
//	}
package lrcrace

import (
	"io"

	"lrcrace/internal/dsm"
	"lrcrace/internal/gofront"
	"lrcrace/internal/harness"
	"lrcrace/internal/hbdet"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/replay"
	"lrcrace/internal/simnet"
	"lrcrace/internal/tcpnet"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/trace"
)

// Core DSM and detector types.
type (
	// Config configures a System; see the field docs in internal/dsm.
	Config = dsm.Config
	// System is one DSM instance: shared segment, processes, detector.
	System = dsm.System
	// Proc is the per-process handle the worker function receives.
	Proc = dsm.Proc
	// Protocol selects the coherence protocol.
	Protocol = dsm.ProtocolKind
	// Symbol names an allocated shared variable.
	Symbol = dsm.Symbol
	// Addr is a byte offset into the shared segment.
	Addr = mem.Addr
	// Race is one detected data race.
	Race = race.Report
	// DetectorStats are the comparison-algorithm counters.
	DetectorStats = race.Stats
	// FaultPlan injects deterministic wire faults (drops, duplicates,
	// reordering, latency jitter) into the simulated network; set it via
	// Config.Faults. A lossy plan requires Config.Reliable, which layers
	// CVM-style end-to-end retransmission over the faulty wire.
	FaultPlan = simnet.FaultPlan
	// NetStats are the per-message-type wire counters a run accumulates,
	// including fault-injection and retransmission counts.
	NetStats = simnet.Stats
)

// Coherence protocols.
const (
	// SingleWriter is the ownership-migration protocol the paper ran.
	SingleWriter = dsm.SingleWriter
	// MultiWriter is the home-based twin/diff protocol of §6.5.
	MultiWriter = dsm.MultiWriter
	// EagerRC is eager release consistency — the §3.1 comparison point;
	// coherence only, no race detection (ERC lacks the LRC metadata the
	// detector leverages).
	EagerRC = dsm.EagerRC
)

// New builds a DSM instance. Allocate shared variables with Alloc, then
// call Run with the per-process worker.
func New(cfg Config) (*System, error) { return dsm.New(cfg) }

// Crash tolerance (see docs/ROBUSTNESS.md): always-on barrier-epoch
// checkpointing (disable with Config.NoCheckpoint), injected fail-stop
// crashes (Config.Crash, Config.Crashes), checkpoint corruption
// (Config.Corruption), and coordinated rollback recovery via
// System.RunEpochs.
type (
	// CrashPlan schedules the deterministic fail-stop death of one process;
	// set it via Config.Crash (or several via Config.Crashes). Recovery
	// requires checkpointing (the default) plus a detection path
	// (Config.Reliable or Config.BarrierWallTimeout).
	CrashPlan = dsm.CrashPlan
	// CorruptionPlan deterministically damages stored checkpoint chunks, so
	// rollback must verify and fall back; set it via Config.Corruption.
	CorruptionPlan = dsm.CorruptionPlan
	// CorruptMode selects how the corruption plan damages chunks.
	CorruptMode = dsm.CorruptMode
	// CrashPoint selects where in the protocol the victim dies.
	CrashPoint = dsm.CrashPoint
	// EpochFunc is one epoch body for System.RunEpochs — the epoch-structured
	// entry point that can roll back and re-execute after a crash.
	EpochFunc = dsm.EpochFunc
	// CheckpointStats measures the serialized barrier-epoch checkpoints:
	// manifest and chunk bytes, dedup hits, and retention-GC totals.
	CheckpointStats = dsm.CheckpointStats
	// RecoveryStats summarizes coordinated rollbacks: counts, reclaimed
	// locks, re-executed virtual time, restore wall time.
	RecoveryStats = dsm.RecoveryStats
)

// Crash points.
const (
	// CrashMidInterval dies at the AfterN-th shared access of the epoch.
	CrashMidInterval = dsm.CrashMidInterval
	// CrashAtVTime dies at the first access at or after VTime.
	CrashAtVTime = dsm.CrashAtVTime
	// CrashHoldingLock dies at the first access made while holding a lock.
	CrashHoldingLock = dsm.CrashHoldingLock
	// CrashInBitmapRound dies inside the barrier, before sending bitmaps.
	CrashInBitmapRound = dsm.CrashInBitmapRound
)

// Corruption modes.
const (
	// CorruptChunk flips a bit in a stored checkpoint chunk.
	CorruptChunk = dsm.CorruptChunk
	// DeleteChunk drops a stored chunk's payload entirely.
	DeleteChunk = dsm.DeleteChunk
)

// RandomCrashPlan derives a valid, deterministic crash plan from a seed —
// the chaos-testing entry point.
func RandomCrashPlan(seed uint64, nprocs int, epochs int32) *CrashPlan {
	return dsm.RandomCrashPlan(seed, nprocs, epochs)
}

// RandomCorruptionPlan derives a deterministic checkpoint-corruption plan
// from a seed — the storage-fault analogue of RandomCrashPlan.
func RandomCorruptionPlan(seed uint64, epochs int32, mode CorruptMode) *CorruptionPlan {
	return dsm.RandomCorruptionPlan(seed, epochs, mode)
}

// DedupRaces collapses dynamic race reports to one representative per
// (address, kind), preserving order — the form in which races are printed.
func DedupRaces(rs []Race) []Race { return race.DedupByAddr(rs) }

// Replay (§6.1 two-run reference identification).
type (
	// SyncRecord stores a run's per-lock tenure order (run 1).
	SyncRecord = replay.SyncRecord
	// Enforcer replays a recorded order (run 2).
	Enforcer = replay.Enforcer
	// SiteCollector captures call sites of accesses to a watched address.
	SiteCollector = replay.SiteCollector
	// AccessSite is one captured racing instruction.
	AccessSite = replay.AccessSite
)

// NewSyncRecord returns an empty synchronization-order record.
func NewSyncRecord() *SyncRecord { return replay.NewSyncRecord() }

// NewEnforcer wraps a recorded order for replay.
func NewEnforcer(rec *SyncRecord) *Enforcer { return replay.NewEnforcer(rec) }

// NewSiteCollector watches one shared address during a replay run.
func NewSiteCollector(addr Addr) *SiteCollector { return replay.NewSiteCollector(addr) }

// Post-mortem tracing (the §7 baseline the online approach obsoletes).
type (
	// TraceWriter logs every access and synchronization event; attach it
	// via Config.Tracer.
	TraceWriter = trace.Writer
	// TraceReader iterates a trace log.
	TraceReader = trace.Reader
)

// NewTraceWriter starts a trace log on w for an nprocs-process run.
func NewTraceWriter(w io.Writer, nprocs int) (*TraceWriter, error) {
	return trace.NewWriter(w, nprocs)
}

// AnalyzeTrace replays a trace log through the happens-before detector and
// returns the racy addresses — the post-mortem pipeline in one call.
func AnalyzeTrace(r io.Reader) ([]Addr, error) { return trace.Analyze(r) }

// Observability (internal/telemetry): the structured protocol-event
// tracer, metrics registry, and flight recorder.
type (
	// TelemetryConfig configures a run's event recorder; set it via
	// ExperimentConfig.Telemetry (or call telemetry.Start around a raw
	// System.Run). The recorder exports Chrome trace-event JSON
	// (WriteChromeTrace), Prometheus text (Metrics().WriteProm), and flight
	// dumps (DumpFlight).
	TelemetryConfig = telemetry.Config
	// TelemetryRecorder is one recording session.
	TelemetryRecorder = telemetry.Recorder
	// MetricsRegistry holds counters/gauges/histograms.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a registry frozen for JSON serialization; it
	// subsumes dsm.Stats and simnet.Stats for harness runs.
	MetricsSnapshot = telemetry.Snapshot
)

// StartTelemetry installs a global event recorder (see telemetry.Start).
func StartTelemetry(cfg TelemetryConfig) *TelemetryRecorder { return telemetry.Start(cfg) }

// StopTelemetry uninstalls the recorder and returns it for inspection.
func StopTelemetry() *TelemetryRecorder { return telemetry.Stop() }

// NewTelemetryRecorder builds a handle-scoped recorder (telemetry.New)
// without installing it globally. Set it as ExperimentConfig.Recorder to
// keep the handle while the run executes — a live metrics endpoint can
// then scrape Metrics().WriteProm mid-run — and to let any number of runs
// record concurrently in one process without cross-talk.
func NewTelemetryRecorder(cfg TelemetryConfig) *TelemetryRecorder { return telemetry.New(cfg) }

// Transport is the message-carrying contract; the default is the in-memory
// simulated network.
type Transport = dsm.Transport

// NewTCPTransport builds a real loopback-TCP transport for n processes:
// the whole DSM, detector included, then runs over actual kernel sockets
// (pass it via Config.Transport).
func NewTCPTransport(n int) (Transport, error) { return tcpnet.New(n) }

// Reference detector (cross-validation).
type (
	// HBDetector is a classic vector-clock happens-before detector that
	// can be attached to a run via Config.Tracer.
	HBDetector = hbdet.Detector
)

// NewHBDetector returns a happens-before reference detector for n procs.
func NewHBDetector(n int) *HBDetector { return hbdet.New(n) }

// Experiments.
type (
	// ExperimentConfig describes one harness run.
	ExperimentConfig = harness.RunConfig
	// ExperimentResult carries a run's metrics.
	ExperimentResult = harness.Result
	// Suite caches baseline/detection pairs and prints the paper's tables.
	Suite = harness.Suite
)

// RunExperiment executes one benchmark configuration and verifies the
// application's result.
func RunExperiment(cfg ExperimentConfig) (*ExperimentResult, error) {
	return harness.Run(cfg)
}

// NewSuite builds a table-generation suite (scale 0 → 1, procs 0 → 8).
func NewSuite(scale float64, procs int) *Suite { return harness.NewSuite(scale, procs) }

// WriteTable2 prints the paper's Table 2 (static instrumentation
// statistics); it needs no runs.
func WriteTable2(w io.Writer) { harness.Table2(w) }

// Apps lists the registered benchmark applications.
func Apps() []string {
	return []string{"FFT", "SOR", "TSP", "Water"}
}

// Go-native frontend (internal/gofront, docs/GOFRONT.md): the same
// interval/vector-clock detector applied to Go concurrency primitives —
// goroutines, channels, mutexes, wait groups — instead of DSM pages.
// Select it with ExperimentConfig.Frontend = "go" and one of the
// GoWorkloads; the run's result comes back in ExperimentResult.GoFront.
type (
	// GoFrontResult is a go-frontend run's outcome: race reports, racy
	// address set, the replayable sync/access trace, and detector stats.
	GoFrontResult = gofront.Result
	// GoFrontStats are the frontend's work counters (intervals built,
	// pairs examined, bitmaps compared, records GCed, ...).
	GoFrontStats = gofront.Stats
)

// Frontends lists the execution frontends an ExperimentConfig can select:
// "dsm" (the default, also spelled "") and "go".
func Frontends() []string { return append([]string(nil), harness.Frontends...) }

// GoWorkloads lists the registered go-frontend workloads (KV, Sessions).
func GoWorkloads() []string { return gofront.Workloads() }
