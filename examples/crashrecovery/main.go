// Command crashrecovery kills a process mid-epoch and shows the system
// survive it: every process serializes its recovery state at each barrier
// departure (a checkpoint), survivors detect the death through the
// reliable layer's retry cap (with a barrier wall timeout as backstop for
// quiet deaths), and the run rolls all processes back to the last common
// barrier epoch, reclaims the victim's locks, and re-executes. The final
// memory — and the detector's race report — match a crash-free run. See
// docs/ROBUSTNESS.md for the failure model and recovery protocol.
package main

import (
	"fmt"
	"log"
	"time"

	"lrcrace"
)

func main() {
	plan := &lrcrace.CrashPlan{
		Victim: 2,                        // process 2 dies...
		Epoch:  1,                        // ...during the second epoch...
		Point:  lrcrace.CrashHoldingLock, // ...while holding a lock
	}
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs:   4,
		SharedSize: 16 * 1024,
		Detect:     true,
		// Checkpointing is on by default: every barrier departure deposits
		// a chunk-deduplicated manifest the rollback below restores from.
		Reliable:           true,            // link death detects the crash
		BarrierWallTimeout: 5 * time.Second, // backstop for quiet deaths
		Crash:              plan,
	})
	if err != nil {
		log.Fatal(err)
	}

	counter, _ := sys.AllocWords("counter", 1)
	racy, _ := sys.AllocWords("racy", 1)

	const epochs = 3
	err = sys.RunEpochs(epochs, func() lrcrace.EpochFunc {
		return func(p *lrcrace.Proc, e int32) {
			// Lock-ordered increments: exactly-once despite the rollback.
			p.Lock(1)
			p.Write(counter, p.Read(counter)+1)
			p.Unlock(1)
			// One unsynchronized write per epoch: a genuine race, still
			// reported after recovery.
			p.Write(racy, uint64(p.ID()))
		}
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counter = %d (want %d: no lost or doubled increments across the rollback)\n",
		sys.SnapshotWord(counter), 4*epochs)

	rs := sys.RecoveryStats()
	fmt.Printf("crash: p%d at %v, detected via %s\n", rs.LastVictim, plan.Point, rs.LastReason)
	fmt.Printf("recovery: %d rollback to epoch %d, %d lock(s) reclaimed, %.1f ms of virtual work re-executed\n",
		rs.Recoveries, rs.LastEpoch, rs.LocksReclaimed, float64(rs.VirtualNS)/1e6)

	cs := sys.CheckpointStats()
	fmt.Printf("checkpoints: %d serialized, %d bytes total\n", cs.Count, cs.Bytes)

	for _, r := range lrcrace.DedupRaces(sys.Races()) {
		sym, _ := sys.SymbolAt(r.Addr)
		fmt.Println(r, "on variable", sym.Name)
	}
}
