// Command water_bug reproduces the paper's Water finding: the Splash2
// Water-Nsquared benchmark contained a real write-write race (reported to
// the Splash authors and fixed in their later release). The seeded
// equivalent here is an unlocked read-modify-write of the global virial
// accumulator. Run with -fix to apply the repair and watch the report
// disappear.
package main

import (
	"flag"
	"fmt"
	"log"

	"lrcrace"
	"lrcrace/internal/apps/water"
)

func main() {
	mols := flag.Int("mols", 32, "molecule count (the paper ran 216)")
	steps := flag.Int("steps", 2, "time steps (the paper ran 5)")
	procs := flag.Int("procs", 4, "DSM processes")
	fix := flag.Bool("fix", false, "apply the Splash2 fix (lock the virial update)")
	flag.Parse()

	app := water.New(water.Config{Molecules: *mols, Steps: *steps, FixBug: *fix})
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs:   *procs,
		SharedSize: app.SharedBytes(),
		Detect:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Setup(sys); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("running Water (%s) on %d processes, fix=%v...\n",
		app.InputDesc(), *procs, *fix)
	if err := sys.Run(app.Worker); err != nil {
		log.Fatal(err)
	}
	if err := app.Verify(sys); err != nil {
		log.Fatalf("verification failed: %v", err)
	}
	fmt.Println("trajectory verified against the sequential reference")

	distinct := lrcrace.DedupRaces(sys.Races())
	if len(distinct) == 0 {
		fmt.Println("no races detected — the fix removed the bug")
		return
	}
	fmt.Printf("%d distinct race(s):\n", len(distinct))
	for _, r := range distinct {
		sym, _ := sys.SymbolAt(r.Addr)
		fmt.Printf("  %v  [variable %q]\n", r, sym.Name)
	}
	fmt.Println("\nThe write-write race on \"vir\" is the seeded Splash2 bug.")
}
