// Command postmortem runs the same racy program twice through the two
// detection pipelines the paper compares (§7): the online LRC-metadata
// detector, and a full event trace analyzed after the fact. Both find the
// same race; the trace's size is the storage the online approach never
// needs.
package main

import (
	"bytes"
	"fmt"
	"log"

	"lrcrace"
)

const procs = 4

func worker(racy, locked lrcrace.Addr) func(p *lrcrace.Proc) {
	return func(p *lrcrace.Proc) {
		for i := 0; i < 10; i++ {
			p.Lock(0)
			p.Write(locked, p.Read(locked)+1)
			p.Unlock(0)
			p.Write(racy, uint64(p.ID()))
			p.Barrier()
		}
	}
}

func main() {
	// Pipeline 1: online detection (the paper's contribution).
	sys, err := lrcrace.New(lrcrace.Config{NumProcs: procs, SharedSize: 16 * 1024, Detect: true})
	if err != nil {
		log.Fatal(err)
	}
	racy, _ := sys.AllocWords("racy", 1)
	locked, _ := sys.AllocWords("locked", 1)
	if err := sys.Run(worker(racy, locked)); err != nil {
		log.Fatal(err)
	}
	online := lrcrace.DedupRaces(sys.Races())
	fmt.Printf("online detector: %d distinct race(s), zero bytes of trace\n", len(online))
	for _, r := range online {
		sym, _ := sys.SymbolAt(r.Addr)
		fmt.Printf("  %q at 0x%x\n", sym.Name, uint64(r.Addr))
	}

	// Pipeline 2: trace everything, analyze offline (Adve et al.).
	var logBuf bytes.Buffer
	tw, err := lrcrace.NewTraceWriter(&logBuf, procs)
	if err != nil {
		log.Fatal(err)
	}
	sys2, err := lrcrace.New(lrcrace.Config{NumProcs: procs, SharedSize: 16 * 1024, Tracer: tw})
	if err != nil {
		log.Fatal(err)
	}
	racy2, _ := sys2.AllocWords("racy", 1)
	locked2, _ := sys2.AllocWords("locked", 1)
	if err := sys2.Run(worker(racy2, locked2)); err != nil {
		log.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	addrs, err := lrcrace.AnalyzeTrace(bytes.NewReader(logBuf.Bytes()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npost-mortem analyzer: %d racy address(es), from a %d-byte trace (%d events)\n",
		len(addrs), tw.Bytes(), tw.Events())
	for _, a := range addrs {
		fmt.Printf("  0x%x\n", uint64(a))
	}
	fmt.Println("\nSame findings; the trace bytes are what the online approach eliminates.")
}
