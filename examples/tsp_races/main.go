// Command tsp_races reproduces the paper's headline TSP finding: the
// branch-and-bound solver deliberately reads the global tour bound without
// synchronization (a stale bound only costs redundant search), and the
// detector flags every one of those reads that races with a locked bound
// update — all on the variable minTour, and the answer is still exactly
// optimal.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lrcrace"
	"lrcrace/internal/apps/tsp"
	"lrcrace/internal/dsm"
)

func main() {
	cities := flag.Int("cities", 10, "number of cities (the paper ran 19)")
	procs := flag.Int("procs", 4, "DSM processes")
	flag.Parse()

	app := tsp.New(tsp.Config{Cities: *cities})
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs:     *procs,
		SharedSize:   app.SharedBytes(),
		Detect:       true,
		RealMsgDelay: 20 * time.Microsecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := app.Setup(sys); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solving %s on %d processes under the race detector...\n",
		app.InputDesc(), *procs)
	if err := sys.Run(app.Worker); err != nil {
		log.Fatal(err)
	}
	if err := app.Verify(sys); err != nil {
		log.Fatalf("verification failed: %v", err)
	}

	fmt.Printf("optimal tour length: %d (verified against exhaustive search)\n",
		int64(sys.SnapshotWord(app.RacyBoundAddr())))

	races := sys.Races()
	distinct := lrcrace.DedupRaces(races)
	fmt.Printf("\n%d dynamic race reports, %d distinct:\n", len(races), len(distinct))
	for _, r := range distinct {
		sym, _ := sys.SymbolAt(r.Addr)
		kind := "read-write"
		if r.WriteWrite() {
			kind = "write-write"
		}
		fmt.Printf("  %s race on %q (addr 0x%x): e.g. %v vs %v\n",
			kind, sym.Name, uint64(r.Addr), r.A.Interval, r.B.Interval)
	}
	fmt.Println("\nAll races are on the tour bound: benign by design, exactly as the paper reports.")
	_ = dsm.SingleWriter // keep the import explicit for readers
}
