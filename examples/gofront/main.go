// Command gofront is the Go-native-frontend quickstart: the same
// interval/vector-clock detector that watches the DSM's pages here watches
// Go concurrency primitives instead (goroutines, channels, mutexes, wait
// groups — see docs/GOFRONT.md).
//
// It runs the concurrent KV workload twice with identical traffic: once
// with the planted racy fast path (hot-key reads skip the shard lock) and
// once fixed (every access shard-locked). The detector reports the hot-key
// races in the first run and certifies the second clean.
package main

import (
	"fmt"
	"log"

	"lrcrace"
)

// findRaces runs the KV workload and returns its distinct data races,
// named. The racy flag plants the workload's lock-skipping read path;
// everything else — seed, traffic mix, hot-key skew — is identical.
func findRaces(racy bool) []string {
	res, err := lrcrace.RunExperiment(lrcrace.ExperimentConfig{
		App:        "KV",
		Frontend:   "go",
		Procs:      4, // client goroutines
		Detect:     true,
		Racy:       racy,
		HotKeySkew: 0.7,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	var out []string
	for _, r := range lrcrace.DedupRaces(res.Races) {
		name := fmt.Sprintf("0x%x", uint64(r.Addr))
		if sym, ok := res.GoFront.SymbolAt(r.Addr); ok {
			name = sym
		}
		kind := "read-write"
		if r.WriteWrite() {
			kind = "write-write"
		}
		out = append(out, fmt.Sprintf("%s race on %s", kind, name))
	}
	return out
}

func main() {
	races := findRaces(true)
	fmt.Printf("racy KV (hot-key reads skip the shard lock): %d distinct race(s)\n", len(races))
	for _, r := range races {
		fmt.Printf("  %s\n", r)
	}

	if clean := findRaces(false); len(clean) == 0 {
		fmt.Println("fixed KV (every access shard-locked): no data races detected")
	} else {
		fmt.Printf("fixed KV unexpectedly raced: %v\n", clean)
	}
}
