package main

import (
	"strings"
	"testing"
)

// TestRacyVariantFindsHotKeyRaces pins the example's contract: the planted
// lock-skipping read path races on hot keys of kv.val, and fixing it (the
// same traffic, shard-locked) leaves nothing to report.
func TestRacyVariantFindsHotKeyRaces(t *testing.T) {
	races := findRaces(true)
	if len(races) == 0 {
		t.Fatal("racy KV variant found no races")
	}
	for _, r := range races {
		if !strings.Contains(r, "race on kv.val[") {
			t.Fatalf("race %q not on a kv.val hot key", r)
		}
	}
	if clean := findRaces(false); len(clean) != 0 {
		t.Fatalf("fixed KV variant raced: %v", clean)
	}
}

// TestDeterministic: the example prints the same races every run — the
// whole frontend is seed-deterministic, scheduler included.
func TestDeterministic(t *testing.T) {
	first := strings.Join(findRaces(true), "\n")
	for i := 0; i < 3; i++ {
		if again := strings.Join(findRaces(true), "\n"); again != first {
			t.Fatalf("run %d diverged:\n%s\nvs\n%s", i, again, first)
		}
	}
}
