// Command replay demonstrates the paper's §6.1 two-run reference
// identification: run 1 detects a race by address while recording the
// synchronization order; run 2 enforces that order and captures the source
// locations of every access to the conflicting address — turning "race at
// 0x40" into "read at main.worker (main.go:NN) vs write at ...".
package main

import (
	"fmt"
	"log"

	"lrcrace"
)

const (
	procs = 3
	iters = 4
)

// worker increments a locked counter and reads/writes a racy status word.
func worker(ctr, status lrcrace.Addr) func(p *lrcrace.Proc) {
	return func(p *lrcrace.Proc) {
		for i := 0; i < iters; i++ {
			p.Lock(0)
			p.Write(ctr, p.Read(ctr)+1)
			p.Unlock(0)

			_ = p.Read(status) // unsynchronized progress check: racy
			if p.ID() == 0 {
				p.Write(status, uint64(i)) // racy progress update
			}
		}
	}
}

func build(rec *lrcrace.SyncRecord, enf *lrcrace.Enforcer, watch *lrcrace.SiteCollector) (*lrcrace.System, lrcrace.Addr, lrcrace.Addr) {
	cfg := lrcrace.Config{NumProcs: procs, SharedSize: 8192, Detect: true}
	if rec != nil {
		cfg.SyncRecorder = rec
	}
	if enf != nil {
		cfg.SyncEnforcer = enf
	}
	if watch != nil {
		cfg.Watch = watch
	}
	sys, err := lrcrace.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	ctr, _ := sys.AllocWords("ctr", 1)
	status, _ := sys.AllocWords("status", 1)
	return sys, ctr, status
}

func main() {
	// Run 1: detect races by address, record synchronization order.
	rec := lrcrace.NewSyncRecord()
	sys1, ctr1, status1 := build(rec, nil, nil)
	if err := sys1.Run(worker(ctr1, status1)); err != nil {
		log.Fatal(err)
	}
	races := lrcrace.DedupRaces(sys1.Races())
	if len(races) == 0 {
		log.Fatal("run 1 found no races (unexpected)")
	}
	conflicted := races[0].Addr
	sym, _ := sys1.SymbolAt(conflicted)
	fmt.Printf("run 1: race detected at address 0x%x (variable %q)\n", uint64(conflicted), sym.Name)
	fmt.Printf("run 1: recorded %d lock-0 tenures: %v\n", len(rec.Order(0)), rec.Order(0))

	// Run 2: enforce the recorded order, watch the conflicting address.
	watch := lrcrace.NewSiteCollector(conflicted)
	sys2, ctr2, status2 := build(nil, lrcrace.NewEnforcer(rec), watch)
	if err := sys2.Run(worker(ctr2, status2)); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("run 2 (replayed): counter = %d (want %d)\n",
		sys2.SnapshotWord(ctr2), procs*iters)

	fmt.Println("run 2: racing instructions for the conflicted address:")
	for _, s := range watch.Sites() {
		fmt.Printf("  %v\n", s)
	}
}
