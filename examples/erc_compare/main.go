// Command erc_compare contrasts lazy release consistency with the eager
// variant it improves on (§3.1): the same lock-based workload runs under
// both protocols, and the message counts show the per-release invalidation
// broadcast that LRC defers — the deferral that produces the ordering
// metadata the race detector gets for free.
package main

import (
	"fmt"
	"log"

	"lrcrace"
)

const (
	procs = 4
	iters = 25
)

func run(proto lrcrace.Protocol) (*lrcrace.System, error) {
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs:   procs,
		SharedSize: 16 * 1024,
		Protocol:   proto,
	})
	if err != nil {
		return nil, err
	}
	ctr, err := sys.AllocWords("ctr", 1)
	if err != nil {
		return nil, err
	}
	err = sys.Run(func(p *lrcrace.Proc) {
		for i := 0; i < iters; i++ {
			p.Lock(1)
			p.Write(ctr, p.Read(ctr)+1)
			p.Unlock(1)
		}
	})
	if err != nil {
		return nil, err
	}
	if got := sys.SnapshotWord(ctr); got != procs*iters {
		return nil, fmt.Errorf("%v: counter = %d, want %d", proto, got, procs*iters)
	}
	return sys, nil
}

func main() {
	fmt.Printf("workload: %d processes × %d locked increments\n\n", procs, iters)
	fmt.Printf("%-16s %10s %12s %14s\n", "protocol", "messages", "wire bytes", "virtual time")
	for _, proto := range []lrcrace.Protocol{lrcrace.SingleWriter, lrcrace.EagerRC} {
		sys, err := run(proto)
		if err != nil {
			log.Fatal(err)
		}
		st := sys.NetStats()
		fmt.Printf("%-16s %10d %12d %11.1f ms\n",
			proto, st.TotalMessages(), st.TotalBytes(), float64(sys.VirtualTime())/1e6)
	}
	fmt.Println("\nERC pays a broadcast round (P-1 invalidations + acks) at every release;")
	fmt.Println("LRC piggybacks the same information on the lock grants it sends anyway.")
}
