// Command firstrace demonstrates §6.4 first-race filtering: a race in an
// early barrier epoch can corrupt data in ways that *cause* later races, so
// only the races of the earliest racy epoch — the "first" races, which no
// prior race could have affected — are trustworthy starting points for
// debugging. Because barriers order everything across epochs, all first
// races fall in one epoch, and the filter suppresses every later one.
package main

import (
	"fmt"
	"log"

	"lrcrace"
)

func run(firstOnly bool) {
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs:   2,
		SharedSize: 32 * 1024,
		Detect:     true,
		FirstOnly:  firstOnly,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Three variables on separate pages, raced in successive epochs.
	a, _ := sys.Alloc("a", 8192)
	b, _ := sys.Alloc("b", 8192)
	c, _ := sys.Alloc("c", 8192)

	err = sys.Run(func(p *lrcrace.Proc) {
		p.Barrier() // epoch 0: quiet
		p.Write(a, uint64(p.ID()))
		p.Barrier() // epoch 1: race on a — the first races
		p.Write(b, uint64(p.ID()))
		p.Barrier() // epoch 2: race on b — affected by epoch 1
		p.Write(c, uint64(p.ID()))
		p.Barrier() // epoch 3: race on c — affected too
	})
	if err != nil {
		log.Fatal(err)
	}
	races := lrcrace.DedupRaces(sys.Races())
	fmt.Printf("FirstOnly=%v → %d distinct race(s):\n", firstOnly, len(races))
	for _, r := range races {
		sym, _ := sys.SymbolAt(r.Addr)
		fmt.Printf("  epoch %d: %q\n", r.Epoch, sym.Name)
	}
	ds := sys.DetectorStats()
	if ds.SuppressedReports > 0 {
		fmt.Printf("  (%d later-epoch reports suppressed)\n", ds.SuppressedReports)
	}
}

func main() {
	run(false)
	fmt.Println()
	run(true)
}
