// Command quickstart is the smallest possible use of the library: two DSM
// processes write the same shared word without synchronization, and the
// LRC-metadata detector reports the write-write race at the barrier.
package main

import (
	"fmt"
	"log"

	"lrcrace"
)

func main() {
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs:   2,
		SharedSize: 8192,
		Detect:     true,
	})
	if err != nil {
		log.Fatal(err)
	}

	x, err := sys.AllocWords("x", 1)
	if err != nil {
		log.Fatal(err)
	}
	y, err := sys.AllocWords("y", 1)
	if err != nil {
		log.Fatal(err)
	}

	err = sys.Run(func(p *lrcrace.Proc) {
		// Unsynchronized concurrent writes to x: a data race.
		p.Write(x, uint64(p.ID()+1))

		// Properly locked updates of y: no race.
		p.Lock(0)
		p.Write(y, p.Read(y)+1)
		p.Unlock(0)

		p.Barrier() // race detection runs here
	})
	if err != nil {
		log.Fatal(err)
	}

	races := lrcrace.DedupRaces(sys.Races())
	fmt.Printf("detected %d distinct race(s):\n", len(races))
	for _, r := range races {
		sym, _ := sys.SymbolAt(r.Addr)
		fmt.Printf("  %v  [variable %q]\n", r, sym.Name)
	}
	fmt.Printf("final y = %d (locked counter is exact)\n", sys.SnapshotWord(y))
}
