// Command chaos runs the race detector over a deliberately bad wire: the
// simulated network drops, duplicates and reorders packets (seeded, so the
// run is reproducible), and the CVM-style reliability sublayer restores the
// exactly-once FIFO delivery the coherence protocol assumes. The detector
// reports the same races it would on a perfect network; the wire statistics
// show how hard the reliability layer had to work.
package main

import (
	"fmt"
	"log"

	"lrcrace"
)

func main() {
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs:   4,
		SharedSize: 16 * 1024,
		Detect:     true,
		Faults: &lrcrace.FaultPlan{
			Seed:    42,
			Drop:    0.10, // 10% of packets vanish
			Dup:     0.05, // 5% arrive twice
			Reorder: 0.10, // 10% are held back a few sends
		},
		Reliable: true, // required for a lossy plan
	})
	if err != nil {
		log.Fatal(err)
	}

	counter, _ := sys.AllocWords("counter", 1)
	racy, _ := sys.AllocWords("racy", 1)

	err = sys.Run(func(p *lrcrace.Proc) {
		// Lock-ordered increments: correct despite the lossy wire.
		for i := 0; i < 4; i++ {
			p.Lock(0)
			p.Write(counter, p.Read(counter)+1)
			p.Unlock(0)
		}
		// One unsynchronized write: a genuine race, same report every run.
		p.Write(racy, uint64(p.ID()))
		p.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("counter = %d (want 16: no lost updates over a 10%%-drop wire)\n",
		sys.SnapshotWord(counter))
	for _, r := range lrcrace.DedupRaces(sys.Races()) {
		sym, _ := sys.SymbolAt(r.Addr)
		fmt.Println(r, "on variable", sym.Name)
	}

	st := sys.NetStats()
	fmt.Printf("wire: dropped %d, duplicated %d, reordered %d\n",
		st.TotalDropped(), st.TotalDuplicated(), st.Reordered)
	fmt.Printf("reliability: retransmitted %d (%d bytes), deduped %d, link errors %d\n",
		st.Retransmits, st.RetransBytes, st.Deduped, st.Errors)
}
