package lrcrace_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"lrcrace"
)

// TestFacadeQuickstart exercises the documented public-API flow.
func TestFacadeQuickstart(t *testing.T) {
	sys, err := lrcrace.New(lrcrace.Config{NumProcs: 2, SharedSize: 8192, Detect: true})
	if err != nil {
		t.Fatal(err)
	}
	x, err := sys.AllocWords("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Run(func(p *lrcrace.Proc) {
		p.Write(x, uint64(p.ID()))
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	races := lrcrace.DedupRaces(sys.Races())
	if len(races) != 1 || !races[0].WriteWrite() {
		t.Fatalf("races = %v", sys.Races())
	}
	if sym, ok := sys.SymbolAt(races[0].Addr); !ok || sym.Name != "x" {
		t.Errorf("symbol = %+v", sym)
	}
}

// TestFacadeHBDetector attaches the reference detector through the facade.
func TestFacadeHBDetector(t *testing.T) {
	hb := lrcrace.NewHBDetector(2)
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs: 2, SharedSize: 4096, Detect: true, Tracer: hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sys.AllocWords("x", 1)
	if err := sys.Run(func(p *lrcrace.Proc) {
		p.Write(x, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if len(hb.RacyAddrs()) != len(lrcrace.DedupRaces(sys.Races())) {
		t.Errorf("detectors disagree: hb=%v lrc=%v", hb.RacyAddrs(), sys.Races())
	}
}

// TestFacadeReplay drives the §6.1 flow through the facade types.
func TestFacadeReplay(t *testing.T) {
	rec := lrcrace.NewSyncRecord()
	sys, _ := lrcrace.New(lrcrace.Config{
		NumProcs: 2, SharedSize: 4096, Detect: true, SyncRecorder: rec,
	})
	x, _ := sys.AllocWords("x", 1)
	worker := func(p *lrcrace.Proc) {
		p.Lock(0)
		p.Write(x, p.Read(x)+1)
		p.Unlock(0)
		_ = p.Read(x) // racy
	}
	if err := sys.Run(worker); err != nil {
		t.Fatal(err)
	}
	races := lrcrace.DedupRaces(sys.Races())
	if len(races) == 0 {
		t.Fatal("no race in run 1")
	}

	watch := lrcrace.NewSiteCollector(races[0].Addr)
	sys2, _ := lrcrace.New(lrcrace.Config{
		NumProcs: 2, SharedSize: 4096, Detect: true,
		SyncEnforcer: lrcrace.NewEnforcer(rec), Watch: watch,
	})
	if _, err := sys2.AllocWords("x", 1); err != nil {
		t.Fatal(err)
	}
	if err := sys2.Run(worker); err != nil {
		t.Fatal(err)
	}
	if len(watch.Sites()) == 0 {
		t.Error("no sites collected in run 2")
	}
}

// TestFacadeExperiment runs one small harness experiment.
func TestFacadeExperiment(t *testing.T) {
	res, err := lrcrace.RunExperiment(lrcrace.ExperimentConfig{
		App: "SOR", Scale: 0.1, Procs: 2, Detect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.VirtualNS == 0 || len(res.Races) != 0 {
		t.Errorf("unexpected result: vt=%d races=%v", res.VirtualNS, res.Races)
	}
}

func TestFacadeTable2(t *testing.T) {
	var buf bytes.Buffer
	lrcrace.WriteTable2(&buf)
	out := buf.String()
	for _, app := range lrcrace.Apps() {
		if !strings.Contains(out, app) {
			t.Errorf("Table 2 missing %s:\n%s", app, out)
		}
	}
	if !strings.Contains(out, "124716") {
		t.Errorf("Table 2 missing paper values:\n%s", out)
	}
}

// TestFacadeTCPTransport runs the quickstart flow over real sockets.
func TestFacadeTCPTransport(t *testing.T) {
	tr, err := lrcrace.NewTCPTransport(2)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs: 2, SharedSize: 8192, Detect: true, Transport: tr,
	})
	if err != nil {
		t.Fatal(err)
	}
	x, _ := sys.AllocWords("x", 1)
	if err := sys.Run(func(p *lrcrace.Proc) {
		p.Write(x, uint64(p.ID()))
		p.Barrier()
	}); err != nil {
		t.Fatal(err)
	}
	if races := lrcrace.DedupRaces(sys.Races()); len(races) != 1 {
		t.Errorf("races over TCP = %v", races)
	}
}

// TestFacadeCrashRecovery drives the documented crash-tolerance flow:
// inject a fail-stop death, recover from the barrier-epoch checkpoints,
// and finish with correct memory (see docs/ROBUSTNESS.md).
func TestFacadeCrashRecovery(t *testing.T) {
	sys, err := lrcrace.New(lrcrace.Config{
		NumProcs:           3,
		SharedSize:         8192,
		Detect:             true,
		Reliable:           true,
		BarrierWallTimeout: 5 * time.Second,
		Crash:              &lrcrace.CrashPlan{Victim: 1, Epoch: 1, Point: lrcrace.CrashMidInterval},
	})
	if err != nil {
		t.Fatal(err)
	}
	slots, err := sys.AllocWords("slots", 3)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 3
	err = sys.RunEpochs(epochs, func() lrcrace.EpochFunc {
		return func(p *lrcrace.Proc, e int32) {
			a := slots + lrcrace.Addr(p.ID()*8)
			p.Write(a, p.Read(a)+1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	rs := sys.RecoveryStats()
	if rs.Recoveries != 1 || rs.LastVictim != 1 {
		t.Fatalf("recovery stats = %+v, want one rollback blaming p1", rs)
	}
	if cs := sys.CheckpointStats(); cs.Count == 0 || cs.Bytes == 0 {
		t.Errorf("checkpoint stats = %+v, want nonzero", cs)
	}
	for p := 0; p < 3; p++ {
		if got := sys.SnapshotWord(slots + lrcrace.Addr(p*8)); got != epochs {
			t.Errorf("slot %d = %d after recovery, want %d", p, got, epochs)
		}
	}
}
