package sweep

import (
	"context"
	"fmt"
	"io"
	"runtime/debug"
	"sync"
	"time"

	"lrcrace/internal/harness"
	"lrcrace/internal/race"
	"lrcrace/internal/telemetry"
)

// Status is the terminal state of one cell.
type Status string

// Cell terminal states. A cell missing from the results (sweep
// interrupted before it finished) has no status; resuming re-runs it.
const (
	StatusOK      Status = "ok"      // run completed and verified
	StatusFailed  Status = "failed"  // run returned an error on every attempt
	StatusTimeout Status = "timeout" // run exceeded the per-cell deadline
	StatusPanic   Status = "panic"   // run panicked (caught; sweep continued)
)

// Terminal reports whether the status means the cell is done and a resumed
// sweep must not re-run it.
func (s Status) Terminal() bool {
	switch s {
	case StatusOK, StatusFailed, StatusTimeout, StatusPanic:
		return true
	}
	return false
}

// CellResult is the persisted outcome of one cell.
type CellResult struct {
	ID      string `json:"id"`
	Status  Status `json:"status"`
	Error   string `json:"error,omitempty"`
	Attempt int    `json:"attempt"` // 1-based attempt that produced this result

	Races         int   `json:"races"`
	DistinctRaces int   `json:"distinct_races"`
	VirtualNS     int64 `json:"virtual_ns"`
	// WallNS is real execution time — reported in the summary but never in
	// the aggregated metrics document, which must be deterministic.
	WallNS int64 `json:"wall_ns"`

	// Metrics is the cell's canonical metrics snapshot (wall-dependent
	// series stripped); nil for cells that never produced a result.
	Metrics *telemetry.Snapshot `json:"metrics,omitempty"`
}

// Options tunes sweep execution.
type Options struct {
	// Workers is the number of cells run concurrently; 0 → 4.
	Workers int
	// CellTimeout bounds one attempt's wall time; 0 → 2 minutes. The run's
	// barrier wall timeout is set from it too (unless the plan is lossy and
	// the reliable sublayer's own link-death detection is in charge), so a
	// wedged barrier aborts itself instead of leaking a live System.
	CellTimeout time.Duration
	// Retries is how many extra attempts a failed or panicking cell gets
	// before its failure is recorded; timeouts are never retried.
	Retries int
	// Dir, when non-empty, persists the manifest and per-cell results
	// there, making the sweep resumable (see manifest.go).
	Dir string
	// TelemetryCap is the per-ring event capacity of each cell's recorder;
	// 0 → 4096, negative → unbounded.
	TelemetryCap int
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = 4
	}
	if o.CellTimeout <= 0 {
		o.CellTimeout = 2 * time.Minute
	}
	if o.TelemetryCap == 0 {
		o.TelemetryCap = 4096
	}
	return o
}

// Sweep is one orchestrated grid execution: the expanded plan, the results
// gathered so far, and the live per-cell recorders the HTTP endpoint
// serves. Create with New, execute with Run; the read-side accessors are
// safe to call concurrently with Run (that is the point of them).
type Sweep struct {
	plan  *Plan
	opts  Options
	cells []Cell

	mu      sync.Mutex
	results map[string]*CellResult
	live    map[string]*telemetry.Recorder // recorders of cells in flight
	flight  map[string]*telemetry.Recorder // latest recorder per cell, kept for /flight
	start   time.Time
}

// New expands the plan and, when opts.Dir is set, loads any previous
// results from it (writing the manifest on first use). Cells whose results
// were loaded are skipped by Run.
func New(plan *Plan, opts Options) (*Sweep, error) {
	cells, err := plan.Expand()
	if err != nil {
		return nil, err
	}
	s := &Sweep{
		plan:    plan,
		opts:    opts.withDefaults(),
		cells:   cells,
		results: make(map[string]*CellResult),
		live:    make(map[string]*telemetry.Recorder),
		flight:  make(map[string]*telemetry.Recorder),
	}
	if s.opts.Dir != "" {
		loaded, err := initDir(s.opts.Dir, plan, cells)
		if err != nil {
			return nil, err
		}
		for id, r := range loaded {
			s.results[id] = r
		}
	}
	return s, nil
}

// Cells returns the expanded grid in plan order.
func (s *Sweep) Cells() []Cell { return s.cells }

// Pending returns the cells that still lack a terminal result, in plan
// order — what Run would execute, or what a remote dispatcher should
// submit. Resume-aware: cells loaded from the checkpoint directory are
// not pending.
func (s *Sweep) Pending() []Cell {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []Cell
	for _, c := range s.cells {
		if r, ok := s.results[c.ID]; !ok || !r.Status.Terminal() {
			out = append(out, c)
		}
	}
	return out
}

// Record adopts an externally produced terminal result for one of the
// sweep's cells — the merge half of remote dispatch (`sweeprun -remote`):
// a result fetched from a detection-service session lands in the same
// in-memory results map and, when the sweep has a checkpoint directory,
// the same atomically written cell file as a locally run cell, so
// summaries, metrics documents, and resume behave identically.
func (s *Sweep) Record(r *CellResult) error {
	if r == nil || !r.Status.Terminal() {
		return fmt.Errorf("sweep: Record needs a terminal result")
	}
	known := false
	for _, c := range s.cells {
		if c.ID == r.ID {
			known = true
			break
		}
	}
	if !known {
		return fmt.Errorf("sweep: result for unknown cell %q", r.ID)
	}
	s.mu.Lock()
	s.results[r.ID] = r
	s.mu.Unlock()
	if s.opts.Dir != "" {
		return writeCellResult(s.opts.Dir, r)
	}
	return nil
}

// Run executes every cell that does not already have a terminal result,
// at most Options.Workers at a time. A failed, wedged, or panicking cell
// is recorded and the sweep continues; Run's error is reserved for the
// sweep's own machinery (context cancellation, checkpoint I/O). The
// returned Summary covers all cells, including ones loaded from a
// previous interrupted run.
func (s *Sweep) Run(ctx context.Context) (*Summary, error) {
	s.mu.Lock()
	s.start = time.Now()
	pending := make([]Cell, 0, len(s.cells))
	for _, c := range s.cells {
		if r, ok := s.results[c.ID]; !ok || !r.Status.Terminal() {
			pending = append(pending, c)
		}
	}
	s.mu.Unlock()

	jobs := make(chan Cell)
	var wg sync.WaitGroup
	var ioMu sync.Mutex
	var ioErr error
	for i := 0; i < s.opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				res := s.runCell(ctx, c)
				if res == nil {
					continue // canceled mid-cell; leave it missing for resume
				}
				s.mu.Lock()
				s.results[c.ID] = res
				s.mu.Unlock()
				if s.opts.Dir != "" {
					if err := writeCellResult(s.opts.Dir, res); err != nil {
						ioMu.Lock()
						if ioErr == nil {
							ioErr = err
						}
						ioMu.Unlock()
					}
				}
			}
		}()
	}
feed:
	for _, c := range pending {
		select {
		case jobs <- c:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if ioErr != nil {
		return s.Summary(), ioErr
	}
	return s.Summary(), ctx.Err()
}

// runCell executes one cell with attempt/panic/deadline isolation. It
// returns nil when the context was canceled before a terminal outcome.
func (s *Sweep) runCell(ctx context.Context, c Cell) *CellResult {
	attempts := 1 + s.opts.Retries
	var last *CellResult
	for attempt := 1; attempt <= attempts; attempt++ {
		if ctx.Err() != nil {
			return nil
		}
		last = s.attemptCell(ctx, c, attempt)
		if last == nil || last.Status == StatusOK || last.Status == StatusTimeout {
			return last
		}
	}
	return last
}

type cellOutcome struct {
	res *harness.Result
	err error
}

// attemptCell is one isolated execution: its own System, its own recorder,
// its own goroutine so a wedged or panicking run is abandoned at the
// deadline instead of taking the sweep down. The abandoned goroutine's
// telemetry stays in its own recorder, so it cannot corrupt later cells.
func (s *Sweep) attemptCell(ctx context.Context, c Cell, attempt int) *CellResult {
	cfg, err := s.plan.RunConfig(c)
	if err != nil {
		return &CellResult{ID: c.ID, Status: StatusFailed, Error: err.Error(), Attempt: attempt}
	}
	rec := telemetry.New(telemetry.Config{
		Procs:      c.Procs,
		Cap:        s.opts.TelemetryCap,
		FlightSink: io.Discard, // dumps are served on demand, not spammed to stderr
	})
	cfg.Recorder = rec
	// Chaos cells keep the harness's own tight wall timeout: it doubles as
	// the crash detector for quiet deaths (a mid-interval victim produces no
	// link traffic, so only the barrier wall timeout notices it), and a
	// detector as slow as the cell deadline would read as a wedged cell.
	if cfg.BarrierWallTimeout == 0 && !cfg.Reliable && !harness.IsChaosApp(cfg.App) {
		cfg.BarrierWallTimeout = s.opts.CellTimeout
	}

	s.mu.Lock()
	s.live[c.ID] = rec
	s.flight[c.ID] = rec // retained after completion so /flight still answers
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.live, c.ID)
		s.mu.Unlock()
	}()

	out := make(chan cellOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				out <- cellOutcome{err: fmt.Errorf("panic: %v\n%s", p, debug.Stack())}
			}
		}()
		res, err := harness.Run(cfg)
		out <- cellOutcome{res: res, err: err}
	}()

	timer := time.NewTimer(s.opts.CellTimeout)
	defer timer.Stop()
	select {
	case o := <-out:
		if o.err != nil {
			status := StatusFailed
			if len(o.err.Error()) > 6 && o.err.Error()[:6] == "panic:" {
				status = StatusPanic
			}
			return &CellResult{ID: c.ID, Status: status, Error: o.err.Error(), Attempt: attempt,
				Metrics: rec.Metrics().Snapshot().Canonical()}
		}
		return &CellResult{
			ID:            c.ID,
			Status:        StatusOK,
			Attempt:       attempt,
			Races:         len(o.res.Races),
			DistinctRaces: len(race.DedupByAddr(o.res.Races)),
			VirtualNS:     o.res.VirtualNS,
			WallNS:        o.res.WallNS,
			Metrics:       rec.Metrics().Snapshot().Canonical(),
		}
	case <-timer.C:
		// The run goroutine may be wedged; abandon it. Its System and
		// recorder are private to this attempt, so the leak is bounded and
		// harmless to every other cell.
		return &CellResult{ID: c.ID, Status: StatusTimeout, Attempt: attempt,
			Error:   fmt.Sprintf("cell exceeded %v", s.opts.CellTimeout),
			Metrics: rec.Metrics().Snapshot().Canonical()}
	case <-ctx.Done():
		return nil
	}
}

// Progress is a point-in-time view of the sweep for the HTTP endpoint.
type Progress struct {
	Total   int    `json:"total"`
	Done    int    `json:"done"`
	OK      int    `json:"ok"`
	Failed  int    `json:"failed"` // failed + timeout + panic
	Running int    `json:"running"`
	Races   int    `json:"races"`
	Elapsed string `json:"elapsed,omitempty"`

	Cells []CellStatus `json:"cells"`
}

// CellStatus is one cell's line in the progress view.
type CellStatus struct {
	ID      string `json:"id"`
	Status  Status `json:"status"` // "" → not started, "running" → in flight
	Races   int    `json:"races,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	Error   string `json:"error,omitempty"`
}

// Progress returns the sweep's current state; safe during Run.
func (s *Sweep) Progress() Progress {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := Progress{Total: len(s.cells)}
	if !s.start.IsZero() {
		p.Elapsed = time.Since(s.start).Round(time.Millisecond).String()
	}
	for _, c := range s.cells {
		cs := CellStatus{ID: c.ID}
		if r, ok := s.results[c.ID]; ok && r.Status.Terminal() {
			cs.Status, cs.Races, cs.Attempt, cs.Error = r.Status, r.Races, r.Attempt, r.Error
			p.Done++
			if r.Status == StatusOK {
				p.OK++
			} else {
				p.Failed++
			}
			p.Races += r.Races
		} else if _, running := s.live[c.ID]; running {
			cs.Status = "running"
			p.Running++
		}
		p.Cells = append(p.Cells, cs)
	}
	return p
}

// snapshots returns every cell's metrics snapshot: finished cells from
// their results, in-flight cells live from their recorders.
func (s *Sweep) snapshots() map[string]*telemetry.Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]*telemetry.Snapshot)
	for id, r := range s.results {
		if r.Metrics != nil {
			out[id] = r.Metrics
		}
	}
	for id, rec := range s.live {
		out[id] = rec.Metrics().Snapshot()
	}
	return out
}

// flightRecorder returns a cell's most recent recorder (in flight or
// finished this process), or nil if the cell never started here.
func (s *Sweep) flightRecorder(id string) *telemetry.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flight[id]
}
