package sweep

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// planFFTSOR is the deterministic test grid: barrier-only applications
// (FFT, SOR) whose virtual-time simulation is schedule-independent, so
// canonical metrics are byte-stable across runs.
func planFFTSOR() *Plan {
	return &Plan{
		Apps:   []string{"FFT", "SOR"},
		Scales: []float64{0.5},
		Procs:  []int{2},
		Detect: []bool{true, false},
	}
}

func TestExpand(t *testing.T) {
	p := &Plan{
		Apps:    []string{"TSP", "Water"},
		Procs:   []int{2, 4},
		Detect:  []bool{true, false},
		Sharded: []bool{false, true},
	}
	cells, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// sharded=true is skipped for detect=false: 2 apps × 2 procs × (2·2 − 1).
	if want := 2 * 2 * 3; len(cells) != want {
		t.Fatalf("expanded to %d cells, want %d", len(cells), want)
	}
	seen := map[string]bool{}
	for _, c := range cells {
		if seen[c.ID] {
			t.Fatalf("duplicate cell ID %s", c.ID)
		}
		seen[c.ID] = true
		if c.Sharded && !c.Detect {
			t.Fatalf("invalid combination expanded: %s", c.ID)
		}
	}

	if _, err := (&Plan{}).Expand(); err == nil {
		t.Error("empty plan expanded without error")
	}
	if _, err := (&Plan{Apps: []string{"X"}, Protocols: []string{"bogus"}}).Expand(); err == nil {
		t.Error("bogus protocol expanded without error")
	}
	if _, err := (&Plan{Apps: []string{"X", "X"}}).Expand(); err == nil {
		t.Error("repeated axis value expanded without error")
	}
}

func TestExpandBarrierTreeAxis(t *testing.T) {
	p := &Plan{
		Apps:         []string{"Water"},
		Procs:        []int{4, 8},
		BarrierTrees: []int{0, 2, 4},
	}
	cells, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3; len(cells) != want {
		t.Fatalf("expanded to %d cells, want %d", len(cells), want)
	}
	var flat, bt2 bool
	for _, c := range cells {
		rc, err := p.RunConfig(c)
		if err != nil {
			t.Fatal(err)
		}
		if rc.BarrierTree != c.BarrierTree {
			t.Fatalf("cell %s: RunConfig.BarrierTree = %d, want %d", c.ID, rc.BarrierTree, c.BarrierTree)
		}
		switch c.BarrierTree {
		case 0:
			// Flat cells keep their pre-axis names so existing sweep
			// checkpoints stay resumable.
			if strings.Contains(c.ID, "-bt") {
				t.Fatalf("flat cell ID %s carries a tree suffix", c.ID)
			}
			flat = true
		case 2:
			if !strings.Contains(c.ID, "-bt2") {
				t.Fatalf("tree cell ID %s missing -bt2 suffix", c.ID)
			}
			bt2 = true
		}
	}
	if !flat || !bt2 {
		t.Fatal("axis values missing from the expansion")
	}

	if _, err := (&Plan{Apps: []string{"Water"}, BarrierTrees: []int{1}}).Expand(); err == nil {
		t.Error("arity-1 tree expanded without error")
	}
	if _, err := (&Plan{Apps: []string{"Water"}, BarrierTrees: []int{-2}}).Expand(); err == nil {
		t.Error("negative arity expanded without error")
	}
}

func TestFingerprintStability(t *testing.T) {
	a, b := planFFTSOR(), planFFTSOR()
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("equal plans fingerprint differently")
	}
	b.Procs = []int{4}
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("different plans fingerprint equal")
	}
	// Explicit defaults fingerprint like implied ones: same grid, same
	// identity.
	c := planFFTSOR()
	c.Protocols = []string{"sw"}
	if a.Fingerprint() != c.Fingerprint() {
		t.Error("default and explicit-default plans fingerprint differently")
	}
}

func runSweep(t *testing.T, plan *Plan, opts Options) (*Sweep, *Summary) {
	t.Helper()
	s, err := New(plan, opts)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return s, sum
}

func metricsBytes(t *testing.T, s *Sweep) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := s.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestDeterministicMetrics is the acceptance bar for the aggregated
// document: two executions of the same deterministic plan (same seeds,
// concurrent workers both times) produce byte-identical metrics JSON.
func TestDeterministicMetrics(t *testing.T) {
	s1, sum1 := runSweep(t, planFFTSOR(), Options{Workers: 4})
	s2, sum2 := runSweep(t, planFFTSOR(), Options{Workers: 4})
	if sum1.OK != sum1.Total || sum2.OK != sum2.Total {
		t.Fatalf("sweeps not clean: %+v / %+v", sum1, sum2)
	}
	b1, b2 := metricsBytes(t, s1), metricsBytes(t, s2)
	if !bytes.Equal(b1, b2) {
		t.Errorf("aggregated metrics JSON differs between identical runs:\nrun1 %d bytes, run2 %d bytes", len(b1), len(b2))
	}
}

// TestResume simulates an interrupted grid: a checkpoint directory holding
// only some cells' results must cause a restart to re-execute exactly the
// missing cells, and the resumed aggregate must equal a from-scratch run.
func TestResume(t *testing.T) {
	plan := planFFTSOR()

	// Reference: the full grid from scratch.
	dirA := t.TempDir()
	sA, sumA := runSweep(t, plan, Options{Workers: 4, Dir: dirA})
	if sumA.OK != sumA.Total {
		t.Fatalf("reference sweep not clean: %+v", sumA)
	}

	// Interrupted state: a directory with the manifest and half the cells.
	dirB := t.TempDir()
	if _, err := New(plan, Options{Dir: dirB}); err != nil {
		t.Fatal(err)
	}
	cells, _ := plan.Expand()
	copied := map[string]time.Time{}
	for i, c := range cells {
		if i%2 != 0 {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dirA, "cells", c.ID+".json"))
		if err != nil {
			t.Fatal(err)
		}
		dst := filepath.Join(dirB, "cells", c.ID+".json")
		if err := os.WriteFile(dst, b, 0o644); err != nil {
			t.Fatal(err)
		}
		st, _ := os.Stat(dst)
		copied[c.ID] = st.ModTime()
	}

	// Resume: only the missing cells may execute.
	sB, err := New(plan, Options{Workers: 4, Dir: dirB})
	if err != nil {
		t.Fatal(err)
	}
	preloaded := sB.Progress().Done
	if preloaded != len(copied) {
		t.Fatalf("resume loaded %d cells, want %d", preloaded, len(copied))
	}
	sumB, err := sB.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sumB.OK != sumB.Total || sumB.Missing != 0 {
		t.Fatalf("resumed sweep not clean: %+v", sumB)
	}
	for id, mtime := range copied {
		st, err := os.Stat(filepath.Join(dirB, "cells", id+".json"))
		if err != nil {
			t.Fatal(err)
		}
		if !st.ModTime().Equal(mtime) {
			t.Errorf("cell %s was re-written on resume; preloaded results must not re-execute", id)
		}
	}

	if !bytes.Equal(metricsBytes(t, sA), metricsBytes(t, sB)) {
		t.Error("resumed aggregate differs from the from-scratch run")
	}

	// A different plan must refuse the directory instead of mixing grids.
	other := planFFTSOR()
	other.Procs = []int{4}
	if _, err := New(other, Options{Dir: dirB}); err == nil {
		t.Error("New accepted a checkpoint dir holding a different plan")
	}
}

// TestCellFailureIsolation: a cell that cannot run (unknown application)
// is a failed cell, not a failed sweep, and retries are attempted.
func TestCellFailureIsolation(t *testing.T) {
	plan := &Plan{Apps: []string{"NoSuchApp", "SOR"}, Scales: []float64{0.5}, Procs: []int{2}}
	s, sum := runSweep(t, plan, Options{Workers: 2, Retries: 1})
	if sum.OK != 1 || sum.Failed != 1 {
		t.Fatalf("got %d ok / %d failed, want 1/1 (%+v)", sum.OK, sum.Failed, sum)
	}
	for _, r := range sum.Cells {
		if r.Status == StatusFailed && r.Attempt != 2 {
			t.Errorf("failed cell recorded attempt %d, want 2 (Retries=1)", r.Attempt)
		}
	}
	_ = s
}

// TestCellTimeout: a cell exceeding the deadline is recorded as timed out
// while the rest of the grid completes.
func TestCellTimeout(t *testing.T) {
	// SOR at scale 0.25 finishes in milliseconds even with the Go race
	// detector on; TSP at the same scale runs for several seconds.
	plan := &Plan{Apps: []string{"TSP", "SOR"}, Scales: []float64{0.25}, Procs: []int{2}}
	s, err := New(plan, Options{Workers: 2, CellTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	status := map[string]Status{}
	for _, r := range sum.Cells {
		status[r.ID] = r.Status
	}
	if got := status["TSP-s0.25-p2-sw-d1-sh0-ck1-seed0"]; got != StatusTimeout {
		t.Errorf("TSP cell status %q, want timeout", got)
	}
	if got := status["SOR-s0.25-p2-sw-d1-sh0-ck1-seed0"]; got != StatusOK {
		t.Errorf("SOR cell status %q, want ok (timeout must not poison the sweep)", got)
	}
}
