package sweep

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"
)

// promLine matches one Prometheus text-format sample:
// name{labels} value — labels optional, value a Go float.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*,?\})? -?[0-9].*$`)

// checkPromText validates a /metrics body: every non-comment line is a
// well-formed sample and every family declares its # TYPE exactly once.
func checkPromText(t *testing.T, body string) {
	t.Helper()
	typed := map[string]bool{}
	sc := bufio.NewScanner(strings.NewReader(body))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	lines := 0
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		lines++
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Errorf("malformed TYPE line: %q", line)
				continue
			}
			if typed[fields[2]] {
				t.Errorf("family %s declared # TYPE twice", fields[2])
			}
			typed[fields[2]] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("unparseable metrics line: %q", line)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 {
		t.Error("empty /metrics body")
	}
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(b)
}

// TestServeLiveMetrics scrapes the HTTP surface while a sweep is running
// and again after it finishes: /metrics must be valid Prometheus text both
// times, /sweep must decode as Progress, and /flight/<id> must dump a
// started cell's recorder.
func TestServeLiveMetrics(t *testing.T) {
	// One worker over four cells keeps the sweep observably "running".
	plan := planFFTSOR()
	s, err := New(plan, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	done := make(chan *Summary, 1)
	go func() {
		sum, err := s.Run(context.Background())
		if err != nil {
			t.Error(err)
		}
		done <- sum
	}()

	// Wait until at least one cell has started, then scrape mid-run.
	var started string
	deadline := time.After(10 * time.Second)
	for started == "" {
		select {
		case <-deadline:
			t.Fatal("no cell started within 10s")
		default:
		}
		for _, cs := range s.Progress().Cells {
			if cs.Status != "" {
				started = cs.ID
				break
			}
		}
		if started == "" {
			time.Sleep(time.Millisecond)
		}
	}
	code, body := get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics mid-run: status %d", code)
	}
	checkPromText(t, body)
	if !strings.Contains(body, "sweep_cells_total 4") {
		t.Errorf("/metrics missing sweep_cells_total 4:\n%.400s", body)
	}

	code, body = get(t, srv.URL+"/sweep")
	if code != http.StatusOK {
		t.Fatalf("/sweep: status %d", code)
	}
	var p Progress
	if err := json.Unmarshal([]byte(body), &p); err != nil {
		t.Fatalf("/sweep body does not decode as Progress: %v", err)
	}
	if p.Total != 4 {
		t.Errorf("/sweep Total = %d, want 4", p.Total)
	}

	if code, _ := get(t, srv.URL+"/flight/"+started); code != http.StatusOK {
		t.Errorf("/flight/%s: status %d, want 200", started, code)
	}
	if code, _ := get(t, srv.URL+"/flight/no-such-cell"); code != http.StatusNotFound {
		t.Errorf("/flight of unknown cell: status %d, want 404", code)
	}

	sum := <-done
	if sum == nil || sum.OK != sum.Total {
		t.Fatalf("sweep did not finish clean: %+v", sum)
	}

	// Final scrape: all cells present with the cell label, aggregates too.
	code, body = get(t, srv.URL+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics post-run: status %d", code)
	}
	checkPromText(t, body)
	cells, _ := plan.Expand()
	for _, c := range cells {
		if !strings.Contains(body, `cell="`+c.ID+`"`) {
			t.Errorf("final /metrics missing series for cell %s", c.ID)
		}
	}
	if !strings.Contains(body, "sweep_cells_ok 4") {
		t.Error("final /metrics missing sweep_cells_ok 4")
	}
	// Cell-free aggregate lines exist alongside the labeled ones.
	if !regexp.MustCompile(`(?m)^telemetry_events_total\{kind="BarrierArrive"\} \d+$`).MatchString(body) {
		t.Error("final /metrics missing cell-free aggregate for telemetry_events_total")
	}
}
