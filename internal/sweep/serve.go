package sweep

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"time"

	"lrcrace/internal/telemetry"
)

// Handler returns the sweep's live HTTP surface:
//
//	/metrics       — Prometheus text: sweep progress gauges, every cell's
//	                 series labeled cell="<id>" (finished cells from their
//	                 canonical results, in-flight cells straight off their
//	                 recorders), and unlabeled aggregate sums per family
//	/sweep         — JSON progress (Progress)
//	/flight/<id>   — flight-recorder dump of a cell's latest attempt
//
// All endpoints are read-only and safe to scrape while Run executes.
func (s *Sweep) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/sweep", s.handleSweep)
	mux.HandleFunc("/flight/", s.handleFlight)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		fmt.Fprint(w, "lrcrace sweep: /metrics (Prometheus text), /sweep (JSON progress), /flight/<cell-id> (flight dump)\n")
	})
	return mux
}

// Serve listens on addr (e.g. ":9090" or "127.0.0.1:0") and serves Handler
// in the background, returning the server and the bound address. The
// server carries read-header/read/write/idle timeouts so a stalled or
// malicious scraper cannot pin a connection forever. Stop it gracefully
// with srv.Shutdown (drains in-flight scrapes) or abruptly with
// srv.Close; commands share that scaffolding via cmd/internal/cli.
func (s *Sweep) Serve(addr string) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", fmt.Errorf("sweep: metrics listener: %w", err)
	}
	srv := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}

func (s *Sweep) handleSweep(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.Progress())
}

func (s *Sweep) handleFlight(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/flight/")
	rec := s.flightRecorder(id)
	if rec == nil {
		http.Error(w, fmt.Sprintf("no recorder for cell %q (not started yet?)", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rec.DumpFlight(w, "on-demand dump over /flight")
}

func (s *Sweep) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := s.Progress()
	for _, g := range []struct {
		name, help string
		v          int
	}{
		{"sweep_cells_total", "Cells in the sweep grid.", p.Total},
		{"sweep_cells_done", "Cells with a terminal result.", p.Done},
		{"sweep_cells_ok", "Cells that completed and verified.", p.OK},
		{"sweep_cells_failed", "Cells that failed, timed out, or panicked.", p.Failed},
		{"sweep_cells_running", "Cells currently in flight.", p.Running},
		{"sweep_races_total", "Dynamic race reports across finished cells.", p.Races},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v)
	}
	WriteSnapshotsProm(w, "cell", s.snapshots())
}

// injectLabel prefixes a snapshot series key's label set with label="id".
func injectLabel(key, label, id string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i] + `{` + label + `="` + id + `",` + key[i+1:]
	}
	return key + `{` + label + `="` + id + `"}`
}

// baseName strips the label set off a snapshot series key.
func baseName(key string) string {
	if i := strings.IndexByte(key, '{'); i >= 0 {
		return key[:i]
	}
	return key
}

// WriteSnapshotsProm renders a keyed set of snapshots as one valid
// Prometheus text exposition: each family appears once (# TYPE emitted a
// single time), carrying every snapshot's series with an injected
// label="key" pair (the sweep labels cells cell="<id>", the detection
// service labels sessions session="<id>"), and — for counters and gauges
// — an unlabeled aggregate sum per original series. Histograms are
// rendered per key only. Ordering is fully deterministic: families, keys,
// and series names all sort lexicographically.
func WriteSnapshotsProm(w io.Writer, label string, cells map[string]*telemetry.Snapshot) {
	ids := make([]string, 0, len(cells))
	for id := range cells {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	for _, fam := range snapshotFamilies(cells, func(s *telemetry.Snapshot) []string {
		return int64Keys(s.Counters)
	}) {
		fmt.Fprintf(w, "# TYPE %s counter\n", fam)
		agg := make(map[string]int64)
		for _, id := range ids {
			s := cells[id]
			for _, k := range familyKeys(int64Keys(s.Counters), fam) {
				fmt.Fprintf(w, "%s %d\n", injectLabel(k, label, id), s.Counters[k])
				agg[k] += s.Counters[k]
			}
		}
		for _, k := range sortedKeys(agg) {
			fmt.Fprintf(w, "%s %d\n", k, agg[k])
		}
	}

	for _, fam := range snapshotFamilies(cells, func(s *telemetry.Snapshot) []string {
		return float64Keys(s.Gauges)
	}) {
		fmt.Fprintf(w, "# TYPE %s gauge\n", fam)
		agg := make(map[string]float64)
		for _, id := range ids {
			s := cells[id]
			for _, k := range familyKeys(float64Keys(s.Gauges), fam) {
				fmt.Fprintf(w, "%s %g\n", injectLabel(k, label, id), s.Gauges[k])
				agg[k] += s.Gauges[k]
			}
		}
		for _, k := range sortedKeys(agg) {
			fmt.Fprintf(w, "%s %g\n", k, agg[k])
		}
	}

	for _, fam := range snapshotFamilies(cells, func(s *telemetry.Snapshot) []string {
		return histKeys(s.Histograms)
	}) {
		fmt.Fprintf(w, "# TYPE %s histogram\n", fam)
		for _, id := range ids {
			s := cells[id]
			for _, k := range familyKeys(histKeys(s.Histograms), fam) {
				h := s.Histograms[k]
				inner := ""
				if i := strings.IndexByte(k, '{'); i >= 0 {
					inner = k[i+1 : len(k)-1]
				}
				lbl := func(extra string) string {
					parts := []string{label + `="` + id + `"`}
					if inner != "" {
						parts = append(parts, inner)
					}
					if extra != "" {
						parts = append(parts, extra)
					}
					return strings.Join(parts, ",")
				}
				for _, b := range h.Buckets {
					fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, lbl(fmt.Sprintf("le=%q", fmtG(b.LE))), b.Count)
				}
				fmt.Fprintf(w, "%s_bucket{%s} %d\n", fam, lbl(`le="+Inf"`), h.Count)
				fmt.Fprintf(w, "%s_sum{%s} %g\n", fam, lbl(""), h.Sum)
				fmt.Fprintf(w, "%s_count{%s} %d\n", fam, lbl(""), h.Count)
			}
		}
	}
}

func fmtG(v float64) string { return fmt.Sprintf("%g", v) }

func int64Keys(m map[string]int64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func float64Keys(m map[string]float64) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func histKeys(m map[string]telemetry.HistSnapshot) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// snapshotFamilies returns the sorted union of family base names across
// every cell's keys of one metric class.
func snapshotFamilies(cells map[string]*telemetry.Snapshot, keys func(*telemetry.Snapshot) []string) []string {
	set := make(map[string]bool)
	for _, s := range cells {
		for _, k := range keys(s) {
			set[baseName(k)] = true
		}
	}
	return sortedKeys(set)
}

// familyKeys filters keys to one family, sorted.
func familyKeys(keys []string, fam string) []string {
	var out []string
	for _, k := range keys {
		if baseName(k) == fam {
			out = append(out, k)
		}
	}
	sort.Strings(out)
	return out
}
