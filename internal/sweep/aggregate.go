package sweep

import (
	"encoding/json"
	"fmt"
	"io"

	"lrcrace/internal/telemetry"
)

// Summary is the sweep's human-and-machine-readable outcome: per-cell
// status in grid order plus the totals. Wall times live here (and only
// here) — the aggregated metrics document excludes them so it stays
// deterministic.
type Summary struct {
	Fingerprint string `json:"fingerprint"`

	Total    int `json:"total"`
	OK       int `json:"ok"`
	Failed   int `json:"failed"`
	Timeout  int `json:"timeout"`
	Panicked int `json:"panicked"`
	// Missing cells have no terminal result (the sweep was interrupted);
	// rerunning the same plan over the same directory completes them.
	Missing int `json:"missing"`

	Races         int   `json:"races"`
	DistinctRaces int   `json:"distinct_races"`
	VirtualNS     int64 `json:"virtual_ns"`
	WallNS        int64 `json:"wall_ns"`

	Cells []CellResult `json:"cells"`
}

// Summary collects the current results in grid order; safe during Run.
func (s *Sweep) Summary() *Summary {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum := &Summary{Fingerprint: s.plan.Fingerprint(), Total: len(s.cells)}
	for _, c := range s.cells {
		r, ok := s.results[c.ID]
		if !ok || !r.Status.Terminal() {
			sum.Missing++
			continue
		}
		switch r.Status {
		case StatusOK:
			sum.OK++
		case StatusTimeout:
			sum.Timeout++
		case StatusPanic:
			sum.Panicked++
		default:
			sum.Failed++
		}
		sum.Races += r.Races
		sum.DistinctRaces += r.DistinctRaces
		sum.VirtualNS += r.VirtualNS
		sum.WallNS += r.WallNS
		sum.Cells = append(sum.Cells, *r)
	}
	return sum
}

// WriteJSON writes the summary as indented JSON.
func (s *Summary) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteTable writes the summary as a fixed-width text table.
func (s *Summary) WriteTable(w io.Writer) error {
	fmt.Fprintf(w, "sweep %0.12s: %d cells — %d ok, %d failed, %d timeout, %d panicked, %d missing; %d races (%d distinct)\n",
		s.Fingerprint, s.Total, s.OK, s.Failed, s.Timeout, s.Panicked, s.Missing, s.Races, s.DistinctRaces)
	fmt.Fprintf(w, "%-40s %-8s %7s %8s %14s %12s\n", "cell", "status", "races", "attempt", "virtual ms", "wall ms")
	for _, r := range s.Cells {
		fmt.Fprintf(w, "%-40s %-8s %7d %8d %14.1f %12.0f\n",
			r.ID, r.Status, r.Races, r.Attempt, float64(r.VirtualNS)/1e6, float64(r.WallNS)/1e6)
	}
	if _, err := fmt.Fprintln(w); err != nil {
		return err
	}
	return nil
}

// MetricsDoc is the sweep's machine-readable metrics document: one
// canonical snapshot per finished cell plus their sum. Every part of it is
// deterministic for deterministic workloads — wall-dependent series are
// stripped before a snapshot reaches a CellResult, keys are map keys (Go
// marshals them sorted), and cells enter the document by ID — so two runs
// of the same plan with the same seeds produce byte-identical output.
type MetricsDoc struct {
	Fingerprint string                         `json:"fingerprint"`
	Cells       map[string]*telemetry.Snapshot `json:"cells"`
	Aggregate   *telemetry.Snapshot            `json:"aggregate"`
}

// MetricsDoc builds the document from the finished cells' snapshots.
func (s *Sweep) MetricsDoc() *MetricsDoc {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := &MetricsDoc{
		Fingerprint: s.plan.Fingerprint(),
		Cells:       make(map[string]*telemetry.Snapshot),
	}
	var snaps []*telemetry.Snapshot
	for _, c := range s.cells {
		if r, ok := s.results[c.ID]; ok && r.Status.Terminal() && r.Metrics != nil {
			doc.Cells[c.ID] = r.Metrics
			snaps = append(snaps, r.Metrics)
		}
	}
	doc.Aggregate = mergeSnapshots(snaps)
	return doc
}

// WriteMetricsJSON writes the metrics document as indented JSON.
func (s *Sweep) WriteMetricsJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.MetricsDoc())
}

// mergeSnapshots sums counters and gauges key-wise and merges histograms
// whose bucket structures agree (mismatched ones keep the first seen —
// cannot happen across cells of one sweep, which share the registration
// code). Gauges sum because every gauge the harness publishes is a
// per-run total (virtual ns, memory bytes, checkpoint counts).
func mergeSnapshots(snaps []*telemetry.Snapshot) *telemetry.Snapshot {
	out := &telemetry.Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]telemetry.HistSnapshot),
	}
	for _, s := range snaps {
		for k, v := range s.Counters {
			out.Counters[k] += v
		}
		for k, v := range s.Gauges {
			out.Gauges[k] += v
		}
		for k, h := range s.Histograms {
			have, ok := out.Histograms[k]
			if !ok {
				out.Histograms[k] = copyHist(h)
				continue
			}
			if len(have.Buckets) != len(h.Buckets) {
				continue
			}
			have.Count += h.Count
			have.Sum += h.Sum
			for i := range have.Buckets {
				have.Buckets[i].Count += h.Buckets[i].Count
			}
			out.Histograms[k] = have
		}
	}
	return out
}

func copyHist(h telemetry.HistSnapshot) telemetry.HistSnapshot {
	c := h
	c.Buckets = append([]telemetry.BucketCount(nil), h.Buckets...)
	return c
}
