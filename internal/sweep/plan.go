// Package sweep is the multi-run orchestrator: it expands a parameter grid
// over the harness's run configurations into cells, executes them on a
// bounded worker pool — one DSM System and one handle-scoped telemetry
// recorder per cell, so concurrent cells cannot cross-talk — and
// aggregates the results into a deterministic machine-readable document.
//
// A sweep is resumable: with a checkpoint directory, every finished cell
// is persisted as it completes, and restarting the same plan over the same
// directory re-executes only the missing cells. A live HTTP endpoint
// (Handler) exposes Prometheus-format metrics, JSON progress, and
// on-demand flight-recorder dumps while the grid runs; see docs/SWEEP.md.
package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"lrcrace/internal/dsm"
	"lrcrace/internal/gofront"
	"lrcrace/internal/harness"
	"lrcrace/internal/simnet"
)

// Plan is the parameter grid of one sweep: the cartesian product of every
// axis, in the field order below, defines the cell list. Empty axes take
// the singleton defaults noted on each field, so the zero Plan plus one
// app is a valid 1-cell sweep.
//
// Combinations the DSM rejects are skipped at expansion rather than run to
// failure: a sharded check requires detection, and a lossy fault plan
// requires the reliable sublayer (which Expand turns on for those cells).
type Plan struct {
	// Apps are the benchmark applications to run (required).
	Apps []string `json:"apps"`
	// Scales are problem-scale multipliers; empty → [1].
	Scales []float64 `json:"scales,omitempty"`
	// Procs are DSM process counts; empty → [4].
	Procs []int `json:"procs,omitempty"`
	// Protocols are coherence protocols, "sw" or "mw"; empty → ["sw"].
	Protocols []string `json:"protocols,omitempty"`
	// Detect are race-detection settings; empty → [true].
	Detect []bool `json:"detect,omitempty"`
	// Sharded are sharded-check settings; empty → [false]. A true value is
	// skipped for cells whose Detect is false (the DSM rejects it).
	Sharded []bool `json:"sharded,omitempty"`
	// BarrierTrees are combining-tree barrier arities
	// (harness.RunConfig.BarrierTree): 0 is the flat barrier, k ≥ 2 a
	// k-ary combining tree; empty → [0].
	BarrierTrees []int `json:"barrier_trees,omitempty"`
	// Checkpoint are barrier-epoch-checkpointing settings; empty → [true]
	// (checkpointing is on by default; a false value measures the DSM
	// without the recovery layer).
	Checkpoint []bool `json:"checkpoint,omitempty"`
	// CrashModes inject deterministic process crashes into the chaos
	// applications (harness.ChaosAppNames): "none", "single", "double",
	// "recovery"; empty → ["none"]. Non-"none" modes are skipped for
	// whole-program benchmark apps (they cannot recover) and for cells with
	// checkpointing off (nothing to roll back to).
	CrashModes []string `json:"crash_modes,omitempty"`
	// CorruptModes attack stored checkpoint chunks before rollback:
	// "none", "chunk", "delete"; empty → ["none"]. Non-"none" modes apply
	// only to cells that also crash.
	CorruptModes []string `json:"corrupt_modes,omitempty"`
	// Seeds drive the fault, crash, and corruption plans' PRNGs — and the
	// go frontend's scheduler and traffic PRNGs; empty → [0]. With no
	// Faults, no non-"none" chaos mode, and no "go" frontend the axis is
	// forced to its default: seed-varied deterministic runs would be
	// identical cells under different names.
	Seeds []int64 `json:"seeds,omitempty"`
	// Frontends select execution engines per cell: "dsm" (the simulated
	// DSM) or "go" (the gofront happens-before frontend, whose apps are
	// the registered gofront workloads); empty → ["dsm"]. Each app runs
	// only under the frontends that know it, so a mixed plan pairs DSM
	// benchmarks with "dsm" cells and KV workloads with "go" cells. The
	// default is applied at expansion, not in defaults(), so pre-existing
	// plan fingerprints are unchanged.
	Frontends []string `json:"frontends,omitempty"`
	// HotSkews are go-frontend hot-key-skew probabilities in [0,1);
	// empty → [0]. Non-default values apply only to "go" cells.
	HotSkews []float64 `json:"hot_skews,omitempty"`
	// Racy toggles the go-frontend workloads' planted racy fast path;
	// empty → [false]. A true value applies only to "go" cells.
	Racy []bool `json:"racy,omitempty"`
	// Faults, when non-nil, applies this fault template to every cell,
	// with the cell's seed. Lossy templates imply the reliable sublayer.
	Faults *FaultAxis `json:"faults,omitempty"`
	// RealMsgDelayUS overrides the per-app real-latency coupling when
	// nonzero (microseconds).
	RealMsgDelayUS int64 `json:"real_msg_delay_us,omitempty"`
}

// FaultAxis is the wire-fault template a plan applies across the grid
// (simnet.FaultPlan minus the seed, which is the plan's Seeds axis).
type FaultAxis struct {
	Drop     float64 `json:"drop,omitempty"`
	Dup      float64 `json:"dup,omitempty"`
	Reorder  float64 `json:"reorder,omitempty"`
	JitterUS int64   `json:"jitter_us,omitempty"`
}

// lossy reports whether the template can violate the reliable-FIFO
// contract and therefore needs the retransmission sublayer.
func (f *FaultAxis) lossy() bool {
	return f != nil && (f.Drop > 0 || f.Dup > 0 || f.Reorder > 0)
}

// Cell is one expanded grid point: a fully determined run configuration
// with a stable ID that doubles as its result file name.
type Cell struct {
	ID          string  `json:"id"`
	App         string  `json:"app"`
	Scale       float64 `json:"scale"`
	Procs       int     `json:"procs"`
	Protocol    string  `json:"protocol"`
	Detect      bool    `json:"detect"`
	Sharded     bool    `json:"sharded"`
	BarrierTree int     `json:"barrier_tree,omitempty"`
	Checkpoint  bool    `json:"checkpoint"`
	CrashMode   string  `json:"crash_mode,omitempty"`
	CorruptMode string  `json:"corrupt_mode,omitempty"`
	Frontend    string  `json:"frontend,omitempty"` // "" = dsm
	HotSkew     float64 `json:"hot_skew,omitempty"`
	Racy        bool    `json:"racy,omitempty"`
	Seed        int64   `json:"seed"`
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}

func cellID(c Cell) string {
	id := fmt.Sprintf("%s-s%g-p%d-%s-d%d-sh%d-ck%d",
		c.App, c.Scale, c.Procs, c.Protocol,
		boolBit(c.Detect), boolBit(c.Sharded), boolBit(c.Checkpoint))
	// Tree-barrier and chaos suffixes only when active, so pre-existing
	// sweep checkpoints keep their cell names.
	if c.BarrierTree != 0 {
		id += fmt.Sprintf("-bt%d", c.BarrierTree)
	}
	if c.CrashMode != "" && c.CrashMode != "none" {
		id += "-cr" + c.CrashMode
	}
	if c.CorruptMode != "" && c.CorruptMode != "none" {
		id += "-cx" + c.CorruptMode
	}
	// Go-frontend suffixes only on "go" cells, so dsm cell names — and
	// therefore pre-existing sweep checkpoints — are untouched.
	if c.Frontend == "go" {
		id += "-go"
		if c.HotSkew != 0 {
			id += fmt.Sprintf("-hk%g", c.HotSkew)
		}
		if c.Racy {
			id += "-racy"
		}
	}
	return fmt.Sprintf("%s-seed%d", id, c.Seed)
}

func protocolKind(name string) (dsm.ProtocolKind, error) {
	switch name {
	case "sw", "":
		return dsm.SingleWriter, nil
	case "mw":
		return dsm.MultiWriter, nil
	}
	return 0, fmt.Errorf("sweep: unknown protocol %q (want sw or mw)", name)
}

func defaults(p *Plan) Plan {
	d := *p
	if len(d.Scales) == 0 {
		d.Scales = []float64{1}
	}
	if len(d.Procs) == 0 {
		d.Procs = []int{4}
	}
	if len(d.Protocols) == 0 {
		d.Protocols = []string{"sw"}
	}
	if len(d.Detect) == 0 {
		d.Detect = []bool{true}
	}
	if len(d.Sharded) == 0 {
		d.Sharded = []bool{false}
	}
	if len(d.BarrierTrees) == 0 {
		d.BarrierTrees = []int{0}
	}
	if len(d.Checkpoint) == 0 {
		d.Checkpoint = []bool{true}
	}
	if len(d.CrashModes) == 0 {
		d.CrashModes = []string{"none"}
	}
	if len(d.CorruptModes) == 0 {
		d.CorruptModes = []string{"none"}
	}
	if len(d.Seeds) == 0 || (d.Faults == nil && !d.chaotic() && !d.goFront()) {
		d.Seeds = []int64{0}
	}
	return d
}

// goFront reports whether any cell will run under the go frontend, whose
// scheduler makes the Seeds axis meaningful without wire or chaos faults.
func (p *Plan) goFront() bool {
	for _, f := range p.Frontends {
		if f == "go" {
			return true
		}
	}
	return false
}

// chaotic reports whether any axis value injects seed-driven process
// faults, making the Seeds axis meaningful without wire faults.
func (p *Plan) chaotic() bool {
	for _, m := range p.CrashModes {
		if m != "" && m != "none" {
			return true
		}
	}
	for _, m := range p.CorruptModes {
		if m != "" && m != "none" {
			return true
		}
	}
	return false
}

func validMode(mode string, valid []string) bool {
	if mode == "" {
		return true
	}
	for _, v := range valid {
		if v == mode {
			return true
		}
	}
	return false
}

// Expand validates the plan and returns its cell list in grid order.
// Invalid combinations (sharded check without detection) are skipped;
// duplicate cell IDs (a repeated axis value) are an error.
func (p *Plan) Expand() ([]Cell, error) {
	if len(p.Apps) == 0 {
		return nil, fmt.Errorf("sweep: plan has no applications")
	}
	d := defaults(p)
	for _, proto := range d.Protocols {
		if _, err := protocolKind(proto); err != nil {
			return nil, err
		}
	}
	for _, pc := range d.Procs {
		if pc < 1 {
			return nil, fmt.Errorf("sweep: invalid process count %d", pc)
		}
	}
	for _, bt := range d.BarrierTrees {
		if bt == 1 || bt < 0 {
			return nil, fmt.Errorf("sweep: invalid barrier-tree arity %d (0 = flat, else >= 2)", bt)
		}
	}
	for _, m := range d.CrashModes {
		if !validMode(m, harness.CrashModes) {
			return nil, fmt.Errorf("sweep: unknown crash mode %q (want %v)", m, harness.CrashModes)
		}
	}
	for _, m := range d.CorruptModes {
		if !validMode(m, harness.CorruptModes) {
			return nil, fmt.Errorf("sweep: unknown corrupt mode %q (want %v)", m, harness.CorruptModes)
		}
	}
	// Go-frontend axes default locally (not in defaults()) to keep
	// pre-existing plan fingerprints stable.
	fronts := d.Frontends
	if len(fronts) == 0 {
		fronts = []string{"dsm"}
	}
	for _, f := range fronts {
		if !harness.KnownFrontend(f) || f == "" {
			return nil, fmt.Errorf("sweep: unknown frontend %q (want %v)", f, harness.Frontends)
		}
	}
	hotSkews := d.HotSkews
	if len(hotSkews) == 0 {
		hotSkews = []float64{0}
	}
	for _, hk := range hotSkews {
		if hk < 0 || hk >= 1 {
			return nil, fmt.Errorf("sweep: hot-key skew %g out of [0,1)", hk)
		}
	}
	racies := d.Racy
	if len(racies) == 0 {
		racies = []bool{false}
	}
	var cells []Cell
	seen := make(map[string]bool)
	for _, app := range d.Apps {
		for _, front := range fronts {
			goFr := harness.IsGoFrontend(front)
			if goFr != gofront.IsWorkload(app) {
				continue // each app runs only under the frontend that knows it
			}
			for _, sc := range d.Scales {
				for _, pc := range d.Procs {
					for _, proto := range d.Protocols {
						if goFr && proto != "sw" {
							continue // the go frontend has no coherence protocol
						}
						for _, det := range d.Detect {
							for _, sh := range d.Sharded {
								if sh && !det {
									continue // dsm: sharded check requires detection
								}
								if sh && goFr {
									continue // go frontend checks at sync points, not barriers
								}
								for _, bt := range d.BarrierTrees {
									if bt != 0 && goFr {
										continue // go frontend has no barriers
									}
									for _, ck := range d.Checkpoint {
										if !ck && goFr {
											continue // go frontend has no checkpoint layer
										}
										for _, cr := range d.CrashModes {
											crash := cr != "" && cr != "none"
											if crash && !harness.IsChaosApp(app) {
												continue // whole-program apps cannot recover
											}
											if crash && !ck {
												continue // dsm: crash plans require checkpointing
											}
											if crash && pc < 2 {
												continue // no valid victim
											}
											if cr == "double" && pc < 3 {
												continue // two distinct victims need three procs
											}
											for _, cx := range d.CorruptModes {
												if cx != "" && cx != "none" && !crash {
													continue // corruption is only read back under rollback
												}
												for _, hk := range hotSkews {
													if hk != 0 && !goFr {
														continue // hot-key skew is a go-frontend knob
													}
													for _, racy := range racies {
														if racy && !goFr {
															continue // racy fast paths are go-frontend plants
														}
														for _, seed := range d.Seeds {
															c := Cell{
																App: app, Scale: sc, Procs: pc, Protocol: proto,
																Detect: det, Sharded: sh, BarrierTree: bt, Checkpoint: ck,
																CrashMode: cr, CorruptMode: cx, Seed: seed,
																HotSkew: hk, Racy: racy,
															}
															if goFr {
																c.Frontend = front
															}
															c.ID = cellID(c)
															if seen[c.ID] {
																return nil, fmt.Errorf("sweep: duplicate cell %s (repeated axis value?)", c.ID)
															}
															seen[c.ID] = true
															cells = append(cells, c)
														}
													}
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
	return cells, nil
}

// RunConfig builds the harness configuration for one cell of the plan.
func (p *Plan) RunConfig(c Cell) (harness.RunConfig, error) {
	proto, err := protocolKind(c.Protocol)
	if err != nil {
		return harness.RunConfig{}, err
	}
	if c.Frontend == "go" {
		return harness.RunConfig{
			App:        c.App,
			Frontend:   c.Frontend,
			Scale:      c.Scale,
			Procs:      c.Procs,
			Detect:     c.Detect,
			HotKeySkew: c.HotSkew,
			Racy:       c.Racy,
			Seed:       c.Seed,
		}, nil
	}
	cfg := harness.RunConfig{
		App:          c.App,
		Scale:        c.Scale,
		Procs:        c.Procs,
		Protocol:     proto,
		Detect:       c.Detect,
		ShardedCheck: c.Sharded,
		BarrierTree:  c.BarrierTree,
		NoCheckpoint: !c.Checkpoint,
		CrashMode:    c.CrashMode,
		CorruptMode:  c.CorruptMode,
		ChaosSeed:    uint64(c.Seed),
		RealMsgDelay: time.Duration(p.RealMsgDelayUS) * time.Microsecond,
	}
	if f := p.Faults; f != nil {
		cfg.Faults = &simnet.FaultPlan{
			Seed:     c.Seed,
			Drop:     f.Drop,
			Dup:      f.Dup,
			Reorder:  f.Reorder,
			JitterNS: f.JitterUS * 1000,
		}
		cfg.Reliable = f.lossy()
	}
	return cfg, nil
}

// Fingerprint is the plan's identity for resumability: the SHA-256 of its
// canonical JSON encoding. Two plans fingerprint equal exactly when they
// expand to the same grid with the same run configurations.
func (p *Plan) Fingerprint() string {
	b, err := json.Marshal(defaults(p))
	if err != nil {
		// Plan has no unmarshalable fields; keep the signature clean.
		panic(fmt.Sprintf("sweep: marshaling plan: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
