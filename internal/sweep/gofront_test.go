package sweep

import (
	"context"
	"strings"
	"testing"
)

// TestExpandGoFrontAxes: a mixed plan pairs DSM apps with dsm cells and
// gofront workloads with go cells, go-only knobs never leak onto dsm cells,
// and the seed axis survives for go frontends.
func TestExpandGoFrontAxes(t *testing.T) {
	p := &Plan{
		Apps:      []string{"TSP", "KV"},
		Frontends: []string{"dsm", "go"},
		Procs:     []int{2, 4},
		HotSkews:  []float64{0, 0.8},
		Racy:      []bool{false, true},
		Seeds:     []int64{0, 1},
	}
	cells, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// TSP: dsm only, hk=0 only, racy=false only → 2 procs × 2 seeds = 4.
	// KV: go only → 2 procs × 2 hk × 2 racy × 2 seeds = 16.
	if want := 4 + 16; len(cells) != want {
		t.Fatalf("expanded to %d cells, want %d", len(cells), want)
	}
	for _, c := range cells {
		switch c.App {
		case "TSP":
			if c.Frontend != "" || c.HotSkew != 0 || c.Racy {
				t.Fatalf("go-frontend knobs leaked onto dsm cell %s", c.ID)
			}
			if strings.Contains(c.ID, "-go") {
				t.Fatalf("dsm cell ID carries go suffix: %s", c.ID)
			}
		case "KV":
			if c.Frontend != "go" {
				t.Fatalf("KV cell not on go frontend: %s", c.ID)
			}
			if !strings.Contains(c.ID, "-go") {
				t.Fatalf("go cell ID missing go suffix: %s", c.ID)
			}
			cfg, err := p.RunConfig(c)
			if err != nil {
				t.Fatal(err)
			}
			if cfg.Frontend != "go" || cfg.Seed != c.Seed ||
				cfg.HotKeySkew != c.HotSkew || cfg.Racy != c.Racy {
				t.Fatalf("cell %s mapped to %+v", c.ID, cfg)
			}
		}
	}

	if _, err := (&Plan{Apps: []string{"KV"}, Frontends: []string{"zig"}}).Expand(); err == nil {
		t.Error("bogus frontend expanded without error")
	}
	if _, err := (&Plan{Apps: []string{"KV"}, Frontends: []string{"go"}, HotSkews: []float64{1.5}}).Expand(); err == nil {
		t.Error("out-of-range hot skew expanded without error")
	}
}

// TestDsmCellIDsUnchanged pins the dsm cell naming: adding the go-frontend
// axes must not rename cells of pre-existing sweep checkpoints.
func TestDsmCellIDsUnchanged(t *testing.T) {
	p := &Plan{Apps: []string{"FFT"}, Scales: []float64{0.25}, Procs: []int{2}}
	cells, err := p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 || cells[0].ID != "FFT-s0.25-p2-sw-d1-sh0-ck1-seed0" {
		t.Fatalf("dsm cell ID drifted: %+v", cells)
	}
	// And the seed axis is still collapsed for non-chaotic dsm plans.
	p.Seeds = []int64{0, 1, 2}
	cells, err = p.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 1 {
		t.Fatalf("seed axis not collapsed for deterministic dsm plan: %d cells", len(cells))
	}
}

// TestGoFrontSweepEndToEnd runs a small KV grid through the worker pool and
// checks that every cell succeeded with gofront metrics attached, and that
// racy cells found races while clean cells did not.
func TestGoFrontSweepEndToEnd(t *testing.T) {
	p := &Plan{
		Apps:      []string{"KV", "Sessions"},
		Frontends: []string{"go"},
		Procs:     []int{3},
		HotSkews:  []float64{0.6},
		Racy:      []bool{false, true},
		Seeds:     []int64{0, 1},
	}
	s, err := New(p, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK != 8 {
		t.Fatalf("summary: %+v, want 8 OK cells", sum)
	}
	racyFound := 0
	for _, c := range sum.Cells {
		if c.Status != StatusOK {
			t.Fatalf("cell %s: %s (%s)", c.ID, c.Status, c.Error)
		}
		if c.Metrics == nil || c.Metrics.CounterTotal("gofront_intervals_total") == 0 {
			t.Fatalf("cell %s missing gofront metrics", c.ID)
		}
		racy := strings.Contains(c.ID, "-racy")
		if !racy && c.Races != 0 {
			t.Fatalf("clean cell %s reported %d races", c.ID, c.Races)
		}
		if racy && c.Races > 0 {
			racyFound++
		}
	}
	if racyFound == 0 {
		t.Fatal("no racy cell found a race")
	}
}
