package sweep

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
)

// The checkpoint directory layout:
//
//	<dir>/manifest.json   — the plan, its fingerprint, and the cell list
//	<dir>/cells/<id>.json — one CellResult per finished cell
//
// Cell files are written atomically (temp file + rename), so a sweep
// killed mid-write never leaves a half-result: on restart the cell is
// simply missing and re-runs. The manifest pins the plan — resuming a
// directory with a different plan is an error, not a silent mixed grid.

type manifest struct {
	Fingerprint string   `json:"fingerprint"`
	Plan        *Plan    `json:"plan"`
	Cells       []string `json:"cells"`
}

const manifestName = "manifest.json"

// initDir prepares dir for the plan: on first use it writes the manifest;
// on reuse it verifies the fingerprint and loads every finished cell.
func initDir(dir string, plan *Plan, cells []Cell) (map[string]*CellResult, error) {
	if err := os.MkdirAll(filepath.Join(dir, "cells"), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: creating checkpoint dir: %w", err)
	}
	fp := plan.Fingerprint()
	mpath := filepath.Join(dir, manifestName)
	if b, err := os.ReadFile(mpath); err == nil {
		var m manifest
		if err := json.Unmarshal(b, &m); err != nil {
			return nil, fmt.Errorf("sweep: corrupt manifest %s: %w", mpath, err)
		}
		if m.Fingerprint != fp {
			return nil, fmt.Errorf("sweep: %s holds a different plan (fingerprint %.12s, want %.12s); use a fresh directory", dir, m.Fingerprint, fp)
		}
		return loadCellResults(dir, cells)
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("sweep: reading manifest: %w", err)
	}
	ids := make([]string, len(cells))
	for i, c := range cells {
		ids[i] = c.ID
	}
	b, err := json.MarshalIndent(manifest{Fingerprint: fp, Plan: plan, Cells: ids}, "", "  ")
	if err != nil {
		return nil, err
	}
	if err := atomicWrite(mpath, append(b, '\n')); err != nil {
		return nil, fmt.Errorf("sweep: writing manifest: %w", err)
	}
	return map[string]*CellResult{}, nil
}

// loadCellResults reads every persisted terminal result belonging to the
// grid. Files for unknown cells (or unreadable ones) are ignored rather
// than fatal: the worst case is re-running a cell.
func loadCellResults(dir string, cells []Cell) (map[string]*CellResult, error) {
	known := make(map[string]bool, len(cells))
	for _, c := range cells {
		known[c.ID] = true
	}
	out := make(map[string]*CellResult)
	entries, err := os.ReadDir(filepath.Join(dir, "cells"))
	if err != nil {
		return nil, fmt.Errorf("sweep: reading cell results: %w", err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".json") {
			continue
		}
		id := strings.TrimSuffix(name, ".json")
		if !known[id] {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, "cells", name))
		if err != nil {
			continue
		}
		var r CellResult
		if err := json.Unmarshal(b, &r); err != nil || r.ID != id || !r.Status.Terminal() {
			continue
		}
		out[id] = &r
	}
	return out, nil
}

// writeCellResult persists one terminal result atomically.
func writeCellResult(dir string, r *CellResult) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	path := filepath.Join(dir, "cells", r.ID+".json")
	if err := atomicWrite(path, append(b, '\n')); err != nil {
		return fmt.Errorf("sweep: persisting cell %s: %w", r.ID, err)
	}
	return nil
}

// atomicWrite lands data at path via a same-directory temp file + rename,
// so readers (and crash-interrupted writers) never observe a torn file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}
