package replay

import (
	"strings"
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
)

func TestSyncRecordBasics(t *testing.T) {
	r := NewSyncRecord()
	r.RecordGrantOrder(1, 0)
	r.RecordGrantOrder(1, 2)
	r.RecordGrantOrder(3, 1)
	if got := r.Order(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Order(1) = %v", got)
	}
	if got := r.Order(9); len(got) != 0 {
		t.Errorf("Order(9) = %v", got)
	}
	if len(r.Locks()) != 2 {
		t.Errorf("Locks = %v", r.Locks())
	}

	o := NewSyncRecord()
	o.RecordGrantOrder(1, 0)
	o.RecordGrantOrder(1, 2)
	o.RecordGrantOrder(3, 1)
	if !r.Equal(o) {
		t.Error("identical records not equal")
	}
	o.RecordGrantOrder(3, 2)
	if r.Equal(o) {
		t.Error("different records equal")
	}
}

func TestEnforcerOrder(t *testing.T) {
	r := NewSyncRecord()
	r.RecordGrantOrder(0, 2)
	r.RecordGrantOrder(0, 1)
	e := NewEnforcer(r)
	if e.MayProceed(0, 1) {
		t.Error("out-of-turn request allowed")
	}
	if !e.MayProceed(0, 2) {
		t.Error("in-turn request refused")
	}
	if !e.MayProceed(0, 1) {
		t.Error("now-in-turn request refused")
	}
	// Past recorded history: unconstrained.
	if !e.MayProceed(0, 3) {
		t.Error("post-history request refused")
	}
	// Unrecorded lock: unconstrained.
	if !e.MayProceed(7, 0) {
		t.Error("unrecorded lock constrained")
	}
}

// lockApp is a deterministic racy workload: every proc increments a locked
// counter and reads/writes a racy word.
func lockApp(ctr, racy mem.Addr, iters int) func(p *dsm.Proc) {
	return func(p *dsm.Proc) {
		for i := 0; i < iters; i++ {
			p.Lock(1)
			p.Write(ctr, p.Read(ctr)+1)
			p.Unlock(1)
			_ = p.Read(racy)
			if p.ID()%2 == 0 {
				p.Write(racy, uint64(p.ID()))
			}
		}
	}
}

// TestTwoRunScheme exercises the full §6.1 flow: run 1 detects races and
// records sync order; run 2 replays the order and captures the racing
// instructions for the conflicted address.
func TestTwoRunScheme(t *testing.T) {
	build := func(rec *SyncRecord, enf *Enforcer, watch *SiteCollector) (*dsm.System, mem.Addr, mem.Addr) {
		cfg := dsm.Config{
			NumProcs:   4,
			SharedSize: 8 * 1024,
			PageSize:   1024,
			Detect:     true,
		}
		if rec != nil {
			cfg.SyncRecorder = rec
		}
		if enf != nil {
			cfg.SyncEnforcer = enf
		}
		if watch != nil {
			cfg.Watch = watch
		}
		sys, err := dsm.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctr, _ := sys.AllocWords("ctr", 1)
		racy, _ := sys.AllocWords("racy", 1)
		return sys, ctr, racy
	}

	// Run 1: record.
	rec := NewSyncRecord()
	sys1, ctr1, racy1 := build(rec, nil, nil)
	if err := sys1.Run(lockApp(ctr1, racy1, 5)); err != nil {
		t.Fatal(err)
	}
	races := race.DedupByAddr(sys1.Races())
	if len(races) == 0 {
		t.Fatal("run 1 found no races")
	}
	conflicted := races[0].Addr
	if conflicted != racy1 {
		t.Fatalf("conflicted address %#x, want %#x", conflicted, racy1)
	}
	if len(rec.Order(1)) == 0 {
		t.Fatal("no sync order recorded")
	}

	// Run 2: enforce the recorded order, watch the conflicted address, and
	// re-record to check the replay reproduced the ordering.
	rec2 := NewSyncRecord()
	watch := NewSiteCollector(conflicted)
	sys2, ctr2, _ := build(rec2, NewEnforcer(rec), watch)
	if err := sys2.Run(lockApp(ctr2, conflicted, 5)); err != nil {
		t.Fatal(err)
	}
	if got := sys2.SnapshotWord(ctr2); got != 20 {
		t.Errorf("replayed counter = %d, want 20", got)
	}
	if !rec.Equal(rec2) {
		t.Errorf("replay diverged:\n run1 lock1: %v\n run2 lock1: %v", rec.Order(1), rec2.Order(1))
	}

	sites := watch.Sites()
	if len(sites) == 0 {
		t.Fatal("no access sites captured")
	}
	var sawRead, sawWrite bool
	for _, s := range sites {
		if !strings.Contains(s.Func, "lockApp") {
			t.Errorf("site outside app code: %v", s)
		}
		if s.Line == 0 || s.File == "" {
			t.Errorf("unresolved site: %+v", s)
		}
		if s.Write {
			sawWrite = true
		} else {
			sawRead = true
		}
	}
	if !sawRead || !sawWrite {
		t.Errorf("sites must include both sides of the race: %v", sites)
	}
}

// TestReplayDeterminism: two enforced runs produce identical sync orders.
func TestReplayDeterminism(t *testing.T) {
	mk := func(rec *SyncRecord, enf *Enforcer) *SyncRecord {
		cfg := dsm.Config{NumProcs: 3, SharedSize: 4 * 1024, PageSize: 1024}
		out := NewSyncRecord()
		cfg.SyncRecorder = out
		if enf != nil {
			cfg.SyncEnforcer = enf
		}
		sys, err := dsm.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ctr, _ := sys.AllocWords("ctr", 1)
		if err := sys.Run(func(p *dsm.Proc) {
			for i := 0; i < 6; i++ {
				p.Lock(0)
				p.Write(ctr, p.Read(ctr)+1)
				p.Unlock(0)
			}
		}); err != nil {
			t.Fatal(err)
		}
		if got := sys.SnapshotWord(ctr); got != 18 {
			t.Fatalf("ctr = %d", got)
		}
		_ = rec
		return out
	}
	first := mk(nil, nil)
	second := mk(nil, NewEnforcer(first))
	third := mk(nil, NewEnforcer(first))
	if !first.Equal(second) || !first.Equal(third) {
		t.Errorf("replayed orders diverge:\n1: %v\n2: %v\n3: %v",
			first.Order(0), second.Order(0), third.Order(0))
	}
}

func TestAccessSiteString(t *testing.T) {
	s := AccessSite{Proc: 2, Write: true, Func: "pkg.fn", File: "f.go", Line: 10}
	if got := s.String(); !strings.Contains(got, "write by P2") || !strings.Contains(got, "f.go:10") {
		t.Errorf("String = %q", got)
	}
}
