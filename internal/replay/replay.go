// Package replay implements the paper's §6.1 two-run reference
// identification scheme. Detected races are reported by address; finding
// the *instructions* involved would require retaining a program counter for
// every shared access, which is prohibitive. Instead:
//
//   - Run 1 records the synchronization order (the per-lock sequence of
//     tenures, as serialized by each lock's manager) alongside normal race
//     detection. This is the paper's proposed CVM modification "to save
//     synchronization ordering information from the first run".
//   - Run 2 enforces the same per-lock tenure order — the lock manager
//     defers requests that arrive ahead of their recorded turn — making the
//     execution's synchronization ordering deterministic, and gathers
//     call-site information only for accesses to the conflicting address.
//
// The "program counter" captured in run 2 is a real Go caller PC, resolved
// to function, file and line — the honest analogue of the Alpha PC plus
// symbol table the paper describes.
package replay

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"lrcrace/internal/mem"
)

// SyncRecord is the synchronization order of one run: for every lock, the
// sequence of processes granted tenures, in manager serialization order.
type SyncRecord struct {
	mu    sync.Mutex
	order map[int][]int
}

// NewSyncRecord returns an empty record.
func NewSyncRecord() *SyncRecord {
	return &SyncRecord{order: make(map[int][]int)}
}

// RecordGrantOrder implements the dsm recording hook: requester was
// serialized as the next tenure of lock.
func (r *SyncRecord) RecordGrantOrder(lock, requester int) {
	r.mu.Lock()
	r.order[lock] = append(r.order[lock], requester)
	r.mu.Unlock()
}

// Order returns the recorded tenure sequence for lock.
func (r *SyncRecord) Order(lock int) []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.order[lock]...)
}

// Locks returns the locks with recorded history.
func (r *SyncRecord) Locks() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for l := range r.order {
		out = append(out, l)
	}
	return out
}

// Equal reports whether two records describe the same ordering.
func (r *SyncRecord) Equal(o *SyncRecord) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	if len(r.order) != len(o.order) {
		return false
	}
	for l, seq := range r.order {
		oseq := o.order[l]
		if len(seq) != len(oseq) {
			return false
		}
		for i := range seq {
			if seq[i] != oseq[i] {
				return false
			}
		}
	}
	return true
}

// Enforcer replays a SyncRecord: the lock manager consults it to decide
// whether a request may be serialized now or must wait for its turn.
type Enforcer struct {
	mu  sync.Mutex
	rec *SyncRecord
	pos map[int]int
}

// NewEnforcer wraps a recorded order.
func NewEnforcer(rec *SyncRecord) *Enforcer {
	return &Enforcer{rec: rec, pos: make(map[int]int)}
}

// MayProceed reports whether requester is the next recorded tenure of lock
// and, if so, consumes that slot. Requests beyond the recorded history
// (e.g. the search explores slightly differently) are allowed through.
func (e *Enforcer) MayProceed(lock, requester int) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.rec.mu.Lock()
	seq := e.rec.order[lock]
	e.rec.mu.Unlock()
	i := e.pos[lock]
	if i >= len(seq) {
		return true // past recorded history: no constraint
	}
	if seq[i] != requester {
		return false
	}
	e.pos[lock] = i + 1
	return true
}

// AccessSite is one captured access to the watched address.
type AccessSite struct {
	Proc  int
	Write bool
	PC    uintptr
	Func  string
	File  string
	Line  int
}

func (s AccessSite) String() string {
	kind := "read"
	if s.Write {
		kind = "write"
	}
	return fmt.Sprintf("%s by P%d at %s (%s:%d)", kind, s.Proc, s.Func, s.File, s.Line)
}

// SiteCollector gathers the call sites of accesses to one address — the
// run-2 instrumentation of the two-run scheme. It implements the dsm watch
// hook.
type SiteCollector struct {
	Addr mem.Addr

	mu    sync.Mutex
	sites []AccessSite
	seen  map[uintptr]bool
}

// NewSiteCollector watches addr.
func NewSiteCollector(addr mem.Addr) *SiteCollector {
	return &SiteCollector{Addr: addr, seen: make(map[uintptr]bool)}
}

// WatchedAddr implements the dsm watch hook.
func (c *SiteCollector) WatchedAddr() mem.Addr { return c.Addr }

// NoteAccess implements the dsm watch hook: record the first application
// frame above the DSM access layer, deduplicated by PC.
func (c *SiteCollector) NoteAccess(proc int, write bool) {
	var pcs [16]uintptr
	n := runtime.Callers(2, pcs[:])
	frames := runtime.CallersFrames(pcs[:n])
	for {
		f, more := frames.Next()
		if f.Function == "" {
			return
		}
		if !strings.Contains(f.Function, "internal/dsm.") {
			c.mu.Lock()
			if !c.seen[f.PC] {
				c.seen[f.PC] = true
				c.sites = append(c.sites, AccessSite{
					Proc: proc, Write: write, PC: f.PC,
					Func: f.Function, File: f.File, Line: f.Line,
				})
			}
			c.mu.Unlock()
			return
		}
		if !more {
			return
		}
	}
}

// Sites returns the distinct access sites captured.
func (c *SiteCollector) Sites() []AccessSite {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]AccessSite(nil), c.sites...)
}
