// Package simnet is the simulated interconnect of the DSM: one endpoint per
// process, unbounded FIFO delivery, and per-message-type traffic statistics.
//
// It substitutes for the paper's 155 Mbit ATM + UDP transport. Every send
// marshals the message to bytes and every delivery re-parses those bytes,
// so (a) no memory is ever shared between "processes" through a message,
// exactly as on a real wire, and (b) the byte counts behind the bandwidth
// results of Table 3 come from real encodings. Virtual transmission time is
// computed by the receiver from the sender's virtual send time and the
// byte count (see costmodel).
package simnet

import (
	"fmt"
	"sync"

	"lrcrace/internal/msg"
	"lrcrace/internal/telemetry"
)

// UDPOverhead is the per-message header overhead charged to the wire
// (UDP + IP + AAL5 framing, rounded).
const UDPOverhead = 42

// DefaultMTU is the largest datagram the transport carries unfragmented —
// the "system maximum" message size the paper ran into when read notices
// grew ("current message sizes are already at system maximums"). Larger
// payloads are fragmented: each fragment is a message (and pays latency).
const DefaultMTU = 63 * 1024

// Delivery is one received message with its wire metadata.
type Delivery struct {
	From  int
	VTime int64 // sender's virtual clock at send
	Bytes int   // full wire size including UDPOverhead
	Frags int   // datagrams the payload needed (1 unless it exceeded the MTU)
	Msg   msg.Message
}

// Stats aggregates traffic counters. Counters are totals across all
// endpoints; the race-detection-specific byte counters are filled in by the
// DSM layer (which knows which bytes are read notices).
//
// Messages/Bytes count everything that entered the wire, including
// network-duplicated copies and (when the internal/reliable sublayer fills
// them in) retransmissions and acknowledgments — so Table-3-style bandwidth
// numbers stay honest under chaos.
type Stats struct {
	Messages [msg.NumTypes]int64
	Bytes    [msg.NumTypes]int64

	// Fault injection (FaultPlan), counted per wire message type.
	Dropped    [msg.NumTypes]int64
	Duplicated [msg.NumTypes]int64
	Reordered  int64

	// Reliability sublayer (internal/reliable).
	Retransmits  int64 // data packets resent by the retransmission timer
	RetransBytes int64 // wire bytes of those resends (also in Bytes)
	Deduped      int64 // receiver-side duplicate suppressions

	// Receiver-side framing/decode failures (tcpnet stream desync,
	// oversized or corrupt frames).
	Errors int64
}

// TotalMessages returns the number of messages sent.
func (s Stats) TotalMessages() int64 {
	var n int64
	for _, x := range s.Messages {
		n += x
	}
	return n
}

// TotalBytes returns the number of wire bytes sent.
func (s Stats) TotalBytes() int64 {
	var n int64
	for _, x := range s.Bytes {
		n += x
	}
	return n
}

// TotalDropped returns the number of messages the faulty wire discarded.
func (s Stats) TotalDropped() int64 {
	var n int64
	for _, x := range s.Dropped {
		n += x
	}
	return n
}

// TotalDuplicated returns the number of messages the faulty wire doubled.
func (s Stats) TotalDuplicated() int64 {
	var n int64
	for _, x := range s.Duplicated {
		n += x
	}
	return n
}

// Network connects n endpoints with unbounded queues. Delivery is
// reliable, ordered FIFO by default; SetFaults makes the wire lossy.
type Network struct {
	n      int
	mtu    int
	queues []*Queue

	faults *FaultPlan
	links  []*faultLink // per ordered pair, indexed from*n+to; nil without faults

	// tel is where fault-injection events go; the zero Scope follows the
	// process-global recorder. Set before traffic via SetTelemetry.
	tel telemetry.Scope

	mu      sync.Mutex
	stats   Stats
	started bool // first Send seen; SetMTU/SetFaults are sealed after this
}

// SetTelemetry scopes the network's fault-injection events (WireDrop /
// WireDup / WireReorder) to a specific recording session, so concurrent
// networks in one process do not interleave events in the global recorder.
// Like SetMTU it must be called before traffic starts.
func (nw *Network) SetTelemetry(tel telemetry.Scope) {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.started {
		panic("simnet: SetTelemetry after traffic has started")
	}
	nw.tel = tel
}

// New returns a network with n endpoints, numbered 0..n-1, and DefaultMTU.
func New(n int) *Network {
	nw := &Network{n: n, mtu: DefaultMTU, queues: make([]*Queue, n)}
	for i := range nw.queues {
		nw.queues[i] = NewQueue()
	}
	return nw
}

// SetMTU overrides the fragmentation threshold. It must be called before
// traffic starts: changing the threshold mid-run would silently skew the
// per-fragment latency accounting, so it panics once a message has been
// sent.
func (nw *Network) SetMTU(bytes int) {
	if bytes < 128 {
		bytes = 128
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.started {
		panic("simnet: SetMTU after traffic has started")
	}
	nw.mtu = bytes
}

// Size returns the number of endpoints.
func (nw *Network) Size() int { return nw.n }

// Send marshals m, accounts for it, and enqueues it at to, returning the
// wire size in bytes. vtime is the sender's virtual clock at the moment of
// sending. The message is re-parsed before delivery so sender and receiver
// never share memory.
func (nw *Network) Send(from, to int, m msg.Message, vtime int64) int {
	if to < 0 || to >= nw.n {
		panic(fmt.Sprintf("simnet: send to invalid endpoint %d", to))
	}
	wire := msg.Marshal(m)
	parsed, err := msg.Unmarshal(wire)
	if err != nil {
		panic(fmt.Sprintf("simnet: message %v does not survive the wire: %v", m.Type(), err))
	}
	frags := (len(wire) + nw.mtu - 1) / nw.mtu
	if frags < 1 {
		frags = 1
	}
	size := len(wire) + frags*UDPOverhead

	nw.mu.Lock()
	nw.started = true
	nw.stats.Messages[m.Type()] += int64(frags)
	nw.stats.Bytes[m.Type()] += int64(size)
	nw.mu.Unlock()

	d := Delivery{From: from, VTime: vtime, Bytes: size, Frags: frags, Msg: parsed}
	if nw.faults == nil || from == to {
		// Self-sends never traverse the wire (loopback), so they are
		// exempt from fault injection even in chaos mode.
		nw.queues[to].Push(d)
		return size
	}
	nw.sendFaulty(from, to, d, m.Type(), frags, size)
	return size
}

// Recv blocks until a message for proc arrives; ok is false after Close.
func (nw *Network) Recv(proc int) (Delivery, bool) {
	return nw.queues[proc].Pop()
}

// Close shuts down all endpoints; blocked Recv calls return ok=false after
// draining queued messages (including any the fault injector was still
// holding back for reordering).
func (nw *Network) Close() {
	nw.flushHeld()
	for _, q := range nw.queues {
		q.Close()
	}
}

// KillEndpoint simulates a process crash at proc: its queue is discarded
// and closed, so the victim's blocked Recv returns ok=false and every
// later Send to it is silently dropped on the floor (a packet to a dead
// host). Other endpoints are unaffected — survivors only learn of the
// death through their own timeouts.
func (nw *Network) KillEndpoint(proc int) {
	if proc < 0 || proc >= nw.n {
		panic(fmt.Sprintf("simnet: kill invalid endpoint %d", proc))
	}
	nw.queues[proc].Kill()
}

// Stats returns a snapshot of the traffic counters.
func (nw *Network) Stats() Stats {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.stats
}

// Queue is an unbounded FIFO of deliveries with blocking Pop. Unbounded
// capacity keeps the protocol deadlock-free regardless of traffic bursts
// (real CVM relies on kernel socket buffering plus retransmission for the
// same property). It is shared by every transport in the tree: simnet's
// endpoints, tcpnet's per-endpoint inboxes, and reliable's resequenced
// delivery queues.
type Queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []Delivery
	closed bool
}

// NewQueue returns an empty open queue.
func NewQueue() *Queue {
	q := &Queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends d; after Close it is a no-op (a packet to a dead host).
func (q *Queue) Push(d Delivery) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return
	}
	q.items = append(q.items, d)
	q.cond.Signal()
}

// Pop blocks for the next delivery; ok is false once the queue is closed
// and drained.
func (q *Queue) Pop() (Delivery, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return Delivery{}, false
	}
	d := q.items[0]
	q.items = q.items[1:]
	return d, true
}

// Close marks the queue closed and wakes blocked Pops.
func (q *Queue) Close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// Kill closes the queue and discards everything still queued, so blocked
// Pops return ok=false immediately instead of draining — the crash-fault
// version of Close.
func (q *Queue) Kill() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.items = nil
	q.closed = true
	q.cond.Broadcast()
}
