package simnet

import (
	"sync"
	"testing"

	"lrcrace/internal/msg"
)

func TestSendRecvRoundTrip(t *testing.T) {
	nw := New(2)
	defer nw.Close()
	sent := &msg.PageReq{Page: 7, Write: true}
	nw.Send(0, 1, sent, 12345)
	d, ok := nw.Recv(1)
	if !ok {
		t.Fatal("Recv returned !ok")
	}
	if d.From != 0 || d.VTime != 12345 {
		t.Errorf("metadata: %+v", d)
	}
	got, ok := d.Msg.(*msg.PageReq)
	if !ok || got.Page != 7 || !got.Write {
		t.Errorf("payload: %+v", d.Msg)
	}
	if got == sent {
		t.Error("receiver shares memory with sender")
	}
	if d.Bytes <= UDPOverhead {
		t.Errorf("Bytes = %d, want > header", d.Bytes)
	}
}

func TestFIFOOrder(t *testing.T) {
	nw := New(2)
	defer nw.Close()
	for i := 0; i < 50; i++ {
		nw.Send(0, 1, &msg.PageReq{Page: 0}, int64(i))
	}
	for i := 0; i < 50; i++ {
		d, ok := nw.Recv(1)
		if !ok || d.VTime != int64(i) {
			t.Fatalf("delivery %d: vtime = %d ok=%v", i, d.VTime, ok)
		}
	}
}

func TestStats(t *testing.T) {
	nw := New(3)
	defer nw.Close()
	nw.Send(0, 1, &msg.PageReq{Page: 1}, 0)
	nw.Send(1, 2, &msg.PageReq{Page: 2}, 0)
	nw.Send(2, 0, &msg.DiffAck{}, 0)
	s := nw.Stats()
	if s.Messages[msg.TPageReq] != 2 || s.Messages[msg.TDiffAck] != 1 {
		t.Errorf("message counts: %+v", s.Messages)
	}
	if s.TotalMessages() != 3 {
		t.Errorf("TotalMessages = %d", s.TotalMessages())
	}
	if s.Bytes[msg.TPageReq] <= 2*UDPOverhead {
		t.Errorf("PageReq bytes = %d", s.Bytes[msg.TPageReq])
	}
	if s.TotalBytes() < s.Bytes[msg.TPageReq] {
		t.Error("TotalBytes inconsistent")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	nw := New(1)
	done := make(chan bool)
	go func() {
		_, ok := nw.Recv(0)
		done <- ok
	}()
	nw.Close()
	if ok := <-done; ok {
		t.Error("Recv returned ok after Close with empty queue")
	}
	// Send after close is dropped silently.
	nw.Send(0, 0, &msg.DiffAck{}, 0)
	if _, ok := nw.Recv(0); ok {
		t.Error("message delivered after close")
	}
}

func TestCloseDrainsQueued(t *testing.T) {
	nw := New(1)
	nw.Send(0, 0, &msg.PageReq{Page: 3}, 0)
	nw.Close()
	d, ok := nw.Recv(0)
	if !ok || d.Msg.(*msg.PageReq).Page != 3 {
		t.Errorf("queued message lost on close: ok=%v", ok)
	}
	if _, ok := nw.Recv(0); ok {
		t.Error("phantom message after drain")
	}
}

func TestConcurrentSenders(t *testing.T) {
	nw := New(4)
	defer nw.Close()
	const per = 200
	var wg sync.WaitGroup
	for from := 0; from < 4; from++ {
		wg.Add(1)
		go func(from int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				nw.Send(from, 3, &msg.PageReq{Page: 1}, int64(i))
			}
		}(from)
	}
	counts := make(map[int]int)
	for i := 0; i < 3*per+per; i++ {
		d, ok := nw.Recv(3)
		if !ok {
			t.Fatal("short delivery")
		}
		counts[d.From]++
	}
	wg.Wait()
	for from := 0; from < 4; from++ {
		if counts[from] != per {
			t.Errorf("from %d: got %d, want %d", from, counts[from], per)
		}
	}
	if got := nw.Stats().TotalMessages(); got != 4*per {
		t.Errorf("TotalMessages = %d, want %d", got, 4*per)
	}
}

func TestSendInvalidEndpointPanics(t *testing.T) {
	nw := New(1)
	defer nw.Close()
	defer func() {
		if recover() == nil {
			t.Error("no panic for invalid endpoint")
		}
	}()
	nw.Send(0, 5, &msg.DiffAck{}, 0)
}

// TestFragmentation: payloads above the MTU count as multiple datagrams.
func TestFragmentation(t *testing.T) {
	nw := New(2)
	nw.SetMTU(256)
	defer nw.Close()
	small := &msg.PageReply{Page: 1, Data: make([]byte, 100)}
	big := &msg.PageReply{Page: 2, Data: make([]byte, 1000)}
	nw.Send(0, 1, small, 0)
	nw.Send(0, 1, big, 0)

	d1, _ := nw.Recv(1)
	if d1.Frags != 1 {
		t.Errorf("small frags = %d", d1.Frags)
	}
	d2, _ := nw.Recv(1)
	if d2.Frags < 4 { // ~1010 wire bytes / 256
		t.Errorf("big frags = %d, want >=4", d2.Frags)
	}
	if d2.Bytes <= 1000+UDPOverhead {
		t.Errorf("fragmented payload should pay per-fragment headers: %d", d2.Bytes)
	}
	s := nw.Stats()
	if s.Messages[msg.TPageReply] != int64(1+d2.Frags) {
		t.Errorf("message count = %d, want %d", s.Messages[msg.TPageReply], 1+d2.Frags)
	}
}

func TestSetMTUFloor(t *testing.T) {
	nw := New(1)
	nw.SetMTU(1) // clamped to 128
	defer nw.Close()
	nw.Send(0, 0, &msg.DiffAck{}, 0)
	d, _ := nw.Recv(0)
	if d.Frags != 1 {
		t.Errorf("tiny message fragmented: %d", d.Frags)
	}
}
