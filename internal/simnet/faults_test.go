package simnet

import (
	"fmt"
	"reflect"
	"testing"

	"lrcrace/internal/msg"
)

// schedule records the delivery order seen by one endpoint as compact
// strings (sender, type, vtime, bytes) — the "delivery schedule" whose
// byte-identical reproducibility the fault injector guarantees.
func schedule(nw *Network, proc, count int) []string {
	var got []string
	for i := 0; i < count; i++ {
		d, ok := nw.Recv(proc)
		if !ok {
			break
		}
		got = append(got, fmt.Sprintf("%d/%v/%d/%d", d.From, d.Msg.Type(), d.VTime, d.Bytes))
	}
	return got
}

// chaosRun sends a fixed message sequence over a faulty wire and returns
// the delivery schedule plus the network stats.
func chaosRun(t *testing.T, plan FaultPlan, sends int) ([]string, Stats) {
	t.Helper()
	nw := New(2)
	if err := nw.SetFaults(&plan); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < sends; i++ {
		nw.Send(0, 1, &msg.PageReq{Page: 1, Write: i%2 == 0}, int64(i)*1000)
		nw.Send(0, 1, &msg.AcquireReq{Lock: int32(i % 4), VC: []uint32{uint32(i), 2}}, int64(i)*1000+10)
	}
	st := nw.Stats()
	nw.Close()
	delivered := int(st.Messages[msg.TPageReq]+st.Messages[msg.TAcquireReq]) -
		int(st.TotalDropped())
	sched := schedule(nw, 1, delivered+10) // +10: drain everything until close
	return sched, st
}

func TestFaultDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, Drop: 0.2, Dup: 0.1, Reorder: 0.15, MaxReorder: 4, JitterNS: 5000}
	s1, st1 := chaosRun(t, plan, 200)
	s2, st2 := chaosRun(t, plan, 200)
	if !reflect.DeepEqual(s1, s2) {
		t.Fatalf("same seed produced different delivery schedules:\n%v\nvs\n%v", s1, s2)
	}
	if st1 != st2 {
		t.Errorf("same seed produced different stats:\n%+v\nvs\n%+v", st1, st2)
	}
	if st1.TotalDropped() == 0 || st1.TotalDuplicated() == 0 || st1.Reordered == 0 {
		t.Errorf("chaos plan exercised nothing: dropped=%d dup=%d reordered=%d",
			st1.TotalDropped(), st1.TotalDuplicated(), st1.Reordered)
	}

	// A different seed must produce a different schedule (with overwhelming
	// probability at 400 sends and these rates).
	s3, _ := chaosRun(t, FaultPlan{Seed: 43, Drop: 0.2, Dup: 0.1, Reorder: 0.15, MaxReorder: 4, JitterNS: 5000}, 200)
	if reflect.DeepEqual(s1, s3) {
		t.Error("different seeds produced identical schedules")
	}
}

func TestFaultDropAccounting(t *testing.T) {
	nw := New(2)
	if err := nw.SetFaults(&FaultPlan{Seed: 1, Drop: 1.0}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		nw.Send(0, 1, &msg.DiffAck{}, 0)
	}
	st := nw.Stats()
	if st.Dropped[msg.TDiffAck] != 10 {
		t.Errorf("Dropped[DiffAck] = %d, want 10", st.Dropped[msg.TDiffAck])
	}
	// Everything dropped: Recv must see nothing once closed.
	nw.Close()
	if _, ok := nw.Recv(1); ok {
		t.Error("dropped message was delivered")
	}
}

func TestFaultDupDelivery(t *testing.T) {
	nw := New(2)
	if err := nw.SetFaults(&FaultPlan{Seed: 7, Dup: 1.0}); err != nil {
		t.Fatal(err)
	}
	nw.Send(0, 1, &msg.DiffAck{}, 0)
	st := nw.Stats()
	if st.Duplicated[msg.TDiffAck] != 1 {
		t.Errorf("Duplicated[DiffAck] = %d, want 1", st.Duplicated[msg.TDiffAck])
	}
	// Both copies arrive, and both were charged to the wire.
	if st.Messages[msg.TDiffAck] != 2 {
		t.Errorf("Messages[DiffAck] = %d, want 2 (copy charged)", st.Messages[msg.TDiffAck])
	}
	for i := 0; i < 2; i++ {
		if _, ok := nw.Recv(1); !ok {
			t.Fatalf("copy %d missing", i)
		}
	}
}

func TestFaultReorderBounded(t *testing.T) {
	nw := New(2)
	// Hold back every message for a random 1–3 later sends: uneven delays
	// shuffle the order; nothing is ever lost.
	if err := nw.SetFaults(&FaultPlan{Seed: 3, Reorder: 1.0, MaxReorder: 3}); err != nil {
		t.Fatal(err)
	}
	const n = 12
	for i := 0; i < n; i++ {
		nw.Send(0, 1, &msg.PageReq{Page: 0, Write: i%2 == 0}, int64(i))
	}
	nw.Close() // flush the held tail
	var order []int64
	for {
		d, ok := nw.Recv(1)
		if !ok {
			break
		}
		order = append(order, d.VTime)
	}
	if len(order) != n {
		t.Fatalf("delivered %d of %d", len(order), n)
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Errorf("Reorder=1.0 delivered in order: %v", order)
	}
	if nw.Stats().Reordered != n {
		t.Errorf("Reordered = %d, want %d", nw.Stats().Reordered, n)
	}
}

func TestSelfSendsNeverFaulted(t *testing.T) {
	nw := New(2)
	if err := nw.SetFaults(&FaultPlan{Seed: 5, Drop: 1.0}); err != nil {
		t.Fatal(err)
	}
	nw.Send(1, 1, &msg.DiffAck{}, 0)
	if _, ok := nw.Recv(1); !ok {
		t.Fatal("self-send was dropped by the fault injector")
	}
}

func TestFaultPlanValidation(t *testing.T) {
	nw := New(2)
	for _, p := range []FaultPlan{
		{Drop: -0.1}, {Drop: 1.5}, {Dup: 2}, {Reorder: -1},
		{MaxReorder: -2}, {JitterNS: -5},
	} {
		if err := nw.SetFaults(&p); err == nil {
			t.Errorf("plan %+v accepted", p)
		}
	}
	if err := nw.SetFaults(nil); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
}

func TestSealedAfterTraffic(t *testing.T) {
	nw := New(2)
	nw.Send(0, 1, &msg.DiffAck{}, 0)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s after traffic did not panic", name)
			}
		}()
		f()
	}
	mustPanic("SetMTU", func() { nw.SetMTU(4096) })
	mustPanic("SetFaults", func() { nw.SetFaults(&FaultPlan{Seed: 1}) })
}
