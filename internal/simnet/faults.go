package simnet

import (
	"fmt"
	"math/rand"
	"sync"

	"lrcrace/internal/msg"
	"lrcrace/internal/telemetry"
)

// FaultPlan describes a deterministic, seed-driven unreliable wire: each
// directed link draws from its own PRNG (seeded from Seed and the link's
// endpoints), so the same plan over the same send schedule produces the
// same delivery schedule — the property replay-based detectors (Ronsse &
// De Bosschere, PAPERS.md) depend on, and what makes chaos failures
// reproducible.
//
// Faults model a raw UDP wire, the transport the paper's CVM actually ran
// on: datagrams may be dropped, duplicated, delivered late (reordered past
// later sends on the same link), or delayed by extra latency jitter.
// Self-sends (from == to) are loopback and never faulted.
//
// Drop, duplication, and reordering break the FIFO/reliable contract the
// DSM protocol assumes; run the internal/reliable sublayer on top to
// restore it, exactly as CVM supplies its own end-to-end retransmission
// over UDP.
type FaultPlan struct {
	// Seed drives every per-link PRNG. Two networks with equal plans and
	// equal per-link send schedules fault identically.
	Seed int64

	// Drop is the per-message probability the wire discards a message.
	Drop float64
	// Dup is the per-message probability the wire delivers a message twice.
	Dup float64
	// Reorder is the per-message probability a message is held back and
	// delivered after up to MaxReorder later sends on the same link.
	Reorder float64
	// MaxReorder bounds how many later sends a held message may be
	// delayed past; 0 means 3 when Reorder > 0.
	MaxReorder int
	// JitterNS adds a uniform extra virtual-time latency in [0, JitterNS]
	// to each message (skews arrival times without breaking ordering
	// guarantees on its own).
	JitterNS int64
}

// Lossy reports whether the plan can violate the reliable-FIFO contract
// (as opposed to merely jittering latency).
func (p *FaultPlan) Lossy() bool {
	return p != nil && (p.Drop > 0 || p.Dup > 0 || p.Reorder > 0)
}

// Validate checks the plan's parameters; Network.SetFaults and dsm.New
// both reject a malformed plan through it.
func (p *FaultPlan) Validate() error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"Drop", p.Drop}, {"Dup", p.Dup}, {"Reorder", p.Reorder}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("simnet: FaultPlan.%s = %v out of [0,1]", pr.name, pr.v)
		}
	}
	if p.MaxReorder < 0 {
		return fmt.Errorf("simnet: FaultPlan.MaxReorder = %d", p.MaxReorder)
	}
	if p.JitterNS < 0 {
		return fmt.Errorf("simnet: FaultPlan.JitterNS = %d", p.JitterNS)
	}
	return nil
}

// faultLink is the injection state of one directed link: its PRNG and the
// messages currently held back for reordering.
type faultLink struct {
	mu   sync.Mutex
	rng  *rand.Rand
	held []heldDelivery
}

// heldDelivery is a message delayed for reordering; after counts the
// subsequent sends on the link that must pass before it is released.
type heldDelivery struct {
	d     Delivery
	after int
}

// SetFaults installs a fault plan. Like SetMTU it must be called before
// traffic starts and panics otherwise; it returns an error for a
// malformed plan. A nil plan keeps the wire perfectly reliable.
func (nw *Network) SetFaults(p *FaultPlan) error {
	if p == nil {
		return nil
	}
	if err := p.Validate(); err != nil {
		return err
	}
	plan := *p
	if plan.Reorder > 0 && plan.MaxReorder == 0 {
		plan.MaxReorder = 3
	}
	nw.mu.Lock()
	defer nw.mu.Unlock()
	if nw.started {
		panic("simnet: SetFaults after traffic has started")
	}
	nw.faults = &plan
	nw.links = make([]*faultLink, nw.n*nw.n)
	for from := 0; from < nw.n; from++ {
		for to := 0; to < nw.n; to++ {
			nw.links[from*nw.n+to] = &faultLink{
				rng: rand.New(rand.NewSource(linkSeed(plan.Seed, from, to))),
			}
		}
	}
	return nil
}

// linkSeed mixes the plan seed with the link endpoints (splitmix64-style)
// so every directed link draws an independent deterministic stream.
func linkSeed(seed int64, from, to int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(from*1_000_003+to+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// sendFaulty runs one message through the link's fault injector. All
// decisions and queue pushes happen under the link lock, so the fault
// sequence is a pure function of the link's send order.
func (nw *Network) sendFaulty(from, to int, d Delivery, t msg.Type, frags, size int) {
	plan := nw.faults
	lf := nw.links[from*nw.n+to]
	lf.mu.Lock()
	defer lf.mu.Unlock()

	// Age held messages first: the current send is one more message they
	// are delayed past.
	for i := range lf.held {
		lf.held[i].after--
	}

	if plan.JitterNS > 0 {
		d.VTime += lf.rng.Int63n(plan.JitterNS + 1)
	}

	switch {
	case plan.Drop > 0 && lf.rng.Float64() < plan.Drop:
		nw.mu.Lock()
		nw.stats.Dropped[t]++
		nw.mu.Unlock()
		nw.tel.Emit(from, telemetry.KWireDrop, d.VTime, int64(to), int64(t), 0)
	case plan.Dup > 0 && lf.rng.Float64() < plan.Dup:
		nw.queues[to].Push(d)
		nw.queues[to].Push(d)
		nw.mu.Lock()
		nw.stats.Duplicated[t]++
		// The extra copy crossed the wire too.
		nw.stats.Messages[t] += int64(frags)
		nw.stats.Bytes[t] += int64(size)
		nw.mu.Unlock()
		nw.tel.Emit(from, telemetry.KWireDup, d.VTime, int64(to), int64(t), 0)
	case plan.Reorder > 0 && lf.rng.Float64() < plan.Reorder:
		lf.held = append(lf.held, heldDelivery{
			d:     d,
			after: 1 + lf.rng.Intn(plan.MaxReorder),
		})
		nw.mu.Lock()
		nw.stats.Reordered++
		nw.mu.Unlock()
		nw.tel.Emit(from, telemetry.KWireReorder, d.VTime, int64(to), int64(t), 0)
	default:
		nw.queues[to].Push(d)
	}

	// Release held messages whose delay has expired — after the current
	// message, which is what makes them reordered.
	kept := lf.held[:0]
	for _, h := range lf.held {
		if h.after <= 0 {
			nw.queues[to].Push(h.d)
		} else {
			kept = append(kept, h)
		}
	}
	lf.held = kept
}

// flushHeld releases every delayed message (link order preserved) so a
// shutdown drains rather than strands them.
func (nw *Network) flushHeld() {
	if nw.links == nil {
		return
	}
	for from := 0; from < nw.n; from++ {
		for to := 0; to < nw.n; to++ {
			lf := nw.links[from*nw.n+to]
			lf.mu.Lock()
			for _, h := range lf.held {
				nw.queues[to].Push(h.d)
			}
			lf.held = nil
			lf.mu.Unlock()
		}
	}
}
