package trace

import (
	"bytes"
	"io"
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
)

func TestHeaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, 7)
	if err != nil {
		t.Fatal(err)
	}
	w.Read(3, 0x40)
	w.Write(6, 0x48)
	w.Acquire(0, 5)
	w.Release(0, 5)
	w.BarrierArrive(1, 9)
	w.BarrierDepart(1, 9)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 6 {
		t.Errorf("Events = %d", w.Events())
	}
	if w.Bytes() != int64(buf.Len()) {
		t.Errorf("Bytes() = %d, actual %d", w.Bytes(), buf.Len())
	}

	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if r.NumProcs() != 7 {
		t.Errorf("NumProcs = %d", r.NumProcs())
	}
	want := []Event{
		{evRead, 3, 0x40}, {evWrite, 6, 0x48},
		{evAcquire, 0, 5}, {evRelease, 0, 5},
		{evBarrierArrive, 1, 9}, {evBarrierDepart, 1, 9},
	}
	for i, we := range want {
		e, err := r.Next()
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if e != we {
			t.Errorf("event %d = %+v, want %+v", i, e, we)
		}
		if e.KindString() == "" {
			t.Error("empty kind string")
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("expected EOF, got %v", err)
	}
}

func TestReaderRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("XXXX\x01\x02\x00"), // bad magic
		[]byte("LRCT\x09\x02\x00"), // bad version
		[]byte("LRCT\x01\x00\x00"), // nprocs 0
		append([]byte("LRCT\x01\x02\x00"), 0xEE, 1, 0),                 // unknown kind / truncated
		append([]byte("LRCT\x01\x02\x00"), make([]byte, eventSize)...), // kind 0
	}
	for i, b := range cases {
		r, err := NewReader(bytes.NewReader(b))
		if err != nil {
			continue // header rejected: fine
		}
		if _, err := r.Next(); err == nil || err == io.EOF && i >= 4 {
			t.Errorf("case %d accepted", i)
		}
	}
	// Out-of-range proc.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, 2)
	w.Read(5, 0) // proc 5 of 2
	w.Flush()
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("out-of-range proc accepted")
	}
}

// TestOnlineVsPostmortem is the §7 comparison: the online LRC-metadata
// detector and the post-mortem trace analysis of the same execution must
// flag the same racy addresses.
func TestOnlineVsPostmortem(t *testing.T) {
	var log bytes.Buffer
	const procs = 4
	tw, err := NewWriter(&log, procs)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dsm.New(dsm.Config{
		NumProcs:   procs,
		SharedSize: 8 * 1024,
		PageSize:   1024,
		Detect:     true,
		Tracer:     tw,
	})
	if err != nil {
		t.Fatal(err)
	}
	racy, _ := sys.AllocWords("racy", 1)
	locked, _ := sys.AllocWords("locked", 1)
	err = sys.Run(func(p *dsm.Proc) {
		for i := 0; i < 4; i++ {
			p.Lock(0)
			p.Write(locked, p.Read(locked)+1)
			p.Unlock(0)
			if p.ID()%2 == 0 {
				p.Write(racy, uint64(p.ID()))
			} else {
				_ = p.Read(racy)
			}
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	online := map[mem.Addr]bool{}
	for _, r := range race.DedupByAddr(sys.Races()) {
		online[r.Addr] = true
	}
	postmortem, err := Analyze(bytes.NewReader(log.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(postmortem) != len(online) {
		t.Fatalf("post-mortem %v vs online %v", postmortem, keys(online))
	}
	for _, a := range postmortem {
		if !online[a] {
			t.Errorf("post-mortem-only address %#x", a)
		}
	}
	if !online[racy] {
		t.Error("the racy variable was not flagged at all")
	}

	// The paper's storage argument: the log costs eventSize bytes per
	// access — here a few KB for a toy run; for Table 3's access rates it
	// is tens of MB per second of execution, which the online approach
	// never materializes.
	if tw.Bytes() < int64(100*eventSize) {
		t.Errorf("trace suspiciously small: %d bytes", tw.Bytes())
	}
}

func keys(m map[mem.Addr]bool) []mem.Addr {
	var out []mem.Addr
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestWriterCloseClosesCloser verifies Close propagation.
func TestWriterCloseClosesCloser(t *testing.T) {
	cw := &closeCounter{}
	w, err := NewWriter(cw, 1)
	if err != nil {
		t.Fatal(err)
	}
	w.Read(0, 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if cw.closed != 1 {
		t.Errorf("closed %d times", cw.closed)
	}
}

type closeCounter struct {
	bytes.Buffer
	closed int
}

func (c *closeCounter) Close() error {
	c.closed++
	return nil
}
