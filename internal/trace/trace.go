// Package trace implements the post-mortem race-detection pipeline the
// paper compares against (§7, the technique of Adve, Hill, Miller & Netzer):
// write every shared access and synchronization event to a trace log during
// the run, then analyze the log offline.
//
// The paper's contribution is precisely to make this pipeline unnecessary —
// "we are therefore able to perform all of the analysis online, and do away
// with trace logs, post-mortem analysis, and much of the overhead" — so this
// package exists as the measured baseline: the online detector and the
// post-mortem analyzer must find the same racy addresses on the same
// execution (asserted by test), while the trace's storage cost per access
// (benchmarked) is the price the online approach eliminates.
//
// The Writer plugs into the DSM as a Config.Tracer; the Analyzer replays a
// log through the happens-before reference detector.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"lrcrace/internal/hbdet"
	"lrcrace/internal/mem"
)

// Event kinds, one byte each on the wire.
const (
	evRead byte = iota + 1
	evWrite
	evAcquire
	evRelease
	evBarrierArrive
	evBarrierDepart
)

// magic identifies a trace stream; the byte after it is the format version.
var magic = []byte{'L', 'R', 'C', 'T'}

const version = 1

// eventSize is the fixed wire size of one event: kind(1) + proc(2) + arg(8).
const eventSize = 11

// Event is one decoded trace record.
type Event struct {
	Kind byte
	Proc int
	Arg  uint64 // address for accesses, lock id for acquire/release, epoch for barriers
}

// KindString names the event kind.
func (e Event) KindString() string {
	switch e.Kind {
	case evRead:
		return "read"
	case evWrite:
		return "write"
	case evAcquire:
		return "acquire"
	case evRelease:
		return "release"
	case evBarrierArrive:
		return "barrier-arrive"
	case evBarrierDepart:
		return "barrier-depart"
	}
	return fmt.Sprintf("kind(%d)", e.Kind)
}

// Writer serializes the execution's events to a log. It implements the
// dsm.Tracer interface, so attaching it is one Config field. Writes are
// buffered; call Close (or Flush) before reading the log back.
type Writer struct {
	mu     sync.Mutex
	w      *bufio.Writer
	closer io.Closer
	events int64
	err    error
}

// NewWriter starts a trace log on w, emitting the header. If w is also an
// io.Closer, Close will close it.
func NewWriter(w io.Writer, nprocs int) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic); err != nil {
		return nil, err
	}
	hdr := []byte{version, 0, 0}
	binary.LittleEndian.PutUint16(hdr[1:], uint16(nprocs))
	if _, err := bw.Write(hdr); err != nil {
		return nil, err
	}
	tw := &Writer{w: bw}
	if c, ok := w.(io.Closer); ok {
		tw.closer = c
	}
	return tw, nil
}

func (t *Writer) emit(kind byte, proc int, arg uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	var buf [eventSize]byte
	buf[0] = kind
	binary.LittleEndian.PutUint16(buf[1:], uint16(proc))
	binary.LittleEndian.PutUint64(buf[3:], arg)
	if _, err := t.w.Write(buf[:]); err != nil {
		t.err = err
		return
	}
	t.events++
}

// Read implements dsm.Tracer.
func (t *Writer) Read(proc int, addr mem.Addr) { t.emit(evRead, proc, uint64(addr)) }

// Write implements dsm.Tracer.
func (t *Writer) Write(proc int, addr mem.Addr) { t.emit(evWrite, proc, uint64(addr)) }

// Acquire implements dsm.Tracer.
func (t *Writer) Acquire(proc, lock int) { t.emit(evAcquire, proc, uint64(lock)) }

// Release implements dsm.Tracer.
func (t *Writer) Release(proc, lock int) { t.emit(evRelease, proc, uint64(lock)) }

// BarrierArrive implements dsm.Tracer.
func (t *Writer) BarrierArrive(proc int, epoch int32) {
	t.emit(evBarrierArrive, proc, uint64(uint32(epoch)))
}

// BarrierDepart implements dsm.Tracer.
func (t *Writer) BarrierDepart(proc int, epoch int32) {
	t.emit(evBarrierDepart, proc, uint64(uint32(epoch)))
}

// Events returns the number of events emitted so far.
func (t *Writer) Events() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.events
}

// Bytes returns the log size so far, header included.
func (t *Writer) Bytes() int64 {
	return int64(len(magic)) + 3 + t.Events()*eventSize
}

// Flush drains buffered events to the underlying writer.
func (t *Writer) Flush() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.w.Flush()
}

// Close flushes and closes the underlying writer if it is closable.
func (t *Writer) Close() error {
	if err := t.Flush(); err != nil {
		return err
	}
	if t.closer != nil {
		return t.closer.Close()
	}
	return nil
}

// Reader iterates a trace log.
type Reader struct {
	r      *bufio.Reader
	nprocs int
}

// ErrBadTrace reports a malformed log.
var ErrBadTrace = errors.New("trace: malformed log")

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	hdr := make([]byte, len(magic)+3)
	if _, err := io.ReadFull(br, hdr); err != nil {
		return nil, fmt.Errorf("%w: short header: %v", ErrBadTrace, err)
	}
	for i, b := range magic {
		if hdr[i] != b {
			return nil, fmt.Errorf("%w: bad magic", ErrBadTrace)
		}
	}
	if hdr[len(magic)] != version {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadTrace, hdr[len(magic)])
	}
	nprocs := int(binary.LittleEndian.Uint16(hdr[len(magic)+1:]))
	if nprocs < 1 {
		return nil, fmt.Errorf("%w: nprocs = %d", ErrBadTrace, nprocs)
	}
	return &Reader{r: br, nprocs: nprocs}, nil
}

// NumProcs returns the process count from the header.
func (r *Reader) NumProcs() int { return r.nprocs }

// Next returns the next event, or io.EOF at a clean end of log.
func (r *Reader) Next() (Event, error) {
	var buf [eventSize]byte
	if _, err := io.ReadFull(r.r, buf[:]); err != nil {
		if err == io.EOF {
			return Event{}, io.EOF
		}
		return Event{}, fmt.Errorf("%w: truncated event: %v", ErrBadTrace, err)
	}
	e := Event{
		Kind: buf[0],
		Proc: int(binary.LittleEndian.Uint16(buf[1:])),
		Arg:  binary.LittleEndian.Uint64(buf[3:]),
	}
	if e.Kind < evRead || e.Kind > evBarrierDepart {
		return Event{}, fmt.Errorf("%w: unknown event kind %d", ErrBadTrace, e.Kind)
	}
	if e.Proc >= r.nprocs {
		return Event{}, fmt.Errorf("%w: event for proc %d of %d", ErrBadTrace, e.Proc, r.nprocs)
	}
	return e, nil
}

// Analyze replays a trace log through the happens-before detector and
// returns the racy addresses found — the post-mortem pipeline in one call.
func Analyze(r io.Reader) ([]mem.Addr, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	det := hbdet.New(tr.NumProcs())
	for {
		e, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch e.Kind {
		case evRead:
			det.Read(e.Proc, mem.Addr(e.Arg))
		case evWrite:
			det.Write(e.Proc, mem.Addr(e.Arg))
		case evAcquire:
			det.Acquire(e.Proc, int(e.Arg))
		case evRelease:
			det.Release(e.Proc, int(e.Arg))
		case evBarrierArrive:
			det.BarrierArrive(e.Proc, int32(uint32(e.Arg)))
		case evBarrierDepart:
			det.BarrierDepart(e.Proc, int32(uint32(e.Arg)))
		}
	}
	return det.RacyAddrs(), nil
}
