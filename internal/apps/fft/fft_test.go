package fft

import (
	"math/cmplx"
	"testing"

	"lrcrace/internal/dsm"
)

func runFFT(t *testing.T, cfg Config, procs int, proto dsm.ProtocolKind) (*FFT, *dsm.System) {
	t.Helper()
	app := New(cfg)
	sys, err := dsm.New(dsm.Config{
		NumProcs:   procs,
		SharedSize: app.SharedBytes(),
		Protocol:   proto,
		Detect:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(app.Worker); err != nil {
		t.Fatal(err)
	}
	return app, sys
}

func TestFFTVecTransform(t *testing.T) {
	// fftVec against the DFT definition on a small vector.
	n := 8
	buf := make([]complex128, n)
	orig := make([]complex128, n)
	for i := range buf {
		buf[i] = complex(float64(i*i%7), float64(3*i%5))
		orig[i] = buf[i]
	}
	fftVec(buf, false)
	for k := 0; k < n; k++ {
		var want complex128
		for j := 0; j < n; j++ {
			want += orig[j] * cmplx.Exp(complex(0, -2*3.141592653589793*float64(k*j)/float64(n)))
		}
		if cmplx.Abs(buf[k]-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", k, buf[k], want)
		}
	}
	// Inverse returns the original.
	fftVec(buf, true)
	for i := range buf {
		if cmplx.Abs(buf[i]-orig[i]) > 1e-9 {
			t.Fatalf("inverse[%d] = %v, want %v", i, buf[i], orig[i])
		}
	}
}

func TestFFT3DMatchesReference(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		app, sys := runFFT(t, Config{N1: 8, N2: 8, N3: 4}, procs, dsm.SingleWriter)
		if err := app.Verify(sys); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
		if races := sys.Races(); len(races) != 0 {
			t.Errorf("procs=%d: FFT reported races: %v", procs, races[0])
		}
	}
}

func TestFFTMultiWriter(t *testing.T) {
	app, sys := runFFT(t, Config{N1: 8, N2: 8, N3: 4}, 3, dsm.MultiWriter)
	if err := app.Verify(sys); err != nil {
		t.Error(err)
	}
	if len(sys.Races()) != 0 {
		t.Errorf("races: %v", sys.Races())
	}
}

func TestFFTConfig(t *testing.T) {
	app := New(Config{})
	if app.cfg.N1 != 64 || app.cfg.N2 != 64 || app.cfg.N3 != 16 {
		t.Errorf("defaults: %+v", app.cfg)
	}
	if app.InputDesc() != "64 x 64 x 16" {
		t.Errorf("InputDesc = %q (paper Table 1 says \"64 x 64 x 16\")", app.InputDesc())
	}
	if p := New(PaperConfig()); p.points() != 65536 {
		t.Errorf("paper points = %d", p.points())
	}
	if app.Name() != "FFT" || app.SyncKinds() != "barrier" {
		t.Error("descriptors wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two dimension accepted")
		}
	}()
	New(Config{N1: 48})
}
