// Package fft implements the paper's FFT benchmark: a 3-D complex FFT over
// an n1×n2×n3 grid — the paper's input is 64×64×16 — partitioned into slabs
// of x-planes and synchronized only by barriers.
//
// The transform runs as three passes. The z-pass and y-pass are local to a
// process's slab; the x-pass needs every x for fixed (y,z), so it gathers
// pencils across all slabs (remote reads) and writes the transformed
// pencils into the process's own contiguous block of the output grid — the
// Splash2 communication structure: reads cross the machine, writes stay
// partition-local, so barrier-separated passes exhibit almost no
// unsynchronized page sharing. Every pencil is copied into a private buffer
// before the butterflies run, which is where the instrumented-but-private
// accesses of Table 3 come from.
package fft

import (
	"fmt"
	"math"
	"math/cmplx"

	"lrcrace/internal/apps"
	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
)

func init() {
	apps.Register("FFT", func(scale float64) apps.App { return New(Config{Scale: scale}) })
}

// Config sets the problem size.
type Config struct {
	// N1, N2, N3 are the grid dimensions (powers of two). Zero → the
	// paper's 64×64×16, with N1 scaled by Scale.
	N1, N2, N3 int
	// Scale scales the default N1=64 (rounded up to a power of two).
	Scale float64
}

func (c *Config) fill() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.N1 == 0 {
		n := 4
		for float64(n) < 64*c.Scale {
			n *= 2
		}
		c.N1 = n
	}
	if c.N2 == 0 {
		c.N2 = 64
	}
	if c.N3 == 0 {
		c.N3 = 16
	}
	for _, n := range []int{c.N1, c.N2, c.N3} {
		if n&(n-1) != 0 || n < 2 {
			panic(fmt.Sprintf("fft: dimension %d must be a power of two >= 2", n))
		}
	}
}

// PaperConfig is the paper's input set: a 64×64×16 complex grid.
func PaperConfig() Config { return Config{N1: 64, N2: 64, N3: 16} }

// FFT is the benchmark instance.
type FFT struct {
	cfg  Config
	a, b mem.Addr // complex grids: 2 words (re, im) per element
}

// New builds an FFT instance.
func New(cfg Config) *FFT {
	cfg.fill()
	return &FFT{cfg: cfg}
}

// Name implements apps.App.
func (f *FFT) Name() string { return "FFT" }

// InputDesc implements apps.App.
func (f *FFT) InputDesc() string {
	return fmt.Sprintf("%d x %d x %d", f.cfg.N1, f.cfg.N2, f.cfg.N3)
}

// SyncKinds implements apps.App.
func (f *FFT) SyncKinds() string { return "barrier" }

func (f *FFT) points() int { return f.cfg.N1 * f.cfg.N2 * f.cfg.N3 }

// SharedBytes implements apps.App: two complex grids.
func (f *FFT) SharedBytes() int {
	return 2*2*f.points()*mem.WordSize + mem.DefaultPageSize
}

// elem addresses element (x,y,z) of grid A, laid out x-major so that a
// process's slab of x-planes is contiguous.
func (f *FFT) elem(base mem.Addr, x, y, z int) mem.Addr {
	idx := (x*f.cfg.N2+y)*f.cfg.N3 + z
	return base + mem.Addr(idx*2*mem.WordSize)
}

// input is the deterministic test signal.
func input(x, y, z int, c Config) complex128 {
	t := float64((x*c.N2+y)*c.N3+z) / float64(c.N1*c.N2*c.N3)
	return complex(math.Sin(2*math.Pi*3*t)+0.5*math.Cos(2*math.Pi*7*t), 0.25*math.Sin(2*math.Pi*11*t))
}

// Setup implements apps.App.
func (f *FFT) Setup(sys *dsm.System) error {
	var err error
	if f.a, err = sys.Alloc("gridA", 2*f.points()*mem.WordSize); err != nil {
		return err
	}
	if f.b, err = sys.Alloc("gridB", 2*f.points()*mem.WordSize); err != nil {
		return err
	}
	return nil
}

// slabFor returns the half-open x-plane range of proc id.
func (f *FFT) slabFor(id, nproc int) (lo, hi int) {
	n := f.cfg.N1
	return id * n / nproc, (id + 1) * n / nproc
}

// pencilsFor returns the half-open (y,z)-pencil range of proc id for the
// x-pass; pencil pi = y*N3+z.
func (f *FFT) pencilsFor(id, nproc int) (lo, hi int) {
	n := f.cfg.N2 * f.cfg.N3
	return id * n / nproc, (id + 1) * n / nproc
}

func (f *FFT) readElem(p *dsm.Proc, x, y, z int) complex128 {
	a := f.elem(f.a, x, y, z)
	return complex(p.ReadF64(a), p.ReadF64(a+mem.WordSize))
}

func (f *FFT) writeElem(p *dsm.Proc, x, y, z int, v complex128) {
	a := f.elem(f.a, x, y, z)
	p.WriteF64(a, real(v))
	p.WriteF64(a+mem.WordSize, imag(v))
}

// fftVec transforms buf in place (iterative radix-2, decimation in time).
func fftVec(buf []complex128, inverse bool) {
	n := len(buf)
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j |= bit
		if i < j {
			buf[i], buf[j] = buf[j], buf[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := 2 * math.Pi / float64(length)
		if !inverse {
			ang = -ang
		}
		wl := cmplx.Rect(1, ang)
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for k := 0; k < length/2; k++ {
				u := buf[i+k]
				v := buf[i+k+length/2] * w
				buf[i+k] = u + v
				buf[i+k+length/2] = u - v
				w *= wl
			}
		}
	}
	if inverse {
		inv := complex(1/float64(n), 0)
		for i := range buf {
			buf[i] *= inv
		}
	}
}

func log2(n int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	return l
}

// chargePencil models the private butterfly work on one pencil of length n.
func chargePencil(p *dsm.Proc, n int) {
	logn := log2(n)
	p.PrivateAccess(int64(3 * n * logn))
	p.Compute(int64(5 * n * logn))
}

// Worker implements apps.App.
func (f *FFT) Worker(p *dsm.Proc) {
	c := f.cfg
	if p.ID() == 0 {
		for x := 0; x < c.N1; x++ {
			for y := 0; y < c.N2; y++ {
				for z := 0; z < c.N3; z++ {
					f.writeElem(p, x, y, z, input(x, y, z, c))
				}
			}
		}
	}
	p.Barrier()

	lo, hi := f.slabFor(p.ID(), p.N())

	// z-pass: contiguous pencils within the slab.
	zbuf := make([]complex128, c.N3)
	for x := lo; x < hi; x++ {
		for y := 0; y < c.N2; y++ {
			for z := 0; z < c.N3; z++ {
				zbuf[z] = f.readElem(p, x, y, z)
			}
			fftVec(zbuf, false)
			chargePencil(p, c.N3)
			for z := 0; z < c.N3; z++ {
				f.writeElem(p, x, y, z, zbuf[z])
			}
		}
	}
	p.Barrier()

	// y-pass: strided pencils, still within the slab.
	ybuf := make([]complex128, c.N2)
	for x := lo; x < hi; x++ {
		for z := 0; z < c.N3; z++ {
			for y := 0; y < c.N2; y++ {
				ybuf[y] = f.readElem(p, x, y, z)
			}
			fftVec(ybuf, false)
			chargePencil(p, c.N2)
			for y := 0; y < c.N2; y++ {
				f.writeElem(p, x, y, z, ybuf[y])
			}
		}
	}
	p.Barrier()

	// x-pass: gather each owned (y,z) pencil across every slab of A
	// (remote reads), transform, and write it into this process's
	// contiguous pencil block of B (partition-local writes).
	xbuf := make([]complex128, c.N1)
	plo, phi := f.pencilsFor(p.ID(), p.N())
	for pi := plo; pi < phi; pi++ {
		y, z := pi/c.N3, pi%c.N3
		for x := 0; x < c.N1; x++ {
			xbuf[x] = f.readElem(p, x, y, z)
		}
		fftVec(xbuf, false)
		chargePencil(p, c.N1)
		for x := 0; x < c.N1; x++ {
			a := f.b + mem.Addr((pi*c.N1+x)*2*mem.WordSize)
			p.WriteF64(a, real(xbuf[x]))
			p.WriteF64(a+mem.WordSize, imag(xbuf[x]))
		}
	}
	p.Barrier()
}

// Reference computes the same 3-D transform sequentially, in the worker's
// output layout (pencil-major: element x of pencil (y,z) at (y·N3+z)·N1+x).
func (f *FFT) Reference() []complex128 {
	c := f.cfg
	a := make([]complex128, f.points())
	at := func(x, y, z int) int { return (x*c.N2+y)*c.N3 + z }
	for x := 0; x < c.N1; x++ {
		for y := 0; y < c.N2; y++ {
			for z := 0; z < c.N3; z++ {
				a[at(x, y, z)] = input(x, y, z, c)
			}
		}
	}
	zbuf := make([]complex128, c.N3)
	for x := 0; x < c.N1; x++ {
		for y := 0; y < c.N2; y++ {
			for z := 0; z < c.N3; z++ {
				zbuf[z] = a[at(x, y, z)]
			}
			fftVec(zbuf, false)
			for z := 0; z < c.N3; z++ {
				a[at(x, y, z)] = zbuf[z]
			}
		}
	}
	ybuf := make([]complex128, c.N2)
	for x := 0; x < c.N1; x++ {
		for z := 0; z < c.N3; z++ {
			for y := 0; y < c.N2; y++ {
				ybuf[y] = a[at(x, y, z)]
			}
			fftVec(ybuf, false)
			for y := 0; y < c.N2; y++ {
				a[at(x, y, z)] = ybuf[y]
			}
		}
	}
	out := make([]complex128, f.points())
	xbuf := make([]complex128, c.N1)
	for y := 0; y < c.N2; y++ {
		for z := 0; z < c.N3; z++ {
			for x := 0; x < c.N1; x++ {
				xbuf[x] = a[at(x, y, z)]
			}
			fftVec(xbuf, false)
			pi := y*c.N3 + z
			for x := 0; x < c.N1; x++ {
				out[pi*c.N1+x] = xbuf[x]
			}
		}
	}
	return out
}

// Verify implements apps.App.
func (f *FFT) Verify(sys *dsm.System) error {
	want := f.Reference()
	for i, w := range want {
		a := f.b + mem.Addr(i*2*mem.WordSize)
		got := complex(sys.SnapshotF64(a), sys.SnapshotF64(a+mem.WordSize))
		if cmplx.Abs(got-w) > 1e-9 {
			return fmt.Errorf("fft: element %d = %v, want %v", i, got, w)
		}
	}
	return nil
}
