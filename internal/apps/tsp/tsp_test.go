package tsp

import (
	"testing"
	"time"

	"lrcrace/internal/dsm"
	"lrcrace/internal/race"
)

func runTSP(t *testing.T, cfg Config, procs int, detect bool) (*TSP, *dsm.System) {
	t.Helper()
	app := New(cfg)
	sys, err := dsm.New(dsm.Config{
		NumProcs:   procs,
		SharedSize: app.SharedBytes(),
		Detect:     detect,
		// Couple real scheduling to wire latency so the work queue is
		// actually shared among processes at this tiny scale.
		RealMsgDelay: 30 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(app.Worker); err != nil {
		t.Fatal(err)
	}
	return app, sys
}

func TestTSPFindsOptimum(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		app, sys := runTSP(t, Config{Cities: 8, PrefixLen: 3}, procs, false)
		if err := app.Verify(sys); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

// TestTSPBoundRacesDetected reproduces the paper's headline TSP finding:
// the unsynchronized reads of the global tour bound are flagged as
// read-write races on exactly that variable.
func TestTSPBoundRacesDetected(t *testing.T) {
	app, sys := runTSP(t, Config{Cities: 10, PrefixLen: 2}, 4, true)
	if err := app.Verify(sys); err != nil {
		t.Fatal(err) // the race is benign: the answer must still be right
	}
	races := race.DedupByAddr(sys.Races())
	if len(races) == 0 {
		t.Fatal("no races detected in TSP")
	}
	for _, r := range races {
		if r.Addr != app.RacyBoundAddr() {
			sym, _ := sys.SymbolAt(r.Addr)
			t.Errorf("race at %#x (%s), want only minTour", r.Addr, sym.Name)
		}
		if r.WriteWrite() {
			t.Errorf("TSP bound race should be read-write, got %v", r)
		}
	}
	// Symbol resolution names the variable, as §6.1 describes.
	sym, ok := sys.SymbolAt(app.RacyBoundAddr())
	if !ok || sym.Name != "minTour" {
		t.Errorf("symbol lookup = %+v, %v", sym, ok)
	}
}

func TestTSPDistProperties(t *testing.T) {
	for i := 0; i < 12; i++ {
		if Dist(i, i) != 0 {
			t.Errorf("Dist(%d,%d) != 0", i, i)
		}
		for j := 0; j < 12; j++ {
			if Dist(i, j) != Dist(j, i) {
				t.Errorf("asymmetric: Dist(%d,%d)=%d Dist(%d,%d)=%d", i, j, Dist(i, j), j, i, Dist(j, i))
			}
			if i != j && Dist(i, j) <= 0 {
				t.Errorf("Dist(%d,%d) = %d", i, j, Dist(i, j))
			}
		}
	}
}

func TestTSPConfig(t *testing.T) {
	app := New(Config{})
	if app.cfg.Cities != 11 || app.cfg.PrefixLen != 4 {
		t.Errorf("defaults: %+v", app.cfg)
	}
	paper := New(Config{Scale: 9})
	if paper.cfg.Cities != 19 {
		t.Errorf("paper scale cities = %d", paper.cfg.Cities)
	}
	if app.SyncKinds() != "lock" {
		t.Error("TSP should be lock-synchronized")
	}
	tiny := New(Config{Cities: 5, PrefixLen: 9})
	if tiny.cfg.PrefixLen != 4 {
		t.Errorf("prefix clamp: %d", tiny.cfg.PrefixLen)
	}
}

func TestTSPNumPrefixes(t *testing.T) {
	app := New(Config{Cities: 8, PrefixLen: 3})
	// Queue capacity: prefixes of length 1..3 from city 0: 1 + 7 + 42 = 50.
	if app.maxQ != 1+7+42 {
		t.Errorf("maxQ = %d, want 50", app.maxQ)
	}
}
