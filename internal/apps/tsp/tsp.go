// Package tsp implements the paper's TSP benchmark: branch-and-bound
// traveling salesman over a centralized work queue of tour prefixes,
// protected by a lock — with the original's deliberate performance hack
// intact: workers prune against the global best-tour bound by reading it
// WITHOUT synchronization. A stale bound only causes redundant search, never
// a wrong answer, but every such read races with the locked bound updates —
// the read-write data races the paper's detector finds ("a large number of
// data races that result from unsynchronized read accesses to a global tour
// bound").
package tsp

import (
	"fmt"
	"math"

	"lrcrace/internal/apps"
	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
)

func init() {
	apps.Register("TSP", func(scale float64) apps.App { return New(Config{Scale: scale}) })
}

// Lock identifiers.
const (
	QLock   = 0 // work queue
	MinLock = 1 // best tour bound + path
)

// Infinity is the initial tour bound.
const Infinity = int64(math.MaxInt32)

// Config sets the problem size.
type Config struct {
	// Cities is the number of cities. Zero → 10 + Scale (cap 19). The
	// paper runs 19 cities.
	Cities int
	// PrefixLen is the tour-prefix length at which workers stop expanding
	// the queue and solve the subtree with a private depth-first search.
	// Zero → 4.
	PrefixLen int
	// Scale scales the default city count.
	Scale float64
}

func (c *Config) fill() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Cities == 0 {
		c.Cities = 10 + int(c.Scale)
		if c.Cities > 19 {
			c.Cities = 19
		}
	}
	if c.PrefixLen == 0 {
		c.PrefixLen = 4
	}
	if c.PrefixLen >= c.Cities {
		c.PrefixLen = c.Cities - 1
	}
}

// TSP is the benchmark instance.
type TSP struct {
	cfg Config

	dist     mem.Addr // cities × cities distance matrix
	minTour  mem.Addr // the racy global bound (1 word)
	bestPath mem.Addr // cities words, guarded by MinLock
	qCount   mem.Addr // slots filled (guarded by QLock)
	qNext    mem.Addr // next slot to pop (guarded by QLock)
	qBusy    mem.Addr // prefixes popped but not yet fully processed (QLock)
	qSlots   mem.Addr // maxQ × (1 + PrefixLen) words
	maxQ     int
}

// PaperConfig is the paper's input set: 19 cities. Warning: exact
// branch-and-bound at 19 cities explores an enormous tree; expect very
// long runs. Harness defaults use 12 cities instead.
func PaperConfig() Config { return Config{Cities: 19} }

// New builds a TSP instance.
func New(cfg Config) *TSP {
	cfg.fill()
	t := &TSP{cfg: cfg}
	t.maxQ = t.queueCapacity()
	return t
}

// queueCapacity bounds the number of prefixes ever enqueued: every prefix
// of length 1..PrefixLen starting at city 0.
func (t *TSP) queueCapacity() int {
	total, perLen := 0, 1
	for l := 1; l <= t.cfg.PrefixLen; l++ {
		total += perLen
		perLen *= t.cfg.Cities - l
	}
	return total
}

// Name implements apps.App.
func (t *TSP) Name() string { return "TSP" }

// InputDesc implements apps.App.
func (t *TSP) InputDesc() string { return fmt.Sprintf("%d cities", t.cfg.Cities) }

// SyncKinds implements apps.App.
func (t *TSP) SyncKinds() string { return "lock" }

// SharedBytes implements apps.App: the four shared regions (distance
// matrix, bound+best path, queue counters, queue slots), each starting on
// its own page as the original's separate shared allocations do.
func (t *TSP) SharedBytes() int {
	n := t.cfg.Cities
	words := n*n + 2 + n + 1 + t.maxQ*(1+t.cfg.PrefixLen)
	return words*mem.WordSize + 6*mem.DefaultPageSize
}

// allocRegion page-aligns the next allocation.
func allocRegion(sys *dsm.System, name string, words int) (mem.Addr, error) {
	ps := sys.Layout().PageSize
	if pad := (ps - sys.AllocBytes()%ps) % ps; pad > 0 {
		if _, err := sys.Alloc(name+"_pad", pad); err != nil {
			return 0, err
		}
	}
	return sys.AllocWords(name, words)
}

// Dist returns the deterministic inter-city distance: cities on a pseudo
// random integer grid, Euclidean distance rounded up.
func Dist(i, j int) int64 {
	if i == j {
		return 0
	}
	xi, yi := cityPos(i)
	xj, yj := cityPos(j)
	dx, dy := float64(xi-xj), float64(yi-yj)
	return int64(math.Ceil(math.Sqrt(dx*dx + dy*dy)))
}

func cityPos(i int) (int, int) {
	h := uint64(i+1) * 0x9e3779b97f4a7c15
	return int(h % 1000), int((h >> 32) % 1000)
}

// Setup implements apps.App.
func (t *TSP) Setup(sys *dsm.System) error {
	n := t.cfg.Cities
	var err error
	if t.dist, err = allocRegion(sys, "dist", n*n); err != nil {
		return err
	}
	if t.minTour, err = allocRegion(sys, "minTour", 1); err != nil {
		return err
	}
	if t.bestPath, err = sys.AllocWords("bestPath", n); err != nil {
		return err
	}
	if t.qCount, err = allocRegion(sys, "qCount", 1); err != nil {
		return err
	}
	if t.qNext, err = sys.AllocWords("qNext", 1); err != nil {
		return err
	}
	if t.qBusy, err = sys.AllocWords("qBusy", 1); err != nil {
		return err
	}
	if t.qSlots, err = allocRegion(sys, "qSlots", t.maxQ*(1+t.cfg.PrefixLen)); err != nil {
		return err
	}
	return nil
}

func (t *TSP) distAt(p *dsm.Proc, i, j int) int64 {
	return p.ReadI64(t.dist + mem.Addr((i*t.cfg.Cities+j)*mem.WordSize))
}

func (t *TSP) slot(k int) mem.Addr {
	return t.qSlots + mem.Addr(k*(1+t.cfg.PrefixLen)*mem.WordSize)
}

// Worker implements apps.App: a branch-and-bound worker over the shared
// prefix queue. Short prefixes are expanded one level and the children
// pushed back (under QLock); prefixes of PrefixLen cities are solved with a
// private depth-first search. All pruning reads the global bound without
// synchronization — the deliberate races — and the distance matrix is read
// through shared memory throughout, as in the original.
func (t *TSP) Worker(p *dsm.Proc) {
	n := t.cfg.Cities
	if p.ID() == 0 {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				p.WriteI64(t.dist+mem.Addr((i*n+j)*mem.WordSize), Dist(i, j))
			}
		}
		p.WriteI64(t.minTour, Infinity)
		// Seed: the single-city prefix [0].
		s0 := t.slot(0)
		p.WriteI64(s0, 1)
		p.WriteI64(s0+mem.WordSize, 0)
		p.WriteI64(t.qCount, 1)
		p.WriteI64(t.qNext, 0)
		p.WriteI64(t.qBusy, 0)
	}
	p.Barrier()

	path := make([]int, 0, n)
	needDec := false // we owe a qBusy decrement from the previous prefix
	for {
		// Pop a prefix, or decide the search is over: the queue is empty
		// and no prefix is still being expanded anywhere. The decrement for
		// the previous prefix rides in the same critical section.
		p.Lock(QLock)
		if needDec {
			p.WriteI64(t.qBusy, p.ReadI64(t.qBusy)-1)
			needDec = false
		}
		next := p.ReadI64(t.qNext)
		count := p.ReadI64(t.qCount)
		if next >= count {
			busy := p.ReadI64(t.qBusy)
			p.Unlock(QLock)
			if busy == 0 {
				break
			}
			p.Compute(200) // brief backoff, then poll again
			continue
		}
		p.WriteI64(t.qNext, next+1)
		p.WriteI64(t.qBusy, p.ReadI64(t.qBusy)+1)
		p.Unlock(QLock)

		// Read the prefix outside the lock (slot contents are stable once
		// published; the publish is ordered by the QLock chain).
		s := t.slot(int(next))
		plen := int(p.ReadI64(s))
		path = path[:0]
		length := int64(0)
		for i := 0; i < plen; i++ {
			c := int(p.ReadI64(s + mem.Addr((1+i)*mem.WordSize)))
			if i > 0 {
				length += t.distAt(p, path[i-1], c)
			}
			path = append(path, c)
		}

		if plen < t.cfg.PrefixLen {
			t.expand(p, path, length)
		} else {
			t.solve(p, path, length)
		}
		needDec = true
	}
}

// expand pushes every one-city extension of path that survives the bound.
func (t *TSP) expand(p *dsm.Proc, path []int, length int64) {
	n := t.cfg.Cities
	visited := make([]bool, n)
	for _, c := range path {
		visited[c] = true
	}
	last := path[len(path)-1]
	type child struct {
		city int
		len  int64
	}
	var children []child
	for c := 1; c < n; c++ {
		if visited[c] {
			continue
		}
		nl := length + t.distAt(p, last, c)
		// The deliberate data race: prune against the unlocked bound.
		if nl < p.ReadI64(t.minTour) {
			children = append(children, child{c, nl})
		}
		p.PrivateAccess(4)
		p.Compute(6)
	}
	if len(children) == 0 {
		return
	}
	p.Lock(QLock)
	base := p.ReadI64(t.qCount)
	for k, ch := range children {
		s := t.slot(int(base) + k)
		p.WriteI64(s, int64(len(path)+1))
		for i, c := range path {
			p.WriteI64(s+mem.Addr((1+i)*mem.WordSize), int64(c))
		}
		p.WriteI64(s+mem.Addr((1+len(path))*mem.WordSize), int64(ch.city))
	}
	p.WriteI64(t.qCount, base+int64(len(children)))
	p.Unlock(QLock)
}

// solve runs the private depth-first search under the prefix, pruning with
// unsynchronized reads of the global bound and updating it under MinLock.
func (t *TSP) solve(p *dsm.Proc, path []int, length int64) {
	n := t.cfg.Cities
	visited := make([]bool, n)
	for _, c := range path {
		visited[c] = true
	}
	cur := make([]int, len(path), n)
	copy(cur, path)

	var dfs func(length int64)
	dfs = func(length int64) {
		// The deliberate data race: read the global bound with no lock.
		bound := p.ReadI64(t.minTour)
		p.PrivateAccess(10)
		p.Compute(16)
		if length >= bound {
			return
		}
		if len(cur) == n {
			total := length + t.distAt(p, cur[n-1], cur[0])
			if total < bound {
				// Candidate improvement: re-check under the lock.
				p.Lock(MinLock)
				if total < p.ReadI64(t.minTour) {
					p.WriteI64(t.minTour, total)
					for i, c := range cur {
						p.WriteI64(t.bestPath+mem.Addr(i*mem.WordSize), int64(c))
					}
				}
				p.Unlock(MinLock)
			}
			return
		}
		last := cur[len(cur)-1]
		for c := 1; c < n; c++ {
			if !visited[c] {
				visited[c] = true
				cur = append(cur, c)
				dfs(length + t.distAt(p, last, c))
				cur = cur[:len(cur)-1]
				visited[c] = false
			}
		}
	}
	dfs(length)
}

// Optimal computes the exact optimum sequentially (plain Go) for Verify.
func (t *TSP) Optimal() int64 {
	n := t.cfg.Cities
	d := make([][]int64, n)
	for i := range d {
		d[i] = make([]int64, n)
		for j := range d[i] {
			d[i][j] = Dist(i, j)
		}
	}
	best := Infinity
	visited := make([]bool, n)
	visited[0] = true
	var dfs func(last int, depth int, length int64)
	dfs = func(last, depth int, length int64) {
		if length >= best {
			return
		}
		if depth == n {
			if total := length + d[last][0]; total < best {
				best = total
			}
			return
		}
		for c := 1; c < n; c++ {
			if !visited[c] {
				visited[c] = true
				dfs(c, depth+1, length+d[last][c])
				visited[c] = false
			}
		}
	}
	dfs(0, 1, 0)
	return best
}

// Verify implements apps.App: despite the racy bound reads, the final bound
// must equal the true optimum (stale bounds cause redundant work, not wrong
// answers), and the recorded best path must have that length.
func (t *TSP) Verify(sys *dsm.System) error {
	want := t.Optimal()
	got := int64(sys.SnapshotWord(t.minTour))
	if got != want {
		return fmt.Errorf("tsp: minTour = %d, want %d", got, want)
	}
	n := t.cfg.Cities
	seen := make([]bool, n)
	length := int64(0)
	prev := -1
	for i := 0; i < n; i++ {
		c := int(int64(sys.SnapshotWord(t.bestPath + mem.Addr(i*mem.WordSize))))
		if c < 0 || c >= n || seen[c] {
			return fmt.Errorf("tsp: best path invalid at %d (city %d)", i, c)
		}
		seen[c] = true
		if prev >= 0 {
			length += Dist(prev, c)
		}
		prev = c
	}
	length += Dist(prev, int(int64(sys.SnapshotWord(t.bestPath))))
	if length != want {
		return fmt.Errorf("tsp: best path length %d, want %d", length, want)
	}
	return nil
}

// RacyBoundAddr exposes the address of the deliberately racy global bound,
// so the harness can check that detected races point at it.
func (t *TSP) RacyBoundAddr() mem.Addr { return t.minTour }
