// Package micro is a corpus of small synchronization patterns with known
// race-detection outcomes — the regression suite for the detector. Each
// pattern declares exactly which shared variables must be flagged racy and
// which must stay clean; the tests run every pattern under both LRC
// protocols and cross-check against the happens-before reference detector.
//
// Patterns use Go channels (invisible to the DSM) to pin real-time phase
// orderings where a pattern's outcome depends on them. Note that metadata
// concurrency is what the detector judges: two accesses with no DSM
// synchronization chain between them are concurrent — and must be flagged —
// even if real time happened to serialize them. The gating only removes
// scheduling nondeterminism; it never creates or hides races.
package micro

import (
	"fmt"

	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
)

// Pattern is one corpus entry.
type Pattern struct {
	Name  string
	Procs int
	// Vars lists the shared variables to allocate, one word each, in
	// order. Patterns address them by name.
	Vars []string
	// Worker is the per-process body; gates is a per-pattern set of Go
	// channels the pattern may use for real-time staging.
	Worker func(p *dsm.Proc, v map[string]mem.Addr, gates map[string]chan struct{})
	// Gates names the staging channels to create for each run.
	Gates []string
	// WantRacy and WantClean partition Vars by expected detector outcome.
	WantRacy  []string
	WantClean []string
}

// Alloc lays out the pattern's variables, each on its own word (same page
// is fine: word-granularity bitmaps separate them).
func (pt Pattern) Alloc(sys *dsm.System) (map[string]mem.Addr, error) {
	v := make(map[string]mem.Addr, len(pt.Vars))
	for _, name := range pt.Vars {
		a, err := sys.AllocWords(name, 1)
		if err != nil {
			return nil, fmt.Errorf("micro %s: %w", pt.Name, err)
		}
		v[name] = a
	}
	return v, nil
}

// All returns the corpus.
func All() []Pattern {
	return []Pattern{
		{
			Name:  "unsync-counter",
			Procs: 3,
			Vars:  []string{"x"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, _ map[string]chan struct{}) {
				for i := 0; i < 3; i++ {
					p.Write(v["x"], p.Read(v["x"])+1)
				}
			},
			WantRacy: []string{"x"},
		},
		{
			Name:  "locked-counter",
			Procs: 3,
			Vars:  []string{"x"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, _ map[string]chan struct{}) {
				for i := 0; i < 3; i++ {
					p.Lock(0)
					p.Write(v["x"], p.Read(v["x"])+1)
					p.Unlock(0)
				}
			},
			WantClean: []string{"x"},
		},
		{
			Name:  "missing-pair-publish",
			Procs: 2,
			Vars:  []string{"data", "flag"},
			Gates: []string{"published"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, g map[string]chan struct{}) {
				if p.ID() == 0 {
					p.Write(v["data"], 42)
					p.Write(v["flag"], 1) // publish without a release
					close(g["published"])
				} else {
					<-g["published"] // real time only; no DSM acquire
					if p.Read(v["flag"]) != 0 {
						_ = p.Read(v["data"])
					}
				}
			},
			WantRacy: []string{"data", "flag"},
		},
		{
			Name:  "locked-publish",
			Procs: 2,
			Vars:  []string{"data", "flag"},
			Gates: []string{"published"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, g map[string]chan struct{}) {
				if p.ID() == 0 {
					p.Lock(0)
					p.Write(v["data"], 42)
					p.Write(v["flag"], 1)
					p.Unlock(0)
					close(g["published"])
				} else {
					<-g["published"]
					p.Lock(0) // proper acquire pairing
					if p.Read(v["flag"]) != 0 {
						_ = p.Read(v["data"])
					}
					p.Unlock(0)
				}
			},
			WantClean: []string{"data", "flag"},
		},
		{
			Name:  "barrier-phased",
			Procs: 4,
			Vars:  []string{"a", "b", "c", "d"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, _ map[string]chan struct{}) {
				mine := []string{"a", "b", "c", "d"}[p.ID()]
				p.Write(v[mine], uint64(p.ID()))
				p.Barrier()
				for _, name := range []string{"a", "b", "c", "d"} {
					_ = p.Read(v[name])
				}
			},
			WantClean: []string{"a", "b", "c", "d"},
		},
		{
			Name:  "one-forgot-the-lock",
			Procs: 3,
			Vars:  []string{"x"},
			Gates: []string{"lockersDone"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, g map[string]chan struct{}) {
				if p.ID() < 2 {
					p.Lock(0)
					p.Write(v["x"], p.Read(v["x"])+1)
					p.Unlock(0)
					if p.ID() == 0 {
						close(g["lockersDone"])
					}
				} else {
					<-g["lockersDone"]
					p.Write(v["x"], 99) // no lock: races with both lockers
				}
			},
			WantRacy: []string{"x"},
		},
		{
			Name:  "false-sharing-only",
			Procs: 4,
			Vars:  []string{"w0", "w1", "w2", "w3"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, _ map[string]chan struct{}) {
				mine := []string{"w0", "w1", "w2", "w3"}[p.ID()]
				for i := 0; i < 4; i++ {
					p.Write(v[mine], uint64(i)) // same page, disjoint words
				}
			},
			WantClean: []string{"w0", "w1", "w2", "w3"},
		},
		{
			Name:  "read-only-sharing",
			Procs: 4,
			Vars:  []string{"table"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, _ map[string]chan struct{}) {
				if p.ID() == 0 {
					p.Write(v["table"], 7)
				}
				p.Barrier()
				for i := 0; i < 5; i++ {
					_ = p.Read(v["table"])
				}
			},
			WantClean: []string{"table"},
		},
		{
			Name:  "transitive-chain",
			Procs: 3,
			Vars:  []string{"x"},
			Gates: []string{"h0", "h1"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, g map[string]chan struct{}) {
				// P0 writes x under lock 0; P1 bridges lock 0 → lock 1;
				// P2 reads x under lock 1 only. Ordering is transitive
				// through P1, so no race.
				switch p.ID() {
				case 0:
					p.Lock(0)
					p.Write(v["x"], 1)
					p.Unlock(0)
					close(g["h0"])
				case 1:
					<-g["h0"]
					p.Lock(0)
					p.Unlock(0)
					p.Lock(1)
					p.Unlock(1)
					close(g["h1"])
				case 2:
					<-g["h1"]
					p.Lock(1)
					_ = p.Read(v["x"])
					p.Unlock(1)
				}
			},
			WantClean: []string{"x"},
		},
		{
			Name:  "wrong-lock",
			Procs: 2,
			Vars:  []string{"x"},
			Gates: []string{"first"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, g map[string]chan struct{}) {
				// Both sides lock — but different locks, so no ordering.
				if p.ID() == 0 {
					p.Lock(0)
					p.Write(v["x"], 1)
					p.Unlock(0)
					close(g["first"])
				} else {
					<-g["first"]
					p.Lock(1)
					p.Write(v["x"], 2)
					p.Unlock(1)
				}
			},
			WantRacy: []string{"x"},
		},
		{
			Name:  "bounded-spin-flag",
			Procs: 2,
			Vars:  []string{"flag", "payload"},
			Gates: []string{"written"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, g map[string]chan struct{}) {
				if p.ID() == 0 {
					p.Write(v["payload"], 11)
					p.Write(v["flag"], 1)
					close(g["written"])
				} else {
					<-g["written"]
					for i := 0; i < 4; i++ { // home-made spin "synchronization"
						if p.Read(v["flag"]) != 0 {
							break
						}
					}
					_ = p.Read(v["payload"])
				}
			},
			// Home-made synchronization is invisible to the system — the
			// paper's §2 point: such programs draw spurious (here: real,
			// system-level) race warnings.
			WantRacy: []string{"flag", "payload"},
		},
		{
			Name:  "later-epoch-race",
			Procs: 2,
			Vars:  []string{"quiet", "noisy"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, _ map[string]chan struct{}) {
				if p.ID() == 0 {
					p.Write(v["quiet"], 1)
				}
				p.Barrier()
				p.Write(v["noisy"], uint64(p.ID())) // races in epoch 1
				p.Barrier()
			},
			WantRacy:  []string{"noisy"},
			WantClean: []string{"quiet"},
		},
		{
			Name:  "disjoint-locks-disjoint-data",
			Procs: 4,
			Vars:  []string{"evenCtr", "oddCtr"},
			Worker: func(p *dsm.Proc, v map[string]mem.Addr, _ map[string]chan struct{}) {
				name := "evenCtr"
				lock := 0
				if p.ID()%2 == 1 {
					name, lock = "oddCtr", 1
				}
				for i := 0; i < 3; i++ {
					p.Lock(lock)
					p.Write(v[name], p.Read(v[name])+1)
					p.Unlock(lock)
				}
			},
			WantClean: []string{"evenCtr", "oddCtr"},
		},
	}
}
