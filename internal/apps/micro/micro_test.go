package micro

import (
	"sort"
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/hbdet"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/tcpnet"
)

// runPattern executes one pattern under the given protocol, returning the
// set of racy variable names from the LRC detector and from the attached
// happens-before reference.
func runPattern(t *testing.T, pt Pattern, proto dsm.ProtocolKind) (lrcRacy, hbRacy map[string]bool) {
	t.Helper()
	hb := hbdet.New(pt.Procs)
	sys, err := dsm.New(dsm.Config{
		NumProcs:   pt.Procs,
		SharedSize: 4096,
		PageSize:   1024,
		Protocol:   proto,
		Detect:     true,
		Tracer:     hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	vars, err := pt.Alloc(sys)
	if err != nil {
		t.Fatal(err)
	}
	gates := make(map[string]chan struct{}, len(pt.Gates))
	for _, g := range pt.Gates {
		gates[g] = make(chan struct{})
	}
	if err := sys.Run(func(p *dsm.Proc) { pt.Worker(p, vars, gates) }); err != nil {
		t.Fatal(err)
	}

	nameOf := func(a mem.Addr) string {
		sym, ok := sys.SymbolAt(a)
		if !ok {
			t.Fatalf("%s: race at unmapped address %#x", pt.Name, a)
		}
		return sym.Name
	}
	lrcRacy = map[string]bool{}
	for _, r := range race.DedupByAddr(sys.Races()) {
		lrcRacy[nameOf(r.Addr)] = true
	}
	hbRacy = map[string]bool{}
	for _, a := range hb.RacyAddrs() {
		hbRacy[nameOf(a)] = true
	}
	return lrcRacy, hbRacy
}

func sortedKeys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// TestCorpus runs every pattern under both LRC protocols and checks the
// expected racy/clean partition, plus agreement with the happens-before
// reference detector.
func TestCorpus(t *testing.T) {
	for _, proto := range []dsm.ProtocolKind{dsm.SingleWriter, dsm.MultiWriter} {
		for _, pt := range All() {
			pt := pt
			t.Run(proto.String()+"/"+pt.Name, func(t *testing.T) {
				lrcRacy, hbRacy := runPattern(t, pt, proto)
				for _, want := range pt.WantRacy {
					if !lrcRacy[want] {
						t.Errorf("expected race on %q not reported (got %v)", want, sortedKeys(lrcRacy))
					}
				}
				for _, want := range pt.WantClean {
					if lrcRacy[want] {
						t.Errorf("false positive on %q", want)
					}
				}
				// Nothing outside the declared variables may be flagged.
				declared := map[string]bool{}
				for _, v := range pt.Vars {
					declared[v] = true
				}
				for name := range lrcRacy {
					if !declared[name] {
						t.Errorf("race on undeclared variable %q", name)
					}
				}
				// Cross-check with the happens-before reference.
				if len(lrcRacy) != len(hbRacy) {
					t.Errorf("detectors disagree: lrc=%v hb=%v", sortedKeys(lrcRacy), sortedKeys(hbRacy))
				}
				for name := range lrcRacy {
					if !hbRacy[name] {
						t.Errorf("lrc-only race on %q (hb=%v)", name, sortedKeys(hbRacy))
					}
				}
			})
		}
	}
}

// TestCorpusShape sanity-checks the corpus itself.
func TestCorpusShape(t *testing.T) {
	seen := map[string]bool{}
	for _, pt := range All() {
		if seen[pt.Name] {
			t.Errorf("duplicate pattern name %q", pt.Name)
		}
		seen[pt.Name] = true
		if pt.Procs < 2 {
			t.Errorf("%s: needs at least 2 procs", pt.Name)
		}
		if len(pt.WantRacy)+len(pt.WantClean) == 0 {
			t.Errorf("%s: no expectations", pt.Name)
		}
		declared := map[string]bool{}
		for _, v := range pt.Vars {
			declared[v] = true
		}
		for _, v := range append(append([]string{}, pt.WantRacy...), pt.WantClean...) {
			if !declared[v] {
				t.Errorf("%s: expectation on undeclared variable %q", pt.Name, v)
			}
		}
	}
	if len(seen) < 10 {
		t.Errorf("corpus has only %d patterns", len(seen))
	}
}

// TestCorpusOverTCP runs two representative patterns over the real-sockets
// transport: detection outcomes must be transport-independent.
func TestCorpusOverTCP(t *testing.T) {
	for _, name := range []string{"unsync-counter", "locked-counter"} {
		var pt Pattern
		for _, cand := range All() {
			if cand.Name == name {
				pt = cand
			}
		}
		t.Run(name, func(t *testing.T) {
			tr, err := tcpnet.New(pt.Procs)
			if err != nil {
				t.Fatal(err)
			}
			sys, err := dsm.New(dsm.Config{
				NumProcs:   pt.Procs,
				SharedSize: 4096,
				PageSize:   1024,
				Detect:     true,
				Transport:  tr,
			})
			if err != nil {
				t.Fatal(err)
			}
			vars, err := pt.Alloc(sys)
			if err != nil {
				t.Fatal(err)
			}
			gates := map[string]chan struct{}{}
			for _, g := range pt.Gates {
				gates[g] = make(chan struct{})
			}
			if err := sys.Run(func(p *dsm.Proc) { pt.Worker(p, vars, gates) }); err != nil {
				t.Fatal(err)
			}
			racy := map[string]bool{}
			for _, r := range race.DedupByAddr(sys.Races()) {
				sym, _ := sys.SymbolAt(r.Addr)
				racy[sym.Name] = true
			}
			for _, want := range pt.WantRacy {
				if !racy[want] {
					t.Errorf("expected race on %q over TCP", want)
				}
			}
			for _, want := range pt.WantClean {
				if racy[want] {
					t.Errorf("false positive on %q over TCP", want)
				}
			}
		})
	}
}
