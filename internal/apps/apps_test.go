package apps_test

import (
	"testing"

	"lrcrace/internal/apps"
	"lrcrace/internal/apps/fft"
	"lrcrace/internal/apps/sor"
	"lrcrace/internal/apps/tsp"
	"lrcrace/internal/apps/water"
)

func TestRegistryNames(t *testing.T) {
	names := apps.Names()
	want := []string{"FFT", "SOR", "TSP", "Water"}
	if len(names) != len(want) {
		t.Fatalf("Names = %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Errorf("Names[%d] = %q, want %q", i, names[i], want[i])
		}
	}
}

func TestNewByName(t *testing.T) {
	for _, name := range apps.Names() {
		app, err := apps.New(name, 1)
		if err != nil {
			t.Errorf("New(%q): %v", name, err)
			continue
		}
		if app.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, app.Name())
		}
		if app.SharedBytes() <= 0 {
			t.Errorf("%s: SharedBytes = %d", name, app.SharedBytes())
		}
		if app.InputDesc() == "" || app.SyncKinds() == "" {
			t.Errorf("%s: empty descriptors", name)
		}
	}
}

func TestNewUnknown(t *testing.T) {
	if _, err := apps.New("nosuch", 1); err == nil {
		t.Error("unknown app accepted")
	}
}

// TestPaperPresets: each app exposes the paper's Table 1 input set.
func TestPaperPresets(t *testing.T) {
	if c := fft.PaperConfig(); c.N1 != 64 || c.N2 != 64 || c.N3 != 16 {
		t.Errorf("fft paper dims = %+v", c)
	}
	if c := sor.PaperConfig(); c.Rows != 512 || c.Cols != 512 {
		t.Errorf("sor paper grid = %dx%d", c.Rows, c.Cols)
	}
	if c := tsp.PaperConfig(); c.Cities != 19 {
		t.Errorf("tsp paper cities = %d", c.Cities)
	}
	if c := water.PaperConfig(); c.Molecules != 216 || c.Steps != 5 {
		t.Errorf("water paper = %+v", c)
	}
	// The paper descriptions line up with Table 1's input column.
	w := water.New(water.PaperConfig())
	if w.InputDesc() != "216 mols, 5 steps" {
		t.Errorf("water desc = %q", w.InputDesc())
	}
}
