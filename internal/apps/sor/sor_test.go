package sor

import (
	"testing"

	"lrcrace/internal/dsm"
)

func runSOR(t *testing.T, cfg Config, procs int, proto dsm.ProtocolKind, detect bool) (*SOR, *dsm.System) {
	t.Helper()
	app := New(cfg)
	sys, err := dsm.New(dsm.Config{
		NumProcs:   procs,
		SharedSize: app.SharedBytes(),
		Protocol:   proto,
		Detect:     detect,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(app.Worker); err != nil {
		t.Fatal(err)
	}
	return app, sys
}

func TestSORMatchesReference(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		app, sys := runSOR(t, Config{Rows: 24, Cols: 24, Iters: 5}, procs, dsm.SingleWriter, true)
		if err := app.Verify(sys); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
		if races := sys.Races(); len(races) != 0 {
			t.Errorf("procs=%d: SOR reported races: %v", procs, races[0])
		}
	}
}

func TestSORMultiWriter(t *testing.T) {
	app, sys := runSOR(t, Config{Rows: 24, Cols: 24, Iters: 4}, 3, dsm.MultiWriter, true)
	if err := app.Verify(sys); err != nil {
		t.Error(err)
	}
	if len(sys.Races()) != 0 {
		t.Errorf("races: %v", sys.Races())
	}
}

// TestSORNoUnsynchronizedSharing reproduces the paper's Table 3 row: zero
// intervals involved in concurrent overlapping pairs, zero bitmaps fetched.
func TestSORNoUnsynchronizedSharing(t *testing.T) {
	_, sys := runSOR(t, Config{Rows: 32, Cols: 32, Iters: 4}, 4, dsm.SingleWriter, true)
	ds := sys.DetectorStats()
	if ds.IntervalsInvolved != 0 {
		t.Errorf("IntervalsInvolved = %d, want 0 (paper: SOR has no unsynchronized sharing)", ds.IntervalsInvolved)
	}
	if ds.BitmapsCompared != 0 {
		t.Errorf("BitmapsCompared = %d, want 0", ds.BitmapsCompared)
	}
	if ds.IntervalsTotal == 0 || ds.Epochs == 0 {
		t.Errorf("detector saw no work: %+v", ds)
	}
}

func TestSORConfigDefaults(t *testing.T) {
	app := New(Config{})
	if app.cfg.Rows != 96 || app.cfg.Iters != 8 {
		t.Errorf("defaults: %+v", app.cfg)
	}
	if app.InputDesc() != "96x96" || app.SyncKinds() != "barrier" || app.Name() != "SOR" {
		t.Errorf("descriptors wrong: %q %q", app.InputDesc(), app.SyncKinds())
	}
	scaled := New(Config{Scale: 28.4})
	if scaled.cfg.Rows < 500 || scaled.cfg.Rows > 520 {
		t.Errorf("paper scale gives %d rows, want ≈512", scaled.cfg.Rows)
	}
}
