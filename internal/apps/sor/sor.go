// Package sor implements the paper's SOR benchmark: Jacobi relaxation over
// a 2-D grid, row-partitioned across processes, with a barrier after every
// sweep. It is the paper's no-unsynchronized-sharing application: true and
// false sharing occur only at partition boundaries and are fully ordered by
// the barriers, so race detection finds nothing (Table 3 reports 0%
// intervals in concurrent overlapping pairs).
package sor

import (
	"fmt"
	"math"

	"lrcrace/internal/apps"
	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
)

func init() {
	apps.Register("SOR", func(scale float64) apps.App { return New(Config{Scale: scale}) })
}

// Config sets the problem size.
type Config struct {
	// Rows/Cols of the grid including fixed boundary. Zero → 96·√Scale.
	Rows, Cols int
	// Iters is the number of Jacobi sweeps. Zero → 8.
	Iters int
	// Scale scales the default grid linearly. The paper's input is
	// 512×512, i.e. Scale ≈ 28 relative to the default 96×96.
	Scale float64
}

func (c *Config) fill() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Rows == 0 {
		n := int(96 * math.Sqrt(c.Scale))
		if n < 16 {
			n = 16
		}
		c.Rows, c.Cols = n, n
	}
	if c.Iters == 0 {
		c.Iters = 8
	}
}

// SOR is the benchmark instance.
type SOR struct {
	cfg     Config
	grid    [2]mem.Addr
	rowBase [2][]mem.Addr // per-row base address (partitions page-aligned)
	nprocs  int
}

// PaperConfig is the paper's input set: a 512×512 grid. (The paper does
// not state the sweep count; 8 preserves the per-sweep behaviour.)
func PaperConfig() Config { return Config{Rows: 512, Cols: 512, Iters: 8} }

// New builds a SOR instance.
func New(cfg Config) *SOR {
	cfg.fill()
	return &SOR{cfg: cfg}
}

// Name implements apps.App.
func (s *SOR) Name() string { return "SOR" }

// InputDesc implements apps.App.
func (s *SOR) InputDesc() string { return fmt.Sprintf("%dx%d", s.cfg.Rows, s.cfg.Cols) }

// SyncKinds implements apps.App.
func (s *SOR) SyncKinds() string { return "barrier" }

// SharedBytes implements apps.App: grid plus page-alignment padding for up
// to 32 process partitions per grid copy.
func (s *SOR) SharedBytes() int {
	return 2*s.cfg.Rows*s.cfg.Cols*mem.WordSize + 70*mem.DefaultPageSize
}

func (s *SOR) addr(g, i, j int) mem.Addr {
	return s.rowBase[g][i] + mem.Addr(j*mem.WordSize)
}

// boundary is the fixed Dirichlet boundary condition.
func boundary(i, j int) float64 {
	return float64((i*31+j*17)%100) / 25.0
}

// Setup implements apps.App: allocate both grids with every process
// partition starting on a page boundary. The paper's 512×512 input on 8 KB
// pages is naturally partition-aligned (64 rows of 4 KB per process), which
// is why SOR shows zero unsynchronized sharing in Table 3; explicit padding
// reproduces that property at any scale. Data is initialized by process 0
// inside Worker (before the first barrier), as the original does.
func (s *SOR) Setup(sys *dsm.System) error {
	s.nprocs = sys.Config().NumProcs
	pageSize := sys.Layout().PageSize
	rowBytes := s.cfg.Cols * mem.WordSize

	// Partition starts: row 1 + k·interior/n for each process k.
	starts := make(map[int]bool)
	for k := 0; k < s.nprocs; k++ {
		lo, _ := s.rowsFor(k, s.nprocs)
		starts[lo] = true
	}
	for g := 0; g < 2; g++ {
		base, err := sys.Alloc(fmt.Sprintf("grid%d", g), s.cfg.Rows*s.cfg.Cols*mem.WordSize+34*pageSize)
		if err != nil {
			return err
		}
		s.rowBase[g] = make([]mem.Addr, s.cfg.Rows)
		off := int(base)
		for i := 0; i < s.cfg.Rows; i++ {
			if starts[i] {
				off = (off + pageSize - 1) &^ (pageSize - 1)
			}
			s.rowBase[g][i] = mem.Addr(off)
			off += rowBytes
		}
	}
	return nil
}

// rowsFor returns the half-open interior row range of proc id.
func (s *SOR) rowsFor(id, n int) (lo, hi int) {
	interior := s.cfg.Rows - 2
	lo = 1 + id*interior/n
	hi = 1 + (id+1)*interior/n
	return lo, hi
}

// Worker implements apps.App.
func (s *SOR) Worker(p *dsm.Proc) {
	c := s.cfg
	if p.ID() == 0 {
		// Fixed boundary on grid copies; interior starts at zero.
		for i := 0; i < c.Rows; i++ {
			for j := 0; j < c.Cols; j++ {
				if i == 0 || j == 0 || i == c.Rows-1 || j == c.Cols-1 {
					v := boundary(i, j)
					p.WriteF64(s.addr(0, i, j), v)
					p.WriteF64(s.addr(1, i, j), v)
				}
			}
		}
	}
	p.Barrier()

	lo, hi := s.rowsFor(p.ID(), p.N())
	src, dst := 0, 1
	for it := 0; it < c.Iters; it++ {
		for i := lo; i < hi; i++ {
			for j := 1; j < c.Cols-1; j++ {
				v := 0.25 * (p.ReadF64(s.addr(src, i-1, j)) +
					p.ReadF64(s.addr(src, i+1, j)) +
					p.ReadF64(s.addr(src, i, j-1)) +
					p.ReadF64(s.addr(src, i, j+1)))
				p.WriteF64(s.addr(dst, i, j), v)
			}
			// Loop bookkeeping and FP temporaries: instrumented accesses
			// that turn out private, roughly one for every two shared
			// accesses (Table 3's SOR private/shared ratio), plus the
			// arithmetic itself.
			p.PrivateAccess(int64(c.Cols) * 5 / 2)
			p.Compute(int64(c.Cols) * 60)
		}
		src, dst = dst, src
		p.Barrier()
	}
}

// Reference computes the same relaxation sequentially in plain Go.
func (s *SOR) Reference() [][]float64 {
	c := s.cfg
	g := make([][][]float64, 2)
	for k := 0; k < 2; k++ {
		g[k] = make([][]float64, c.Rows)
		for i := range g[k] {
			g[k][i] = make([]float64, c.Cols)
		}
	}
	for i := 0; i < c.Rows; i++ {
		for j := 0; j < c.Cols; j++ {
			if i == 0 || j == 0 || i == c.Rows-1 || j == c.Cols-1 {
				g[0][i][j] = boundary(i, j)
				g[1][i][j] = boundary(i, j)
			}
		}
	}
	src, dst := 0, 1
	for it := 0; it < c.Iters; it++ {
		for i := 1; i < c.Rows-1; i++ {
			for j := 1; j < c.Cols-1; j++ {
				g[dst][i][j] = 0.25 * (g[src][i-1][j] + g[src][i+1][j] + g[src][i][j-1] + g[src][i][j+1])
			}
		}
		src, dst = dst, src
	}
	return g[src]
}

// Verify implements apps.App: the parallel result must equal the sequential
// reference exactly (identical per-cell arithmetic, no reduction ordering).
func (s *SOR) Verify(sys *dsm.System) error {
	want := s.Reference()
	c := s.cfg
	final := 0
	if c.Iters%2 == 1 {
		final = 1
	}
	// After the implicit final barrier every process was invalidated where
	// stale; the authoritative bytes live at owners/homes. Read through a
	// fresh sequential scan of owner copies via the master-side helper.
	read := sys.SnapshotWord
	for i := 1; i < c.Rows-1; i++ {
		for j := 1; j < c.Cols-1; j++ {
			got := math.Float64frombits(read(s.addr(final, i, j)))
			if got != want[i][j] {
				return fmt.Errorf("sor: cell (%d,%d) = %g, want %g", i, j, got, want[i][j])
			}
		}
	}
	return nil
}
