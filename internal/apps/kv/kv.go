// Package kv provides the Go-frontend workload family: a mutex-sharded
// key/value store with expiry ("KV") and a channel-actor session store
// ("Sessions"). Both register with the gofront workload registry the same
// way the DSM benchmarks register with the apps registry, and both can
// plant a realistic racy fast path — an unsynchronized hot-key read — that
// the interval detector must find and the fixed variant must not exhibit.
package kv

import (
	"fmt"
	"math/rand"

	"lrcrace/internal/gofront"
	"lrcrace/internal/mem"
)

func init() {
	gofront.RegisterWorkload("KV",
		"mutex-sharded key/value store with expiry janitor; racy = lock-free hot-key get",
		RunKV)
	gofront.RegisterWorkload("Sessions",
		"channel-actor session store; racy = client bypasses the owner actor",
		RunSessions)
}

const (
	kvKeys    = 64 // keyspace size (words)
	kvShards  = 4  // one mutex per shard; key k belongs to shard k%kvShards
	kvHotKeys = 4  // the skewed "hot" head of the keyspace
	kvDefOps  = 48 // default ops per client before Scale

	maxGs = 16 // gofront default goroutine budget
)

// hotOrUniform picks a key: with probability skew from the hot head of the
// keyspace, else uniform.
func hotOrUniform(rng *rand.Rand, skew float64) int {
	if rng.Float64() < skew {
		return rng.Intn(kvHotKeys)
	}
	return rng.Intn(kvKeys)
}

// RunKV drives the sharded KV store: cfg.Clients goroutines issue a seeded
// get/put/expire mix against kvShards mutex-protected shards while a
// janitor goroutine sweeps expired entries, paced by ticks on a buffered
// channel and stopped by closing it. With cfg.Racy, gets of hot keys skip
// the shard lock — the classic "read-mostly fast path" race.
func RunKV(cfg gofront.WorkloadConfig) (*gofront.Result, error) {
	if cfg.Clients+2 > maxGs {
		return nil, fmt.Errorf("kv: %d clients exceed the goroutine budget (max %d)", cfg.Clients, maxGs-2)
	}
	ops := cfg.OpsOrDefault(kvDefOps)

	p := gofront.New(gofront.Config{
		MaxGs:    cfg.Clients + 2, // clients + janitor + root
		Seed:     cfg.Seed,
		Detect:   cfg.Detect,
		Recorder: cfg.Recorder,
	})
	vals := p.Alloc("kv.val", kvKeys)
	meta := p.Alloc("kv.meta", kvKeys)
	word := func(base mem.Addr, k int) mem.Addr { return base + mem.Addr(k*mem.WordSize) }
	locks := make([]*gofront.Mutex, kvShards)
	for i := range locks {
		locks[i] = p.NewMutex()
	}
	ticks := p.NewChan(2)
	wg := p.NewWaitGroup()

	client := func(id int) func(*gofront.G) {
		return func(g *gofront.G) {
			rng := rand.New(rand.NewSource(cfg.Seed*1000003 + int64(id)))
			for i := 0; i < ops; i++ {
				k := hotOrUniform(rng, cfg.HotKeySkew)
				mu := locks[k%kvShards]
				switch op := rng.Intn(10); {
				case op < 6: // get
					if cfg.Racy && k < kvHotKeys {
						// Planted race: hot-key read outside the shard lock.
						g.Load(word(vals, k))
						break
					}
					mu.Lock(g)
					g.Load(word(vals, k))
					mu.Unlock(g)
				case op < 9: // put
					mu.Lock(g)
					g.Store(word(vals, k), uint64(id*1000+i))
					g.Store(word(meta, k), uint64(i+1))
					mu.Unlock(g)
				default: // expire now
					mu.Lock(g)
					g.Store(word(vals, k), 0)
					g.Store(word(meta, k), 0)
					mu.Unlock(g)
				}
			}
			wg.Done(g)
		}
	}

	janitor := func(g *gofront.G) {
		for {
			tick, ok := ticks.Recv(g)
			if !ok {
				return
			}
			for s := 0; s < kvShards; s++ {
				locks[s].Lock(g)
				for k := s; k < kvKeys; k += kvShards {
					if g.Load(word(meta, k)) != 0 && g.Load(word(meta, k)) < tick {
						g.Store(word(vals, k), 0)
						g.Store(word(meta, k), 0)
					}
				}
				locks[s].Unlock(g)
			}
		}
	}

	res := p.Run(func(g *gofront.G) {
		j := g.Go(janitor)
		kids := make([]*gofront.G, cfg.Clients)
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(g, 1)
			kids[c] = g.Go(client(c))
		}
		// Pace the janitor concurrently with client traffic, then stop it.
		for t := 1; t <= 3; t++ {
			ticks.Send(g, uint64(t*ops/4))
		}
		ticks.Close(g)
		for _, k := range kids {
			g.Join(k)
		}
		wg.Wait(g)
		g.Join(j)
	})
	return res, nil
}

const (
	sesActors = 4
	sesPerOwn = kvKeys / sesActors // contiguous key range per owner actor
	sesDefOps = 32
)

// RunSessions drives the actor-owned session store: each of sesActors owner
// goroutines serializes all access to its contiguous key range, clients
// round-trip get/put requests over buffered channels and receive replies on
// a private rendezvous channel. With cfg.Racy, hot-key gets read the
// session word directly instead of asking the owner — racing the owner's
// writes.
func RunSessions(cfg gofront.WorkloadConfig) (*gofront.Result, error) {
	if cfg.Clients+sesActors+1 > maxGs {
		return nil, fmt.Errorf("kv: %d clients exceed the goroutine budget (max %d)", cfg.Clients, maxGs-sesActors-1)
	}
	ops := cfg.OpsOrDefault(sesDefOps)

	p := gofront.New(gofront.Config{
		MaxGs:    cfg.Clients + sesActors + 1,
		Seed:     cfg.Seed,
		Detect:   cfg.Detect,
		Recorder: cfg.Recorder,
	})
	sessions := p.Alloc("sessions", kvKeys)
	word := func(k int) mem.Addr { return sessions + mem.Addr(k*mem.WordSize) }

	reqs := make([]*gofront.Chan, sesActors)
	for i := range reqs {
		reqs[i] = p.NewChan(4)
	}
	replies := make([]*gofront.Chan, cfg.Clients)
	for i := range replies {
		replies[i] = p.NewChan(0)
	}
	wg := p.NewWaitGroup()

	// Request encoding: op<<32 | client<<16 | key.
	const opPut = 1
	pack := func(op, client, key int) uint64 {
		return uint64(op)<<32 | uint64(client)<<16 | uint64(key)
	}

	actor := func(id int) func(*gofront.G) {
		return func(g *gofront.G) {
			for {
				req, ok := reqs[id].Recv(g)
				if !ok {
					return
				}
				op, client, key := int(req>>32), int(req>>16&0xffff), int(req&0xffff)
				if op == opPut {
					g.Store(word(key), req)
				} else {
					replies[client].Send(g, g.Load(word(key)))
				}
			}
		}
	}

	client := func(id int) func(*gofront.G) {
		return func(g *gofront.G) {
			rng := rand.New(rand.NewSource(cfg.Seed*1000033 + int64(id)))
			for i := 0; i < ops; i++ {
				k := hotOrUniform(rng, cfg.HotKeySkew)
				owner := k / sesPerOwn
				if rng.Intn(10) < 7 { // get
					if cfg.Racy && k < kvHotKeys {
						// Planted race: bypass the owner actor.
						g.Load(word(k))
						continue
					}
					reqs[owner].Send(g, pack(0, id, k))
					replies[id].Recv(g)
				} else { // put
					reqs[owner].Send(g, pack(opPut, id, k))
				}
			}
			wg.Done(g)
		}
	}

	res := p.Run(func(g *gofront.G) {
		actors := make([]*gofront.G, sesActors)
		for a := range actors {
			actors[a] = g.Go(actor(a))
		}
		kids := make([]*gofront.G, cfg.Clients)
		for c := 0; c < cfg.Clients; c++ {
			wg.Add(g, 1)
			kids[c] = g.Go(client(c))
		}
		for _, k := range kids {
			g.Join(k)
		}
		wg.Wait(g)
		for _, ch := range reqs {
			ch.Close(g)
		}
		for _, a := range actors {
			g.Join(a)
		}
	})
	return res, nil
}
