package kv

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"lrcrace/internal/gofront"
)

func run(t testing.TB, name string, cfg gofront.WorkloadConfig) *gofront.Result {
	if cfg.Detect == false {
		cfg.Detect = true
	}
	res, err := gofront.RunWorkload(name, cfg)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if res.Deadlocked {
		t.Fatalf("%s: workload deadlocked", name)
	}
	return res
}

// render formats the deduplicated race set with symbolic names — the
// byte-identical artifact the determinism contract is stated over.
func render(res *gofront.Result) string {
	var b strings.Builder
	for _, a := range res.RacyAddrs {
		sym, _ := res.SymbolAt(a)
		fmt.Fprintf(&b, "%s@%#x\n", sym, a)
	}
	for _, r := range res.Races {
		fmt.Fprintf(&b, "%v\n", r)
	}
	return b.String()
}

func TestWorkloadsRegistered(t *testing.T) {
	for _, name := range []string{"KV", "Sessions"} {
		if !gofront.IsWorkload(name) {
			t.Fatalf("workload %q not registered (have %v)", name, gofront.Workloads())
		}
	}
}

// TestKVCleanHasNoRaces: the lock discipline of the non-racy variant is
// airtight across seeds, clients, and skew.
func TestKVCleanHasNoRaces(t *testing.T) {
	for _, name := range []string{"KV", "Sessions"} {
		for seed := int64(0); seed < 6; seed++ {
			res := run(t, name, gofront.WorkloadConfig{Seed: seed, Detect: true, HotKeySkew: 0.5})
			if len(res.RacyAddrs) != 0 {
				t.Fatalf("%s seed %d: clean variant raced: %s", name, seed, render(res))
			}
		}
	}
}

// TestKVRacyFindsHotKeyRace: the planted lock-free fast path is caught, and
// only on the hot keys it covers.
func TestKVRacyFindsHotKeyRace(t *testing.T) {
	for _, name := range []string{"KV", "Sessions"} {
		found := false
		for seed := int64(0); seed < 6; seed++ {
			res := run(t, name, gofront.WorkloadConfig{Seed: seed, Detect: true, Racy: true, HotKeySkew: 0.7})
			for _, a := range res.RacyAddrs {
				sym, ok := res.SymbolAt(a)
				if !ok {
					t.Fatalf("%s seed %d: race at unmapped addr %#x", name, seed, a)
				}
				found = true
				// Only the hot head of the keyspace has a lock-free path.
				var idx int
				if n, _ := fmt.Sscanf(sym, "kv.val[%d]", &idx); n != 1 {
					if n, _ := fmt.Sscanf(sym, "sessions[%d]", &idx); n != 1 {
						t.Fatalf("%s seed %d: race on unexpected symbol %s", name, seed, sym)
					}
				}
				if idx >= kvHotKeys {
					t.Fatalf("%s seed %d: race on non-hot key %s", name, seed, sym)
				}
			}
		}
		if !found {
			t.Fatalf("%s: racy variant never raced across seeds", name)
		}
	}
}

// TestKVCrossValidates: on both variants the interval detector agrees with
// the per-access happens-before replay of the identical trace.
func TestKVCrossValidates(t *testing.T) {
	for _, name := range []string{"KV", "Sessions"} {
		for _, racy := range []bool{false, true} {
			for seed := int64(0); seed < 4; seed++ {
				res := run(t, name, gofront.WorkloadConfig{
					Seed: seed, Detect: true, Racy: racy, HotKeySkew: 0.6,
				})
				want := gofront.RacyAddrsHB(res.Trace, res.NumGs)
				if !reflect.DeepEqual(res.RacyAddrs, want) {
					t.Fatalf("%s racy=%v seed %d: gofront %v != hbdet %v",
						name, racy, seed, res.RacyAddrs, want)
				}
			}
		}
	}
}

// TestKVDeterministic: same seed, byte-identical rendered race set and
// identical trace/stats — the contract sweep cells and the service rely on.
func TestKVDeterministic(t *testing.T) {
	for _, name := range []string{"KV", "Sessions"} {
		for _, racy := range []bool{false, true} {
			cfg := gofront.WorkloadConfig{Seed: 7, Detect: true, Racy: racy, HotKeySkew: 0.4}
			r1 := run(t, name, cfg)
			r2 := run(t, name, cfg)
			if s1, s2 := render(r1), render(r2); s1 != s2 {
				t.Fatalf("%s racy=%v: rendered race set not deterministic:\n%s\nvs\n%s", name, racy, s1, s2)
			}
			if !reflect.DeepEqual(r1.Trace, r2.Trace) {
				t.Fatalf("%s racy=%v: trace not deterministic", name, racy)
			}
			if r1.Stats != r2.Stats {
				t.Fatalf("%s racy=%v: stats not deterministic", name, racy)
			}
		}
	}
}

// TestKVScalesOps: the Ops/Scale knobs actually change the workload size.
func TestKVScalesOps(t *testing.T) {
	small := run(t, "KV", gofront.WorkloadConfig{Seed: 1, Detect: true, Ops: 8})
	big := run(t, "KV", gofront.WorkloadConfig{Seed: 1, Detect: true, Ops: 64})
	if small.Stats.Loads+small.Stats.Stores >= big.Stats.Loads+big.Stats.Stores {
		t.Fatalf("ops knob had no effect: small=%+v big=%+v", small.Stats, big.Stats)
	}
}

func TestKVClientBudget(t *testing.T) {
	if _, err := RunKV(gofront.WorkloadConfig{Clients: 40, Scale: 1}); err == nil {
		t.Fatal("expected error for client count beyond goroutine budget")
	}
	if _, err := RunSessions(gofront.WorkloadConfig{Clients: 40, Scale: 1}); err == nil {
		t.Fatal("expected error for client count beyond goroutine budget")
	}
}

func benchKV(b *testing.B, racy bool) {
	for i := 0; i < b.N; i++ {
		res, err := gofront.RunWorkload("KV", gofront.WorkloadConfig{
			Seed: int64(i), Detect: true, Racy: racy, HotKeySkew: 0.5, Ops: 64,
		})
		if err != nil {
			b.Fatal(err)
		}
		if racy == (len(res.RacyAddrs) == 0) && res.Stats.ConcurrentPairs > 0 {
			// Not an assertion-grade check (race manifestation is
			// seed-dependent), just keep the result live.
			_ = res
		}
	}
}

func BenchmarkKVClean(b *testing.B) { benchKV(b, false) }
func BenchmarkKVRacy(b *testing.B)  { benchKV(b, true) }
