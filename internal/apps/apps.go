// Package apps defines the common harness interface implemented by the four
// benchmark applications of the paper's evaluation — FFT, SOR, TSP and
// Water — and a registry to construct them by name.
//
// Each application is a full Go implementation against the DSM API,
// preserving the synchronization structure (barrier-only, lock-only, or
// mixed) and the sharing patterns of the originals, including TSP's
// intentional unsynchronized reads of the global tour bound and Water's
// seeded write-write race (the Splash2 bug the paper found). Input sizes
// are configurable; defaults are laptop-scale, with the paper's sizes
// available through each package's Paper... constructors.
package apps

import (
	"fmt"
	"sort"

	"lrcrace/internal/dsm"
)

// App is one benchmark application.
type App interface {
	// Name returns the application's name as used in the paper's tables.
	Name() string
	// InputDesc describes the input set (Table 1 column 1).
	InputDesc() string
	// SyncKinds names the synchronization used (Table 1 column 2).
	SyncKinds() string
	// SharedBytes returns the shared-segment size the app needs.
	SharedBytes() int
	// Setup allocates shared variables and initializes shared data. It is
	// called once, before Run, with Alloc available.
	Setup(sys *dsm.System) error
	// Worker is the per-process body.
	Worker(p *dsm.Proc)
	// Verify checks the computation's result after the run, reading final
	// state through the system (not the DSM API). It must not depend on
	// benign races' outcomes.
	Verify(sys *dsm.System) error
}

// Factory builds an App at the given problem scale. Scale 1.0 is the
// default laptop-scale input; each app documents what its paper-scale
// factor is.
type Factory func(scale float64) App

var registry = map[string]Factory{}

// Register adds a factory under name; called from app package init.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("apps: duplicate registration of %q", name))
	}
	registry[name] = f
}

// New builds the named app (case-sensitive: "FFT", "SOR", "TSP", "Water").
func New(name string, scale float64) (App, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (have %v)", name, Names())
	}
	return f(scale), nil
}

// Names lists registered applications in stable order.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
