package water

import (
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/race"
)

func runWater(t *testing.T, cfg Config, procs int, detect bool) (*Water, *dsm.System) {
	t.Helper()
	app := New(cfg)
	sys, err := dsm.New(dsm.Config{
		NumProcs:   procs,
		SharedSize: app.SharedBytes(),
		Detect:     detect,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := app.Setup(sys); err != nil {
		t.Fatal(err)
	}
	if err := sys.Run(app.Worker); err != nil {
		t.Fatal(err)
	}
	return app, sys
}

func TestWaterMatchesReference(t *testing.T) {
	for _, procs := range []int{1, 2, 4} {
		app, sys := runWater(t, Config{Molecules: 16, Steps: 2}, procs, false)
		if err := app.Verify(sys); err != nil {
			t.Errorf("procs=%d: %v", procs, err)
		}
	}
}

// TestWaterBugDetected reproduces the paper's Water finding: a write-write
// race (the Splash2 bug) on the unprotected virial accumulator.
func TestWaterBugDetected(t *testing.T) {
	app, sys := runWater(t, Config{Molecules: 16, Steps: 2}, 4, true)
	if err := app.Verify(sys); err != nil {
		t.Fatal(err) // the bug corrupts only the statistic, not the trajectory
	}
	races := race.DedupByAddr(sys.Races())
	if len(races) == 0 {
		t.Fatal("seeded Splash2 bug not detected")
	}
	sawWW := false
	for _, r := range races {
		if r.Addr != app.RacyVirAddr() {
			sym, _ := sys.SymbolAt(r.Addr)
			t.Errorf("unexpected race at %#x (%s)", r.Addr, sym.Name)
		}
		if r.WriteWrite() {
			sawWW = true
		}
	}
	if !sawWW {
		t.Error("no write-write race on vir; paper reports a WW race")
	}
	if sym, ok := sys.SymbolAt(app.RacyVirAddr()); !ok || sym.Name != "vir" {
		t.Errorf("symbol lookup = %+v, %v", sym, ok)
	}
}

// TestWaterFixedBugClean: with the Splash2 fix applied, no races remain.
func TestWaterFixedBugClean(t *testing.T) {
	app, sys := runWater(t, Config{Molecules: 16, Steps: 2, FixBug: true}, 4, true)
	if err := app.Verify(sys); err != nil {
		t.Fatal(err)
	}
	if races := sys.Races(); len(races) != 0 {
		t.Errorf("fixed Water still races: %v", races[0])
	}
}

func TestWaterConfig(t *testing.T) {
	app := New(Config{})
	if app.cfg.Molecules != 64 || app.cfg.Steps != 5 {
		t.Errorf("defaults: %+v", app.cfg)
	}
	paper := New(Config{Molecules: 216, Steps: 5})
	if paper.InputDesc() != "216 mols, 5 steps" {
		t.Errorf("InputDesc = %q", paper.InputDesc())
	}
	if app.SyncKinds() != "lock, barrier" {
		t.Error("descriptors wrong")
	}
}
