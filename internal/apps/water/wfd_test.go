package water

import (
	"testing"

	"lrcrace/internal/dsm"
	"lrcrace/internal/race"
)

// TestWaterWritesFromDiffs is a regression test for a coherence bug found
// during development: multi-writer home pages were initialized writable, so
// under WritesFromDiffs the home never twinned and its own writes never
// produced write notices — later lock holders read stale force values and
// the trajectory silently diverged. Homes now start (and are re-protected
// to) read-only. The test runs the full Water workload under diff-derived
// write detection, with and without the seeded bug, and verifies the
// trajectory exactly.
func TestWaterWritesFromDiffs(t *testing.T) {
	for _, fix := range []bool{false, true} {
		for i := 0; i < 5; i++ {
			app := New(Config{Molecules: 16, Steps: 2, FixBug: fix})
			sys, err := dsm.New(dsm.Config{
				NumProcs:        4,
				SharedSize:      app.SharedBytes(),
				Protocol:        dsm.MultiWriter,
				Detect:          true,
				WritesFromDiffs: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := app.Setup(sys); err != nil {
				t.Fatal(err)
			}
			if err := sys.Run(app.Worker); err != nil {
				t.Fatal(err)
			}
			if err := app.Verify(sys); err != nil {
				t.Fatalf("fix=%v iter %d: %v", fix, i, err)
			}
			races := race.DedupByAddr(sys.Races())
			if fix && len(races) != 0 {
				t.Errorf("fixed Water races under diff detection: %v", races)
			}
			if !fix && len(races) == 0 {
				t.Error("seeded bug not detected under diff-derived writes")
			}
		}
	}
}
