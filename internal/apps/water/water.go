// Package water implements the paper's Water benchmark in the structure of
// Splash2 Water-Nsquared: an N-body molecular dynamics step loop with O(N²)
// pairwise force evaluation using the cyclic "owner computes half" scheme —
// each process evaluates the interactions of its molecules with the next
// N/2 molecules (mod N), accumulating into both molecules' force slots
// under per-molecule locks — plus barriers between phases and lock-protected
// global energy accumulators. The fine-grained locking is what gives Water
// its high interval count and read-notice bandwidth in the paper's tables.
//
// The paper found a write-write data race in Water-Nsquared that "was a
// real bug ... reported to the Splash authors and fixed in their current
// version". This implementation seeds an equivalent bug (on by default, as
// in the version the paper ran): the global virial accumulator VIR is
// updated without taking the accumulator lock, so concurrent per-process
// read-modify-writes race write-against-write. The bug corrupts only that
// statistic, never the trajectory, so Verify still passes while the
// detector flags the race. Construct with Config{FixBug: true} for the
// repaired program.
package water

import (
	"fmt"
	"math"

	"lrcrace/internal/apps"
	"lrcrace/internal/dsm"
	"lrcrace/internal/mem"
)

func init() {
	apps.Register("Water", func(scale float64) apps.App { return New(Config{Scale: scale}) })
}

// Lock identifiers. Molecule locks start at MolLockBase; molecules are
// locked in groups of LockGroup, guarded by MolLockBase + (m/LockGroup) %
// MolLocks.
const (
	PELock      = 0 // potential-energy (and fixed-virial) accumulator
	KELock      = 1 // kinetic-energy accumulator
	MolLockBase = 2
	MolLocks    = 16
	LockGroup   = 2
)

// MolStride is the number of words in one molecule record. Water-Nsquared
// stores molecules as records (nine atomic sites plus predictor-corrector
// state, ~700 bytes each), not as parallel arrays; the record layout is
// what gives the paper its 152 KB shared segment at 216 molecules, and —
// crucially for the page-level statistics — it means a per-molecule lock
// tenure touches only that molecule's page. We reserve the same footprint:
// the live fields (position, velocity, acceleration, new force) occupy the
// first 12 words and the rest models the remaining molecule state.
const MolStride = 96

// Field offsets (in words) within a molecule record.
const (
	fPos    = 0
	fVel    = 3
	fAcc    = 6
	fAccNew = 9
)

const dt = 1e-3

// Config sets the problem size.
type Config struct {
	// Molecules is the molecule count. Zero → 64·Scale (paper: 216).
	Molecules int
	// Steps is the number of time steps. Zero → 5, as in the paper.
	Steps int
	// FixBug applies the Splash2 fix: the virial update takes the lock.
	FixBug bool
	// Scale scales the default molecule count.
	Scale float64
}

func (c *Config) fill() {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Molecules == 0 {
		c.Molecules = int(64 * c.Scale)
		if c.Molecules < 8 {
			c.Molecules = 8
		}
	}
	if c.Steps == 0 {
		c.Steps = 5
	}
}

// Water is the benchmark instance.
type Water struct {
	cfg Config

	mols                mem.Addr // molecule records, MolStride words each
	potEng, kinEng, vir mem.Addr // global accumulators (vir is the bug)
}

// PaperConfig is the paper's input set: 216 molecules, 5 time steps.
func PaperConfig() Config { return Config{Molecules: 216, Steps: 5} }

// New builds a Water instance.
func New(cfg Config) *Water {
	cfg.fill()
	return &Water{cfg: cfg}
}

// Name implements apps.App.
func (w *Water) Name() string { return "Water" }

// InputDesc implements apps.App.
func (w *Water) InputDesc() string {
	return fmt.Sprintf("%d mols, %d steps", w.cfg.Molecules, w.cfg.Steps)
}

// SyncKinds implements apps.App.
func (w *Water) SyncKinds() string { return "lock, barrier" }

// SharedBytes implements apps.App: the molecule-record array plus an
// accumulator page.
func (w *Water) SharedBytes() int {
	arr := MolStride * w.cfg.Molecules * mem.WordSize
	arrPages := (arr + mem.DefaultPageSize - 1) / mem.DefaultPageSize
	return (arrPages + 2) * mem.DefaultPageSize
}

// allocArray page-aligns each shared array, as the original's separate
// G_MEM allocations do; without it every array lands on one page and the
// page-level sharing statistics degenerate.
func allocArray(sys *dsm.System, name string, words int) (mem.Addr, error) {
	ps := sys.Layout().PageSize
	if pad := (ps - sys.AllocBytes()%ps) % ps; pad > 0 {
		if _, err := sys.Alloc(name+"_pad", pad); err != nil {
			return 0, err
		}
	}
	return sys.AllocWords(name, words)
}

// Setup implements apps.App.
func (w *Water) Setup(sys *dsm.System) error {
	n := w.cfg.Molecules
	var err error
	if w.mols, err = allocArray(sys, "mols", MolStride*n); err != nil {
		return err
	}
	// Accumulators on their own page, separate words.
	if w.potEng, err = allocArray(sys, "potEng", 1); err != nil {
		return err
	}
	if w.kinEng, err = sys.AllocWords("kinEng", 1); err != nil {
		return err
	}
	if w.vir, err = sys.AllocWords("vir", 1); err != nil {
		return err
	}
	return nil
}

// fieldAddr returns the address of dimension dim of a molecule-record
// field (fPos, fVel, fAcc, fAccNew).
func (w *Water) fieldAddr(field, mol, dim int) mem.Addr {
	return w.mols + mem.Addr((mol*MolStride+field+dim)*mem.WordSize)
}

// initPos gives molecule i a deterministic starting position and velocity.
func initPos(i int) (pos, vel [3]float64) {
	h := uint64(i+1) * 0x9e3779b97f4a7c15
	for d := 0; d < 3; d++ {
		pos[d] = float64((h>>(8*d))%997) / 100.0
		vel[d] = (float64((h>>(8*d+24))%199) - 99) / 1000.0
	}
	return pos, vel
}

func (w *Water) molsFor(id, nproc int) (lo, hi int) {
	n := w.cfg.Molecules
	return id * n / nproc, (id + 1) * n / nproc
}

// pairForce is the softened inverse-square interaction on i from j, plus
// the pair's potential-energy and virial contributions.
func pairForce(pi, pj [3]float64) (f [3]float64, pot, vir float64) {
	var r2 float64
	var dr [3]float64
	for d := 0; d < 3; d++ {
		dr[d] = pj[d] - pi[d]
		r2 += dr[d] * dr[d]
	}
	const eps = 0.5
	inv := 1 / math.Pow(r2+eps, 1.5)
	for d := 0; d < 3; d++ {
		f[d] = dr[d] * inv
	}
	return f, -1 / math.Sqrt(r2+eps), r2 * inv
}

// pairsOf enumerates the cyclic half-interaction partners of molecule i:
// j = (i+1..i+n/2) mod n, with the antipodal partner claimed by the lower
// index only, so each unordered pair is computed exactly once system-wide.
func pairsOf(i, n int) []int {
	half := n / 2
	var out []int
	for k := 1; k <= half; k++ {
		j := (i + k) % n
		if n%2 == 0 && k == half && i > j {
			continue
		}
		out = append(out, j)
	}
	return out
}

// Worker implements apps.App.
func (w *Water) Worker(p *dsm.Proc) {
	n := w.cfg.Molecules
	lo, hi := w.molsFor(p.ID(), p.N())

	if p.ID() == 0 {
		for i := 0; i < n; i++ {
			pos, vel := initPos(i)
			for d := 0; d < 3; d++ {
				p.WriteF64(w.fieldAddr(fPos, i, d), pos[d])
				p.WriteF64(w.fieldAddr(fVel, i, d), vel[d])
				p.WriteF64(w.fieldAddr(fAcc, i, d), 0)
			}
		}
		p.WriteF64(w.potEng, 0)
		p.WriteF64(w.kinEng, 0)
		p.WriteF64(w.vir, 0)
	}
	p.Barrier()

	for step := 0; step < w.cfg.Steps; step++ {
		// PREDIC: advance owned positions; zero the owned force slots for
		// the coming accumulation.
		for i := lo; i < hi; i++ {
			for d := 0; d < 3; d++ {
				x := p.ReadF64(w.fieldAddr(fPos, i, d))
				v := p.ReadF64(w.fieldAddr(fVel, i, d))
				a := p.ReadF64(w.fieldAddr(fAcc, i, d))
				p.WriteF64(w.fieldAddr(fPos, i, d), x+(v*dt+0.5*a*dt*dt))
				p.WriteF64(w.fieldAddr(fAccNew, i, d), 0)
			}
			p.PrivateAccess(9)
			p.Compute(24)
		}
		p.Barrier()

		// INTERF: cyclic half-interaction — this process evaluates each of
		// its molecules against the next n/2 molecules (mod n), buffering
		// force contributions privately, then folds them into the shared
		// force array under per-molecule locks (the Splash2 pattern that
		// gives Water its fine-grained synchronization).
		fbuf := make([][3]float64, n)
		touched := make([]bool, n)
		potPart, virPart := 0.0, 0.0
		for i := lo; i < hi; i++ {
			var pi [3]float64
			for d := 0; d < 3; d++ {
				pi[d] = p.ReadF64(w.fieldAddr(fPos, i, d))
			}
			for _, j := range pairsOf(i, n) {
				var pj [3]float64
				for d := 0; d < 3; d++ {
					pj[d] = p.ReadF64(w.fieldAddr(fPos, j, d))
				}
				f, pot, vir := pairForce(pi, pj)
				for d := 0; d < 3; d++ {
					fbuf[i][d] += f[d]
					fbuf[j][d] -= f[d]
				}
				touched[i], touched[j] = true, true
				potPart += pot
				virPart += vir
				// The original evaluates 9-site water-molecule interactions:
				// dozens of private array accesses and ~100 flops per pair
				// (Table 3's ~6.8:1 private:shared ratio for Water).
				p.PrivateAccess(45)
				p.Compute(110)
			}
		}
		for g := 0; g*LockGroup < n; g++ {
			anyTouched := false
			for m := g * LockGroup; m < (g+1)*LockGroup && m < n; m++ {
				if touched[m] {
					anyTouched = true
				}
			}
			if !anyTouched {
				continue
			}
			l := MolLockBase + g%MolLocks
			p.Lock(l)
			for m := g * LockGroup; m < (g+1)*LockGroup && m < n; m++ {
				if !touched[m] {
					continue
				}
				for d := 0; d < 3; d++ {
					a := w.fieldAddr(fAccNew, m, d)
					p.WriteF64(a, p.ReadF64(a)+fbuf[m][d])
				}
			}
			p.Unlock(l)
		}
		// Fold the per-process partials into the global accumulators: the
		// potential energy correctly under its lock...
		p.Lock(PELock)
		p.WriteF64(w.potEng, p.ReadF64(w.potEng)+potPart)
		p.Unlock(PELock)
		// ...and the virial with the seeded Splash2 bug: no lock, so the
		// read-modify-write races write-against-write across processes.
		if w.cfg.FixBug {
			p.Lock(PELock)
			p.WriteF64(w.vir, p.ReadF64(w.vir)+virPart)
			p.Unlock(PELock)
		} else {
			p.WriteF64(w.vir, p.ReadF64(w.vir)+virPart)
		}
		p.Barrier()

		// CORREC: velocity update with averaged accelerations; kinetic
		// energy reduced under its lock.
		kinPart := 0.0
		for i := lo; i < hi; i++ {
			for d := 0; d < 3; d++ {
				v := p.ReadF64(w.fieldAddr(fVel, i, d))
				aOld := p.ReadF64(w.fieldAddr(fAcc, i, d))
				aNew := p.ReadF64(w.fieldAddr(fAccNew, i, d))
				nv := v + 0.5*(aOld+aNew)*dt
				p.WriteF64(w.fieldAddr(fVel, i, d), nv)
				p.WriteF64(w.fieldAddr(fAcc, i, d), aNew)
				kinPart += 0.5 * nv * nv
			}
			p.PrivateAccess(12)
			p.Compute(30)
		}
		p.Lock(KELock)
		p.WriteF64(w.kinEng, p.ReadF64(w.kinEng)+kinPart)
		p.Unlock(KELock)
		p.Barrier()
	}
}

// Reference computes the trajectory sequentially with the same pair set;
// force contributions may sum in a different order than the parallel run,
// so comparisons use a tolerance.
func (w *Water) Reference() (pos, vel [][3]float64, kinTotal float64) {
	n := w.cfg.Molecules
	pos = make([][3]float64, n)
	vel = make([][3]float64, n)
	acc := make([][3]float64, n)
	for i := 0; i < n; i++ {
		pos[i], vel[i] = initPos(i)
	}
	for step := 0; step < w.cfg.Steps; step++ {
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				pos[i][d] += vel[i][d]*dt + 0.5*acc[i][d]*dt*dt
			}
		}
		accNew := make([][3]float64, n)
		for i := 0; i < n; i++ {
			for _, j := range pairsOf(i, n) {
				f, _, _ := pairForce(pos[i], pos[j])
				for d := 0; d < 3; d++ {
					accNew[i][d] += f[d]
					accNew[j][d] -= f[d]
				}
			}
		}
		for i := 0; i < n; i++ {
			for d := 0; d < 3; d++ {
				vel[i][d] += 0.5 * (acc[i][d] + accNew[i][d]) * dt
				acc[i][d] = accNew[i][d]
				kinTotal += 0.5 * vel[i][d] * vel[i][d]
			}
		}
	}
	return pos, vel, kinTotal
}

// Verify implements apps.App: trajectories must match the sequential
// reference to floating-point reduction tolerance, and the lock-protected
// kinetic energy likewise. The racy virial is deliberately not checked —
// it is the seeded bug.
func (w *Water) Verify(sys *dsm.System) error {
	wantPos, wantVel, wantKin := w.Reference()
	n := w.cfg.Molecules
	const tol = 1e-9
	for i := 0; i < n; i++ {
		for d := 0; d < 3; d++ {
			if got := sys.SnapshotF64(w.fieldAddr(fPos, i, d)); math.Abs(got-wantPos[i][d]) > tol*(1+math.Abs(wantPos[i][d])) {
				return fmt.Errorf("water: pos[%d][%d] = %g, want %g", i, d, got, wantPos[i][d])
			}
			if got := sys.SnapshotF64(w.fieldAddr(fVel, i, d)); math.Abs(got-wantVel[i][d]) > tol*(1+math.Abs(wantVel[i][d])) {
				return fmt.Errorf("water: vel[%d][%d] = %g, want %g", i, d, got, wantVel[i][d])
			}
		}
	}
	if got := sys.SnapshotF64(w.kinEng); math.Abs(got-wantKin) > tol*(1+math.Abs(wantKin)) {
		return fmt.Errorf("water: kinEng = %g, want %g", got, wantKin)
	}
	return nil
}

// RacyVirAddr exposes the address of the seeded write-write race.
func (w *Water) RacyVirAddr() mem.Addr { return w.vir }
