package reliable

import (
	"testing"
	"time"

	"lrcrace/internal/msg"
	"lrcrace/internal/simnet"
)

func fastCfg() Config {
	return Config{
		RTO:      500 * time.Microsecond,
		MaxRTO:   10 * time.Millisecond,
		AckDelay: 200 * time.Microsecond,
	}
}

func wrapFaulty(t *testing.T, n int, plan *simnet.FaultPlan) *Transport {
	t.Helper()
	nw := simnet.New(n)
	if plan != nil {
		if err := nw.SetFaults(plan); err != nil {
			t.Fatal(err)
		}
	}
	return Wrap(nw, n, fastCfg())
}

func TestReliableNoFaultsPassThrough(t *testing.T) {
	rt := wrapFaulty(t, 2, nil)
	defer rt.Close()
	want := &msg.PageReply{Page: 3, Ownership: true, Data: []byte{1, 2, 3, 4}}
	rt.Send(0, 1, want, 777)
	d, ok := rt.Recv(1)
	if !ok {
		t.Fatal("no delivery")
	}
	pr, isPR := d.Msg.(*msg.PageReply)
	if !isPR || pr.Page != 3 || !pr.Ownership {
		t.Fatalf("got %#v", d.Msg)
	}
	if d.From != 0 || d.VTime != 777 {
		t.Errorf("metadata: from=%d vtime=%d", d.From, d.VTime)
	}
	// The envelope overhead is charged as wire bytes of the wrapped type.
	raw := len(msg.Marshal(want)) + simnet.UDPOverhead
	if st := rt.Stats(); st.Bytes[msg.TPageReply] <= int64(raw) {
		t.Errorf("Bytes[PageReply] = %d, want > unwrapped %d (envelope charged)", st.Bytes[msg.TPageReply], raw)
	}
}

// TestDroppedPageReplyRetransmitted is the satellite's required case: a
// dropped-then-retransmitted PageReply arrives exactly once, in order.
func TestDroppedPageReplyRetransmitted(t *testing.T) {
	// Drop ~half of everything; retransmission must still deliver every
	// message exactly once, in send order.
	rt := wrapFaulty(t, 2, &simnet.FaultPlan{Seed: 11, Drop: 0.5})
	defer rt.Close()
	const n = 40
	for i := 0; i < n; i++ {
		rt.Send(0, 1, &msg.PageReply{Page: 7, Data: []byte{byte(i)}}, int64(i))
	}
	for i := 0; i < n; i++ {
		d, ok := rt.Recv(1)
		if !ok {
			t.Fatalf("transport closed after %d of %d deliveries", i, n)
		}
		pr := d.Msg.(*msg.PageReply)
		if int(pr.Data[0]) != i {
			t.Fatalf("delivery %d carries payload %d: out of order or duplicated", i, pr.Data[0])
		}
	}
	st := rt.Stats()
	if st.Retransmits == 0 {
		t.Error("50% drop produced no retransmits")
	}
	if st.TotalDropped() == 0 {
		t.Error("fault injector dropped nothing")
	}
	if st.RetransBytes == 0 {
		t.Error("retransmit bytes not charged")
	}
}

func TestDuplicatedWireDeliveredOnce(t *testing.T) {
	rt := wrapFaulty(t, 2, &simnet.FaultPlan{Seed: 5, Dup: 1.0})
	defer rt.Close()
	const n = 10
	for i := 0; i < n; i++ {
		rt.Send(0, 1, &msg.PageReq{Page: 1, Write: i%2 == 0}, int64(i))
	}
	for i := 0; i < n; i++ {
		d, ok := rt.Recv(1)
		if !ok {
			t.Fatalf("closed after %d", i)
		}
		if d.VTime != int64(i) {
			t.Fatalf("delivery %d has vtime %d: duplicate slipped through", i, d.VTime)
		}
	}
	// No more deliveries may be pending: every wire duplicate was deduped.
	done := make(chan struct{})
	go func() {
		if _, ok := rt.Recv(1); ok {
			t.Error("extra delivery: dedup failed")
		}
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	rt.Close()
	<-done
	if st := rt.Stats(); st.Deduped == 0 {
		t.Error("Deduped = 0 with Dup=1.0")
	}
}

func TestReorderedWireResequenced(t *testing.T) {
	rt := wrapFaulty(t, 2, &simnet.FaultPlan{Seed: 9, Reorder: 0.5, MaxReorder: 4})
	defer rt.Close()
	const n = 50
	for i := 0; i < n; i++ {
		rt.Send(0, 1, &msg.PageReply{Page: 2, Data: []byte{byte(i)}}, int64(i))
	}
	for i := 0; i < n; i++ {
		d, ok := rt.Recv(1)
		if !ok {
			t.Fatalf("closed after %d", i)
		}
		if got := int(d.Msg.(*msg.PageReply).Data[0]); got != i {
			t.Fatalf("delivery %d carries payload %d: resequencing failed", i, got)
		}
	}
	if st := rt.Stats(); st.Reordered == 0 {
		t.Error("wire reordered nothing")
	}
}

func TestPiggybackSuppressesPureAcks(t *testing.T) {
	// A clean request/reply ping-pong: every data envelope carries the
	// reverse ACK, so pure RelAcks should (almost) never be needed. Allow
	// the final exchange's delayed ack.
	rt := wrapFaulty(t, 2, nil)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			d, ok := rt.Recv(1)
			if !ok {
				return
			}
			pg := d.Msg.(*msg.PageReq).Page
			rt.Send(1, 0, &msg.PageReply{Page: pg}, 0)
		}
	}()
	const n = 20
	for i := 0; i < n; i++ {
		rt.Send(0, 1, &msg.PageReq{Page: 9}, int64(i))
		if _, ok := rt.Recv(0); !ok {
			t.Fatal("closed mid ping-pong")
		}
	}
	st := rt.Stats()
	rt.Close()
	<-done
	if st.Messages[msg.TRelAck] > 4 {
		t.Errorf("ping-pong sent %d pure acks; piggybacking is not working", st.Messages[msg.TRelAck])
	}
	if st.Retransmits > 0 {
		t.Errorf("lossless ping-pong retransmitted %d times", st.Retransmits)
	}
}

func TestPureAckWithoutReverseTraffic(t *testing.T) {
	// One-directional traffic: without piggybacking opportunities the
	// delayed-ack timer must still acknowledge, or the sender would
	// retransmit forever and eventually kill the link.
	rt := wrapFaulty(t, 2, nil)
	defer rt.Close()
	for i := 0; i < 8; i++ {
		rt.Send(0, 1, &msg.DiffFlush{Page: 1}, int64(i))
		rt.Recv(1)
	}
	// Give the ack timer time to fire and the sender to settle.
	time.Sleep(20 * time.Millisecond)
	st := rt.Stats()
	if st.Messages[msg.TRelAck] == 0 {
		t.Error("no pure acks on a one-way stream")
	}
	// The sender's queue must be empty (acks consumed) — observable as no
	// runaway retransmissions after the settle window.
	before := st.Retransmits
	time.Sleep(20 * time.Millisecond)
	if after := rt.Stats().Retransmits; after > before {
		t.Errorf("retransmissions still running after acks: %d -> %d", before, after)
	}
}

func TestSelfSendBypass(t *testing.T) {
	rt := wrapFaulty(t, 2, &simnet.FaultPlan{Seed: 2, Drop: 1.0})
	defer rt.Close()
	rt.Send(1, 1, &msg.BarrierArrive{Epoch: 1}, 5)
	d, ok := rt.Recv(1)
	if !ok {
		t.Fatal("self-send lost")
	}
	if _, isBA := d.Msg.(*msg.BarrierArrive); !isBA {
		t.Fatalf("got %#v", d.Msg)
	}
}

func TestChaosSoakManyMessages(t *testing.T) {
	// Full chaos: drops, duplicates, reordering and jitter at once, two
	// directions, interleaved senders. Everything must arrive exactly
	// once, in per-link order.
	rt := wrapFaulty(t, 2, &simnet.FaultPlan{
		Seed: 1234, Drop: 0.1, Dup: 0.05, Reorder: 0.1, MaxReorder: 3, JitterNS: 10_000,
	})
	defer rt.Close()
	const n = 300
	go func() {
		for i := 0; i < n; i++ {
			rt.Send(0, 1, &msg.PageReply{Page: 1, Data: []byte{byte(i), byte(i >> 8)}}, int64(i))
		}
	}()
	go func() {
		for i := 0; i < n; i++ {
			rt.Send(1, 0, &msg.PageReply{Page: 2, Data: []byte{byte(i), byte(i >> 8)}}, int64(i))
		}
	}()
	check := func(at int) {
		for i := 0; i < n; i++ {
			d, ok := rt.Recv(at)
			if !ok {
				t.Errorf("endpoint %d: closed after %d", at, i)
				return
			}
			pr := d.Msg.(*msg.PageReply)
			if got := int(pr.Data[0]) | int(pr.Data[1])<<8; got != i {
				t.Errorf("endpoint %d: delivery %d carries %d", at, i, got)
				return
			}
		}
	}
	doneCh := make(chan struct{})
	go func() { check(0); close(doneCh) }()
	check(1)
	<-doneCh
	st := rt.Stats()
	if st.Retransmits == 0 || st.TotalDropped() == 0 {
		t.Errorf("soak exercised nothing: retransmits=%d dropped=%d", st.Retransmits, st.TotalDropped())
	}
}
