// Package reliable is the CVM-style end-to-end reliability sublayer: a
// transport wrapper that restores the reliable, per-link-FIFO delivery
// contract the DSM protocol assumes on top of a lossy wire (internal/simnet
// with a FaultPlan, or any other transport that may drop, duplicate, or
// reorder messages).
//
// The paper's CVM runs over raw UDP and supplies its own retransmission;
// this package plays that role. Each directed link carries a stream of
// sequence-numbered RelData envelopes. The receiver delivers them in
// sequence order (buffering out-of-order arrivals, suppressing duplicates)
// and acknowledges cumulatively — piggybacked on reverse-direction data
// where possible, or by a delayed pure RelAck otherwise. The sender
// retransmits unacknowledged envelopes on a timeout with exponential
// backoff up to a retry cap.
//
// Stats accounting stays honest for the paper's bandwidth tables: every
// data envelope (first transmission and every retransmission) is charged
// to the wrapped message's own type, including envelope and datagram
// overhead, and pure acknowledgments are charged under msg.TRelAck — so
// TotalBytes is exactly what crossed the wire.
package reliable

import (
	"fmt"
	"sync"
	"time"

	"lrcrace/internal/dsm/debuglog"
	"lrcrace/internal/msg"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"
)

// Inner is the transport being wrapped (structurally identical to
// dsm.Transport; both simnet.Network and tcpnet.Network satisfy it).
type Inner interface {
	Send(from, to int, m msg.Message, vtime int64) int
	Recv(proc int) (simnet.Delivery, bool)
	Close()
	Stats() simnet.Stats
}

// Config tunes the reliability timers. The zero value selects defaults
// sized for in-process tests: fast enough that a 10% drop rate costs
// milliseconds, slow enough that acknowledgments usually win the race
// against the retransmission timer.
type Config struct {
	// RTO is the initial retransmission timeout (default 2ms).
	RTO time.Duration
	// Backoff multiplies the RTO after every timer expiry (default 2).
	Backoff float64
	// MaxRTO caps the backed-off timeout (default 100ms).
	MaxRTO time.Duration
	// MaxRetries is the number of consecutive unacknowledged
	// retransmission rounds on one link before the link is declared dead
	// and the transport shuts down (default 15).
	MaxRetries int
	// AckDelay is how long a receiver waits for reverse traffic to
	// piggyback on before sending a pure RelAck (default 500µs).
	AckDelay time.Duration
	// AckEvery forces an immediate pure RelAck after this many deliveries
	// without reverse traffic (default 4).
	AckEvery int
	// OnLinkDead, when non-nil, is called (once per link, off the timer
	// goroutine) when a link exhausts MaxRetries instead of shutting the
	// whole transport down. The owner decides what dies: the crash-recovery
	// layer uses this to mark the unreachable peer as a crash suspect and
	// tear the run down for coordinated rollback.
	OnLinkDead func(from, to int)

	// Telemetry is where retransmission and link-death events go. The zero
	// Scope follows the process-global recorder; the DSM layer binds it to
	// the owning System's recorder so concurrent transports stay isolated.
	Telemetry telemetry.Scope
}

func (c Config) withDefaults() Config {
	if c.RTO <= 0 {
		c.RTO = 2 * time.Millisecond
	}
	if c.Backoff < 1 {
		c.Backoff = 2
	}
	if c.MaxRTO <= 0 {
		c.MaxRTO = 100 * time.Millisecond
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 15
	}
	if c.AckDelay <= 0 {
		c.AckDelay = 500 * time.Microsecond
	}
	if c.AckEvery <= 0 {
		c.AckEvery = 4
	}
	return c
}

// Transport implements dsm.Transport over an unreliable Inner.
type Transport struct {
	inner Inner
	n     int
	cfg   Config

	out  []*simnet.Queue // resequenced per-endpoint delivery queues
	send []*sendLink     // [from*n+to]
	recv []*recvLink     // [at*n+from]

	mu     sync.Mutex
	st     simnet.Stats
	closed bool
	killed []bool // endpoints taken down by KillEndpoint

	wg sync.WaitGroup
}

// Wrap builds the reliability sublayer over inner for n endpoints and
// starts the per-endpoint demux pumps.
func Wrap(inner Inner, n int, cfg Config) *Transport {
	t := &Transport{
		inner:  inner,
		n:      n,
		cfg:    cfg.withDefaults(),
		out:    make([]*simnet.Queue, n),
		send:   make([]*sendLink, n*n),
		recv:   make([]*recvLink, n*n),
		killed: make([]bool, n),
	}
	for i := 0; i < n; i++ {
		t.out[i] = simnet.NewQueue()
	}
	for from := 0; from < n; from++ {
		for to := 0; to < n; to++ {
			t.send[from*n+to] = &sendLink{t: t, from: from, to: to, nextSeq: 1, rto: t.cfg.RTO}
			t.recv[from*n+to] = &recvLink{t: t, at: from, from: to, expected: 1, ooo: map[uint32]oooEntry{}}
		}
	}
	for i := 0; i < n; i++ {
		t.wg.Add(1)
		go t.pump(i)
	}
	return t
}

// sendLink is the sender half of one directed link.
type sendLink struct {
	t        *Transport
	from, to int

	mu      sync.Mutex
	nextSeq uint32
	unacked []outPacket
	timer   *time.Timer
	rto     time.Duration
	retries int
	dead    bool
}

// outPacket is one transmitted-but-unacknowledged envelope.
type outPacket struct {
	seq     uint32
	payload []byte // marshaled inner message
	typ     msg.Type
	vtime   int64
}

// recvLink is the receiver half of one directed link: at receives the
// stream from from.
type recvLink struct {
	t        *Transport
	at, from int

	mu       sync.Mutex
	expected uint32 // next in-order sequence number
	ooo      map[uint32]oooEntry
	ackOwed  int
	ackTimer *time.Timer
}

// oooEntry is an out-of-order arrival buffered for resequencing.
type oooEntry struct {
	d       simnet.Delivery
	payload []byte
}

func (t *Transport) isClosed() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.closed
}

func (t *Transport) bumpStats(f func(st *simnet.Stats)) {
	t.mu.Lock()
	f(&t.st)
	t.mu.Unlock()
}

// Send implements dsm.Transport: wrap m in a sequence-numbered envelope
// with a piggybacked cumulative ACK and transmit it, arming the
// retransmission timer. Self-sends bypass the sublayer (loopback cannot
// lose messages).
func (t *Transport) Send(from, to int, m msg.Message, vtime int64) int {
	t.mu.Lock()
	fromDead := t.killed[from]
	t.mu.Unlock()
	if fromDead {
		// A crashed process sends nothing; the caller is a goroutine that
		// has not yet observed its own death.
		return 0
	}
	if from == to {
		wire := t.inner.Send(from, to, m, vtime)
		t.bumpStats(func(st *simnet.Stats) {
			st.Messages[m.Type()]++
			st.Bytes[m.Type()] += int64(wire)
		})
		return wire
	}

	sl := t.send[from*t.n+to]
	rl := t.recv[from*t.n+to] // reverse stream (to→from) ack state

	sl.mu.Lock()
	seq := sl.nextSeq
	sl.nextSeq++
	payload := msg.Marshal(m)
	env := &msg.RelData{Seq: seq, Ack: rl.cumAck(), Payload: payload}
	wire := t.inner.Send(from, to, env, vtime)
	sl.unacked = append(sl.unacked, outPacket{seq: seq, payload: payload, typ: m.Type(), vtime: vtime})
	if sl.timer == nil {
		sl.rto = t.cfg.RTO
		sl.timer = time.AfterFunc(sl.rto, sl.onTimeout)
	}
	sl.mu.Unlock()

	// The envelope carried a cumulative ACK for the reverse direction:
	// cancel any pending pure-ack obligation it just satisfied.
	rl.ackPiggybacked()

	t.bumpStats(func(st *simnet.Stats) {
		st.Messages[m.Type()]++
		st.Bytes[m.Type()] += int64(wire)
	})
	return wire
}

// onTimeout is the retransmission timer: resend every unacknowledged
// envelope (with a fresh piggybacked ACK), back off, and give up on the
// link after MaxRetries consecutive silent rounds.
func (sl *sendLink) onTimeout() {
	t := sl.t
	sl.mu.Lock()
	if sl.dead || t.isClosed() || len(sl.unacked) == 0 {
		sl.timer = nil
		sl.mu.Unlock()
		return
	}
	sl.retries++
	if sl.retries > t.cfg.MaxRetries {
		sl.dead = true
		sl.timer = nil
		nun := len(sl.unacked)
		first := sl.unacked[0]
		sl.mu.Unlock()
		debuglog.Logf("reliable: link %d->%d dead: %d unacked after %d retries (first %v seq %d)",
			sl.from, sl.to, nun, t.cfg.MaxRetries, first.typ, first.seq)
		t.cfg.Telemetry.Emit(sl.from, telemetry.KLinkDead, first.vtime,
			int64(sl.to), int64(nun), int64(t.cfg.MaxRetries))
		t.bumpStats(func(st *simnet.Stats) { st.Errors++ })
		t.cfg.Telemetry.Trip(telemetry.TripLinkDead,
			fmt.Sprintf("reliable: link %d->%d dead after %d retries (%d unacked, first %v seq %d)",
				sl.from, sl.to, t.cfg.MaxRetries, nun, first.typ, first.seq))
		if h := t.cfg.OnLinkDead; h != nil {
			h(sl.from, sl.to)
		} else {
			t.Close()
		}
		return
	}
	rl := t.recv[sl.from*t.n+sl.to]
	ack := rl.cumAck()
	var resentBytes int64
	for _, p := range sl.unacked {
		wire := t.inner.Send(sl.from, sl.to, &msg.RelData{Seq: p.seq, Ack: ack, Payload: p.payload}, p.vtime)
		resentBytes += int64(wire)
		typ := p.typ
		t.bumpStats(func(st *simnet.Stats) {
			st.Messages[typ]++
			st.Bytes[typ] += int64(wire)
			st.Retransmits++
			st.RetransBytes += int64(wire)
		})
	}
	t.cfg.Telemetry.Emit(sl.from, telemetry.KRetransmit, sl.unacked[0].vtime,
		int64(sl.to), int64(len(sl.unacked)), int64(sl.retries))
	sl.rto = time.Duration(float64(sl.rto) * t.cfg.Backoff)
	if sl.rto > t.cfg.MaxRTO {
		sl.rto = t.cfg.MaxRTO
	}
	sl.timer.Reset(sl.rto)
	sl.mu.Unlock()
}

// handleAck applies a cumulative acknowledgment to the link.
func (sl *sendLink) handleAck(ack uint32) {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	progress := false
	kept := sl.unacked[:0]
	for _, p := range sl.unacked {
		if p.seq <= ack {
			progress = true
		} else {
			kept = append(kept, p)
		}
	}
	sl.unacked = kept
	if !progress {
		return
	}
	sl.retries = 0
	sl.rto = sl.t.cfg.RTO
	if sl.timer != nil {
		if len(sl.unacked) == 0 {
			sl.timer.Stop()
			sl.timer = nil
		} else {
			sl.timer.Reset(sl.rto)
		}
	}
}

// stop kills the link's timer at shutdown.
func (sl *sendLink) stop() {
	sl.mu.Lock()
	sl.dead = true
	if sl.timer != nil {
		sl.timer.Stop()
		sl.timer = nil
	}
	sl.mu.Unlock()
}

// cumAck returns the cumulative acknowledgment for the stream this link
// receives: every sequence number up to and including it has been
// delivered.
func (rl *recvLink) cumAck() uint32 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.expected - 1
}

// ackPiggybacked notes that an outgoing data envelope just carried our
// cumulative ACK, discharging any pending pure-ack obligation.
func (rl *recvLink) ackPiggybacked() {
	rl.mu.Lock()
	rl.ackOwed = 0
	if rl.ackTimer != nil {
		rl.ackTimer.Stop()
		rl.ackTimer = nil
	}
	rl.mu.Unlock()
}

// handleData processes one arriving envelope: resequence, dedup, deliver,
// and schedule acknowledgment.
func (rl *recvLink) handleData(d simnet.Delivery, m *msg.RelData) {
	t := rl.t
	rl.mu.Lock()
	switch {
	case m.Seq == rl.expected:
		rl.deliverLocked(d, m.Payload)
		rl.expected++
		for {
			e, ok := rl.ooo[rl.expected]
			if !ok {
				break
			}
			delete(rl.ooo, rl.expected)
			rl.deliverLocked(e.d, e.payload)
			rl.expected++
		}
		rl.ackOwed++
		if rl.ackOwed >= t.cfg.AckEvery {
			rl.sendPureAckLocked()
		} else if rl.ackTimer == nil {
			rl.ackTimer = time.AfterFunc(t.cfg.AckDelay, rl.onAckDelay)
		}
	case m.Seq > rl.expected:
		if _, dup := rl.ooo[m.Seq]; dup {
			t.bumpStats(func(st *simnet.Stats) { st.Deduped++ })
		} else {
			rl.ooo[m.Seq] = oooEntry{d: d, payload: m.Payload}
		}
		// A gap means something was lost or reordered; make sure the
		// sender hears our cumulative position soon even without reverse
		// traffic.
		if rl.ackTimer == nil {
			rl.ackTimer = time.AfterFunc(t.cfg.AckDelay, rl.onAckDelay)
		}
	default:
		// Duplicate of an already-delivered envelope: the retransmission
		// that raced our ACK (or a wire-level duplicate). Re-ack
		// immediately so the sender's timer stands down.
		t.bumpStats(func(st *simnet.Stats) { st.Deduped++ })
		rl.sendPureAckLocked()
	}
	rl.mu.Unlock()
}

// deliverLocked unwraps the payload and hands it to the endpoint's
// delivery queue, preserving the original wire metadata (so the virtual
// cost model charges the arrival exactly as the unwrapped transport
// would).
func (rl *recvLink) deliverLocked(d simnet.Delivery, payload []byte) {
	inner, err := msg.Unmarshal(payload)
	if err != nil {
		// Cannot happen over simnet/tcpnet (payloads round-trip before
		// send); count and drop rather than wedge the protocol.
		debuglog.Logf("reliable: link %d->%d: corrupt payload: %v", rl.from, rl.at, err)
		rl.t.bumpStats(func(st *simnet.Stats) { st.Errors++ })
		return
	}
	rl.t.out[rl.at].Push(simnet.Delivery{
		From:  d.From,
		VTime: d.VTime,
		Bytes: d.Bytes,
		Frags: d.Frags,
		Msg:   inner,
	})
}

// onAckDelay fires when no reverse traffic appeared to piggyback on.
func (rl *recvLink) onAckDelay() {
	rl.mu.Lock()
	rl.ackTimer = nil
	if !rl.t.isClosed() {
		rl.sendPureAckLocked()
	}
	rl.mu.Unlock()
}

// sendPureAckLocked emits a pure RelAck with the current cumulative
// position.
func (rl *recvLink) sendPureAckLocked() {
	t := rl.t
	t.mu.Lock()
	atDead := t.killed[rl.at]
	t.mu.Unlock()
	if atDead {
		// A crashed process acknowledges nothing — this silence is what
		// drives the survivors' links to retry-cap exhaustion.
		return
	}
	wire := t.inner.Send(rl.at, rl.from, &msg.RelAck{Ack: rl.expected - 1}, 0)
	rl.ackOwed = 0
	if rl.ackTimer != nil {
		rl.ackTimer.Stop()
		rl.ackTimer = nil
	}
	t.bumpStats(func(st *simnet.Stats) {
		st.Messages[msg.TRelAck]++
		st.Bytes[msg.TRelAck] += int64(wire)
	})
}

// stop kills the link's ack timer at shutdown.
func (rl *recvLink) stop() {
	rl.mu.Lock()
	if rl.ackTimer != nil {
		rl.ackTimer.Stop()
		rl.ackTimer = nil
	}
	rl.mu.Unlock()
}

// pump is the per-endpoint demux: it drains the inner transport,
// processes reliability envelopes, and forwards resequenced deliveries.
func (t *Transport) pump(at int) {
	defer t.wg.Done()
	for {
		d, ok := t.inner.Recv(at)
		if !ok {
			t.out[at].Close()
			return
		}
		switch m := d.Msg.(type) {
		case *msg.RelData:
			t.send[at*t.n+d.From].handleAck(m.Ack)
			t.recv[at*t.n+d.From].handleData(d, m)
		case *msg.RelAck:
			t.send[at*t.n+d.From].handleAck(m.Ack)
		default:
			// Self-sends (and any non-enveloped traffic) pass through.
			t.out[at].Push(d)
		}
	}
}

// Recv implements dsm.Transport.
func (t *Transport) Recv(proc int) (simnet.Delivery, bool) {
	return t.out[proc].Pop()
}

// KillEndpoint simulates a process crash at proc: the victim stops
// sending (including retransmissions), its inner endpoint is killed if the
// inner transport supports it, and its delivery queue is discarded so its
// blocked Recv returns ok=false immediately. Links from survivors TO the
// victim are left running on purpose — their retransmission timers are
// exactly how the survivors detect the death (retry-cap exhaustion →
// OnLinkDead).
func (t *Transport) KillEndpoint(proc int) {
	t.mu.Lock()
	if t.closed || t.killed[proc] {
		t.mu.Unlock()
		return
	}
	t.killed[proc] = true
	t.mu.Unlock()

	// Silence the victim's own sender halves: a dead host neither sends
	// new data nor retransmits old.
	for to := 0; to < t.n; to++ {
		t.send[proc*t.n+to].stop()
	}
	// And its receiver halves' ack timers: a dead host acknowledges
	// nothing, which is what starves the survivors' links into timeout.
	for from := 0; from < t.n; from++ {
		t.recv[proc*t.n+from].stop()
	}
	if k, ok := t.inner.(interface{ KillEndpoint(int) }); ok {
		k.KillEndpoint(proc)
	}
	t.out[proc].Kill()
}

// Close implements dsm.Transport: stop timers, shut the inner transport,
// and wait for the pumps to drain.
func (t *Transport) Close() {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return
	}
	t.closed = true
	t.mu.Unlock()

	for _, sl := range t.send {
		sl.stop()
	}
	for _, rl := range t.recv {
		rl.stop()
	}
	t.inner.Close()
	t.wg.Wait()
	for _, q := range t.out {
		q.Close()
	}
}

// Stats implements dsm.Transport. Messages/Bytes are the sublayer's own
// accounting (per wrapped message type, retransmissions included, pure
// acknowledgments under msg.TRelAck); the wire-level fault counters come
// from the inner transport. The inner transport's own Messages/Bytes (all
// under TRelData/TRelAck) are deliberately not merged — they would double
// count.
func (t *Transport) Stats() simnet.Stats {
	t.mu.Lock()
	st := t.st
	t.mu.Unlock()
	in := t.inner.Stats()
	st.Dropped = in.Dropped
	st.Duplicated = in.Duplicated
	st.Reordered = in.Reordered
	st.Errors += in.Errors
	return st
}

// String describes the configuration (debug aid).
func (t *Transport) String() string {
	return fmt.Sprintf("reliable{n=%d rto=%v backoff=%g maxRetries=%d}", t.n, t.cfg.RTO, t.cfg.Backoff, t.cfg.MaxRetries)
}
