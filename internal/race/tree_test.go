package race

import (
	"math/rand"
	"reflect"
	"testing"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/vc"
)

// treeNodeOut is the merged state one combining-tree node ships to its
// parent in the single-process model of the distributed build.
type treeNodeOut struct {
	recs    []*interval.Record
	entries []CheckEntry
	st      BuildStats
}

// treeBuild models the distributed check-list build over a combining tree
// of the given arity (node ids 0..n-1, children of p are p*arity+1 ..
// p*arity+arity): each node runs BuildPartialCheckList over its own
// process's records plus its children's merged subtrees, exactly as the
// dsm barrier does.
func treeBuild(opts Options, byProc [][]*interval.Record, arity int) treeNodeOut {
	n := len(byProc)
	var visit func(id int) treeNodeOut
	visit = func(id int) treeNodeOut {
		groups := [][]*interval.Record{byProc[id]}
		var out treeNodeOut
		for c := arity*id + 1; c <= arity*id+arity && c < n; c++ {
			co := visit(c)
			groups = append(groups, co.recs)
			out.entries = append(out.entries, co.entries...)
			out.st.Add(co.st)
		}
		entries, st := BuildPartialCheckList(opts, groups)
		out.entries = append(out.entries, entries...)
		out.st.Add(st)
		for _, g := range groups {
			out.recs = append(out.recs, g...)
		}
		return out
	}
	return visit(0)
}

// randomEpochRecords generates a plausible epoch: each process contributes
// 1..4 intervals with ascending indexes, random notice lists over l's
// pages, and version vectors whose own entry equals the interval index.
func randomEpochRecords(r *rand.Rand, l mem.Layout, nproc int) [][]*interval.Record {
	byProc := make([][]*interval.Record, nproc)
	maxIdx := 5
	randPages := func() []mem.PageID {
		var pages []mem.PageID
		for pg := 0; pg < l.NumPages; pg++ {
			if r.Intn(4) == 0 {
				pages = append(pages, mem.PageID(pg))
			}
		}
		return pages
	}
	for p := 0; p < nproc; p++ {
		nint := 1 + r.Intn(4)
		for idx := 1; idx <= nint; idx++ {
			v := vc.New(nproc)
			for q := 0; q < nproc; q++ {
				v[q] = vc.Index(r.Intn(maxIdx + 1))
			}
			v[p] = vc.Index(idx)
			byProc[p] = append(byProc[p], &interval.Record{
				ID:           vc.IntervalID{Proc: p, Index: vc.Index(idx)},
				VC:           v,
				WriteNotices: randPages(),
				ReadNotices:  randPages(),
			})
		}
	}
	return byProc
}

// TestDistributedBuildMatchesSerial: the combining tree's folded check
// list and Stats must be byte-identical to a serial BuildCheckList over
// the same records, across arities, process counts, and every overlap /
// pair-scan option mode.
func TestDistributedBuildMatchesSerial(t *testing.T) {
	l := testLayout(t)
	optModes := []Options{
		{},
		{PageBitmapOverlap: true, NumPages: l.NumPages},
		{PrunedPairs: true},
		{PrunedPairs: true, PageBitmapOverlap: true, NumPages: l.NumPages},
	}
	for seed := int64(1); seed <= 8; seed++ {
		r := rand.New(rand.NewSource(seed))
		nproc := 2 + r.Intn(8) // 2..9
		byProc := randomEpochRecords(r, l, nproc)
		var all []*interval.Record
		for _, g := range byProc {
			all = append(all, g...)
		}
		for _, opts := range optModes {
			for arity := 2; arity <= 4; arity++ {
				serial := NewDetector(l, opts)
				want := serial.BuildCheckList(all)

				out := treeBuild(opts, byProc, arity)
				dist := NewDetector(l, opts)
				got := dist.FoldCheckLists(len(all), out.entries, out.st)

				if len(got) != len(want) || (len(got) > 0 && !reflect.DeepEqual(got, want)) {
					t.Fatalf("seed %d nproc %d arity %d opts %+v:\n tree check list %v\n want           %v",
						seed, nproc, arity, opts, got, want)
				}
				if serial.Stats() != dist.Stats() {
					t.Fatalf("seed %d nproc %d arity %d opts %+v:\n tree Stats %+v\n want       %+v",
						seed, nproc, arity, opts, dist.Stats(), serial.Stats())
				}
			}
		}
	}
}

// TestBuildPartialSingleGroup: a node with a single contribution (a leaf's
// own records) has no cross-group pairs and must do no work.
func TestBuildPartialSingleGroup(t *testing.T) {
	l := testLayout(t)
	r := rand.New(rand.NewSource(7))
	byProc := randomEpochRecords(r, l, 3)
	entries, st := BuildPartialCheckList(Options{}, [][]*interval.Record{byProc[0]})
	if len(entries) != 0 || st != (BuildStats{}) {
		t.Fatalf("single-group build did work: entries=%v stats=%+v", entries, st)
	}
}

// TestFoldCheckListsCanonicalOrder: entries merged in arbitrary subtree
// order come back in the serial order after the fold.
func TestFoldCheckListsCanonicalOrder(t *testing.T) {
	l := testLayout(t)
	e1 := CheckEntry{A: vc.IntervalID{Proc: 0, Index: 1}, B: vc.IntervalID{Proc: 1, Index: 1}, Page: 2}
	e2 := CheckEntry{A: vc.IntervalID{Proc: 0, Index: 1}, B: vc.IntervalID{Proc: 1, Index: 1}, Page: 1}
	e3 := CheckEntry{A: vc.IntervalID{Proc: 0, Index: 2}, B: vc.IntervalID{Proc: 2, Index: 1}, Page: 0}
	d := NewDetector(l, Options{})
	got := d.FoldCheckLists(4, []CheckEntry{e3, e1, e2}, BuildStats{})
	want := []CheckEntry{e2, e1, e3}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fold order = %v, want %v", got, want)
	}
	st := d.Stats()
	if st.CheckEntries != 3 || st.IntervalsInvolved != 4 || st.IntervalsTotal != 4 || st.Epochs != 1 {
		t.Fatalf("fold stats = %+v", st)
	}
}
