// Package race implements the paper's contribution: on-the-fly data-race
// detection driven by the ordering metadata of a lazy-release-consistent
// DSM.
//
// The detection procedure runs at global synchronization points (barriers),
// where the barrier master holds complete information about every interval
// of the finishing epoch:
//
//  1. Intervals carry version vectors, write notices and (this system's
//     addition) read notices.
//  2. The master enumerates pairs of intervals from different processes in
//     the current epoch and keeps the concurrent ones — a constant-time
//     version-vector check per pair.
//  3. For each concurrent pair, read/write page notices are intersected; a
//     race can only exist on a page written in both intervals, or written in
//     one and read in the other. Pairs with overlap enter the check list.
//  4. The check list travels with the barrier release; processes return the
//     word-granularity access bitmaps named by it.
//  5. The master compares bitmaps: disjoint word sets are false sharing,
//     overlapping words are data races, reported by address.
package race

import (
	"fmt"
	"sort"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/vc"
)

// AccessKind labels one side of a race: whether the interval's access to
// the racing word was a read or a write (§5's read/write bitmap pair).
type AccessKind uint8

const (
	// Read marks an access recorded in an interval's read bitmap.
	Read AccessKind = iota
	// Write marks an access recorded in an interval's write bitmap — in
	// multi-writer mode these are derived from diffs (§6.5), so a write
	// bitmap exists exactly where a diff records a modified word.
	Write
)

// String returns "read" or "write".
func (k AccessKind) String() string {
	if k == Write {
		return "write"
	}
	return "read"
}

// Endpoint is one access of a racing pair: which interval performed it and
// whether it was a read or a write.
type Endpoint struct {
	Interval vc.IntervalID
	Kind     AccessKind
}

// Report describes one detected data race: two concurrent accesses to the
// same shared word, at least one a write. The system reports "the address
// of the affected variable, together with the interval indexes"; symbol
// tables map the address back to a variable (the harness attaches variable
// names via the applications' layout tables).
type Report struct {
	Page  mem.PageID
	Word  int      // word index within the page
	Addr  mem.Addr // byte address of the word in the shared segment
	Epoch int32
	A, B  Endpoint
}

// WriteWrite reports whether both endpoints are writes.
func (r Report) WriteWrite() bool { return r.A.Kind == Write && r.B.Kind == Write }

// String renders the report the way races are printed for the user:
// kind, address, page/word coordinates, epoch, and the two endpoints.
func (r Report) String() string {
	kind := "read-write"
	if r.WriteWrite() {
		kind = "write-write"
	}
	return fmt.Sprintf("%s race at addr 0x%x (page %d word %d, epoch %d): %s in %v ~ %s in %v",
		kind, uint64(r.Addr), r.Page, r.Word, r.Epoch,
		r.A.Kind, r.A.Interval, r.B.Kind, r.B.Interval)
}

// CheckEntry names a concurrent interval pair and an overlapping page whose
// bitmaps must be compared — one line of the paper's "check list" (§5),
// built at the barrier master and shipped with the barrier release.
type CheckEntry struct {
	A, B vc.IntervalID
	Page mem.PageID
}

// Stats counts the work done by the comparison algorithm; these feed the
// dynamic metrics of Table 3 and the Intervals/Bitmaps overhead components
// of Figure 3.
type Stats struct {
	Epochs            int
	IntervalsTotal    int // intervals examined across all epochs
	PairComparisons   int // version-vector comparisons performed
	ConcurrentPairs   int // pairs found concurrent
	OverlappingPairs  int // concurrent pairs with page-list overlap
	IntervalsInvolved int // intervals appearing in >=1 overlapping pair
	CheckEntries      int // (pair, page) lines on check lists
	NoticesScanned    int // page-notice elements examined during overlap tests
	BitmapsCompared   int // bitmaps fetched and compared (read+write)
	WordOverlaps      int // racing words found (before dedup)
	SuppressedReports int // reports dropped by first-race filtering
}

// Options configure the detector.
type Options struct {
	// FirstOnly implements §6.4: report only "first" races — races not
	// affected by a prior race. Because a barrier orders everything before
	// it with everything after it, all first races fall in the earliest
	// epoch that contains any race; later epochs are suppressed.
	FirstOnly bool

	// PageBitmapOverlap selects the §6.2 alternative page-list overlap
	// implementation: O(pages-in-system) bitmap intersection instead of
	// the O(n²)-flavored sorted-list merge. Results are identical; the
	// ablation benchmark compares their cost.
	PageBitmapOverlap bool

	// PrunedPairs replaces the paper's "very simple" all-pairs interval
	// scan with an index-ordered variant that skips ordered prefixes
	// outright: for a given interval σ_q^j, every interval of process p
	// with index ≤ vc(σ_q^j)[p] precedes it and need not be examined.
	// This is the bypassing the paper notes program/synchronization order
	// makes possible ("the same act that creates intervals also removes
	// many interval pairs from consideration"). Results are identical;
	// PairComparisons counts only the candidates actually examined.
	PrunedPairs bool
	// NumPages must be set when PageBitmapOverlap is true.
	NumPages int
}

// Detector is the barrier master's race-detection state. It persists across
// epochs so that first-race filtering can remember the earliest racy epoch.
type Detector struct {
	opts   Options
	layout mem.Layout
	stats  Stats

	firstRacyEpoch int32 // -1 until a race is seen

	// racyRecords retains the interval records behind reported races so
	// ExplainReport can reconstruct derivations after epoch metadata is
	// discarded.
	racyRecords map[vc.IntervalID]*interval.Record

	scratchA, scratchB mem.Bitmap // page-bitmap scratch for §6.2 mode
}

// NewDetector returns a detector for a segment with the given layout.
func NewDetector(l mem.Layout, opts Options) *Detector {
	d := &Detector{opts: opts, layout: l, firstRacyEpoch: -1}
	if opts.PageBitmapOverlap {
		n := opts.NumPages
		if n == 0 {
			n = l.NumPages
		}
		d.scratchA = mem.NewBitmap(n)
		d.scratchB = mem.NewBitmap(n)
	}
	return d
}

// Stats returns accumulated counters.
func (d *Detector) Stats() Stats { return d.stats }

// BuildCheckList runs steps 2–3 of §5 on the records of one epoch: it finds
// concurrent interval pairs (a constant-time version-vector test per pair)
// and intersects their page notices, returning the check list sorted by
// interval pair then page. Records must all belong to the same epoch; intervals of
// earlier epochs are separated from them by the previous barrier and so are
// ordered with respect to them — they never need to be examined.
func (d *Detector) BuildCheckList(records []*interval.Record) []CheckEntry {
	d.stats.Epochs++
	d.stats.IntervalsTotal += len(records)
	// The caller hands records in barrier-arrival order, which depends on
	// scheduling; sort a copy by interval ID so entry orientation (A,B) and
	// report endpoints come out identical on every run of the same program.
	records = append([]*interval.Record(nil), records...)
	sort.Slice(records, func(i, j int) bool { return lessID(records[i].ID, records[j].ID) })
	var entries []CheckEntry
	involved := make(map[vc.IntervalID]bool)
	examine := func(a, b *interval.Record) {
		d.stats.ConcurrentPairs++
		pages := d.overlap(a, b)
		if len(pages) == 0 {
			return
		}
		d.stats.OverlappingPairs++
		involved[a.ID] = true
		involved[b.ID] = true
		for _, p := range pages {
			entries = append(entries, CheckEntry{A: a.ID, B: b.ID, Page: p})
		}
	}
	if d.opts.PrunedPairs {
		d.prunedScan(records, examine)
	} else {
		for i := 0; i < len(records); i++ {
			for j := i + 1; j < len(records); j++ {
				a, b := records[i], records[j]
				if a.ID.Proc == b.ID.Proc {
					continue // totally ordered by program order
				}
				d.stats.PairComparisons++
				if !vc.Concurrent(a.ID, a.VC, b.ID, b.VC) {
					continue
				}
				examine(a, b)
			}
		}
	}
	d.stats.IntervalsInvolved += len(involved)
	d.stats.CheckEntries += len(entries)
	sortCheckEntries(entries)
	return entries
}

// sortCheckEntries establishes the canonical check-list order — interval
// pair (A then B), then page. BuildCheckList emits it directly; the
// distributed build (FoldCheckLists) restores it after merging per-node
// partial lists, which is what keeps the two paths byte-identical.
func sortCheckEntries(entries []CheckEntry) {
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.A != b.A {
			return lessID(a.A, b.A)
		}
		if a.B != b.B {
			return lessID(a.B, b.B)
		}
		return a.Page < b.Page
	})
}

// prunedScan enumerates exactly the concurrent cross-process pairs using
// per-process index order: for each interval b and each other process p,
// intervals of p with index ≤ b.VC[p] precede b and are skipped without a
// comparison; the remainder need only the reverse-direction test.
func (d *Detector) prunedScan(records []*interval.Record, examine func(a, b *interval.Record)) {
	byProc := map[int][]*interval.Record{}
	for _, r := range records {
		byProc[r.ID.Proc] = append(byProc[r.ID.Proc], r)
	}
	var procs []int
	for p := range byProc {
		sort.Slice(byProc[p], func(i, j int) bool { return byProc[p][i].ID.Index < byProc[p][j].ID.Index })
		procs = append(procs, p)
	}
	sort.Ints(procs)
	for pi := 0; pi < len(procs); pi++ {
		for qi := pi + 1; qi < len(procs); qi++ {
			d.stats.PairComparisons += prunedProcPair(
				byProc[procs[pi]], byProc[procs[qi]], procs[pi], procs[qi], examine)
		}
	}
}

// prunedProcPair runs the index-ordered pruned scan over one process pair:
// as are pLow's intervals and bs are pHigh's (pLow < pHigh), each ascending
// by index. It returns the number of candidate pairs actually compared and
// calls examine for each concurrent one. Shared by the serial prunedScan
// and the distributed build (BuildPartialCheckList), whose per-proc-pair
// decomposition must count and examine exactly the same pairs.
func prunedProcPair(as, bs []*interval.Record, pLow, pHigh int, examine func(a, b *interval.Record)) int {
	compared := 0
	for _, b := range bs {
		// Skip the prefix of pLow-intervals b has already seen.
		seen := b.VC[pLow]
		start := sort.Search(len(as), func(i int) bool { return as[i].ID.Index > seen })
		for _, a := range as[start:] {
			// a ⊀ b by construction; b ≺ a iff a saw b's index.
			compared++
			if a.VC[pHigh] >= b.ID.Index {
				continue
			}
			examine(a, b)
		}
	}
	return compared
}

func lessID(a, b vc.IntervalID) bool {
	if a.Proc != b.Proc {
		return a.Proc < b.Proc
	}
	return a.Index < b.Index
}

// overlap returns the pages on which a race between a and b could exist:
// written by both, or written by one and read by the other.
func (d *Detector) overlap(a, b *interval.Record) []mem.PageID {
	d.stats.NoticesScanned += len(a.WriteNotices) + len(a.ReadNotices) +
		len(b.WriteNotices) + len(b.ReadNotices)
	if d.opts.PageBitmapOverlap {
		return overlapViaBitmaps(d.scratchA, d.scratchB, a, b)
	}
	return overlapViaMerge(a, b)
}

// overlapViaMerge is the sorted-list-merge page-overlap implementation. The
// result is a sorted page set, symmetric in (a, b).
func overlapViaMerge(a, b *interval.Record) []mem.PageID {
	var pages []mem.PageID
	pages = interval.OverlapPages(a.WriteNotices, b.WriteNotices, pages)
	pages = interval.OverlapPages(a.WriteNotices, b.ReadNotices, pages)
	pages = interval.OverlapPages(a.ReadNotices, b.WriteNotices, pages)
	return dedupPages(pages)
}

// overlapViaBitmaps is the §6.2 linear-in-system-pages variant. scratchA
// and scratchB must be sized to the system's page count.
func overlapViaBitmaps(scratchA, scratchB mem.Bitmap, a, b *interval.Record) []mem.PageID {
	setBits := func(bm mem.Bitmap, lists ...[]mem.PageID) {
		bm.Reset()
		for _, l := range lists {
			for _, p := range l {
				bm.Set(int(p))
			}
		}
	}
	var out []mem.PageID
	collect := func(words []int) {
		for _, w := range words {
			out = append(out, mem.PageID(w))
		}
	}
	// W_a ∩ (W_b ∪ R_b)
	setBits(scratchA, a.WriteNotices)
	setBits(scratchB, b.WriteNotices, b.ReadNotices)
	collect(scratchA.Overlap(scratchB, nil))
	// R_a ∩ W_b
	setBits(scratchA, a.ReadNotices)
	setBits(scratchB, b.WriteNotices)
	collect(scratchA.Overlap(scratchB, nil))
	return dedupPages(out)
}

func dedupPages(pages []mem.PageID) []mem.PageID {
	if len(pages) < 2 {
		return pages
	}
	interval.SortPages(pages)
	out := pages[:1]
	for _, p := range pages[1:] {
		if p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// BitmapSource supplies the word-access bitmaps named by check entries (§5;
// write bitmaps are diff-derived in multi-writer mode per §6.5). At the
// barrier master this is backed by the bitmaps returned in the second
// barrier round — or, under Config.ShardedCheck, each shard owner backs one
// from the per-owner bitmap round; in single-process use it is backed
// directly by a BitmapStore.
type BitmapSource interface {
	Bitmaps(id vc.IntervalID, p mem.PageID) (read, write mem.Bitmap)
}

// StoreSource adapts an interval.BitmapStore to a BitmapSource.
type StoreSource struct{ Store *interval.BitmapStore }

// Bitmaps implements BitmapSource.
func (s StoreSource) Bitmaps(id vc.IntervalID, p mem.PageID) (read, write mem.Bitmap) {
	return s.Store.Get(id, p)
}

// Compare runs step 5: the §5 word-bitmap comparison over the check list.
// It returns the data races found, applying §6.4 first-race filtering if
// enabled. epoch tags the reports. The comparison itself is CompareShard
// over the full list; the sharded barrier path runs CompareShard per shard
// on worker processes and folds the tree-reduced results back here via
// FoldShardResults, which leaves the detector in this same state.
func (d *Detector) Compare(entries []CheckEntry, src BitmapSource, epoch int32) []Report {
	reports, st := CompareShard(d.layout, entries, src, epoch)
	d.stats.BitmapsCompared += st.BitmapsCompared
	d.stats.WordOverlaps += st.WordOverlaps
	return d.filterFirst(reports, epoch)
}

// filterFirst implements §6.4: once any epoch has raced, reports from later
// epochs are "affected" races and are suppressed (a barrier orders
// everything before it with everything after it, so all first races fall in
// the earliest racy epoch).
func (d *Detector) filterFirst(reports []Report, epoch int32) []Report {
	if d.opts.FirstOnly && len(reports) > 0 {
		if d.firstRacyEpoch < 0 {
			d.firstRacyEpoch = epoch
		}
		if epoch != d.firstRacyEpoch {
			d.stats.SuppressedReports += len(reports)
			return nil
		}
	}
	return reports
}

// DedupByAddr collapses reports to one representative per (address, kind
// pair), preserving first-seen order — the form in which races are printed
// for the user (repeated dynamic instances of the same static race collapse
// to one line).
func DedupByAddr(reports []Report) []Report {
	type k struct {
		addr mem.Addr
		ww   bool
	}
	seen := make(map[k]bool)
	var out []Report
	for _, r := range reports {
		kk := k{r.Addr, r.WriteWrite()}
		if !seen[kk] {
			seen[kk] = true
			out = append(out, r)
		}
	}
	return out
}
