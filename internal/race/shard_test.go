package race

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/vc"
)

// racyEpochRecords builds one record per address, all mutually concurrent,
// each writing its address — addrs on the same page in different processes
// therefore race word-for-word.
func racyEpochRecords(t *testing.T, l mem.Layout, epoch int32, addrs ...mem.Addr) ([]*interval.Record, *interval.BitmapStore, int) {
	t.Helper()
	store := interval.NewBitmapStore()
	var recs []*interval.Record
	for i, a := range addrs {
		v := vc.New(len(addrs))
		v[i] = vc.Index(epoch*2 + 1)
		recs = append(recs, build(l, store,
			vc.IntervalID{Proc: i, Index: vc.Index(epoch*2 + 1)},
			v, epoch, nil, []mem.Addr{a}))
	}
	return recs, store, len(addrs)
}

// shardAndFold partitions entries across nprocs, compares each shard
// independently (as the shard owners would), merges in owner order (as a
// reduction tree does — order is arbitrary before the canonical sort), and
// folds the result into d. It is the single-process model of the sharded
// barrier round.
func shardAndFold(d *Detector, l mem.Layout, entries []CheckEntry, src BitmapSource, nprocs int, epoch int32) []Report {
	owners := PartitionCheckList(entries, nprocs)
	var merged []Report
	var total ShardStats
	for q := nprocs - 1; q >= 0; q-- { // deliberately not owner order
		var shard []CheckEntry
		for i, e := range entries {
			if owners[i] == int32(q) {
				shard = append(shard, e)
			}
		}
		reports, st := CompareShard(l, shard, src, epoch)
		merged = append(merged, reports...)
		total.BitmapsCompared += st.BitmapsCompared
		total.WordOverlaps += st.WordOverlaps
	}
	return d.FoldShardResults(merged, total, epoch)
}

func TestPartitionCheckList(t *testing.T) {
	entries := []CheckEntry{
		{Page: 0}, {Page: 0}, {Page: 0},
		{Page: 1}, {Page: 1},
		{Page: 2},
		{Page: 3},
	}
	owners := PartitionCheckList(entries, 3)
	if len(owners) != len(entries) {
		t.Fatalf("len(owners) = %d, want %d", len(owners), len(entries))
	}
	// Page→owner must be a function: all entries of a page share an owner.
	pageOwner := map[mem.PageID]int32{}
	for i, e := range entries {
		if prev, ok := pageOwner[e.Page]; ok && prev != owners[i] {
			t.Errorf("page %d split across owners %d and %d", e.Page, prev, owners[i])
		}
		pageOwner[e.Page] = owners[i]
	}
	// LPT on counts {3,2,1,1} over 3 procs: loads should be {3,2,2}.
	load := map[int32]int{}
	for _, o := range owners {
		load[o]++
	}
	for o, n := range load {
		if n > 3 {
			t.Errorf("owner %d has load %d; partition unbalanced (%v)", o, n, owners)
		}
	}
	// Deterministic: same input, same output.
	again := PartitionCheckList(entries, 3)
	for i := range owners {
		if owners[i] != again[i] {
			t.Fatalf("partition not deterministic at %d: %v vs %v", i, owners, again)
		}
	}
	// Degenerate cases.
	if o := PartitionCheckList(entries, 1); len(o) != len(entries) {
		t.Errorf("nprocs=1: %v", o)
	} else {
		for _, v := range o {
			if v != 0 {
				t.Errorf("nprocs=1 assigned owner %d", v)
			}
		}
	}
	if o := PartitionCheckList(nil, 4); len(o) != 0 {
		t.Errorf("empty entries: %v", o)
	}
}

// TestPropertyShardedMatchesSerial: sharding the check list, comparing each
// shard independently, merging in arbitrary order, and folding at the master
// produces the identical report stream and identical Stats to the serial
// detector — for any worker count.
func TestPropertyShardedMatchesSerial(t *testing.T) {
	l := testLayout(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs, store, _ := randomEpoch(r, l)
		nprocs := 1 + r.Intn(8)

		serial := NewDetector(l, Options{})
		sharded := NewDetector(l, Options{})
		e1 := serial.BuildCheckList(recs)
		e2 := sharded.BuildCheckList(recs)

		r1 := serial.Compare(e1, StoreSource{store}, 0)
		r2 := shardAndFold(sharded, l, e2, StoreSource{store}, nprocs, 0)

		if len(r1) != len(r2) {
			t.Logf("seed %d: %d serial vs %d sharded reports", seed, len(r1), len(r2))
			return false
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Logf("seed %d report %d: %+v vs %+v", seed, i, r1[i], r2[i])
				return false
			}
		}
		if serial.Stats() != sharded.Stats() {
			t.Logf("seed %d stats: %+v vs %+v", seed, serial.Stats(), sharded.Stats())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// TestShardedFirstRaceFiltering: §6.4 suppression behaves identically when
// the comparison ran on shards and the fold applies the filter.
func TestShardedFirstRaceFiltering(t *testing.T) {
	l := testLayout(t)
	serial := NewDetector(l, Options{FirstOnly: true})
	sharded := NewDetector(l, Options{FirstOnly: true})

	run := func(epoch int32, addrs ...mem.Addr) ([]Report, []Report) {
		recs, store, _ := racyEpochRecords(t, l, epoch, addrs...)
		e1 := serial.BuildCheckList(recs)
		e2 := sharded.BuildCheckList(recs)
		return serial.Compare(e1, StoreSource{store}, epoch),
			shardAndFold(sharded, l, e2, StoreSource{store}, 4, epoch)
	}

	// Epoch 0 clean, epoch 1 racy, epoch 2 suppressed.
	for ep, addrs := range [][]mem.Addr{
		{l.PageBase(0), l.PageBase(1)},
		{l.PageBase(2), l.PageBase(2)},
		{l.PageBase(3), l.PageBase(3)},
	} {
		r1, r2 := run(int32(ep), addrs...)
		if len(r1) != len(r2) {
			t.Fatalf("epoch %d: serial %v vs sharded %v", ep, r1, r2)
		}
	}
	if serial.Stats() != sharded.Stats() {
		t.Errorf("stats diverged: %+v vs %+v", serial.Stats(), sharded.Stats())
	}
	if serial.Stats().SuppressedReports == 0 {
		t.Error("scenario exercised no suppression")
	}
}
