package race

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestExportedSymbolsDocumented enforces the package's documentation
// contract locally (CI additionally runs revive's exported rule): every
// exported type, function, method, and const/var group in the package has a
// doc comment. The paper-citation convention (§5 check list, §6.4 first
// races, §6.5 diff-derived writes) is spot-checked by name.
func TestExportedSymbolsDocumented(t *testing.T) {
	fset := token.NewFileSet()
	files, err := filepath.Glob("*.go")
	if err != nil {
		t.Fatal(err)
	}
	var missing []string
	for _, path := range files {
		if strings.HasSuffix(path, "_test.go") {
			continue
		}
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		f, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Name.IsExported() && d.Doc == nil {
					missing = append(missing, path+": func "+d.Name.Name)
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					switch s := spec.(type) {
					case *ast.TypeSpec:
						if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
							missing = append(missing, path+": type "+s.Name.Name)
						}
					case *ast.ValueSpec:
						for _, n := range s.Names {
							if n.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
								missing = append(missing, path+": "+n.Name)
							}
						}
					}
				}
			}
		}
	}
	for _, m := range missing {
		t.Errorf("exported symbol without doc comment: %s", m)
	}

	// Spot-check that the load-bearing symbols cite their paper sections.
	cites := map[string]string{
		"race.go":  "§6.4", // Options.FirstOnly / filterFirst
		"shard.go": "§5",   // CompareShard
	}
	for path, want := range cites {
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(src), want) {
			t.Errorf("%s: expected a %s paper citation in its doc comments", path, want)
		}
	}
}
