package race

import (
	"sort"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/vc"
)

// Distributed check-list build (Config.BarrierTree).
//
// Under the combining-tree barrier, steps 2–3 of the detection procedure —
// the concurrent-interval search and page-notice intersection that the
// serial path runs entirely at the barrier master — are partitioned across
// the interior tree nodes. Each node merges the interval records of its
// direct contributions (its own arrival plus one pre-merged subtree per
// child) and examines exactly the pairs that SPAN two contributions: a
// cross-process pair is cross-contribution at precisely one node, the
// lowest common ancestor of the two processes' leaves, so summed over the
// whole tree the examined pairs are exactly the cross-process pairs the
// serial BuildCheckList examines, each once. The per-node partial check
// lists and work counters ride up the tree on TreeReduce messages; the
// root folds them (Detector.FoldCheckLists) into the detector, restoring
// the canonical order — leaving the check list and race.Stats
// byte-identical to the serial oracle's.

// BuildStats counts the interval-pair search work of one partial
// check-list build — the per-node slice of the Stats counters the serial
// BuildCheckList accumulates directly. The remaining epoch-level
// aggregates (intervals involved, check entries) depend on the merged
// result and are derived at the root by FoldCheckLists.
type BuildStats struct {
	PairComparisons  int64
	ConcurrentPairs  int64
	OverlappingPairs int64
	NoticesScanned   int64
}

// Add accumulates o into s.
func (s *BuildStats) Add(o BuildStats) {
	s.PairComparisons += o.PairComparisons
	s.ConcurrentPairs += o.ConcurrentPairs
	s.OverlappingPairs += o.OverlappingPairs
	s.NoticesScanned += o.NoticesScanned
}

// BuildPartialCheckList runs steps 2–3 of §5 over the cross-group interval
// pairs of one combining-tree node. groups are the node's direct
// contributions; pairs within a single group are never examined here (they
// were already examined at a descendant, or — for same-process pairs — are
// ordered by program order and never examined at all). All the records of
// one process must arrive in the same group, which the barrier guarantees:
// a process's epoch records travel together and subtree merges keep them
// together.
//
// The function is stateless — callable at any process, not just one
// holding a Detector — and allocates its own scratch bitmaps when
// opts.PageBitmapOverlap is set (opts.NumPages must then be positive).
// Entry orientation matches the serial build: A is the interval that sorts
// first by (process, index).
func BuildPartialCheckList(opts Options, groups [][]*interval.Record) ([]CheckEntry, BuildStats) {
	var st BuildStats
	var entries []CheckEntry
	var scratchA, scratchB mem.Bitmap
	if opts.PageBitmapOverlap {
		if opts.NumPages <= 0 {
			panic("race: BuildPartialCheckList: PageBitmapOverlap requires NumPages")
		}
		scratchA = mem.NewBitmap(opts.NumPages)
		scratchB = mem.NewBitmap(opts.NumPages)
	}
	examine := func(a, b *interval.Record) {
		if lessID(b.ID, a.ID) {
			a, b = b, a
		}
		st.ConcurrentPairs++
		st.NoticesScanned += int64(len(a.WriteNotices) + len(a.ReadNotices) +
			len(b.WriteNotices) + len(b.ReadNotices))
		var pages []mem.PageID
		if opts.PageBitmapOverlap {
			pages = overlapViaBitmaps(scratchA, scratchB, a, b)
		} else {
			pages = overlapViaMerge(a, b)
		}
		if len(pages) == 0 {
			return
		}
		st.OverlappingPairs++
		for _, p := range pages {
			entries = append(entries, CheckEntry{A: a.ID, B: b.ID, Page: p})
		}
	}
	if opts.PrunedPairs {
		st.PairComparisons = prunedCrossGroups(groups, examine)
	} else {
		allPairsCrossGroups(groups, &st, examine)
	}
	return entries, st
}

// allPairsCrossGroups is the "very simple" all-pairs scan restricted to
// cross-group pairs: every cross-process pair spanning two groups is
// version-vector-compared (and counted) exactly once.
func allPairsCrossGroups(groups [][]*interval.Record, st *BuildStats, examine func(a, b *interval.Record)) {
	for gi := 0; gi < len(groups); gi++ {
		for gj := gi + 1; gj < len(groups); gj++ {
			for _, a := range groups[gi] {
				for _, b := range groups[gj] {
					if a.ID.Proc == b.ID.Proc {
						continue // totally ordered by program order
					}
					st.PairComparisons++
					if !vc.Concurrent(a.ID, a.VC, b.ID, b.VC) {
						continue
					}
					examine(a, b)
				}
			}
		}
	}
}

// prunedCrossGroups is the PrunedPairs variant: the serial pruned scan
// decomposes into independent per-process-pair scans, so running the same
// scan for exactly the process pairs that span two groups compares (and
// counts) the same candidates the serial scan does for those pairs.
func prunedCrossGroups(groups [][]*interval.Record, examine func(a, b *interval.Record)) int64 {
	byProc := map[int][]*interval.Record{}
	groupOf := map[int]int{}
	for gi, g := range groups {
		for _, r := range g {
			byProc[r.ID.Proc] = append(byProc[r.ID.Proc], r)
			groupOf[r.ID.Proc] = gi
		}
	}
	var procs []int
	for p := range byProc {
		sort.Slice(byProc[p], func(i, j int) bool { return byProc[p][i].ID.Index < byProc[p][j].ID.Index })
		procs = append(procs, p)
	}
	sort.Ints(procs)
	var compared int64
	for pi := 0; pi < len(procs); pi++ {
		for qi := pi + 1; qi < len(procs); qi++ {
			p, q := procs[pi], procs[qi]
			if groupOf[p] == groupOf[q] {
				continue
			}
			compared += int64(prunedProcPair(byProc[p], byProc[q], p, q, examine))
		}
	}
	return compared
}

// FoldCheckLists folds a combining tree's merged build output into the
// detector at the root: it accumulates the distributed build's work
// counters into Stats, derives the epoch-level aggregates (intervals
// involved, check entries) from the merged entries, and restores the
// canonical serial order — leaving the detector's Stats and the returned
// check list byte-identical to a serial BuildCheckList over the epoch's
// full record set. nrecords is that full record count.
func (d *Detector) FoldCheckLists(nrecords int, entries []CheckEntry, bst BuildStats) []CheckEntry {
	d.stats.Epochs++
	d.stats.IntervalsTotal += nrecords
	d.stats.PairComparisons += int(bst.PairComparisons)
	d.stats.ConcurrentPairs += int(bst.ConcurrentPairs)
	d.stats.OverlappingPairs += int(bst.OverlappingPairs)
	d.stats.NoticesScanned += int(bst.NoticesScanned)
	involved := make(map[vc.IntervalID]bool)
	for _, e := range entries {
		involved[e.A] = true
		involved[e.B] = true
	}
	d.stats.IntervalsInvolved += len(involved)
	d.stats.CheckEntries += len(entries)
	sortCheckEntries(entries)
	return entries
}
