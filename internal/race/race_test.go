package race

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/vc"
)

func testLayout(t *testing.T) mem.Layout {
	t.Helper()
	l, err := mem.NewLayout(16*mem.DefaultPageSize, mem.DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// build constructs an interval record plus bitmaps from explicit accesses.
func build(l mem.Layout, store *interval.BitmapStore, id vc.IntervalID, v vc.VC, epoch int32, reads, writes []mem.Addr) *interval.Record {
	b := interval.NewBuilder(l)
	for _, a := range reads {
		b.NoteRead(a)
	}
	for _, a := range writes {
		b.NoteWrite(a)
	}
	return b.Finish(id, v, epoch, store)
}

// TestFigure2Scenario reproduces the paper's Figure 2: P1 writes x in σ1^1
// (before its release) and writes y in σ1^2; P2 acquires (seeing σ1^1) and
// writes in σ2^2. If P1's second write is to the same page as P2's write,
// the pair σ1^2–σ2^2 is concurrent with page overlap; whether it is a race
// depends on the words.
func TestFigure2Scenario(t *testing.T) {
	l := testLayout(t)
	x := l.PageBase(0)                  // variable x on page 0
	y := l.PageBase(0) + 8*mem.WordSize // y: same page, different word
	z := l.PageBase(3)                  // z: different page

	mk := func(secondWrite mem.Addr, p2Write mem.Addr) ([]*interval.Record, *interval.BitmapStore) {
		store := interval.NewBitmapStore()
		// P1 = proc 0: σ0^1 writes x, σ0^2 writes secondWrite.
		r11 := build(l, store, vc.IntervalID{Proc: 0, Index: 1}, vc.VC{1, 0}, 0, nil, []mem.Addr{x})
		r12 := build(l, store, vc.IntervalID{Proc: 0, Index: 2}, vc.VC{2, 0}, 0, nil, []mem.Addr{secondWrite})
		// P2 = proc 1: σ1^2 begins with the acquire matching P1's release,
		// so its vector has seen σ0^1 but not σ0^2.
		r22 := build(l, store, vc.IntervalID{Proc: 1, Index: 2}, vc.VC{1, 2}, 0, nil, []mem.Addr{p2Write})
		return []*interval.Record{r11, r12, r22}, store
	}

	t.Run("same word is a race", func(t *testing.T) {
		recs, store := mk(y, y)
		d := NewDetector(l, Options{})
		entries := d.BuildCheckList(recs)
		if len(entries) != 1 {
			t.Fatalf("check list = %v, want one entry", entries)
		}
		reports := d.Compare(entries, StoreSource{store}, 0)
		if len(reports) != 1 {
			t.Fatalf("reports = %v, want one WW race", reports)
		}
		if !reports[0].WriteWrite() || reports[0].Addr != y {
			t.Errorf("report = %+v", reports[0])
		}
	})

	t.Run("different words on same page is false sharing", func(t *testing.T) {
		recs, store := mk(y, x)
		// P2 writing x races with σ0^1's write of x? No: σ0^1 ≺ σ1^2.
		// σ0^2 wrote y, σ1^2 wrote x — same page, different words.
		d := NewDetector(l, Options{})
		entries := d.BuildCheckList(recs)
		if len(entries) != 1 {
			t.Fatalf("check list = %v, want one entry (page overlap exists)", entries)
		}
		if reports := d.Compare(entries, StoreSource{store}, 0); len(reports) != 0 {
			t.Errorf("false sharing reported as race: %v", reports)
		}
	})

	t.Run("different pages need no bitmap comparison", func(t *testing.T) {
		recs, store := mk(z, y)
		d := NewDetector(l, Options{})
		entries := d.BuildCheckList(recs)
		if len(entries) != 0 {
			t.Fatalf("check list = %v, want empty (no page overlap)", entries)
		}
		if d.Stats().ConcurrentPairs == 0 {
			t.Error("concurrent pair not found")
		}
		if reports := d.Compare(entries, StoreSource{store}, 0); len(reports) != 0 {
			t.Errorf("unexpected reports: %v", reports)
		}
		_ = store
	})
}

// TestOrderedPairNotChecked: a release/acquire-ordered pair must be skipped
// even if both touch the same word.
func TestOrderedPairNotChecked(t *testing.T) {
	l := testLayout(t)
	store := interval.NewBitmapStore()
	x := l.PageBase(1)
	a := build(l, store, vc.IntervalID{Proc: 0, Index: 1}, vc.VC{1, 0}, 0, nil, []mem.Addr{x})
	// Proc 1's interval has seen σ0^1.
	b := build(l, store, vc.IntervalID{Proc: 1, Index: 1}, vc.VC{1, 1}, 0, nil, []mem.Addr{x})
	d := NewDetector(l, Options{})
	entries := d.BuildCheckList([]*interval.Record{a, b})
	if len(entries) != 0 {
		t.Errorf("ordered pair produced check entries: %v", entries)
	}
}

// TestReadWriteRace: unsynchronized read vs write (the TSP pattern).
func TestReadWriteRace(t *testing.T) {
	l := testLayout(t)
	store := interval.NewBitmapStore()
	bound := l.PageBase(2) + 40
	w := build(l, store, vc.IntervalID{Proc: 0, Index: 1}, vc.VC{1, 0}, 0, nil, []mem.Addr{bound})
	r := build(l, store, vc.IntervalID{Proc: 1, Index: 1}, vc.VC{0, 1}, 0, []mem.Addr{bound}, nil)
	d := NewDetector(l, Options{})
	entries := d.BuildCheckList([]*interval.Record{w, r})
	reports := d.Compare(entries, StoreSource{store}, 0)
	if len(reports) != 1 {
		t.Fatalf("reports = %v, want one", reports)
	}
	rep := reports[0]
	if rep.WriteWrite() {
		t.Error("read-write race classified as write-write")
	}
	if rep.Addr != bound {
		t.Errorf("addr = %#x, want %#x", rep.Addr, bound)
	}
}

// TestSameProcessNeverRaces: intervals of one process are program-ordered.
func TestSameProcessNeverRaces(t *testing.T) {
	l := testLayout(t)
	store := interval.NewBitmapStore()
	x := l.PageBase(0)
	a := build(l, store, vc.IntervalID{Proc: 0, Index: 1}, vc.VC{1, 0}, 0, nil, []mem.Addr{x})
	b := build(l, store, vc.IntervalID{Proc: 0, Index: 2}, vc.VC{2, 0}, 0, nil, []mem.Addr{x})
	d := NewDetector(l, Options{})
	if entries := d.BuildCheckList([]*interval.Record{a, b}); len(entries) != 0 {
		t.Errorf("same-process intervals on check list: %v", entries)
	}
	if d.Stats().PairComparisons != 0 {
		t.Error("same-process pair consumed a vector comparison")
	}
}

// TestFirstRaceFiltering (§6.4): races in epochs after the earliest racy
// epoch are suppressed; races in the same epoch are all reported.
func TestFirstRaceFiltering(t *testing.T) {
	l := testLayout(t)
	d := NewDetector(l, Options{FirstOnly: true})

	epochRecords := func(epoch int32, addrs ...mem.Addr) ([]*interval.Record, *interval.BitmapStore) {
		store := interval.NewBitmapStore()
		var recs []*interval.Record
		for i, a := range addrs {
			recs = append(recs, build(l, store,
				vc.IntervalID{Proc: i, Index: vc.Index(epoch*2 + 1)},
				func() vc.VC { v := vc.New(len(addrs)); v[i] = vc.Index(epoch*2 + 1); return v }(),
				epoch, nil, []mem.Addr{a}))
		}
		return recs, store
	}

	// Epoch 0: no race (different pages).
	recs, store := epochRecords(0, l.PageBase(0), l.PageBase(1))
	if got := d.Compare(d.BuildCheckList(recs), StoreSource{store}, 0); len(got) != 0 {
		t.Fatalf("epoch 0 races = %v", got)
	}
	// Epoch 1: two races — both reported (same epoch ⇒ both "first").
	recs, store = epochRecords(1, l.PageBase(2), l.PageBase(2))
	got := d.Compare(d.BuildCheckList(recs), StoreSource{store}, 1)
	if len(got) != 1 {
		t.Fatalf("epoch 1 races = %v, want 1", got)
	}
	// Epoch 2: race suppressed.
	recs, store = epochRecords(2, l.PageBase(3), l.PageBase(3))
	got = d.Compare(d.BuildCheckList(recs), StoreSource{store}, 2)
	if len(got) != 0 {
		t.Errorf("epoch 2 races not suppressed: %v", got)
	}
	if d.Stats().SuppressedReports == 0 {
		t.Error("suppression not counted")
	}
}

func TestDedupByAddr(t *testing.T) {
	l := testLayout(t)
	mk := func(addr mem.Addr, ww bool) Report {
		k := Read
		if ww {
			k = Write
		}
		return Report{Addr: addr, Page: l.Page(addr), Word: l.WordInPage(addr),
			A: Endpoint{Kind: Write}, B: Endpoint{Kind: k}}
	}
	in := []Report{mk(8, true), mk(8, true), mk(8, false), mk(16, true)}
	out := DedupByAddr(in)
	if len(out) != 3 {
		t.Errorf("dedup kept %d, want 3 (%v)", len(out), out)
	}
}

func TestReportString(t *testing.T) {
	r := Report{Addr: 0x40, Page: 0, Word: 8, Epoch: 2,
		A: Endpoint{vc.IntervalID{Proc: 0, Index: 1}, Write},
		B: Endpoint{vc.IntervalID{Proc: 1, Index: 1}, Write}}
	s := r.String()
	if s == "" || r.A.Kind.String() != "write" || (Read).String() != "read" {
		t.Errorf("String rendering broken: %q", s)
	}
}

// randomEpoch builds a random single-epoch workload and returns records,
// store and the set of true races computed by brute force over all access
// pairs using the happens-before relation directly.
func randomEpoch(r *rand.Rand, l mem.Layout) ([]*interval.Record, *interval.BitmapStore, map[[2]mem.Addr]bool) {
	nproc := 2 + r.Intn(3)
	type access struct {
		id   vc.IntervalID
		v    vc.VC
		addr mem.Addr
		wr   bool
	}
	var accesses []access
	store := interval.NewBitmapStore()
	var recs []*interval.Record

	// Chain of vcs: each process has 1-2 intervals; random acquire edges.
	cur := make([]vc.VC, nproc)
	idx := make([]vc.Index, nproc)
	for p := range cur {
		cur[p] = vc.New(nproc)
	}
	for p := 0; p < nproc; p++ {
		k := 1 + r.Intn(2)
		for i := 0; i < k; i++ {
			if r.Intn(2) == 0 {
				cur[p].Merge(cur[r.Intn(nproc)])
			}
			idx[p]++
			cur[p][p] = idx[p]
			id := vc.IntervalID{Proc: p, Index: idx[p]}
			na := 1 + r.Intn(3)
			b := interval.NewBuilder(l)
			var myAccesses []access
			for a := 0; a < na; a++ {
				addr := mem.Addr(r.Intn(4*l.WordsPerPage())) * mem.WordSize
				wr := r.Intn(2) == 0
				if wr {
					b.NoteWrite(addr)
				} else {
					b.NoteRead(addr)
				}
				myAccesses = append(myAccesses, access{id, cur[p].Copy(), addr, wr})
			}
			recs = append(recs, b.Finish(id, cur[p], 0, store))
			accesses = append(accesses, myAccesses...)
		}
	}
	want := make(map[[2]mem.Addr]bool)
	for i := 0; i < len(accesses); i++ {
		for j := i + 1; j < len(accesses); j++ {
			a, b := accesses[i], accesses[j]
			if a.addr != b.addr || (!a.wr && !b.wr) || a.id.Proc == b.id.Proc {
				continue
			}
			if vc.Concurrent(a.id, a.v, b.id, b.v) {
				want[[2]mem.Addr{a.addr, a.addr}] = true
			}
		}
	}
	return recs, store, want
}

// TestPropertyDetectorMatchesBruteForce: the detector finds exactly the
// races a brute-force all-pairs happens-before check finds (by address).
func TestPropertyDetectorMatchesBruteForce(t *testing.T) {
	l := testLayout(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs, store, want := randomEpoch(r, l)
		d := NewDetector(l, Options{})
		reports := d.Compare(d.BuildCheckList(recs), StoreSource{store}, 0)
		got := make(map[[2]mem.Addr]bool)
		for _, rep := range reports {
			got[[2]mem.Addr{rep.Addr, rep.Addr}] = true
		}
		if len(got) != len(want) {
			return false
		}
		for k := range want {
			if !got[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPropertyPageBitmapOverlapEquivalent: §6.2 bitmap page lists produce
// identical check lists and races to the sorted-list merge.
func TestPropertyPageBitmapOverlapEquivalent(t *testing.T) {
	l := testLayout(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs, store, _ := randomEpoch(r, l)
		d1 := NewDetector(l, Options{})
		d2 := NewDetector(l, Options{PageBitmapOverlap: true})
		e1 := d1.BuildCheckList(recs)
		e2 := d2.BuildCheckList(recs)
		if len(e1) != len(e2) {
			return false
		}
		for i := range e1 {
			if e1[i] != e2[i] {
				return false
			}
		}
		r1 := d1.Compare(e1, StoreSource{store}, 0)
		r2 := d2.Compare(e2, StoreSource{store}, 0)
		return len(r1) == len(r2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// canonicalEntries normalizes check-list orientation for comparison.
func canonicalEntries(es []CheckEntry) map[CheckEntry]bool {
	out := make(map[CheckEntry]bool, len(es))
	for _, e := range es {
		if lessID(e.B, e.A) {
			e.A, e.B = e.B, e.A
		}
		out[e] = true
	}
	return out
}

// TestPropertyPrunedPairsEquivalent: the index-pruned scan finds exactly
// the same check list as the all-pairs scan, with no more comparisons.
func TestPropertyPrunedPairsEquivalent(t *testing.T) {
	l := testLayout(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		recs, _, _ := randomEpoch(r, l)
		d1 := NewDetector(l, Options{})
		d2 := NewDetector(l, Options{PrunedPairs: true})
		e1 := canonicalEntries(d1.BuildCheckList(recs))
		e2 := canonicalEntries(d2.BuildCheckList(recs))
		if len(e1) != len(e2) {
			return false
		}
		for k := range e1 {
			if !e2[k] {
				return false
			}
		}
		// Pruning must not examine more pairs than the naive scan, and the
		// concurrent-pair counts must agree exactly.
		return d2.Stats().PairComparisons <= d1.Stats().PairComparisons &&
			d2.Stats().ConcurrentPairs == d1.Stats().ConcurrentPairs &&
			d2.Stats().OverlappingPairs == d1.Stats().OverlappingPairs
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestPrunedPairsSkipsOrderedChains: a fully lock-ordered epoch needs zero
// comparisons under pruning (every pair's ordered prefix covers it).
func TestPrunedPairsSkipsOrderedChains(t *testing.T) {
	l := testLayout(t)
	// A chain: σ0^1 ≺ σ1^1 ≺ σ2^1 (each sees all previous).
	recs := []*interval.Record{
		{ID: vc.IntervalID{Proc: 0, Index: 1}, VC: vc.VC{1, 0, 0}},
		{ID: vc.IntervalID{Proc: 1, Index: 1}, VC: vc.VC{1, 1, 0}},
		{ID: vc.IntervalID{Proc: 2, Index: 1}, VC: vc.VC{1, 1, 1}},
	}
	naive := NewDetector(l, Options{})
	naive.BuildCheckList(recs)
	pruned := NewDetector(l, Options{PrunedPairs: true})
	pruned.BuildCheckList(recs)
	if naive.Stats().PairComparisons != 3 {
		t.Errorf("naive comparisons = %d, want 3", naive.Stats().PairComparisons)
	}
	if pruned.Stats().PairComparisons != 0 {
		t.Errorf("pruned comparisons = %d, want 0 (all pairs chain-ordered)", pruned.Stats().PairComparisons)
	}
}

// TestExplain covers the derivation renderer and report retention.
func TestExplain(t *testing.T) {
	l := testLayout(t)
	store := interval.NewBitmapStore()
	x := l.PageBase(2)
	a := build(l, store, vc.IntervalID{Proc: 0, Index: 3}, vc.VC{3, 0}, 0, nil, []mem.Addr{x})
	b := build(l, store, vc.IntervalID{Proc: 1, Index: 2}, vc.VC{1, 2}, 0, []mem.Addr{x}, nil)

	text := Explain(a, b)
	for _, want := range []string{"⇒ concurrent", "page 2", "vc(σ1^2)[P0] = 1 < 3", "vc(σ0^3)[P1] = 0 < 2"} {
		if !strings.Contains(text, want) {
			t.Errorf("Explain missing %q:\n%s", want, text)
		}
	}

	// Ordered pair explains the chain.
	c := build(l, store, vc.IntervalID{Proc: 1, Index: 4}, vc.VC{3, 4}, 0, nil, []mem.Addr{x})
	if text := Explain(a, c); !strings.Contains(text, "⇒ ordered") ||
		!strings.Contains(text, "the acquire chain carried it") {
		t.Errorf("ordered Explain wrong:\n%s", text)
	}

	// Same process.
	d0 := build(l, store, vc.IntervalID{Proc: 0, Index: 4}, vc.VC{4, 0}, 0, nil, []mem.Addr{x})
	if text := Explain(a, d0); !strings.Contains(text, "program order") {
		t.Errorf("same-process Explain wrong:\n%s", text)
	}

	// Full detector path: Compare then Retain then ExplainReport.
	det := NewDetector(l, Options{})
	entries := det.BuildCheckList([]*interval.Record{a, b})
	reports := det.Compare(entries, StoreSource{store}, 0)
	if len(reports) != 1 {
		t.Fatalf("reports = %v", reports)
	}
	if _, ok := det.ExplainReport(reports[0]); ok {
		t.Error("explanation available before Retain")
	}
	det.Retain(reports, []*interval.Record{a, b})
	text2, ok := det.ExplainReport(reports[0])
	if !ok || !strings.Contains(text2, "⇒ concurrent") {
		t.Errorf("ExplainReport = %q, %v", text2, ok)
	}
	if _, ok := det.ExplainReport(Report{A: Endpoint{Interval: vc.IntervalID{Proc: 9, Index: 9}}}); ok {
		t.Error("unknown report explained")
	}
}
