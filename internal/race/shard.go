package race

import (
	"sort"

	"lrcrace/internal/mem"
)

// ShardStats counts the bitmap-comparison work performed on one shard of a
// check list. The shard owners ship these up the reduction tree alongside
// their reports so the master's Stats — and therefore the checkpointed
// race.State — match the serial detector's byte for byte.
type ShardStats struct {
	BitmapsCompared int // non-nil bitmaps fetched and compared (read+write)
	WordOverlaps    int // racing words found (before dedup)
}

// CompareShard runs step 5 of the detection procedure — the word-granularity
// bitmap comparison of §5 — over one slice of a check list. It is the
// stateless core of Detector.Compare, usable by shard-owning worker
// processes that hold no Detector: first-race filtering (§6.4) and stats
// accumulation stay at the master, which applies them when folding shard
// results (Detector.FoldShardResults).
//
// Reports are emitted in check-list order (entries ascending by interval
// pair then page, write/write before write/read before read/write within an
// entry, words ascending) — the same order Detector.Compare produces, so a
// canonical merge of shard outputs reproduces the serial report stream.
func CompareShard(layout mem.Layout, entries []CheckEntry, src BitmapSource, epoch int32) ([]Report, ShardStats) {
	var reports []Report
	var st ShardStats
	for _, e := range entries {
		ra, wa := src.Bitmaps(e.A, e.Page)
		rb, wb := src.Bitmaps(e.B, e.Page)
		for _, bm := range []mem.Bitmap{ra, wa, rb, wb} {
			if bm != nil {
				st.BitmapsCompared++
			}
		}
		add := func(x, y mem.Bitmap, kx, ky AccessKind) {
			if x == nil || y == nil {
				return
			}
			for _, w := range x.Overlap(y, nil) {
				st.WordOverlaps++
				reports = append(reports, Report{
					Page:  e.Page,
					Word:  w,
					Addr:  layout.PageBase(e.Page) + mem.Addr(w*mem.WordSize),
					Epoch: epoch,
					A:     Endpoint{Interval: e.A, Kind: kx},
					B:     Endpoint{Interval: e.B, Kind: ky},
				})
			}
		}
		add(wa, wb, Write, Write)
		add(wa, rb, Write, Read)
		add(ra, wb, Read, Write)
	}
	return reports, st
}

// PartitionCheckList assigns each check entry to an owning process in
// [0, nprocs), keeping all entries of a page on the same owner (so each
// word-access bitmap travels to exactly one place) and balancing owners by
// entry count. The assignment is a deterministic longest-processing-time
// greedy: pages in descending entry count take the least-loaded owner, with
// ties broken toward the lower page then the lower process — every replica
// of the barrier master computes the identical partition, which keeps
// checkpoint replay and crash re-execution byte-stable.
//
// The entries slice must be non-empty and sorted as BuildCheckList returns
// it. The result is parallel to entries (owner[i] owns entries[i]).
func PartitionCheckList(entries []CheckEntry, nprocs int) []int32 {
	owner := make([]int32, len(entries))
	if nprocs <= 1 {
		return owner
	}
	count := make(map[mem.PageID]int, len(entries))
	for _, e := range entries {
		count[e.Page]++
	}
	pages := make([]mem.PageID, 0, len(count))
	for p := range count {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool {
		if count[pages[i]] != count[pages[j]] {
			return count[pages[i]] > count[pages[j]]
		}
		return pages[i] < pages[j]
	})
	load := make([]int, nprocs)
	assigned := make(map[mem.PageID]int32, len(pages))
	for _, p := range pages {
		best := 0
		for q := 1; q < nprocs; q++ {
			if load[q] < load[best] {
				best = q
			}
		}
		assigned[p] = int32(best)
		load[best] += count[p]
	}
	for i, e := range entries {
		owner[i] = assigned[e.Page]
	}
	return owner
}

// kindRank orders a report's (A, B) access-kind pair the way
// Detector.Compare emits them for one check entry: write/write, then
// write/read, then read/write. (Read/read pairs are never reported — a race
// needs at least one write.)
func kindRank(r Report) int {
	switch {
	case r.A.Kind == Write && r.B.Kind == Write:
		return 0
	case r.A.Kind == Write:
		return 1
	default:
		return 2
	}
}

// SortReports sorts reports into the canonical order the serial detector
// emits them in: by interval pair (A then B, processes before indexes), then
// page, then write/write before write/read before read/write, then word.
// Merging shard outputs and sorting with SortReports reproduces
// Detector.Compare's output stream exactly; the cross-validation tests and
// checkpoint byte-stability both rely on this.
func SortReports(reports []Report) {
	sort.SliceStable(reports, func(i, j int) bool {
		a, b := reports[i], reports[j]
		if a.A.Interval != b.A.Interval {
			return lessID(a.A.Interval, b.A.Interval)
		}
		if a.B.Interval != b.B.Interval {
			return lessID(a.B.Interval, b.B.Interval)
		}
		if a.Page != b.Page {
			return a.Page < b.Page
		}
		if ra, rb := kindRank(a), kindRank(b); ra != rb {
			return ra < rb
		}
		return a.Word < b.Word
	})
}

// FoldShardResults merges the reduction tree's root result into the
// detector: it accumulates the shards' comparison work into Stats, restores
// the serial report order (SortReports), and applies §6.4 first-race
// filtering — leaving the detector in the exact state a serial
// Detector.Compare over the whole check list would have produced, so
// barrier-epoch checkpoints stay byte-identical across the two paths.
func (d *Detector) FoldShardResults(reports []Report, st ShardStats, epoch int32) []Report {
	d.stats.BitmapsCompared += st.BitmapsCompared
	d.stats.WordOverlaps += st.WordOverlaps
	SortReports(reports)
	return d.filterFirst(reports, epoch)
}
