package race

import (
	"fmt"
	"strings"

	"lrcrace/internal/interval"
	"lrcrace/internal/vc"
)

// Explain renders the concurrency derivation for two interval records: the
// two constant-time vector-timestamp tests that prove the pair unordered,
// plus the page overlap that put it on the check list. This is the
// human-readable form of the paper's happens-before-1 check.
func Explain(a, b *interval.Record) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v (vc %v) vs %v (vc %v):\n", a.ID, a.VC, b.ID, b.VC)
	if a.ID.Proc == b.ID.Proc {
		fmt.Fprintf(&sb, "  same process: ordered by program order (index %d vs %d)\n",
			uint32(a.ID.Index), uint32(b.ID.Index))
		return sb.String()
	}
	explainDir := func(x, y *interval.Record) {
		seen := y.VC[x.ID.Proc]
		if seen >= x.ID.Index {
			fmt.Fprintf(&sb, "  %v ≺ %v: vc(%v)[P%d] = %d ≥ %d (the acquire chain carried it)\n",
				x.ID, y.ID, y.ID, x.ID.Proc, uint32(seen), uint32(x.ID.Index))
		} else {
			fmt.Fprintf(&sb, "  %v ⊀ %v: vc(%v)[P%d] = %d < %d (no synchronization chain)\n",
				x.ID, y.ID, y.ID, x.ID.Proc, uint32(seen), uint32(x.ID.Index))
		}
	}
	explainDir(a, b)
	explainDir(b, a)
	if vc.Concurrent(a.ID, a.VC, b.ID, b.VC) {
		fmt.Fprintf(&sb, "  ⇒ concurrent\n")
		var pages []string
		for _, p := range interval.OverlapPages(a.WriteNotices, b.WriteNotices, nil) {
			pages = append(pages, fmt.Sprintf("page %d (write/write)", p))
		}
		for _, p := range interval.OverlapPages(a.WriteNotices, b.ReadNotices, nil) {
			pages = append(pages, fmt.Sprintf("page %d (write/read)", p))
		}
		for _, p := range interval.OverlapPages(a.ReadNotices, b.WriteNotices, nil) {
			pages = append(pages, fmt.Sprintf("page %d (read/write)", p))
		}
		if len(pages) > 0 {
			fmt.Fprintf(&sb, "  overlapping pages: %s\n", strings.Join(pages, ", "))
		}
	} else {
		fmt.Fprintf(&sb, "  ⇒ ordered\n")
	}
	return sb.String()
}

// Retain keeps the records referenced by reports so that races can be
// explained (ExplainReport) after the epoch's other metadata is discarded.
// The barrier master calls it right after Compare with the epoch's records.
func (d *Detector) Retain(reports []Report, records []*interval.Record) {
	if len(reports) == 0 {
		return
	}
	if d.racyRecords == nil {
		d.racyRecords = make(map[vc.IntervalID]*interval.Record)
	}
	wanted := map[vc.IntervalID]bool{}
	for _, r := range reports {
		wanted[r.A.Interval] = true
		wanted[r.B.Interval] = true
	}
	for _, rec := range records {
		if wanted[rec.ID] {
			d.racyRecords[rec.ID] = rec.Clone()
		}
	}
}

// ExplainReport reconstructs the derivation behind a race report, using the
// interval records retained at detection time. ok is false if the report's
// intervals are unknown (e.g. it came from a different detector).
func (d *Detector) ExplainReport(r Report) (string, bool) {
	a := d.racyRecords[r.A.Interval]
	b := d.racyRecords[r.B.Interval]
	if a == nil || b == nil {
		return "", false
	}
	return fmt.Sprintf("%s (%s in %v, %s in %v at 0x%x)\n%s",
		r.String(), r.A.Kind, r.A.Interval, r.B.Kind, r.B.Interval, uint64(r.Addr),
		Explain(a, b)), true
}
