package race

import (
	"sort"

	"lrcrace/internal/interval"
	"lrcrace/internal/vc"
)

// State is the checkpointable portion of a Detector: the accumulated work
// statistics, the first-racy-epoch marker behind §6.4 first-race
// filtering, and the retained racy interval records ExplainReport needs.
// The barrier master serializes it into its barrier-epoch checkpoint so a
// coordinated rollback resumes detection exactly where the crash-free run
// would have been.
type State struct {
	Stats          Stats
	FirstRacyEpoch int32
	// RacyRecords is sorted by (proc, index) so serialization is
	// byte-stable.
	RacyRecords []*interval.Record
}

// SnapshotState returns a deep copy of the detector's mutable state.
func (d *Detector) SnapshotState() State {
	s := State{Stats: d.stats, FirstRacyEpoch: d.firstRacyEpoch}
	for _, r := range d.racyRecords {
		s.RacyRecords = append(s.RacyRecords, r.Clone())
	}
	sort.Slice(s.RacyRecords, func(i, j int) bool {
		if s.RacyRecords[i].ID.Proc != s.RacyRecords[j].ID.Proc {
			return s.RacyRecords[i].ID.Proc < s.RacyRecords[j].ID.Proc
		}
		return s.RacyRecords[i].ID.Index < s.RacyRecords[j].ID.Index
	})
	return s
}

// RestoreState overwrites the detector's mutable state from a snapshot
// (the checkpoint-restore inverse of SnapshotState).
func (d *Detector) RestoreState(s State) {
	d.stats = s.Stats
	d.firstRacyEpoch = s.FirstRacyEpoch
	d.racyRecords = nil
	if len(s.RacyRecords) > 0 {
		d.racyRecords = make(map[vc.IntervalID]*interval.Record, len(s.RacyRecords))
		for _, r := range s.RacyRecords {
			d.racyRecords[r.ID] = r.Clone()
		}
	}
}
