package instr

import (
	"fmt"
	"math/rand"
)

// Profile gives the per-category load/store budget of one application
// binary. The budgets for the four benchmark applications are taken from
// the paper's Table 2 — they are properties of the original Alpha
// executables, which we cannot rebuild — while the classification itself is
// performed for real by Classify over the generated instruction stream.
// (See DESIGN.md, substitution table.)
type Profile struct {
	App     string
	Stack   int
	Static  int
	Library int
	CVM     int
	Dynamic int // instructions whose base is computed → instrumented
}

// PaperProfiles are the Table 2 budgets of the four applications.
var PaperProfiles = map[string]Profile{
	"FFT":   {App: "FFT", Stack: 1285, Static: 1496, Library: 124716, CVM: 3910, Dynamic: 261},
	"SOR":   {App: "SOR", Stack: 342, Static: 1304, Library: 48717, CVM: 3910, Dynamic: 126},
	"TSP":   {App: "TSP", Stack: 244, Static: 1213, Library: 48717, CVM: 3910, Dynamic: 350},
	"Water": {App: "Water", Stack: 649, Static: 1919, Library: 124716, CVM: 3910, Dynamic: 528},
}

// Synthesize builds a deterministic instruction-stream binary realizing the
// profile: application functions with interleaved stack/static/dynamic
// accesses, plus library and CVM code regions. The same profile always
// yields the same binary.
func Synthesize(p Profile) *Binary {
	r := rand.New(rand.NewSource(seedFor(p.App)))
	b := &Binary{Name: p.App}

	// Application code: spread the app-region instructions over functions
	// of 20–120 instructions with the three base classes shuffled together,
	// the way compiled code mixes them.
	appInstrs := make([]Instr, 0, p.Stack+p.Static+p.Dynamic)
	for i := 0; i < p.Stack; i++ {
		appInstrs = append(appInstrs, Instr{Kind: kindFor(r), Base: BaseFP})
	}
	for i := 0; i < p.Static; i++ {
		appInstrs = append(appInstrs, Instr{Kind: kindFor(r), Base: BaseGP})
	}
	for i := 0; i < p.Dynamic; i++ {
		appInstrs = append(appInstrs, Instr{Kind: kindFor(r), Base: BaseDyn})
	}
	r.Shuffle(len(appInstrs), func(i, j int) {
		appInstrs[i], appInstrs[j] = appInstrs[j], appInstrs[i]
	})
	for fi := 0; len(appInstrs) > 0; fi++ {
		n := 20 + r.Intn(101)
		if n > len(appInstrs) {
			n = len(appInstrs)
		}
		b.Funcs = append(b.Funcs, Func{
			Name:   fmt.Sprintf("%s_fn%d", p.App, fi),
			Region: RegionApp,
			Instrs: appInstrs[:n:n],
		})
		appInstrs = appInstrs[n:]
	}

	// Library and CVM regions: base classes are irrelevant there (the
	// classifier skips whole regions), but populate realistically anyway.
	emitRegion := func(region Region, name string, total int) {
		for fi := 0; total > 0; fi++ {
			n := 50 + r.Intn(301)
			if n > total {
				n = total
			}
			ins := make([]Instr, n)
			for i := range ins {
				base := BaseDyn
				switch r.Intn(3) {
				case 0:
					base = BaseFP
				case 1:
					base = BaseGP
				}
				ins[i] = Instr{Kind: kindFor(r), Base: base}
			}
			b.Funcs = append(b.Funcs, Func{
				Name:   fmt.Sprintf("%s%d", name, fi),
				Region: region,
				Instrs: ins,
			})
			total -= n
		}
	}
	emitRegion(RegionLibrary, "lib_", p.Library)
	emitRegion(RegionCVM, "cvm_", p.CVM)
	return b
}

// kindFor draws a load or store with the paper's ~3:1 load:store ratio
// ("approximately 25% of all data accesses are stores").
func kindFor(r *rand.Rand) Kind {
	if r.Intn(4) == 0 {
		return Store
	}
	return Load
}

func seedFor(name string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range name {
		h ^= int64(c)
		h *= 1099511628211
	}
	return h
}
