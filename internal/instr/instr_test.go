package instr

import (
	"testing"
	"testing/quick"
)

func TestClassifyRules(t *testing.T) {
	b := &Binary{
		Name: "toy",
		Funcs: []Func{
			{Name: "main", Region: RegionApp, Instrs: []Instr{
				{Load, BaseFP}, {Store, BaseFP}, // stack
				{Load, BaseGP},                    // static
				{Load, BaseDyn}, {Store, BaseDyn}, // instrumented
			}},
			{Name: "memcpy", Region: RegionLibrary, Instrs: []Instr{
				{Load, BaseDyn}, {Store, BaseDyn}, {Load, BaseDyn},
			}},
			{Name: "cvm_fault", Region: RegionCVM, Instrs: []Instr{
				{Load, BaseDyn},
			}},
		},
	}
	s := Classify(b)
	if s.Stack != 2 || s.Static != 1 || s.Library != 3 || s.CVM != 1 || s.Instrumented != 2 {
		t.Errorf("Classify = %v", s)
	}
	if s.Total() != 9 || b.NumLoadsStores() != 9 {
		t.Errorf("totals: %d vs %d", s.Total(), b.NumLoadsStores())
	}
	want := 100 * 7.0 / 9.0
	if got := s.PercentEliminated(); got < want-0.01 || got > want+0.01 {
		t.Errorf("PercentEliminated = %f, want %f", got, want)
	}
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestClassifyEmpty(t *testing.T) {
	s := Classify(&Binary{Name: "empty"})
	if s.Total() != 0 || s.PercentEliminated() != 0 {
		t.Errorf("empty binary: %v", s)
	}
}

// TestSynthesizeMatchesProfile: the classifier applied to a synthesized
// binary recovers exactly the profile's per-category budgets (Table 2).
func TestSynthesizeMatchesProfile(t *testing.T) {
	for name, p := range PaperProfiles {
		b := Synthesize(p)
		s := Classify(b)
		if s.Stack != p.Stack || s.Static != p.Static || s.Library != p.Library ||
			s.CVM != p.CVM || s.Instrumented != p.Dynamic {
			t.Errorf("%s: classified %v, want profile %+v", name, s, p)
		}
		if s.PercentEliminated() <= 99.0 {
			t.Errorf("%s: only %.2f%% eliminated, paper reports >99%%", name, s.PercentEliminated())
		}
	}
}

// TestSynthesizeDeterministic: same profile, same binary.
func TestSynthesizeDeterministic(t *testing.T) {
	a := Synthesize(PaperProfiles["FFT"])
	b := Synthesize(PaperProfiles["FFT"])
	if len(a.Funcs) != len(b.Funcs) {
		t.Fatalf("func counts differ: %d vs %d", len(a.Funcs), len(b.Funcs))
	}
	for i := range a.Funcs {
		if a.Funcs[i].Name != b.Funcs[i].Name || len(a.Funcs[i].Instrs) != len(b.Funcs[i].Instrs) {
			t.Fatalf("func %d differs", i)
		}
		for j := range a.Funcs[i].Instrs {
			if a.Funcs[i].Instrs[j] != b.Funcs[i].Instrs[j] {
				t.Fatalf("instr %d/%d differs", i, j)
			}
		}
	}
}

// TestSynthesizeLoadStoreMix: stores should be roughly a quarter of
// accesses ("approximately 25% of all data accesses are stores").
func TestSynthesizeLoadStoreMix(t *testing.T) {
	b := Synthesize(PaperProfiles["FFT"])
	stores, total := 0, 0
	for _, f := range b.Funcs {
		for _, in := range f.Instrs {
			total++
			if in.Kind == Store {
				stores++
			}
		}
	}
	frac := float64(stores) / float64(total)
	if frac < 0.20 || frac > 0.30 {
		t.Errorf("store fraction = %.3f, want ≈0.25", frac)
	}
}

func TestChecker(t *testing.T) {
	c := &Checker{Lo: 1000, Hi: 2000}
	cases := []struct {
		addr uint64
		want bool
	}{
		{999, false}, {1000, true}, {1999, true}, {2000, false}, {0, false},
	}
	for _, cse := range cases {
		if got := c.Check(cse.addr); got != cse.want {
			t.Errorf("Check(%d) = %v, want %v", cse.addr, got, cse.want)
		}
	}
	if c.Shared != 2 || c.Private != 3 {
		t.Errorf("counters: shared=%d private=%d", c.Shared, c.Private)
	}
}

// Property: classification is a partition — every instruction lands in
// exactly one category.
func TestPropertyClassifyPartition(t *testing.T) {
	f := func(seed int64, nf uint8) bool {
		p := Profile{
			App:     "x",
			Stack:   int(uint8(seed)) % 50,
			Static:  int(uint8(seed>>8)) % 50,
			Library: int(uint8(seed>>16)) % 200,
			CVM:     int(uint8(seed>>24)) % 100,
			Dynamic: int(nf) % 50,
		}
		b := Synthesize(p)
		s := Classify(b)
		return s.Total() == b.NumLoadsStores() &&
			s.Stack == p.Stack && s.Static == p.Static &&
			s.Library == p.Library && s.CVM == p.CVM && s.Instrumented == p.Dynamic
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCheckerCheck(b *testing.B) {
	c := &Checker{Lo: 1 << 20, Hi: 1 << 24}
	for i := 0; i < b.N; i++ {
		c.Check(uint64(i) << 8)
	}
}
