// Package instr models the ATOM-based binary instrumentation of the paper:
// a static classifier that walks a binary's load/store instructions and
// eliminates the ones that cannot touch shared memory, and the runtime
// access check performed by the analysis routine for the remainder.
//
// The paper instruments DEC Alpha executables with ATOM; Go cannot rewrite
// its own binaries, so the repository substitutes a faithful model: each
// application carries a synthetic instruction-stream representation of its
// Alpha binary (functions tagged by code region, instructions tagged by
// addressing base), and the classifier applies exactly the paper's
// elimination rules:
//
//   - instructions in shared libraries are not instrumented (none of the
//     applications pass shared pointers to libraries);
//   - instructions in the CVM runtime itself are not instrumented;
//   - accesses through the frame pointer reference the stack — eliminated;
//   - accesses through the static-data base register reference statically
//     allocated globals — eliminated, because CVM allocates all shared
//     memory dynamically;
//   - everything else might reference shared memory and is instrumented
//     with a procedure call to the analysis routine.
//
// On average this statically eliminates over 99% of loads and stores
// (Table 2); the residual instrumented accesses are checked at run time
// against the shared-segment bounds (most turn out private — Table 3).
package instr

import "fmt"

// Region tags which part of the executable a function belongs to.
type Region uint8

const (
	RegionApp Region = iota
	RegionLibrary
	RegionCVM
)

// Base is the addressing-mode base register class of a load or store.
type Base uint8

const (
	// BaseFP: frame-pointer relative — a stack access.
	BaseFP Base = iota
	// BaseGP: global-pointer relative — statically allocated data.
	BaseGP
	// BaseDyn: computed address — could reference shared memory.
	BaseDyn
)

// Kind distinguishes loads from stores.
type Kind uint8

const (
	Load Kind = iota
	Store
)

// Instr is one memory-access instruction.
type Instr struct {
	Kind Kind
	Base Base
}

// Func is one routine of the binary.
type Func struct {
	Name   string
	Region Region
	Instrs []Instr
}

// Binary is the instruction-stream model of one executable.
type Binary struct {
	Name  string
	Funcs []Func
}

// NumLoadsStores returns the total number of memory-access instructions.
func (b *Binary) NumLoadsStores() int {
	n := 0
	for _, f := range b.Funcs {
		n += len(f.Instrs)
	}
	return n
}

// ClassifyStats breaks the binary's loads and stores into the categories of
// the paper's Table 2.
type ClassifyStats struct {
	Stack        int // eliminated: frame-pointer based
	Static       int // eliminated: static-data base register
	Library      int // eliminated: shared-library code
	CVM          int // eliminated: the DSM runtime itself
	Instrumented int // residual: instrumented with an analysis call
}

// Total returns the total loads and stores examined.
func (s ClassifyStats) Total() int {
	return s.Stack + s.Static + s.Library + s.CVM + s.Instrumented
}

// PercentEliminated returns the share of loads/stores statically removed
// from consideration as race participants.
func (s ClassifyStats) PercentEliminated() float64 {
	t := s.Total()
	if t == 0 {
		return 0
	}
	return 100 * float64(t-s.Instrumented) / float64(t)
}

func (s ClassifyStats) String() string {
	return fmt.Sprintf("stack=%d static=%d library=%d cvm=%d instrumented=%d (%.2f%% eliminated)",
		s.Stack, s.Static, s.Library, s.CVM, s.Instrumented, s.PercentEliminated())
}

// Classify applies the elimination rules to every load and store of b.
func Classify(b *Binary) ClassifyStats {
	var s ClassifyStats
	for _, f := range b.Funcs {
		switch f.Region {
		case RegionLibrary:
			s.Library += len(f.Instrs)
			continue
		case RegionCVM:
			s.CVM += len(f.Instrs)
			continue
		}
		for _, in := range f.Instrs {
			switch in.Base {
			case BaseFP:
				s.Stack++
			case BaseGP:
				s.Static++
			default:
				s.Instrumented++
			}
		}
	}
	return s
}

// Checker is the runtime analysis routine's core: a bounds check of the
// access address against the shared segment. It is deliberately the same
// comparison the paper describes ("accesses to shared data are
// distinguished from accesses to private data by comparing the address
// with that of the shared data segments").
type Checker struct {
	Lo, Hi  uint64 // shared segment [Lo, Hi)
	Shared  int64
	Private int64
}

// Check records one instrumented access and reports whether it was shared.
func (c *Checker) Check(addr uint64) bool {
	if addr >= c.Lo && addr < c.Hi {
		c.Shared++
		return true
	}
	c.Private++
	return false
}
