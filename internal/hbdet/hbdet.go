// Package hbdet is a classic on-the-fly happens-before race detector in the
// Djit+ style: per-process vector clocks, per-lock clocks, and per-location
// read vectors / last-write epochs, checked at every access.
//
// It plays the role of a reference comparator for the paper's detector: the
// LRC-metadata detector and this one consume the same execution (hbdet via
// an event trace hook in the DSM) and must flag the same set of racy
// addresses. It is also the kind of detector (per-access vector-clock
// checks) whose cost the paper's approach avoids by piggybacking on
// coherence metadata and checking only at barriers.
//
// One precision note: like Djit+, only the most recent write to a location
// is remembered, so when three or more writes race on one address some
// write-write *pairs* go unreported — but the address is always flagged.
// Cross-validation therefore compares racy-address sets.
package hbdet

import (
	"fmt"
	"sort"
	"sync"

	"lrcrace/internal/mem"
)

// Clock is a vector clock over processes.
type Clock []uint32

func (c Clock) copyFrom(o Clock) {
	copy(c, o)
}

func (c Clock) join(o Clock) {
	for i, x := range o {
		if x > c[i] {
			c[i] = x
		}
	}
}

// leq reports c ≤ o pointwise.
func (c Clock) leq(o Clock) bool {
	for i, x := range c {
		if x > o[i] {
			return false
		}
	}
	return true
}

// epoch is a (proc, time) pair — the Djit+ compressed write record.
type epoch struct {
	proc int
	t    uint32
}

// varState is the per-location metadata.
type varState struct {
	lastWrite epoch
	hasWrite  bool
	reads     Clock // last read time per process (sparse would be smaller; plain is fine here)
}

// Race is one detected conflict.
type Race struct {
	Addr      mem.Addr
	PrevProc  int // earlier access
	Proc      int // current access
	PrevWrite bool
	CurWrite  bool
}

func (r Race) String() string {
	k := func(w bool) string {
		if w {
			return "write"
		}
		return "read"
	}
	return fmt.Sprintf("hb race at 0x%x: %s by P%d ~ %s by P%d",
		uint64(r.Addr), k(r.PrevWrite), r.PrevProc, k(r.CurWrite), r.Proc)
}

// Detector is the happens-before reference detector. Its methods implement
// the dsm trace hook; they are safe for concurrent use.
type Detector struct {
	mu     sync.Mutex
	n      int
	clocks []Clock
	locks  map[int]Clock
	epochs map[int32]Clock // barrier join points
	vars   map[mem.Addr]*varState
	races  []Race
	seen   map[mem.Addr]bool
}

// New returns a detector for n processes.
func New(n int) *Detector {
	d := &Detector{
		n:      n,
		clocks: make([]Clock, n),
		locks:  make(map[int]Clock),
		epochs: make(map[int32]Clock),
		vars:   make(map[mem.Addr]*varState),
		seen:   make(map[mem.Addr]bool),
	}
	for p := range d.clocks {
		d.clocks[p] = make(Clock, n)
		d.clocks[p][p] = 1
	}
	return d
}

func (d *Detector) state(a mem.Addr) *varState {
	vs := d.vars[a]
	if vs == nil {
		vs = &varState{reads: make(Clock, d.n)}
		d.vars[a] = vs
	}
	return vs
}

// Read processes a read of a by proc.
func (d *Detector) Read(proc int, a mem.Addr) {
	d.mu.Lock()
	defer d.mu.Unlock()
	vs := d.state(a)
	c := d.clocks[proc]
	if vs.hasWrite && vs.lastWrite.proc != proc && vs.lastWrite.t > c[vs.lastWrite.proc] {
		d.report(Race{Addr: a, PrevProc: vs.lastWrite.proc, Proc: proc, PrevWrite: true, CurWrite: false})
	}
	vs.reads[proc] = c[proc]
}

// Write processes a write of a by proc.
func (d *Detector) Write(proc int, a mem.Addr) {
	d.mu.Lock()
	defer d.mu.Unlock()
	vs := d.state(a)
	c := d.clocks[proc]
	if vs.hasWrite && vs.lastWrite.proc != proc && vs.lastWrite.t > c[vs.lastWrite.proc] {
		d.report(Race{Addr: a, PrevProc: vs.lastWrite.proc, Proc: proc, PrevWrite: true, CurWrite: true})
	}
	for q, rt := range vs.reads {
		if q != proc && rt > c[q] {
			d.report(Race{Addr: a, PrevProc: q, Proc: proc, PrevWrite: false, CurWrite: true})
		}
	}
	vs.lastWrite = epoch{proc: proc, t: c[proc]}
	vs.hasWrite = true
}

// Acquire processes a lock acquisition by proc.
func (d *Detector) Acquire(proc, lock int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if lc := d.locks[lock]; lc != nil {
		d.clocks[proc].join(lc)
	}
}

// Release processes a lock release by proc.
func (d *Detector) Release(proc, lock int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	lc := d.locks[lock]
	if lc == nil {
		lc = make(Clock, d.n)
		d.locks[lock] = lc
	}
	lc.copyFrom(d.clocks[proc])
	d.clocks[proc][proc]++
}

// BarrierArrive folds proc's clock into the epoch's join point.
func (d *Detector) BarrierArrive(proc int, ep int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	jc := d.epochs[ep]
	if jc == nil {
		jc = make(Clock, d.n)
		d.epochs[ep] = jc
	}
	jc.join(d.clocks[proc])
	d.clocks[proc][proc]++
}

// BarrierDepart gives proc the epoch's join point (all arrivals precede all
// departures, so the join is complete by the time anyone departs).
func (d *Detector) BarrierDepart(proc int, ep int32) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if jc := d.epochs[ep]; jc != nil {
		d.clocks[proc].join(jc)
	}
	d.clocks[proc][proc]++
}

func (d *Detector) report(r Race) {
	d.races = append(d.races, r)
	d.seen[r.Addr] = true
}

// Races returns every conflict recorded, in detection order.
func (d *Detector) Races() []Race {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]Race(nil), d.races...)
}

// RacyAddrs returns the sorted set of addresses involved in any race.
func (d *Detector) RacyAddrs() []mem.Addr {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]mem.Addr, 0, len(d.seen))
	for a := range d.seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
