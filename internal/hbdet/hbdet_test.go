package hbdet

import (
	"testing"

	"lrcrace/internal/mem"
)

func TestWWRace(t *testing.T) {
	d := New(2)
	d.Write(0, 8)
	d.Write(1, 8)
	races := d.Races()
	if len(races) != 1 || !races[0].PrevWrite || !races[0].CurWrite {
		t.Fatalf("races = %v", races)
	}
	if races[0].String() == "" {
		t.Error("empty String")
	}
}

func TestRWRace(t *testing.T) {
	d := New(2)
	d.Write(0, 8)
	d.Read(1, 8)
	if n := len(d.Races()); n != 1 {
		t.Fatalf("write→read: %d races", n)
	}
	d2 := New(2)
	d2.Read(0, 8)
	d2.Write(1, 8)
	if n := len(d2.Races()); n != 1 {
		t.Fatalf("read→write: %d races", n)
	}
}

func TestLockOrders(t *testing.T) {
	d := New(2)
	d.Acquire(0, 5)
	d.Write(0, 8)
	d.Release(0, 5)
	d.Acquire(1, 5)
	d.Write(1, 8)
	d.Release(1, 5)
	if n := len(d.Races()); n != 0 {
		t.Fatalf("locked accesses raced: %v", d.Races())
	}
}

func TestDifferentLocksDoNotOrder(t *testing.T) {
	d := New(2)
	d.Acquire(0, 1)
	d.Write(0, 8)
	d.Release(0, 1)
	d.Acquire(1, 2)
	d.Write(1, 8)
	d.Release(1, 2)
	if n := len(d.Races()); n != 1 {
		t.Fatalf("different locks should not order: %v", d.Races())
	}
}

func TestBarrierOrders(t *testing.T) {
	d := New(3)
	d.Write(0, 8)
	for p := 0; p < 3; p++ {
		d.BarrierArrive(p, 0)
	}
	for p := 0; p < 3; p++ {
		d.BarrierDepart(p, 0)
	}
	d.Write(1, 8)
	d.Read(2, 8)
	// The second write and the read race with each other, but neither races
	// with the pre-barrier write... actually write(1) vs read(2) are
	// concurrent (same epoch, no sync): 1 race.
	if n := len(d.Races()); n != 1 {
		t.Fatalf("races = %v", d.Races())
	}
}

func TestSameProcNeverRaces(t *testing.T) {
	d := New(2)
	d.Write(0, 8)
	d.Read(0, 8)
	d.Write(0, 8)
	if n := len(d.Races()); n != 0 {
		t.Fatalf("same-process accesses raced: %v", d.Races())
	}
}

func TestConcurrentReadsNoRace(t *testing.T) {
	d := New(3)
	d.Read(0, 8)
	d.Read(1, 8)
	d.Read(2, 8)
	if n := len(d.Races()); n != 0 {
		t.Fatalf("read-read flagged: %v", d.Races())
	}
}

func TestWriteThenConcurrentReadersAllFlagged(t *testing.T) {
	d := New(3)
	d.Write(0, 8)
	d.Read(1, 8)
	d.Read(2, 8)
	if n := len(d.Races()); n != 2 {
		t.Fatalf("races = %v, want 2", d.Races())
	}
}

func TestTransitiveOrderViaThirdProcess(t *testing.T) {
	d := New(3)
	d.Write(0, 8)
	d.Release(0, 1)
	d.Acquire(1, 1)
	d.Release(1, 2)
	d.Acquire(2, 2)
	d.Write(2, 8) // ordered after P0's write via P1
	if n := len(d.Races()); n != 0 {
		t.Fatalf("transitive order missed: %v", d.Races())
	}
}

func TestRacyAddrs(t *testing.T) {
	d := New(2)
	d.Write(0, 16)
	d.Write(1, 16)
	d.Write(0, 8)
	d.Write(1, 8)
	addrs := d.RacyAddrs()
	if len(addrs) != 2 || addrs[0] != mem.Addr(8) || addrs[1] != mem.Addr(16) {
		t.Fatalf("RacyAddrs = %v", addrs)
	}
}
