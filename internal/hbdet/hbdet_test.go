package hbdet

import (
	"testing"

	"lrcrace/internal/mem"
)

func TestWWRace(t *testing.T) {
	d := New(2)
	d.Write(0, 8)
	d.Write(1, 8)
	races := d.Races()
	if len(races) != 1 || !races[0].PrevWrite || !races[0].CurWrite {
		t.Fatalf("races = %v", races)
	}
	if races[0].String() == "" {
		t.Error("empty String")
	}
}

func TestRWRace(t *testing.T) {
	d := New(2)
	d.Write(0, 8)
	d.Read(1, 8)
	if n := len(d.Races()); n != 1 {
		t.Fatalf("write→read: %d races", n)
	}
	d2 := New(2)
	d2.Read(0, 8)
	d2.Write(1, 8)
	if n := len(d2.Races()); n != 1 {
		t.Fatalf("read→write: %d races", n)
	}
}

func TestLockOrders(t *testing.T) {
	d := New(2)
	d.Acquire(0, 5)
	d.Write(0, 8)
	d.Release(0, 5)
	d.Acquire(1, 5)
	d.Write(1, 8)
	d.Release(1, 5)
	if n := len(d.Races()); n != 0 {
		t.Fatalf("locked accesses raced: %v", d.Races())
	}
}

func TestDifferentLocksDoNotOrder(t *testing.T) {
	d := New(2)
	d.Acquire(0, 1)
	d.Write(0, 8)
	d.Release(0, 1)
	d.Acquire(1, 2)
	d.Write(1, 8)
	d.Release(1, 2)
	if n := len(d.Races()); n != 1 {
		t.Fatalf("different locks should not order: %v", d.Races())
	}
}

func TestBarrierOrders(t *testing.T) {
	d := New(3)
	d.Write(0, 8)
	for p := 0; p < 3; p++ {
		d.BarrierArrive(p, 0)
	}
	for p := 0; p < 3; p++ {
		d.BarrierDepart(p, 0)
	}
	d.Write(1, 8)
	d.Read(2, 8)
	// The second write and the read race with each other, but neither races
	// with the pre-barrier write... actually write(1) vs read(2) are
	// concurrent (same epoch, no sync): 1 race.
	if n := len(d.Races()); n != 1 {
		t.Fatalf("races = %v", d.Races())
	}
}

func TestSameProcNeverRaces(t *testing.T) {
	d := New(2)
	d.Write(0, 8)
	d.Read(0, 8)
	d.Write(0, 8)
	if n := len(d.Races()); n != 0 {
		t.Fatalf("same-process accesses raced: %v", d.Races())
	}
}

func TestConcurrentReadsNoRace(t *testing.T) {
	d := New(3)
	d.Read(0, 8)
	d.Read(1, 8)
	d.Read(2, 8)
	if n := len(d.Races()); n != 0 {
		t.Fatalf("read-read flagged: %v", d.Races())
	}
}

func TestWriteThenConcurrentReadersAllFlagged(t *testing.T) {
	d := New(3)
	d.Write(0, 8)
	d.Read(1, 8)
	d.Read(2, 8)
	if n := len(d.Races()); n != 2 {
		t.Fatalf("races = %v, want 2", d.Races())
	}
}

func TestTransitiveOrderViaThirdProcess(t *testing.T) {
	d := New(3)
	d.Write(0, 8)
	d.Release(0, 1)
	d.Acquire(1, 1)
	d.Release(1, 2)
	d.Acquire(2, 2)
	d.Write(2, 8) // ordered after P0's write via P1
	if n := len(d.Races()); n != 0 {
		t.Fatalf("transitive order missed: %v", d.Races())
	}
}

func TestRacyAddrs(t *testing.T) {
	d := New(2)
	d.Write(0, 16)
	d.Write(1, 16)
	d.Write(0, 8)
	d.Write(1, 8)
	addrs := d.RacyAddrs()
	if len(addrs) != 2 || addrs[0] != mem.Addr(8) || addrs[1] != mem.Addr(16) {
		t.Fatalf("RacyAddrs = %v", addrs)
	}
}

// TestThreeWriterPairLoss pins the documented Djit+-style precision limit:
// only the most recent write per location is remembered, so when three
// writers race on one address, the detector reports the adjacent pairs
// (0,1) and (1,2) but misses (0,2) — while still flagging the address.
// Cross-validation against the LRC detector (which examines every
// concurrent interval pair) must therefore compare racy-address sets, not
// pair lists; this test is the regression tripwire for that contract. If
// the detector ever starts reporting the (0,2) pair, the comment in
// hbdet.go and the cross-validation currency can both be revisited.
func TestThreeWriterPairLoss(t *testing.T) {
	const a = mem.Addr(8)
	d := New(3)
	d.Write(0, a)
	d.Write(1, a)
	d.Write(2, a)

	races := d.Races()
	if len(races) != 2 {
		t.Fatalf("three concurrent writers: %d race pairs %v, want exactly 2 (adjacent pairs only)", len(races), races)
	}
	type pair struct{ prev, cur int }
	got := map[pair]bool{}
	for _, r := range races {
		if !r.PrevWrite || !r.CurWrite || r.Addr != a {
			t.Fatalf("unexpected race %v", r)
		}
		got[pair{r.PrevProc, r.Proc}] = true
	}
	if !got[pair{0, 1}] || !got[pair{1, 2}] {
		t.Fatalf("reported pairs %v, want (0,1) and (1,2)", races)
	}
	if got[pair{0, 2}] {
		t.Fatal("pair (0,2) reported: the documented last-write-only pair loss no longer holds")
	}

	// The address itself is never lost — the cross-validation currency.
	addrs := d.RacyAddrs()
	if len(addrs) != 1 || addrs[0] != a {
		t.Fatalf("RacyAddrs = %v, want [0x8]", addrs)
	}
}
