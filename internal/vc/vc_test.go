package vc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewIsZero(t *testing.T) {
	v := New(4)
	if len(v) != 4 {
		t.Fatalf("len = %d, want 4", len(v))
	}
	for i, x := range v {
		if x != 0 {
			t.Errorf("v[%d] = %d, want 0", i, x)
		}
	}
}

func TestCopyIndependence(t *testing.T) {
	v := VC{1, 2, 3}
	c := v.Copy()
	c[0] = 99
	if v[0] != 1 {
		t.Errorf("copy aliases original: v[0] = %d", v[0])
	}
	if !v.Equal(VC{1, 2, 3}) {
		t.Errorf("original mutated: %v", v)
	}
}

func TestMerge(t *testing.T) {
	v := VC{1, 5, 0}
	v.Merge(VC{3, 2, 4})
	want := VC{3, 5, 4}
	if !v.Equal(want) {
		t.Errorf("merge = %v, want %v", v, want)
	}
}

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b VC
		want bool
	}{
		{VC{1, 1}, VC{1, 1}, true},
		{VC{2, 1}, VC{1, 1}, true},
		{VC{0, 1}, VC{1, 1}, false},
		{VC{5, 5}, VC{0, 0}, true},
		{VC{0, 0}, VC{0, 0}, true},
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%v dominates %v = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestEqualLengthMismatch(t *testing.T) {
	if (VC{1}).Equal(VC{1, 0}) {
		t.Error("vectors of different length reported equal")
	}
}

func TestString(t *testing.T) {
	if s := (VC{1, 0, 7}).String(); s != "<1,0,7>" {
		t.Errorf("String = %q", s)
	}
	if s := (IntervalID{2, 9}).String(); s != "σ2^9" {
		t.Errorf("IntervalID.String = %q", s)
	}
}

// TestPrecedesProgramOrder checks intra-process ordering.
func TestPrecedesProgramOrder(t *testing.T) {
	a := IntervalID{0, 1}
	b := IntervalID{0, 2}
	bvc := VC{2, 0}
	if !Precedes(a, b, bvc) {
		t.Error("σ0^1 should precede σ0^2 by program order")
	}
	if Precedes(b, a, VC{1, 0}) {
		t.Error("σ0^2 should not precede σ0^1")
	}
}

// TestPrecedesCrossProcess mirrors Figure 2 of the paper: P1 has intervals
// 1,2; P2 has intervals 1,2; P2's interval 2 begins with the acquire
// matching the release ending P1's interval 1. So σ1^1 ≺ σ2^2, while
// σ1^2 ∥ σ2^2.
func TestPrecedesCrossProcess(t *testing.T) {
	// Using proc 0 for P1, proc 1 for P2.
	p1i1 := IntervalID{0, 1}
	p1i2 := IntervalID{0, 2}
	p2i2 := IntervalID{1, 2}
	p1i2vc := VC{2, 0} // P1 never saw anything of P2
	p2i2vc := VC{1, 2} // P2's acquire brought it P1's interval 1

	if !Precedes(p1i1, p2i2, p2i2vc) {
		t.Error("σ1^1 should precede σ2^2")
	}
	if Precedes(p1i2, p2i2, p2i2vc) {
		t.Error("σ1^2 should not precede σ2^2")
	}
	if !Concurrent(p1i2, p1i2vc, p2i2, p2i2vc) {
		t.Error("σ1^2 and σ2^2 should be concurrent")
	}
	if Concurrent(p1i1, VC{1, 0}, p2i2, p2i2vc) {
		t.Error("σ1^1 and σ2^2 should not be concurrent")
	}
}

func TestConcurrentIsSymmetric(t *testing.T) {
	a := IntervalID{0, 3}
	b := IntervalID{1, 4}
	avc := VC{3, 1}
	bvc := VC{2, 4}
	if Concurrent(a, avc, b, bvc) != Concurrent(b, bvc, a, avc) {
		t.Error("Concurrent is not symmetric")
	}
}

// randomExecution builds a random but causally consistent set of interval
// vectors for nproc processes with k intervals each, by simulating random
// release/acquire message passing. Returns vcs[p][i] = vector of σ_p^(i+1).
func randomExecution(r *rand.Rand, nproc, k int) [][]VC {
	cur := make([]VC, nproc)
	idx := make([]Index, nproc)
	for p := range cur {
		cur[p] = New(nproc)
	}
	vcs := make([][]VC, nproc)
	// Start interval 1 on each process.
	for p := 0; p < nproc; p++ {
		idx[p] = 1
		cur[p][p] = 1
		vcs[p] = append(vcs[p], cur[p].Copy())
	}
	steps := nproc * (k - 1)
	for s := 0; s < steps; s++ {
		// Pick a process to start a new interval; with probability 1/2 it
		// first "acquires from" a random other process (sync edge).
		p := -1
		for try := 0; try < 64; try++ {
			q := r.Intn(nproc)
			if int(idx[q]) < k {
				p = q
				break
			}
		}
		if p < 0 {
			for q := 0; q < nproc; q++ {
				if int(idx[q]) < k {
					p = q
					break
				}
			}
			if p < 0 {
				break
			}
		}
		if r.Intn(2) == 0 {
			q := r.Intn(nproc)
			cur[p].Merge(cur[q]) // release at q's current point → acquire at p
		}
		idx[p]++
		cur[p][p] = idx[p]
		vcs[p] = append(vcs[p], cur[p].Copy())
	}
	return vcs
}

// TestPropertyOrderingConsistent: over random causal executions,
// happens-before-1 as computed by Precedes must be a strict partial order
// (irreflexive, antisymmetric, transitive) and Concurrent must be its
// complement.
func TestPropertyOrderingConsistent(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nproc := 2 + r.Intn(4)
		k := 2 + r.Intn(4)
		vcs := randomExecution(r, nproc, k)
		type node struct {
			id IntervalID
			v  VC
		}
		var all []node
		for p := range vcs {
			for i, v := range vcs[p] {
				all = append(all, node{IntervalID{p, Index(i + 1)}, v})
			}
		}
		for _, a := range all {
			if Precedes(a.id, a.id, a.v) {
				return false // reflexive
			}
			for _, b := range all {
				if a.id == b.id {
					continue
				}
				ab := Precedes(a.id, b.id, b.v)
				ba := Precedes(b.id, a.id, a.v)
				if ab && ba {
					return false // antisymmetry violated
				}
				if Concurrent(a.id, a.v, b.id, b.v) != (!ab && !ba) {
					return false
				}
				if ab {
					// transitivity: a≺b and b≺c ⇒ a≺c
					for _, c := range all {
						if c.id == a.id || c.id == b.id {
							continue
						}
						if Precedes(b.id, c.id, c.v) && !Precedes(a.id, c.id, c.v) {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestPropertyMergeIsLUB: Merge produces the least upper bound.
func TestPropertyMergeIsLUB(t *testing.T) {
	f := func(a8, b8 [6]uint16) bool {
		a, b := New(6), New(6)
		for i := 0; i < 6; i++ {
			a[i], b[i] = Index(a8[i]), Index(b8[i])
		}
		m := a.Copy()
		m.Merge(b)
		if !m.Dominates(a) || !m.Dominates(b) {
			return false
		}
		// Least: any other upper bound dominates m.
		for i := range m {
			if m[i] != a[i] && m[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
