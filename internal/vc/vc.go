// Package vc implements version vectors (vector timestamps) and interval
// identifiers, the ordering substrate of lazy release consistency.
//
// Under LRC, the execution of each process is divided into intervals; a new
// interval begins at every acquire, release, or barrier. Intervals are
// related by the happens-before-1 partial order: program order on a single
// process, release-to-matching-acquire order across processes, and the
// transitive closure of the two. Each interval carries a version vector;
// entry p of the vector of interval σ_q^j is the index of the most recent
// interval of process p whose effects were visible to q when σ_q^j began.
//
// The paper's central observation is that this metadata, already maintained
// by any LRC implementation, answers "are these two intervals concurrent?"
// in constant time: σ_p^i precedes σ_q^j exactly when vc(σ_q^j)[p] >= i.
package vc

import "fmt"

// Index is an interval index: the per-process count of intervals, starting
// at 1 for the first interval (0 means "none seen").
type Index uint32

// VC is a version vector with one entry per process. Entry p holds the
// highest interval index of process p that the owner has seen.
type VC []Index

// New returns a zeroed version vector for n processes.
func New(n int) VC { return make(VC, n) }

// Copy returns an independent copy of v.
func (v VC) Copy() VC {
	c := make(VC, len(v))
	copy(c, v)
	return c
}

// Merge sets v to the entry-wise maximum of v and o.
func (v VC) Merge(o VC) {
	for i, x := range o {
		if x > v[i] {
			v[i] = x
		}
	}
}

// Dominates reports whether v >= o entry-wise.
func (v VC) Dominates(o VC) bool {
	for i, x := range o {
		if v[i] < x {
			return false
		}
	}
	return true
}

// Equal reports whether v and o are identical.
func (v VC) Equal(o VC) bool {
	if len(v) != len(o) {
		return false
	}
	for i, x := range o {
		if v[i] != x {
			return false
		}
	}
	return true
}

// String renders the vector as "<i0,i1,...>".
func (v VC) String() string {
	s := "<"
	for i, x := range v {
		if i > 0 {
			s += ","
		}
		s += fmt.Sprint(uint32(x))
	}
	return s + ">"
}

// IntervalID names interval σ_Proc^Index.
type IntervalID struct {
	Proc  int
	Index Index
}

func (id IntervalID) String() string {
	return fmt.Sprintf("σ%d^%d", id.Proc, uint32(id.Index))
}

// Precedes reports whether interval a happens-before-1 interval b, where
// bvc is the version vector of b. On the same process, program order
// decides; across processes, a precedes b iff b's vector has seen a's
// index. This is the paper's constant-time ordering check.
func Precedes(a IntervalID, b IntervalID, bvc VC) bool {
	if a.Proc == b.Proc {
		return a.Index < b.Index
	}
	return bvc[a.Proc] >= a.Index
}

// Concurrent reports whether intervals a and b are unordered by
// happens-before-1. avc and bvc are the respective version vectors. Two
// integer comparisons, as in the paper.
func Concurrent(a IntervalID, avc VC, b IntervalID, bvc VC) bool {
	return !Precedes(a, b, bvc) && !Precedes(b, a, avc)
}
