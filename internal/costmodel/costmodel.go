// Package costmodel defines the virtual-time cost model used to reproduce
// the paper's performance results deterministically.
//
// The paper measured wall-clock time on eight 250 MHz Alpha workstations
// connected by 155 Mbit ATM. We cannot measure that hardware, so the DSM
// carries a virtual clock per process: computation, instrumentation,
// protocol processing and message transmission each advance it by modeled
// amounts, and messages propagate clock values Lamport-style (a receiver's
// clock becomes at least the sender's clock plus wire time). Slowdown is
// then the ratio of virtual end-to-end times with and without detection.
//
// What makes the paper's shapes emerge is the *structure* of the model —
// per-access instrumentation costs paid in parallel on every process,
// versus interval and bitmap comparison serialized at the barrier master —
// not the absolute constants. The constants below are calibrated to
// mid-90s hardware: a 4 ns cycle (250 MHz), ~150 µs user-level UDP message
// latency, and ~19 MB/s effective ATM bandwidth.
package costmodel

// Model holds per-operation virtual-time costs in nanoseconds.
type Model struct {
	// MsgLatency is the fixed per-message wire+software latency.
	MsgLatency int64
	// PerByte is the transmission cost per payload byte (ns, may be
	// fractional when scaled; stored as picoseconds avoided for
	// simplicity — we keep ns and multiply).
	PerByte float64

	// ProcCall is the procedure-call overhead of entering the analysis
	// routine for one instrumented load or store. ATOM could not inline
	// instrumentation, so every instrumented access pays this.
	ProcCall int64
	// AccessCheck is the work inside the analysis routine: comparing the
	// address against the shared-segment bounds and, for shared accesses,
	// setting the bit in the per-page bitmap.
	AccessCheck int64

	// MemAccess is the base cost of one application load/store (cache
	// effects averaged in); charged whether or not detection is on.
	MemAccess int64
	// ComputeOp is the cost of one unit of application arithmetic as
	// charged by apps via Compute(n).
	ComputeOp int64

	// IntervalSetup is the per-interval-record cost of the CVM
	// modifications: building read-notice structures and bitmap
	// bookkeeping when an interval is closed (detection only).
	IntervalSetup int64
	// BitmapSetup is the per-(interval,page)-bitmap cost of the CVM
	// modifications: allocating/clearing the word bitmap and linking it to
	// the notice structures (detection only).
	BitmapSetup int64
	// IntervalCompare is the cost of one version-vector concurrency test
	// at the barrier master.
	IntervalCompare int64
	// PageOverlap is the per-page-notice cost of intersecting the page
	// lists of one concurrent pair.
	PageOverlap int64
	// BitmapCompare is the cost of comparing one pair of word bitmaps.
	BitmapCompare int64

	// PageFault is the software fault-handling cost on the faulting
	// process (trap + protocol entry), excluding the message round.
	PageFault int64
	// Handler is the request-service cost at a process that answers a
	// page fetch, lock forward, or diff application.
	Handler int64
}

// Default returns the calibrated model described in the package comment.
func Default() Model {
	return Model{
		MsgLatency:      150_000, // 150 µs small-message latency
		PerByte:         50,      // ≈19 MB/s effective bandwidth
		ProcCall:        40,      // uninlined call + register save/restore
		AccessCheck:     390,     // bounds compare + page/word math + bit set
		MemAccess:       12,      // average load/store incl. cache misses
		ComputeOp:       8,       // ~2 cycles per arithmetic op
		IntervalSetup:   5_000,   // allocate + link notice structures
		BitmapSetup:     1_500,   // clear + link one per-page word bitmap
		IntervalCompare: 80,      // two integer compares + loop overhead
		PageOverlap:     60,      // per notice element scanned
		BitmapCompare:   2_600,   // 128-byte bitmap AND + scan
		PageFault:       30_000,  // signal delivery + handler entry
		Handler:         10_000,  // request service at the remote process
	}
}

// WireTime returns latency plus transmission time for a message of n bytes.
func (m Model) WireTime(n int) int64 {
	return m.MsgLatency + int64(float64(n)*m.PerByte)
}

// InstrCost returns the full per-instrumented-access cost (procedure call
// plus access check).
func (m Model) InstrCost() int64 { return m.ProcCall + m.AccessCheck }
