package costmodel

import "testing"

func TestDefaultIsComplete(t *testing.T) {
	m := Default()
	if m == (Model{}) {
		t.Fatal("Default returned zero model")
	}
	// Every field must be set: a zero cost silently drops a component from
	// the overhead decomposition.
	checks := []struct {
		name string
		v    int64
	}{
		{"MsgLatency", m.MsgLatency},
		{"ProcCall", m.ProcCall},
		{"AccessCheck", m.AccessCheck},
		{"MemAccess", m.MemAccess},
		{"ComputeOp", m.ComputeOp},
		{"IntervalSetup", m.IntervalSetup},
		{"BitmapSetup", m.BitmapSetup},
		{"IntervalCompare", m.IntervalCompare},
		{"PageOverlap", m.PageOverlap},
		{"BitmapCompare", m.BitmapCompare},
		{"PageFault", m.PageFault},
		{"Handler", m.Handler},
	}
	for _, c := range checks {
		if c.v <= 0 {
			t.Errorf("%s = %d, want positive", c.name, c.v)
		}
	}
	if m.PerByte <= 0 {
		t.Errorf("PerByte = %f", m.PerByte)
	}
}

func TestWireTime(t *testing.T) {
	m := Model{MsgLatency: 1000, PerByte: 2}
	if got := m.WireTime(0); got != 1000 {
		t.Errorf("WireTime(0) = %d", got)
	}
	if got := m.WireTime(500); got != 2000 {
		t.Errorf("WireTime(500) = %d", got)
	}
}

func TestInstrCost(t *testing.T) {
	m := Model{ProcCall: 40, AccessCheck: 390}
	if got := m.InstrCost(); got != 430 {
		t.Errorf("InstrCost = %d", got)
	}
}

// TestCalibrationShape: the relationships the paper's results depend on.
func TestCalibrationShape(t *testing.T) {
	m := Default()
	// Instrumentation must dwarf the base access cost (that's where the 2×
	// slowdown comes from)...
	if m.InstrCost() < 10*m.MemAccess {
		t.Errorf("instrumentation (%d) not dominant over base access (%d)", m.InstrCost(), m.MemAccess)
	}
	// ...the procedure call must be the minor share of instrumentation
	// (Figure 3: "Proc Call" ≈ 6.7% of overhead, removable by inlining)...
	if m.ProcCall*5 > m.AccessCheck {
		t.Errorf("ProcCall (%d) too large relative to AccessCheck (%d)", m.ProcCall, m.AccessCheck)
	}
	// ...and a message must cost vastly more than any local operation
	// (DSM-era networks).
	if m.MsgLatency < 100*m.InstrCost() {
		t.Errorf("MsgLatency (%d) too cheap relative to instrumentation", m.MsgLatency)
	}
	// An 8 KB page transfer should be latency+bandwidth dominated.
	if m.WireTime(8192) < 2*m.MsgLatency {
		t.Errorf("page transfer (%d) not bandwidth-significant", m.WireTime(8192))
	}
}
