package dsm

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"lrcrace/internal/mem"
	"lrcrace/internal/reliable"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/vc"
)

// Coordinated rollback recovery.
//
// The failure model is fail-stop process crashes (see CrashPlan): the
// victim's endpoint goes silent and stays silent. Survivors detect the
// death through one of two paths — the reliable sublayer's retry-cap
// exhaustion (a link to the victim dies after MaxRetries unacked
// retransmissions), or the barrier wall timeout on any blocked reply wait
// — and shut the network down, unwinding every process. The driver then
// performs a coordinated rollback: it picks the latest epoch for which
// every process holds a checkpoint (the recovery line), rebuilds ALL N
// processes from their checkpoints at that line — the replacement for the
// dead process is respawned from its own last checkpoint through exactly
// the same path — reconciles cross-process protocol state (lock tenures
// last held by the dead process are reclaimed by their managers; the page
// directory is repaired), and re-executes the failed epoch. Because the
// checkpoints restore virtual clocks along with everything else, a
// recovered run reports the same races, the same final memory, and the
// same virtual time as a crash-free run.

// EpochFunc is the per-epoch application body used with RunEpochs: it
// performs epoch e's work, and RunEpochs supplies the barrier after it.
type EpochFunc func(p *Proc, epoch int32)

// RecoveryStats summarizes crash-recovery activity over a run.
type RecoveryStats struct {
	Recoveries      int   // coordinated rollbacks performed
	LocksReclaimed  int   // manager tenures reclaimed from the dead process
	PagesReconciled int   // directory entries repaired at restore
	VirtualNS       int64 // virtual time rolled back (lost work re-executed)
	WallNS          int64 // real time spent decoding and restoring state
	// VerifyFailures counts candidate recovery lines rejected because a
	// checkpoint's manifest or chunk closure failed its integrity check;
	// each rejection made rollback fall back one epoch.
	VerifyFailures int

	LastEpoch  int32  // recovery line of the most recent rollback
	LastVictim int    // suspected dead proc; -1 if never identified
	LastReason string // "link-death" or "barrier-timeout"
}

// timeoutPanic is the typed panic a reply wait raises when the barrier
// wall timeout expires. It carries the suspected dead process when the
// barrier master can name it (a proc missing from the arrival or
// bitmap-round bookkeeping); -1 otherwise.
type timeoutPanic struct {
	proc    int
	op      string
	timeout time.Duration
	suspect int
	detail  string
}

func (t timeoutPanic) String() string {
	return fmt.Sprintf("%s timed out after %v%s", t.op, t.timeout, t.detail)
}

// rollbackPlan is the decoded restore set a recovery attempt starts from.
type rollbackPlan struct {
	epoch     int32             // recovery line; 0 → restart from scratch
	cks       []*procCheckpoint // per-proc checkpoints; nil when epoch == 0
	virtualNS int64             // virtual time being rolled back
	started   time.Time         // wall-clock start of the rollback
	victim    int
}

// RunEpochs executes an epoch-structured application with crash recovery:
// each process runs appFactory's function once per epoch with a barrier
// after each (the final epoch's barrier is the run's last detection pass).
// If a process dies (CrashPlan) and Checkpoint is enabled, the run rolls
// back to the last barrier-epoch checkpoint line and re-executes the
// failed epoch; see RecoveryStats for what that cost.
//
// appFactory is invoked once per execution attempt, so per-run state inside
// the returned closure (channel gates, local counters) starts fresh after a
// rollback. Epoch bodies must not couple across epochs through such state:
// recovery re-executes only the failed epoch, not the ones before it.
func (s *System) RunEpochs(epochs int32, appFactory func() EpochFunc) error {
	var err error
	s.runOnce.Do(func() { err = s.runEpochs(epochs, appFactory) })
	if err == nil && s.runErr != nil {
		err = s.runErr
	}
	return err
}

func (s *System) runEpochs(epochs int32, appFactory func() EpochFunc) error {
	s.ran = true
	s.epochMode = true
	if epochs < 1 {
		s.runErr = fmt.Errorf("dsm: RunEpochs(%d): need at least one epoch", epochs)
		return s.runErr
	}
	if s.cfg.checkpointing() && s.ckpts == nil {
		s.ckpts = NewCheckpointStore()
		s.ckpts.SetRetain(s.cfg.CheckpointRetain)
	}
	maxRec := s.cfg.MaxRecoveries
	if maxRec <= 0 {
		maxRec = 3
	}
	var plan *rollbackPlan
	for {
		app := appFactory()
		if app == nil {
			s.runErr = fmt.Errorf("dsm: RunEpochs: appFactory returned nil")
			return s.runErr
		}
		err := s.attempt(func(p *Proc) {
			for e := p.epoch; e < epochs; e++ {
				app(p, e)
				p.Barrier()
			}
		}, plan)
		if err == nil {
			s.runErr = nil
			return nil
		}
		if !s.crashDetected() || !s.canRecover() || s.recStats.Recoveries >= maxRec {
			s.runErr = err
			return err
		}
		var rerr error
		plan, rerr = s.planRollback()
		if rerr != nil {
			s.runErr = fmt.Errorf("dsm: recovery failed: %v (after %v)", rerr, err)
			return s.runErr
		}
	}
}

// canRecover reports whether coordinated rollback is possible: checkpoints
// are being taken and the transport can be rebuilt (the built-in simnet).
func (s *System) canRecover() bool {
	return s.cfg.checkpointing() && s.ckpts != nil && s.cfg.Transport == nil
}

// recoveryArmed reports whether link-death suspicion should feed the
// recovery machinery rather than just abort the run.
func (s *System) recoveryArmed() bool {
	return len(s.crashes) > 0 || (s.epochMode && s.cfg.checkpointing())
}

// --- crash suspicion (shared by the reliable sublayer's timer goroutine,
// app-thread panic recovery, and the rollback driver) ---

func (s *System) resetSuspectLocked() {
	s.recMu.Lock()
	s.suspect = -1
	s.suspectVia = ""
	s.crashSeen = false
	s.aliveProcs = nil
	s.recMu.Unlock()
}

// noteSuspect records a detection verdict of an attempt. Link-death is
// hard evidence — the peer's receive pump acknowledged nothing across the
// whole retry budget — and overrides an earlier circumstantial
// barrier-timeout verdict; otherwise the first verdict wins and later
// detections may only sharpen an unidentified suspect.
func (s *System) noteSuspect(proc int, via string) {
	s.recMu.Lock()
	switch {
	case s.suspectVia == "":
		s.suspect, s.suspectVia = proc, via
	case via == "link-death" && s.suspectVia != "link-death" && proc >= 0:
		s.suspect, s.suspectVia = proc, via
	case s.suspect < 0 && proc >= 0:
		s.suspect = proc
	}
	s.recMu.Unlock()
}

// noteTimeoutVerdict reconciles one process's barrier-timeout blame before
// recording it. The accuser has demonstrably not died — it just raised a
// timeout — which sharpens multi-hop verdicts from the combining-tree
// barrier, where an interior node wedged behind a deeper victim is blamed
// by its parent while itself correctly blaming the victim below: an
// accuser displaces any earlier circumstantial verdict naming IT, and a
// verdict naming a proven-alive process is discarded (kept only as an
// unidentified detection). The final suspect is therefore the same
// whichever order the survivors' timeouts fire in.
func (s *System) noteTimeoutVerdict(accuser, suspect int) {
	s.recMu.Lock()
	if s.aliveProcs == nil {
		s.aliveProcs = make(map[int]bool)
	}
	s.aliveProcs[accuser] = true
	if s.suspectVia == "barrier-timeout" && s.suspect == accuser {
		s.suspect = -1
	}
	if suspect >= 0 && s.aliveProcs[suspect] {
		suspect = -1
	}
	s.recMu.Unlock()
	s.noteSuspect(suspect, "barrier-timeout")
}

func (s *System) noteCrash() {
	s.recMu.Lock()
	s.crashSeen = true
	s.recMu.Unlock()
}

// crashDetected reports whether the last attempt ended in a crash-class
// failure (injected crash observed, or a survivor-side detection fired) as
// opposed to a genuine application or protocol error.
func (s *System) crashDetected() bool {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.crashSeen || s.suspectVia != ""
}

func (s *System) suspectInfo() (proc int, via string) {
	s.recMu.Lock()
	defer s.recMu.Unlock()
	return s.suspect, s.suspectVia
}

// onLinkDead is installed as the reliable sublayer's dead-link handler
// when recovery is armed: a link to an unresponsive peer exhausted its
// retry cap, so that peer is suspected dead. The network is shut down to
// unwind every survivor; the rollback driver takes over from there.
func (s *System) onLinkDead(from, to int) {
	s.noteSuspect(to, "link-death")
	s.tel.Emit(from, telemetry.KCrashDetected, 0, int64(to), 1, 0)
	dbgf("p%d suspects p%d dead (link retry cap)", from, to)
	s.nw.Close()
}

// --- attempt runner ---

// attempt builds a fresh transport and process set (restored from plan's
// checkpoints when non-nil), runs body on every process, and returns the
// root-cause error, if any. This is the single execution path behind both
// Run and RunEpochs.
func (s *System) attempt(body func(p *Proc), plan *rollbackPlan) error {
	n := s.cfg.NumProcs
	if s.cfg.Transport != nil {
		s.nw = s.cfg.Transport
	} else {
		nw := simnet.New(n)
		nw.SetTelemetry(s.tel)
		if err := nw.SetFaults(s.cfg.Faults); err != nil {
			return err
		}
		s.nw = nw
	}
	if s.cfg.Reliable {
		rc := s.cfg.ReliableConfig
		rc.Telemetry = s.tel
		if s.recoveryArmed() {
			rc.OnLinkDead = s.onLinkDead
		}
		s.nw = reliable.Wrap(s.nw, n, rc)
	}
	s.resetSuspectLocked()
	s.stop = make(chan struct{})
	s.procs = make([]*Proc, n)
	for i := 0; i < n; i++ {
		s.procs[i] = newProc(s, i)
	}
	if plan != nil {
		if err := s.restoreFromPlan(plan); err != nil {
			return err
		}
	}

	var svcWG, appWG sync.WaitGroup
	for _, p := range s.procs {
		svcWG.Add(1)
		go func(p *Proc) {
			defer svcWG.Done()
			p.serviceLoop()
		}(p)
	}

	// Error classes, from most to least diagnostic: a genuine bug beats the
	// injected crash, which beats the detection timeout it provoked, which
	// beats the secondary "network shut down" panics either induces.
	const (
		errShutdown = iota
		errTimeout
		errCrash
		errGenuine
	)
	errs := make([]error, n)
	ranks := make([]int, n)
	for i, p := range s.procs {
		appWG.Add(1)
		go func(i int, p *Proc) {
			defer appWG.Done()
			defer func() {
				r := recover()
				if r == nil {
					return
				}
				errs[i] = fmt.Errorf("dsm: proc %d panicked: %v", i, r)
				switch pv := r.(type) {
				case crashPanic:
					ranks[i] = errCrash
					s.noteCrash()
					// An injected crash does NOT shut the network down:
					// nothing announces a real machine's death either. The
					// survivors must detect it themselves, via link
					// retry-cap exhaustion or the barrier wall timeout.
					return
				case timeoutPanic:
					ranks[i] = errTimeout
					s.noteTimeoutVerdict(i, pv.suspect)
					s.tel.Trip(telemetry.TripBarrierTimeout,
						fmt.Sprintf("proc %d: %v", i, pv))
					s.tel.Emit(i, telemetry.KCrashDetected, 0, int64(pv.suspect), 0, 0)
				default:
					ranks[i] = errGenuine
					if strings.Contains(fmt.Sprint(r), "network shut down") {
						ranks[i] = errShutdown
					} else {
						// Dump the flight recorder for the root cause only,
						// not for every secondary panic it induces.
						s.tel.Trip(telemetry.TripProcPanic,
							fmt.Sprintf("proc %d panicked: %v", i, r))
					}
				}
				// Unblock peers waiting on this process.
				s.nw.Close()
			}()
			body(p)
		}(i, p)
	}
	appWG.Wait()
	// All application threads are done: break any service thread still
	// gated on a checkpoint that will never be cut (its app thread died
	// between popping the departure trigger and checkpointing), then shut
	// the transport down so the service loops drain and exit.
	close(s.stop)
	s.nw.Close()
	svcWG.Wait()

	var best error
	bestRank := -1
	for i, e := range errs {
		if e != nil && ranks[i] > bestRank {
			best, bestRank = e, ranks[i]
		}
	}
	return best
}

// --- rollback ---

// planRollback selects the recovery line and decodes every process's
// checkpoint at it, verifying each manifest's chunk closure (the address
// is the hash, so decoding IS the integrity check). A line whose closure
// does not verify — a chunk tampered with, deleted, or a manifest
// bit-flipped — is rejected with a telemetry trip and rollback falls back
// to the next older epoch; if no stored epoch verifies, the plan is a
// full restart from the initial state (epoch 0). Called after a
// crash-aborted attempt has fully wound down.
func (s *System) planRollback() (*rollbackPlan, error) {
	n := s.cfg.NumProcs
	suspect, via := s.suspectInfo()
	victim := suspect
	if victim < 0 {
		for _, cp := range s.crashes {
			if cp.Fired() {
				// Detection could not name the victim (e.g. a worker's timeout
				// with no master-side bookkeeping); fall back to the crash
				// plan's ground truth for labeling. Recovery itself never needs
				// the identity: all processes are rebuilt uniformly from the
				// recovery line.
				victim = cp.Victim
				break
			}
		}
	}
	if via == "" {
		via = "crash-observed"
	}
	abortedV := s.VirtualTime()
	plan := &rollbackPlan{started: time.Now(), victim: victim}
	var restoredV int64
	for re := s.ckpts.LatestCommonEpoch(n); re > 0; re-- {
		cks, maxV, err := s.decodeLine(re, n)
		if err != nil {
			s.recStats.VerifyFailures++
			s.tel.Emit(0, telemetry.KCkptVerifyFail, abortedV, int64(re), 0, 0)
			s.tel.Trip(telemetry.TripCkptVerify,
				fmt.Sprintf("checkpoint epoch %d failed verification: %v", re, err))
			dbgf("RECOVERY: epoch %d failed verification (%v), falling back", re, err)
			continue
		}
		plan.epoch, plan.cks, restoredV = re, cks, maxV
		break
	}
	plan.virtualNS = abortedV - restoredV
	if plan.virtualNS < 0 {
		plan.virtualNS = 0
	}
	s.recStats.Recoveries++
	s.recStats.LastEpoch = plan.epoch
	s.recStats.LastVictim = victim
	s.recStats.LastReason = via
	s.recStats.VirtualNS += plan.virtualNS
	s.tel.Emit(0, telemetry.KRecoveryStart, abortedV, int64(plan.epoch), int64(victim), 0)
	dbgf("RECOVERY: rolling back to epoch %d (victim p%d via %s, %dns of virtual work lost)",
		plan.epoch, victim, via, plan.virtualNS)
	return plan, nil
}

// decodeLine decodes and verifies all n checkpoints at epoch re, returning
// the restore set and the highest restored virtual clock. Any missing
// manifest, decode failure, or unresolvable chunk fails the whole line.
func (s *System) decodeLine(re int32, n int) ([]*procCheckpoint, int64, error) {
	cks := make([]*procCheckpoint, n)
	var maxV int64
	chunks := s.ckpts.Chunks()
	for i := 0; i < n; i++ {
		raw := s.ckpts.Get(i, re)
		if raw == nil {
			return nil, 0, fmt.Errorf("no checkpoint for proc %d at epoch %d", i, re)
		}
		ck, err := decodeCheckpoint(raw, chunks)
		if err != nil {
			return nil, 0, fmt.Errorf("proc %d epoch %d: %w", i, re, err)
		}
		if ck.Vnow > maxV {
			maxV = ck.Vnow
		}
		cks[i] = ck
	}
	return cks, maxV, nil
}

// restoreFromPlan overwrites the freshly built process set with the
// recovery line's checkpoints and reconciles cross-process state. Runs
// inside attempt, before any goroutine starts.
func (s *System) restoreFromPlan(plan *rollbackPlan) error {
	if plan.cks != nil {
		for i, p := range s.procs {
			if err := p.restoreFromCheckpoint(plan.cks[i]); err != nil {
				return err
			}
		}
		if err := s.reconcileRestored(); err != nil {
			return err
		}
	}
	wall := time.Since(plan.started).Nanoseconds()
	s.recStats.WallNS += wall
	s.tel.Emit(0, telemetry.KRecoveryDone, s.procs[0].vnow,
		int64(plan.epoch), plan.virtualNS, wall)
	dbgf("RECOVERY: restored %d procs at epoch %d in %dns wall", len(s.procs), plan.epoch, wall)
	return nil
}

// reconcileRestored repairs the cross-process protocol state after a
// uniform restore. Each checkpoint is internally consistent, but the
// processes do not checkpoint at the same instant: a fast process can
// depart the barrier and issue next-epoch requests before a slow one has
// checkpointed, so a manager's checkpoint may record tenure or directory
// hand-offs whose counterpart was rolled back — and the dead process may
// simply have died holding a lock. Both cases look the same after
// restore: the manager-side record points at a process whose own state
// shows no tenure. Reclaim those locks and repair the page directory.
func (s *System) reconcileRestored() error {
	n := s.cfg.NumProcs

	// The master's barrier state is rebuilt from the global restore: the
	// barrier epoch equals the restored process epoch, and the global VC is
	// the merge of everyone's restored vector (all pre-line intervals are
	// globally known at a barrier).
	master := s.procs[0]
	if master.bar != nil {
		g := vc.New(n)
		for _, q := range s.procs {
			g.Merge(q.vcur)
		}
		master.bar.gvc = g
		master.bar.epoch = master.epoch
	}

	// Combining-tree barrier: every node's per-epoch reduction state was
	// clean at its checkpoint (the release resets it before the departure
	// cut), so a restored node just realigns its tree epoch with its
	// process epoch.
	for _, q := range s.procs {
		if t := q.tree; t != nil {
			t.epoch = q.epoch
			t.clear(n)
		}
	}

	// Lock reclamation: a manager whose lastHolder has no tenure and no
	// grant obligation on its own side is pointing at a rolled-back future
	// or a dead holder; the manager reclaims the lock and will grant the
	// next request directly.
	for _, m := range s.procs {
		ids := make([]int, 0, len(m.locks))
		for id := range m.locks {
			ids = append(ids, id)
		}
		sort.Ints(ids)
		for _, id := range ids {
			ls := m.locks[id]
			if id%n != m.id || ls.lastHolder < 0 {
				continue
			}
			hs := s.procs[ls.lastHolder].locks[id]
			if hs == nil || (!hs.holding && !hs.releasedUngranted) {
				m.tel.Emit(m.id, telemetry.KLockReclaim, m.vnow,
					int64(id), int64(ls.lastHolder), 0)
				dbgf("RECOVERY: manager p%d reclaims lock %d from p%d", m.id, id, ls.lastHolder)
				ls.lastHolder = -1
				s.recStats.LocksReclaimed++
			}
		}
	}

	// Page-directory repair (ownership protocols only): a directory entry
	// pointing at a process that does not own the page records an ownership
	// transfer that straddled the recovery line. Re-anchor it at a process
	// that still owns the page, or at any valid copy (every copy that
	// survived the barrier's write notices is current as of the line).
	if s.cfg.Protocol != MultiWriter {
		for i := 0; i < s.layout.NumPages; i++ {
			pg := mem.PageID(i)
			home := s.procs[i%n]
			o := home.dirOwner[pg]
			if o >= 0 && s.procs[o].owned[pg] {
				continue
			}
			newOwner := -1
			for _, q := range s.procs {
				if q.owned[pg] {
					newOwner = q.id
					break
				}
			}
			if newOwner < 0 {
				for _, q := range s.procs {
					if q.state[pg] != pageInvalid {
						newOwner = q.id
						break
					}
				}
			}
			if newOwner < 0 {
				return fmt.Errorf("page %d has no valid copy at the recovery line", pg)
			}
			dbgf("RECOVERY: directory re-anchors page %d at p%d (was p%d)", pg, newOwner, o)
			s.procs[newOwner].owned[pg] = true
			home.dirOwner[pg] = newOwner
			s.recStats.PagesReconciled++
		}
	}
	return nil
}

// RecoveryStats returns cumulative crash-recovery counters for the run.
func (s *System) RecoveryStats() RecoveryStats { return s.recStats }

// CheckpointStats returns cumulative checkpoint counters for the run
// (zero if Checkpoint was not enabled).
func (s *System) CheckpointStats() CheckpointStats {
	if s.ckpts == nil {
		return CheckpointStats{}
	}
	return s.ckpts.Stats()
}
