package dsm

import (
	"fmt"
	"sort"
	"sync/atomic"

	"lrcrace/internal/castore"
	"lrcrace/internal/telemetry"
)

// CorruptMode selects how a CorruptionPlan damages stored checkpoints.
type CorruptMode int

const (
	// CorruptChunk flips a bit in the stored copy of each victim chunk, so
	// resolving it fails its hash check (castore.ErrCorrupt).
	CorruptChunk CorruptMode = iota
	// DeleteChunk drops each victim chunk's stored bytes entirely, so
	// resolving it fails with castore.ErrMissing.
	DeleteChunk
)

func (m CorruptMode) String() string {
	switch m {
	case CorruptChunk:
		return "corrupt-chunk"
	case DeleteChunk:
		return "delete-chunk"
	default:
		return fmt.Sprintf("CorruptMode(%d)", int(m))
	}
}

// CorruptionPlan schedules deterministic damage to stored checkpoint
// state — the storage-fault sibling of CrashPlan (process death) and
// simnet.FaultPlan (wire faults). Once every process has deposited its
// checkpoint for Epoch, the plan fires exactly once: Count chunks of that
// epoch's closure, chosen by a seeded PRNG over the sorted address list,
// are tampered with or deleted.
//
// Corruption is silent until a rollback tries to use the damaged epoch;
// then manifest decoding detects the broken closure (the address is the
// hash) and recovery falls back to the newest older epoch that still
// verifies. Re-execution across the damaged barrier re-deposits the true
// chunk contents, healing the store.
type CorruptionPlan struct {
	// Epoch is the barrier epoch whose deposited checkpoints are attacked.
	// Must be ≥ 1: epoch 0 is the initial state and has no checkpoints.
	Epoch int32
	// Mode is the kind of damage.
	Mode CorruptMode
	// Count is how many distinct chunks are attacked; 0 → 1. Capped at the
	// epoch's closure size.
	Count int
	// Seed drives the deterministic chunk choice.
	Seed uint64

	fired atomic.Bool
}

// Validate checks the plan.
func (c *CorruptionPlan) Validate() error {
	if c.Epoch < 1 {
		return fmt.Errorf("corruption plan: epoch %d (want ≥ 1; epoch 0 has no checkpoints)", c.Epoch)
	}
	if c.Count < 0 {
		return fmt.Errorf("corruption plan: Count = %d", c.Count)
	}
	switch c.Mode {
	case CorruptChunk, DeleteChunk:
	default:
		return fmt.Errorf("corruption plan: unknown mode %d", int(c.Mode))
	}
	return nil
}

// Fired reports whether the plan's damage has been injected.
func (c *CorruptionPlan) Fired() bool { return c.fired.Load() }

// RandomCorruptionPlan derives a corruption plan deterministically from
// seed for a run of the given epoch count: a seed-driven target epoch and
// chunk count with the requested damage mode. The same seed always
// produces the same plan; nil if the run has no checkpointed epoch to
// attack.
func RandomCorruptionPlan(seed uint64, epochs int32, mode CorruptMode) *CorruptionPlan {
	if epochs < 1 {
		return nil
	}
	next := splitmix64(seed)
	return &CorruptionPlan{
		Epoch: 1 + int32(next()%uint64(epochs)),
		Mode:  mode,
		Count: 1 + int(next()%2),
		Seed:  next(),
	}
}

// maybeCorrupt fires the system's corruption plan once all processes have
// deposited checkpoints for epoch. Called from checkpointLocked after
// each deposit; the CAS makes the racing depositors inject exactly once.
func (s *System) maybeCorrupt(epoch int32) {
	cp := s.cfg.Corruption
	if cp == nil || epoch != cp.Epoch || cp.fired.Load() {
		return
	}
	n := s.cfg.NumProcs
	if !s.ckpts.haveAll(epoch, n) {
		return
	}
	if !cp.fired.CompareAndSwap(false, true) {
		return
	}
	hit := s.ckpts.corruptEpoch(epoch, n, cp)
	s.tel.Emit(0, telemetry.KCkptCorrupt, 0, int64(epoch), int64(hit), int64(cp.Mode))
	dbgf("checkpoint corruption injected: epoch %d, %d chunks, %v", epoch, hit, cp.Mode)
}

// corruptEpoch applies the plan's damage to epoch's chunk closure: the
// union of every process's chunk references at that epoch, deduplicated
// and lexicographically sorted so the seeded choice is deterministic.
// Returns the number of chunks attacked.
func (cs *CheckpointStore) corruptEpoch(epoch int32, n int, cp *CorruptionPlan) int {
	cs.mu.Lock()
	seen := make(map[castore.Addr]bool)
	var addrs []castore.Addr
	for p := 0; p < n; p++ {
		for _, a := range cs.byProc[p][epoch].addrs {
			if !seen[a] {
				seen[a] = true
				addrs = append(addrs, a)
			}
		}
	}
	cs.mu.Unlock()
	if len(addrs) == 0 {
		return 0
	}
	sort.Slice(addrs, func(i, j int) bool {
		for k := range addrs[i] {
			if addrs[i][k] != addrs[j][k] {
				return addrs[i][k] < addrs[j][k]
			}
		}
		return false
	})
	count := cp.Count
	if count <= 0 {
		count = 1
	}
	if count > len(addrs) {
		count = len(addrs)
	}
	next := splitmix64(cp.Seed)
	picked := make(map[int]bool, count)
	hit := 0
	for hit < count {
		i := int(next() % uint64(len(addrs)))
		for picked[i] {
			i = (i + 1) % len(addrs)
		}
		picked[i] = true
		switch cp.Mode {
		case DeleteChunk:
			cs.chunks.Delete(addrs[i])
		default:
			cs.chunks.Tamper(addrs[i])
		}
		hit++
	}
	return hit
}
