package dsm

import (
	"reflect"
	"testing"

	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/simnet"
)

// chaosPlan is the acceptance-criteria chaos mix: 10% drop, 5% dup,
// bounded reordering.
func chaosPlan(seed int64) *simnet.FaultPlan {
	return &simnet.FaultPlan{Seed: seed, Drop: 0.10, Dup: 0.05, Reorder: 0.10, MaxReorder: 3}
}

// newChaosSys mirrors newSys with the lossy wire and the reliability
// sublayer enabled.
func newChaosSys(t *testing.T, nproc int, proto ProtocolKind, detect bool, seed int64) *System {
	t.Helper()
	s, err := New(Config{
		NumProcs:   nproc,
		SharedSize: 16 * 1024,
		PageSize:   1024,
		Protocol:   proto,
		Detect:     detect,
		Faults:     chaosPlan(seed),
		Reliable:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// raceKeys reduces reports to a comparable, order-independent set.
func raceKeys(reports []race.Report) map[string]bool {
	keys := map[string]bool{}
	for _, r := range race.DedupByAddr(reports) {
		keys[r.String()] = true
	}
	return keys
}

// runFigure2 drives the paper's Figure 2 execution (same as
// TestPaperFigure2EndToEnd) on the given system and returns the deduped
// races.
func runFigure2(t *testing.T, s *System, p1SecondWrite, p2Write int) []race.Report {
	t.Helper()
	page0, _ := s.Alloc("page0", 1024)
	addr := func(word int) mem.Addr { return page0 + mem.Addr(word*8) }
	p1Released := make(chan struct{})
	p2Acquired := make(chan struct{})
	err := s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Lock(0)
			p.Write(addr(0), 1)
			p.Unlock(0)
			close(p1Released)
			<-p2Acquired
			p.Write(addr(p1SecondWrite), 2)
		} else {
			<-p1Released
			p.Lock(0)
			p.Write(addr(p2Write), 3)
			p.Unlock(0)
			close(p2Acquired)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return race.DedupByAddr(s.Races())
}

// TestChaosFigure2SameRaces runs Figure 2 over the chaos wire and demands
// the exact same race sets as the reliable run: the reliability sublayer
// must make a 10%-drop wire protocol-invisible.
func TestChaosFigure2SameRaces(t *testing.T) {
	for _, tc := range []struct {
		name                   string
		p1SecondWrite, p2Write int
	}{
		{"same-word", 8, 8},
		{"false-sharing", 8, 9},
		{"ordered-then-racy", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			reliable := runFigure2(t, newSys(t, 2, SingleWriter, true), tc.p1SecondWrite, tc.p2Write)
			chaosSys := newChaosSys(t, 2, SingleWriter, true, 0xC0FFEE)
			chaos := runFigure2(t, chaosSys, tc.p1SecondWrite, tc.p2Write)
			if !reflect.DeepEqual(raceKeys(reliable), raceKeys(chaos)) {
				t.Errorf("race sets differ:\nreliable: %v\nchaos:    %v", reliable, chaos)
			}
			st := chaosSys.NetStats()
			if st.TotalDropped() == 0 {
				t.Error("chaos wire dropped nothing — plan not applied")
			}
			if st.Retransmits == 0 {
				t.Error("no retransmissions despite drops")
			}
		})
	}
}

// runFigure5 drives a deterministic (real-time gated) rendering of the
// paper's Figure 5 missing-synchronization queue on the given system:
// P1 publishes without a release pairing, P2 consumes without an acquire,
// P3 scribbles into the consumed slot afterwards. Every access is gated
// by channels, so the race set is identical run to run.
func runFigure5(t *testing.T, s *System) []race.Report {
	t.Helper()
	qPtr, _ := s.AllocWords("qPtr", 1)
	qEmpty, _ := s.AllocWords("qEmpty", 1)
	buf, _ := s.AllocWords("buf", 64)
	p1Done := make(chan struct{})
	p2Done := make(chan struct{})
	err := s.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Write(buf+mem.Addr(32*8), 99)
			p.Write(qPtr, 32)
			p.Write(qEmpty, 0)
			close(p1Done)
		case 1:
			<-p1Done
			if p.Read(qEmpty) == 0 {
				idx := p.Read(qPtr)
				p.Read(buf + mem.Addr(idx*8))
			}
			close(p2Done)
		case 2:
			<-p2Done
			p.Write(buf+mem.Addr(32*8), 7)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	return race.DedupByAddr(s.Races())
}

func TestChaosFigure5SameRaces(t *testing.T) {
	reliable := runFigure5(t, newSys(t, 3, SingleWriter, true))
	chaosSys := newChaosSys(t, 3, SingleWriter, true, 0xBADCAB)
	chaos := runFigure5(t, chaosSys)
	if !reflect.DeepEqual(raceKeys(reliable), raceKeys(chaos)) {
		t.Errorf("race sets differ:\nreliable: %v\nchaos:    %v", reliable, chaos)
	}
	if st := chaosSys.NetStats(); st.TotalDropped() == 0 || st.Retransmits == 0 {
		t.Errorf("chaos not exercised: dropped=%d retransmits=%d", st.TotalDropped(), st.Retransmits)
	}
}

// TestChaosBothProtocols runs a lock-ordered increment chain under chaos
// on both coherence protocols: result correctness (no lost updates)
// proves page replies, diffs and grants all survive the lossy wire.
func TestChaosBothProtocols(t *testing.T) {
	bothProtocols(t, func(t *testing.T, proto ProtocolKind) {
		s := newChaosSys(t, 4, proto, false, 77)
		counter, _ := s.AllocWords("counter", 1)
		const rounds = 5
		err := s.Run(func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Lock(0)
				p.Write(counter, p.Read(counter)+1)
				p.Unlock(0)
			}
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := s.SnapshotWord(counter); got != 4*rounds {
			t.Errorf("counter = %d, want %d (lost update over chaos wire)", got, 4*rounds)
		}
	})
}

// TestChaosDeterministicRaceSets runs the same chaos seed twice over a
// deterministic scenario: identical race.Report sets both times (the
// replay property fault injection must preserve).
func TestChaosDeterministicRaceSets(t *testing.T) {
	run := func() map[string]bool {
		s := newChaosSys(t, 2, SingleWriter, true, 31337)
		return raceKeys(runFigure2(t, s, 8, 8))
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same chaos seed produced different race sets:\n%v\nvs\n%v", a, b)
	}
}

// TestChaosRequiresReliable: the config layer refuses a lossy plan
// without the reliability sublayer.
func TestChaosRequiresReliable(t *testing.T) {
	_, err := New(Config{
		NumProcs:   2,
		SharedSize: 4096,
		Faults:     chaosPlan(1),
	})
	if err == nil {
		t.Fatal("lossy FaultPlan without Reliable accepted")
	}
	// A malformed plan is rejected at New, not deferred to Run.
	if _, err := New(Config{
		NumProcs:   2,
		SharedSize: 4096,
		Faults:     &simnet.FaultPlan{Seed: 1, Drop: 1.5},
		Reliable:   true,
	}); err == nil {
		t.Fatal("Drop=1.5 accepted at New")
	}
	// Jitter alone preserves the FIFO/reliable contract and is allowed.
	if _, err := New(Config{
		NumProcs:   2,
		SharedSize: 4096,
		Faults:     &simnet.FaultPlan{Seed: 1, JitterNS: 1000},
	}); err != nil {
		t.Fatalf("jitter-only plan rejected: %v", err)
	}
	// Faults on a custom transport are rejected.
	nw := simnet.New(2)
	if _, err := New(Config{
		NumProcs:   2,
		SharedSize: 4096,
		Transport:  nw,
		Faults:     &simnet.FaultPlan{Seed: 1, JitterNS: 1000},
	}); err == nil {
		t.Fatal("Faults with custom Transport accepted")
	}
}
