package dsm

import (
	"strings"
	"testing"

	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
)

// TestERCLockCriticalSection: coherence under the eager protocol.
func TestERCLockCriticalSection(t *testing.T) {
	s := newSys(t, 4, EagerRC, false)
	ctr, _ := s.AllocWords("ctr", 1)
	const K = 20
	err := s.Run(func(p *Proc) {
		for i := 0; i < K; i++ {
			p.Lock(1)
			p.Write(ctr, p.Read(ctr)+1)
			p.Unlock(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SnapshotWord(ctr); got != 4*K {
		t.Errorf("ctr = %d, want %d", got, 4*K)
	}
}

// TestERCBarrierPropagation: barrier apps work under ERC too.
func TestERCBarrierPropagation(t *testing.T) {
	s := newSys(t, 3, EagerRC, false)
	arr, _ := s.AllocWords("arr", 64)
	err := s.Run(func(p *Proc) {
		if p.ID() == 0 {
			for i := 0; i < 64; i++ {
				p.Write(arr+mem.Addr(i*8), uint64(100+i))
			}
		}
		p.Barrier()
		for i := 0; i < 64; i++ {
			if got := p.Read(arr + mem.Addr(i*8)); got != uint64(100+i) {
				t.Errorf("proc %d: arr[%d] = %d", p.ID(), i, got)
				return
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestERCEagerInvalidation: the semantic difference from LRC — a release
// invalidates every process's copy immediately, even processes that never
// acquire. Under LRC the non-acquiring reader would keep its stale copy.
func TestERCEagerInvalidation(t *testing.T) {
	run := func(proto ProtocolKind) (staleReads int64) {
		s := newSys(t, 2, proto, false)
		x, _ := s.AllocWords("x", 1)
		writerDone := make(chan struct{})
		readerSaw := make(chan uint64, 1)
		err := s.Run(func(p *Proc) {
			if p.ID() == 0 {
				p.Lock(0)
				p.Write(x, 1)
				p.Unlock(0)
				p.Barrier() // both cache x=1
				p.Lock(0)
				p.Write(x, 2)
				p.Unlock(0) // ERC: invalidates P1's copy right here
				close(writerDone)
				p.Barrier()
			} else {
				p.Barrier()
				_ = p.Read(x) // cache the page
				<-writerDone  // writer's release has fully completed
				// No acquire of lock 0: under LRC this read legally
				// returns the stale cached 1; under ERC the copy was
				// invalidated at the writer's release, so the fault
				// fetches 2.
				readerSaw <- p.Read(x)
				p.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if v := <-readerSaw; v == 1 {
			return 1
		}
		return 0
	}
	if stale := run(EagerRC); stale != 0 {
		t.Error("ERC reader saw a stale value after the writer's release completed")
	}
	// The LRC run may or may not be stale (the read-only copy is legal but
	// fetch-from-owner can also return fresh data); the assertion that LRC
	// *permits* staleness is covered by the race-detection tests. Here we
	// only assert it does not crash.
	run(SingleWriter)
}

// TestERCRejectsDetection: the paper's core dependency, as a config error.
func TestERCRejectsDetection(t *testing.T) {
	_, err := New(Config{NumProcs: 2, SharedSize: 4096, Protocol: EagerRC, Detect: true})
	if err == nil || !strings.Contains(err.Error(), "LRC metadata") {
		t.Errorf("err = %v, want LRC-metadata explanation", err)
	}
}

// TestERCMessageCostVsLRC: the classic LRC result — for lock-based sharing,
// eager release consistency sends strictly more messages (a broadcast
// round per release) than LRC's piggybacked notices.
func TestERCMessageCostVsLRC(t *testing.T) {
	run := func(proto ProtocolKind) (msgs int64, invals int64) {
		s := newSys(t, 4, proto, false)
		ctr, _ := s.AllocWords("ctr", 1)
		err := s.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Lock(1)
				p.Write(ctr, p.Read(ctr)+1)
				p.Unlock(1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		st := s.NetStats()
		return st.TotalMessages(), st.Messages[msg.TInval]
	}
	lrcMsgs, lrcInvals := run(SingleWriter)
	ercMsgs, ercInvals := run(EagerRC)
	if lrcInvals != 0 {
		t.Errorf("LRC sent %d eager invalidations", lrcInvals)
	}
	if ercInvals == 0 {
		t.Error("ERC sent no eager invalidations")
	}
	if ercMsgs <= lrcMsgs {
		t.Errorf("ERC messages (%d) not above LRC (%d) — the laziness advantage vanished", ercMsgs, lrcMsgs)
	}
}

// TestERCProtocolString covers the new kind's String.
func TestERCProtocolString(t *testing.T) {
	if EagerRC.String() != "eager-rc" {
		t.Errorf("String = %q", EagerRC.String())
	}
}

// TestERCBarrierAndLockApps: a mixed barrier+lock workload computes the
// right answer under the eager protocol (coherence-only parity with LRC).
func TestERCBarrierAndLockApps(t *testing.T) {
	s := newSys(t, 3, EagerRC, false)
	arr, _ := s.AllocWords("arr", 3)
	sum, _ := s.AllocWords("sum", 1)
	err := s.Run(func(p *Proc) {
		p.Write(arr+mem.Addr(p.ID()*8), uint64(p.ID()+1))
		p.Barrier()
		total := uint64(0)
		for q := 0; q < 3; q++ {
			total += p.Read(arr + mem.Addr(q*8))
		}
		p.Lock(0)
		p.Write(sum, p.Read(sum)+total)
		p.Unlock(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SnapshotWord(sum); got != 18 { // 3 procs × (1+2+3)
		t.Errorf("sum = %d, want 18", got)
	}
}
