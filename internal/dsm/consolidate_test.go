package dsm

import (
	"testing"
)

// TestConsolidateDetectsAndPrunes (§6.3): a barrier-free lock program uses
// Consolidate to bound metadata growth; races within each consolidated
// batch are found, and interval logs shrink at each consolidation.
func TestConsolidateDetectsAndPrunes(t *testing.T) {
	s := newSys(t, 3, SingleWriter, true)
	x, _ := s.AllocWords("x", 1)
	ctr, _ := s.AllocWords("ctr", 1)

	logSizes := make(chan int, 16)
	err := s.Run(func(p *Proc) {
		for batch := 0; batch < 3; batch++ {
			for i := 0; i < 5; i++ {
				p.Lock(0)
				p.Write(ctr, p.Read(ctr)+1)
				p.Unlock(0)
				p.Write(x, uint64(p.ID())) // racy in every batch
			}
			p.Consolidate()
			if p.ID() == 1 {
				p.mu.Lock()
				logSizes <- p.log.Len()
				p.mu.Unlock()
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	close(logSizes)

	// Races found in every batch (consolidation is an epoch boundary, so
	// at least one report per batch epoch).
	epochs := map[int32]bool{}
	for _, r := range s.Races() {
		if r.Addr != x {
			t.Errorf("race off the racy variable: %v", r)
		}
		epochs[r.Epoch] = true
	}
	if len(epochs) < 3 {
		t.Errorf("races found in %d epochs, want >=3 (one per batch)", len(epochs))
	}

	// Metadata bounded: the per-proc interval log stays small after each
	// consolidation instead of growing with the run.
	var max int
	for n := range logSizes {
		if n > max {
			max = n
		}
	}
	// Each batch creates ~5 lock-pair intervals per proc; without pruning
	// the log would exceed 3 batches × 3 procs × ~12 intervals.
	if max > 45 {
		t.Errorf("interval log grew to %d records; consolidation did not prune", max)
	}
	if got := s.SnapshotWord(ctr); got != 45 {
		t.Errorf("ctr = %d, want 45", got)
	}
}
