package dsm

import (
	"math"
	"testing"

	"lrcrace/internal/mem"
	"lrcrace/internal/race"
)

// TestPaperFigure2EndToEnd drives the paper's Figure 2 execution through
// the full DSM: P1 writes x and releases; P2 acquires (so σ1^1 ≺ σ2^2) and
// writes; P1 then writes again without synchronization. Same-page different
// words ⇒ false sharing (no report); same word ⇒ data race.
func TestPaperFigure2EndToEnd(t *testing.T) {
	run := func(p1SecondWrite, p2Write int) []race.Report {
		s := newSys(t, 2, SingleWriter, true)
		page0, _ := s.Alloc("page0", 1024) // one full page
		addr := func(word int) mem.Addr { return page0 + mem.Addr(word*8) }
		// Real-time gates pin the figure's ordering: P1's release precedes
		// P2's acquire, and P1's second write follows P2's critical section
		// (so it cannot learn of it through any chain).
		p1Released := make(chan struct{})
		p2Acquired := make(chan struct{})
		err := s.Run(func(p *Proc) {
			if p.ID() == 0 { // P1
				p.Lock(0)
				p.Write(addr(0), 1) // w1(x)
				p.Unlock(0)
				close(p1Released)
				<-p2Acquired
				p.Write(addr(p1SecondWrite), 2) // the unsynchronized second write
			} else { // P2
				<-p1Released
				p.Lock(0) // acquire corresponding to P1's release
				p.Write(addr(p2Write), 3)
				p.Unlock(0)
				close(p2Acquired)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return race.DedupByAddr(s.Races())
	}

	// P1's second write to y (word 8), P2 writes y too: true sharing.
	if races := run(8, 8); len(races) != 1 || !races[0].WriteWrite() {
		t.Errorf("same-word case: races = %v, want one WW", races)
	}
	// P1's second write to y, P2 writes z (word 9): false sharing only.
	if races := run(8, 9); len(races) != 0 {
		t.Errorf("false-sharing case reported races: %v", races)
	}
	// P2 writes x itself: ordered by the lock (w1 ≺ acquire), no race with
	// w1; but P1's second unsynchronized write of x races with P2's.
	if races := run(0, 0); len(races) != 1 {
		t.Errorf("ordered-then-racy case: races = %v, want one", races)
	}
}

// TestPaperFigure5Scenario reproduces Adve's missing-synchronization queue
// example (the paper's Figure 5): P1 fills a queue and "forgets" the
// release/acquire pairing with P2; both the intended races (qPtr, qEmpty)
// and the consequent buffer races are reported — our system, like the
// paper's, reports all races, not only the sequentially-consistent ones.
func TestPaperFigure5Scenario(t *testing.T) {
	s := newSys(t, 3, SingleWriter, true)
	qPtr, _ := s.AllocWords("qPtr", 1)
	qEmpty, _ := s.AllocWords("qEmpty", 1)
	buf, _ := s.AllocWords("buf", 64)

	p1Done := make(chan struct{})
	err := s.Run(func(p *Proc) {
		switch p.ID() {
		case 0: // P1: publishes the queue WITHOUT a release pairing
			p.Write(qPtr, 32)
			p.Write(qEmpty, 0)
			close(p1Done)
		case 1: // P2: consumes WITHOUT an acquire pairing
			<-p1Done // real-time ordering only — invisible to the DSM
			if p.Read(qEmpty) == 0 {
				ptr := p.Read(qPtr)
				// On this weak-memory system the read may see the old
				// pointer value (0) — exactly Adve's point.
				p.Write(buf+mem.Addr(ptr%40)*8, 1)
				p.Write(buf+mem.Addr(ptr%40+1)*8, 2)
			}
		case 2: // P3: concurrent writer into the same buffer region
			<-p1Done
			for w := 0; w < 42; w++ {
				p.Write(buf+mem.Addr(w%64)*8, 9)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	racy := map[string]bool{}
	for _, r := range race.DedupByAddr(s.Races()) {
		sym, ok := s.SymbolAt(r.Addr)
		if !ok {
			t.Errorf("race at unmapped address %#x", r.Addr)
			continue
		}
		racy[sym.Name] = true
	}
	for _, want := range []string{"qPtr", "qEmpty", "buf"} {
		if !racy[want] {
			t.Errorf("missing race on %q (got %v)", want, racy)
		}
	}
}

// TestTypedAccessors covers the F64/I64 wrappers.
func TestTypedAccessors(t *testing.T) {
	s := newSys(t, 1, SingleWriter, false)
	a, _ := s.AllocWords("a", 2)
	err := s.Run(func(p *Proc) {
		p.WriteF64(a, -3.25)
		if got := p.ReadF64(a); got != -3.25 {
			t.Errorf("ReadF64 = %v", got)
		}
		p.WriteI64(a+8, -42)
		if got := p.ReadI64(a + 8); got != -42 {
			t.Errorf("ReadI64 = %v", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.SnapshotF64(a); got != -3.25 {
		t.Errorf("SnapshotF64 = %v", got)
	}
	if got := int64(s.SnapshotWord(a + 8)); got != -42 {
		t.Errorf("SnapshotWord = %v", got)
	}
	if math.IsNaN(s.SnapshotF64(a)) {
		t.Error("NaN")
	}
}

// TestSnapshotWordBothProtocols: authoritative post-run reads.
func TestSnapshotWordBothProtocols(t *testing.T) {
	bothProtocols(t, func(t *testing.T, proto ProtocolKind) {
		s := newSys(t, 3, proto, false)
		arr, _ := s.AllocWords("arr", 12)
		err := s.Run(func(p *Proc) {
			for k := 0; k < 4; k++ {
				p.Write(arr+mem.Addr((p.ID()*4+k)*8), uint64(p.ID()*100+k))
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 3; q++ {
			for k := 0; k < 4; k++ {
				want := uint64(q*100 + k)
				if got := s.SnapshotWord(arr + mem.Addr((q*4+k)*8)); got != want {
					t.Errorf("SnapshotWord[%d,%d] = %d, want %d", q, k, got, want)
				}
			}
		}
	})
}

// TestStatsCounters: Compute/PrivateAccess bookkeeping and net stats.
func TestStatsCounters(t *testing.T) {
	s := newSys(t, 2, SingleWriter, true)
	x, _ := s.AllocWords("x", 1)
	err := s.Run(func(p *Proc) {
		p.Compute(123)
		p.PrivateAccess(7)
		if p.ID() == 0 {
			p.Write(x, 1)
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range s.Procs() {
		st := p.Stats()
		if st.ComputeOps != 123 || st.PrivateAccesses != 7 {
			t.Errorf("proc %d counters: %+v", i, st)
		}
		if st.Barriers != 2 { // explicit + implicit final
			t.Errorf("proc %d barriers = %d", i, st.Barriers)
		}
		if p.VirtualTime() <= 0 {
			t.Errorf("proc %d virtual time not advanced", i)
		}
	}
	if s.NetStats().TotalMessages() == 0 {
		t.Error("no messages recorded")
	}
	if s.VirtualTime() <= 0 {
		t.Error("system virtual time not advanced")
	}
}
