package dsm

import (
	"math/rand"
	"sort"
	"testing"

	"lrcrace/internal/hbdet"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
)

// TestCrossValidationAgainstHappensBefore runs randomized workloads twice —
// once under the LRC-metadata detector, once with a classic vector-clock
// happens-before detector attached to the same execution via the trace hook
// — and checks that both flag exactly the same set of racy addresses.
//
// The workloads are generated from a fixed per-seed schedule (which proc
// accesses which address in which epoch, under which lock), so both
// detectors observe equivalent executions even though scheduling differs.
func TestCrossValidationAgainstHappensBefore(t *testing.T) {
	crossValidate(t, SingleWriter)
}

// TestCrossValidationMultiWriter repeats the cross-validation under the
// multi-writer diff protocol: the detector must be protocol-independent.
func TestCrossValidationMultiWriter(t *testing.T) {
	crossValidate(t, MultiWriter)
}

func crossValidate(t *testing.T, proto ProtocolKind) {
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run("", func(t *testing.T) {
			r := rand.New(rand.NewSource(seed))
			nproc := 2 + r.Intn(3)
			nepoch := 1 + r.Intn(3)
			nwords := 24

			// Schedule: per epoch, per proc, a list of ops.
			type op struct {
				word  int
				write bool
				lock  int // -1 = unsynchronized
			}
			sched := make([][][]op, nepoch)
			for e := range sched {
				sched[e] = make([][]op, nproc)
				for p := range sched[e] {
					nops := r.Intn(5)
					for k := 0; k < nops; k++ {
						sched[e][p] = append(sched[e][p], op{
							word:  r.Intn(nwords),
							write: r.Intn(2) == 0,
							lock:  r.Intn(3) - 1, // -1, 0, or 1
						})
					}
				}
			}

			hb := hbdet.New(nproc)
			s, err := New(Config{
				NumProcs:   nproc,
				SharedSize: 4 * 1024,
				PageSize:   512,
				Protocol:   proto,
				Detect:     true,
				Tracer:     hb,
			})
			if err != nil {
				t.Fatal(err)
			}
			base, _ := s.AllocWords("words", nwords)
			err = s.Run(func(p *Proc) {
				for e := 0; e < nepoch; e++ {
					for _, o := range sched[e][p.ID()] {
						a := base + mem.Addr(o.word*8)
						if o.lock >= 0 {
							p.Lock(o.lock)
						}
						if o.write {
							p.Write(a, uint64(o.word))
						} else {
							p.Read(a)
						}
						if o.lock >= 0 {
							p.Unlock(o.lock)
						}
					}
					p.Barrier()
				}
			})
			if err != nil {
				t.Fatal(err)
			}

			lrcAddrs := map[mem.Addr]bool{}
			for _, rep := range s.Races() {
				lrcAddrs[rep.Addr] = true
			}
			hbAddrs := hb.RacyAddrs()

			var lrcList []mem.Addr
			for a := range lrcAddrs {
				lrcList = append(lrcList, a)
			}
			sort.Slice(lrcList, func(i, j int) bool { return lrcList[i] < lrcList[j] })

			if len(lrcList) != len(hbAddrs) {
				t.Fatalf("seed %d: LRC detector flags %v, happens-before flags %v",
					seed, lrcList, hbAddrs)
			}
			for i := range lrcList {
				if lrcList[i] != hbAddrs[i] {
					t.Fatalf("seed %d: LRC %v vs HB %v", seed, lrcList, hbAddrs)
				}
			}
			_ = race.DedupByAddr // referenced for doc purposes
		})
	}
}
