package dsm

import (
	"strings"
	"testing"

	"lrcrace/internal/mem"
	"lrcrace/internal/race"
)

// newSys builds a small system for tests.
func newSys(t *testing.T, nproc int, proto ProtocolKind, detect bool) *System {
	t.Helper()
	s, err := New(Config{
		NumProcs:   nproc,
		SharedSize: 16 * 1024,
		PageSize:   1024,
		Protocol:   proto,
		Detect:     detect,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func bothProtocols(t *testing.T, f func(t *testing.T, proto ProtocolKind)) {
	t.Run("single-writer", func(t *testing.T) { f(t, SingleWriter) })
	t.Run("multi-writer", func(t *testing.T) { f(t, MultiWriter) })
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{NumProcs: 0, SharedSize: 1024}); err == nil {
		t.Error("zero procs accepted")
	}
	if _, err := New(Config{NumProcs: 1, SharedSize: 0}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := New(Config{NumProcs: 1, SharedSize: 1024, WritesFromDiffs: true}); err == nil {
		t.Error("WritesFromDiffs without multi-writer accepted")
	}
}

func TestAlloc(t *testing.T) {
	s := newSys(t, 2, SingleWriter, false)
	a, err := s.Alloc("x", 10) // rounds to 16
	if err != nil || a != 0 {
		t.Fatalf("Alloc x: %v %v", a, err)
	}
	b, err := s.AllocWords("y", 2)
	if err != nil || b != 16 {
		t.Fatalf("Alloc y: %v %v", b, err)
	}
	if _, err := s.Alloc("neg", -1); err == nil {
		t.Error("negative size accepted")
	}
	if _, err := s.Alloc("huge", 1<<20); err == nil {
		t.Error("over-segment allocation accepted")
	}
	sym, ok := s.SymbolAt(20)
	if !ok || sym.Name != "y" {
		t.Errorf("SymbolAt(20) = %+v %v", sym, ok)
	}
	if _, ok := s.SymbolAt(4096); ok {
		t.Error("SymbolAt past allocations succeeded")
	}
	if s.AllocBytes() != 32 {
		t.Errorf("AllocBytes = %d", s.AllocBytes())
	}
}

func TestSingleProcRun(t *testing.T) {
	s := newSys(t, 1, SingleWriter, true)
	x, _ := s.AllocWords("x", 4)
	err := s.Run(func(p *Proc) {
		p.Write(x, 42)
		p.Barrier()
		if got := p.Read(x); got != 42 {
			t.Errorf("Read = %d", got)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Races()) != 0 {
		t.Errorf("single proc reported races: %v", s.Races())
	}
	if s.VirtualTime() == 0 {
		t.Error("virtual clock did not advance")
	}
}

// TestBarrierPropagation: data written by one process before a barrier is
// visible to all after it.
func TestBarrierPropagation(t *testing.T) {
	bothProtocols(t, func(t *testing.T, proto ProtocolKind) {
		s := newSys(t, 4, proto, false)
		arr, _ := s.AllocWords("arr", 256) // spans two 1 KB pages
		err := s.Run(func(p *Proc) {
			if p.ID() == 0 {
				for i := 0; i < 256; i++ {
					p.Write(arr+mem.Addr(i*8), uint64(1000+i))
				}
			}
			p.Barrier()
			for i := 0; i < 256; i++ {
				if got := p.Read(arr + mem.Addr(i*8)); got != uint64(1000+i) {
					t.Errorf("proc %d: arr[%d] = %d", p.ID(), i, got)
					return
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
	})
}

// TestLockCriticalSection: a shared counter incremented under a lock by
// every process reaches exactly N*K.
func TestLockCriticalSection(t *testing.T) {
	bothProtocols(t, func(t *testing.T, proto ProtocolKind) {
		s := newSys(t, 4, proto, false)
		ctr, _ := s.AllocWords("ctr", 1)
		const K = 25
		err := s.Run(func(p *Proc) {
			for i := 0; i < K; i++ {
				p.Lock(3)
				v := p.Read(ctr)
				p.Write(ctr, v+1)
				p.Unlock(3)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		// Check final value from any proc after the implicit final barrier.
		s2 := s.procs[1]
		s2.mu.Lock()
		if s2.state[s.layout.Page(ctr)] == pageInvalid {
			s2.mu.Unlock()
			// Fetch through the API is no longer possible (run over); read
			// master copy instead.
			got := s.procs[0].seg.Word(ctr)
			if got != 4*K && proto == SingleWriter {
				// Master may not own the page; find the owner's copy.
				var best uint64
				for _, q := range s.procs {
					if q.owned[s.layout.Page(ctr)] {
						best = q.seg.Word(ctr)
					}
				}
				got = best
			}
			if got != 4*K {
				t.Errorf("ctr = %d, want %d", got, 4*K)
			}
			return
		}
		got := s2.seg.Word(ctr)
		s2.mu.Unlock()
		if got != 4*K {
			t.Errorf("ctr = %d, want %d", got, 4*K)
		}
	})
}

// TestLRCStaleness: a process that does not synchronize keeps reading its
// stale copy (the lazy part of LRC); synchronizing brings the new value.
func TestLRCStaleness(t *testing.T) {
	s := newSys(t, 2, SingleWriter, false)
	x, _ := s.AllocWords("x", 1)
	stale := make(chan uint64, 1)
	fresh := make(chan uint64, 1)
	err := s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Lock(0)
			p.Write(x, 1)
			p.Unlock(0)
			p.Barrier() // everyone sees x=1
			p.Lock(0)
			p.Write(x, 2)
			p.Unlock(0)
			p.Barrier() // sync point A (no acquire of lock 0 by p1 yet)
		} else {
			p.Barrier()
			// LRC is a consistency floor: the fetch may return 1 (required
			// minimum) or 2 (the owner's current copy, if p0 ran ahead).
			if v0 := p.Read(x); v0 != 1 && v0 != 2 {
				t.Errorf("initial read = %d, want 1 or 2", v0)
			}
			p.Barrier() // sync point A
			// NOTE: the barrier is itself an acquire, so write notices for
			// x=2 arrive here and the next read faults and sees 2. True
			// staleness without any sync is exercised in the race tests.
			stale <- p.Read(x)
			p.Lock(0)
			p.Unlock(0)
			fresh <- p.Read(x)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := <-stale; v != 2 {
		t.Errorf("post-barrier read = %d, want 2 (barrier carries notices)", v)
	}
	if v := <-fresh; v != 2 {
		t.Errorf("post-acquire read = %d, want 2", v)
	}
}

// TestWriteWriteRaceDetected: two processes write the same word in the same
// epoch without synchronization → one write-write race at the right address.
func TestWriteWriteRaceDetected(t *testing.T) {
	bothProtocols(t, func(t *testing.T, proto ProtocolKind) {
		s := newSys(t, 2, proto, true)
		x, _ := s.AllocWords("x", 1)
		err := s.Run(func(p *Proc) {
			p.Write(x, uint64(p.ID()+1))
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		races := race.DedupByAddr(s.Races())
		if len(races) != 1 {
			t.Fatalf("races = %v, want exactly one", s.Races())
		}
		r := races[0]
		if !r.WriteWrite() || r.Addr != x {
			t.Errorf("race = %+v, want WW at %#x", r, x)
		}
	})
}

// TestReadWriteRaceDetected: unsynchronized read vs locked write.
func TestReadWriteRaceDetected(t *testing.T) {
	s := newSys(t, 2, SingleWriter, true)
	bound, _ := s.AllocWords("bound", 1)
	err := s.Run(func(p *Proc) {
		if p.ID() == 0 {
			p.Lock(1)
			p.Write(bound, 7)
			p.Unlock(1)
		} else {
			_ = p.Read(bound) // unsynchronized read — the TSP pattern
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	races := race.DedupByAddr(s.Races())
	if len(races) != 1 || races[0].WriteWrite() || races[0].Addr != bound {
		t.Fatalf("races = %v, want one RW at %#x", s.Races(), bound)
	}
}

// TestFalseSharingNotReported: writes to different words of one page.
func TestFalseSharingNotReported(t *testing.T) {
	bothProtocols(t, func(t *testing.T, proto ProtocolKind) {
		s := newSys(t, 2, proto, true)
		arr, _ := s.AllocWords("arr", 8)
		err := s.Run(func(p *Proc) {
			p.Write(arr+mem.Addr(p.ID()*8), uint64(p.ID()))
			p.Barrier()
			// Both values must survive (multi-writer merges diffs;
			// single-writer serializes via ownership migration).
			for q := 0; q < 2; q++ {
				if got := p.Read(arr + mem.Addr(q*8)); got != uint64(q) {
					t.Errorf("proc %d: arr[%d] = %d", p.ID(), q, got)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Races()) != 0 {
			t.Errorf("false sharing reported as race: %v", s.Races())
		}
	})
}

// TestSynchronizedProgramNoRaces: all conflicting accesses under one lock.
func TestSynchronizedProgramNoRaces(t *testing.T) {
	bothProtocols(t, func(t *testing.T, proto ProtocolKind) {
		s := newSys(t, 4, proto, true)
		x, _ := s.AllocWords("x", 1)
		err := s.Run(func(p *Proc) {
			for i := 0; i < 10; i++ {
				p.Lock(0)
				p.Write(x, p.Read(x)+1)
				p.Unlock(0)
			}
			p.Barrier()
			_ = p.Read(x)
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Races()) != 0 {
			t.Errorf("synchronized program reported races: %v", s.Races())
		}
	})
}

// TestRaceAcrossLockedAndUnlocked: same address, one side locked — still a
// race (lock does not order against a non-acquiring access).
func TestRaceAcrossLockedAndUnlocked(t *testing.T) {
	s := newSys(t, 3, SingleWriter, true)
	x, _ := s.AllocWords("x", 1)
	err := s.Run(func(p *Proc) {
		switch p.ID() {
		case 0:
			p.Lock(0)
			p.Write(x, 1)
			p.Unlock(0)
		case 1:
			p.Lock(0)
			p.Write(x, 2)
			p.Unlock(0)
		case 2:
			p.Write(x, 3) // no lock: races with both
		}
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	races := s.Races()
	if len(races) < 2 {
		t.Fatalf("races = %v, want proc 2 racing with both lockers", races)
	}
	for _, r := range races {
		if r.A.Interval.Proc != 2 && r.B.Interval.Proc != 2 {
			t.Errorf("race not involving proc 2: %v (lockers are ordered)", r)
		}
	}
}

// TestDetectionOffNoRaces: same racy program, detection disabled.
func TestDetectionOffNoRaces(t *testing.T) {
	s := newSys(t, 2, SingleWriter, false)
	x, _ := s.AllocWords("x", 1)
	err := s.Run(func(p *Proc) {
		p.Write(x, uint64(p.ID()))
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Races()) != 0 {
		t.Errorf("races reported with detection off: %v", s.Races())
	}
}

// TestFirstOnlySuppressesLaterEpochs at the full-system level (§6.4).
func TestFirstOnlySuppressesLaterEpochs(t *testing.T) {
	mk := func(firstOnly bool) int {
		s, err := New(Config{NumProcs: 2, SharedSize: 16 * 1024, PageSize: 1024,
			Detect: true, FirstOnly: firstOnly})
		if err != nil {
			t.Fatal(err)
		}
		x, _ := s.AllocWords("x", 1)
		y, _ := s.Alloc("y", 8)
		if err := s.Run(func(p *Proc) {
			p.Write(x, uint64(p.ID())) // race in epoch 0
			p.Barrier()
			p.Write(y, uint64(p.ID())) // race in epoch 1
			p.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return len(race.DedupByAddr(s.Races()))
	}
	if n := mk(false); n != 2 {
		t.Errorf("without FirstOnly: %d distinct races, want 2", n)
	}
	if n := mk(true); n != 1 {
		t.Errorf("with FirstOnly: %d distinct races, want 1", n)
	}
}

// TestOwnershipMigration: alternating locked writers on one page keep data
// intact while ownership migrates.
func TestOwnershipMigration(t *testing.T) {
	s := newSys(t, 4, SingleWriter, false)
	slots, _ := s.AllocWords("slots", 4)
	sum, _ := s.AllocWords("sum", 1)
	err := s.Run(func(p *Proc) {
		for round := 0; round < 8; round++ {
			p.Lock(0)
			p.Write(slots+mem.Addr(p.ID()*8), uint64((round+1)*100+p.ID()))
			p.Write(sum, p.Read(sum)+1)
			p.Unlock(0)
		}
		p.Barrier()
		p.Lock(0)
		if got := p.Read(sum); got != 32 {
			t.Errorf("proc %d: sum = %d, want 32", p.ID(), got)
		}
		for q := 0; q < 4; q++ {
			if got := p.Read(slots + mem.Addr(q*8)); got != uint64(8*100+q) {
				t.Errorf("proc %d: slot %d = %d", p.ID(), q, got)
			}
		}
		p.Unlock(0)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestMultiWriterConcurrentFalseSharing: many writers to distinct words of
// the same page in the same epoch; diffs must merge at the home.
func TestMultiWriterConcurrentFalseSharing(t *testing.T) {
	s := newSys(t, 4, MultiWriter, false)
	arr, _ := s.AllocWords("arr", 16)
	err := s.Run(func(p *Proc) {
		for k := 0; k < 4; k++ {
			p.Write(arr+mem.Addr((p.ID()*4+k)*8), uint64(p.ID()*4+k+1))
		}
		p.Barrier()
		for i := 0; i < 16; i++ {
			if got := p.Read(arr + mem.Addr(i*8)); got != uint64(i+1) {
				t.Errorf("proc %d: arr[%d] = %d, want %d", p.ID(), i, got, i+1)
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestWritesFromDiffs (§6.5): with diff-derived write detection, a
// same-value overwrite escapes detection, while a changed value is caught.
func TestWritesFromDiffs(t *testing.T) {
	run := func(writeVal uint64) int {
		s, err := New(Config{NumProcs: 2, SharedSize: 16 * 1024, PageSize: 1024,
			Protocol: MultiWriter, Detect: true, WritesFromDiffs: true})
		if err != nil {
			t.Fatal(err)
		}
		x, _ := s.AllocWords("x", 1)
		if err := s.Run(func(p *Proc) {
			if p.ID() == 0 {
				p.Write(x, 5)
			}
			p.Barrier()
			if p.ID() == 1 {
				p.Write(x, writeVal) // 5 → no diff entry → invisible
			}
			if p.ID() == 0 {
				_ = p.Read(x)
			}
			p.Barrier()
		}); err != nil {
			t.Fatal(err)
		}
		return len(race.DedupByAddr(s.Races()))
	}
	if n := run(6); n == 0 {
		t.Error("changed value not detected under WritesFromDiffs")
	}
	if n := run(5); n != 0 {
		t.Error("same-value overwrite detected — diffs should miss it (weaker guarantee)")
	}
}

// TestBarrierIntervalCount: barrier-only programs create two interval
// structures per process per barrier, as in the paper's Table 1.
func TestBarrierIntervalCount(t *testing.T) {
	s := newSys(t, 4, SingleWriter, true)
	x, _ := s.AllocWords("x", 4)
	const barriers = 5
	err := s.Run(func(p *Proc) {
		for b := 0; b < barriers; b++ {
			p.Write(x+mem.Addr(p.ID()%4)*8, uint64(b)) // false sharing only
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	ds := s.DetectorStats()
	// barriers + 1 implicit final barrier epochs; 2 records per proc each.
	wantPerEpoch := 2 * 4
	if got := ds.IntervalsTotal / ds.Epochs; got != wantPerEpoch {
		t.Errorf("intervals per epoch = %d, want %d", got, wantPerEpoch)
	}
}

// TestPanicPropagates: an app panic surfaces as an error, not a hang.
func TestPanicPropagates(t *testing.T) {
	s := newSys(t, 2, SingleWriter, false)
	_, _ = s.AllocWords("x", 1)
	err := s.Run(func(p *Proc) {
		if p.ID() == 1 {
			panic("boom")
		}
		p.Barrier() // would deadlock without panic propagation
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("err = %v, want panic propagation", err)
	}
}

// TestAllocAfterRunFails.
func TestAllocAfterRunFails(t *testing.T) {
	s := newSys(t, 1, SingleWriter, false)
	x, _ := s.AllocWords("x", 1)
	if err := s.Run(func(p *Proc) { p.Write(x, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Alloc("late", 8); err == nil {
		t.Error("Alloc after Run accepted")
	}
}

// TestDetectionSlowsVirtualTime: same program, detection on vs off — the
// detected run must be slower in virtual time, and stats populated.
func TestDetectionSlowsVirtualTime(t *testing.T) {
	run := func(detect bool) (*System, int64) {
		s := newSys(t, 4, SingleWriter, detect)
		// One full page per process: no ownership thrashing, so virtual
		// time is deterministic up to lock-free protocol noise.
		arr, _ := s.Alloc("arr", 4*1024)
		err := s.Run(func(p *Proc) {
			for i := 0; i < 200; i++ {
				a := arr + mem.Addr(p.ID()*1024+(i%16)*8)
				p.Write(a, uint64(i))
				_ = p.Read(a)
				p.PrivateAccess(3)
				p.Compute(10)
			}
			p.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return s, s.VirtualTime()
	}
	_, base := run(false)
	sd, det := run(true)
	if det <= base {
		t.Errorf("virtual time with detection (%d) not above baseline (%d)", det, base)
	}
	st := sd.procs[1].Stats()
	if st.TProcCall == 0 || st.TAccessCheck == 0 || st.TCVMMods == 0 {
		t.Errorf("overhead counters empty: %+v", st)
	}
	if st.SharedReads != 200 || st.SharedWrites != 200 || st.PrivateAccesses != 600 {
		t.Errorf("access counters wrong: %+v", st)
	}
	if sd.procs[0].Stats().ReadNoticeBytes == 0 {
		t.Error("no read-notice bytes accounted")
	}
}

// TestManyLocksManyProcs: stress the 3-hop protocol with several locks and
// processes, including manager self-acquisition and re-acquisition.
func TestManyLocksManyProcs(t *testing.T) {
	s := newSys(t, 5, SingleWriter, false)
	ctrs, _ := s.AllocWords("ctrs", 3)
	const K = 12
	err := s.Run(func(p *Proc) {
		for i := 0; i < K; i++ {
			l := (p.ID() + i) % 3
			p.Lock(l)
			a := ctrs + mem.Addr(l*8)
			p.Write(a, p.Read(a)+1)
			p.Unlock(l)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sum the three counters via the owners' copies.
	var total uint64
	for l := 0; l < 3; l++ {
		a := ctrs + mem.Addr(l*8)
		pg := s.layout.Page(a)
		for _, q := range s.procs {
			if q.owned[pg] {
				total += q.seg.Word(a)
			}
		}
	}
	if total != 5*K {
		t.Errorf("total = %d, want %d", total, 5*K)
	}
}

// TestRecursiveLockPanics and unlock-without-hold.
func TestLockMisusePanics(t *testing.T) {
	s := newSys(t, 1, SingleWriter, false)
	_, _ = s.AllocWords("x", 1)
	err := s.Run(func(p *Proc) {
		p.Lock(0)
		p.Lock(0)
	})
	if err == nil || !strings.Contains(err.Error(), "recursive") {
		t.Errorf("recursive lock: err = %v", err)
	}

	s2 := newSys(t, 1, SingleWriter, false)
	err = s2.Run(func(p *Proc) { p.Unlock(0) })
	if err == nil || !strings.Contains(err.Error(), "not holding") {
		t.Errorf("unlock without hold: err = %v", err)
	}
}

// TestRunTwiceFails.
func TestRunTwice(t *testing.T) {
	s := newSys(t, 1, SingleWriter, false)
	if err := s.Run(func(p *Proc) {}); err != nil {
		t.Fatal(err)
	}
	// Second Run is a no-op returning the first result.
	if err := s.Run(func(p *Proc) { t.Error("second Run executed app") }); err != nil {
		t.Fatal(err)
	}
}
