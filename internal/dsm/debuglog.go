package dsm

import (
	"lrcrace/internal/dsm/debuglog"
	"lrcrace/internal/mem"
)

// The development event log lives in internal/dsm/debuglog so that the
// transports (tcpnet, reliable) can log into the same globally ordered
// stream without importing the DSM; these wrappers keep the historical
// dsm-level API used by tests.

// EnableDebugLog turns on the development event log (tests only).
func EnableDebugLog() { debuglog.Enable() }

// DisableDebugLog turns it off.
func DisableDebugLog() { debuglog.Disable(); dbgWatch = 0; dbgWatchOn = false }

var (
	dbgWatch   mem.Addr
	dbgWatchOn bool
)

// DebugWatchAddr traces reads/writes of one shared word (tests only).
func DebugWatchAddr(a mem.Addr) { dbgWatch = a; dbgWatchOn = true }

// DebugEvents returns the recorded events.
func DebugEvents() []string { return debuglog.Events() }

func dbgf(format string, args ...interface{}) { debuglog.Logf(format, args...) }
