package dsm

import (
	"fmt"
	"sync"

	"lrcrace/internal/mem"
)

// debugLog is a development aid: when enabled, protocol events are recorded
// in one globally ordered list. Tests enable it to diagnose rare
// interleaving bugs; it is off (nil) in normal operation.
type debugLog struct {
	mu     sync.Mutex
	events []string
}

var dbg *debugLog

// EnableDebugLog turns on the development event log (tests only).
func EnableDebugLog() { dbg = &debugLog{} }

// DisableDebugLog turns it off.
func DisableDebugLog() { dbg = nil; dbgWatch = 0; dbgWatchOn = false }

var (
	dbgWatch   mem.Addr
	dbgWatchOn bool
)

// DebugWatchAddr traces reads/writes of one shared word (tests only).
func DebugWatchAddr(a mem.Addr) { dbgWatch = a; dbgWatchOn = true }

// DebugEvents returns the recorded events.
func DebugEvents() []string {
	if dbg == nil {
		return nil
	}
	dbg.mu.Lock()
	defer dbg.mu.Unlock()
	return append([]string(nil), dbg.events...)
}

func dbgf(format string, args ...interface{}) {
	if dbg == nil {
		return
	}
	dbg.mu.Lock()
	dbg.events = append(dbg.events, fmt.Sprintf(format, args...))
	dbg.mu.Unlock()
}
