package dsm

import (
	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/vc"
)

// The sharded race check (Config.ShardedCheck) distributes step 5 of the
// detection procedure, which the serial path runs entirely at the barrier
// master while every other process idles inside the barrier:
//
//  1. The master builds the epoch's check list as usual, then partitions
//     its entries by page across the N processes
//     (race.PartitionCheckList) and ships the owner assignment inside the
//     barrier-release message (BarrierRelease.ShardOwner).
//  2. Every process sends one BitmapReply per shard owner — the slice of
//     its bitmaps each owner's entries name — instead of one N-to-1 reply
//     to the master. A shard owner therefore collects exactly N replies.
//  3. Each owner compares its shard (race.CompareShard) in parallel with
//     the others, then the results flow up a binary reduction tree: node p
//     merges its own shard output with the ShardResults of children 2p+1
//     and 2p+2 and forwards the merge to parent (p-1)/2.
//  4. The root (process 0) folds the tree's total into the detector
//     (Detector.FoldShardResults): canonical re-sort, §6.4 first-race
//     filtering, stats accumulation — leaving race.State byte-identical to
//     the serial path's — and broadcasts BarrierDone.
//
// The shard round's messages can arrive ahead of the BarrierRelease that
// establishes the epoch's shard state (the reliable layer retransmits
// across links independently), so early deliveries park in Proc.shardPend
// until initShardState drains them.

// shardState is one process's state for the current epoch's sharded check
// round. It exists from the arrival of a sharded BarrierRelease until the
// process has forwarded its subtree's merged result (or, at the root,
// broadcast BarrierDone).
type shardState struct {
	epoch   int32
	entries []race.CheckEntry // this process's shard of the check list

	expect int // bitmap replies to collect: n if owner, else 0
	got    int
	from   []bool               // which procs' replies have arrived
	maxArr int64                // latest virtual arrival among replies
	source map[bmKey]mem.Bitmap // collected bitmaps, keyed like the serial round

	kidsLeft int // reduction-tree children yet to report
	childV   int64
	reports  []race.Report // own shard output merged with children's
	bmCmp    int64
	wordOv   int64

	localDone bool  // own shard compared (immediately true for non-owners)
	localV    int64 // virtual completion time of the local compare
}

// Bitmaps implements race.BitmapSource over the shard's collected replies.
func (s *shardState) Bitmaps(id vc.IntervalID, p mem.PageID) (read, write mem.Bitmap) {
	return s.source[bmKey{id, p, false}], s.source[bmKey{id, p, true}]
}

// shardChildren returns how many reduction-tree children proc id has in an
// n-process system (children of p are 2p+1 and 2p+2; the root is proc 0).
func shardChildren(id, n int) int {
	kids := 0
	for _, c := range []int{2*id + 1, 2*id + 2} {
		if c < n {
			kids++
		}
	}
	return kids
}

// initShardState is called by the service thread, under message order, when
// a sharded BarrierRelease arrives: it derives this process's shard, its
// reply expectation, and its tree fan-in, then drains any round messages
// that arrived early. Runs before the release is routed to the application
// thread, so the app thread's sendBitmaps can never race an uninitialized
// round.
func (p *Proc) initShardState(d simnet.Delivery, m *msg.BarrierRelease) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.shard != nil {
		p.protocolBug("sharded release for epoch %d while epoch %d round is open", m.Epoch, p.shard.epoch)
	}
	sh := &shardState{
		epoch:    m.Epoch,
		from:     make([]bool, p.n),
		source:   make(map[bmKey]mem.Bitmap),
		kidsLeft: shardChildren(p.id, p.n),
		localV:   p.arrival(d) + p.sys.cfg.Model.Handler,
	}
	owner := false
	for i, c := range m.Check {
		if int(m.ShardOwner[i]) == p.id {
			sh.entries = append(sh.entries, c)
			owner = true
		}
	}
	// An owner owed only empty replies still collects n of them: reply
	// count, not content, is what closes the round deterministically.
	if owner {
		sh.expect = p.n
	} else {
		sh.localDone = true
	}
	p.shard = sh
	pend := p.shardPend
	p.shardPend = nil
	for _, pd := range pend {
		p.dispatchShardLocked(pd)
	}
	p.advanceShardLocked()
}

// bufferShardLocked parks a round message that arrived before this
// process's BarrierRelease for its epoch.
func (p *Proc) bufferShardLocked(d simnet.Delivery) {
	p.shardPend = append(p.shardPend, d)
}

// dispatchShardLocked routes a (possibly previously buffered) shard-round
// message against the current shard state.
func (p *Proc) dispatchShardLocked(d simnet.Delivery) {
	switch m := d.Msg.(type) {
	case *msg.BitmapReply:
		p.shardBitmapLocked(d, m)
	case *msg.ShardResult:
		p.shardResultLocked(d, m)
	default:
		p.protocolBug("non-shard message %T buffered in shard queue", d.Msg)
	}
}

// handleShardBitmap is the service-thread entry for a BitmapReply under the
// sharded check.
func (p *Proc) handleShardBitmap(d simnet.Delivery, m *msg.BitmapReply) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shardBitmapLocked(d, m)
}

func (p *Proc) shardBitmapLocked(d simnet.Delivery, m *msg.BitmapReply) {
	sh := p.shard
	if sh == nil || m.Epoch > sh.epoch {
		p.bufferShardLocked(d)
		return
	}
	if m.Epoch < sh.epoch {
		p.protocolBug("BitmapReply for epoch %d during shard round %d", m.Epoch, sh.epoch)
	}
	if sh.expect == 0 {
		p.protocolBug("BitmapReply at non-owner p%d", p.id)
	}
	if sh.from[d.From] {
		p.protocolBug("duplicate BitmapReply from p%d", d.From)
	}
	for _, e := range m.Entries {
		id := vc.IntervalID{Proc: int(e.Proc), Index: vc.Index(e.Index)}
		if e.Read != nil {
			sh.source[bmKey{id, e.Page, false}] = e.Read
		}
		if e.Write != nil {
			sh.source[bmKey{id, e.Page, true}] = e.Write
		}
	}
	if arr := p.arrival(d); arr > sh.maxArr {
		sh.maxArr = arr
	}
	sh.from[d.From] = true
	sh.got++
	if sh.got < sh.expect {
		return
	}

	// All replies in: compare this shard. The work is charged to THIS
	// process — the point of sharding is that the comparison cost lands
	// where it runs, visible in the per-proc counters and timings.
	model := p.sys.cfg.Model
	reports, st := race.CompareShard(p.sys.layout, sh.entries, sh, sh.epoch)
	work := int64(st.BitmapsCompared) * model.BitmapCompare
	p.st.TBitmapCmp += work
	p.st.CheckEntriesCompared += int64(len(sh.entries))
	p.st.BitmapsCompared += int64(st.BitmapsCompared)
	v := sh.maxArr + model.Handler
	if sh.localV > v {
		v = sh.localV
	}
	sh.localV = v + work
	sh.reports = append(sh.reports, reports...)
	sh.bmCmp += int64(st.BitmapsCompared)
	sh.wordOv += int64(st.WordOverlaps)
	sh.localDone = true
	sh.source = nil // the shard's bitmaps are spent
	p.tel.Emit(p.id, telemetry.KShardCompare, sh.localV,
		int64(len(sh.entries)), int64(st.BitmapsCompared), work)
	p.advanceShardLocked()
}

// handleShardResult is the service-thread entry for a child's subtree
// result.
func (p *Proc) handleShardResult(d simnet.Delivery, m *msg.ShardResult) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.shardResultLocked(d, m)
}

func (p *Proc) shardResultLocked(d simnet.Delivery, m *msg.ShardResult) {
	sh := p.shard
	if sh == nil || m.Epoch > sh.epoch {
		p.bufferShardLocked(d)
		return
	}
	if m.Epoch < sh.epoch {
		p.protocolBug("ShardResult for epoch %d during shard round %d", m.Epoch, sh.epoch)
	}
	if sh.kidsLeft == 0 {
		p.protocolBug("ShardResult from p%d with no children outstanding", d.From)
	}
	sh.reports = append(sh.reports, m.Races...)
	sh.bmCmp += m.BitmapsCompared
	sh.wordOv += m.WordOverlaps
	if arr := p.arrival(d) + p.sys.cfg.Model.Handler; arr > sh.childV {
		sh.childV = arr
	}
	sh.kidsLeft--
	p.advanceShardLocked()
}

// advanceShardLocked completes this process's role in the round once its
// own shard is compared and every tree child has reported: interior nodes
// forward the merge to their parent; the root folds and broadcasts.
func (p *Proc) advanceShardLocked() {
	sh := p.shard
	if sh == nil || !sh.localDone || sh.kidsLeft > 0 {
		return
	}
	sendV := sh.localV
	if sh.childV > sendV {
		sendV = sh.childV
	}
	if p.id == 0 {
		p.finishShardedCheckLocked(sh, sendV)
		p.shard = nil
		return
	}
	p.tel.Emit(p.id, telemetry.KShardReduce, sendV,
		int64(sh.epoch), int64(len(sh.reports)), int64(shardChildren(p.id, p.n)))
	p.send((p.id-1)/2, &msg.ShardResult{
		Epoch:           sh.epoch,
		Races:           sh.reports,
		BitmapsCompared: sh.bmCmp,
		WordOverlaps:    sh.wordOv,
	}, sendV)
	p.shard = nil
}

// finishShardedCheckLocked is the root's round completion: fold the tree's
// merged results into the detector — restoring the serial report order and
// applying §6.4 filtering, so race.State (and therefore checkpoints) come
// out byte-identical to the serial path — then broadcast BarrierDone.
func (p *Proc) finishShardedCheckLocked(sh *shardState, doneV int64) {
	b := p.bar
	if b == nil || sh.epoch != b.epoch {
		p.protocolBug("sharded round completed for epoch %d at barrier epoch %d", sh.epoch, b.epoch)
	}
	det := p.sys.detector
	races := det.FoldShardResults(sh.reports, race.ShardStats{
		BitmapsCompared: int(sh.bmCmp),
		WordOverlaps:    int(sh.wordOv),
	}, b.epoch)
	det.Retain(races, b.records)

	p.tel.Emit(p.id, telemetry.KRaceCheck, doneV,
		int64(len(b.check)), sh.bmCmp, int64(len(races)))
	for _, r := range races {
		ww := int64(0)
		if r.WriteWrite() {
			ww = 1
		}
		p.tel.Emit(p.id, telemetry.KRaceFound, doneV, int64(r.Addr), int64(r.Epoch), ww)
	}
	done := &msg.BarrierDone{Epoch: b.epoch, Races: races}
	for q := 0; q < p.n; q++ {
		p.send(q, done, doneV)
	}
	p.resetBarrierLocked()
}
