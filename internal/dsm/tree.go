package dsm

import (
	"sort"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/vc"
)

// Combining-tree barrier (Config.BarrierTree).
//
// The flat barrier funnels all N arrivals — and the whole check-list build
// — through process 0. With BarrierTree: k (arity k ≥ 2; children of p are
// kp+1…kp+k, parent ⌊(p−1)/k⌋, root 0), arrivals instead reduce up a
// combining tree: each interior node waits for its own arrival plus one
// fully-reduced contribution per child, merges their interval records and
// vectors, runs the partial check-list build over the pairs that first
// meet at this node (race.BuildPartialCheckList — every cross-process pair
// spans two contributions at exactly one node, the LCA of the two
// processes), and forwards one TreeReduce to its parent. The root folds
// the partial lists (race.FoldCheckLists) into the same barrierState the
// flat master uses, so the release payload, the bitmap rounds (serial or
// sharded), checkpoints, and recovery all run unchanged — and the reported
// races and detector state are byte-identical to the flat oracle's.
//
// The release cascades down the same tree: the root sends one TreeRelease
// to itself; every node forwards a copy to its children before departing,
// so the release reaches depth d in d hops instead of one N-way broadcast.
// Forwarding is cut-through, not store-and-forward: a node re-stamps the
// copy one header latency after its parent's send time, so the payload's
// transmission delay is charged once per receiver (in arrival()) rather
// than once per hop — the same accounting the flat master's broadcast
// gets, where every receiver is charged independently off one send time.
// Each extra tree level therefore costs one MsgLatency, not a full
// re-serialization of the records and check list.
//
// Epoch safety needs no buffering: a node forwards the release to a child
// before resetting its own per-epoch state, and the child cannot reach the
// next barrier — let alone contribute to it — before receiving that
// release, so per-link FIFO guarantees a contribution never arrives at a
// parent still holding the previous epoch.

// treeParent returns the combining-tree parent of proc id under arity k.
func treeParent(id, k int) int { return (id - 1) / k }

// treeChildren returns the tree children of proc id under arity k with n
// processes, in ascending order.
func treeChildren(id, k, n int) []int {
	var kids []int
	for c := k*id + 1; c <= k*id+k && c < n; c++ {
		kids = append(kids, c)
	}
	return kids
}

// treeSubtree returns every process in the subtree rooted at id (id
// included), in ascending order.
func treeSubtree(id, k, n int) []int {
	out := []int{id}
	for i := 0; i < len(out); i++ {
		out = append(out, treeChildren(out[i], k, n)...)
	}
	sort.Ints(out)
	return out
}

// treeState is one process's per-epoch combining-tree bookkeeping. Leaves
// have expect == 0 and contribute nothing locally; interior nodes (and the
// root) collect expect = len(children)+1 contributions — their own arrival
// travels through the network as a self-addressed TreeArrive so every
// contribution takes the same path.
type treeState struct {
	arity  int
	expect int

	epoch int32
	got   int
	sent  bool // this epoch's reduction (or root release) has been emitted

	// from marks which processes the collected contributions cover — a
	// TreeArrive covers its sender, a TreeReduce covers the sender's whole
	// subtree. Only this node's own subtree positions are ever set; the
	// coverage ledger is what multi-hop crash blame reads.
	from []bool

	records []*interval.Record
	groups  [][]*interval.Record // one group per contribution, for the partial build
	gvc     vc.VC
	maxArr  int64
	minArr  int64 // earliest arrival in the subtree; -1 = none yet

	entries []race.CheckEntry // partial check lists merged from children
	merged  race.BuildStats
}

func newTreeState(id, k, n int) *treeState {
	t := &treeState{
		arity:  k,
		gvc:    vc.New(n),
		minArr: -1,
		from:   make([]bool, n),
	}
	if kids := treeChildren(id, k, n); len(kids) > 0 || id == 0 {
		t.expect = len(kids) + 1
	}
	return t
}

// clear resets the per-epoch fields (everything but arity/expect/epoch).
func (t *treeState) clear(n int) {
	t.got = 0
	t.sent = false
	t.records = nil
	t.groups = nil
	t.entries = nil
	t.merged = race.BuildStats{}
	t.gvc = vc.New(n)
	t.maxArr = 0
	t.minArr = -1
	for i := range t.from {
		t.from[i] = false
	}
}

// handleTreeArrive merges one process's own barrier arrival into this
// node's reduction (service thread; interior nodes and the root only —
// including the node's own self-addressed arrival).
func (p *Proc) handleTreeArrive(d simnet.Delivery, m *msg.TreeArrive) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.tree
	if t == nil || t.expect == 0 {
		p.protocolBug("TreeArrive at a tree leaf (or tree barrier off)")
	}
	if m.Epoch != t.epoch {
		p.protocolBug("TreeArrive for epoch %d during epoch %d", m.Epoch, t.epoch)
	}
	arrV := p.arrival(d)
	p.treeContributeLocked(d.From, []int{d.From}, m.Intervals, vcFromWire(m.VC), arrV, arrV, nil, race.BuildStats{})
}

// handleTreeReduce merges a child's fully-reduced subtree into this node's
// reduction (service thread).
func (p *Proc) handleTreeReduce(d simnet.Delivery, m *msg.TreeReduce) {
	p.mu.Lock()
	defer p.mu.Unlock()
	t := p.tree
	if t == nil || t.expect == 0 {
		p.protocolBug("TreeReduce at a tree leaf (or tree barrier off)")
	}
	if m.Epoch != t.epoch {
		p.protocolBug("TreeReduce for epoch %d during epoch %d", m.Epoch, t.epoch)
	}
	bst := race.BuildStats{
		PairComparisons:  m.PairComparisons,
		ConcurrentPairs:  m.ConcurrentPairs,
		OverlappingPairs: m.OverlappingPairs,
		NoticesScanned:   m.NoticesScanned,
	}
	p.treeContributeLocked(d.From, treeSubtree(d.From, t.arity, p.n),
		m.Intervals, vcFromWire(m.VC), p.arrival(d), m.MinArr, m.Entries, bst)
}

// treeContributeLocked records one contribution (an arrival or a subtree
// reduction) covering the given processes, and completes the node once
// every expected contribution is in.
func (p *Proc) treeContributeLocked(from int, covers []int, recs []*interval.Record,
	v vc.VC, arrV, minArr int64, entries []race.CheckEntry, bst race.BuildStats) {
	t := p.tree
	for _, q := range covers {
		if t.from[q] {
			p.protocolBug("duplicate tree contribution covering p%d (from p%d, epoch %d)", q, from, t.epoch)
		}
		t.from[q] = true
	}
	t.records = append(t.records, recs...)
	t.groups = append(t.groups, recs)
	t.gvc.Merge(v)
	if arrV > t.maxArr {
		t.maxArr = arrV
	}
	if minArr >= 0 && (t.minArr < 0 || minArr < t.minArr) {
		t.minArr = minArr
	}
	t.entries = append(t.entries, entries...)
	t.merged.Add(bst)
	t.got++
	if t.got == t.expect {
		p.treeCompleteLocked()
	}
}

// treeCompleteLocked runs when the node's subtree is fully reduced: the
// partial check-list build over this node's cross-contribution pairs, then
// either one TreeReduce up (interior node) or the fold and release (root).
func (p *Proc) treeCompleteLocked() {
	t := p.tree
	if t.sent {
		p.protocolBug("tree reduction for epoch %d already sent", t.epoch)
	}
	model := p.sys.cfg.Model
	var work int64
	if p.sys.cfg.Detect {
		entries, bst := race.BuildPartialCheckList(p.sys.raceOpts, t.groups)
		work = bst.PairComparisons*model.IntervalCompare + bst.NoticesScanned*model.PageOverlap
		p.st.TIntervalCmp += work
		t.entries = append(t.entries, entries...)
		t.merged.Add(bst)
	}
	doneV := t.maxArr + model.Handler + work
	t.sent = true

	if p.id != 0 {
		p.tel.Emit(p.id, telemetry.KTreeReduce, doneV, int64(t.epoch), int64(len(t.records)), work)
		red := &msg.TreeReduce{
			Epoch:            t.epoch,
			VC:               vcToWire(t.gvc),
			Intervals:        t.records,
			MinArr:           t.minArr,
			Entries:          t.entries,
			PairComparisons:  t.merged.PairComparisons,
			ConcurrentPairs:  t.merged.ConcurrentPairs,
			OverlappingPairs: t.merged.OverlappingPairs,
			NoticesScanned:   t.merged.NoticesScanned,
		}
		nbytes := p.send(treeParent(p.id, t.arity), red, doneV)
		p.recordSyncSend(t.records, nbytes)
		return
	}

	// Root: fold the distributed build into the flat master's barrierState,
	// so everything downstream of the release — bitmap rounds, checkpoint
	// extras, recovery reconciliation — runs exactly as under the flat
	// barrier.
	b := p.bar
	if b == nil || t.epoch != b.epoch {
		p.protocolBug("tree reduction complete for epoch %d at barrier epoch %d", t.epoch, b.epoch)
	}
	b.records = t.records
	b.gvc.Merge(t.gvc)
	b.maxArr = t.maxArr
	b.minArr = t.minArr
	b.check = nil
	if p.sys.cfg.Detect {
		b.check = p.sys.detector.FoldCheckLists(len(t.records), t.entries, t.merged)
	}

	p.tel.Emit(p.id, telemetry.KBarrierRelease, doneV,
		int64(b.epoch), int64(len(b.records)), b.maxArr-b.minArr)
	rel := &msg.TreeRelease{BarrierRelease: msg.BarrierRelease{
		Epoch:       b.epoch,
		GlobalVC:    vcToWire(b.gvc),
		Intervals:   b.records,
		Check:       b.check,
		NeedBitmaps: len(b.check) > 0,
	}}
	if p.sys.cfg.ShardedCheck && len(b.check) > 0 {
		rel.ShardOwner = race.PartitionCheckList(b.check, p.n)
	}
	// One self-send starts the cascade; handleTreeRelease forwards to the
	// children — sending copies here too would deliver the release twice.
	nbytes := p.send(p.id, rel, doneV)
	p.recordSyncSend(b.records, nbytes)
	switch {
	case len(b.check) == 0:
		p.resetBarrierLocked()
	case p.sys.cfg.ShardedCheck:
		// Kept for the sharded round's fold (finishShardedCheckLocked).
	default:
		b.bmWait = true
		b.bmCount = 0
		b.bmMaxArr = 0
		b.bmSource = make(map[bmKey]mem.Bitmap)
	}
}

// handleTreeRelease runs at every process when its copy of the release
// arrives (service thread): forward the cascade to the tree children FIRST
// — before resetting, so per-link FIFO keeps next-epoch contributions
// behind this epoch's release — then reset the per-epoch tree state and
// hand the release to the application thread.
func (p *Proc) handleTreeRelease(d simnet.Delivery, m *msg.TreeRelease) {
	p.mu.Lock()
	t := p.tree
	if t == nil {
		p.mu.Unlock()
		p.protocolBug("TreeRelease with the tree barrier off")
	}
	arr := p.arrival(d) + p.sys.cfg.Model.Handler
	// Cut-through forwarding: the copy leaves one header latency after the
	// parent's send time, while the payload is still streaming in, so a
	// child's arrival() charges the transmission delay once end-to-end
	// instead of once per hop. The node's own processing still waits for
	// the full payload (arr above).
	fwdV := d.VTime + p.sys.cfg.Model.MsgLatency
	kids := treeChildren(p.id, t.arity, p.n)
	for _, c := range kids {
		fwd := &msg.TreeRelease{BarrierRelease: m.BarrierRelease}
		nbytes := p.send(c, fwd, fwdV)
		p.recordSyncSend(m.Intervals, nbytes)
	}
	p.tel.Emit(p.id, telemetry.KTreeRelease, arr, int64(m.Epoch), int64(len(kids)), 0)
	p.resetTreeLocked(m.Epoch)
	p.mu.Unlock()
	if m.NeedBitmaps && p.sys.cfg.ShardedCheck && len(m.ShardOwner) > 0 {
		p.initShardState(d, &m.BarrierRelease)
	}
	p.replyCh <- d
	if !m.NeedBitmaps {
		p.awaitCheckpoint()
	}
}

// resetTreeLocked advances the tree state past the released epoch.
// Idempotent: a stale call for an already-reset epoch is a no-op.
func (p *Proc) resetTreeLocked(epoch int32) {
	t := p.tree
	if t == nil || t.epoch != epoch {
		return
	}
	t.epoch++
	t.clear(p.n)
}
