package dsm

import (
	"fmt"
	"testing"

	"lrcrace/internal/castore"
	"lrcrace/internal/mem"
)

// benchState builds a post-run process set with populated pages, bitmaps,
// and lock state: every proc owns a stripe of the segment and has raced on
// a shared word, so checkpoints carry real payloads.
func benchState(b *testing.B, n int) *System {
	b.Helper()
	s, err := New(Config{
		NumProcs:         n,
		SharedSize:       64 * 1024,
		PageSize:         1024,
		Protocol:         SingleWriter,
		Detect:           true,
		CheckpointRetain: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	// Four pages per proc, every word distinct across procs and pages so
	// chunks cannot dedup by accident — only genuine structural sharing
	// (an unchanged page across epochs) may hit.
	const stripeBytes = 4 * 1024
	words, err := s.AllocWords("grid", n*stripeBytes/8)
	if err != nil {
		b.Fatal(err)
	}
	err = s.RunEpochs(2, func() EpochFunc {
		return func(p *Proc, e int32) {
			base := words + mem.Addr(p.ID()*stripeBytes)
			for w := 0; w < stripeBytes/8; w++ {
				p.Write(base+mem.Addr(w*8), uint64(p.ID()*1_000_003+w*31+int(e)))
			}
			p.Lock(0)
			p.Write(words, uint64(p.ID()))
			p.Unlock(0)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// mutatePages dirties the first `frac`-th of each proc's resident pages in
// place, simulating one epoch's write footprint between checkpoints
// (frac=1 → every resident page changed, the chunked encoder's worst
// case; frac=4 → a quarter changed, a SOR-like stencil epoch).
func mutatePages(s *System, round int, frac int) {
	for _, p := range s.procs {
		resident := 0
		for i := range p.state {
			if p.state[i] != pageInvalid {
				resident++
			}
		}
		if resident == 0 {
			continue
		}
		touch := (resident + frac - 1) / frac
		seen := 0
		for i := range p.state {
			if p.state[i] == pageInvalid {
				continue
			}
			if seen < touch {
				pb := p.seg.PageBytes(mem.PageID(i))
				pb[0] = byte(round)
				pb[len(pb)/2] = byte(round >> 8)
			}
			seen++
			if seen >= touch {
				break
			}
		}
	}
}

// BenchmarkCheckpointEncode compares the two checkpoint encoders on
// identical process state: "full" inlines every payload (the pre-chunking
// format — what every barrier would cost without structural sharing) and
// "chunked" deposits payloads in a content-addressed store, paying only
// for chunks the previous epoch did not already hold. The sub-benchmarks
// vary the per-epoch write footprint; bytes/epoch is the stored cost of
// one barrier's checkpoints across all procs.
func BenchmarkCheckpointEncode(b *testing.B) {
	for _, n := range []int{4, 8} {
		s := benchState(b, n)

		b.Run(fmt.Sprintf("p%d/full", n), func(b *testing.B) {
			var bytes int64
			for i := 0; i < b.N; i++ {
				mutatePages(s, i, 4)
				for _, p := range s.procs {
					bytes += int64(len(p.encodeCheckpointFullLocked()))
				}
			}
			b.ReportMetric(float64(bytes)/float64(b.N), "bytes/epoch")
		})

		cases := []struct {
			name string
			frac int // 1/frac of resident pages dirtied per epoch
		}{
			{"chunked-unchanged", 0}, // steady state, no writes: manifests only
			{"chunked-quarter", 4},   // SOR-like stencil epoch
			{"chunked-all", 1},       // FFT-like full rewrite
		}
		for _, tc := range cases {
			tc := tc
			b.Run(fmt.Sprintf("p%d/%s", n, tc.name), func(b *testing.B) {
				st := castore.New()
				// Prime the store: epoch one pays the full closure once.
				for _, p := range s.procs {
					p.encodeCheckpointInto(st)
				}
				b.ResetTimer()
				var bytes int64
				for i := 0; i < b.N; i++ {
					if tc.frac > 0 {
						mutatePages(s, i+1, tc.frac)
					}
					pre := st.Stats().LiveBytes
					for _, p := range s.procs {
						m, _, _ := p.encodeCheckpointInto(st)
						bytes += int64(len(m))
					}
					bytes += st.Stats().LiveBytes - pre
				}
				b.ReportMetric(float64(bytes)/float64(b.N), "bytes/epoch")
			})
		}
	}
}
