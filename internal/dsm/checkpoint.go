package dsm

import (
	"fmt"
	"sort"
	"sync"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/vc"
)

// Barrier-epoch checkpointing.
//
// A barrier is a global quiescence point: every interval of the finished
// epoch has been closed, logged, exchanged, and checked for races; diffs
// are flushed; no lock tenures or page fetches belonging to the epoch are
// in flight. That makes the barrier departure the natural recovery line,
// so at each departure every process serializes its recovery state — page
// copies and protocol rights, twins, version vector, interval log and
// stored bitmaps, lock table, accumulated race reports, statistics, and
// (at process 0) the detector state — to bytes through the same codec
// style internal/msg uses for wire messages. The encoding is versioned,
// deterministic (map contents serialize in sorted order), and round-trips
// byte-exactly, so checkpoint sizes are genuinely measurable.

const (
	ckptMagic = 0x4c52434b // "LRCK"
	// ckptVersion 2: Stats gained CheckEntriesCompared and BitmapsCompared
	// (sharded-check work attribution). The store is in-memory and
	// per-run, so no cross-version decoding is needed.
	ckptVersion = 2
)

// CheckpointStats summarizes checkpoint activity for a run.
type CheckpointStats struct {
	Count int   // checkpoints taken
	Bytes int64 // total serialized bytes
}

// CheckpointStore is the stable store of serialized checkpoints, keyed by
// (process, epoch). Coordinated rollback restores every process from the
// latest epoch for which all processes have a checkpoint.
type CheckpointStore struct {
	mu     sync.Mutex
	byProc map[int]map[int32][]byte
	stats  CheckpointStats
}

// NewCheckpointStore returns an empty store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{byProc: make(map[int]map[int32][]byte)}
}

// Put deposits proc's checkpoint for epoch.
func (cs *CheckpointStore) Put(proc int, epoch int32, b []byte) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	m := cs.byProc[proc]
	if m == nil {
		m = make(map[int32][]byte)
		cs.byProc[proc] = m
	}
	if _, ok := m[epoch]; !ok {
		cs.stats.Count++
		cs.stats.Bytes += int64(len(b))
	}
	m[epoch] = b
}

// Get returns proc's checkpoint for epoch, or nil.
func (cs *CheckpointStore) Get(proc int, epoch int32) []byte {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.byProc[proc][epoch]
}

// LatestCommonEpoch returns the highest epoch for which all n processes
// hold a checkpoint — the recovery line of a coordinated rollback. Since
// every process checkpoints at every barrier departure, this is the
// minimum over processes of their latest checkpoint epoch; 0 (the initial
// state, before any barrier) if some process has none.
func (cs *CheckpointStore) LatestCommonEpoch(n int) int32 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	common := int32(-1)
	for p := 0; p < n; p++ {
		var latest int32
		for e := range cs.byProc[p] {
			if e > latest {
				latest = e
			}
		}
		if common < 0 || latest < common {
			common = latest
		}
	}
	if common < 0 {
		common = 0
	}
	return common
}

// Stats returns cumulative checkpoint counters.
func (cs *CheckpointStore) Stats() CheckpointStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.stats
}

// checkpointLocked serializes this process's recovery state and deposits
// it in the system's checkpoint store. Called at barrier departure (after
// epoch++ and the new interval's start, so the checkpoint is exactly the
// state execution resumes from) with p.mu held.
func (p *Proc) checkpointLocked() {
	b := p.encodeCheckpointLocked()
	p.sys.ckpts.Put(p.id, p.epoch, b)
	p.tel.Emit(p.id, telemetry.KCheckpoint, p.vnow, int64(p.epoch), int64(len(b)), 0)
	dbgf("p%d checkpoint epoch %d: %d bytes", p.id, p.epoch, len(b))
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func sortedPageSet(m map[mem.PageID]bool) []mem.PageID {
	out := make([]mem.PageID, 0, len(m))
	for pg := range m {
		out = append(out, pg)
	}
	interval.SortPages(out)
	return out
}

// encodeCheckpointLocked serializes the checkpointable state of p. The
// caller holds p.mu (the service thread mutates this state under the same
// lock, so the capture is atomic with respect to message handling).
func (p *Proc) encodeCheckpointLocked() []byte {
	e := &msg.Encoder{}
	e.U32(ckptMagic)
	e.U8(ckptVersion)
	e.U16(uint16(p.id))
	e.U16(uint16(p.n))
	e.I32(p.epoch)
	e.U32(uint32(p.curIndex))
	e.I64(p.vnow)
	e.VC(p.vcur)

	// Page table and copies. Transient fault state (expecting/fetching/
	// pendFwd) is quiescent at a barrier and is not serialized.
	np := p.sys.layout.NumPages
	e.U32(uint32(np))
	for i := 0; i < np; i++ {
		pg := mem.PageID(i)
		e.U8(uint8(p.state[pg]))
		e.U8(b2u8(p.owned[pg]))
		e.I32(int32(p.dirOwner[pg]))
		if p.state[pg] != pageInvalid {
			e.U8(1)
			e.Blob(p.seg.PageBytes(pg))
		} else {
			e.U8(0)
		}
	}

	// Twins (multi-writer pristine copies), sorted by page.
	twinPages := make([]mem.PageID, 0, len(p.twins))
	for pg := range p.twins {
		twinPages = append(twinPages, pg)
	}
	interval.SortPages(twinPages)
	e.U32(uint32(len(twinPages)))
	for _, pg := range twinPages {
		e.I32(int32(pg))
		e.Blob(p.twins[pg])
	}

	e.Pages(sortedPageSet(p.writtenPages))
	e.Pages(sortedPageSet(p.pendingInval))

	// Lock table: durable tenure state only. In-flight requests (awaiting,
	// pending grants, replay deferrals) are transient and re-established by
	// re-execution.
	lockIDs := make([]int, 0, len(p.locks))
	for id := range p.locks {
		lockIDs = append(lockIDs, id)
	}
	sort.Ints(lockIDs)
	e.U32(uint32(len(lockIDs)))
	for _, id := range lockIDs {
		ls := p.locks[id]
		e.I32(int32(id))
		e.U8(b2u8(ls.holding))
		e.U8(b2u8(ls.releasedUngranted))
		e.I64(ls.lastRelV)
		if ls.relVC != nil {
			e.U8(1)
			e.VC(ls.relVC)
		} else {
			e.U8(0)
		}
		e.I32(int32(ls.lastHolder))
	}

	// Interval log, current-epoch record queue, and stored access bitmaps.
	logRecs := p.log.Records()
	e.U32(uint32(len(logRecs)))
	for _, r := range logRecs {
		msg.EncodeRecord(e, r)
	}
	e.U32(uint32(len(p.epochRecords)))
	for _, r := range p.epochRecords {
		msg.EncodeRecord(e, r)
	}
	ents := p.store.Entries()
	e.U32(uint32(len(ents)))
	for _, en := range ents {
		e.IntervalID(en.ID)
		e.I32(int32(en.Page))
		e.U8(b2u8(en.Write))
		e.Bitmap(en.Bits)
	}

	// Race reports and statistics.
	e.U32(uint32(len(p.races)))
	for _, r := range p.races {
		msg.EncodeReport(e, r)
	}
	encodeProcStats(e, &p.st)

	// Master extras: barrier epoch and the detector's mutable state.
	if p.id == 0 && p.bar != nil {
		e.U8(1)
		e.I32(p.bar.epoch)
		if det := p.sys.detector; det != nil {
			e.U8(1)
			st := det.SnapshotState()
			encodeRaceStats(e, st.Stats)
			e.I32(st.FirstRacyEpoch)
			e.U32(uint32(len(st.RacyRecords)))
			for _, r := range st.RacyRecords {
				msg.EncodeRecord(e, r)
			}
		} else {
			e.U8(0)
		}
	} else {
		e.U8(0)
	}
	return e.Bytes()
}

func encodeProcStats(e *msg.Encoder, st *Stats) {
	for _, v := range []int64{
		st.SharedReads, st.SharedWrites, st.PrivateAccesses,
		st.ReadFaults, st.WriteFaults, st.IntervalsCreated,
		st.LockAcquires, st.Barriers, st.DiffsFlushed, st.DiffWords,
		st.ComputeOps,
		st.TProcCall, st.TAccessCheck, st.TCVMMods, st.TIntervalCmp, st.TBitmapCmp,
		st.ReadNoticeBytes, st.SyncMsgBytes, st.BitmapsCreated, st.BitmapsSent,
		st.CheckEntriesCompared, st.BitmapsCompared,
	} {
		e.I64(v)
	}
}

func decodeProcStats(d *msg.Decoder) Stats {
	var st Stats
	for _, f := range []*int64{
		&st.SharedReads, &st.SharedWrites, &st.PrivateAccesses,
		&st.ReadFaults, &st.WriteFaults, &st.IntervalsCreated,
		&st.LockAcquires, &st.Barriers, &st.DiffsFlushed, &st.DiffWords,
		&st.ComputeOps,
		&st.TProcCall, &st.TAccessCheck, &st.TCVMMods, &st.TIntervalCmp, &st.TBitmapCmp,
		&st.ReadNoticeBytes, &st.SyncMsgBytes, &st.BitmapsCreated, &st.BitmapsSent,
		&st.CheckEntriesCompared, &st.BitmapsCompared,
	} {
		*f = d.I64()
	}
	return st
}

func encodeRaceStats(e *msg.Encoder, st race.Stats) {
	for _, v := range []int{
		st.Epochs, st.IntervalsTotal, st.PairComparisons, st.ConcurrentPairs,
		st.OverlappingPairs, st.IntervalsInvolved, st.CheckEntries,
		st.NoticesScanned, st.BitmapsCompared, st.WordOverlaps, st.SuppressedReports,
	} {
		e.I64(int64(v))
	}
}

func decodeRaceStats(d *msg.Decoder) race.Stats {
	var st race.Stats
	for _, f := range []*int{
		&st.Epochs, &st.IntervalsTotal, &st.PairComparisons, &st.ConcurrentPairs,
		&st.OverlappingPairs, &st.IntervalsInvolved, &st.CheckEntries,
		&st.NoticesScanned, &st.BitmapsCompared, &st.WordOverlaps, &st.SuppressedReports,
	} {
		*f = int(d.I64())
	}
	return st
}

// ckptPage is one page-table entry of a decoded checkpoint.
type ckptPage struct {
	State    pageState
	Owned    bool
	DirOwner int
	Data     []byte // nil if the copy was invalid
}

// ckptLock is one lock-table entry of a decoded checkpoint.
type ckptLock struct {
	ID                int
	Holding           bool
	ReleasedUngranted bool
	LastRelV          int64
	RelVC             vc.VC // nil if never released
	LastHolder        int
}

// procCheckpoint is the decoded form of one process checkpoint.
type procCheckpoint struct {
	ID       int
	N        int
	Epoch    int32
	CurIndex vc.Index
	Vnow     int64
	Vcur     vc.VC

	Pages        []ckptPage
	Twins        map[mem.PageID][]byte
	Written      []mem.PageID
	PendingInval []mem.PageID
	Locks        []ckptLock
	Log          []*interval.Record
	EpochRecords []*interval.Record
	Bitmaps      []interval.StoredBitmap
	Races        []race.Report
	St           Stats

	HasMaster bool
	BarEpoch  int32
	HasDet    bool
	Det       race.State
}

// decodeCheckpoint parses a serialized checkpoint.
func decodeCheckpoint(b []byte) (*procCheckpoint, error) {
	d := msg.NewDecoder(b)
	if d.U32() != ckptMagic {
		return nil, fmt.Errorf("dsm: checkpoint: bad magic")
	}
	if v := d.U8(); v != ckptVersion {
		return nil, fmt.Errorf("dsm: checkpoint: unsupported version %d", v)
	}
	ck := &procCheckpoint{
		ID:       int(d.U16()),
		N:        int(d.U16()),
		Epoch:    d.I32(),
		CurIndex: vc.Index(d.U32()),
		Vnow:     d.I64(),
		Vcur:     d.VC(),
	}
	np := int(d.U32())
	ck.Pages = make([]ckptPage, np)
	for i := 0; i < np; i++ {
		pg := &ck.Pages[i]
		pg.State = pageState(d.U8())
		pg.Owned = d.U8() != 0
		pg.DirOwner = int(d.I32())
		if d.U8() != 0 {
			pg.Data = d.Blob()
		}
	}
	ntw := int(d.U32())
	ck.Twins = make(map[mem.PageID][]byte, ntw)
	for i := 0; i < ntw; i++ {
		pg := mem.PageID(d.I32())
		ck.Twins[pg] = d.Blob()
	}
	ck.Written = d.Pages()
	ck.PendingInval = d.Pages()
	nlk := int(d.U32())
	ck.Locks = make([]ckptLock, nlk)
	for i := 0; i < nlk; i++ {
		lk := &ck.Locks[i]
		lk.ID = int(d.I32())
		lk.Holding = d.U8() != 0
		lk.ReleasedUngranted = d.U8() != 0
		lk.LastRelV = d.I64()
		if d.U8() != 0 {
			lk.RelVC = d.VC()
		}
		lk.LastHolder = int(d.I32())
	}
	nlog := int(d.U32())
	for i := 0; i < nlog; i++ {
		ck.Log = append(ck.Log, msg.DecodeRecord(d))
	}
	nep := int(d.U32())
	for i := 0; i < nep; i++ {
		ck.EpochRecords = append(ck.EpochRecords, msg.DecodeRecord(d))
	}
	nbm := int(d.U32())
	for i := 0; i < nbm; i++ {
		var en interval.StoredBitmap
		en.ID = d.IntervalID()
		en.Page = mem.PageID(d.I32())
		en.Write = d.U8() != 0
		en.Bits = d.Bitmap()
		ck.Bitmaps = append(ck.Bitmaps, en)
	}
	nr := int(d.U32())
	for i := 0; i < nr; i++ {
		ck.Races = append(ck.Races, msg.DecodeReport(d))
	}
	ck.St = decodeProcStats(d)
	if d.U8() != 0 {
		ck.HasMaster = true
		ck.BarEpoch = d.I32()
		if d.U8() != 0 {
			ck.HasDet = true
			ck.Det.Stats = decodeRaceStats(d)
			ck.Det.FirstRacyEpoch = d.I32()
			ndr := int(d.U32())
			for i := 0; i < ndr; i++ {
				ck.Det.RacyRecords = append(ck.Det.RacyRecords, msg.DecodeRecord(d))
			}
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("dsm: checkpoint: %w", err)
	}
	if !d.Done() {
		return nil, fmt.Errorf("dsm: checkpoint: trailing bytes")
	}
	return ck, nil
}

// restoreFromCheckpoint overwrites a freshly built process with the state
// of a decoded checkpoint. Called before the service and application
// threads start, so no locking is needed.
func (p *Proc) restoreFromCheckpoint(ck *procCheckpoint) error {
	if ck.ID != p.id || ck.N != p.n {
		return fmt.Errorf("dsm: checkpoint for proc %d/%d restored at proc %d/%d",
			ck.ID, ck.N, p.id, p.n)
	}
	if len(ck.Pages) != p.sys.layout.NumPages {
		return fmt.Errorf("dsm: checkpoint has %d pages, layout has %d",
			len(ck.Pages), p.sys.layout.NumPages)
	}
	p.epoch = ck.Epoch
	p.curIndex = ck.CurIndex
	p.vnow = ck.Vnow
	p.vcur = ck.Vcur.Copy()
	for i := range ck.Pages {
		pg := mem.PageID(i)
		cp := &ck.Pages[i]
		p.state[pg] = cp.State
		p.owned[pg] = cp.Owned
		p.dirOwner[pg] = cp.DirOwner
		if cp.Data != nil {
			if len(cp.Data) != p.seg.PageSize {
				return fmt.Errorf("dsm: checkpoint page %d has %d bytes, page size is %d",
					pg, len(cp.Data), p.seg.PageSize)
			}
			p.seg.CopyPageIn(pg, cp.Data)
		}
	}
	p.twins = make(map[mem.PageID][]byte, len(ck.Twins))
	for pg, tw := range ck.Twins {
		p.twins[pg] = append([]byte(nil), tw...)
	}
	p.writtenPages = make(map[mem.PageID]bool, len(ck.Written))
	for _, pg := range ck.Written {
		p.writtenPages[pg] = true
	}
	p.pendingInval = make(map[mem.PageID]bool, len(ck.PendingInval))
	for _, pg := range ck.PendingInval {
		p.pendingInval[pg] = true
	}
	p.locks = make(map[int]*lockState, len(ck.Locks))
	for _, lk := range ck.Locks {
		ls := &lockState{
			holding:           lk.Holding,
			releasedUngranted: lk.ReleasedUngranted,
			lastRelV:          lk.LastRelV,
			lastHolder:        lk.LastHolder,
		}
		if lk.RelVC != nil {
			ls.relVC = lk.RelVC.Copy()
		}
		p.locks[lk.ID] = ls
	}
	p.log = interval.NewLog()
	for _, r := range ck.Log {
		p.log.Add(r)
	}
	p.epochRecords = ck.EpochRecords
	p.store = interval.NewBitmapStore()
	for _, en := range ck.Bitmaps {
		p.store.Put(en.ID, en.Page, en.Write, en.Bits)
	}
	p.races = ck.Races
	p.st = ck.St
	if ck.HasMaster {
		if p.bar == nil {
			return fmt.Errorf("dsm: master checkpoint restored at non-master proc %d", p.id)
		}
		p.bar.epoch = ck.BarEpoch
		if ck.HasDet && p.sys.detector != nil {
			p.sys.detector.RestoreState(ck.Det)
		}
	}
	return nil
}
