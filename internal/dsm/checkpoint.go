package dsm

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"lrcrace/internal/castore"
	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/vc"
)

// Barrier-epoch checkpointing.
//
// A barrier is a global quiescence point: every interval of the finished
// epoch has been closed, logged, exchanged, and checked for races; diffs
// are flushed; no lock tenures or page fetches belonging to the epoch are
// in flight. That makes the barrier departure the natural recovery line,
// so at each departure every process serializes its recovery state — page
// copies and protocol rights, twins, version vector, interval log and
// stored bitmaps, lock table, accumulated race reports, statistics, and
// (at process 0) the detector state — through the same codec style
// internal/msg uses for wire messages.
//
// Since ckptVersion 3 the serialized form is a *manifest*: the bulky
// payloads (page copies, twins, bitmap words) live in a content-addressed
// chunk store (internal/castore) and the manifest records their 32-byte
// SHA-256 addresses. A page that did not change between barriers hashes to
// the same address, so consecutive epochs share chunks instead of storing
// them again — the dedup that makes per-barrier checkpointing cheap enough
// to leave on by default. Because the address is the hash, decoding a
// manifest verifies the integrity of its whole chunk closure: a tampered
// or missing chunk surfaces as a typed error, never as silently wrong
// restored state. The encoding is versioned, deterministic (map contents
// serialize in sorted order), and round-trips byte-exactly, so checkpoint
// sizes are genuinely measurable.

const (
	ckptMagic = 0x4c52434b // "LRCK"
	// ckptVersion 3: page copies, twins, and bitmap words moved out of the
	// manifest into the content-addressed chunk store; the manifest holds
	// their addresses. (Version 2 inlined every payload.) The store is
	// in-memory and per-run, so no cross-version decoding is needed.
	ckptVersion = 3
	// addrSize is the serialized width of one chunk address.
	addrSize = len(castore.Addr{})
)

// CheckpointVersion is the current checkpoint serialization format
// version (ckptVersion), exported for operational surfaces — the service
// /version endpoint reports it so operators can tell whether two
// deployments' checkpoint stores are interchangeable.
const CheckpointVersion = ckptVersion

// Typed decode failures. ErrCheckpointCorrupt covers damage to the
// manifest itself (truncation, bit flips, implausible counts);
// ErrCheckpointChunk covers an unresolvable chunk closure (a referenced
// chunk is missing from the store or fails its hash check). Rollback
// treats both the same way — the epoch is unusable and an older line must
// be tried — but telemetry and tests distinguish them.
var (
	ErrCheckpointCorrupt = errors.New("dsm: checkpoint corrupt")
	ErrCheckpointChunk   = errors.New("dsm: checkpoint chunk unresolvable")
)

// chunkSource resolves chunk addresses during manifest decoding.
// *castore.Store implements it; tests substitute fault-injecting stores.
type chunkSource interface {
	Get(castore.Addr) ([]byte, error)
}

// CheckpointStats summarizes checkpoint activity for a run. Count and the
// byte totals are cumulative over the run, surviving rollback
// re-deposits; the GC fields describe retention sweeps.
type CheckpointStats struct {
	Count int   // checkpoints deposited (unique (proc, epoch) keys)
	Bytes int64 // stored cost: manifest bytes + unique chunk bytes
	// LogicalBytes is what a full (non-deduplicating) serialization would
	// have written: manifest bytes plus every referenced chunk's bytes.
	// Bytes/LogicalBytes is the dedup ratio.
	LogicalBytes int64
	ChunkPuts    int64 // chunk deposits attempted
	ChunkHits    int64 // chunk deposits deduplicated against resident chunks
	LiveBytes    int64 // bytes currently resident (manifests + chunks)

	GCRemoved         int   // manifests retired by retention GC
	GCFreedBytes      int64 // bytes released by retention GC
	GCLiveBytesBefore int64 // resident bytes just before the latest GC sweep
	GCLiveBytesAfter  int64 // resident bytes just after it

	// EncodeNS is cumulative wall time spent serializing checkpoints
	// (hashing included). Wall-dependent: benchmark material, never part
	// of the deterministic metrics document.
	EncodeNS int64
}

type ckptEntry struct {
	manifest []byte
	addrs    []castore.Addr // one entry per chunk reference, duplicates kept
}

// CheckpointStore is the stable store of serialized checkpoints, keyed by
// (process, epoch): manifests here, their chunks in an embedded
// content-addressed store. Coordinated rollback restores every process
// from the latest epoch for which all processes have a checkpoint whose
// chunk closure verifies.
type CheckpointStore struct {
	mu     sync.Mutex
	byProc map[int]map[int32]ckptEntry
	chunks *castore.Store

	// retain is the epoch tail kept by GC: 0 → keep 2 (the recovery line
	// and one fallback), negative → keep everything.
	retain int

	count             int
	manifestBytes     int64 // cumulative, new keys only
	liveManifestBytes int64
	gcRemoved         int
	gcFreed           int64
	gcBefore, gcAfter int64
	encodeNS          int64
}

// NewCheckpointStore returns an empty store with an empty chunk store.
func NewCheckpointStore() *CheckpointStore {
	return &CheckpointStore{
		byProc: make(map[int]map[int32]ckptEntry),
		chunks: castore.New(),
	}
}

// Chunks returns the embedded content-addressed chunk store.
func (cs *CheckpointStore) Chunks() *castore.Store { return cs.chunks }

// SetRetain configures the retention-GC tail: how many epochs at and below
// the recovery line survive a sweep. 0 keeps the default of 2 (the line
// plus one fallback for verify failures); negative keeps everything.
func (cs *CheckpointStore) SetRetain(epochs int) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.retain = epochs
}

// Put deposits proc's checkpoint manifest for epoch along with the chunk
// references it holds (the depositor already holds one chunk-store
// reference per address; the store now owns them). A re-deposit of the
// same (proc, epoch) — rollback re-execution crossing the same barrier —
// replaces the entry and retires the old closure's references without
// recounting the cumulative stats.
func (cs *CheckpointStore) Put(proc int, epoch int32, manifest []byte, addrs []castore.Addr) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	m := cs.byProc[proc]
	if m == nil {
		m = make(map[int32]ckptEntry)
		cs.byProc[proc] = m
	}
	if old, ok := m[epoch]; ok {
		cs.liveManifestBytes -= int64(len(old.manifest))
		for _, a := range old.addrs {
			cs.chunks.Unref(a)
		}
	} else {
		cs.count++
		cs.manifestBytes += int64(len(manifest))
	}
	cs.liveManifestBytes += int64(len(manifest))
	m[epoch] = ckptEntry{manifest: manifest, addrs: addrs}
}

// Get returns proc's checkpoint manifest for epoch, or nil.
func (cs *CheckpointStore) Get(proc int, epoch int32) []byte {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.byProc[proc][epoch].manifest
}

// LatestCommonEpoch returns the highest epoch for which all n processes
// hold a checkpoint — the recovery line of a coordinated rollback. Since
// every process checkpoints at every barrier departure, this is the
// minimum over processes of their latest checkpoint epoch; 0 (the initial
// state, before any barrier) if some process has none.
func (cs *CheckpointStore) LatestCommonEpoch(n int) int32 {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	return cs.latestCommonLocked(n)
}

func (cs *CheckpointStore) latestCommonLocked(n int) int32 {
	common := int32(-1)
	for p := 0; p < n; p++ {
		var latest int32
		for e := range cs.byProc[p] {
			if e > latest {
				latest = e
			}
		}
		if common < 0 || latest < common {
			common = latest
		}
	}
	if common < 0 {
		common = 0
	}
	return common
}

// haveAll reports whether all n processes have deposited epoch.
func (cs *CheckpointStore) haveAll(epoch int32, n int) bool {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	for p := 0; p < n; p++ {
		if _, ok := cs.byProc[p][epoch]; !ok {
			return false
		}
	}
	return true
}

// GC retires every epoch superseded by the recovery line, keeping the
// configured tail (the line itself plus retain−1 older epochs as
// verify-failure fallbacks). It returns the number of manifests retired
// and the resident bytes released (chunks freed transitively through
// their refcounts).
func (cs *CheckpointStore) GC(n int) (removed int, freed int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	if cs.retain < 0 {
		return 0, 0
	}
	retain := cs.retain
	if retain == 0 {
		retain = 2
	}
	cutoff := cs.latestCommonLocked(n) - int32(retain)
	if cutoff < 1 {
		return 0, 0
	}
	before := cs.liveBytesLocked()
	for _, m := range cs.byProc {
		for e, ent := range m {
			if e <= cutoff {
				cs.liveManifestBytes -= int64(len(ent.manifest))
				for _, a := range ent.addrs {
					cs.chunks.Unref(a)
				}
				delete(m, e)
				removed++
			}
		}
	}
	if removed == 0 {
		return 0, 0
	}
	after := cs.liveBytesLocked()
	cs.gcRemoved += removed
	cs.gcFreed += before - after
	cs.gcBefore, cs.gcAfter = before, after
	return removed, before - after
}

func (cs *CheckpointStore) liveBytesLocked() int64 {
	return cs.liveManifestBytes + cs.chunks.Stats().LiveBytes
}

func (cs *CheckpointStore) addEncodeNS(ns int64) {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	cs.encodeNS += ns
}

// Stats returns cumulative checkpoint counters.
func (cs *CheckpointStore) Stats() CheckpointStats {
	cs.mu.Lock()
	defer cs.mu.Unlock()
	ch := cs.chunks.Stats()
	return CheckpointStats{
		Count:             cs.count,
		Bytes:             cs.manifestBytes + ch.StoredBytes,
		LogicalBytes:      cs.manifestBytes + ch.LogicalBytes,
		ChunkPuts:         ch.Puts,
		ChunkHits:         ch.Hits,
		LiveBytes:         cs.liveBytesLocked(),
		GCRemoved:         cs.gcRemoved,
		GCFreedBytes:      cs.gcFreed,
		GCLiveBytesBefore: cs.gcBefore,
		GCLiveBytesAfter:  cs.gcAfter,
		EncodeNS:          cs.encodeNS,
	}
}

// ckptChunkStats is one encode's chunking accounting.
type ckptChunkStats struct {
	puts         int64 // chunks referenced by the manifest
	hits         int64 // of those, already resident (deduplicated)
	newBytes     int64 // bytes of chunks stored fresh
	logicalBytes int64 // bytes of all referenced chunks
}

// checkpointLocked serializes this process's recovery state and deposits
// it in the system's checkpoint store. Called at barrier departure (after
// epoch++ and the new interval's start, so the checkpoint is exactly the
// state execution resumes from) with p.mu held.
func (p *Proc) checkpointLocked() {
	cs := p.sys.ckpts
	start := time.Now()
	manifest, addrs, cst := p.encodeCheckpointInto(cs.Chunks())
	cs.Put(p.id, p.epoch, manifest, addrs)
	cs.addEncodeNS(time.Since(start).Nanoseconds())
	p.tel.Emit(p.id, telemetry.KCheckpoint, p.vnow,
		int64(p.epoch), int64(len(manifest)), int64(len(manifest))+cst.logicalBytes)
	if cst.puts > 0 {
		p.tel.Emit(p.id, telemetry.KCkptChunk, p.vnow, cst.puts, cst.hits, cst.newBytes)
	}
	p.sys.maybeCorrupt(p.epoch)
	if removed, freed := cs.GC(p.n); removed > 0 {
		p.tel.Emit(p.id, telemetry.KCkptGC, p.vnow, int64(removed), freed, 0)
	}
	dbgf("p%d checkpoint epoch %d: manifest %dB, chunks %d (%d dedup, %dB new)",
		p.id, p.epoch, len(manifest), cst.puts, cst.hits, cst.newBytes)
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}

func sortedPageSet(m map[mem.PageID]bool) []mem.PageID {
	out := make([]mem.PageID, 0, len(m))
	for pg := range m {
		out = append(out, pg)
	}
	interval.SortPages(out)
	return out
}

// bitmapChunk serializes an access bitmap's words little-endian — the
// chunkable payload form of mem.Bitmap.
func bitmapChunk(b mem.Bitmap) []byte {
	out := make([]byte, 8*len(b))
	for i, w := range b {
		binary.LittleEndian.PutUint64(out[i*8:], w)
	}
	return out
}

func chunkBitmap(b []byte) mem.Bitmap {
	bm := make(mem.Bitmap, len(b)/8)
	for i := range bm {
		bm[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return bm
}

// encodeCheckpointLocked serializes the checkpointable state of p as a
// ckptVersion-3 manifest without depositing chunks anywhere: addresses are
// computed (the hash is the address, store or no store) but the contents
// are dropped. Used by round-trip tests; the checkpointing path proper is
// encodeCheckpointInto.
func (p *Proc) encodeCheckpointLocked() []byte {
	b, _, _ := p.encodeCheckpointInto(nil)
	return b
}

// encodeCheckpointInto serializes the checkpointable state of p, chunking
// the bulky payloads into cs (nil → hash-only, nothing stored). It returns
// the manifest, the chunk references taken (one per manifest reference;
// the caller owns them and hands them to CheckpointStore.Put), and the
// encode's chunking stats. The caller holds p.mu (the service thread
// mutates this state under the same lock, so the capture is atomic with
// respect to message handling).
func (p *Proc) encodeCheckpointInto(cs *castore.Store) ([]byte, []castore.Addr, ckptChunkStats) {
	var addrs []castore.Addr
	var cst ckptChunkStats
	e := &msg.Encoder{}
	chunk := func(b []byte) {
		cst.puts++
		cst.logicalBytes += int64(len(b))
		var a castore.Addr
		if cs == nil {
			a = castore.Sum(b)
		} else {
			var isNew bool
			a, isNew = cs.Put(b)
			if isNew {
				cst.newBytes += int64(len(b))
			} else {
				cst.hits++
			}
			addrs = append(addrs, a)
		}
		e.Raw(a[:])
	}
	p.encodeCheckpointBody(e, chunk)
	return e.Bytes(), addrs, cst
}

// encodeCheckpointFullLocked serializes p's state with every payload
// inlined — the pre-v3 non-deduplicating encoding. Benchmark-only: it
// exists so BenchmarkCheckpointEncode can compare full vs. chunked cost on
// identical state; nothing decodes it.
func (p *Proc) encodeCheckpointFullLocked() []byte {
	e := &msg.Encoder{}
	p.encodeCheckpointBody(e, func(b []byte) { e.Blob(b) })
	return e.Bytes()
}

// encodeCheckpointBody writes the checkpoint layout, handing each bulky
// payload (page copies, twins, bitmap words) to put — chunk-address or
// inline-blob, the layout around it is identical.
func (p *Proc) encodeCheckpointBody(e *msg.Encoder, put func([]byte)) {
	e.U32(ckptMagic)
	e.U8(ckptVersion)
	e.U16(uint16(p.id))
	e.U16(uint16(p.n))
	e.I32(p.epoch)
	e.U32(uint32(p.curIndex))
	e.I64(p.vnow)
	e.VC(p.vcur)

	// Page table and copies. Transient fault state (expecting/fetching/
	// pendFwd) is quiescent at a barrier and is not serialized.
	np := p.sys.layout.NumPages
	e.U32(uint32(np))
	for i := 0; i < np; i++ {
		pg := mem.PageID(i)
		e.U8(uint8(p.state[pg]))
		e.U8(b2u8(p.owned[pg]))
		e.I32(int32(p.dirOwner[pg]))
		if p.state[pg] != pageInvalid {
			e.U8(1)
			put(p.seg.PageBytes(pg))
		} else {
			e.U8(0)
		}
	}

	// Twins (multi-writer pristine copies), sorted by page.
	twinPages := make([]mem.PageID, 0, len(p.twins))
	for pg := range p.twins {
		twinPages = append(twinPages, pg)
	}
	interval.SortPages(twinPages)
	e.U32(uint32(len(twinPages)))
	for _, pg := range twinPages {
		e.I32(int32(pg))
		put(p.twins[pg])
	}

	e.Pages(sortedPageSet(p.writtenPages))
	e.Pages(sortedPageSet(p.pendingInval))

	// Lock table: durable tenure state only. In-flight requests (awaiting,
	// pending grants, replay deferrals) are transient and re-established by
	// re-execution.
	lockIDs := make([]int, 0, len(p.locks))
	for id := range p.locks {
		lockIDs = append(lockIDs, id)
	}
	sort.Ints(lockIDs)
	e.U32(uint32(len(lockIDs)))
	for _, id := range lockIDs {
		ls := p.locks[id]
		e.I32(int32(id))
		e.U8(b2u8(ls.holding))
		e.U8(b2u8(ls.releasedUngranted))
		e.I64(ls.lastRelV)
		if ls.relVC != nil {
			e.U8(1)
			e.VC(ls.relVC)
		} else {
			e.U8(0)
		}
		e.I32(int32(ls.lastHolder))
	}

	// Interval log, current-epoch record queue, and stored access bitmaps.
	logRecs := p.log.Records()
	e.U32(uint32(len(logRecs)))
	for _, r := range logRecs {
		msg.EncodeRecord(e, r)
	}
	e.U32(uint32(len(p.epochRecords)))
	for _, r := range p.epochRecords {
		msg.EncodeRecord(e, r)
	}
	ents := p.store.Entries()
	e.U32(uint32(len(ents)))
	for _, en := range ents {
		e.IntervalID(en.ID)
		e.I32(int32(en.Page))
		e.U8(b2u8(en.Write))
		put(bitmapChunk(en.Bits))
	}

	// Race reports and statistics.
	e.U32(uint32(len(p.races)))
	for _, r := range p.races {
		msg.EncodeReport(e, r)
	}
	encodeProcStats(e, &p.st)

	// Master extras: barrier epoch and the detector's mutable state.
	if p.id == 0 && p.bar != nil {
		e.U8(1)
		e.I32(p.bar.epoch)
		if det := p.sys.detector; det != nil {
			e.U8(1)
			st := det.SnapshotState()
			encodeRaceStats(e, st.Stats)
			e.I32(st.FirstRacyEpoch)
			e.U32(uint32(len(st.RacyRecords)))
			for _, r := range st.RacyRecords {
				msg.EncodeRecord(e, r)
			}
		} else {
			e.U8(0)
		}
	} else {
		e.U8(0)
	}
}

func encodeProcStats(e *msg.Encoder, st *Stats) {
	for _, v := range []int64{
		st.SharedReads, st.SharedWrites, st.PrivateAccesses,
		st.ReadFaults, st.WriteFaults, st.IntervalsCreated,
		st.LockAcquires, st.Barriers, st.DiffsFlushed, st.DiffWords,
		st.ComputeOps,
		st.TProcCall, st.TAccessCheck, st.TCVMMods, st.TIntervalCmp, st.TBitmapCmp,
		st.ReadNoticeBytes, st.SyncMsgBytes, st.BitmapsCreated, st.BitmapsSent,
		st.CheckEntriesCompared, st.BitmapsCompared,
	} {
		e.I64(v)
	}
}

func decodeProcStats(d *msg.Decoder) Stats {
	var st Stats
	for _, f := range []*int64{
		&st.SharedReads, &st.SharedWrites, &st.PrivateAccesses,
		&st.ReadFaults, &st.WriteFaults, &st.IntervalsCreated,
		&st.LockAcquires, &st.Barriers, &st.DiffsFlushed, &st.DiffWords,
		&st.ComputeOps,
		&st.TProcCall, &st.TAccessCheck, &st.TCVMMods, &st.TIntervalCmp, &st.TBitmapCmp,
		&st.ReadNoticeBytes, &st.SyncMsgBytes, &st.BitmapsCreated, &st.BitmapsSent,
		&st.CheckEntriesCompared, &st.BitmapsCompared,
	} {
		*f = d.I64()
	}
	return st
}

func encodeRaceStats(e *msg.Encoder, st race.Stats) {
	for _, v := range []int{
		st.Epochs, st.IntervalsTotal, st.PairComparisons, st.ConcurrentPairs,
		st.OverlappingPairs, st.IntervalsInvolved, st.CheckEntries,
		st.NoticesScanned, st.BitmapsCompared, st.WordOverlaps, st.SuppressedReports,
	} {
		e.I64(int64(v))
	}
}

func decodeRaceStats(d *msg.Decoder) race.Stats {
	var st race.Stats
	for _, f := range []*int{
		&st.Epochs, &st.IntervalsTotal, &st.PairComparisons, &st.ConcurrentPairs,
		&st.OverlappingPairs, &st.IntervalsInvolved, &st.CheckEntries,
		&st.NoticesScanned, &st.BitmapsCompared, &st.WordOverlaps, &st.SuppressedReports,
	} {
		*f = int(d.I64())
	}
	return st
}

// ckptPage is one page-table entry of a decoded checkpoint.
type ckptPage struct {
	State    pageState
	Owned    bool
	DirOwner int
	Data     []byte // nil if the copy was invalid
}

// ckptLock is one lock-table entry of a decoded checkpoint.
type ckptLock struct {
	ID                int
	Holding           bool
	ReleasedUngranted bool
	LastRelV          int64
	RelVC             vc.VC // nil if never released
	LastHolder        int
}

// procCheckpoint is the decoded form of one process checkpoint, chunk
// references already resolved and verified.
type procCheckpoint struct {
	ID       int
	N        int
	Epoch    int32
	CurIndex vc.Index
	Vnow     int64
	Vcur     vc.VC

	Pages        []ckptPage
	Twins        map[mem.PageID][]byte
	Written      []mem.PageID
	PendingInval []mem.PageID
	Locks        []ckptLock
	Log          []*interval.Record
	EpochRecords []*interval.Record
	Bitmaps      []interval.StoredBitmap
	Races        []race.Report
	St           Stats

	HasMaster bool
	BarEpoch  int32
	HasDet    bool
	Det       race.State
}

// ckptCount reads an element count and sanity-bounds it against the bytes
// left in the manifest, so a bit-flipped count cannot drive a giant
// allocation before the decoder notices the truncation.
func ckptCount(d *msg.Decoder, what string, minSize int) (int, error) {
	n := int(d.U32())
	if err := d.Err(); err != nil {
		return 0, fmt.Errorf("%w: %s count: %v", ErrCheckpointCorrupt, what, err)
	}
	if minSize < 1 {
		minSize = 1
	}
	if n > d.Remaining()/minSize {
		return 0, fmt.Errorf("%w: %s count %d exceeds %d remaining bytes",
			ErrCheckpointCorrupt, what, n, d.Remaining())
	}
	return n, nil
}

// decodeCheckpoint parses a serialized manifest, resolving every chunk
// reference through chunks — which verifies each chunk's contents against
// its address. Errors are typed: ErrCheckpointCorrupt for manifest damage,
// ErrCheckpointChunk for an unresolvable closure. It never panics,
// whatever the input.
func decodeCheckpoint(b []byte, chunks chunkSource) (*procCheckpoint, error) {
	d := msg.NewDecoder(b)
	if d.U32() != ckptMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCheckpointCorrupt)
	}
	if v := d.U8(); v != ckptVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCheckpointCorrupt, v)
	}
	resolve := func(what string) ([]byte, error) {
		raw := d.Raw(addrSize)
		if err := d.Err(); err != nil {
			return nil, fmt.Errorf("%w: %s address: %v", ErrCheckpointCorrupt, what, err)
		}
		var a castore.Addr
		copy(a[:], raw)
		if chunks == nil {
			return nil, fmt.Errorf("%w: %s %s: no chunk source", ErrCheckpointChunk, what, a)
		}
		data, err := chunks.Get(a)
		if err != nil {
			return nil, fmt.Errorf("%w: %s: %v", ErrCheckpointChunk, what, err)
		}
		return data, nil
	}
	ck := &procCheckpoint{
		ID:       int(d.U16()),
		N:        int(d.U16()),
		Epoch:    d.I32(),
		CurIndex: vc.Index(d.U32()),
		Vnow:     d.I64(),
		Vcur:     d.VC(),
	}
	np, err := ckptCount(d, "page", 7)
	if err != nil {
		return nil, err
	}
	ck.Pages = make([]ckptPage, np)
	for i := 0; i < np && d.Err() == nil; i++ {
		pg := &ck.Pages[i]
		pg.State = pageState(d.U8())
		pg.Owned = d.U8() != 0
		pg.DirOwner = int(d.I32())
		if d.U8() != 0 {
			if pg.Data, err = resolve("page copy"); err != nil {
				return nil, err
			}
		}
	}
	ntw, err := ckptCount(d, "twin", 4+addrSize)
	if err != nil {
		return nil, err
	}
	ck.Twins = make(map[mem.PageID][]byte, ntw)
	for i := 0; i < ntw && d.Err() == nil; i++ {
		pg := mem.PageID(d.I32())
		tw, err := resolve("twin")
		if err != nil {
			return nil, err
		}
		ck.Twins[pg] = tw
	}
	ck.Written = d.Pages()
	ck.PendingInval = d.Pages()
	nlk, err := ckptCount(d, "lock", 19)
	if err != nil {
		return nil, err
	}
	ck.Locks = make([]ckptLock, nlk)
	for i := 0; i < nlk && d.Err() == nil; i++ {
		lk := &ck.Locks[i]
		lk.ID = int(d.I32())
		lk.Holding = d.U8() != 0
		lk.ReleasedUngranted = d.U8() != 0
		lk.LastRelV = d.I64()
		if d.U8() != 0 {
			lk.RelVC = d.VC()
		}
		lk.LastHolder = int(d.I32())
	}
	nlog, err := ckptCount(d, "log record", 12)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nlog && d.Err() == nil; i++ {
		ck.Log = append(ck.Log, msg.DecodeRecord(d))
	}
	nep, err := ckptCount(d, "epoch record", 12)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nep && d.Err() == nil; i++ {
		ck.EpochRecords = append(ck.EpochRecords, msg.DecodeRecord(d))
	}
	nbm, err := ckptCount(d, "bitmap", 11+addrSize)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nbm && d.Err() == nil; i++ {
		var en interval.StoredBitmap
		en.ID = d.IntervalID()
		en.Page = mem.PageID(d.I32())
		en.Write = d.U8() != 0
		words, err := resolve("bitmap")
		if err != nil {
			return nil, err
		}
		if len(words)%8 != 0 {
			return nil, fmt.Errorf("%w: bitmap chunk of %d bytes", ErrCheckpointCorrupt, len(words))
		}
		en.Bits = chunkBitmap(words)
		ck.Bitmaps = append(ck.Bitmaps, en)
	}
	nr, err := ckptCount(d, "race report", 8)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nr && d.Err() == nil; i++ {
		ck.Races = append(ck.Races, msg.DecodeReport(d))
	}
	ck.St = decodeProcStats(d)
	if d.U8() != 0 {
		ck.HasMaster = true
		ck.BarEpoch = d.I32()
		if d.U8() != 0 {
			ck.HasDet = true
			ck.Det.Stats = decodeRaceStats(d)
			ck.Det.FirstRacyEpoch = d.I32()
			ndr, err := ckptCount(d, "racy record", 12)
			if err != nil {
				return nil, err
			}
			for i := 0; i < ndr && d.Err() == nil; i++ {
				ck.Det.RacyRecords = append(ck.Det.RacyRecords, msg.DecodeRecord(d))
			}
		}
	}
	if err := d.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCheckpointCorrupt, err)
	}
	if !d.Done() {
		return nil, fmt.Errorf("%w: trailing bytes", ErrCheckpointCorrupt)
	}
	return ck, nil
}

// restoreFromCheckpoint overwrites a freshly built process with the state
// of a decoded checkpoint. The chunk closure was already resolved and
// integrity-checked during decoding — a tampered or missing chunk fails
// decodeCheckpoint with a typed error and never reaches this point.
// Called before the service and application threads start, so no locking
// is needed.
func (p *Proc) restoreFromCheckpoint(ck *procCheckpoint) error {
	if ck.ID != p.id || ck.N != p.n {
		return fmt.Errorf("dsm: checkpoint for proc %d/%d restored at proc %d/%d",
			ck.ID, ck.N, p.id, p.n)
	}
	if len(ck.Pages) != p.sys.layout.NumPages {
		return fmt.Errorf("dsm: checkpoint has %d pages, layout has %d",
			len(ck.Pages), p.sys.layout.NumPages)
	}
	p.epoch = ck.Epoch
	p.curIndex = ck.CurIndex
	p.vnow = ck.Vnow
	p.vcur = ck.Vcur.Copy()
	for i := range ck.Pages {
		pg := mem.PageID(i)
		cp := &ck.Pages[i]
		p.state[pg] = cp.State
		p.owned[pg] = cp.Owned
		p.dirOwner[pg] = cp.DirOwner
		if cp.Data != nil {
			if len(cp.Data) != p.seg.PageSize {
				return fmt.Errorf("dsm: checkpoint page %d has %d bytes, page size is %d",
					pg, len(cp.Data), p.seg.PageSize)
			}
			p.seg.CopyPageIn(pg, cp.Data)
		}
	}
	p.twins = make(map[mem.PageID][]byte, len(ck.Twins))
	for pg, tw := range ck.Twins {
		p.twins[pg] = append([]byte(nil), tw...)
	}
	p.writtenPages = make(map[mem.PageID]bool, len(ck.Written))
	for _, pg := range ck.Written {
		p.writtenPages[pg] = true
	}
	p.pendingInval = make(map[mem.PageID]bool, len(ck.PendingInval))
	for _, pg := range ck.PendingInval {
		p.pendingInval[pg] = true
	}
	p.locks = make(map[int]*lockState, len(ck.Locks))
	for _, lk := range ck.Locks {
		ls := &lockState{
			holding:           lk.Holding,
			releasedUngranted: lk.ReleasedUngranted,
			lastRelV:          lk.LastRelV,
			lastHolder:        lk.LastHolder,
		}
		if lk.RelVC != nil {
			ls.relVC = lk.RelVC.Copy()
		}
		p.locks[lk.ID] = ls
	}
	p.log = interval.NewLog()
	for _, r := range ck.Log {
		p.log.Add(r)
	}
	p.epochRecords = ck.EpochRecords
	p.store = interval.NewBitmapStore()
	for _, en := range ck.Bitmaps {
		p.store.Put(en.ID, en.Page, en.Write, en.Bits)
	}
	p.races = ck.Races
	p.st = ck.St
	if ck.HasMaster {
		if p.bar == nil {
			return fmt.Errorf("dsm: master checkpoint restored at non-master proc %d", p.id)
		}
		p.bar.epoch = ck.BarEpoch
		if ck.HasDet && p.sys.detector != nil {
			p.sys.detector.RestoreState(ck.Det)
		}
	}
	return nil
}
