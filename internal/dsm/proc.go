package dsm

import (
	"fmt"
	"sync"
	"time"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/vc"
)

// pageState is a process's access right to its local copy of a page,
// emulating the mprotect-based states of a real software DSM.
type pageState uint8

const (
	pageInvalid pageState = iota
	pageReadOnly
	pageWritable
)

// lockState tracks one lock at one process (holder-side and manager-side
// state live together; the manager role applies only to locks this process
// manages).
type lockState struct {
	holding  bool
	awaiting bool  // request sent, grant not yet received
	lastRelV int64 // virtual time of our last release of this lock

	// relVC is the releaser's version vector at its most recent release of
	// this lock: the knowledge horizon a grant may carry. Records learned
	// after the release are not ordered before the matching acquire.
	relVC vc.VC

	// releasedUngranted is the grant obligation of a completed tenure: we
	// released the lock but no successor has been granted yet. A forward
	// arriving in this state targets that finished tenure and must be
	// granted immediately — even if we are already re-requesting the lock
	// ourselves (queueing it would deadlock the chain).
	releasedUngranted bool

	pending []pendingGrant // forwarded requests waiting for our release

	// manager role
	lastHolder int           // last proc the manager granted/forwarded to; -1 = free
	deferred   []deferredReq // requests held back by a replay SyncEnforcer
}

// deferredReq is a manager-side request awaiting its recorded replay turn.
type deferredReq struct {
	d simnet.Delivery
	m *msg.AcquireReq
}

type pendingGrant struct {
	requester int
	theirVC   vc.VC
	arrV      int64
}

// Stats are per-process counters; virtual-time fields are in nanoseconds.
type Stats struct {
	SharedReads, SharedWrites int64
	PrivateAccesses           int64
	ReadFaults, WriteFaults   int64
	IntervalsCreated          int64
	LockAcquires, Barriers    int64
	DiffsFlushed, DiffWords   int64

	ComputeOps int64

	// Virtual-time overhead attribution (Figure 3 components).
	TProcCall    int64 // procedure-call part of instrumentation
	TAccessCheck int64 // analysis-routine body
	TCVMMods     int64 // interval/notice structure setup (CVM modifications)
	TIntervalCmp int64 // master-side concurrent-interval search (proc 0)
	TBitmapCmp   int64 // master-side bitmap comparison (proc 0)

	// Bandwidth attribution.
	ReadNoticeBytes int64 // wire bytes of read notices this proc sent
	SyncMsgBytes    int64 // wire bytes of record-carrying sync messages sent
	BitmapsCreated  int64
	BitmapsSent     int64

	// Comparison-work attribution: check-list entries and bitmap pairs
	// THIS process compared. Under the serial check both land entirely at
	// process 0; under Config.ShardedCheck they spread across the owners
	// of each epoch's shards.
	CheckEntriesCompared int64
	BitmapsCompared      int64
}

// Proc is one DSM process: an application thread running the user's code
// against the shared-memory API, plus a protocol service thread handling
// incoming requests, sharing state under mu.
type Proc struct {
	sys   *System
	id, n int
	tel   telemetry.Scope // the owning System's telemetry destination

	mu  sync.Mutex
	seg *mem.Segment

	state     []pageState
	owned     []bool          // single-writer: we are the page's current owner
	expecting []bool          // single-writer: ownership transfer in flight to us
	fetching  []bool          // read fetch in flight (no ownership)
	fetchInv  []bool          // page invalidated while that fetch was in flight
	dirOwner  []int           // directory (home role): current owner of pages homed here; -1 elsewhere
	pendFwd   [][]msg.PageFwd // page requests queued until ownership arrives

	twins map[mem.PageID][]byte // multi-writer: pristine copies for diffing

	vcur     vc.VC
	curIndex vc.Index
	epoch    int32

	builder      *interval.Builder
	writtenPages map[mem.PageID]bool // pages write-faulted in the open interval
	pendingInval map[mem.PageID]bool // ERC: pages to invalidate at next release
	store        *interval.BitmapStore
	log          *interval.Log
	epochRecords []*interval.Record

	locks map[int]*lockState

	replyCh chan simnet.Delivery

	// ckptGate carries one token per barrier departure from the application
	// thread (sent after checkpointLocked) to the service thread, which
	// waits for it after routing the departure-trigger message; see
	// (*Proc).awaitCheckpoint. Buffered so the sender never blocks.
	ckptGate chan struct{}

	// Barrier-master state (proc 0 only).
	bar *barrierState

	// Combining-tree barrier state (Config.BarrierTree ≥ 2, every
	// process; see tree.go).
	tree *treeState

	// Sharded-check round state (Config.ShardedCheck, every process);
	// shardPend parks round messages arriving before our release. See
	// shard.go.
	shard     *shardState
	shardPend []simnet.Delivery

	races []race.Report
	st    Stats
	vnow  int64

	// Crash-plan trigger counters (see crash.go); only the victim's are
	// ever advanced, shared across plans targeting this process.
	// firedCrash is the plan whose CAS this process won.
	crashAccesses int
	crashLocks    int
	firedCrash    *CrashPlan
}

type barrierState struct {
	epoch    int32
	arrived  int
	records  []*interval.Record
	gvc      vc.VC
	maxArr   int64
	minArr   int64 // earliest virtual arrival this epoch; -1 = none yet
	check    []race.CheckEntry
	bmWait   bool
	bmCount  int
	bmMaxArr int64
	bmSource map[bmKey]mem.Bitmap // key.write selects read/write bitmap

	// arrivedFrom / bmFrom track which processes this round has heard
	// from, so a barrier wall timeout can name the missing (suspected
	// dead) process.
	arrivedFrom []bool
	bmFrom      []bool
}

type bmKey struct {
	id    vc.IntervalID
	page  mem.PageID
	write bool
}

// Bitmaps implements race.BitmapSource over the collected replies.
func (b *barrierState) Bitmaps(id vc.IntervalID, p mem.PageID) (read, write mem.Bitmap) {
	return b.bmSource[bmKey{id, p, false}], b.bmSource[bmKey{id, p, true}]
}

func newProc(s *System, id int) *Proc {
	n := s.cfg.NumProcs
	p := &Proc{
		sys:          s,
		id:           id,
		n:            n,
		tel:          s.tel,
		seg:          mem.NewSegment(s.layout),
		state:        make([]pageState, s.layout.NumPages),
		owned:        make([]bool, s.layout.NumPages),
		expecting:    make([]bool, s.layout.NumPages),
		fetching:     make([]bool, s.layout.NumPages),
		fetchInv:     make([]bool, s.layout.NumPages),
		dirOwner:     make([]int, s.layout.NumPages),
		pendFwd:      make([][]msg.PageFwd, s.layout.NumPages),
		twins:        make(map[mem.PageID][]byte),
		vcur:         vc.New(n),
		curIndex:     1,
		builder:      interval.NewBuilder(s.layout),
		writtenPages: make(map[mem.PageID]bool),
		pendingInval: make(map[mem.PageID]bool),
		store:        interval.NewBitmapStore(),
		log:          interval.NewLog(),
		locks:        make(map[int]*lockState),
		replyCh:      make(chan simnet.Delivery, 16),
		ckptGate:     make(chan struct{}, 1),
	}
	p.vcur[id] = 1
	for pg := 0; pg < s.layout.NumPages; pg++ {
		home := pg % n
		if home == id {
			p.dirOwner[pg] = id
		} else {
			p.dirOwner[pg] = -1
		}
		switch s.cfg.Protocol {
		case SingleWriter, EagerRC:
			if home == id {
				p.owned[pg] = true
				p.state[pg] = pageWritable
			}
		case MultiWriter:
			if home == id {
				// The home copy is always current, but it starts (and is
				// re-protected to) read-only so that the home's own first
				// write in each interval takes the protection fault that
				// produces its write notice (and, under WritesFromDiffs,
				// its twin).
				p.state[pg] = pageReadOnly
			}
		}
	}
	if id == 0 {
		p.bar = &barrierState{
			gvc:         vc.New(n),
			minArr:      -1,
			arrivedFrom: make([]bool, n),
			bmFrom:      make([]bool, n),
		}
	}
	if k := s.cfg.BarrierTree; k >= 2 {
		p.tree = newTreeState(id, k, n)
	}
	return p
}

// ID returns the process number (0..N-1).
func (p *Proc) ID() int { return p.id }

// N returns the number of processes.
func (p *Proc) N() int { return p.n }

// Stats returns a snapshot of the per-process counters.
func (p *Proc) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.st
}

// VirtualTime returns the process's virtual clock.
func (p *Proc) VirtualTime() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.vnow
}

// Races returns the races this process has been told about (identical at
// every process once a run finishes).
func (p *Proc) Races() []race.Report { return p.races }

func (p *Proc) detect() bool { return p.sys.cfg.Detect }

func (p *Proc) home(pg mem.PageID) int { return int(pg) % p.n }

// send transmits m with the given virtual send time, returning wire bytes.
func (p *Proc) send(to int, m msg.Message, vtime int64) int {
	return p.sys.nw.Send(p.id, to, m, vtime)
}

// arrival computes the virtual arrival time of a delivery: per-fragment
// latency plus transmission time for the full payload.
func (p *Proc) arrival(d simnet.Delivery) int64 {
	frags := int64(d.Frags)
	if frags < 1 {
		frags = 1
	}
	m := p.sys.cfg.Model
	return d.VTime + frags*m.MsgLatency + int64(float64(d.Bytes)*m.PerByte)
}

// waitReply blocks the application thread for the next response-class
// message. It must be called without mu held.
func (p *Proc) waitReply() simnet.Delivery {
	d, ok := <-p.replyCh
	if !ok {
		panic("dsm: network shut down while waiting for a reply")
	}
	return d
}

// waitReplyTimeout is waitReply with the configured barrier wall timeout:
// if the reply does not arrive within BarrierWallTimeout of real time, the
// process panics with a typed timeoutPanic, which aborts the run (the run
// loop trips the flight recorder, preserving the events leading up to the
// hang) and — under crash recovery — doubles as the failure detector. At
// the barrier master the panic names the processes the current round has
// not heard from; when exactly one is missing it becomes the crash
// suspect. A zero timeout waits forever.
func (p *Proc) waitReplyTimeout(op string) simnet.Delivery {
	to := p.sys.cfg.BarrierWallTimeout
	if to <= 0 {
		return p.waitReply()
	}
	t := time.NewTimer(to)
	defer t.Stop()
	select {
	case d, ok := <-p.replyCh:
		if !ok {
			panic("dsm: network shut down while waiting for a reply")
		}
		return d
	case <-t.C:
		tp := timeoutPanic{proc: p.id, op: op, timeout: to, suspect: -1}
		tp.suspect, tp.detail = p.barrierBlame(op)
		panic(tp)
	}
}

// barrierBlame derives a crash suspect from the barrier round's
// bookkeeping after a reply wait timed out on op. Only a barrier wait may
// name suspects: there, a missing process has demonstrably gone silent.
// During any other wait (a lock grant wedged by a dead holder, say) the
// arrival ledger reflects who has merely not reached the barrier yet —
// this process included — not who died, so the suspect stays -1.
//
// A suspect is named only when exactly one process is missing: with
// several, any of them may merely be wedged behind the dead one (a lock
// chain through the victim stalls every process queued after it), and
// guessing wrongly would roll the blame onto a healthy process. Leave it
// to the link-death detector or the crash plan's ground truth to sharpen.
//
// Under the combining-tree barrier every interior node holds its own
// coverage ledger, so blame is multi-hop: a node missing exactly one
// DIRECT contribution names that child (or itself) — which may itself be
// a healthy interior node wedged behind a deeper victim; the verdicts
// from every hop are then reconciled by noteTimeoutVerdict, where a
// process that accused someone has proven itself alive and so cannot
// remain the suspect.
func (p *Proc) barrierBlame(op string) (suspect int, detail string) {
	suspect = -1
	barrierWait := op == "barrier release" || op == "barrier bitmap round"
	if !barrierWait {
		return suspect, ""
	}
	if t := p.tree; t != nil {
		p.mu.Lock()
		if t.got > 0 && !t.sent {
			// Mid-reduction: the subtree never completed. Name the one
			// missing direct contributor; report the whole uncovered slice
			// of the subtree for the trip message.
			var missDirect, uncovered []int
			for _, c := range append(treeChildren(p.id, t.arity, p.n), p.id) {
				if !t.from[c] {
					missDirect = append(missDirect, c)
				}
			}
			for _, q := range treeSubtree(p.id, t.arity, p.n) {
				if !t.from[q] {
					uncovered = append(uncovered, q)
				}
			}
			p.mu.Unlock()
			if len(missDirect) == 1 {
				suspect = missDirect[0]
			}
			if len(uncovered) > 0 && len(uncovered) < p.n {
				detail = fmt.Sprintf(" (no word from %v)", uncovered)
			}
			return suspect, detail
		}
		p.mu.Unlock()
	}
	if p.bar == nil {
		return suspect, ""
	}
	p.mu.Lock()
	b := p.bar
	var missing []int
	from := b.arrivedFrom
	tracking := b.arrived > 0
	if b.bmWait {
		from = b.bmFrom
		tracking = true
	}
	if sh := p.shard; sh != nil && sh.expect > 0 && sh.got < sh.expect {
		// Sharded check: the master's own shard round tracks who
		// has sent bitmaps this epoch.
		from = sh.from
		tracking = true
	}
	if tracking {
		for q := 0; q < p.n; q++ {
			if q < len(from) && !from[q] {
				missing = append(missing, q)
			}
		}
	}
	p.mu.Unlock()
	if len(missing) == 1 {
		suspect = missing[0]
	}
	if len(missing) > 0 && len(missing) < p.n {
		detail = fmt.Sprintf(" (no word from %v)", missing)
	}
	return suspect, detail
}

// bumpVTo advances the virtual clock to at least t.
func (p *Proc) bumpVTo(t int64) {
	if t > p.vnow {
		p.vnow = t
	}
}

// --- interval lifecycle (application thread only) ---

// closeIntervalLocked ends the open interval: flushes diffs (multi-writer),
// materializes the interval record (always, even when empty — one interval
// structure per synchronization operation, as in CVM), logs it, and queues
// it for the next barrier-arrival message. The caller must then call
// startIntervalLocked before any further shared access.
func (p *Proc) closeIntervalLocked() {
	if p.sys.cfg.Protocol == MultiWriter {
		p.flushDiffsLocked()
	}
	var rec *interval.Record
	id := vc.IntervalID{Proc: p.id, Index: p.curIndex}
	if p.detect() {
		nbm := int64(p.builder.BitmapCount())
		p.st.BitmapsCreated += nbm
		rec = p.builder.Finish(id, p.vcur, p.epoch, p.store)
		m := p.sys.cfg.Model
		setup := m.IntervalSetup + nbm*m.BitmapSetup
		p.vnow += setup
		p.st.TCVMMods += setup
	} else {
		rec = &interval.Record{ID: id, VC: p.vcur.Copy(), Epoch: p.epoch}
		for pg := range p.writtenPages {
			rec.WriteNotices = append(rec.WriteNotices, pg)
		}
		interval.SortPages(rec.WriteNotices)
	}
	if p.sys.cfg.Protocol == EagerRC {
		for pg := range p.writtenPages {
			p.pendingInval[pg] = true
		}
	}
	p.writtenPages = make(map[mem.PageID]bool)
	p.log.Add(rec)
	p.epochRecords = append(p.epochRecords, rec)
	p.st.IntervalsCreated++
	p.tel.Emit(p.id, telemetry.KIntervalClose, p.vnow,
		int64(rec.ID.Index), int64(len(rec.WriteNotices)), int64(len(rec.ReadNotices)))
	dbgf("p%d close interval %v vc=%v writes=%v", p.id, rec.ID, rec.VC, rec.WriteNotices)
}

// startIntervalLocked begins the next interval.
func (p *Proc) startIntervalLocked() {
	p.curIndex++
	p.vcur[p.id] = p.curIndex
}

// applyIntervalsLocked merges foreign interval records received on a
// synchronization message: log them, advance the version vector, and
// invalidate local copies of pages their write notices name.
func (p *Proc) applyIntervalsLocked(recs []*interval.Record) {
	for _, r := range recs {
		if r.ID.Proc == p.id {
			continue
		}
		if p.log.Get(r.ID) != nil {
			continue // already applied
		}
		p.log.Add(r)
		if r.ID.Index > p.vcur[r.ID.Proc] {
			p.vcur[r.ID.Proc] = r.ID.Index
		}
		for _, pg := range r.WriteNotices {
			dbgf("p%d applies notice %v page %d (owned=%v state=%d)", p.id, r.ID, pg, p.owned[pg], p.state[pg])
			p.invalidateLocked(pg)
		}
	}
}

// invalidateLocked discards the local copy of pg in response to a foreign
// write notice, unless this process's copy is authoritative (single-writer
// owner, or multi-writer home whose copy receives diffs eagerly).
func (p *Proc) invalidateLocked(pg mem.PageID) {
	switch p.sys.cfg.Protocol {
	case SingleWriter, EagerRC:
		if p.owned[pg] || p.expecting[pg] {
			return
		}
	case MultiWriter:
		if p.home(pg) == p.id {
			return
		}
		if _, twinned := p.twins[pg]; twinned {
			// Cannot happen: intervals close (and flush) before notices
			// are applied. Guard anyway.
			return
		}
	}
	if p.fetching[pg] {
		// A read fetch is in flight; its reply may carry data older than
		// this invalidation. Let the racing read complete with that legal
		// value, but discard the copy immediately afterwards so later
		// reads re-fetch (matters under ERC, where the service thread
		// applies invalidations concurrently with application faults).
		p.fetchInv[pg] = true
	}
	p.state[pg] = pageInvalid
}

func (p *Proc) lock(id int) *lockState {
	ls := p.locks[id]
	if ls == nil {
		ls = &lockState{lastHolder: -1}
		p.locks[id] = ls
	}
	return ls
}

// --- wire helpers ---

func vcToWire(v vc.VC) []uint32 {
	w := make([]uint32, len(v))
	for i, x := range v {
		w[i] = uint32(x)
	}
	return w
}

func vcFromWire(w []uint32) vc.VC {
	v := make(vc.VC, len(w))
	for i, x := range w {
		v[i] = vc.Index(x)
	}
	return v
}

// recordSyncSend accounts the bandwidth of a record-carrying message.
func (p *Proc) recordSyncSend(recs []*interval.Record, wireBytes int) {
	p.st.SyncMsgBytes += int64(wireBytes)
	p.st.ReadNoticeBytes += int64(msg.RecordReadNoticeBytes(recs))
}

func (p *Proc) protocolBug(format string, args ...interface{}) {
	panic(fmt.Sprintf("dsm: proc %d: protocol bug: %s", p.id, fmt.Sprintf(format, args...)))
}
