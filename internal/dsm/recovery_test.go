package dsm

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"lrcrace/internal/hbdet"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/reliable"
	"lrcrace/internal/telemetry"
)

// recoverySys builds a system armed for crash recovery: checkpointing on,
// the reliable sublayer with an aggressive retry cap (so link death is
// declared in milliseconds), and the barrier wall timeout as the detection
// backstop for crashes that leave no survivor→victim traffic.
func recoverySys(t *testing.T, nproc int, proto ProtocolKind, crash *CrashPlan) *System {
	t.Helper()
	s, err := New(Config{
		NumProcs:   nproc,
		SharedSize: 16 * 1024,
		PageSize:   1024,
		Protocol:   proto,
		Detect:     true,
		Reliable:   true,
		// Keep every epoch line: the round-trip and grid tests below assert
		// on checkpoints the default retention tail would have collected.
		CheckpointRetain: -1,
		// Tuned to detect a dead endpoint in ~a quarter second. Do not make
		// this much tighter: under -race a scheduler stall of a few
		// milliseconds on a healthy process is routine, and a retry budget
		// it can exceed makes survivors declare each other dead (a false
		// link death corrupts the rollback bookkeeping the tests assert on).
		ReliableConfig: reliable.Config{
			RTO:        2 * time.Millisecond,
			MaxRTO:     50 * time.Millisecond,
			MaxRetries: 8,
		},
		BarrierWallTimeout: 2 * time.Second,
		Crash:              crash,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// recoveryScenario is one epoch-structured workload for the crash grid.
// setup allocates shared state and returns the per-attempt app factory; its
// epoch bodies are self-contained (no cross-epoch closure state), as
// RunEpochs requires.
type recoveryScenario struct {
	name   string
	proto  ProtocolKind
	epochs int32
	setup  func(t *testing.T, s *System) func() EpochFunc
}

// tspScenario is the paper's TSP shape: a branch-and-bound bound variable
// updated under a lock but read unsynchronized for pruning (the racy read),
// plus per-process tour slots (disjoint words, no race).
func tspScenario() recoveryScenario {
	return recoveryScenario{
		name:   "tsp",
		proto:  SingleWriter,
		epochs: 3,
		setup: func(t *testing.T, s *System) func() EpochFunc {
			best, err := s.AllocWords("best", 1)
			if err != nil {
				t.Fatal(err)
			}
			tours, err := s.AllocWords("tours", 8)
			if err != nil {
				t.Fatal(err)
			}
			return func() EpochFunc {
				return func(p *Proc, e int32) {
					p.Write(tours+mem.Addr(p.ID()*8), uint64(int(e)*10+p.ID()))
					p.Lock(0)
					p.Write(best, p.Read(best)+1)
					p.Unlock(0)
					if p.ID() != 0 {
						p.Read(best) // unsynchronized pruning read: the TSP race
					}
				}
			}
		},
	}
}

// mwScenario exercises the multi-writer diff protocol: disjoint words of a
// shared page (false sharing, no race), an unsynchronized write-write
// overlap between procs 1 and 2 (the race), and a lock-ordered counter
// whose final value proves no update is lost or doubled across a rollback.
func mwScenario() recoveryScenario {
	return recoveryScenario{
		name:   "multi-writer",
		proto:  MultiWriter,
		epochs: 3,
		setup: func(t *testing.T, s *System) func() EpochFunc {
			words, err := s.AllocWords("words", 16)
			if err != nil {
				t.Fatal(err)
			}
			counter, err := s.AllocWords("counter", 1)
			if err != nil {
				t.Fatal(err)
			}
			return func() EpochFunc {
				return func(p *Proc, e int32) {
					p.Write(words+mem.Addr(p.ID()*8), uint64(e)+1)
					if p.ID() == 1 || p.ID() == 2 {
						p.Write(words+mem.Addr(10*8), uint64(p.ID()))
					}
					p.Lock(1)
					p.Write(counter, p.Read(counter)+1)
					p.Unlock(1)
				}
			}
		},
	}
}

// stableRaceKeys reduces reports to their schedule-independent facts:
// which address raced, in which epoch it was first caught, and whether it
// was read-write or write-write. The representative interval pair inside a
// report varies with lock-grant order even between two crash-free runs, so
// it is excluded from the recovered-vs-baseline comparison.
func stableRaceKeys(reports []race.Report) map[string]bool {
	keys := map[string]bool{}
	for _, r := range race.DedupByAddr(reports) {
		kind := "read-write"
		if r.WriteWrite() {
			kind = "write-write"
		}
		keys[fmt.Sprintf("0x%x@epoch%d:%s", uint64(r.Addr), r.Epoch, kind)] = true
	}
	return keys
}

func (sc recoveryScenario) run(t *testing.T, crash *CrashPlan) *System {
	t.Helper()
	s := recoverySys(t, 4, sc.proto, crash)
	factory := sc.setup(t, s)
	if err := s.RunEpochs(sc.epochs, factory); err != nil {
		t.Fatalf("%s (crash=%+v): %v", sc.name, crash, err)
	}
	return s
}

// TestCrashRecoveryGrid is the acceptance grid: crash each worker 1..N-1
// mid-interval in turn, on both scenarios, and demand the recovered run
// report exactly the crash-free run's races. Additional protocol points —
// dying while holding a lock, dying inside the barrier's bitmap round, and
// dying before the first checkpoint exists (epoch 0, full restart) — ride
// on top of the victim sweep.
func TestCrashRecoveryGrid(t *testing.T) {
	const nproc = 4
	for _, sc := range []recoveryScenario{tspScenario(), mwScenario()} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			base := sc.run(t, nil)
			baseRaces := stableRaceKeys(base.Races())
			if len(baseRaces) == 0 {
				t.Fatalf("crash-free %s run found no races; the grid would prove nothing", sc.name)
			}
			if rs := base.RecoveryStats(); rs.Recoveries != 0 {
				t.Fatalf("crash-free run performed %d recoveries", rs.Recoveries)
			}
			wantCkpts := nproc * int(sc.epochs)
			if cs := base.CheckpointStats(); cs.Count != wantCkpts || cs.Bytes <= 0 {
				t.Fatalf("crash-free checkpoints = %+v, want Count=%d, Bytes>0", cs, wantCkpts)
			}

			plans := []*CrashPlan{
				{Victim: 1, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				{Victim: 2, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				{Victim: 3, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				{Victim: 2, Epoch: 1, Point: CrashHoldingLock},
				{Victim: 2, Epoch: 1, Point: CrashInBitmapRound},
				{Victim: 1, Epoch: 0, Point: CrashMidInterval}, // before any checkpoint: full restart
			}
			for _, plan := range plans {
				plan := plan
				t.Run(fmt.Sprintf("%v-p%d-e%d", plan.Point, plan.Victim, plan.Epoch), func(t *testing.T) {
					s := sc.run(t, plan)
					if !plan.Fired() {
						t.Fatal("crash plan never fired")
					}
					rs := s.RecoveryStats()
					if rs.Recoveries != 1 {
						t.Fatalf("recoveries = %d, want 1 (stats %+v)", rs.Recoveries, rs)
					}
					if rs.LastVictim != plan.Victim {
						t.Errorf("recovery blamed p%d, victim was p%d (via %s)",
							rs.LastVictim, plan.Victim, rs.LastReason)
					}
					if rs.LastReason != "link-death" && rs.LastReason != "barrier-timeout" {
						t.Errorf("detection path = %q, want link-death or barrier-timeout", rs.LastReason)
					}
					wantLine := int32(0)
					if plan.Epoch > 0 {
						wantLine = plan.Epoch
					}
					if rs.LastEpoch != wantLine {
						t.Errorf("recovery line = epoch %d, want %d", rs.LastEpoch, wantLine)
					}
					if got := stableRaceKeys(s.Races()); !reflect.DeepEqual(got, baseRaces) {
						t.Errorf("recovered race set differs from crash-free run:\ncrash-free: %v\nrecovered:  %v",
							baseRaces, got)
					}
					// Re-executed epochs deposit their checkpoints exactly once:
					// nothing past the crash existed to collide with.
					if cs := s.CheckpointStats(); cs.Count != wantCkpts {
						t.Errorf("checkpoints after recovery = %d, want %d", cs.Count, wantCkpts)
					}
				})
			}
		})
	}
}

// TestCrashRecoveryFinalMemory: the lock-ordered counter survives a
// rollback with no lost or doubled increments, and per-process slots hold
// their final-epoch values.
func TestCrashRecoveryFinalMemory(t *testing.T) {
	sc := mwScenario()
	s := recoverySys(t, 4, sc.proto, &CrashPlan{Victim: 3, Epoch: 1, Point: CrashMidInterval, AfterN: 2})
	words, _ := s.AllocWords("words", 16)
	counter, _ := s.AllocWords("counter", 1)
	err := s.RunEpochs(sc.epochs, func() EpochFunc {
		return func(p *Proc, e int32) {
			p.Write(words+mem.Addr(p.ID()*8), uint64(e)+1)
			p.Lock(1)
			p.Write(counter, p.Read(counter)+1)
			p.Unlock(1)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if rs := s.RecoveryStats(); rs.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", rs.Recoveries)
	}
	if got := s.SnapshotWord(counter); got != uint64(4*sc.epochs) {
		t.Errorf("counter = %d after recovery, want %d", got, 4*sc.epochs)
	}
	for p := 0; p < 4; p++ {
		if got := s.SnapshotWord(words + mem.Addr(p*8)); got != uint64(sc.epochs) {
			t.Errorf("slot %d = %d, want %d", p, got, sc.epochs)
		}
	}
}

// TestCrashRecoveryCrossValidation anchors the grid's baseline: the
// crash-free TSP run's LRC race set matches a classic vector-clock
// happens-before detector observing the same execution. Combined with the
// grid's recovered==crash-free equality, this cross-validates the
// recovered runs against internal/hbdet.
func TestCrashRecoveryCrossValidation(t *testing.T) {
	const nproc = 4
	hb := hbdet.New(nproc)
	s, err := New(Config{
		NumProcs:   nproc,
		SharedSize: 16 * 1024,
		PageSize:   1024,
		Protocol:   SingleWriter,
		Detect:     true,
		Tracer:     hb,
	})
	if err != nil {
		t.Fatal(err)
	}
	sc := tspScenario()
	factory := sc.setup(t, s)
	if err := s.RunEpochs(sc.epochs, factory); err != nil {
		t.Fatal(err)
	}
	lrc := map[mem.Addr]bool{}
	for _, r := range s.Races() {
		lrc[r.Addr] = true
	}
	hbAddrs := hb.RacyAddrs()
	if len(lrc) != len(hbAddrs) {
		t.Fatalf("LRC flags %v, happens-before flags %v", lrc, hbAddrs)
	}
	for _, a := range hbAddrs {
		if !lrc[a] {
			t.Fatalf("happens-before flags %v, LRC missed %v", hbAddrs, a)
		}
	}
}

// TestRecoveryTelemetry runs one crash-and-recover execution under an
// active recorder and checks both the event stream and the derived
// metrics: checkpoint, crash-injection/detection, and recovery events must
// appear, and the dsm_checkpoint_* / dsm_recovery_* counters must move.
func TestRecoveryTelemetry(t *testing.T) {
	rec := telemetry.Start(telemetry.Config{Procs: 4, Cap: -1})
	defer telemetry.Stop()

	sc := tspScenario()
	s := sc.run(t, &CrashPlan{Victim: 2, Epoch: 1, Point: CrashMidInterval, AfterN: 2})
	if rs := s.RecoveryStats(); rs.Recoveries != 1 {
		t.Fatalf("recoveries = %d, want 1", rs.Recoveries)
	}

	seen := map[telemetry.Kind]int{}
	for _, e := range rec.Events() {
		seen[e.Kind]++
	}
	for _, k := range []telemetry.Kind{
		telemetry.KCheckpoint, telemetry.KCrashInjected, telemetry.KCrashDetected,
		telemetry.KRecoveryStart, telemetry.KRecoveryDone,
	} {
		if seen[k] == 0 {
			t.Errorf("no %v event recorded (saw %v)", k, seen)
		}
	}
	if seen[telemetry.KCrashInjected] != 1 {
		t.Errorf("%d crash injections recorded, want 1", seen[telemetry.KCrashInjected])
	}

	snap := rec.Metrics().Snapshot()
	for _, name := range []string{
		"dsm_checkpoint_total", "dsm_checkpoint_bytes_total", "dsm_recovery_total",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if got := snap.Counters["dsm_recovery_total"]; got != 1 {
		t.Errorf("dsm_recovery_total = %d, want 1", got)
	}
	// Wall time is measured even when the virtual rollback is tiny.
	if snap.Counters["dsm_recovery_wall_ns_total"] <= 0 {
		t.Errorf("dsm_recovery_wall_ns_total = %d, want > 0",
			snap.Counters["dsm_recovery_wall_ns_total"])
	}
	tripped := false
	for name, v := range snap.Counters {
		if strings.HasPrefix(name, "telemetry_trips_total") && v > 0 {
			tripped = true
		}
	}
	if !tripped && seen[telemetry.KCrashDetected] == 0 {
		t.Error("neither a trip nor a crash-detected event was recorded")
	}
}

// TestCheckpointRoundTrip: every checkpoint a real run deposits decodes,
// restores into a freshly built process of an identical system, and
// re-encodes to byte-identical form. This is the serialization acceptance
// bar: a measurably sized, versioned, deterministic format.
func TestCheckpointRoundTrip(t *testing.T) {
	for _, sc := range []recoveryScenario{tspScenario(), mwScenario()} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := sc.run(t, nil)

			// A twin system with the same geometry to host restored procs.
			twin, err := New(Config{
				NumProcs:   4,
				SharedSize: 16 * 1024,
				PageSize:   1024,
				Protocol:   sc.proto,
				Detect:     true,
			})
			if err != nil {
				t.Fatal(err)
			}
			checked := 0
			for proc := 0; proc < 4; proc++ {
				for epoch := int32(1); epoch <= sc.epochs; epoch++ {
					blob := s.ckpts.Get(proc, epoch)
					if blob == nil {
						t.Fatalf("no checkpoint for proc %d epoch %d", proc, epoch)
					}
					ck, err := decodeCheckpoint(blob, s.ckpts.Chunks())
					if err != nil {
						t.Fatalf("proc %d epoch %d: %v", proc, epoch, err)
					}
					if ck.ID != proc || ck.Epoch != epoch {
						t.Fatalf("checkpoint header says proc %d epoch %d, stored under proc %d epoch %d",
							ck.ID, ck.Epoch, proc, epoch)
					}
					fresh := newProc(twin, proc)
					if err := fresh.restoreFromCheckpoint(ck); err != nil {
						t.Fatalf("restore proc %d epoch %d: %v", proc, epoch, err)
					}
					if again := fresh.encodeCheckpointLocked(); !bytes.Equal(blob, again) {
						t.Fatalf("proc %d epoch %d: re-encoded checkpoint differs (%d vs %d bytes)",
							proc, epoch, len(blob), len(again))
					}
					checked++
				}
			}
			if want := 4 * int(sc.epochs); checked != want {
				t.Fatalf("round-tripped %d checkpoints, want %d", checked, want)
			}

			// Corruption is rejected, not misparsed.
			blob := append([]byte(nil), s.ckpts.Get(1, 1)...)
			if _, err := decodeCheckpoint(blob[:len(blob)-3], s.ckpts.Chunks()); err == nil {
				t.Error("truncated checkpoint decoded without error")
			}
			blob[0] ^= 0xff
			if _, err := decodeCheckpoint(blob, s.ckpts.Chunks()); err == nil {
				t.Error("bad magic accepted")
			}
		})
	}
}

// TestCheckpointStoreRecoveryLine exercises LatestCommonEpoch directly.
func TestCheckpointStoreRecoveryLine(t *testing.T) {
	cs := NewCheckpointStore()
	if got := cs.LatestCommonEpoch(2); got != 0 {
		t.Errorf("empty store line = %d, want 0", got)
	}
	cs.Put(0, 1, []byte{1}, nil)
	cs.Put(0, 2, []byte{2, 2}, nil)
	if got := cs.LatestCommonEpoch(2); got != 0 {
		t.Errorf("line with proc 1 missing = %d, want 0", got)
	}
	cs.Put(1, 1, []byte{3}, nil)
	if got := cs.LatestCommonEpoch(2); got != 1 {
		t.Errorf("line = %d, want 1", got)
	}
	cs.Put(1, 2, []byte{4, 4}, nil)
	if got := cs.LatestCommonEpoch(2); got != 2 {
		t.Errorf("line = %d, want 2", got)
	}
	// Re-depositing an existing key must not double-count stats.
	before := cs.Stats()
	cs.Put(1, 2, []byte{4, 4}, nil)
	if after := cs.Stats(); after != before {
		t.Errorf("re-put changed stats: %+v -> %+v", before, after)
	}
	if st := cs.Stats(); st.Count != 4 || st.Bytes != 6 {
		t.Errorf("stats = %+v, want Count=4 Bytes=6", st)
	}
}

// TestCrashConfigValidation: the config layer rejects unrecoverable or
// undetectable crash plans at New, not mid-run.
func TestCrashConfigValidation(t *testing.T) {
	base := func() Config {
		return Config{
			NumProcs:           2,
			SharedSize:         4096,
			BarrierWallTimeout: time.Second,
		}
	}
	ok := base()
	ok.Crash = &CrashPlan{Victim: 1}
	if _, err := New(ok); err != nil {
		t.Fatalf("valid crash config rejected: %v", err)
	}

	noCkpt := base()
	noCkpt.NoCheckpoint = true
	noCkpt.Crash = &CrashPlan{Victim: 1}
	if _, err := New(noCkpt); err == nil {
		t.Error("Crash without Checkpoint accepted")
	}

	noDetect := base()
	noDetect.BarrierWallTimeout = 0
	noDetect.Crash = &CrashPlan{Victim: 1}
	if _, err := New(noDetect); err == nil {
		t.Error("Crash with no failure-detection path accepted")
	}

	master := base()
	master.Crash = &CrashPlan{Victim: 0}
	if _, err := New(master); err == nil {
		t.Error("crash of the barrier master accepted")
	}

	outOfRange := base()
	outOfRange.Crash = &CrashPlan{Victim: 2}
	if _, err := New(outOfRange); err == nil {
		t.Error("victim out of range accepted")
	}

	badRec := base()
	badRec.Crash = &CrashPlan{Victim: 1}
	badRec.MaxRecoveries = -1
	if _, err := New(badRec); err == nil {
		t.Error("negative MaxRecoveries accepted")
	}

	badVT := base()
	badVT.Crash = &CrashPlan{Victim: 1, Point: CrashAtVTime}
	if _, err := New(badVT); err == nil {
		t.Error("CrashAtVTime without VTime accepted")
	}

	idleCorrupt := base()
	idleCorrupt.Corruption = &CorruptionPlan{Epoch: 1, Count: 1}
	if _, err := New(idleCorrupt); err == nil {
		t.Error("Corruption without a crash accepted (it could never be observed)")
	}

	corruptNoCkpt := base()
	corruptNoCkpt.NoCheckpoint = true
	corruptNoCkpt.Crash = &CrashPlan{Victim: 1}
	corruptNoCkpt.Corruption = &CorruptionPlan{Epoch: 1, Count: 1}
	if _, err := New(corruptNoCkpt); err == nil {
		t.Error("Corruption with NoCheckpoint accepted")
	}
}

// TestRandomCrashPlanDeterministic: same seed, same plan; victims stay in
// the worker range.
func TestRandomCrashPlanDeterministic(t *testing.T) {
	a := RandomCrashPlan(42, 4, 3)
	b := RandomCrashPlan(42, 4, 3)
	if a.Victim != b.Victim || a.Epoch != b.Epoch || a.Point != b.Point || a.AfterN != b.AfterN {
		t.Errorf("same seed, different plans: %+v vs %+v", a, b)
	}
	for seed := uint64(0); seed < 64; seed++ {
		p := RandomCrashPlan(seed, 4, 3)
		if p.Victim < 1 || p.Victim > 3 {
			t.Fatalf("seed %d: victim %d out of worker range", seed, p.Victim)
		}
		if p.Epoch < 0 || p.Epoch > 2 {
			t.Fatalf("seed %d: epoch %d out of range", seed, p.Epoch)
		}
		if err := p.Validate(4); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
	if RandomCrashPlan(1, 1, 3) != nil {
		t.Error("single-proc system has no valid victim; want nil plan")
	}
}

// TestBarrierResetAcrossEpochs is the satellite test for
// resetBarrierLocked: after a round that populated every per-epoch field —
// including the bitmap round's buffers, as a timed-out or crash-aborted
// round would leave them — the reset must clear all of it and advance the
// epoch, so the next round starts from a clean slate.
func TestBarrierResetAcrossEpochs(t *testing.T) {
	s := newSys(t, 3, SingleWriter, true)
	p := newProc(s, 0)
	b := p.bar
	if b == nil {
		t.Fatal("master proc has no barrier state")
	}
	for round := 0; round < 3; round++ {
		epochBefore := b.epoch
		// Dirty every per-epoch field as a mid-round abort would leave it.
		b.arrived = 2
		b.arrivedFrom[0] = true
		b.arrivedFrom[2] = true
		b.records = append(b.records, nil)
		b.maxArr = 99
		b.minArr = 7
		b.check = []race.CheckEntry{{}}
		b.bmWait = true
		b.bmCount = 1
		b.bmMaxArr = 55
		b.bmSource = map[bmKey]mem.Bitmap{{page: 1}: nil}
		b.bmFrom[1] = true

		p.resetBarrierLocked()

		if b.epoch != epochBefore+1 {
			t.Errorf("round %d: epoch %d, want %d", round, b.epoch, epochBefore+1)
		}
		if b.arrived != 0 || b.records != nil || b.check != nil {
			t.Errorf("round %d: arrival state not reset: arrived=%d records=%v check=%v",
				round, b.arrived, b.records, b.check)
		}
		if b.maxArr != 0 || b.minArr != -1 {
			t.Errorf("round %d: arrival clocks not reset: maxArr=%d minArr=%d",
				round, b.maxArr, b.minArr)
		}
		if b.bmWait || b.bmCount != 0 || b.bmMaxArr != 0 || b.bmSource != nil {
			t.Errorf("round %d: bitmap round not reset: wait=%v count=%d maxArr=%d source=%v",
				round, b.bmWait, b.bmCount, b.bmMaxArr, b.bmSource)
		}
		for i, v := range b.arrivedFrom {
			if v {
				t.Errorf("round %d: arrivedFrom[%d] still set", round, i)
			}
		}
		for i, v := range b.bmFrom {
			if v {
				t.Errorf("round %d: bmFrom[%d] still set", round, i)
			}
		}
	}
}

// TestLockReclamation drives reconcileRestored directly against a
// hand-built post-restore state: a manager whose lastHolder points at a
// process with no tenure on its own side (the dead holder / rolled-back
// hand-off signature) must reclaim; a consistent released-ungranted tenure
// must be left alone.
func TestLockReclamation(t *testing.T) {
	s := newSys(t, 3, SingleWriter, false)
	s.procs = make([]*Proc, 3)
	for i := range s.procs {
		s.procs[i] = newProc(s, i)
	}
	m := s.procs[0]
	// Lock 0 (manager p0): lastHolder p2, but p2 has no tenure → reclaim.
	m.locks[0] = &lockState{lastHolder: 2}
	s.procs[2].locks[0] = &lockState{}
	// Lock 3 (manager p0): lastHolder p1 with a consistent release → keep.
	m.locks[3] = &lockState{lastHolder: 1}
	s.procs[1].locks[3] = &lockState{releasedUngranted: true}
	// Lock 1 (manager p1): lastHolder p1 itself, still holding → keep.
	s.procs[1].locks[1] = &lockState{holding: true, lastHolder: 1}

	if err := s.reconcileRestored(); err != nil {
		t.Fatal(err)
	}
	if got := m.locks[0].lastHolder; got != -1 {
		t.Errorf("dead tenure not reclaimed: lock 0 lastHolder = %d, want -1", got)
	}
	if got := m.locks[3].lastHolder; got != 1 {
		t.Errorf("consistent tenure reclaimed: lock 3 lastHolder = %d, want 1", got)
	}
	if got := s.procs[1].locks[1].lastHolder; got != 1 {
		t.Errorf("held tenure reclaimed: lock 1 lastHolder = %d, want 1", got)
	}
	if got := s.RecoveryStats().LocksReclaimed; got != 1 {
		t.Errorf("LocksReclaimed = %d, want 1", got)
	}
}

// TestBarrierBlame pins the suspect-derivation rules for barrier-wait
// timeouts: only a barrier wait may name a suspect, and only when exactly
// one process is missing from the round's arrival ledger — with several
// missing, any of them may merely be wedged behind the real victim.
func TestBarrierBlame(t *testing.T) {
	const n = 4
	mk := func() *Proc {
		s := newSys(t, n, SingleWriter, true)
		return newProc(s, 0)
	}

	t.Run("non-barrier op never blames", func(t *testing.T) {
		p := mk()
		p.bar.arrived = 3
		p.bar.arrivedFrom[0], p.bar.arrivedFrom[1], p.bar.arrivedFrom[2] = true, true, true
		// A lock wait wedged behind a dead holder must not blame whoever
		// has not reached the barrier yet (that includes this process).
		if suspect, detail := p.barrierBlame("lock grant"); suspect != -1 || detail != "" {
			t.Errorf("lock-grant timeout blamed p%d%s, want no suspect", suspect, detail)
		}
	})

	t.Run("non-master has no ledger", func(t *testing.T) {
		s := newSys(t, n, SingleWriter, true)
		p := newProc(s, 1)
		if suspect, _ := p.barrierBlame("barrier release"); suspect != -1 {
			t.Errorf("worker blamed p%d, want -1", suspect)
		}
	})

	t.Run("exactly one missing is the suspect", func(t *testing.T) {
		p := mk()
		p.bar.arrived = 3
		p.bar.arrivedFrom[0], p.bar.arrivedFrom[1], p.bar.arrivedFrom[2] = true, true, true
		suspect, detail := p.barrierBlame("barrier release")
		if suspect != 3 {
			t.Errorf("suspect = %d, want 3", suspect)
		}
		if !strings.Contains(detail, "[3]") {
			t.Errorf("detail %q does not name the missing process", detail)
		}
	})

	t.Run("several missing names nobody", func(t *testing.T) {
		p := mk()
		p.bar.arrived = 2
		p.bar.arrivedFrom[0], p.bar.arrivedFrom[2] = true, true
		suspect, detail := p.barrierBlame("barrier release")
		if suspect != -1 {
			t.Errorf("suspect = %d, want -1 (either of 1, 3 may just be wedged)", suspect)
		}
		if !strings.Contains(detail, "1") || !strings.Contains(detail, "3") {
			t.Errorf("detail %q should still list the missing processes", detail)
		}
	})

	t.Run("no arrivals yet tracks nothing", func(t *testing.T) {
		p := mk()
		if suspect, detail := p.barrierBlame("barrier release"); suspect != -1 || detail != "" {
			t.Errorf("empty ledger blamed p%d%s", suspect, detail)
		}
	})

	t.Run("bitmap round uses its own ledger", func(t *testing.T) {
		p := mk()
		// Arrival round complete, bitmap round missing only p2: the flap of
		// the master's own links during the second round must blame p2, not
		// whoever the stale arrival ledger shows.
		p.bar.arrived = n
		for i := range p.bar.arrivedFrom {
			p.bar.arrivedFrom[i] = true
		}
		p.bar.bmWait = true
		p.bar.bmFrom[0], p.bar.bmFrom[1], p.bar.bmFrom[3] = true, true, true
		suspect, _ := p.barrierBlame("barrier bitmap round")
		if suspect != 2 {
			t.Errorf("suspect = %d, want 2", suspect)
		}
	})

	t.Run("sharded round uses the shard ledger", func(t *testing.T) {
		p := mk()
		p.shard = &shardState{expect: n, got: n - 1, from: []bool{true, false, true, true}}
		suspect, _ := p.barrierBlame("barrier bitmap round")
		if suspect != 1 {
			t.Errorf("suspect = %d, want 1", suspect)
		}
	})
}

// TestNoteSuspectPrecedence pins how detection verdicts combine when
// link-death and barrier-timeout evidence arrive in the same epoch: the
// first verdict wins, except that hard link-death evidence overrides a
// circumstantial barrier-timeout, and an unidentified suspect may be
// sharpened by any later identified verdict.
func TestNoteSuspectPrecedence(t *testing.T) {
	mk := func() *System {
		s := newSys(t, 4, SingleWriter, false)
		s.resetSuspectLocked()
		return s
	}
	check := func(t *testing.T, s *System, proc int, via string) {
		t.Helper()
		if gotP, gotV := s.suspectInfo(); gotP != proc || gotV != via {
			t.Errorf("suspect = (%d, %q), want (%d, %q)", gotP, gotV, proc, via)
		}
	}

	t.Run("first verdict wins", func(t *testing.T) {
		s := mk()
		s.noteSuspect(2, "barrier-timeout")
		s.noteSuspect(1, "barrier-timeout")
		check(t, s, 2, "barrier-timeout")
	})

	t.Run("link-death overrides barrier-timeout", func(t *testing.T) {
		s := mk()
		s.noteSuspect(1, "barrier-timeout")
		s.noteSuspect(3, "link-death")
		check(t, s, 3, "link-death")
	})

	t.Run("barrier-timeout never downgrades link-death", func(t *testing.T) {
		s := mk()
		s.noteSuspect(3, "link-death")
		s.noteSuspect(1, "barrier-timeout")
		check(t, s, 3, "link-death")
	})

	t.Run("anonymous link-death does not erase a named timeout", func(t *testing.T) {
		s := mk()
		s.noteSuspect(2, "barrier-timeout")
		s.noteSuspect(-1, "link-death")
		check(t, s, 2, "barrier-timeout")
	})

	t.Run("later verdicts sharpen an unidentified suspect", func(t *testing.T) {
		s := mk()
		s.noteSuspect(-1, "barrier-timeout")
		s.noteSuspect(2, "barrier-timeout")
		check(t, s, 2, "barrier-timeout")
	})

	t.Run("reset clears the verdict", func(t *testing.T) {
		s := mk()
		s.noteSuspect(3, "link-death")
		s.resetSuspectLocked()
		check(t, s, -1, "")
	})
}

// TestCompoundBlameSameEpoch: a quiet death plus a wedged lock chain in
// one epoch — the victim dies holding a lock, so survivors queued on the
// lock wedge (a barrier-timeout with no nameable suspect) while the
// victim's silent links exhaust their retry budget (link-death with hard
// evidence). Whichever fires first, recovery must settle on the true
// victim and converge.
func TestCompoundBlameSameEpoch(t *testing.T) {
	for _, sc := range []recoveryScenario{tspScenario(), mwScenario()} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseRaces := stableRaceKeys(sc.run(t, nil).Races())
			s := sc.run(t, &CrashPlan{Victim: 2, Epoch: 1, Point: CrashHoldingLock})
			rs := s.RecoveryStats()
			if rs.LastVictim != 2 {
				t.Errorf("blamed p%d (via %s), want the true victim p2", rs.LastVictim, rs.LastReason)
			}
			if got := stableRaceKeys(s.Races()); !reflect.DeepEqual(got, baseRaces) {
				t.Errorf("race set differs from crash-free run:\ncrash-free: %v\nrecovered:  %v",
					baseRaces, got)
			}
		})
	}
}
