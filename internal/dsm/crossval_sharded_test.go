package dsm

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/reliable"
	"lrcrace/internal/replay"
)

// Cross-validation of the sharded barrier race check (Config.ShardedCheck)
// against the serial check, which stays in the tree as the oracle: on the
// same program both modes must report the same races AND leave the detector
// in byte-identical persistent state (race.State feeds checkpoints, so any
// divergence would also poison recovery).

// newShardedSys mirrors newSys with the sharded check enabled.
func newShardedSys(t *testing.T, nproc int, proto ProtocolKind) *System {
	t.Helper()
	s, err := New(Config{
		NumProcs:     nproc,
		SharedSize:   16 * 1024,
		PageSize:     1024,
		Protocol:     proto,
		Detect:       true,
		ShardedCheck: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedCheckRequiresDetect: config-layer gating.
func TestShardedCheckRequiresDetect(t *testing.T) {
	if _, err := New(Config{NumProcs: 2, SharedSize: 4096, ShardedCheck: true}); err == nil {
		t.Fatal("ShardedCheck without Detect accepted")
	}
}

// TestShardedPaperScenariosMatchSerial runs the channel-gated (fully
// deterministic) paper scenarios in both modes and demands exact equality:
// the report lists element-wise and the full detector state snapshot.
func TestShardedPaperScenariosMatchSerial(t *testing.T) {
	type outcome struct {
		races []race.Report
		det   race.State
	}
	capture := func(s *System, run func(*System) []race.Report) outcome {
		run(s)
		return outcome{races: s.Races(), det: s.DetectorState()}
	}
	check := func(t *testing.T, serial, sharded outcome) {
		t.Helper()
		if !reflect.DeepEqual(serial.races, sharded.races) {
			t.Errorf("race reports differ:\nserial:  %v\nsharded: %v", serial.races, sharded.races)
		}
		if !reflect.DeepEqual(serial.det, sharded.det) {
			t.Errorf("detector state differs:\nserial:  %+v\nsharded: %+v", serial.det, sharded.det)
		}
		if len(serial.races) == 0 {
			t.Error("scenario found no races; the comparison proves nothing")
		}
	}

	for _, tc := range []struct {
		name                   string
		p1SecondWrite, p2Write int
	}{
		{"figure2-same-word", 8, 8},
		{"figure2-false-sharing-plus-race", 0, 0},
	} {
		t.Run(tc.name, func(t *testing.T) {
			serial := capture(newSys(t, 2, SingleWriter, true), func(s *System) []race.Report {
				return runFigure2(t, s, tc.p1SecondWrite, tc.p2Write)
			})
			sharded := capture(newShardedSys(t, 2, SingleWriter), func(s *System) []race.Report {
				return runFigure2(t, s, tc.p1SecondWrite, tc.p2Write)
			})
			check(t, serial, sharded)
		})
	}

	t.Run("figure5-queue", func(t *testing.T) {
		serial := capture(newSys(t, 3, SingleWriter, true), func(s *System) []race.Report {
			return runFigure5(t, s)
		})
		sharded := capture(newShardedSys(t, 3, SingleWriter), func(s *System) []race.Report {
			return runFigure5(t, s)
		})
		check(t, serial, sharded)
	})
}

// TestShardedRandomizedMatchesSerial replays crossval_test's randomized
// fixed-schedule workloads in both modes. The race set of a lock-using
// workload depends on the lock-grant order the managers happen to
// serialize, so the serial run records that order (§6.1 run 1) and the
// sharded run replays it under a sync Enforcer — making the two executions
// equivalent and the comparison exact: identical report lists and
// identical detector state.
func TestShardedRandomizedMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		for _, proto := range []ProtocolKind{SingleWriter, MultiWriter} {
			r := rand.New(rand.NewSource(seed))
			nproc := 2 + r.Intn(5) // up to 6: interior tree nodes with two children
			nepoch := 1 + r.Intn(3)
			nwords := 24

			type op struct {
				word  int
				write bool
				lock  int
			}
			sched := make([][][]op, nepoch)
			for e := range sched {
				sched[e] = make([][]op, nproc)
				for p := range sched[e] {
					nops := r.Intn(5)
					for k := 0; k < nops; k++ {
						sched[e][p] = append(sched[e][p], op{
							word:  r.Intn(nwords),
							write: r.Intn(2) == 0,
							lock:  r.Intn(3) - 1,
						})
					}
				}
			}

			type outcome struct {
				races []race.Report
				det   race.State
			}
			runOne := func(sharded bool, rec SyncRecorder, enf SyncEnforcer) outcome {
				s, err := New(Config{
					NumProcs:     nproc,
					SharedSize:   4 * 1024,
					PageSize:     512,
					Protocol:     proto,
					Detect:       true,
					ShardedCheck: sharded,
					SyncRecorder: rec,
					SyncEnforcer: enf,
				})
				if err != nil {
					t.Fatal(err)
				}
				base, _ := s.AllocWords("words", nwords)
				err = s.Run(func(p *Proc) {
					for e := 0; e < nepoch; e++ {
						for _, o := range sched[e][p.ID()] {
							a := base + mem.Addr(o.word*8)
							if o.lock >= 0 {
								p.Lock(o.lock)
							}
							if o.write {
								p.Write(a, uint64(o.word))
							} else {
								p.Read(a)
							}
							if o.lock >= 0 {
								p.Unlock(o.lock)
							}
						}
						p.Barrier()
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				return outcome{races: s.Races(), det: s.DetectorState()}
			}

			rec := replay.NewSyncRecord()
			serial := runOne(false, rec, nil)
			sharded := runOne(true, nil, replay.NewEnforcer(rec))
			if !reflect.DeepEqual(serial.races, sharded.races) {
				t.Fatalf("seed %d proto %v nproc %d: reports differ:\nserial:  %v\nsharded: %v",
					seed, proto, nproc, serial.races, sharded.races)
			}
			if !reflect.DeepEqual(serial.det, sharded.det) {
				t.Fatalf("seed %d proto %v nproc %d: detector state differs:\nserial:  %+v\nsharded: %+v",
					seed, proto, nproc, serial.det, sharded.det)
			}
		}
	}
}

// shardedRecoverySys is recoverySys with the sharded check enabled: the
// crash grid below re-runs the recovery scenarios in sharded mode, so a
// crash that wedges a shard owner's collection round — including the victim
// dying between the release and its bitmap replies — must still be
// detected, rolled back, and replayed to the serial baseline's races.
func shardedRecoverySys(t *testing.T, nproc int, proto ProtocolKind, crash *CrashPlan) *System {
	t.Helper()
	s, err := New(Config{
		NumProcs:     nproc,
		SharedSize:   16 * 1024,
		PageSize:     1024,
		Protocol:     proto,
		Detect:       true,
		ShardedCheck: true,
		Reliable:     true,
		ReliableConfig: reliable.Config{
			RTO:        2 * time.Millisecond,
			MaxRTO:     50 * time.Millisecond,
			MaxRetries: 8,
		},
		BarrierWallTimeout: 2 * time.Second,
		Crash:              crash,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestShardedCrashGridMatchesSerial: both recovery scenarios, with the
// victim sweep plus the mid-bitmap-round crash, run entirely in sharded
// mode; every recovered run must report exactly the races of the SERIAL
// crash-free baseline (two independent equalities in one: sharded == serial
// and recovered == crash-free).
func TestShardedCrashGridMatchesSerial(t *testing.T) {
	for _, sc := range []recoveryScenario{tspScenario(), mwScenario()} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseRaces := stableRaceKeys(sc.run(t, nil).Races()) // serial, crash-free
			if len(baseRaces) == 0 {
				t.Fatalf("crash-free %s run found no races; the grid would prove nothing", sc.name)
			}

			runSharded := func(t *testing.T, crash *CrashPlan) *System {
				t.Helper()
				s := shardedRecoverySys(t, 4, sc.proto, crash)
				factory := sc.setup(t, s)
				if err := s.RunEpochs(sc.epochs, factory); err != nil {
					t.Fatalf("%s (crash=%+v): %v", sc.name, crash, err)
				}
				return s
			}

			t.Run("crash-free", func(t *testing.T) {
				s := runSharded(t, nil)
				if got := stableRaceKeys(s.Races()); !reflect.DeepEqual(got, baseRaces) {
					t.Errorf("sharded crash-free races = %v, want %v", got, baseRaces)
				}
				if rs := s.RecoveryStats(); rs.Recoveries != 0 {
					t.Errorf("crash-free sharded run performed %d recoveries", rs.Recoveries)
				}
			})

			plans := []*CrashPlan{
				{Victim: 1, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				{Victim: 2, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				{Victim: 3, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				// The sharded-specific hazard: the victim dies between
				// receiving the release and sending its per-owner bitmap
				// replies, wedging every owner's collection round at
				// got=n-1 and the reduction tree above them.
				{Victim: 2, Epoch: 1, Point: CrashInBitmapRound},
				{Victim: 1, Epoch: 0, Point: CrashInBitmapRound},
			}
			for _, plan := range plans {
				plan := plan
				t.Run(plan.Point.String()+"-victim", func(t *testing.T) {
					s := runSharded(t, plan)
					if got := stableRaceKeys(s.Races()); !reflect.DeepEqual(got, baseRaces) {
						t.Errorf("recovered sharded races = %v, want %v", got, baseRaces)
					}
					if rs := s.RecoveryStats(); rs.Recoveries == 0 {
						t.Error("crash plan armed but no recovery happened")
					}
				})
			}
		})
	}
}

// TestShardedWorkSpreadsAcrossProcs: the point of the tentpole — under the
// sharded check the comparison work must land on more than one process,
// and the per-proc counters must sum to the detector's global totals
// (so the telemetry split in internal/harness adds up).
func TestShardedWorkSpreadsAcrossProcs(t *testing.T) {
	run := func(sharded bool) *System {
		s, err := New(Config{
			NumProcs:     4,
			SharedSize:   16 * 1024,
			PageSize:     512,
			Protocol:     SingleWriter,
			Detect:       true,
			ShardedCheck: sharded,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Racy writes across many pages: a fat check list each epoch.
		base, _ := s.AllocWords("spread", 1024)
		err = s.Run(func(p *Proc) {
			for e := 0; e < 2; e++ {
				for w := 0; w < 64; w++ {
					p.Write(base+mem.Addr(((w*4+p.ID())*8)%(1024*8)), uint64(w))
				}
				p.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	for _, sharded := range []bool{false, true} {
		s := run(sharded)
		var sumEntries, sumBitmaps int64
		procsWithWork := 0
		for _, p := range s.Procs() {
			st := p.Stats()
			sumEntries += st.CheckEntriesCompared
			sumBitmaps += st.BitmapsCompared
			if st.CheckEntriesCompared > 0 {
				procsWithWork++
			}
		}
		det := s.DetectorStats()
		if sumBitmaps != int64(det.BitmapsCompared) {
			t.Errorf("sharded=%v: per-proc BitmapsCompared sums to %d, detector says %d",
				sharded, sumBitmaps, det.BitmapsCompared)
		}
		if sumEntries == 0 {
			t.Errorf("sharded=%v: no comparison work recorded at all", sharded)
		}
		if sharded && procsWithWork < 2 {
			t.Errorf("sharded check did all comparison work at %d proc(s); want it spread", procsWithWork)
		}
		if !sharded && procsWithWork != 1 {
			t.Errorf("serial check recorded comparison work at %d procs; want master only", procsWithWork)
		}
	}
}
