package dsm

import (
	"math"

	"lrcrace/internal/dsm/debuglog"
	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/vc"
)

// Read returns the shared word at a, faulting in the page if the local copy
// is invalid. When detection is on, the access is instrumented: the
// analysis routine is charged (procedure call + access check) and the read
// bit for the word is set in the current interval's bitmap.
func (p *Proc) Read(a mem.Addr) uint64 {
	p.mu.Lock()
	m := &p.sys.cfg.Model
	p.vnow += m.MemAccess
	p.st.SharedReads++
	if p.detect() {
		p.vnow += m.ProcCall + m.AccessCheck
		p.st.TProcCall += m.ProcCall
		p.st.TAccessCheck += m.AccessCheck
		p.builder.NoteRead(a)
	}
	pg := p.seg.Page(a)
	if p.state[pg] == pageInvalid {
		p.readFaultLocked(pg)
	}
	v := p.seg.Word(a)
	if dbgWatchOn && a == dbgWatch {
		dbgf("p%d READ  %v (interval %d, state=%d)", p.id, math.Float64frombits(v), p.curIndex, p.state[pg])
	}
	if tr := p.sys.cfg.Tracer; tr != nil {
		tr.Read(p.id, a)
	}
	if w := p.sys.cfg.Watch; w != nil && a == w.WatchedAddr() {
		w.NoteAccess(p.id, false)
	}
	doCrash := p.shouldCrashLocked(siteAccess)
	p.mu.Unlock()
	if doCrash {
		p.crashNow()
	}
	return v
}

// Write stores v to the shared word at a, obtaining write access first
// (ownership under single-writer; a twin under multi-writer). The first
// write to a page in each interval takes a protection fault, which is how
// the base DSM learns write notices without instrumentation.
func (p *Proc) Write(a mem.Addr, v uint64) {
	p.mu.Lock()
	m := &p.sys.cfg.Model
	p.vnow += m.MemAccess
	p.st.SharedWrites++
	if p.detect() {
		p.vnow += m.ProcCall + m.AccessCheck
		p.st.TProcCall += m.ProcCall
		p.st.TAccessCheck += m.AccessCheck
		if !p.sys.cfg.WritesFromDiffs {
			p.builder.NoteWrite(a)
		}
	}
	pg := p.seg.Page(a)
	switch p.sys.cfg.Protocol {
	case SingleWriter, EagerRC:
		if !p.owned[pg] {
			p.ownershipFaultLocked(pg)
		} else if !p.writtenPages[pg] {
			// Local protection fault: creates this interval's write notice.
			p.vnow += m.PageFault
			p.st.WriteFaults++
			p.tel.Emit(p.id, telemetry.KPageFault, p.vnow, int64(pg), 1, 0)
		}
		p.writtenPages[pg] = true
	case MultiWriter:
		if p.state[pg] == pageInvalid {
			p.fetchFromHomeLocked(pg, true)
		}
		if p.state[pg] == pageReadOnly {
			p.vnow += m.PageFault
			p.st.WriteFaults++
			p.tel.Emit(p.id, telemetry.KPageFault, p.vnow, int64(pg), 1, 0)
			if p.home(pg) != p.id || p.sys.cfg.WritesFromDiffs {
				twin := make([]byte, p.seg.PageSize)
				copy(twin, p.seg.PageBytes(pg))
				p.twins[pg] = twin
			}
			p.state[pg] = pageWritable
		}
		if !p.sys.cfg.WritesFromDiffs {
			p.writtenPages[pg] = true
		}
	}
	p.seg.SetWord(a, v)
	if dbgWatchOn && a == dbgWatch {
		dbgf("p%d WRITE %v (interval %d)", p.id, math.Float64frombits(v), p.curIndex)
	}
	if tr := p.sys.cfg.Tracer; tr != nil {
		tr.Write(p.id, a)
	}
	if w := p.sys.cfg.Watch; w != nil && a == w.WatchedAddr() {
		w.NoteAccess(p.id, true)
	}
	if p.sys.cfg.Protocol != MultiWriter && len(p.pendFwd[pg]) > 0 {
		p.drainPendingFwdsLocked(pg)
	}
	doCrash := p.shouldCrashLocked(siteAccess)
	p.mu.Unlock()
	if doCrash {
		p.crashNow()
	}
}

// ReadF64 reads the shared word at a as a float64.
func (p *Proc) ReadF64(a mem.Addr) float64 { return math.Float64frombits(p.Read(a)) }

// WriteF64 stores a float64 to the shared word at a.
func (p *Proc) WriteF64(a mem.Addr, v float64) { p.Write(a, math.Float64bits(v)) }

// ReadI64 reads the shared word at a as an int64.
func (p *Proc) ReadI64(a mem.Addr) int64 { return int64(p.Read(a)) }

// WriteI64 stores an int64 to the shared word at a.
func (p *Proc) WriteI64(a mem.Addr, v int64) { p.Write(a, uint64(v)) }

// Compute charges ops units of private computation to the virtual clock.
func (p *Proc) Compute(ops int64) {
	p.mu.Lock()
	p.vnow += ops * p.sys.cfg.Model.ComputeOp
	p.st.ComputeOps += ops
	p.mu.Unlock()
}

// PrivateAccess models n loads/stores that ATOM could not statically prove
// private, so they call the analysis routine at runtime only to fail the
// shared-segment bounds check. These dominate the dynamic instrumentation
// cost in the paper's applications ("the majority of run-time calls to our
// analysis routines are for private, not shared, data").
func (p *Proc) PrivateAccess(n int64) {
	p.mu.Lock()
	m := &p.sys.cfg.Model
	p.vnow += n * m.MemAccess
	p.st.PrivateAccesses += n
	if p.detect() {
		p.vnow += n * (m.ProcCall + m.AccessCheck)
		p.st.TProcCall += n * m.ProcCall
		p.st.TAccessCheck += n * m.AccessCheck
	}
	p.mu.Unlock()
}

// --- page faults ---

// readFaultLocked services a read fault: fetch a copy of pg. Under
// single-writer the request goes through the home directory to the current
// owner; under multi-writer the home's copy is always current.
func (p *Proc) readFaultLocked(pg mem.PageID) {
	if p.sys.cfg.Protocol == MultiWriter {
		p.fetchFromHomeLocked(pg, false)
		return
	}
	m := &p.sys.cfg.Model
	p.vnow += m.PageFault
	p.st.ReadFaults++
	p.tel.Emit(p.id, telemetry.KPageFault, p.vnow, int64(pg), 0, 0)
	p.fetching[pg] = true
	v := p.vnow
	p.mu.Unlock()
	p.send(p.home(pg), &msg.PageReq{Page: pg, Write: false}, v)
	d := p.waitReplyTimeout("page fetch")
	p.mu.Lock()
	rep, ok := d.Msg.(*msg.PageReply)
	if !ok || rep.Page != pg {
		p.protocolBug("read fault on page %d answered with %T", pg, d.Msg)
	}
	p.bumpVTo(p.arrival(d))
	p.seg.CopyPageIn(pg, rep.Data)
	p.tel.Emit(p.id, telemetry.KPageFetch, p.vnow, int64(pg), int64(d.From), p.vnow-v)
	dbgf("p%d read-fetched page %d from p%d word4=%d", p.id, pg, d.From, p.seg.Word(32))
	p.fetching[pg] = false
	if p.fetchInv[pg] {
		// Invalidated mid-fetch: serve this (legally stale) read, but do
		// not keep the copy.
		p.fetchInv[pg] = false
		p.state[pg] = pageInvalid
	} else {
		p.state[pg] = pageReadOnly
	}
}

// ownershipFaultLocked obtains single-writer ownership (and current
// contents) of pg via the home directory.
func (p *Proc) ownershipFaultLocked(pg mem.PageID) {
	m := &p.sys.cfg.Model
	p.vnow += m.PageFault
	p.st.WriteFaults++
	p.tel.Emit(p.id, telemetry.KPageFault, p.vnow, int64(pg), 1, 0)
	p.expecting[pg] = true
	v := p.vnow
	p.mu.Unlock()
	p.send(p.home(pg), &msg.PageReq{Page: pg, Write: true}, v)
	d := p.waitReplyTimeout("ownership fetch")
	p.mu.Lock()
	rep, ok := d.Msg.(*msg.PageReply)
	if !ok || rep.Page != pg || !rep.Ownership {
		p.protocolBug("ownership fault on page %d answered with %#v", pg, d.Msg)
	}
	p.bumpVTo(p.arrival(d))
	p.seg.CopyPageIn(pg, rep.Data)
	p.tel.Emit(p.id, telemetry.KPageFetch, p.vnow, int64(pg), int64(d.From), p.vnow-v)
	dbgf("p%d got ownership of page %d word4=%d", p.id, pg, p.seg.Word(32))
	p.owned[pg] = true
	p.expecting[pg] = false
	p.state[pg] = pageWritable
}

// fetchFromHomeLocked fetches the home copy of pg (multi-writer).
func (p *Proc) fetchFromHomeLocked(pg mem.PageID, write bool) {
	m := &p.sys.cfg.Model
	p.vnow += m.PageFault
	if write {
		p.st.WriteFaults++
	} else {
		p.st.ReadFaults++
	}
	wr := int64(0)
	if write {
		wr = 1
	}
	p.tel.Emit(p.id, telemetry.KPageFault, p.vnow, int64(pg), wr, 0)
	if p.home(pg) == p.id {
		p.protocolBug("home page %d invalid", pg)
	}
	p.fetching[pg] = true
	v := p.vnow
	p.mu.Unlock()
	p.send(p.home(pg), &msg.PageReq{Page: pg, Write: false}, v)
	d := p.waitReplyTimeout("home fetch")
	p.mu.Lock()
	rep, ok := d.Msg.(*msg.PageReply)
	if !ok || rep.Page != pg {
		p.protocolBug("home fetch of page %d answered with %T", pg, d.Msg)
	}
	p.bumpVTo(p.arrival(d))
	p.seg.CopyPageIn(pg, rep.Data)
	p.tel.Emit(p.id, telemetry.KPageFetch, p.vnow, int64(pg), int64(d.From), p.vnow-v)
	p.fetching[pg] = false
	if p.fetchInv[pg] {
		p.fetchInv[pg] = false
		p.state[pg] = pageInvalid
	} else {
		p.state[pg] = pageReadOnly
	}
}

// eagerReleaseLocked performs an ERC release: broadcast invalidations for
// every page written since the last release to all other processes and wait
// for their acknowledgments. This is the eager traffic — O(P) messages per
// release, paid whether or not anyone will ever read the data — that lazy
// release consistency defers and piggybacks instead.
func (p *Proc) eagerReleaseLocked() {
	if len(p.pendingInval) == 0 {
		return
	}
	pages := make([]mem.PageID, 0, len(p.pendingInval))
	for pg := range p.pendingInval {
		pages = append(pages, pg)
	}
	interval.SortPages(pages)
	p.pendingInval = make(map[mem.PageID]bool)
	v := p.vnow
	acks := 0
	for q := 0; q < p.n; q++ {
		if q == p.id {
			continue
		}
		p.send(q, &msg.Inval{Pages: pages}, v)
		acks++
	}
	for i := 0; i < acks; i++ {
		p.mu.Unlock()
		d := p.waitReplyTimeout("inval ack")
		p.mu.Lock()
		if _, ok := d.Msg.(*msg.InvalAck); !ok {
			p.protocolBug("inval answered with %T", d.Msg)
		}
		p.bumpVTo(p.arrival(d))
	}
}

// flushDiffsLocked computes and flushes the diffs of all twinned pages to
// their homes, waiting for acknowledgments, and write-protects written
// pages again so the next interval re-faults. Under WritesFromDiffs the
// diffs also provide the write bitmaps and write notices (§6.5): a word
// overwritten with its existing value produces no diff entry and therefore
// no notice — the paper's "slightly weaker correctness guarantee".
func (p *Proc) flushDiffsLocked() {
	if len(p.twins) == 0 && len(p.writtenPages) == 0 {
		return
	}
	acks := 0
	v := p.vnow
	for pg, twin := range p.twins {
		entries := diffPage(p.seg.PageBytes(pg), twin)
		if debuglog.Enabled() && len(entries) == 0 {
			dbgf("p%d EMPTY-DIFF page %d at interval %d (twinned but unchanged)", p.id, pg, p.curIndex)
		}
		p.st.DiffsFlushed++
		p.st.DiffWords += int64(len(entries))
		p.tel.Emit(p.id, telemetry.KDiffFlush, v, int64(pg), int64(len(entries)), 0)
		if p.sys.cfg.WritesFromDiffs && len(entries) > 0 {
			base := p.seg.PageBase(pg)
			for _, e := range entries {
				addr := base + mem.Addr(int(e.Word)*mem.WordSize)
				p.builder.NoteWrite(addr)
			}
			p.writtenPages[pg] = true
		}
		if p.home(pg) != p.id && len(entries) > 0 {
			p.send(p.home(pg), &msg.DiffFlush{Page: pg, Entries: entries}, v)
			acks++
		}
		delete(p.twins, pg)
		p.state[pg] = pageReadOnly
	}
	for pg := range p.writtenPages {
		if p.state[pg] == pageWritable {
			p.state[pg] = pageReadOnly
		}
	}
	for i := 0; i < acks; i++ {
		p.mu.Unlock()
		d := p.waitReplyTimeout("diff ack")
		p.mu.Lock()
		if _, ok := d.Msg.(*msg.DiffAck); !ok {
			p.protocolBug("diff flush answered with %T", d.Msg)
		}
		p.bumpVTo(p.arrival(d))
	}
}

// diffPage returns the words at which page and twin differ.
func diffPage(page, twin []byte) []msg.DiffEntry {
	var out []msg.DiffEntry
	for w := 0; w*mem.WordSize < len(page); w++ {
		off := w * mem.WordSize
		var a, b uint64
		for i := 0; i < mem.WordSize; i++ {
			a |= uint64(page[off+i]) << (8 * i)
			b |= uint64(twin[off+i]) << (8 * i)
		}
		if a != b {
			out = append(out, msg.DiffEntry{Word: uint32(w), Val: a})
		}
	}
	return out
}

// --- locks ---

// Lock acquires distributed lock id. The request goes to the lock's static
// manager (id mod N), which forwards it to the last holder; the grant
// returns directly from the holder, carrying the interval records the
// holder has seen but this process has not. Applying them invalidates
// pages named by their write notices — the lazy part of LRC.
func (p *Proc) Lock(id int) {
	p.mu.Lock()
	ls := p.lock(id)
	if ls.holding {
		p.protocolBug("recursive Lock(%d)", id)
	}
	ls.awaiting = true
	p.st.LockAcquires++
	p.tel.Emit(p.id, telemetry.KLockRequest, p.vnow, int64(id), 0, 0)
	req := &msg.AcquireReq{Lock: int32(id), VC: vcToWire(p.vcur)}
	v := p.vnow
	p.mu.Unlock()
	p.send(id%p.n, req, v)
	d := p.waitReplyTimeout("lock grant")
	p.mu.Lock()
	grant, ok := d.Msg.(*msg.AcquireGrant)
	if !ok || int(grant.Lock) != id {
		p.protocolBug("Lock(%d) answered with %#v", id, d.Msg)
	}
	if debuglog.Enabled() {
		ids := ""
		for _, r := range grant.Intervals {
			ids += r.ID.String() + " "
		}
		dbgf("p%d got lock %d from p%d with [%s]", p.id, id, d.From, ids)
	}
	p.bumpVTo(p.arrival(d))
	p.tel.Emit(p.id, telemetry.KLockAcquired, p.vnow, int64(id), int64(d.From), p.vnow-v)
	// An acquire begins a new interval.
	p.closeIntervalLocked()
	p.applyIntervalsLocked(grant.Intervals)
	p.startIntervalLocked()
	if tr := p.sys.cfg.Tracer; tr != nil {
		tr.Acquire(p.id, id)
	}
	ls.awaiting = false
	ls.holding = true
	// Receiving a grant means every forward targeting our previous tenure
	// has been served (the chain passed through them to reach us); any
	// leftover obligation was consumed by the manager's self-grant path.
	ls.releasedUngranted = false
	doCrash := p.shouldCrashLocked(siteLock)
	p.mu.Unlock()
	if doCrash {
		p.crashNow()
	}
}

// Unlock releases lock id: the critical section's interval is closed (and,
// under multi-writer, its diffs flushed) so that a grant to the next
// acquirer carries complete consistency information. If a forwarded
// request is already queued, the grant is sent immediately.
func (p *Proc) Unlock(id int) {
	p.mu.Lock()
	ls := p.lock(id)
	if !ls.holding {
		p.protocolBug("Unlock(%d) while not holding", id)
	}
	if tr := p.sys.cfg.Tracer; tr != nil {
		tr.Release(p.id, id)
	}
	p.tel.Emit(p.id, telemetry.KLockRelease, p.vnow, int64(id), 0, 0)
	// A release begins a new interval. Snapshot the release-time version
	// vector first: it caps what any grant for this tenure may carry.
	p.closeIntervalLocked()
	if p.sys.cfg.Protocol == EagerRC {
		// The ERC release may not complete (and the lock may not pass on)
		// until every process has applied the invalidations.
		p.eagerReleaseLocked()
	}
	ls.relVC = p.vcur.Copy()
	p.startIntervalLocked()
	ls.holding = false
	ls.lastRelV = p.vnow
	dbgf("p%d unlock %d (pending=%d)", p.id, id, len(ls.pending))
	if len(ls.pending) > 0 {
		if len(ls.pending) > 1 {
			p.protocolBug("lock %d has %d pending grants", id, len(ls.pending))
		}
		pg := ls.pending[0]
		ls.pending = nil
		v := p.vnow
		if pg.arrV > v {
			v = pg.arrV
		}
		p.grantLocked(id, pg.requester, pg.theirVC, ls.relVC, v)
	} else {
		ls.releasedUngranted = true
	}
	p.mu.Unlock()
}

// grantLocked sends an AcquireGrant for lock id to requester, with the
// interval delta computed against the requester's version vector, capped to
// the granter's knowledge at the time of the release being matched.
func (p *Proc) grantLocked(id, requester int, theirs, relVC vc.VC, vtime int64) {
	var delta []*interval.Record
	if p.sys.cfg.Protocol != EagerRC {
		// Under ERC nothing travels on acquires: invalidations already
		// went out eagerly at the release.
		delta = p.log.DeltaCapped(theirs, relVC)
	}
	p.tel.Emit(p.id, telemetry.KLockGrant, vtime, int64(id), int64(requester), int64(len(delta)))
	g := &msg.AcquireGrant{Lock: int32(id), Intervals: delta}
	bytes := p.send(requester, g, vtime)
	p.recordSyncSend(delta, bytes)
}

// --- barrier ---

// Barrier performs global synchronization through the barrier master
// (process 0) and, when detection is on, runs the race-detection pass:
// arrival messages carry the epoch's interval records (with read and write
// notices); the release carries everyone's records plus the check list; a
// second round returns word bitmaps for the check list; the master compares
// them and reports races with the final done message.
func (p *Proc) Barrier() {
	p.mu.Lock()
	p.st.Barriers++
	// Two interval structures per barrier, as in CVM: the computation
	// interval and the (empty) arrival interval.
	p.closeIntervalLocked()
	p.startIntervalLocked()
	p.closeIntervalLocked()
	if tr := p.sys.cfg.Tracer; tr != nil {
		tr.BarrierArrive(p.id, p.epoch)
	}

	if p.sys.cfg.Protocol == EagerRC {
		// Barrier arrival is a release: push the invalidations now; the
		// arrive message then carries no consistency information.
		p.eagerReleaseLocked()
	}
	arr := &msg.BarrierArrive{
		Epoch: p.epoch,
		VC:    vcToWire(p.vcur),
	}
	if p.sys.cfg.Protocol != EagerRC {
		arr.Intervals = p.epochRecords
	}
	recs := arr.Intervals
	p.epochRecords = nil
	lastClosed := p.curIndex
	v := p.vnow
	p.tel.Emit(p.id, telemetry.KBarrierArrive, v, int64(p.epoch), 0, 0)
	p.mu.Unlock()

	dest := 0
	var am msg.Message = arr
	if t := p.tree; t != nil {
		// Combining tree: the arrival goes to the tree parent; interior
		// nodes (and the root) self-address it so their own contribution
		// enters the reduction through the same service-thread path.
		am = &msg.TreeArrive{BarrierArrive: *arr}
		if t.expect > 0 {
			dest = p.id
		} else {
			dest = treeParent(p.id, t.arity)
		}
	}
	nbytes := p.send(dest, am, v)
	p.mu.Lock()
	p.recordSyncSend(recs, nbytes)
	p.mu.Unlock()

	d := p.waitReplyTimeout("barrier release")
	var rel *msg.BarrierRelease
	switch m := d.Msg.(type) {
	case *msg.BarrierRelease:
		rel = m
	case *msg.TreeRelease:
		rel = &m.BarrierRelease
	default:
		p.protocolBug("barrier arrive answered with %T", d.Msg)
	}

	p.mu.Lock()
	p.bumpVTo(p.arrival(d))
	if rel.Epoch != p.epoch {
		p.protocolBug("barrier release for epoch %d at epoch %d", rel.Epoch, p.epoch)
	}
	p.applyIntervalsLocked(rel.Intervals)
	gvc := vcFromWire(rel.GlobalVC)
	p.vcur.Merge(gvc)
	if tr := p.sys.cfg.Tracer; tr != nil {
		tr.BarrierDepart(p.id, rel.Epoch)
	}
	p.mu.Unlock()

	var races []race.Report
	if rel.NeedBitmaps {
		p.mu.Lock()
		doCrash := p.shouldCrashLocked(siteBitmap)
		p.mu.Unlock()
		if doCrash {
			// Die between receiving the release and sending our bitmap
			// reply, wedging the master mid-comparison.
			p.crashNow()
		}
		p.sendBitmaps(rel)
		dd := p.waitReplyTimeout("barrier bitmap round")
		done, ok := dd.Msg.(*msg.BarrierDone)
		if !ok {
			p.protocolBug("bitmap reply answered with %T", dd.Msg)
		}
		p.mu.Lock()
		p.bumpVTo(p.arrival(dd))
		p.mu.Unlock()
		races = done.Races
	}

	p.mu.Lock()
	p.races = append(p.races, races...)
	// The epoch has been checked for races: its trace information may now
	// be discarded, and interval records below the global horizon garbage
	// collected (every process has seen them).
	p.store.DiscardUpTo(p.id, lastClosed)
	p.log.PruneBefore(gvc)
	p.tel.Emit(p.id, telemetry.KBarrierDepart, p.vnow, int64(p.epoch), 0, p.vnow-v)
	p.epoch++
	p.startIntervalLocked()
	if p.sys.ckpts != nil {
		// The barrier departure is the recovery line: serialize this
		// process's recovery state as of the start of the new epoch, then
		// release the service thread, which has been holding back every
		// message ordered after the departure trigger so none of them can
		// contaminate the checkpoint (see awaitCheckpoint).
		p.checkpointLocked()
		p.ckptGate <- struct{}{}
	}
	p.mu.Unlock()
}

// Consolidate runs a global metadata consolidation (§6.3). In CVM this
// mechanism exists to garbage-collect consistency information in
// long-running, barrier-free programs; here, as there, it is realized as a
// global synchronization of the system's metadata — every process must call
// it, like a barrier — at which the race-detection pass also runs and
// interval logs and bitmaps are pruned. Note the precision tradeoff this
// implies: accesses before the consolidation become ordered with respect to
// accesses after it, so a race spanning the consolidation point is not
// reported (races within each consolidated batch are).
func (p *Proc) Consolidate() { p.Barrier() }

// sendBitmaps returns this process's bitmaps for every check-list entry
// naming one of its intervals — the second barrier round. Under the serial
// check everything goes to the master in one reply; under the sharded check
// (ShardOwner present on the release) each entry's bitmaps go to its shard
// owner, and every distinct owner receives exactly one — possibly empty —
// reply, so owners can close their collection round by count alone.
func (p *Proc) sendBitmaps(rel *msg.BarrierRelease) {
	p.mu.Lock()
	replies := make(map[int]*msg.BitmapReply)
	var order []int // owners in first-appearance order, for deterministic sends
	replyTo := func(to int) *msg.BitmapReply {
		r := replies[to]
		if r == nil {
			r = &msg.BitmapReply{Epoch: rel.Epoch}
			replies[to] = r
			order = append(order, to)
		}
		return r
	}
	if len(rel.ShardOwner) > 0 {
		for _, o := range rel.ShardOwner {
			replyTo(int(o))
		}
	} else {
		replyTo(0)
	}
	// A page has exactly one shard owner, so one global dedup map suffices
	// even with several replies in flight.
	seen := make(map[bmKey]bool)
	addSide := func(to int, id vc.IntervalID, page mem.PageID) {
		if id.Proc != p.id {
			return
		}
		k := bmKey{id, page, false}
		if seen[k] {
			return
		}
		seen[k] = true
		rd, wr := p.store.Get(id, page)
		if rd == nil && wr == nil {
			return
		}
		if rd != nil {
			p.st.BitmapsSent++
		}
		if wr != nil {
			p.st.BitmapsSent++
		}
		reply := replyTo(to)
		reply.Entries = append(reply.Entries, msg.BitmapEntry{
			Proc:  int32(id.Proc),
			Index: uint32(id.Index),
			Page:  page,
			Read:  rd,
			Write: wr,
		})
	}
	for i, c := range rel.Check {
		to := 0
		if len(rel.ShardOwner) > 0 {
			to = int(rel.ShardOwner[i])
		}
		addSide(to, c.A, c.Page)
		addSide(to, c.B, c.Page)
	}
	v := p.vnow
	p.mu.Unlock()
	for _, to := range order {
		p.send(to, replies[to], v)
	}
}
