package dsm

import (
	"sync"
	"testing"

	"lrcrace/internal/mem"
	"lrcrace/internal/telemetry"
)

// TestGlobalRecorderLastStartWins pins the documented hazard of the
// process-global recorder: a second Start replaces the first, so the
// first session's later events are silently stolen. This is why
// concurrent runs must use handle-scoped recorders (Config.Recorder)
// instead of the global installation.
func TestGlobalRecorderLastStartWins(t *testing.T) {
	defer telemetry.Stop()
	r1 := telemetry.Start(telemetry.Config{Procs: 2, Cap: -1})
	r2 := telemetry.Start(telemetry.Config{Procs: 2, Cap: -1})
	telemetry.Emit(0, telemetry.KBarrierArrive, 1, 0, 0, 0)
	if n := len(r1.Events()); n != 0 {
		t.Errorf("first recorder saw %d events after being replaced, want 0", n)
	}
	if n := len(r2.Events()); n != 1 {
		t.Errorf("second recorder saw %d events, want 1 (it stole the global slot)", n)
	}
}

// TestScopedRecorderIsolation runs four Systems concurrently, each bound
// to its own recorder via Config.Recorder, and asserts zero cross-talk:
// every recorder holds exactly its own run's events (counts differ per
// system so leakage cannot cancel out), its metrics registry agrees, and
// its sequence numbers are a contiguous private stream. Run under -race
// this also proves the scoped emit path is data-race-free.
func TestScopedRecorderIsolation(t *testing.T) {
	const (
		systems = 4
		procs   = 4
	)
	epochsOf := func(i int) int { return 2 + i } // 2,3,4,5: distinct per system

	recs := make([]*telemetry.Recorder, systems)
	errs := make([]error, systems)
	var wg sync.WaitGroup
	for i := 0; i < systems; i++ {
		recs[i] = telemetry.New(telemetry.Config{Procs: procs, Cap: -1})
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s, err := New(Config{
				NumProcs:   procs,
				SharedSize: 16 * 1024,
				PageSize:   1024,
				Protocol:   SingleWriter,
				Detect:     true,
				Recorder:   recs[i],
			})
			if err != nil {
				errs[i] = err
				return
			}
			base, err := s.AllocWords("words", 256)
			if err != nil {
				errs[i] = err
				return
			}
			errs[i] = s.Run(func(p *Proc) {
				for e := 0; e < epochsOf(i); e++ {
					// Each proc writes its own page: traffic without races.
					p.Write(base+mem.Addr(p.ID()*1024), uint64(e))
					p.Barrier()
				}
			})
		}(i)
	}
	wg.Wait()

	for i := 0; i < systems; i++ {
		if errs[i] != nil {
			t.Fatalf("system %d: %v", i, errs[i])
		}
		// One BarrierArrive per proc per epoch, plus Run's implicit final
		// barrier (the last detection pass).
		want := procs * (epochsOf(i) + 1)
		events := recs[i].Events()
		got := 0
		seqs := make(map[uint64]bool, len(events))
		for _, e := range events {
			if e.Kind == telemetry.KBarrierArrive {
				got++
			}
			if seqs[e.Seq] {
				t.Errorf("system %d: duplicate seq %d (rings shared between recorders?)", i, e.Seq)
			}
			seqs[e.Seq] = true
		}
		if got != want {
			t.Errorf("system %d: %d BarrierArrive events, want %d (cross-talk between concurrent recorders)", i, got, want)
		}
		// Seq is assigned per recorder starting at 1; a contiguous run
		// proves no foreign emitter bumped this recorder's counter.
		for s := uint64(1); s <= uint64(len(events)); s++ {
			if !seqs[s] {
				t.Errorf("system %d: seq %d missing from its own recorder", i, s)
				break
			}
		}
		snap := recs[i].Metrics().Snapshot()
		if c := snap.Counters[`telemetry_events_total{kind="BarrierArrive"}`]; c != int64(want) {
			t.Errorf("system %d: registry counted %d BarrierArrive, want %d", i, c, want)
		}
	}

	// The runs were scoped; nothing may have leaked to the global recorder.
	if telemetry.Active() != nil {
		t.Fatal("a scoped run installed a global recorder")
	}
}
