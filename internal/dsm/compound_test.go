package dsm

import (
	"errors"
	"fmt"
	"io"
	"reflect"
	"testing"
	"time"

	"lrcrace/internal/castore"
	"lrcrace/internal/reliable"
	"lrcrace/internal/telemetry"
)

// compoundSys is recoverySys generalized to compound faults: several crash
// plans and an optional checkpoint-corruption plan.
func compoundSys(t *testing.T, nproc int, proto ProtocolKind, crashes []*CrashPlan, corrupt *CorruptionPlan) *System {
	t.Helper()
	s, err := New(Config{
		NumProcs:         nproc,
		SharedSize:       16 * 1024,
		PageSize:         1024,
		Protocol:         proto,
		Detect:           true,
		Reliable:         true,
		CheckpointRetain: -1,
		ReliableConfig: reliable.Config{
			RTO:        2 * time.Millisecond,
			MaxRTO:     50 * time.Millisecond,
			MaxRetries: 8,
		},
		BarrierWallTimeout: 2 * time.Second,
		Crashes:            crashes,
		Corruption:         corrupt,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func (sc recoveryScenario) runCompound(t *testing.T, crashes []*CrashPlan, corrupt *CorruptionPlan) *System {
	t.Helper()
	s := compoundSys(t, 4, sc.proto, crashes, corrupt)
	factory := sc.setup(t, s)
	if err := s.RunEpochs(sc.epochs, factory); err != nil {
		t.Fatalf("%s (crashes=%v, corrupt=%+v): %v", sc.name, crashes, corrupt, err)
	}
	return s
}

// TestCompoundTwoVictimCrash: two distinct victims with crash plans in the
// same epoch. Depending on which death is detected first, the second plan
// may fire in the original attempt (one rollback covers both) or on the
// re-execution (a second rollback) — either way the run must converge and
// reproduce the crash-free race set.
func TestCompoundTwoVictimCrash(t *testing.T) {
	for _, sc := range []recoveryScenario{tspScenario(), mwScenario()} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseRaces := stableRaceKeys(sc.run(t, nil).Races())
			if len(baseRaces) == 0 {
				t.Fatal("crash-free run found no races; the test would prove nothing")
			}
			crashes := []*CrashPlan{
				{Victim: 1, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				{Victim: 3, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
			}
			s := sc.runCompound(t, crashes, nil)
			rs := s.RecoveryStats()
			if rs.Recoveries < 1 || rs.Recoveries > 2 {
				t.Errorf("recoveries = %d, want 1 or 2 (both victims may die in one attempt)", rs.Recoveries)
			}
			if !crashes[0].Fired() && !crashes[1].Fired() {
				t.Error("neither crash plan fired")
			}
			if got := stableRaceKeys(s.Races()); !reflect.DeepEqual(got, baseRaces) {
				t.Errorf("two-victim race set differs from crash-free run:\ncrash-free: %v\nrecovered:  %v",
					baseRaces, got)
			}
		})
	}
}

// TestCompoundCrashDuringRecovery: a second victim whose plan arms only
// after the first rollback — failure striking mid-heal. The run must
// perform exactly two rollbacks and still converge to the crash-free
// races.
func TestCompoundCrashDuringRecovery(t *testing.T) {
	for _, sc := range []recoveryScenario{tspScenario(), mwScenario()} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseRaces := stableRaceKeys(sc.run(t, nil).Races())
			crashes := []*CrashPlan{
				{Victim: 1, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				{Victim: 2, Epoch: 1, Point: CrashMidInterval, AfterN: 2, DuringRecovery: true},
			}
			s := sc.runCompound(t, crashes, nil)
			rs := s.RecoveryStats()
			if rs.Recoveries != 2 {
				t.Errorf("recoveries = %d, want 2 (initial crash + crash during recovery)", rs.Recoveries)
			}
			if !crashes[0].Fired() || !crashes[1].Fired() {
				t.Errorf("plans fired = %v/%v, want both", crashes[0].Fired(), crashes[1].Fired())
			}
			if got := stableRaceKeys(s.Races()); !reflect.DeepEqual(got, baseRaces) {
				t.Errorf("race set differs from crash-free run:\ncrash-free: %v\nrecovered:  %v",
					baseRaces, got)
			}
		})
	}
}

// TestCorruptCheckpointFallback: the corruption plan damages the crash
// epoch's chunk closure (every process deposits that line before the victim
// dies mid-epoch, so the damage always lands before rollback planning).
// The rollback must detect the broken closure — never restore from it —
// fall back to an older epoch (or a full restart), and still converge to
// the crash-free race set. Both damage modes, both protocols.
func TestCorruptCheckpointFallback(t *testing.T) {
	for _, sc := range []recoveryScenario{tspScenario(), mwScenario()} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseRaces := stableRaceKeys(sc.run(t, nil).Races())
			for _, mode := range []CorruptMode{CorruptChunk, DeleteChunk} {
				mode := mode
				t.Run(mode.String(), func(t *testing.T) {
					crash := &CrashPlan{Victim: 2, Epoch: 2, Point: CrashMidInterval, AfterN: 2}
					corrupt := &CorruptionPlan{Epoch: 2, Mode: mode, Count: 2, Seed: 7}
					s := sc.runCompound(t, []*CrashPlan{crash}, corrupt)
					if !crash.Fired() {
						t.Fatal("crash plan never fired")
					}
					if !corrupt.Fired() {
						t.Fatal("corruption plan never fired")
					}
					rs := s.RecoveryStats()
					if rs.Recoveries < 1 {
						t.Fatalf("no recovery performed (stats %+v)", rs)
					}
					if rs.VerifyFailures < 1 {
						t.Errorf("VerifyFailures = %d, want ≥ 1: the corrupted epoch must be rejected", rs.VerifyFailures)
					}
					if rs.LastEpoch >= corrupt.Epoch {
						t.Errorf("recovered from epoch %d, but epoch %d was corrupted", rs.LastEpoch, corrupt.Epoch)
					}
					if got := stableRaceKeys(s.Races()); !reflect.DeepEqual(got, baseRaces) {
						t.Errorf("race set differs from crash-free run:\ncrash-free: %v\nrecovered:  %v",
							baseRaces, got)
					}
				})
			}
		})
	}
}

// TestCorruptionTelemetry: the compound-fault path leaves a full audit
// trail — corruption-injected and verify-failure events, the CkptVerify
// trip, and the dsm_ckpt_* counters.
func TestCorruptionTelemetry(t *testing.T) {
	// The verify failure trips the flight recorder by design; keep the dump
	// out of the test log.
	rec := telemetry.Start(telemetry.Config{Procs: 4, Cap: -1, FlightSink: io.Discard})
	defer telemetry.Stop()

	sc := tspScenario()
	crash := &CrashPlan{Victim: 2, Epoch: 2, Point: CrashMidInterval, AfterN: 2}
	corrupt := &CorruptionPlan{Epoch: 2, Mode: CorruptChunk, Count: 1, Seed: 11}
	s := sc.runCompound(t, []*CrashPlan{crash}, corrupt)
	if rs := s.RecoveryStats(); rs.VerifyFailures < 1 {
		t.Fatalf("VerifyFailures = %d, want ≥ 1", rs.VerifyFailures)
	}

	seen := map[telemetry.Kind]int{}
	for _, e := range rec.Events() {
		seen[e.Kind]++
	}
	for _, k := range []telemetry.Kind{
		telemetry.KCkptChunk, telemetry.KCkptCorrupt, telemetry.KCkptVerifyFail,
	} {
		if seen[k] == 0 {
			t.Errorf("no %v event recorded", k)
		}
	}

	snap := rec.Metrics().Snapshot()
	for _, name := range []string{
		"dsm_ckpt_chunk_puts_total", "dsm_ckpt_chunk_hits_total",
		"dsm_ckpt_chunk_bytes_total", "dsm_ckpt_logical_bytes_total",
		"dsm_ckpt_verify_failures_total",
	} {
		if snap.Counters[name] <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, snap.Counters[name])
		}
	}
	if ratio := snap.Gauges["dsm_ckpt_dedup_ratio"]; ratio <= 0 || ratio > 1 {
		t.Errorf("dsm_ckpt_dedup_ratio = %v, want in (0, 1]", ratio)
	}
	if got := snap.Counters[`telemetry_trips_total{reason="CkptVerify"}`]; got <= 0 {
		t.Errorf("CkptVerify trips = %d, want > 0", got)
	}
}

// TestTamperedCheckpointRejected pins the acceptance bar for integrity:
// decoding a manifest whose chunk was tampered with (or deleted) fails
// with the typed ErrCheckpointChunk — the damaged state is never silently
// restored — while the untouched manifests still decode.
func TestTamperedCheckpointRejected(t *testing.T) {
	sc := mwScenario()
	s := sc.run(t, nil)

	blob := s.ckpts.Get(1, 2)
	if blob == nil {
		t.Fatal("no checkpoint for proc 1 epoch 2")
	}
	if _, err := decodeCheckpoint(blob, s.ckpts.Chunks()); err != nil {
		t.Fatalf("pristine checkpoint failed to decode: %v", err)
	}

	// Tamper with one chunk of proc 1's epoch-2 closure.
	addrs := s.ckpts.byProc[1][2].addrs
	if len(addrs) == 0 {
		t.Fatal("epoch-2 checkpoint references no chunks")
	}
	if !s.ckpts.Chunks().Tamper(addrs[0]) {
		t.Fatal("tamper failed")
	}
	_, err := decodeCheckpoint(blob, s.ckpts.Chunks())
	if !errors.Is(err, ErrCheckpointChunk) {
		t.Fatalf("tampered checkpoint decoded with err = %v, want ErrCheckpointChunk", err)
	}

	// Deleting the chunk is detected the same way.
	if !s.ckpts.Chunks().Delete(addrs[0]) {
		t.Fatal("delete failed")
	}
	if _, err := decodeCheckpoint(blob, s.ckpts.Chunks()); !errors.Is(err, ErrCheckpointChunk) {
		t.Fatalf("missing-chunk checkpoint decoded with err = %v, want ErrCheckpointChunk", err)
	}
}

// TestCheckpointDedup: consecutive epochs share unchanged pages through
// the chunk store, so stored bytes stay well under logical bytes and
// dedup hits accumulate.
func TestCheckpointDedup(t *testing.T) {
	for _, sc := range []recoveryScenario{tspScenario(), mwScenario()} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := sc.run(t, nil)
			cs := s.CheckpointStats()
			if cs.ChunkPuts <= 0 || cs.ChunkHits <= 0 {
				t.Fatalf("chunk stats = %+v, want puts and hits > 0", cs)
			}
			if cs.Bytes >= cs.LogicalBytes {
				t.Errorf("stored %d bytes ≥ logical %d: no dedup happened", cs.Bytes, cs.LogicalBytes)
			}
		})
	}
}

// TestCheckpointStoreGC exercises retention directly: with the default
// tail of 2, epochs superseded by the recovery line are retired, their
// manifest and chunk bytes released, and the before/after totals recorded.
func TestCheckpointStoreGC(t *testing.T) {
	cs := NewCheckpointStore()
	const nproc = 2
	manifest := func(e int32) []byte { return []byte{byte(e), byte(e), byte(e)} }
	deposit := func(proc int, e int32) {
		// Each epoch stores one shared chunk (dedups across procs) plus one
		// per-proc chunk, mimicking unchanged vs. changed pages.
		shared, _ := cs.Chunks().Put([]byte(fmt.Sprintf("shared-%d", e)))
		own, _ := cs.Chunks().Put([]byte(fmt.Sprintf("own-%d-%d", proc, e)))
		cs.Put(proc, e, manifest(e), []castore.Addr{shared, own})
	}
	for e := int32(1); e <= 5; e++ {
		for p := 0; p < nproc; p++ {
			deposit(p, e)
		}
	}
	if got := cs.LatestCommonEpoch(nproc); got != 5 {
		t.Fatalf("line = %d, want 5", got)
	}
	liveBefore := cs.Stats().LiveBytes
	removed, freed := cs.GC(nproc)
	// Cutoff is 5−2 = 3: epochs 1..3 retired for both procs.
	if removed != 6 {
		t.Errorf("GC removed %d manifests, want 6", removed)
	}
	if freed <= 0 {
		t.Errorf("GC freed %d bytes, want > 0", freed)
	}
	for e := int32(1); e <= 3; e++ {
		if cs.Get(0, e) != nil {
			t.Errorf("epoch %d survived GC", e)
		}
	}
	for e := int32(4); e <= 5; e++ {
		if cs.Get(0, e) == nil {
			t.Errorf("epoch %d in the retention tail was collected", e)
		}
	}
	st := cs.Stats()
	if st.GCRemoved != 6 || st.GCFreedBytes != freed {
		t.Errorf("GC stats = %+v, want GCRemoved=6 GCFreedBytes=%d", st, freed)
	}
	if st.GCLiveBytesBefore != liveBefore || st.GCLiveBytesAfter != liveBefore-freed {
		t.Errorf("GC live-bytes book-keeping = before %d after %d, want %d and %d",
			st.GCLiveBytesBefore, st.GCLiveBytesAfter, liveBefore, liveBefore-freed)
	}
	// A second sweep at the same line is a no-op.
	if r2, f2 := cs.GC(nproc); r2 != 0 || f2 != 0 {
		t.Errorf("idempotent GC removed %d/%d bytes", r2, f2)
	}
	// Unbounded retention disables GC entirely.
	cs.SetRetain(-1)
	for p := 0; p < nproc; p++ {
		deposit(p, 6)
		deposit(p, 7)
		deposit(p, 8)
	}
	if r3, _ := cs.GC(nproc); r3 != 0 {
		t.Errorf("GC with retain=-1 removed %d manifests", r3)
	}
}

// TestCheckpointGCEndToEnd: a real run with the default retention keeps
// only the tail and reports what it retired.
func TestCheckpointGCEndToEnd(t *testing.T) {
	sc := tspScenario()
	s, err := New(Config{
		NumProcs:   4,
		SharedSize: 16 * 1024,
		PageSize:   1024,
		Protocol:   sc.proto,
		Detect:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	factory := sc.setup(t, s)
	if err := s.RunEpochs(sc.epochs, factory); err != nil {
		t.Fatal(err)
	}
	// Line 3, default tail 2: epoch 1 collected, epochs 2..3 retained.
	for p := 0; p < 4; p++ {
		if s.ckpts.Get(p, 1) != nil {
			t.Errorf("proc %d epoch 1 survived retention GC", p)
		}
		for e := int32(2); e <= 3; e++ {
			if s.ckpts.Get(p, e) == nil {
				t.Errorf("proc %d epoch %d missing from the retention tail", p, e)
			}
		}
	}
	cs := s.CheckpointStats()
	if cs.GCRemoved != 4 {
		t.Errorf("GCRemoved = %d, want 4 (epoch 1 for every proc)", cs.GCRemoved)
	}
	if cs.GCFreedBytes <= 0 {
		t.Errorf("GC byte accounting = %+v, want freed > 0", cs)
	}
	if cs.LiveBytes >= cs.Bytes {
		t.Errorf("live %d ≥ cumulative %d: GC released nothing", cs.LiveBytes, cs.Bytes)
	}
	// Count is cumulative: GC retires resident state, not history.
	if want := 4 * int(sc.epochs); cs.Count != want {
		t.Errorf("Count = %d, want %d", cs.Count, want)
	}
}
