package dsm

import (
	"sync/atomic"
	"testing"
)

// TestMutualExclusionInvariant verifies at the Go level (independent of DSM
// memory) that the distributed lock admits one holder at a time, across
// many iterations and both protocols.
func TestMutualExclusionInvariant(t *testing.T) {
	bothProtocols(t, func(t *testing.T, proto ProtocolKind) {
		for iter := 0; iter < 8; iter++ {
			s := newSys(t, 4, proto, false)
			ctr, _ := s.AllocWords("ctr", 1)
			var holder int32 = -1
			var breaches int32
			err := s.Run(func(p *Proc) {
				for i := 0; i < 8; i++ {
					p.Lock(1)
					if !atomic.CompareAndSwapInt32(&holder, -1, int32(p.ID())) {
						atomic.AddInt32(&breaches, 1)
					}
					v := p.Read(ctr)
					p.Write(ctr, v+1)
					if !atomic.CompareAndSwapInt32(&holder, int32(p.ID()), -1) {
						atomic.AddInt32(&breaches, 1)
					}
					p.Unlock(1)
				}
			})
			if err != nil {
				t.Fatal(err)
			}
			if breaches != 0 {
				t.Fatalf("iter %d: %d mutual-exclusion breaches", iter, breaches)
			}
			pg := s.layout.Page(ctr)
			var got uint64
			if proto == SingleWriter {
				for _, q := range s.procs {
					if q.owned[pg] {
						got = q.seg.Word(ctr)
					}
				}
			} else {
				got = s.procs[int(pg)%4].seg.Word(ctr)
			}
			if got != 32 {
				t.Fatalf("iter %d: ctr = %d, want 32 (exclusion held, so this is a staleness bug)", iter, got)
			}
		}
	})
}
