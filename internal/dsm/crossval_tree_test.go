package dsm

import (
	"math/rand"
	"reflect"
	"testing"
	"time"

	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/reliable"
	"lrcrace/internal/replay"
)

// Cross-validation of the combining-tree barrier (Config.BarrierTree)
// against the flat barrier, which stays in the tree as the oracle: the
// distributed check-list build partitions interval pairs across interior
// nodes (each cross-process pair compared at exactly one node, the LCA of
// its contributions), so on the same program both topologies must report
// the same races AND leave the detector in byte-identical persistent state.

// newTreeSys mirrors newSys with a combining tree of the given arity.
func newTreeSys(t *testing.T, nproc int, proto ProtocolKind, arity int) *System {
	t.Helper()
	s, err := New(Config{
		NumProcs:    nproc,
		SharedSize:  16 * 1024,
		PageSize:    1024,
		Protocol:    proto,
		Detect:      true,
		BarrierTree: arity,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestBarrierTreeConfigValidation: arity 1 is a degenerate chain and
// negative arities are nonsense; both must be rejected at New.
func TestBarrierTreeConfigValidation(t *testing.T) {
	for _, k := range []int{1, -1, -7} {
		if _, err := New(Config{NumProcs: 2, SharedSize: 4096, BarrierTree: k}); err == nil {
			t.Errorf("BarrierTree=%d accepted; want arity ≥ 2 or 0", k)
		}
	}
	if _, err := New(Config{NumProcs: 2, SharedSize: 4096, BarrierTree: 2}); err != nil {
		t.Errorf("BarrierTree=2 rejected: %v", err)
	}
}

// TestTreeTopologyHelpers pins the shape functions the protocol and the
// blame logic both lean on: parent/children are mutually consistent and
// treeSubtree covers every proc exactly once across the root's children
// plus the root itself.
func TestTreeTopologyHelpers(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		for n := 2; n <= 17; n++ {
			for p := 0; p < n; p++ {
				for _, c := range treeChildren(p, k, n) {
					if got := treeParent(c, k); got != p {
						t.Fatalf("k=%d n=%d: parent(child %d of %d) = %d", k, n, c, p, got)
					}
				}
			}
			seen := make([]bool, n)
			for _, q := range treeSubtree(0, k, n) {
				if seen[q] {
					t.Fatalf("k=%d n=%d: %d appears twice in root subtree", k, n, q)
				}
				seen[q] = true
			}
			for q, ok := range seen {
				if !ok {
					t.Fatalf("k=%d n=%d: proc %d missing from root subtree", k, n, q)
				}
			}
		}
	}
}

// TestTreePaperScenariosMatchSerial runs the channel-gated (fully
// deterministic) paper scenarios under flat and tree barriers and demands
// exact equality: the report lists element-wise and the full detector
// state snapshot.
func TestTreePaperScenariosMatchSerial(t *testing.T) {
	type outcome struct {
		races []race.Report
		det   race.State
	}
	capture := func(s *System, run func(*System) []race.Report) outcome {
		run(s)
		return outcome{races: s.Races(), det: s.DetectorState()}
	}
	check := func(t *testing.T, flat, tree outcome) {
		t.Helper()
		if !reflect.DeepEqual(flat.races, tree.races) {
			t.Errorf("race reports differ:\nflat: %v\ntree: %v", flat.races, tree.races)
		}
		if !reflect.DeepEqual(flat.det, tree.det) {
			t.Errorf("detector state differs:\nflat: %+v\ntree: %+v", flat.det, tree.det)
		}
		if len(flat.races) == 0 {
			t.Error("scenario found no races; the comparison proves nothing")
		}
	}

	for _, arity := range []int{2, 3} {
		for _, tc := range []struct {
			name                   string
			p1SecondWrite, p2Write int
		}{
			{"figure2-same-word", 8, 8},
			{"figure2-false-sharing-plus-race", 0, 0},
		} {
			t.Run(tc.name, func(t *testing.T) {
				flat := capture(newSys(t, 2, SingleWriter, true), func(s *System) []race.Report {
					return runFigure2(t, s, tc.p1SecondWrite, tc.p2Write)
				})
				tree := capture(newTreeSys(t, 2, SingleWriter, arity), func(s *System) []race.Report {
					return runFigure2(t, s, tc.p1SecondWrite, tc.p2Write)
				})
				check(t, flat, tree)
			})
		}

		t.Run("figure5-queue", func(t *testing.T) {
			flat := capture(newSys(t, 3, SingleWriter, true), func(s *System) []race.Report {
				return runFigure5(t, s)
			})
			tree := capture(newTreeSys(t, 3, SingleWriter, arity), func(s *System) []race.Report {
				return runFigure5(t, s)
			})
			check(t, flat, tree)
		})
	}
}

// TestTreeRandomizedMatchesSerial replays randomized fixed-schedule
// workloads under the flat barrier (recording the lock-grant order), then
// under the combining tree and under tree+sharded with a sync Enforcer
// replaying that order — making the executions equivalent and the
// comparison exact: identical report lists and identical detector state.
// Proc counts reach 9 so arity-2 trees are three hops deep (interior
// nodes that are themselves children of interior nodes).
func TestTreeRandomizedMatchesSerial(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		for _, proto := range []ProtocolKind{SingleWriter, MultiWriter} {
			for _, arity := range []int{2, 3, 4} {
				r := rand.New(rand.NewSource(seed*100 + int64(arity)))
				nproc := 2 + r.Intn(8) // up to 9: depth-3 arity-2 trees
				nepoch := 1 + r.Intn(3)
				nwords := 24

				type op struct {
					word  int
					write bool
					lock  int
				}
				sched := make([][][]op, nepoch)
				for e := range sched {
					sched[e] = make([][]op, nproc)
					for p := range sched[e] {
						nops := r.Intn(5)
						for k := 0; k < nops; k++ {
							sched[e][p] = append(sched[e][p], op{
								word:  r.Intn(nwords),
								write: r.Intn(2) == 0,
								lock:  r.Intn(3) - 1,
							})
						}
					}
				}

				type outcome struct {
					races []race.Report
					det   race.State
				}
				runOne := func(tree, sharded bool, rec SyncRecorder, enf SyncEnforcer) outcome {
					k := 0
					if tree {
						k = arity
					}
					s, err := New(Config{
						NumProcs:     nproc,
						SharedSize:   4 * 1024,
						PageSize:     512,
						Protocol:     proto,
						Detect:       true,
						BarrierTree:  k,
						ShardedCheck: sharded,
						SyncRecorder: rec,
						SyncEnforcer: enf,
					})
					if err != nil {
						t.Fatal(err)
					}
					base, _ := s.AllocWords("words", nwords)
					err = s.Run(func(p *Proc) {
						for e := 0; e < nepoch; e++ {
							for _, o := range sched[e][p.ID()] {
								a := base + mem.Addr(o.word*8)
								if o.lock >= 0 {
									p.Lock(o.lock)
								}
								if o.write {
									p.Write(a, uint64(o.word))
								} else {
									p.Read(a)
								}
								if o.lock >= 0 {
									p.Unlock(o.lock)
								}
							}
							p.Barrier()
						}
					})
					if err != nil {
						t.Fatal(err)
					}
					return outcome{races: s.Races(), det: s.DetectorState()}
				}

				rec := replay.NewSyncRecord()
				flat := runOne(false, false, rec, nil)
				for _, mode := range []struct {
					name    string
					sharded bool
				}{{"tree", false}, {"tree+sharded", true}} {
					got := runOne(true, mode.sharded, nil, replay.NewEnforcer(rec))
					if !reflect.DeepEqual(flat.races, got.races) {
						t.Fatalf("seed %d proto %v arity %d nproc %d %s: reports differ:\nflat: %v\ngot:  %v",
							seed, proto, arity, nproc, mode.name, flat.races, got.races)
					}
					if !reflect.DeepEqual(flat.det, got.det) {
						t.Fatalf("seed %d proto %v arity %d nproc %d %s: detector state differs:\nflat: %+v\ngot:  %+v",
							seed, proto, arity, nproc, mode.name, flat.det, got.det)
					}
				}
			}
		}
	}
}

// treeRecoverySys is recoverySys with an arity-2 combining tree: at
// n=4 the topology is 0→{1,2}, 1→{3}, giving the crash grid both an
// interior node (p1, mid-reduction state of its own) and a grandchild
// leaf (p3, two hops from the root) to kill.
func treeRecoverySys(t *testing.T, nproc int, proto ProtocolKind, crash *CrashPlan) *System {
	t.Helper()
	s, err := New(Config{
		NumProcs:    nproc,
		SharedSize:  16 * 1024,
		PageSize:    1024,
		Protocol:    proto,
		Detect:      true,
		BarrierTree: 2,
		Reliable:    true,
		ReliableConfig: reliable.Config{
			RTO:        2 * time.Millisecond,
			MaxRTO:     50 * time.Millisecond,
			MaxRetries: 8,
		},
		BarrierWallTimeout: 2 * time.Second,
		Crash:              crash,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestTreeCrashGridMatchesSerial kills each worker in turn under the
// arity-2 tree — including the interior node p1, whose death wedges its
// parent's reduction while its own child p3 sits arrived-but-unreleased —
// and demands that suspect naming converge on exactly the true victim
// (no survivor blamed for being wedged behind a deeper victim) and that
// the recovered run reproduce the crash-free serial baseline's races.
func TestTreeCrashGridMatchesSerial(t *testing.T) {
	for _, sc := range []recoveryScenario{tspScenario(), mwScenario()} {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			baseRaces := stableRaceKeys(sc.run(t, nil).Races()) // flat, crash-free
			if len(baseRaces) == 0 {
				t.Fatalf("crash-free %s run found no races; the grid would prove nothing", sc.name)
			}

			runTree := func(t *testing.T, crash *CrashPlan) *System {
				t.Helper()
				s := treeRecoverySys(t, 4, sc.proto, crash)
				factory := sc.setup(t, s)
				if err := s.RunEpochs(sc.epochs, factory); err != nil {
					t.Fatalf("%s (crash=%+v): %v", sc.name, crash, err)
				}
				return s
			}

			t.Run("crash-free", func(t *testing.T) {
				s := runTree(t, nil)
				if got := stableRaceKeys(s.Races()); !reflect.DeepEqual(got, baseRaces) {
					t.Errorf("tree crash-free races = %v, want %v", got, baseRaces)
				}
				if rs := s.RecoveryStats(); rs.Recoveries != 0 {
					t.Errorf("crash-free tree run performed %d recoveries", rs.Recoveries)
				}
			})

			plans := []*CrashPlan{
				// p1 is the interior node: its parent 0 misses the reduce,
				// its child 3 is arrived but never released.
				{Victim: 1, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				// p2 is the root's other direct child.
				{Victim: 2, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				// p3 is the grandchild leaf: the root sees p1 as the missing
				// contributor, and only p1's own verdict names the truth —
				// the multi-hop blame case.
				{Victim: 3, Epoch: 1, Point: CrashMidInterval, AfterN: 2},
				// Death between the release cascade and the bitmap replies.
				{Victim: 2, Epoch: 1, Point: CrashInBitmapRound},
				// Epoch 0: no checkpoint yet, full restart under the tree.
				{Victim: 3, Epoch: 0, Point: CrashMidInterval, AfterN: 1},
			}
			for _, plan := range plans {
				plan := plan
				t.Run(plan.Point.String()+"-victim", func(t *testing.T) {
					s := runTree(t, plan)
					if got := stableRaceKeys(s.Races()); !reflect.DeepEqual(got, baseRaces) {
						t.Errorf("recovered tree races = %v, want %v", got, baseRaces)
					}
					rs := s.RecoveryStats()
					if rs.Recoveries == 0 {
						t.Error("crash plan armed but no recovery happened")
					}
					if rs.LastVictim != plan.Victim {
						t.Errorf("recovery blamed p%d, victim was p%d (via %s)",
							rs.LastVictim, plan.Victim, rs.LastReason)
					}
				})
			}
		})
	}
}

// TestTreeWorkSpreadsAcrossProcs: the point of the distributed build —
// under the tree the check-list construction work (TIntervalCmp) must
// land on more than one process, while under the flat barrier it stays
// entirely at the master.
func TestTreeWorkSpreadsAcrossProcs(t *testing.T) {
	run := func(arity int) *System {
		s, err := New(Config{
			NumProcs:    4,
			SharedSize:  16 * 1024,
			PageSize:    512,
			Protocol:    SingleWriter,
			Detect:      true,
			BarrierTree: arity,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Racy writes across many pages: fat per-subtree check lists.
		base, _ := s.AllocWords("spread", 1024)
		err = s.Run(func(p *Proc) {
			for e := 0; e < 2; e++ {
				for w := 0; w < 64; w++ {
					p.Write(base+mem.Addr(((w*4+p.ID())*8)%(1024*8)), uint64(w))
				}
				p.Barrier()
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	for _, arity := range []int{0, 2} {
		s := run(arity)
		var total int64
		procsWithWork := 0
		for _, p := range s.Procs() {
			st := p.Stats()
			total += st.TIntervalCmp
			if st.TIntervalCmp > 0 {
				procsWithWork++
			}
		}
		if total == 0 {
			t.Errorf("arity=%d: no interval-comparison work recorded at all", arity)
		}
		if arity >= 2 && procsWithWork < 2 {
			t.Errorf("tree build did all comparison work at %d proc(s); want it spread", procsWithWork)
		}
		if arity == 0 && procsWithWork != 1 {
			t.Errorf("flat build recorded comparison work at %d procs; want master only", procsWithWork)
		}
	}
}

// TestTreeBlameNamesDeepVictim pins the two-hop blame unit: with p3 dead,
// barrierBlame at the interior node p1 must name p3 directly (got>0,
// missing exactly its own child), while the root — wedged missing p1's
// reduce — must NOT survive as the final verdict once p1 has proven
// itself alive by accusing. Covered end-to-end by the crash grid above;
// this test pins the per-node half so a blame regression fails with a
// readable message.
func TestTreeBlameNamesDeepVictim(t *testing.T) {
	s, err := New(Config{
		NumProcs:    4,
		SharedSize:  4 * 1024,
		PageSize:    1024,
		Detect:      true,
		BarrierTree: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Procs exist only once a program runs; a trivial one will do.
	if err := s.Run(func(p *Proc) { p.Barrier() }); err != nil {
		t.Fatal(err)
	}
	// Simulate the wedge by hand: p1 holds its own arrival but not p3's.
	p1 := s.Procs()[1]
	p1.mu.Lock()
	p1.tree.got = 1
	p1.tree.from[1] = true
	p1.mu.Unlock()
	suspect, detail := p1.barrierBlame("barrier release")
	if suspect != 3 {
		t.Errorf("interior blame = p%d, want p3 (detail %q)", suspect, detail)
	}

	// Root missing the whole left subtree cannot name one victim (both 1
	// and 3 are uncovered) but must say which procs never contributed.
	p0 := s.Procs()[0]
	p0.mu.Lock()
	p0.tree.got = 2
	p0.tree.from[0] = true
	p0.tree.from[2] = true
	p0.mu.Unlock()
	suspect, detail = p0.barrierBlame("barrier release")
	if suspect != 1 {
		t.Errorf("root blame = p%d, want its missing direct child p1", suspect)
	}
	if detail == "" {
		t.Error("root blame detail empty; want the uncovered procs listed")
	}

	// Verdict reconciliation: whichever order the two accusations land,
	// the surviving suspect is the deep victim p3.
	for _, order := range [][2][2]int{
		{{0, 1}, {1, 3}}, // root first, then interior
		{{1, 3}, {0, 1}}, // interior first, then root
	} {
		s.resetSuspectLocked()
		for _, acc := range order {
			s.noteTimeoutVerdict(acc[0], acc[1])
		}
		s.recMu.Lock()
		got := s.suspect
		s.recMu.Unlock()
		if got != 3 {
			t.Errorf("order %v: converged on p%d, want p3", order, got)
		}
	}
}
