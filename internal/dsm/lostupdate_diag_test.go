package dsm

import (
	"fmt"
	"sync"
	"testing"

	"lrcrace/internal/mem"
)

// TestLostUpdateDiagnosis reproduces the rare lost-update failure with a
// value trace: every critical section logs the value it read and wrote, in
// global order. A lost update shows as two sections reading the same value.
func TestLostUpdateDiagnosis(t *testing.T) {
	for iter := 0; iter < 300; iter++ {
		EnableDebugLog()
		s := newSys(t, 4, SingleWriter, false)
		slots, _ := s.AllocWords("slots", 4)
		sum, _ := s.AllocWords("sum", 1)
		var mu sync.Mutex
		var trace []string
		err := s.Run(func(p *Proc) {
			for round := 0; round < 8; round++ {
				p.Lock(0)
				p.Write(slots+mem.Addr(p.ID()*8), uint64((round+1)*100+p.ID()))
				v := p.Read(sum)
				p.Write(sum, v+1)
				dbgf("p%d CS r%d: read %d wrote %d", p.ID(), round, v, v+1)
				mu.Lock()
				trace = append(trace, fmt.Sprintf("p%d r%d: %d -> %d", p.ID(), round, v, v+1))
				mu.Unlock()
				p.Unlock(0)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		pg := s.layout.Page(sum)
		var got uint64
		for _, q := range s.procs {
			if q.owned[pg] {
				got = q.seg.Word(sum)
			}
		}
		if got != 32 {
			for _, l := range DebugEvents() {
				t.Log(l)
			}
			t.Fatalf("iter %d: sum = %d, want 32", iter, got)
		}
		DisableDebugLog()
	}
}
