package dsm

import (
	"fmt"
	"sync/atomic"

	"lrcrace/internal/telemetry"
)

// CrashPoint selects where in the protocol a CrashPlan kills its victim.
type CrashPoint int

const (
	// CrashMidInterval (the default) kills the victim after its AfterN-th
	// shared access of epoch CrashPlan.Epoch — mid-interval, with an open
	// interval and unflushed access bitmaps.
	CrashMidInterval CrashPoint = iota
	// CrashAtVTime kills the victim at its first shared access once its
	// virtual clock reaches CrashPlan.VTime.
	CrashAtVTime
	// CrashHoldingLock kills the victim immediately after it acquires its
	// AfterN-th lock of epoch CrashPlan.Epoch — while holding the lock, so
	// recovery must let the manager reclaim the dead holder's tenure.
	CrashHoldingLock
	// CrashInBitmapRound kills the victim inside the barrier's extra
	// detection round of epoch CrashPlan.Epoch: after it has received the
	// barrier release (with NeedBitmaps set) but before it sends its
	// BitmapReply, wedging the master mid-comparison.
	CrashInBitmapRound
)

func (c CrashPoint) String() string {
	switch c {
	case CrashAtVTime:
		return "at-vtime"
	case CrashMidInterval:
		return "mid-interval"
	case CrashHoldingLock:
		return "holding-lock"
	case CrashInBitmapRound:
		return "in-bitmap-round"
	default:
		return fmt.Sprintf("CrashPoint(%d)", int(c))
	}
}

// CrashPlan schedules the crash of one process, deterministically — the
// process-death analogue of simnet.FaultPlan's wire faults. Each plan
// fires at most once per System: after a coordinated rollback the
// re-executed epoch runs free of that plan's crash, exactly like a machine
// that is rebooted once. A system can carry several plans
// (Config.Crashes) for compound faults: two victims in the same epoch, or
// a second crash arming only once recovery has begun (DuringRecovery).
//
// The victim dies abruptly: its network endpoint is killed (queued traffic
// discarded, later sends dropped on the floor) and its application thread
// stops. Nothing is announced — survivors must detect the death through
// reliable-link retry-cap exhaustion or the barrier wall timeout, as on
// real hardware.
type CrashPlan struct {
	// Victim is the process to kill, in [1, NumProcs). Process 0 (the
	// barrier master and detector host) cannot be a victim: the recovery
	// protocol is coordinated by the master's successor checkpoint, and
	// master fail-over is out of scope.
	Victim int
	// Epoch is the barrier epoch during which the protocol-point crashes
	// (CrashMidInterval, CrashHoldingLock, CrashInBitmapRound) fire.
	// Ignored by CrashAtVTime.
	Epoch int32
	// Point is where the victim dies.
	Point CrashPoint
	// VTime is the virtual-time trigger for CrashAtVTime.
	VTime int64
	// AfterN counts trigger sites within the epoch for CrashMidInterval
	// (shared accesses) and CrashHoldingLock (lock acquisitions); 0 → 1.
	// Plans targeting the same victim share the per-process site counters.
	AfterN int
	// DuringRecovery arms the plan only on re-execution attempts, after at
	// least one coordinated rollback has happened — a second failure
	// striking while the system is still healing from the first.
	DuringRecovery bool

	fired atomic.Bool
}

// Validate checks the plan against a system of n processes.
func (c *CrashPlan) Validate(n int) error {
	if c.Victim < 1 || c.Victim >= n {
		return fmt.Errorf("crash plan: victim %d out of range [1, %d)", c.Victim, n)
	}
	switch c.Point {
	case CrashAtVTime:
		if c.VTime <= 0 {
			return fmt.Errorf("crash plan: %v requires VTime > 0", c.Point)
		}
	case CrashMidInterval, CrashHoldingLock, CrashInBitmapRound:
		if c.Epoch < 0 {
			return fmt.Errorf("crash plan: Epoch = %d", c.Epoch)
		}
	default:
		return fmt.Errorf("crash plan: unknown point %d", int(c.Point))
	}
	if c.AfterN < 0 {
		return fmt.Errorf("crash plan: AfterN = %d", c.AfterN)
	}
	return nil
}

// Fired reports whether the plan's crash has been injected.
func (c *CrashPlan) Fired() bool { return c.fired.Load() }

func (c *CrashPlan) afterN() int {
	if c.AfterN <= 0 {
		return 1
	}
	return c.AfterN
}

// RandomCrashPlan derives a crash plan deterministically from seed for a
// run of n processes and the given epoch count: a seed-driven victim,
// epoch, and mid-interval trigger offset (the one crash point every
// workload exposes). The same seed always produces the same plan.
func RandomCrashPlan(seed uint64, n int, epochs int32) *CrashPlan {
	if n < 2 || epochs < 1 {
		return nil
	}
	next := splitmix64(seed)
	return &CrashPlan{
		Victim: 1 + int(next()%uint64(n-1)),
		Epoch:  int32(next() % uint64(epochs)),
		Point:  CrashMidInterval,
		AfterN: 1 + int(next()%4),
	}
}

// splitmix64 returns a deterministic PRNG seeded with seed — the same
// generator simnet's fault plan seeds with, shared by every seed-driven
// plan derivation in this package.
func splitmix64(seed uint64) func() uint64 {
	s := seed
	return func() uint64 {
		s += 0x9e3779b97f4a7c15
		z := s
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		return z
	}
}

// crashSite labels the instrumentation sites that consult the plan.
type crashSite int

const (
	siteAccess crashSite = iota
	siteLock
	siteBitmap
)

// crashPanic is the typed panic a victim's application thread dies with.
// The run loop recognizes it and — unlike every other panic — does NOT
// shut the network down: the survivors must notice the silence themselves.
type crashPanic struct {
	proc  int
	point CrashPoint
}

func (c crashPanic) String() string {
	return fmt.Sprintf("proc %d crashed (injected, %v)", c.proc, c.point)
}

// endpointKiller is the optional transport capability crash injection
// needs; simnet.Network and reliable.Transport both provide it.
type endpointKiller interface {
	KillEndpoint(proc int)
}

// shouldCrashLocked consults every armed crash plan at one
// instrumentation site. Must be called with p.mu held; the caller must
// release p.mu before acting on a true return (crashNow panics, and a
// panic holding p.mu would wedge the service thread). The per-process
// site counters advance once per visit, shared by all plans targeting
// this victim; the firing plan is recorded on the process for crashNow.
func (p *Proc) shouldCrashLocked(site crashSite) bool {
	var countedAccess, countedLock bool
	for _, cp := range p.sys.crashes {
		if cp.Victim != p.id || cp.fired.Load() {
			continue
		}
		if cp.DuringRecovery && p.sys.recStats.Recoveries == 0 {
			continue
		}
		switch cp.Point {
		case CrashAtVTime:
			if site != siteAccess || p.vnow < cp.VTime {
				continue
			}
		case CrashMidInterval:
			if site != siteAccess || p.epoch != cp.Epoch {
				continue
			}
			if !countedAccess {
				countedAccess = true
				p.crashAccesses++
			}
			if p.crashAccesses < cp.afterN() {
				continue
			}
		case CrashHoldingLock:
			if site != siteLock || p.epoch != cp.Epoch {
				continue
			}
			if !countedLock {
				countedLock = true
				p.crashLocks++
			}
			if p.crashLocks < cp.afterN() {
				continue
			}
		case CrashInBitmapRound:
			if site != siteBitmap || p.epoch != cp.Epoch {
				continue
			}
		default:
			continue
		}
		if cp.fired.CompareAndSwap(false, true) {
			p.firedCrash = cp
			return true
		}
	}
	return false
}

// crashNow kills this process: its transport endpoint dies (discarding
// queued traffic; the service loop exits when its Recv returns false) and
// the application thread unwinds with a crashPanic. Called without p.mu.
func (p *Proc) crashNow() {
	p.mu.Lock()
	v := p.vnow
	pt := CrashMidInterval
	if p.firedCrash != nil {
		pt = p.firedCrash.Point
	}
	p.mu.Unlock()
	p.tel.Emit(p.id, telemetry.KCrashInjected, v, int64(pt), int64(p.id), 0)
	dbgf("p%d CRASH injected (%v, vt=%d)", p.id, pt, v)
	if k, ok := p.sys.nw.(endpointKiller); ok {
		k.KillEndpoint(p.id)
	}
	panic(crashPanic{proc: p.id, point: pt})
}
