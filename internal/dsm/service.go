package dsm

import (
	"time"

	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/vc"
)

// serviceLoop is the protocol service thread of a process: it handles
// incoming requests (lock management and forwarding, page directory and
// ownership, diff application, and — at process 0 — the barrier master) and
// routes responses to the blocked application thread. This plays the role
// of CVM's request handlers that the underlying system invokes around page
// faults, synchronization and I/O.
func (p *Proc) serviceLoop() {
	for {
		d, ok := p.sys.nw.Recv(p.id)
		if !ok {
			close(p.replyCh)
			return
		}
		if delay := p.sys.cfg.RealMsgDelay; delay > 0 {
			time.Sleep(delay)
		}
		switch m := d.Msg.(type) {
		case *msg.AcquireReq:
			p.handleAcquireReq(d, m)
		case *msg.AcquireFwd:
			p.handleAcquireFwd(d, m)
		case *msg.PageReq:
			p.handlePageReq(d, m)
		case *msg.PageFwd:
			p.handlePageFwd(d, m)
		case *msg.DiffFlush:
			p.handleDiffFlush(d, m)
		case *msg.Inval:
			p.handleInval(d, m)
		case *msg.BarrierArrive:
			p.handleBarrierArrive(d, m)
		case *msg.BitmapReply:
			if p.sys.cfg.ShardedCheck {
				p.handleShardBitmap(d, m)
			} else {
				p.handleBitmapReply(d, m)
			}
		case *msg.ShardResult:
			p.handleShardResult(d, m)
		case *msg.TreeArrive:
			p.handleTreeArrive(d, m)
		case *msg.TreeReduce:
			p.handleTreeReduce(d, m)
		case *msg.TreeRelease:
			p.handleTreeRelease(d, m)
		case *msg.AcquireGrant:
			// Consume the previous tenure's grant obligation *now*, in
			// message order: any forward processed after this grant targets
			// the tenure this grant begins, and must queue for its Unlock.
			// (Clearing only when the application thread pops the grant
			// would let a forward slip through on the stale flag and grant
			// the lock to two processes at once.)
			p.mu.Lock()
			p.lock(int(m.Lock)).releasedUngranted = false
			p.mu.Unlock()
			p.replyCh <- d
		case *msg.BarrierRelease:
			if m.NeedBitmaps && len(m.ShardOwner) > 0 {
				// Establish this epoch's shard round (and drain any round
				// messages that beat the release here) before the
				// application thread can observe the release.
				p.initShardState(d, m)
			}
			p.replyCh <- d
			if !m.NeedBitmaps {
				// The release is the departure trigger: hold the service
				// thread until the checkpoint is cut (see awaitCheckpoint).
				p.awaitCheckpoint()
			}
		case *msg.BarrierDone:
			p.replyCh <- d
			p.awaitCheckpoint()
		case *msg.PageReply, *msg.DiffAck, *msg.InvalAck:
			p.replyCh <- d
		default:
			p.protocolBug("unhandled message %T", d.Msg)
		}
	}
}

// awaitCheckpoint holds the service thread, immediately after it routed a
// barrier-departure trigger (a BarrierRelease with no bitmap round, or a
// BarrierDone) to the application thread, until that thread has serialized
// its barrier-epoch checkpoint. The departure is the recovery line; without
// this gate the service thread could apply a faster process's next-epoch
// messages — a lock serialization at the manager, a diff flush at the home
// — before the checkpoint is cut, leaking post-line state into it that
// rollback reconciliation cannot undo. The application thread is
// necessarily blocked waiting for the trigger (the barrier is fully
// synchronous), so the wait is bounded by its local departure work; the
// stop channel breaks the wait if that thread dies without checkpointing.
func (p *Proc) awaitCheckpoint() {
	if p.sys.ckpts == nil {
		return
	}
	select {
	case <-p.ckptGate:
	case <-p.sys.stop:
	}
}

// handleAcquireReq runs the lock-manager role: grant directly if the lock
// is free (or being re-acquired by its last holder), otherwise forward to
// the last holder, who will grant at its release. Under replay (§6.1), a
// request arriving ahead of its recorded turn is deferred until the
// recorded predecessor has been serialized.
func (p *Proc) handleAcquireReq(d simnet.Delivery, m *msg.AcquireReq) {
	p.mu.Lock()
	defer p.mu.Unlock()
	id := int(m.Lock)
	if id%p.n != p.id {
		p.protocolBug("AcquireReq for lock %d at non-manager", id)
	}
	if enf := p.sys.cfg.SyncEnforcer; enf != nil && !enf.MayProceed(id, d.From) {
		ls := p.lock(id)
		ls.deferred = append(ls.deferred, deferredReq{d: d, m: m})
		return
	}
	p.serializeAcquireLocked(d, m)
	p.retryDeferredLocked(id)
}

// serializeAcquireLocked establishes the requester as the next tenure of
// the lock and routes the grant or forward.
func (p *Proc) serializeAcquireLocked(d simnet.Delivery, m *msg.AcquireReq) {
	id := int(m.Lock)
	if rec := p.sys.cfg.SyncRecorder; rec != nil {
		rec.RecordGrantOrder(id, d.From)
	}
	ls := p.lock(id)
	arr := p.arrival(d) + p.sys.cfg.Model.Handler
	dbgf("mgr p%d: req lock %d from p%d (lastHolder=%d)", p.id, id, d.From, ls.lastHolder)
	switch {
	case ls.lastHolder == -1 || ls.lastHolder == d.From:
		// First acquisition, or re-acquisition by the last holder: nothing
		// new for the acquirer to learn through this lock.
		if d.From == p.id {
			// Self-grant: consume our previous tenure's grant obligation
			// synchronously. A later request may be routed to us via the
			// direct localFwdLocked call below (no message hop) while this
			// grant still sits in our own inbox; the flag must already be
			// down by then, or that forward would be granted from the
			// stale obligation and two processes would hold the lock.
			ls.releasedUngranted = false
		}
		p.tel.Emit(p.id, telemetry.KLockGrant, arr, int64(id), int64(d.From), 0)
		p.send(d.From, &msg.AcquireGrant{Lock: m.Lock}, arr)
	case ls.lastHolder == p.id:
		// The manager itself was the last holder: grant (or queue) locally.
		p.tel.Emit(p.id, telemetry.KLockForward, arr, int64(id), int64(d.From), int64(ls.lastHolder))
		p.localFwdLocked(id, d.From, vcFromWire(m.VC), arr)
	default:
		p.tel.Emit(p.id, telemetry.KLockForward, arr, int64(id), int64(d.From), int64(ls.lastHolder))
		p.send(ls.lastHolder, &msg.AcquireFwd{Lock: m.Lock, Requester: int32(d.From), VC: m.VC}, arr)
	}
	ls.lastHolder = d.From
}

// retryDeferredLocked re-examines replay-deferred requests; serializing one
// may unblock the next.
func (p *Proc) retryDeferredLocked(id int) {
	enf := p.sys.cfg.SyncEnforcer
	if enf == nil {
		return
	}
	ls := p.lock(id)
	for progress := true; progress; {
		progress = false
		for i, dr := range ls.deferred {
			if enf.MayProceed(id, dr.d.From) {
				ls.deferred = append(ls.deferred[:i], ls.deferred[i+1:]...)
				p.serializeAcquireLocked(dr.d, dr.m)
				progress = true
				break
			}
		}
	}
}

// handleAcquireFwd runs the previous-holder role for a forwarded request.
func (p *Proc) handleAcquireFwd(d simnet.Delivery, m *msg.AcquireFwd) {
	p.mu.Lock()
	defer p.mu.Unlock()
	arr := p.arrival(d) + p.sys.cfg.Model.Handler
	p.localFwdLocked(int(m.Lock), int(m.Requester), vcFromWire(m.VC), arr)
}

// localFwdLocked routes a forwarded request at the last holder: if our most
// recent tenure has ended and still owes a grant, this forward targets it —
// grant now. Otherwise the forward follows our current (or upcoming)
// tenure, so it waits for our Unlock.
func (p *Proc) localFwdLocked(id, requester int, theirs vc.VC, arrV int64) {
	ls := p.lock(id)
	dbgf("p%d fwd lock %d for p%d (holding=%v awaiting=%v relUngr=%v)", p.id, id, requester, ls.holding, ls.awaiting, ls.releasedUngranted)
	if ls.releasedUngranted {
		ls.releasedUngranted = false
		v := arrV
		if ls.lastRelV > v {
			v = ls.lastRelV
		}
		p.grantLocked(id, requester, theirs, ls.relVC, v)
		return
	}
	if !ls.holding && !ls.awaiting {
		p.protocolBug("forward for lock %d with no tenure to attach to", id)
	}
	ls.pending = append(ls.pending, pendingGrant{requester: requester, theirVC: theirs, arrV: arrV})
}

// handlePageReq runs the home-directory role for a page fault.
func (p *Proc) handlePageReq(d simnet.Delivery, m *msg.PageReq) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg := m.Page
	if p.home(pg) != p.id {
		p.protocolBug("PageReq for page %d at non-home", pg)
	}
	arr := p.arrival(d) + p.sys.cfg.Model.Handler

	if p.sys.cfg.Protocol == MultiWriter {
		// The home copy is always current (diffs are flushed eagerly at
		// releases), so serve it directly.
		p.replyPageLocked(d.From, pg, false, arr)
		return
	}

	owner := p.dirOwner[pg]
	if owner == p.id {
		switch {
		case p.owned[pg]:
			p.servePageLocked(d.From, pg, m.Write, arr)
		case p.expecting[pg]:
			// The home is itself re-acquiring ownership; serve once the
			// transfer lands.
			p.pendFwd[pg] = append(p.pendFwd[pg], msg.PageFwd{Page: pg, Requester: int32(d.From), Write: m.Write})
		default:
			p.protocolBug("directory says home owns page %d but it does not", pg)
		}
	} else {
		p.send(owner, &msg.PageFwd{Page: pg, Requester: int32(d.From), Write: m.Write}, arr)
	}
	if m.Write {
		p.dirOwner[pg] = d.From
	}
}

// handlePageFwd runs the current-owner role for a forwarded fault.
func (p *Proc) handlePageFwd(d simnet.Delivery, m *msg.PageFwd) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg := m.Page
	arr := p.arrival(d) + p.sys.cfg.Model.Handler
	switch {
	case p.owned[pg]:
		p.servePageLocked(int(m.Requester), pg, m.Write, arr)
	case p.expecting[pg]:
		// Ownership is in flight to us; serve once it arrives.
		p.pendFwd[pg] = append(p.pendFwd[pg], *m)
	default:
		p.protocolBug("PageFwd for page %d we neither own nor expect", pg)
	}
}

// servePageLocked answers a fault from the owned copy; a write fault
// transfers ownership (single-writer migration).
func (p *Proc) servePageLocked(requester int, pg mem.PageID, write bool, vtime int64) {
	data := make([]byte, p.seg.PageSize)
	copy(data, p.seg.PageBytes(pg))
	if write {
		p.owned[pg] = false
		p.state[pg] = pageReadOnly
		p.tel.Emit(p.id, telemetry.KOwnershipXfer, vtime, int64(pg), int64(requester), 0)
	}
	dbgf("p%d serves page %d to p%d write=%v word4=%d", p.id, pg, requester, write, p.seg.Word(32))
	p.send(requester, &msg.PageReply{Page: pg, Ownership: write, Data: data}, vtime)
}

// replyPageLocked serves the local (home) copy without ownership transfer.
func (p *Proc) replyPageLocked(requester int, pg mem.PageID, ownership bool, vtime int64) {
	data := make([]byte, p.seg.PageSize)
	copy(data, p.seg.PageBytes(pg))
	p.send(requester, &msg.PageReply{Page: pg, Ownership: ownership, Data: data}, vtime)
}

// drainPendingFwdsLocked services page forwards queued while ownership was
// in flight. Called by the application thread right after it has performed
// the write that faulted the page in.
func (p *Proc) drainPendingFwdsLocked(pg mem.PageID) {
	pending := p.pendFwd[pg]
	p.pendFwd[pg] = nil
	for _, m := range pending {
		if !p.owned[pg] {
			p.protocolBug("lost ownership of page %d while draining forwards", pg)
		}
		p.servePageLocked(int(m.Requester), pg, m.Write, p.vnow)
	}
}

// handleDiffFlush applies a releaser's diff to the home copy (multi-writer).
// If the home is itself mid-interval on the page (it has a twin), the twin
// is updated too so the home's own next diff contains only its own writes —
// the standard TreadMarks trick.
func (p *Proc) handleDiffFlush(d simnet.Delivery, m *msg.DiffFlush) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pg := m.Page
	if p.home(pg) != p.id {
		p.protocolBug("DiffFlush for page %d at non-home", pg)
	}
	base := p.seg.PageBase(pg)
	twin := p.twins[pg]
	for _, e := range m.Entries {
		a := base + mem.Addr(int(e.Word)*mem.WordSize)
		p.seg.SetWord(a, e.Val)
		if twin != nil {
			off := int(e.Word) * mem.WordSize
			for i := 0; i < mem.WordSize; i++ {
				twin[off+i] = byte(e.Val >> (8 * i))
			}
		}
	}
	arr := p.arrival(d) + p.sys.cfg.Model.Handler
	p.send(d.From, &msg.DiffAck{}, arr)
}

// handleInval applies an ERC release's eager invalidations and
// acknowledges them.
func (p *Proc) handleInval(d simnet.Delivery, m *msg.Inval) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, pg := range m.Pages {
		p.invalidateLocked(pg)
	}
	arr := p.arrival(d) + p.sys.cfg.Model.Handler
	p.send(d.From, &msg.InvalAck{}, arr)
}

// --- barrier master (process 0) ---

func (p *Proc) handleBarrierArrive(d simnet.Delivery, m *msg.BarrierArrive) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.bar
	if b == nil {
		p.protocolBug("BarrierArrive at non-master")
	}
	if m.Epoch != b.epoch {
		p.protocolBug("BarrierArrive for epoch %d during epoch %d", m.Epoch, b.epoch)
	}
	b.records = append(b.records, m.Intervals...)
	b.gvc.Merge(vcFromWire(m.VC))
	arrV := p.arrival(d)
	if arrV > b.maxArr {
		b.maxArr = arrV
	}
	if b.minArr < 0 || arrV < b.minArr {
		b.minArr = arrV
	}
	b.arrivedFrom[d.From] = true
	b.arrived++
	if b.arrived < p.n {
		return
	}

	// All processes have arrived: the master now has complete and current
	// information on every interval in the system. Run the comparison
	// algorithm (detection on) and release.
	model := p.sys.cfg.Model
	relV := b.maxArr + model.Handler
	b.check = nil
	if p.sys.cfg.Detect {
		det := p.sys.detector
		before := det.Stats()
		b.check = det.BuildCheckList(b.records)
		after := det.Stats()
		work := int64(after.PairComparisons-before.PairComparisons)*model.IntervalCompare +
			int64(after.NoticesScanned-before.NoticesScanned)*model.PageOverlap
		p.st.TIntervalCmp += work
		relV += work
	}

	p.tel.Emit(p.id, telemetry.KBarrierRelease, relV,
		int64(b.epoch), int64(len(b.records)), b.maxArr-b.minArr)
	rel := &msg.BarrierRelease{
		Epoch:       b.epoch,
		GlobalVC:    vcToWire(b.gvc),
		Intervals:   b.records,
		Check:       b.check,
		NeedBitmaps: len(b.check) > 0,
	}
	if p.sys.cfg.ShardedCheck && len(b.check) > 0 {
		rel.ShardOwner = race.PartitionCheckList(b.check, p.n)
	}
	for q := 0; q < p.n; q++ {
		nbytes := p.send(q, rel, relV)
		p.recordSyncSend(b.records, nbytes)
	}
	switch {
	case len(b.check) == 0:
		p.resetBarrierLocked()
	case p.sys.cfg.ShardedCheck:
		// Sharded round: collection state lives in p.shard (established
		// when our own copy of the release arrives); b.check and b.records
		// are kept for the root's fold, and resetBarrierLocked runs in
		// finishShardedCheckLocked.
	default:
		b.bmWait = true
		b.bmCount = 0
		b.bmMaxArr = 0
		b.bmSource = make(map[bmKey]mem.Bitmap)
	}
}

func (p *Proc) handleBitmapReply(d simnet.Delivery, m *msg.BitmapReply) {
	p.mu.Lock()
	defer p.mu.Unlock()
	b := p.bar
	if b == nil || !b.bmWait {
		p.protocolBug("unexpected BitmapReply")
	}
	if m.Epoch != b.epoch {
		p.protocolBug("BitmapReply for epoch %d during epoch %d", m.Epoch, b.epoch)
	}
	for _, e := range m.Entries {
		id := vc.IntervalID{Proc: int(e.Proc), Index: vc.Index(e.Index)}
		if e.Read != nil {
			b.bmSource[bmKey{id, e.Page, false}] = e.Read
		}
		if e.Write != nil {
			b.bmSource[bmKey{id, e.Page, true}] = e.Write
		}
	}
	if arr := p.arrival(d); arr > b.bmMaxArr {
		b.bmMaxArr = arr
	}
	b.bmFrom[d.From] = true
	b.bmCount++
	if b.bmCount < p.n {
		return
	}

	model := p.sys.cfg.Model
	det := p.sys.detector
	before := det.Stats()
	races := det.Compare(b.check, b, b.epoch)
	det.Retain(races, b.records)
	after := det.Stats()
	work := int64(after.BitmapsCompared-before.BitmapsCompared) * model.BitmapCompare
	p.st.TBitmapCmp += work
	p.st.CheckEntriesCompared += int64(len(b.check))
	p.st.BitmapsCompared += int64(after.BitmapsCompared - before.BitmapsCompared)
	doneV := b.bmMaxArr + model.Handler + work

	p.tel.Emit(p.id, telemetry.KRaceCheck, doneV,
		int64(len(b.check)), int64(after.BitmapsCompared-before.BitmapsCompared), int64(len(races)))
	for _, r := range races {
		ww := int64(0)
		if r.WriteWrite() {
			ww = 1
		}
		p.tel.Emit(p.id, telemetry.KRaceFound, doneV, int64(r.Addr), int64(r.Epoch), ww)
	}
	done := &msg.BarrierDone{Epoch: b.epoch, Races: races}
	for q := 0; q < p.n; q++ {
		p.send(q, done, doneV)
	}
	p.resetBarrierLocked()
}

// resetBarrierLocked clears every per-epoch field of the master's barrier
// state — arrival bookkeeping AND the bitmap-round buffers — so the next
// epoch starts from a clean slate even if this round ended abnormally.
func (p *Proc) resetBarrierLocked() {
	b := p.bar
	b.epoch++
	b.arrived = 0
	b.records = nil
	b.check = nil
	b.bmWait = false
	b.bmCount = 0
	b.bmMaxArr = 0
	b.bmSource = nil
	b.maxArr = 0
	b.minArr = -1
	for i := range b.arrivedFrom {
		b.arrivedFrom[i] = false
	}
	for i := range b.bmFrom {
		b.bmFrom[i] = false
	}
}
