package dsm

import (
	"errors"
	"testing"

	"lrcrace/internal/castore"
	"lrcrace/internal/mem"
)

// fuzzSeedCheckpoints runs a small two-process, two-epoch workload and
// returns every manifest it deposited together with the chunk store the
// manifests reference — real encoder output as the fuzz corpus.
func fuzzSeedCheckpoints(f *testing.F, proto ProtocolKind) ([][]byte, *castore.Store) {
	f.Helper()
	s, err := New(Config{
		NumProcs:         2,
		SharedSize:       8 * 1024,
		PageSize:         1024,
		Protocol:         proto,
		Detect:           true,
		CheckpointRetain: -1,
	})
	if err != nil {
		f.Fatal(err)
	}
	words, err := s.AllocWords("w", 8)
	if err != nil {
		f.Fatal(err)
	}
	err = s.RunEpochs(2, func() EpochFunc {
		return func(p *Proc, e int32) {
			p.Lock(0)
			p.Write(words+mem.Addr(p.ID()*8), uint64(e)+1)
			p.Unlock(0)
			p.Write(words, uint64(p.ID())) // a race, so racy-word state serializes too
		}
	})
	if err != nil {
		f.Fatal(err)
	}
	var manifests [][]byte
	for proc := 0; proc < 2; proc++ {
		for e := int32(1); e <= 2; e++ {
			if m := s.ckpts.Get(proc, e); m != nil {
				manifests = append(manifests, m)
			}
		}
	}
	if len(manifests) == 0 {
		f.Fatal("seed run deposited no checkpoints")
	}
	return manifests, s.ckpts.Chunks()
}

// FuzzDecodeCheckpoint: decodeCheckpoint must never panic, whatever the
// bytes — a checkpoint is read back at the most fragile moment there is,
// mid-recovery — and every rejection must carry one of the two typed
// errors so the rollback planner can fall back instead of crashing.
func FuzzDecodeCheckpoint(f *testing.F) {
	manifests, chunks := fuzzSeedCheckpoints(f, MultiWriter)
	swManifests, swChunks := fuzzSeedCheckpoints(f, SingleWriter)
	manifests = append(manifests, swManifests...)

	for _, m := range manifests {
		f.Add(m)
		// Truncations: a torn write.
		f.Add(m[:len(m)/2])
		f.Add(m[:len(m)-1])
		// Bit flips: bad storage under the header, in the body, at the tail.
		for _, at := range []int{4, len(m) / 3, len(m) - 2} {
			flipped := append([]byte(nil), m...)
			flipped[at] ^= 0x40
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		for _, src := range []*castore.Store{chunks, swChunks, nil} {
			ck, err := decodeCheckpoint(data, chunkSourceOrNil(src))
			if err != nil {
				if !errors.Is(err, ErrCheckpointCorrupt) && !errors.Is(err, ErrCheckpointChunk) {
					t.Fatalf("untyped decode error: %v", err)
				}
				continue
			}
			if ck == nil {
				t.Fatal("nil checkpoint without error")
			}
		}
	})
}

// chunkSourceOrNil converts a possibly-nil *castore.Store into the
// chunkSource interface without producing a non-nil interface wrapping a
// nil pointer.
func chunkSourceOrNil(s *castore.Store) chunkSource {
	if s == nil {
		return nil
	}
	return s
}
