package dsm

import (
	"testing"

	"lrcrace/internal/mem"
)

// TestLockOrderingRegression guards against a mutual-exclusion breach found
// during development: when the manager direct-granted a re-request, the
// grant could sit unprocessed in the application thread's reply queue while
// the service thread — still seeing the previous tenure's releasedUngranted
// flag — immediately granted a later forward to another process, putting
// two processes in the critical section at once. The fix consumes the
// obligation at grant-routing time in the service thread.
func TestLockOrderingRegression(t *testing.T) {
	for iter := 0; iter < 10; iter++ {
		s := newSys(t, 2, SingleWriter, true)
		x, _ := s.AllocWords("x", 1)
		err := s.Run(func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Lock(1) // manager is proc 1; proc re-requests hit the direct-grant path
				p.Write(x, p.Read(x)+1)
				p.Unlock(1)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Races()) != 0 {
			t.Fatalf("iter %d: %d races in synchronized program: %v",
				iter, len(s.Races()), s.Races()[0])
		}
	}
}

// TestLockStressHighContention hammers one lock from many processes with
// interleaved shared and private work; the counter must be exact and no
// races reported.
func TestLockStressHighContention(t *testing.T) {
	bothProtocols(t, func(t *testing.T, proto ProtocolKind) {
		const procs, iters = 6, 30
		s, err := New(Config{NumProcs: procs, SharedSize: 8 * 1024, PageSize: 1024,
			Protocol: proto, Detect: true})
		if err != nil {
			t.Fatal(err)
		}
		ctr, _ := s.AllocWords("ctr", 1)
		scratch, _ := s.AllocWords("scratch", procs)
		err = s.Run(func(p *Proc) {
			my := scratch + mem.Addr(p.ID()*8)
			for i := 0; i < iters; i++ {
				p.Lock(2)
				p.Write(ctr, p.Read(ctr)+1)
				p.Unlock(2)
				p.Lock(2)
				p.Write(my, p.Read(ctr))
				p.Unlock(2)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Races()) != 0 {
			t.Fatalf("races under full locking: %v", s.Races()[0])
		}
		// Verify the counter via a fresh fetch path: find any proc whose
		// copy is valid post-final-barrier; the final barrier invalidated
		// non-owners, so read the owner's (single-writer) or home's
		// (multi-writer) copy.
		pg := s.layout.Page(ctr)
		var got uint64
		switch proto {
		case SingleWriter:
			for _, q := range s.procs {
				if q.owned[pg] {
					got = q.seg.Word(ctr)
				}
			}
		case MultiWriter:
			got = s.procs[int(pg)%procs].seg.Word(ctr)
		}
		if got != procs*iters {
			t.Errorf("ctr = %d, want %d", got, procs*iters)
		}
	})
}
