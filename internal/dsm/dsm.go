// Package dsm implements the CVM-equivalent software distributed shared
// memory system: a lazy-release-consistent (LRC) multi-processor built from
// per-process page copies, interval records, version vectors, write
// notices, a 3-hop distributed lock protocol, and a centralized barrier —
// plus the three modifications the paper makes for race detection:
//
//	(i)   instrumentation collecting read and write access information
//	      (word bitmaps per page per interval),
//	(ii)  read notices added to the messages that already carry write
//	      notices, and
//	(iii) an extra message round at barriers to retrieve word-level access
//	      bitmaps when the check list is non-empty.
//
// Each DSM "process" is a goroutine pair (application thread + protocol
// service thread) with its own private copy of the shared segment;
// processes communicate only through serialized messages on a simulated
// network. Two coherence protocols are provided behind one interface,
// mirroring CVM's design: the single-writer ownership-migration protocol
// the paper ran, and the multi-writer home-based diff protocol of its §6.5.
package dsm

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"lrcrace/internal/costmodel"
	"lrcrace/internal/mem"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/reliable"
	"lrcrace/internal/simnet"
	"lrcrace/internal/telemetry"
)

// ProtocolKind selects the coherence protocol.
type ProtocolKind int

const (
	// SingleWriter is the ownership-migration protocol used for all the
	// paper's measurements.
	SingleWriter ProtocolKind = iota
	// MultiWriter is the home-based protocol with twins and diffs (§6.5).
	MultiWriter
	// EagerRC is eager release consistency (§3.1): a releasing process
	// pushes invalidations for its modified pages to every other process
	// and waits for acknowledgments before the release completes. No
	// consistency information travels on acquires. Provided as the
	// comparison point LRC improves on; race detection is NOT available
	// under it — the ordering metadata the detector leverages is exactly
	// what LRC maintains and ERC does not.
	EagerRC
)

func (k ProtocolKind) String() string {
	switch k {
	case MultiWriter:
		return "multi-writer"
	case EagerRC:
		return "eager-rc"
	default:
		return "single-writer"
	}
}

// Config describes one DSM instance.
type Config struct {
	NumProcs   int
	SharedSize int // bytes of shared segment (rounded up to pages)
	PageSize   int // 0 → mem.DefaultPageSize
	Protocol   ProtocolKind

	// Detect enables the race detector: access instrumentation, read
	// notices, and the barrier comparison/bitmap rounds.
	Detect bool
	// FirstRacesOnly applies §6.4 first-race filtering at the master.
	FirstOnly bool
	// PageBitmapOverlap selects the §6.2 page-list overlap implementation.
	PageBitmapOverlap bool
	// WritesFromDiffs (§6.5, MultiWriter only) derives write bitmaps from
	// diffs instead of store instrumentation. Reads remain instrumented.
	WritesFromDiffs bool
	// ShardedCheck distributes the barrier race check: the master
	// partitions the check list by page across all N processes
	// (race.PartitionCheckList), bitmap replies route to each shard's
	// owner, owners compare their shards in parallel, and results reduce
	// back to the master up a binary tree (see shard.go). Reported races
	// and persistent detector state are identical to the serial check's.
	// Requires Detect.
	ShardedCheck bool

	// BarrierTree selects the combining-tree barrier with the given arity
	// (≥ 2): arrivals reduce up a k-ary tree rooted at process 0 — each
	// interior node merging its subtree's interval metadata and building
	// the check-list slice for the pairs that first meet there — and the
	// release cascades back down it (see tree.go). 0 selects the flat
	// centralized barrier, which remains the cross-validation oracle;
	// reported races and detector state are identical under both. Composes
	// with ShardedCheck (the tree handles arrivals and the build, the
	// shards handle the bitmap comparison).
	BarrierTree int

	// Model is the virtual-time cost model; zero value → costmodel.Default.
	Model costmodel.Model

	// Tracer, if non-nil, receives a linearized trace of shared accesses
	// and synchronization events, for cross-validation against reference
	// detectors (see internal/hbdet).
	Tracer Tracer

	// SyncRecorder, if non-nil, receives the per-lock tenure serialization
	// order as the managers establish it — run 1 of the §6.1 two-run
	// reference-identification scheme.
	SyncRecorder SyncRecorder
	// SyncEnforcer, if non-nil, constrains lock-manager serialization to a
	// previously recorded order — run 2 of the scheme. Requests arriving
	// ahead of their recorded turn are deferred by the manager.
	SyncEnforcer SyncEnforcer
	// Watch, if non-nil, captures the call sites of accesses to one shared
	// address (the conflicting address from run 1).
	Watch AccessWatch

	// Transport overrides the message transport; nil → the in-memory
	// simulated network. The transport must deliver reliably and preserve
	// per-sender-pair FIFO order (both simnet and tcpnet do) — or Reliable
	// must be set to restore that contract on top of it.
	Transport Transport

	// Faults makes the simulated network lossy: a deterministic,
	// seed-driven plan of per-link drops, duplications, bounded
	// reordering, and latency jitter (see simnet.FaultPlan). Only valid
	// with the default simnet transport (Transport == nil). A plan with
	// drop/dup/reorder requires Reliable, since the protocol assumes
	// reliable FIFO links.
	Faults *simnet.FaultPlan

	// Reliable layers the CVM-style end-to-end retransmission sublayer
	// (internal/reliable) over the transport: per-link sequence numbers,
	// cumulative piggybacked ACKs, timeout retransmission with backoff,
	// and receiver-side dedup/resequencing. This is what lets the DSM run
	// unchanged over a lossy wire, exactly as CVM ran over raw UDP.
	Reliable bool

	// ReliableConfig tunes the sublayer's timers; zero value → defaults.
	ReliableConfig reliable.Config

	// BarrierWallTimeout, when positive, bounds the *real* time a process
	// will wait for a barrier release (or the barrier's bitmap round). On
	// expiry the telemetry flight recorder is tripped — preserving the
	// events leading up to the hang — and the run aborts with an error.
	// Zero means wait forever (the default; deterministic tests should not
	// depend on wall-clock timing).
	BarrierWallTimeout time.Duration

	// RealMsgDelay, when positive, makes each process's service thread
	// sleep this long before handling a message, coupling real scheduling
	// to the modeled wire latency. Without it a process exchanging
	// messages only with itself (e.g. a lock manager re-acquiring its own
	// lock) runs arbitrarily faster in real time than remote peers, which
	// can starve centralized-work-queue applications at tiny scales.
	RealMsgDelay time.Duration

	// NoCheckpoint disables barrier-epoch checkpointing, which is ON by
	// default: at every barrier departure each process serializes its
	// recovery state — page copies and rights, twins, version vector,
	// interval log and bitmaps, lock table, race reports, statistics, and
	// the master's detector state — as a chunked ckptVersion-3 manifest
	// whose unchanged payloads dedup across epochs (see CheckpointStats
	// for the measured sizes). Incremental chunking is what makes
	// always-on affordable; disable only for A/B overhead measurement.
	// Checkpointing is required for crash recovery (RunEpochs + crash
	// plans).
	NoCheckpoint bool

	// CheckpointRetain is the retention tail of the checkpoint store: how
	// many epochs at and below the recovery line survive the per-barrier
	// GC sweep. 0 → 2 (the line plus one fallback for verify failures);
	// negative → keep every epoch.
	CheckpointRetain int

	// Crash schedules the injected fail-stop death of one process (see
	// CrashPlan). Requires checkpointing (NoCheckpoint false), the
	// built-in simulated network (Transport == nil), and at least one
	// failure-detection path: Reliable (link retry-cap exhaustion) or
	// BarrierWallTimeout > 0.
	Crash *CrashPlan

	// Crashes schedules additional crash plans for compound faults — two
	// victims in one epoch, or a second crash armed only during recovery
	// (CrashPlan.DuringRecovery). Same requirements as Crash; Crash and
	// Crashes merge into one plan list.
	Crashes []*CrashPlan

	// Corruption schedules deterministic damage to stored checkpoint
	// chunks (see CorruptionPlan) — exercised when a later rollback finds
	// the damaged epoch's closure unverifiable and falls back. Requires
	// checkpointing.
	Corruption *CorruptionPlan

	// MaxRecoveries caps coordinated rollbacks per RunEpochs run; 0 → 3.
	MaxRecoveries int

	// Recorder, when non-nil, scopes this System's telemetry — protocol
	// events, fault-injection and retransmission events, flight dumps, and
	// the event-derived metrics — to the given handle (telemetry.New)
	// instead of the process-global recorder. This is what lets many
	// Systems run concurrently in one process without interleaving each
	// other's rings and registries (see internal/sweep). Nil preserves the
	// historical behavior: events follow whatever recorder telemetry.Start
	// has installed globally.
	Recorder *telemetry.Recorder
}

// Tracer observes the execution. Calls are ordered consistently with the
// run: a Release is always delivered before the Acquire it enables, and all
// of an epoch's BarrierArrive calls precede its BarrierDepart calls.
// Implementations must be safe for concurrent use.
type Tracer interface {
	Read(proc int, addr mem.Addr)
	Write(proc int, addr mem.Addr)
	Acquire(proc, lock int)
	Release(proc, lock int)
	BarrierArrive(proc int, epoch int32)
	BarrierDepart(proc int, epoch int32)
}

// SyncRecorder observes lock-manager serialization decisions.
type SyncRecorder interface {
	RecordGrantOrder(lock, requester int)
}

// SyncEnforcer gates lock-manager serialization during replay. MayProceed
// reports whether requester may take the next tenure of lock now (and, if
// so, consumes that turn); a false return defers the request until the
// recorded predecessor has been serialized.
type SyncEnforcer interface {
	MayProceed(lock, requester int) bool
}

// AccessWatch captures accesses to a single watched address.
type AccessWatch interface {
	WatchedAddr() mem.Addr
	NoteAccess(proc int, write bool)
}

// Transport carries the DSM's messages. The default is the in-memory
// simulated network (internal/simnet); internal/tcpnet provides the same
// contract over real loopback TCP sockets, making the system a user-level
// DSM over an actual network stack, as CVM was.
type Transport interface {
	// Send serializes m toward process to, tagged with the sender's
	// virtual clock, and returns the wire size in bytes.
	Send(from, to int, m msg.Message, vtime int64) int
	// Recv blocks for the next delivery to proc; ok is false after Close.
	Recv(proc int) (simnet.Delivery, bool)
	// Close shuts the transport down, unblocking all receivers.
	Close()
	// Stats returns traffic counters.
	Stats() simnet.Stats
}

func (c *Config) fill() error {
	if c.NumProcs < 1 {
		return fmt.Errorf("dsm: NumProcs = %d", c.NumProcs)
	}
	if c.PageSize == 0 {
		c.PageSize = mem.DefaultPageSize
	}
	if c.SharedSize <= 0 {
		return fmt.Errorf("dsm: SharedSize = %d", c.SharedSize)
	}
	if c.Model == (costmodel.Model{}) {
		c.Model = costmodel.Default()
	}
	if c.WritesFromDiffs && c.Protocol != MultiWriter {
		return fmt.Errorf("dsm: WritesFromDiffs requires the multi-writer protocol")
	}
	if c.ShardedCheck && !c.Detect {
		return fmt.Errorf("dsm: ShardedCheck distributes the race check and so requires Detect")
	}
	if c.BarrierTree == 1 || c.BarrierTree < 0 {
		return fmt.Errorf("dsm: BarrierTree = %d: the combining tree needs arity ≥ 2 (0 = flat barrier)", c.BarrierTree)
	}
	if c.Detect && c.Protocol == EagerRC {
		return fmt.Errorf("dsm: race detection requires LRC metadata (intervals, version vectors, notices) that the eager protocol does not maintain — use SingleWriter or MultiWriter")
	}
	if c.Faults != nil && c.Transport != nil {
		return fmt.Errorf("dsm: Faults applies only to the built-in simulated network (Transport must be nil)")
	}
	if c.Faults.Lossy() && !c.Reliable {
		return fmt.Errorf("dsm: a lossy FaultPlan (drop/dup/reorder) breaks the reliable-FIFO contract the protocol assumes; set Reliable to layer end-to-end retransmission over it")
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("dsm: %w", err)
		}
	}
	if plans := c.crashPlans(); len(plans) > 0 {
		for _, cp := range plans {
			if err := cp.Validate(c.NumProcs); err != nil {
				return fmt.Errorf("dsm: %w", err)
			}
		}
		if c.NoCheckpoint {
			return fmt.Errorf("dsm: crash plans require checkpointing: recovery restores from barrier-epoch checkpoints")
		}
		if c.Transport != nil {
			return fmt.Errorf("dsm: crash plans require the built-in simulated network (Transport must be nil)")
		}
		if !c.Reliable && c.BarrierWallTimeout <= 0 {
			return fmt.Errorf("dsm: crash plans require a failure-detection path: set Reliable (link retry-cap exhaustion) or BarrierWallTimeout (barrier wall timeout)")
		}
	}
	if c.Corruption != nil {
		if err := c.Corruption.Validate(); err != nil {
			return fmt.Errorf("dsm: %w", err)
		}
		if c.NoCheckpoint {
			return fmt.Errorf("dsm: Corruption attacks stored checkpoints and so requires checkpointing")
		}
		if len(c.crashPlans()) == 0 {
			return fmt.Errorf("dsm: Corruption is only observable during rollback; schedule a crash (Crash/Crashes) to trigger one")
		}
	}
	if c.MaxRecoveries < 0 {
		return fmt.Errorf("dsm: MaxRecoveries = %d", c.MaxRecoveries)
	}
	return nil
}

// checkpointing reports whether barrier-epoch checkpointing is on — the
// default; NoCheckpoint opts out.
func (c *Config) checkpointing() bool { return !c.NoCheckpoint }

// crashPlans merges the single-plan convenience field and the compound
// list into one slice, in a stable order.
func (c *Config) crashPlans() []*CrashPlan {
	if c.Crash == nil && len(c.Crashes) == 0 {
		return nil
	}
	plans := make([]*CrashPlan, 0, 1+len(c.Crashes))
	if c.Crash != nil {
		plans = append(plans, c.Crash)
	}
	return append(plans, c.Crashes...)
}

// Symbol names an allocated shared variable, for mapping race addresses
// back to source-level names (the paper does this with symbol tables).
type Symbol struct {
	Name string
	Base mem.Addr
	Size int
}

// System is one DSM instance: shared-segment layout, symbol table, network,
// and the per-process runtimes.
type System struct {
	cfg    Config
	layout mem.Layout
	nw     Transport
	procs  []*Proc

	// tel is the telemetry destination every layer of this System emits
	// through: bound to cfg.Recorder when set, the global shim otherwise.
	tel telemetry.Scope

	allocNext mem.Addr
	symbols   []Symbol

	detector *race.Detector // lives at the barrier master (proc 0)
	raceOpts race.Options   // detector options, reused by the distributed build

	// Crash recovery (see checkpoint.go / recovery.go). crashes is the
	// merged plan list (Config.Crash + Config.Crashes).
	ckpts     *CheckpointStore
	crashes   []*CrashPlan
	epochMode bool
	recStats  RecoveryStats
	stop      chan struct{} // closed when an attempt's app threads have all exited

	recMu      sync.Mutex
	suspect    int          // proc suspected dead this attempt; -1 unknown
	suspectVia string       // "link-death" | "barrier-timeout" | ""
	crashSeen  bool         // an injected crashPanic unwound this attempt
	aliveProcs map[int]bool // procs that proved themselves alive by accusing

	runErr  error
	runOnce sync.Once
	ran     bool
}

// New builds a System; call Alloc to lay out shared variables, then Run.
func New(cfg Config) (*System, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	l, err := mem.NewLayout(cfg.SharedSize, cfg.PageSize)
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, layout: l, tel: telemetry.To(cfg.Recorder), crashes: cfg.crashPlans()}
	if cfg.Detect {
		s.raceOpts = race.Options{
			FirstOnly:         cfg.FirstOnly,
			PageBitmapOverlap: cfg.PageBitmapOverlap,
			NumPages:          l.NumPages,
		}
		s.detector = race.NewDetector(l, s.raceOpts)
	}
	return s, nil
}

// Layout returns the shared segment geometry.
func (s *System) Layout() mem.Layout { return s.layout }

// Config returns the configuration in effect.
func (s *System) Config() Config { return s.cfg }

// Alloc reserves size bytes of shared memory under the given symbol name
// and returns its base address. All shared data is dynamically allocated,
// as in CVM — which is what lets the ATOM-model classifier discard accesses
// through the static-data base register. Allocations are word-aligned.
func (s *System) Alloc(name string, size int) (mem.Addr, error) {
	if s.ran {
		return 0, fmt.Errorf("dsm: Alloc(%q) after Run", name)
	}
	if size <= 0 {
		return 0, fmt.Errorf("dsm: Alloc(%q, %d): size must be positive", name, size)
	}
	aligned := (size + mem.WordSize - 1) &^ (mem.WordSize - 1)
	base := s.allocNext
	if int(base)+aligned > s.layout.Size() {
		return 0, fmt.Errorf("dsm: Alloc(%q, %d): shared segment exhausted (%d of %d used)",
			name, size, base, s.layout.Size())
	}
	s.allocNext += mem.Addr(aligned)
	s.symbols = append(s.symbols, Symbol{Name: name, Base: base, Size: aligned})
	return base, nil
}

// AllocWords reserves n words and returns the base address.
func (s *System) AllocWords(name string, n int) (mem.Addr, error) {
	return s.Alloc(name, n*mem.WordSize)
}

// AllocBytes returns the number of shared bytes allocated so far.
func (s *System) AllocBytes() int { return int(s.allocNext) }

// SymbolAt returns the symbol covering addr, if any.
func (s *System) SymbolAt(addr mem.Addr) (Symbol, bool) {
	i := sort.Search(len(s.symbols), func(i int) bool {
		return s.symbols[i].Base+mem.Addr(s.symbols[i].Size) > addr
	})
	if i < len(s.symbols) && addr >= s.symbols[i].Base {
		return s.symbols[i], true
	}
	return Symbol{}, false
}

// Symbols returns the allocation table.
func (s *System) Symbols() []Symbol { return s.symbols }

// Run executes app once per process, each on its own goroutine with its own
// protocol service thread, and blocks until every process has finished and
// passed the implicit final barrier (at which the last race-detection pass
// runs). It may be called once.
func (s *System) Run(app func(p *Proc)) error {
	var err error
	s.runOnce.Do(func() { err = s.run(app) })
	if err == nil && s.runErr != nil {
		err = s.runErr
	}
	return err
}

func (s *System) run(app func(p *Proc)) error {
	s.ran = true
	if s.cfg.checkpointing() {
		s.ckpts = NewCheckpointStore()
		s.ckpts.SetRetain(s.cfg.CheckpointRetain)
	}
	s.runErr = s.attempt(func(p *Proc) {
		app(p)
		p.Barrier() // final global synchronization = last detection pass
	}, nil)
	return s.runErr
}

// Races returns every race reported during the run, in detection order.
// (The master's copy; workers hold identical lists.)
func (s *System) Races() []race.Report {
	if len(s.procs) == 0 {
		return nil
	}
	return s.procs[0].races
}

// ExplainRace reconstructs the happens-before-1 derivation behind a
// reported race (why the two intervals are concurrent, and on which pages
// they overlap). ok is false if detection was off or the report is unknown.
func (s *System) ExplainRace(r race.Report) (string, bool) {
	if s.detector == nil {
		return "", false
	}
	return s.detector.ExplainReport(r)
}

// DetectorStats returns the master-side comparison-algorithm counters.
func (s *System) DetectorStats() race.Stats {
	if s.detector == nil {
		return race.Stats{}
	}
	return s.detector.Stats()
}

// DetectorState returns a deep snapshot of the detector's persistent state
// (counters, first-racy-epoch marker, retained racy records). Serial and
// sharded checks must produce byte-identical snapshots on the same program
// — the cross-validation oracle for Config.ShardedCheck.
func (s *System) DetectorState() race.State {
	if s.detector == nil {
		return race.State{}
	}
	return s.detector.SnapshotState()
}

// NetStats returns traffic counters.
func (s *System) NetStats() simnet.Stats { return s.nw.Stats() }

// Procs returns the process runtimes (valid after Run for stats reading).
func (s *System) Procs() []*Proc { return s.procs }

// SnapshotWord returns the authoritative value of the shared word at a
// after a completed run: the owner's copy under the single-writer protocol,
// the home's copy under multi-writer. Only valid once Run has returned.
func (s *System) SnapshotWord(a mem.Addr) uint64 {
	pg := s.layout.Page(a)
	switch s.cfg.Protocol {
	case SingleWriter, EagerRC:
		for _, p := range s.procs {
			if p.owned[pg] {
				return p.seg.Word(a)
			}
		}
		// Ownership in flight at shutdown cannot happen after a clean run;
		// fall back to the directory.
		home := s.procs[int(pg)%s.cfg.NumProcs]
		return s.procs[home.dirOwner[pg]].seg.Word(a)
	default:
		return s.procs[int(pg)%s.cfg.NumProcs].seg.Word(a)
	}
}

// SnapshotF64 returns SnapshotWord reinterpreted as a float64.
func (s *System) SnapshotF64(a mem.Addr) float64 {
	return math.Float64frombits(s.SnapshotWord(a))
}

// VirtualTime returns the end-to-end virtual runtime: the maximum process
// clock at completion.
func (s *System) VirtualTime() int64 {
	var t int64
	for _, p := range s.procs {
		if p.vnow > t {
			t = p.vnow
		}
	}
	return t
}
