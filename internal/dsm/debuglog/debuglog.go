// Package debuglog is the historical string-formatted development log of
// the DSM and its transports, now a thin shim over the telemetry event
// core (internal/telemetry) so that there is exactly one event pipeline:
// Logf records a KLog event into the telemetry system ring, and Events
// reads the KLog events back in global order. Tests keep the old API;
// everything else about the old package holds — it is off in normal
// operation and a single atomic load when disabled.
package debuglog

import (
	"lrcrace/internal/telemetry"
)

// Enable turns on the event log (tests only), clearing prior events. It
// installs a fresh unbounded telemetry recorder with log capture on,
// replacing any recorder currently installed.
func Enable() {
	telemetry.Start(telemetry.Config{Cap: -1, CaptureLog: true})
}

// Disable turns the log off and discards its contents (it stops the
// telemetry recorder).
func Disable() { telemetry.Stop() }

// Enabled reports whether string events are being recorded.
func Enabled() bool { return telemetry.LogCaptureEnabled() }

// Events returns a copy of the recorded string events, in global order.
func Events() []string {
	r := telemetry.Active()
	if r == nil {
		return nil
	}
	var out []string
	for _, e := range r.Events() {
		if e.Kind == telemetry.KLog {
			out = append(out, e.Msg)
		}
	}
	return out
}

// Logf records one formatted event; it is a no-op while disabled.
func Logf(format string, args ...interface{}) {
	telemetry.Logf(-1, 0, format, args...)
}
