// Package debuglog is a development aid shared by the DSM and its
// transports: when enabled, protocol events from every layer (coherence
// handlers, the reliability sublayer, tcpnet stream errors) are recorded
// in one globally ordered list. Tests enable it to diagnose rare
// interleaving bugs; it is off in normal operation and a single atomic
// load when disabled.
package debuglog

import (
	"fmt"
	"sync"
	"sync/atomic"
)

type eventLog struct {
	mu     sync.Mutex
	events []string
}

var current atomic.Pointer[eventLog]

// Enable turns on the event log (tests only), clearing prior events.
func Enable() { current.Store(&eventLog{}) }

// Disable turns the log off and discards its contents.
func Disable() { current.Store(nil) }

// Enabled reports whether events are being recorded.
func Enabled() bool { return current.Load() != nil }

// Events returns a copy of the recorded events, in global order.
func Events() []string {
	l := current.Load()
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.events...)
}

// Logf records one formatted event; it is a no-op while disabled.
func Logf(format string, args ...interface{}) {
	l := current.Load()
	if l == nil {
		return
	}
	l.mu.Lock()
	l.events = append(l.events, fmt.Sprintf(format, args...))
	l.mu.Unlock()
}
