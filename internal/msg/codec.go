// Package msg defines the wire messages of the DSM and race detector and a
// compact hand-rolled binary encoding for them.
//
// Every message really is serialized to bytes on send and parsed again on
// receive, so the byte counts the harness reports (e.g. the read-notice
// bandwidth overhead of Table 3) are measured from genuine encodings, not
// estimated. The encoding is little-endian and fixed-width; individual read
// and write notices have identical size (4 bytes), matching the paper's
// observation that "individual read and write notices are the same size".
package msg

import (
	"errors"
	"fmt"

	"lrcrace/internal/mem"
	"lrcrace/internal/vc"
)

// ErrTruncated is returned when a decode runs past the end of the buffer.
var ErrTruncated = errors.New("msg: truncated message")

// ErrCorrupt is returned for structurally invalid payloads.
var ErrCorrupt = errors.New("msg: corrupt message")

// Encoder appends fixed-width little-endian fields to a buffer.
type Encoder struct {
	buf []byte
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Len returns the number of bytes encoded so far.
func (e *Encoder) Len() int { return len(e.buf) }

func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }
func (e *Encoder) U16(v uint16) {
	e.buf = append(e.buf, byte(v), byte(v>>8))
}
func (e *Encoder) U32(v uint32) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
func (e *Encoder) U64(v uint64) {
	e.buf = append(e.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }
func (e *Encoder) I32(v int32) { e.U32(uint32(v)) }

// Blob writes a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Raw writes b with no length prefix — for fixed-width fields (chunk
// addresses) whose size both sides agree on out of band.
func (e *Encoder) Raw(b []byte) {
	e.buf = append(e.buf, b...)
}

// VC writes a version vector.
func (e *Encoder) VC(v vc.VC) {
	e.U16(uint16(len(v)))
	for _, x := range v {
		e.U32(uint32(x))
	}
}

// IntervalID writes an interval identifier.
func (e *Encoder) IntervalID(id vc.IntervalID) {
	e.U16(uint16(id.Proc))
	e.U32(uint32(id.Index))
}

// Pages writes a page list. Each notice costs noticeSize bytes.
func (e *Encoder) Pages(ps []mem.PageID) {
	e.U32(uint32(len(ps)))
	for _, p := range ps {
		e.I32(int32(p))
	}
}

// Bitmap writes an access bitmap (possibly nil).
func (e *Encoder) Bitmap(b mem.Bitmap) {
	e.U32(uint32(len(b)))
	for _, w := range b {
		e.U64(w)
	}
}

// NoticeSize is the encoded size in bytes of one read or write notice.
const NoticeSize = 4

// Decoder consumes fields written by Encoder.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps b.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the first error encountered.
func (d *Decoder) err2(need int) bool {
	if d.err != nil {
		return true
	}
	if d.off+need > len(d.buf) {
		d.err = ErrTruncated
		return true
	}
	return false
}

// Err returns the first decoding error, if any.
func (d *Decoder) Err() error { return d.err }

// Done reports whether the whole buffer was consumed without error.
func (d *Decoder) Done() bool { return d.err == nil && d.off == len(d.buf) }

func (d *Decoder) U8() uint8 {
	if d.err2(1) {
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}
func (d *Decoder) U16() uint16 {
	if d.err2(2) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 2
	return uint16(b[0]) | uint16(b[1])<<8
}
func (d *Decoder) U32() uint32 {
	if d.err2(4) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 4
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}
func (d *Decoder) U64() uint64 {
	if d.err2(8) {
		return 0
	}
	b := d.buf[d.off:]
	d.off += 8
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
func (d *Decoder) I64() int64 { return int64(d.U64()) }
func (d *Decoder) I32() int32 { return int32(d.U32()) }

// Raw reads n bytes with no length prefix (the inverse of Encoder.Raw).
func (d *Decoder) Raw(n int) []byte {
	if d.err2(n) {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:])
	d.off += n
	return b
}

// Remaining returns the number of unread bytes (0 once an error is set) —
// the bound sanity checks on untrusted element counts compare against.
func (d *Decoder) Remaining() int {
	if d.err != nil {
		return 0
	}
	return len(d.buf) - d.off
}

// Blob reads a length-prefixed byte slice.
func (d *Decoder) Blob() []byte {
	n := int(d.U32())
	if d.err2(n) {
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:])
	d.off += n
	return b
}

// VC reads a version vector.
func (d *Decoder) VC() vc.VC {
	n := int(d.U16())
	if d.err != nil || n > 1024 {
		if n > 1024 {
			d.err = ErrCorrupt
		}
		return nil
	}
	v := make(vc.VC, n)
	for i := range v {
		v[i] = vc.Index(d.U32())
	}
	return v
}

// IntervalID reads an interval identifier.
func (d *Decoder) IntervalID() vc.IntervalID {
	p := int(d.U16())
	i := vc.Index(d.U32())
	return vc.IntervalID{Proc: p, Index: i}
}

// Pages reads a page list.
func (d *Decoder) Pages() []mem.PageID {
	n := int(d.U32())
	if d.err2(n * NoticeSize) {
		return nil
	}
	if n == 0 {
		return nil
	}
	ps := make([]mem.PageID, n)
	for i := range ps {
		ps[i] = mem.PageID(d.I32())
	}
	return ps
}

// Bitmap reads an access bitmap.
func (d *Decoder) Bitmap() mem.Bitmap {
	n := int(d.U32())
	if d.err2(n * 8) {
		return nil
	}
	if n == 0 {
		return nil
	}
	b := make(mem.Bitmap, n)
	for i := range b {
		b[i] = d.U64()
	}
	return b
}

// check is a helper for final validation in Unmarshal.
func finish(d *Decoder, t Type) error {
	if d.err != nil {
		return fmt.Errorf("decoding %v: %w", t, d.err)
	}
	if !d.Done() {
		return fmt.Errorf("decoding %v: %w (trailing bytes)", t, ErrCorrupt)
	}
	return nil
}
