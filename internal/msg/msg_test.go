package msg

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/vc"
)

func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	b := Marshal(m)
	got, err := Unmarshal(b)
	if err != nil {
		t.Fatalf("Unmarshal(%v): %v", m.Type(), err)
	}
	if got.Type() != m.Type() {
		t.Fatalf("type mismatch: %v vs %v", got.Type(), m.Type())
	}
	return got
}

func sampleRecord() *interval.Record {
	return &interval.Record{
		ID:           vc.IntervalID{Proc: 3, Index: 17},
		VC:           vc.VC{1, 2, 3, 17},
		Epoch:        5,
		WriteNotices: []mem.PageID{2, 9},
		ReadNotices:  []mem.PageID{1, 2, 3},
	}
}

func TestRoundTripAcquire(t *testing.T) {
	req := &AcquireReq{Lock: 7, VC: []uint32{1, 0, 4}}
	if got := roundTrip(t, req).(*AcquireReq); !reflect.DeepEqual(got, req) {
		t.Errorf("AcquireReq: got %+v want %+v", got, req)
	}
	fwd := &AcquireFwd{Lock: 7, Requester: 2, VC: []uint32{1, 0, 4}}
	if got := roundTrip(t, fwd).(*AcquireFwd); !reflect.DeepEqual(got, fwd) {
		t.Errorf("AcquireFwd: got %+v want %+v", got, fwd)
	}
	grant := &AcquireGrant{Lock: 7, Intervals: []*interval.Record{sampleRecord()}}
	got := roundTrip(t, grant).(*AcquireGrant)
	if got.Lock != 7 || len(got.Intervals) != 1 || !reflect.DeepEqual(got.Intervals[0], grant.Intervals[0]) {
		t.Errorf("AcquireGrant: got %+v", got)
	}
}

func TestRoundTripEmptyIntervals(t *testing.T) {
	grant := &AcquireGrant{Lock: 1}
	got := roundTrip(t, grant).(*AcquireGrant)
	if len(got.Intervals) != 0 {
		t.Errorf("intervals = %v, want empty", got.Intervals)
	}
}

func TestRoundTripPageMessages(t *testing.T) {
	req := &PageReq{Page: 12, Write: true}
	if got := roundTrip(t, req).(*PageReq); *got != *req {
		t.Errorf("PageReq: %+v", got)
	}
	fwd := &PageFwd{Page: 12, Requester: 4, Write: false}
	if got := roundTrip(t, fwd).(*PageFwd); *got != *fwd {
		t.Errorf("PageFwd: %+v", got)
	}
	data := make([]byte, 128)
	for i := range data {
		data[i] = byte(i * 3)
	}
	rep := &PageReply{Page: 12, Ownership: true, Data: data}
	got := roundTrip(t, rep).(*PageReply)
	if got.Page != 12 || !got.Ownership || !reflect.DeepEqual(got.Data, data) {
		t.Errorf("PageReply: %+v", got)
	}
}

func TestRoundTripDiff(t *testing.T) {
	df := &DiffFlush{Page: 3, Entries: []DiffEntry{{Word: 5, Val: 0xdead}, {Word: 1023, Val: 1}}}
	got := roundTrip(t, df).(*DiffFlush)
	if !reflect.DeepEqual(got, df) {
		t.Errorf("DiffFlush: got %+v want %+v", got, df)
	}
	roundTrip(t, &DiffAck{})
	inv := &Inval{Pages: []mem.PageID{7, 9}}
	gotInv := roundTrip(t, inv).(*Inval)
	if !reflect.DeepEqual(gotInv, inv) {
		t.Errorf("Inval: got %+v want %+v", gotInv, inv)
	}
	roundTrip(t, &InvalAck{})
}

func TestRoundTripBarrier(t *testing.T) {
	arr := &BarrierArrive{Epoch: 2, VC: []uint32{5, 6}, Intervals: []*interval.Record{sampleRecord(), sampleRecord()}}
	gotA := roundTrip(t, arr).(*BarrierArrive)
	if gotA.Epoch != 2 || !reflect.DeepEqual(gotA.VC, arr.VC) || len(gotA.Intervals) != 2 {
		t.Errorf("BarrierArrive: %+v", gotA)
	}

	rel := &BarrierRelease{
		Epoch:     2,
		GlobalVC:  []uint32{9, 9},
		Intervals: []*interval.Record{sampleRecord()},
		Check: []race.CheckEntry{
			{A: vc.IntervalID{Proc: 0, Index: 1}, B: vc.IntervalID{Proc: 1, Index: 2}, Page: 4},
		},
		NeedBitmaps: true,
	}
	gotR := roundTrip(t, rel).(*BarrierRelease)
	if !gotR.NeedBitmaps || len(gotR.Check) != 1 || gotR.Check[0] != rel.Check[0] || gotR.ShardOwner != nil {
		t.Errorf("BarrierRelease: %+v", gotR)
	}

	rel.ShardOwner = []int32{3}
	gotR = roundTrip(t, rel).(*BarrierRelease)
	if !reflect.DeepEqual(gotR.ShardOwner, rel.ShardOwner) {
		t.Errorf("BarrierRelease sharded: %+v", gotR)
	}

	bm := mem.NewBitmap(1024)
	bm.Set(7)
	br := &BitmapReply{Epoch: 2, Entries: []BitmapEntry{{Proc: 1, Index: 2, Page: 4, Read: bm, Write: nil}}}
	gotB := roundTrip(t, br).(*BitmapReply)
	if len(gotB.Entries) != 1 || !gotB.Entries[0].Read.Get(7) || gotB.Entries[0].Write != nil {
		t.Errorf("BitmapReply: %+v", gotB)
	}

	done := &BarrierDone{Epoch: 2, Races: []race.Report{{
		Page: 4, Word: 7, Addr: 0x8038, Epoch: 2,
		A: race.Endpoint{Interval: vc.IntervalID{Proc: 0, Index: 1}, Kind: race.Write},
		B: race.Endpoint{Interval: vc.IntervalID{Proc: 1, Index: 2}, Kind: race.Read},
	}}}
	gotD := roundTrip(t, done).(*BarrierDone)
	if len(gotD.Races) != 1 || gotD.Races[0] != done.Races[0] {
		t.Errorf("BarrierDone: %+v", gotD)
	}

	sr := &ShardResult{Epoch: 2, Races: done.Races, BitmapsCompared: 12, WordOverlaps: 3}
	gotS := roundTrip(t, sr).(*ShardResult)
	if gotS.Epoch != 2 || len(gotS.Races) != 1 || gotS.Races[0] != sr.Races[0] ||
		gotS.BitmapsCompared != 12 || gotS.WordOverlaps != 3 {
		t.Errorf("ShardResult: %+v", gotS)
	}
	empty := roundTrip(t, &ShardResult{Epoch: 5}).(*ShardResult)
	if empty.Epoch != 5 || len(empty.Races) != 0 {
		t.Errorf("empty ShardResult: %+v", empty)
	}
}

func TestRoundTripTreeBarrier(t *testing.T) {
	arr := &TreeArrive{BarrierArrive: BarrierArrive{
		Epoch: 3, VC: []uint32{5, 6, 7}, Intervals: []*interval.Record{sampleRecord()},
	}}
	gotA := roundTrip(t, arr).(*TreeArrive)
	if gotA.Epoch != 3 || !reflect.DeepEqual(gotA.VC, arr.VC) || len(gotA.Intervals) != 1 {
		t.Errorf("TreeArrive: %+v", gotA)
	}

	red := &TreeReduce{
		Epoch:     3,
		VC:        []uint32{9, 8, 7},
		Intervals: []*interval.Record{sampleRecord(), sampleRecord()},
		MinArr:    123456,
		Entries: []race.CheckEntry{
			{A: vc.IntervalID{Proc: 0, Index: 1}, B: vc.IntervalID{Proc: 2, Index: 4}, Page: 9},
		},
		PairComparisons:  40,
		ConcurrentPairs:  7,
		OverlappingPairs: 2,
		NoticesScanned:   31,
	}
	gotRed := roundTrip(t, red).(*TreeReduce)
	if gotRed.Epoch != 3 || !reflect.DeepEqual(gotRed.VC, red.VC) ||
		len(gotRed.Intervals) != 2 || gotRed.MinArr != 123456 ||
		len(gotRed.Entries) != 1 || gotRed.Entries[0] != red.Entries[0] ||
		gotRed.PairComparisons != 40 || gotRed.ConcurrentPairs != 7 ||
		gotRed.OverlappingPairs != 2 || gotRed.NoticesScanned != 31 {
		t.Errorf("TreeReduce: %+v", gotRed)
	}
	empty := roundTrip(t, &TreeReduce{Epoch: 5, MinArr: -1}).(*TreeReduce)
	if empty.Epoch != 5 || empty.MinArr != -1 || len(empty.Entries) != 0 {
		t.Errorf("empty TreeReduce: %+v", empty)
	}

	rel := &TreeRelease{BarrierRelease: BarrierRelease{
		Epoch:     3,
		GlobalVC:  []uint32{9, 9, 9},
		Intervals: []*interval.Record{sampleRecord()},
		Check: []race.CheckEntry{
			{A: vc.IntervalID{Proc: 0, Index: 1}, B: vc.IntervalID{Proc: 1, Index: 2}, Page: 4},
		},
		ShardOwner:  []int32{2},
		NeedBitmaps: true,
	}}
	gotRel := roundTrip(t, rel).(*TreeRelease)
	if !gotRel.NeedBitmaps || len(gotRel.Check) != 1 || gotRel.Check[0] != rel.Check[0] ||
		!reflect.DeepEqual(gotRel.ShardOwner, rel.ShardOwner) {
		t.Errorf("TreeRelease: %+v", gotRel)
	}
}

func TestRoundTripReliability(t *testing.T) {
	inner := Marshal(&PageReply{Page: 3, Ownership: true, Data: []byte{9, 8, 7}})
	data := &RelData{Seq: 42, Ack: 41, Payload: inner}
	got := roundTrip(t, data).(*RelData)
	if !reflect.DeepEqual(got, data) {
		t.Errorf("RelData: got %+v want %+v", got, data)
	}
	// The payload must itself unmarshal back to the wrapped message.
	m, err := Unmarshal(got.Payload)
	if err != nil {
		t.Fatalf("payload unmarshal: %v", err)
	}
	if pr := m.(*PageReply); pr.Page != 3 || !pr.Ownership || !reflect.DeepEqual(pr.Data, []byte{9, 8, 7}) {
		t.Errorf("wrapped PageReply: got %+v", pr)
	}
	ack := &RelAck{Ack: 99}
	if got := roundTrip(t, ack).(*RelAck); *got != *ack {
		t.Errorf("RelAck: got %+v want %+v", got, ack)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte{0xff}); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := Unmarshal(nil); err == nil {
		t.Error("empty buffer accepted")
	}
	// Truncated payloads of every valid message type must error, not panic.
	msgs := []Message{
		&AcquireReq{Lock: 1, VC: []uint32{1, 2}},
		&AcquireFwd{Lock: 1, Requester: 2, VC: []uint32{1}},
		&AcquireGrant{Lock: 1, Intervals: []*interval.Record{sampleRecord()}},
		&PageReq{Page: 1}, &PageFwd{Page: 1}, &PageReply{Page: 1, Data: []byte{1, 2, 3}},
		&DiffFlush{Page: 1, Entries: []DiffEntry{{1, 2}}},
		&Inval{Pages: []mem.PageID{1, 2, 3}},
		&BarrierArrive{Epoch: 1, VC: []uint32{1}, Intervals: []*interval.Record{sampleRecord()}},
		&BarrierRelease{Epoch: 1, GlobalVC: []uint32{1}, ShardOwner: []int32{0, 1}, NeedBitmaps: true},
		&BitmapReply{Epoch: 1, Entries: []BitmapEntry{{Read: mem.NewBitmap(64)}}},
		&BarrierDone{Epoch: 1, Races: []race.Report{{}}},
		&RelData{Seq: 1, Ack: 2, Payload: []byte{1, 2, 3}},
		&RelAck{Ack: 7},
		&ShardResult{Epoch: 1, Races: []race.Report{{}}, BitmapsCompared: 4, WordOverlaps: 1},
		&TreeArrive{BarrierArrive: BarrierArrive{Epoch: 1, VC: []uint32{1}, Intervals: []*interval.Record{sampleRecord()}}},
		&TreeReduce{Epoch: 1, VC: []uint32{1}, Intervals: []*interval.Record{sampleRecord()},
			MinArr: 9, Entries: []race.CheckEntry{{Page: 3}}, PairComparisons: 2},
		&TreeRelease{BarrierRelease: BarrierRelease{Epoch: 1, GlobalVC: []uint32{1}, ShardOwner: []int32{0}, NeedBitmaps: true}},
	}
	for _, m := range msgs {
		full := Marshal(m)
		for cut := 1; cut < len(full); cut++ {
			if _, err := Unmarshal(full[:cut]); err == nil {
				t.Errorf("%v truncated at %d/%d accepted", m.Type(), cut, len(full))
				break
			}
		}
		// Trailing garbage must be rejected too.
		if _, err := Unmarshal(append(append([]byte{}, full...), 0)); err == nil {
			t.Errorf("%v with trailing byte accepted", m.Type())
		}
	}
}

func TestRecordReadNoticeBytes(t *testing.T) {
	rs := []*interval.Record{sampleRecord(), sampleRecord()}
	if got := RecordReadNoticeBytes(rs); got != 2*3*NoticeSize {
		t.Errorf("RecordReadNoticeBytes = %d, want %d", got, 2*3*NoticeSize)
	}
	// A read and a write notice have the same wire size: encode a record
	// with k write notices vs one with k read notices and compare.
	a := &interval.Record{ID: vc.IntervalID{}, VC: vc.New(2), WriteNotices: []mem.PageID{1, 2, 3}}
	b := &interval.Record{ID: vc.IntervalID{}, VC: vc.New(2), ReadNotices: []mem.PageID{1, 2, 3}}
	var ea, eb Encoder
	encodeRecord(&ea, a)
	encodeRecord(&eb, b)
	if ea.Len() != eb.Len() {
		t.Errorf("read/write notice sizes differ: %d vs %d", ea.Len(), eb.Len())
	}
}

// Property: records survive encode/decode for arbitrary notice sets.
func TestPropertyRecordRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rec := &interval.Record{
			ID:    vc.IntervalID{Proc: r.Intn(16), Index: vc.Index(r.Uint32() % 1000)},
			VC:    vc.New(1 + r.Intn(8)),
			Epoch: int32(r.Intn(100)),
		}
		for i := range rec.VC {
			rec.VC[i] = vc.Index(r.Uint32() % 1000)
		}
		for i := 0; i < r.Intn(6); i++ {
			rec.WriteNotices = append(rec.WriteNotices, mem.PageID(r.Intn(512)))
		}
		for i := 0; i < r.Intn(6); i++ {
			rec.ReadNotices = append(rec.ReadNotices, mem.PageID(r.Intn(512)))
		}
		m := &AcquireGrant{Lock: int32(r.Intn(64)), Intervals: []*interval.Record{rec}}
		got, err := Unmarshal(Marshal(m))
		if err != nil {
			return false
		}
		g := got.(*AcquireGrant)
		return g.Lock == m.Lock && len(g.Intervals) == 1 && reflect.DeepEqual(g.Intervals[0], rec)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: decoder primitives round-trip arbitrary values.
func TestPropertyPrimitives(t *testing.T) {
	f := func(a uint8, b uint16, c uint32, d uint64, e int32, g int64, blob []byte) bool {
		var enc Encoder
		enc.U8(a)
		enc.U16(b)
		enc.U32(c)
		enc.U64(d)
		enc.I32(e)
		enc.I64(g)
		enc.Blob(blob)
		dec := NewDecoder(enc.Bytes())
		ok := dec.U8() == a && dec.U16() == b && dec.U32() == c && dec.U64() == d &&
			dec.I32() == e && dec.I64() == g
		got := dec.Blob()
		if len(blob) == 0 {
			ok = ok && len(got) == 0
		} else {
			ok = ok && reflect.DeepEqual(got, blob)
		}
		return ok && dec.Done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTypeString(t *testing.T) {
	if TAcquireReq.String() != "AcquireReq" {
		t.Errorf("String = %q", TAcquireReq.String())
	}
	if Type(200).String() == "" {
		t.Error("unknown type has empty string")
	}
}
