package msg

import (
	"testing"

	"lrcrace/internal/mem"
)

// FuzzUnmarshal: arbitrary bytes must never panic the decoder, and
// anything it accepts must survive a re-encode/re-decode round trip of the
// same type.
func FuzzUnmarshal(f *testing.F) {
	seeds := []Message{
		&AcquireReq{Lock: 3, VC: []uint32{1, 2, 3}},
		&AcquireGrant{Lock: 1, Intervals: nil},
		&PageReply{Page: 2, Data: []byte{1, 2, 3, 4}},
		&BarrierRelease{Epoch: 1, GlobalVC: []uint32{5}, NeedBitmaps: true},
		&DiffFlush{Page: 9, Entries: []DiffEntry{{Word: 1, Val: 2}}},
		&Inval{Pages: []mem.PageID{3, 4, 5}},
		&BitmapReply{Epoch: 2, Entries: []BitmapEntry{{Proc: 1, Index: 2, Page: 3, Read: mem.NewBitmap(64)}}},
		&RelData{Seq: 9, Ack: 4, Payload: Marshal(&PageReq{Page: 1, Write: true})},
		&RelAck{Ack: 11},
		&BarrierRelease{Epoch: 3, GlobalVC: []uint32{7}, ShardOwner: []int32{0, 2, 1}, NeedBitmaps: true},
		&ShardResult{Epoch: 4, BitmapsCompared: 8, WordOverlaps: 2},
		&TreeArrive{BarrierArrive: BarrierArrive{Epoch: 2, VC: []uint32{1, 2}}},
		&TreeReduce{Epoch: 2, VC: []uint32{3, 4}, MinArr: 17, PairComparisons: 5, NoticesScanned: 12},
		&TreeRelease{BarrierRelease: BarrierRelease{Epoch: 2, GlobalVC: []uint32{6}, NeedBitmaps: true}},
	}
	for _, m := range seeds {
		f.Add(Marshal(m))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0x00, 0x01})

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Unmarshal(data)
		if err != nil {
			return // rejected: fine
		}
		re := Marshal(m)
		m2, err := Unmarshal(re)
		if err != nil {
			t.Fatalf("re-decode of accepted message failed: %v", err)
		}
		if m2.Type() != m.Type() {
			t.Fatalf("type changed across round trip: %v vs %v", m.Type(), m2.Type())
		}
	})
}
