package msg

import (
	"fmt"

	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
)

// Type discriminates wire messages.
type Type uint8

const (
	TInvalid Type = iota

	// Lock protocol (3-hop: requester → manager → last holder → requester).
	TAcquireReq
	TAcquireFwd
	TAcquireGrant

	// Page coherence.
	TPageReq   // fault: fetch a copy (Write selects ownership transfer under single-writer)
	TPageFwd   // home directory forwards the request to the current owner
	TPageReply // page contents (plus ownership under single-writer writes)

	// Multi-writer (home-based) protocol.
	TDiffFlush // releaser sends per-page diffs to the page's home
	TDiffAck

	// Eager release consistency: invalidations pushed at release.
	TInval
	TInvalAck

	// Barrier protocol, including the race detector's extra round.
	TBarrierArrive
	TBarrierRelease
	TBitmapReply
	TBarrierDone

	// Reliability sublayer (internal/reliable): CVM-style end-to-end
	// retransmission over a lossy wire. RelData wraps one marshaled
	// protocol message with a per-link sequence number and a piggybacked
	// cumulative acknowledgment; RelAck is a pure acknowledgment sent when
	// there is no reverse traffic to ride on.
	TRelData
	TRelAck

	// Sharded race check (Config.ShardedCheck): a shard owner's — or an
	// interior reduction-tree node's — merged race candidates and
	// comparison-work counters, sent to its tree parent.
	TShardResult

	// Combining-tree barrier (Config.BarrierTree): a leaf's arrival at its
	// tree parent, an interior node's merged subtree reduction to its
	// parent, and the root's release cascading back down hop by hop.
	TTreeArrive
	TTreeReduce
	TTreeRelease
)

var typeNames = map[Type]string{
	TAcquireReq: "AcquireReq", TAcquireFwd: "AcquireFwd", TAcquireGrant: "AcquireGrant",
	TPageReq: "PageReq", TPageFwd: "PageFwd", TPageReply: "PageReply",
	TDiffFlush: "DiffFlush", TDiffAck: "DiffAck",
	TInval: "Inval", TInvalAck: "InvalAck",
	TBarrierArrive: "BarrierArrive", TBarrierRelease: "BarrierRelease",
	TBitmapReply: "BitmapReply", TBarrierDone: "BarrierDone",
	TRelData: "RelData", TRelAck: "RelAck",
	TShardResult: "ShardResult",
	TTreeArrive:  "TreeArrive", TTreeReduce: "TreeReduce", TTreeRelease: "TreeRelease",
}

func (t Type) String() string {
	if s, ok := typeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// NumTypes bounds Type values for stats arrays.
const NumTypes = int(TTreeRelease) + 1

// Message is a wire message.
type Message interface {
	Type() Type
	encode(e *Encoder)
}

// Marshal serializes m with a leading type byte.
func Marshal(m Message) []byte {
	var e Encoder
	e.U8(uint8(m.Type()))
	m.encode(&e)
	return e.Bytes()
}

// Unmarshal parses a buffer produced by Marshal.
func Unmarshal(b []byte) (Message, error) {
	d := NewDecoder(b)
	t := Type(d.U8())
	var m Message
	switch t {
	case TAcquireReq:
		m = decodeAcquireReq(d)
	case TAcquireFwd:
		m = decodeAcquireFwd(d)
	case TAcquireGrant:
		m = decodeAcquireGrant(d)
	case TPageReq:
		m = decodePageReq(d)
	case TPageFwd:
		m = decodePageFwd(d)
	case TPageReply:
		m = decodePageReply(d)
	case TDiffFlush:
		m = decodeDiffFlush(d)
	case TDiffAck:
		m = &DiffAck{}
	case TInval:
		m = decodeInval(d)
	case TInvalAck:
		m = &InvalAck{}
	case TBarrierArrive:
		m = decodeBarrierArrive(d)
	case TBarrierRelease:
		m = decodeBarrierRelease(d)
	case TBitmapReply:
		m = decodeBitmapReply(d)
	case TBarrierDone:
		m = decodeBarrierDone(d)
	case TRelData:
		m = decodeRelData(d)
	case TRelAck:
		m = &RelAck{Ack: d.U32()}
	case TShardResult:
		m = decodeShardResult(d)
	case TTreeArrive:
		m = &TreeArrive{BarrierArrive: *decodeBarrierArrive(d)}
	case TTreeReduce:
		m = decodeTreeReduce(d)
	case TTreeRelease:
		m = &TreeRelease{BarrierRelease: *decodeBarrierRelease(d)}
	default:
		return nil, fmt.Errorf("msg: unknown type %d: %w", uint8(t), ErrCorrupt)
	}
	if err := finish(d, t); err != nil {
		return nil, err
	}
	return m, nil
}

// --- interval record encoding ---

// EncodeRecord writes one interval record through e — the same encoding the
// lock-grant and barrier messages use. Exported so the checkpoint codec
// (internal/dsm) can serialize interval logs byte-compatibly with the wire.
func EncodeRecord(e *Encoder, r *interval.Record) {
	e.IntervalID(r.ID)
	e.VC(r.VC)
	e.I32(r.Epoch)
	e.Pages(r.WriteNotices)
	e.Pages(r.ReadNotices)
}

// DecodeRecord is the inverse of EncodeRecord.
func DecodeRecord(d *Decoder) *interval.Record {
	r := &interval.Record{}
	r.ID = d.IntervalID()
	r.VC = d.VC()
	r.Epoch = d.I32()
	r.WriteNotices = d.Pages()
	r.ReadNotices = d.Pages()
	return r
}

func encodeRecord(e *Encoder, r *interval.Record) { EncodeRecord(e, r) }

func decodeRecord(d *Decoder) *interval.Record { return DecodeRecord(d) }

func encodeRecords(e *Encoder, rs []*interval.Record) {
	e.U32(uint32(len(rs)))
	for _, r := range rs {
		encodeRecord(e, r)
	}
}

func decodeRecords(d *Decoder) []*interval.Record {
	n := int(d.U32())
	if d.err2(n) { // each record is >1 byte; cheap sanity bound
		return nil
	}
	rs := make([]*interval.Record, 0, n)
	for i := 0; i < n; i++ {
		rs = append(rs, decodeRecord(d))
	}
	return rs
}

// RecordReadNoticeBytes returns the wire bytes attributable to read notices
// in a set of records — the bandwidth the race detector adds to
// synchronization messages (Table 3, "Msg Ohead").
func RecordReadNoticeBytes(rs []*interval.Record) int {
	n := 0
	for _, r := range rs {
		n += NoticeSize * len(r.ReadNotices)
	}
	return n
}

// --- lock messages ---

// AcquireReq asks the lock's manager for lock Lock; VC is the requester's
// current version vector, which the eventual granter uses to compute the
// interval delta to piggyback.
type AcquireReq struct {
	Lock int32
	VC   []uint32
}

func (*AcquireReq) Type() Type { return TAcquireReq }
func (m *AcquireReq) encode(e *Encoder) {
	e.I32(m.Lock)
	e.U16(uint16(len(m.VC)))
	for _, x := range m.VC {
		e.U32(x)
	}
}
func decodeAcquireReq(d *Decoder) *AcquireReq {
	m := &AcquireReq{Lock: d.I32()}
	n := int(d.U16())
	if d.err2(4 * n) {
		return m
	}
	m.VC = make([]uint32, n)
	for i := range m.VC {
		m.VC[i] = d.U32()
	}
	return m
}

// AcquireFwd is the manager forwarding a request to the last holder.
type AcquireFwd struct {
	Lock      int32
	Requester int32
	VC        []uint32
}

func (*AcquireFwd) Type() Type { return TAcquireFwd }
func (m *AcquireFwd) encode(e *Encoder) {
	e.I32(m.Lock)
	e.I32(m.Requester)
	e.U16(uint16(len(m.VC)))
	for _, x := range m.VC {
		e.U32(x)
	}
}
func decodeAcquireFwd(d *Decoder) *AcquireFwd {
	m := &AcquireFwd{Lock: d.I32(), Requester: d.I32()}
	n := int(d.U16())
	if d.err2(4 * n) {
		return m
	}
	m.VC = make([]uint32, n)
	for i := range m.VC {
		m.VC[i] = d.U32()
	}
	return m
}

// AcquireGrant hands the lock to the requester, carrying the interval
// records the granter has seen but the requester has not (including their
// write notices and, for race detection, read notices).
type AcquireGrant struct {
	Lock      int32
	Intervals []*interval.Record
}

func (*AcquireGrant) Type() Type { return TAcquireGrant }
func (m *AcquireGrant) encode(e *Encoder) {
	e.I32(m.Lock)
	encodeRecords(e, m.Intervals)
}
func decodeAcquireGrant(d *Decoder) *AcquireGrant {
	return &AcquireGrant{Lock: d.I32(), Intervals: decodeRecords(d)}
}

// --- page messages ---

// PageReq is a page-fault fetch, sent to the page's home. Under the
// single-writer protocol Write requests ownership migration.
type PageReq struct {
	Page  mem.PageID
	Write bool
}

func (*PageReq) Type() Type { return TPageReq }
func (m *PageReq) encode(e *Encoder) {
	e.I32(int32(m.Page))
	if m.Write {
		e.U8(1)
	} else {
		e.U8(0)
	}
}
func decodePageReq(d *Decoder) *PageReq {
	return &PageReq{Page: mem.PageID(d.I32()), Write: d.U8() == 1}
}

// PageFwd is the home directory forwarding a fault to the current owner.
type PageFwd struct {
	Page      mem.PageID
	Requester int32
	Write     bool
}

func (*PageFwd) Type() Type { return TPageFwd }
func (m *PageFwd) encode(e *Encoder) {
	e.I32(int32(m.Page))
	e.I32(m.Requester)
	if m.Write {
		e.U8(1)
	} else {
		e.U8(0)
	}
}
func decodePageFwd(d *Decoder) *PageFwd {
	return &PageFwd{Page: mem.PageID(d.I32()), Requester: d.I32(), Write: d.U8() == 1}
}

// PageReply delivers page contents; Ownership marks a single-writer
// ownership transfer.
type PageReply struct {
	Page      mem.PageID
	Ownership bool
	Data      []byte
}

func (*PageReply) Type() Type { return TPageReply }
func (m *PageReply) encode(e *Encoder) {
	e.I32(int32(m.Page))
	if m.Ownership {
		e.U8(1)
	} else {
		e.U8(0)
	}
	e.Blob(m.Data)
}
func decodePageReply(d *Decoder) *PageReply {
	return &PageReply{Page: mem.PageID(d.I32()), Ownership: d.U8() == 1, Data: d.Blob()}
}

// --- multi-writer diffs ---

// DiffEntry is one modified word of a page: index and new value.
type DiffEntry struct {
	Word uint32
	Val  uint64
}

// DiffFlush carries a page's diff (modified words since the twin was made)
// from a releasing writer to the page's home.
type DiffFlush struct {
	Page    mem.PageID
	Entries []DiffEntry
}

func (*DiffFlush) Type() Type { return TDiffFlush }
func (m *DiffFlush) encode(e *Encoder) {
	e.I32(int32(m.Page))
	e.U32(uint32(len(m.Entries)))
	for _, de := range m.Entries {
		e.U32(de.Word)
		e.U64(de.Val)
	}
}
func decodeDiffFlush(d *Decoder) *DiffFlush {
	m := &DiffFlush{Page: mem.PageID(d.I32())}
	n := int(d.U32())
	if d.err2(12 * n) {
		return m
	}
	m.Entries = make([]DiffEntry, n)
	for i := range m.Entries {
		m.Entries[i] = DiffEntry{Word: d.U32(), Val: d.U64()}
	}
	return m
}

// DiffAck acknowledges a DiffFlush (releases must not complete before the
// home has applied the diff).
type DiffAck struct{}

func (*DiffAck) Type() Type      { return TDiffAck }
func (*DiffAck) encode(*Encoder) {}

// Inval carries the page invalidations a releaser pushes to every other
// process under eager release consistency (ERC). Under LRC the same
// information travels lazily as write notices on synchronization messages;
// the eager broadcast is exactly the traffic LRC exists to avoid.
type Inval struct {
	Pages []mem.PageID
}

func (*Inval) Type() Type          { return TInval }
func (m *Inval) encode(e *Encoder) { e.Pages(m.Pages) }
func decodeInval(d *Decoder) *Inval {
	return &Inval{Pages: d.Pages()}
}

// InvalAck acknowledges an Inval: an ERC release may not complete until
// every process has applied the invalidations.
type InvalAck struct{}

func (*InvalAck) Type() Type      { return TInvalAck }
func (*InvalAck) encode(*Encoder) {}

// --- barrier messages ---

// BarrierArrive carries a worker's epoch intervals (with read and write
// notices) and current vector to the barrier master.
type BarrierArrive struct {
	Epoch     int32
	VC        []uint32
	Intervals []*interval.Record
}

func (*BarrierArrive) Type() Type { return TBarrierArrive }
func (m *BarrierArrive) encode(e *Encoder) {
	e.I32(m.Epoch)
	e.U16(uint16(len(m.VC)))
	for _, x := range m.VC {
		e.U32(x)
	}
	encodeRecords(e, m.Intervals)
}
func decodeBarrierArrive(d *Decoder) *BarrierArrive {
	m := &BarrierArrive{Epoch: d.I32()}
	n := int(d.U16())
	if d.err2(4 * n) {
		return m
	}
	m.VC = make([]uint32, n)
	for i := range m.VC {
		m.VC[i] = d.U32()
	}
	m.Intervals = decodeRecords(d)
	return m
}

// CheckEntry mirrors race.CheckEntry on the wire.

// BarrierRelease is the master's release: the union of epoch intervals (so
// every process can apply all write notices), the new global vector, and
// the race detector's check list. NeedBitmaps tells workers whether the
// extra bitmap round will happen.
//
// Under Config.ShardedCheck, ShardOwner is parallel to Check and names the
// process that owns each entry's comparison (race.PartitionCheckList); the
// distinct owners are the shard owners every process sends its BitmapReply
// slices to, instead of N-to-1 at the master. Empty ShardOwner means the
// serial check: all bitmaps go to process 0.
type BarrierRelease struct {
	Epoch       int32
	GlobalVC    []uint32
	Intervals   []*interval.Record
	Check       []race.CheckEntry
	ShardOwner  []int32
	NeedBitmaps bool
}

func (*BarrierRelease) Type() Type { return TBarrierRelease }
func (m *BarrierRelease) encode(e *Encoder) {
	e.I32(m.Epoch)
	e.U16(uint16(len(m.GlobalVC)))
	for _, x := range m.GlobalVC {
		e.U32(x)
	}
	encodeRecords(e, m.Intervals)
	e.U32(uint32(len(m.Check)))
	for _, c := range m.Check {
		e.IntervalID(c.A)
		e.IntervalID(c.B)
		e.I32(int32(c.Page))
	}
	e.U32(uint32(len(m.ShardOwner)))
	for _, o := range m.ShardOwner {
		e.I32(o)
	}
	if m.NeedBitmaps {
		e.U8(1)
	} else {
		e.U8(0)
	}
}
func decodeBarrierRelease(d *Decoder) *BarrierRelease {
	m := &BarrierRelease{Epoch: d.I32()}
	n := int(d.U16())
	if d.err2(4 * n) {
		return m
	}
	m.GlobalVC = make([]uint32, n)
	for i := range m.GlobalVC {
		m.GlobalVC[i] = d.U32()
	}
	m.Intervals = decodeRecords(d)
	nc := int(d.U32())
	if d.err2(nc) {
		return m
	}
	m.Check = make([]race.CheckEntry, 0, nc)
	for i := 0; i < nc; i++ {
		var c race.CheckEntry
		c.A = d.IntervalID()
		c.B = d.IntervalID()
		c.Page = mem.PageID(d.I32())
		m.Check = append(m.Check, c)
	}
	no := int(d.U32())
	if d.err2(4 * no) {
		return m
	}
	if no > 0 {
		m.ShardOwner = make([]int32, no)
		for i := range m.ShardOwner {
			m.ShardOwner[i] = d.I32()
		}
	}
	m.NeedBitmaps = d.U8() == 1
	return m
}

// BitmapEntry returns the access bitmaps of one (interval, page) named by
// the check list.
type BitmapEntry struct {
	Proc  int32
	Index uint32
	Page  mem.PageID
	Read  mem.Bitmap
	Write mem.Bitmap
}

// BitmapReply carries a worker's bitmaps for the check-list entries that
// name its intervals — the second barrier round.
type BitmapReply struct {
	Epoch   int32
	Entries []BitmapEntry
}

func (*BitmapReply) Type() Type { return TBitmapReply }
func (m *BitmapReply) encode(e *Encoder) {
	e.I32(m.Epoch)
	e.U32(uint32(len(m.Entries)))
	for _, be := range m.Entries {
		e.I32(be.Proc)
		e.U32(be.Index)
		e.I32(int32(be.Page))
		e.Bitmap(be.Read)
		e.Bitmap(be.Write)
	}
}
func decodeBitmapReply(d *Decoder) *BitmapReply {
	m := &BitmapReply{Epoch: d.I32()}
	n := int(d.U32())
	if d.err2(n) {
		return m
	}
	m.Entries = make([]BitmapEntry, 0, n)
	for i := 0; i < n; i++ {
		var be BitmapEntry
		be.Proc = d.I32()
		be.Index = d.U32()
		be.Page = mem.PageID(d.I32())
		be.Read = d.Bitmap()
		be.Write = d.Bitmap()
		m.Entries = append(m.Entries, be)
	}
	return m
}

// --- reliability sublayer envelopes ---

// RelData is one reliably-delivered protocol message on a directed link:
// Payload is the marshaled inner message, Seq its per-link sequence number
// (first message is 1), and Ack the cumulative acknowledgment of the
// reverse direction (every message of the peer's stream up to and
// including Ack has been received) — the piggyback CVM uses to avoid pure
// acknowledgment traffic on request/reply exchanges.
type RelData struct {
	Seq     uint32
	Ack     uint32
	Payload []byte
}

func (*RelData) Type() Type { return TRelData }
func (m *RelData) encode(e *Encoder) {
	e.U32(m.Seq)
	e.U32(m.Ack)
	e.Blob(m.Payload)
}
func decodeRelData(d *Decoder) *RelData {
	return &RelData{Seq: d.U32(), Ack: d.U32(), Payload: d.Blob()}
}

// RelAck is a pure cumulative acknowledgment, sent by a delayed-ack timer
// (or on receipt of a duplicate) when no reverse RelData is available to
// piggyback on.
type RelAck struct {
	Ack uint32
}

func (*RelAck) Type() Type          { return TRelAck }
func (m *RelAck) encode(e *Encoder) { e.U32(m.Ack) }

// BarrierDone ends the bitmap round, delivering the races the master found
// in this epoch; workers may now discard the epoch's bitmaps.
type BarrierDone struct {
	Epoch int32
	Races []race.Report
}

func (*BarrierDone) Type() Type { return TBarrierDone }
func (m *BarrierDone) encode(e *Encoder) {
	e.I32(m.Epoch)
	e.U32(uint32(len(m.Races)))
	for _, r := range m.Races {
		EncodeReport(e, r)
	}
}
func decodeBarrierDone(d *Decoder) *BarrierDone {
	m := &BarrierDone{Epoch: d.I32()}
	n := int(d.U32())
	if d.err2(n) {
		return m
	}
	m.Races = make([]race.Report, 0, n)
	for i := 0; i < n; i++ {
		m.Races = append(m.Races, DecodeReport(d))
	}
	return m
}

// ShardResult carries a subtree's merged race candidates up the binary
// reduction tree of the sharded check: the sender's own shard comparison
// output (race.CompareShard) merged with the results of its tree children,
// plus the comparison-work counters the master needs to keep race.Stats —
// and therefore checkpoints — identical to the serial path's.
type ShardResult struct {
	Epoch           int32
	Races           []race.Report
	BitmapsCompared int64
	WordOverlaps    int64
}

// Type implements Message.
func (*ShardResult) Type() Type { return TShardResult }
func (m *ShardResult) encode(e *Encoder) {
	e.I32(m.Epoch)
	e.U32(uint32(len(m.Races)))
	for _, r := range m.Races {
		EncodeReport(e, r)
	}
	e.U64(uint64(m.BitmapsCompared))
	e.U64(uint64(m.WordOverlaps))
}
func decodeShardResult(d *Decoder) *ShardResult {
	m := &ShardResult{Epoch: d.I32()}
	n := int(d.U32())
	if d.err2(n) {
		return m
	}
	m.Races = make([]race.Report, 0, n)
	for i := 0; i < n; i++ {
		m.Races = append(m.Races, DecodeReport(d))
	}
	m.BitmapsCompared = int64(d.U64())
	m.WordOverlaps = int64(d.U64())
	return m
}

// --- combining-tree barrier messages ---

// TreeArrive is a process's barrier arrival under the combining-tree
// barrier (Config.BarrierTree): the same payload as BarrierArrive — epoch,
// current vector, and the epoch's interval records with their notices —
// but addressed to the process's tree parent rather than the master, where
// it is merged into the subtree reduction instead of a flat count.
type TreeArrive struct {
	BarrierArrive
}

// Type implements Message.
func (*TreeArrive) Type() Type { return TTreeArrive }

// TreeReduce carries a fully-reduced subtree up one hop of the combining
// tree: the merged interval records and vector of every process in the
// sender's subtree, the subtree's earliest arrival (for the skew gauge),
// the partial check list the sender built over its cross-contribution
// pairs (race.BuildPartialCheckList), and that build's work counters so
// the root's race.Stats stay byte-identical to the serial master's.
type TreeReduce struct {
	Epoch     int32
	VC        []uint32
	Intervals []*interval.Record
	MinArr    int64
	Entries   []race.CheckEntry

	PairComparisons  int64
	ConcurrentPairs  int64
	OverlappingPairs int64
	NoticesScanned   int64
}

// Type implements Message.
func (*TreeReduce) Type() Type { return TTreeReduce }
func (m *TreeReduce) encode(e *Encoder) {
	e.I32(m.Epoch)
	e.U16(uint16(len(m.VC)))
	for _, x := range m.VC {
		e.U32(x)
	}
	encodeRecords(e, m.Intervals)
	e.I64(m.MinArr)
	e.U32(uint32(len(m.Entries)))
	for _, c := range m.Entries {
		e.IntervalID(c.A)
		e.IntervalID(c.B)
		e.I32(int32(c.Page))
	}
	e.I64(m.PairComparisons)
	e.I64(m.ConcurrentPairs)
	e.I64(m.OverlappingPairs)
	e.I64(m.NoticesScanned)
}
func decodeTreeReduce(d *Decoder) *TreeReduce {
	m := &TreeReduce{Epoch: d.I32()}
	n := int(d.U16())
	if d.err2(4 * n) {
		return m
	}
	m.VC = make([]uint32, n)
	for i := range m.VC {
		m.VC[i] = d.U32()
	}
	m.Intervals = decodeRecords(d)
	m.MinArr = d.I64()
	nc := int(d.U32())
	if d.err2(nc) {
		return m
	}
	m.Entries = make([]race.CheckEntry, 0, nc)
	for i := 0; i < nc; i++ {
		var c race.CheckEntry
		c.A = d.IntervalID()
		c.B = d.IntervalID()
		c.Page = mem.PageID(d.I32())
		m.Entries = append(m.Entries, c)
	}
	m.PairComparisons = d.I64()
	m.ConcurrentPairs = d.I64()
	m.OverlappingPairs = d.I64()
	m.NoticesScanned = d.I64()
	return m
}

// TreeRelease is the root's release cascading down the combining tree:
// the same payload as BarrierRelease, but each interior node forwards a
// copy to its children before departing, so the release reaches every
// process in tree-depth hops instead of one N-way broadcast.
type TreeRelease struct {
	BarrierRelease
}

// Type implements Message.
func (*TreeRelease) Type() Type { return TTreeRelease }

// EncodeReport writes one race report through e — the BarrierDone encoding,
// exported for the checkpoint codec.
func EncodeReport(e *Encoder, r race.Report) {
	e.I32(int32(r.Page))
	e.U32(uint32(r.Word))
	e.U64(uint64(r.Addr))
	e.I32(r.Epoch)
	e.IntervalID(r.A.Interval)
	e.U8(uint8(r.A.Kind))
	e.IntervalID(r.B.Interval)
	e.U8(uint8(r.B.Kind))
}

// DecodeReport is the inverse of EncodeReport.
func DecodeReport(d *Decoder) race.Report {
	var r race.Report
	r.Page = mem.PageID(d.I32())
	r.Word = int(d.U32())
	r.Addr = mem.Addr(d.U64())
	r.Epoch = d.I32()
	r.A.Interval = d.IntervalID()
	r.A.Kind = race.AccessKind(d.U8())
	r.B.Interval = d.IntervalID()
	r.B.Kind = race.AccessKind(d.U8())
	return r
}
