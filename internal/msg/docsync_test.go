package msg

import (
	"os"
	"regexp"
	"testing"
)

// TestProtocolDocListsEveryMessageType pins docs/PROTOCOL.md's message-type
// table to the live Type constants: a type added (or renamed) here without
// a row there — or a documented row with no backing constant — fails.
func TestProtocolDocListsEveryMessageType(t *testing.T) {
	doc, err := os.ReadFile("../../docs/PROTOCOL.md")
	if err != nil {
		t.Fatal(err)
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([A-Za-z]+)` \\|")
	documented := map[string]bool{}
	for _, m := range rowRe.FindAllStringSubmatch(string(doc), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no message-type table rows found in docs/PROTOCOL.md")
	}
	for ty := TInvalid + 1; int(ty) < NumTypes; ty++ {
		if !documented[ty.String()] {
			t.Errorf("message type %s has no row in docs/PROTOCOL.md's table", ty)
		}
		delete(documented, ty.String())
	}
	for name := range documented {
		t.Errorf("docs/PROTOCOL.md documents %q, which is not a live msg.Type", name)
	}
}
