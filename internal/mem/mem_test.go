package mem

import (
	"testing"
	"testing/quick"
)

func TestNewLayoutValidation(t *testing.T) {
	if _, err := NewLayout(100, 0); err == nil {
		t.Error("zero page size accepted")
	}
	if _, err := NewLayout(100, 12); err == nil {
		t.Error("page size not multiple of word size accepted")
	}
	if _, err := NewLayout(0, 64); err == nil {
		t.Error("zero segment size accepted")
	}
	l, err := NewLayout(100, 64)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumPages != 2 {
		t.Errorf("NumPages = %d, want 2 (rounded up)", l.NumPages)
	}
	if l.Size() != 128 {
		t.Errorf("Size = %d, want 128", l.Size())
	}
}

func TestLayoutGeometry(t *testing.T) {
	l, _ := NewLayout(4*DefaultPageSize, DefaultPageSize)
	if l.WordsPerPage() != 1024 {
		t.Errorf("WordsPerPage = %d, want 1024", l.WordsPerPage())
	}
	a := Addr(DefaultPageSize + 3*WordSize)
	if l.Page(a) != 1 {
		t.Errorf("Page(%d) = %d, want 1", a, l.Page(a))
	}
	if l.WordInPage(a) != 3 {
		t.Errorf("WordInPage(%d) = %d, want 3", a, l.WordInPage(a))
	}
	if l.PageBase(2) != Addr(2*DefaultPageSize) {
		t.Errorf("PageBase(2) = %d", l.PageBase(2))
	}
	if !l.Contains(Addr(l.Size() - WordSize)) {
		t.Error("last word reported outside segment")
	}
	if l.Contains(Addr(l.Size())) {
		t.Error("address past end reported inside segment")
	}
}

func TestSegmentWordRoundTrip(t *testing.T) {
	l, _ := NewLayout(2*DefaultPageSize, DefaultPageSize)
	s := NewSegment(l)
	vals := map[Addr]uint64{
		0:                  0xdeadbeefcafef00d,
		8:                  1,
		Addr(l.Size() - 8): ^uint64(0),
	}
	for a, v := range vals {
		s.SetWord(a, v)
	}
	for a, v := range vals {
		if got := s.Word(a); got != v {
			t.Errorf("Word(%d) = %#x, want %#x", a, got, v)
		}
	}
}

func TestSegmentPageCopy(t *testing.T) {
	l, _ := NewLayout(2*256, 256)
	s := NewSegment(l)
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	s.CopyPageIn(1, src)
	if s.Word(256) != 0x0706050403020100 {
		t.Errorf("word after CopyPageIn = %#x", s.Word(256))
	}
	got := s.PageBytes(1)
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("PageBytes[%d] = %d, want %d", i, got[i], src[i])
		}
	}
	// Page 0 untouched.
	if s.Word(0) != 0 {
		t.Errorf("page 0 corrupted: %#x", s.Word(0))
	}
}

func TestPropertyWordRoundTrip(t *testing.T) {
	l, _ := NewLayout(DefaultPageSize, DefaultPageSize)
	s := NewSegment(l)
	f := func(w uint16, v uint64) bool {
		a := Addr(int(w) % l.WordsPerPage() * WordSize)
		s.SetWord(a, v)
		return s.Word(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(1024)
	if len(b) != 16 {
		t.Errorf("len = %d, want 16", len(b))
	}
	if !b.Empty() {
		t.Error("new bitmap not empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(1023)
	for _, w := range []int{0, 63, 64, 1023} {
		if !b.Get(w) {
			t.Errorf("Get(%d) = false", w)
		}
	}
	if b.Get(1) || b.Get(512) {
		t.Error("unset bits reported set")
	}
	if b.Count() != 4 {
		t.Errorf("Count = %d, want 4", b.Count())
	}
	if b.Empty() {
		t.Error("non-empty bitmap reported empty")
	}
	b.Reset()
	if !b.Empty() {
		t.Error("Reset did not clear")
	}
}

func TestBitmapIntersectsAndOverlap(t *testing.T) {
	a := NewBitmap(256)
	b := NewBitmap(256)
	a.Set(5)
	a.Set(100)
	a.Set(200)
	b.Set(6)
	b.Set(100)
	b.Set(200)
	if !a.Intersects(b) {
		t.Error("overlapping bitmaps reported disjoint")
	}
	words := a.Overlap(b, nil)
	if len(words) != 2 || words[0] != 100 || words[1] != 200 {
		t.Errorf("Overlap = %v, want [100 200]", words)
	}

	c := NewBitmap(256)
	c.Set(7)
	if a.Intersects(c) {
		t.Error("disjoint bitmaps reported intersecting — false sharing misdiagnosed as race")
	}
	if w := a.Overlap(c, nil); len(w) != 0 {
		t.Errorf("Overlap of disjoint = %v", w)
	}
}

func TestBitmapOrClone(t *testing.T) {
	a := NewBitmap(128)
	b := NewBitmap(128)
	a.Set(1)
	b.Set(2)
	c := a.Clone()
	c.Or(b)
	if !c.Get(1) || !c.Get(2) {
		t.Error("Or missing bits")
	}
	if a.Get(2) {
		t.Error("Clone aliases original")
	}
}

// Property: Overlap(a,b) = exactly the set positions counted by popcount of
// the AND, and Intersects agrees with non-empty Overlap.
func TestPropertyOverlapConsistent(t *testing.T) {
	f := func(xs, ys [4]uint64) bool {
		a := Bitmap(xs[:])
		b := Bitmap(ys[:])
		words := a.Overlap(b, nil)
		n := 0
		for i := 0; i < 256; i++ {
			if a.Get(i) && b.Get(i) {
				if n >= len(words) || words[n] != i {
					return false
				}
				n++
			}
		}
		if n != len(words) {
			return false
		}
		return a.Intersects(b) == (len(words) > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
