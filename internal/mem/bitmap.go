package mem

import "math/bits"

// Bitmap records which words of a page were accessed during one interval.
// One bit per word; for the default 8 KB page / 8-byte word geometry that is
// 1024 bits = 128 bytes, matching the per-page bitmaps of the paper's
// instrumentation. Bitmap comparison — the final arbiter of false vs. true
// sharing — is a constant-time process dependent only on page size.
type Bitmap []uint64

// NewBitmap returns a zeroed bitmap for nwords words.
func NewBitmap(nwords int) Bitmap {
	return make(Bitmap, (nwords+63)/64)
}

// Set marks word w as accessed.
func (b Bitmap) Set(w int) { b[w>>6] |= 1 << uint(w&63) }

// Get reports whether word w is marked.
func (b Bitmap) Get(w int) bool { return b[w>>6]&(1<<uint(w&63)) != 0 }

// Empty reports whether no word is marked.
func (b Bitmap) Empty() bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// Count returns the number of marked words.
func (b Bitmap) Count() int {
	n := 0
	for _, x := range b {
		n += bits.OnesCount64(x)
	}
	return n
}

// Or merges o into b.
func (b Bitmap) Or(o Bitmap) {
	for i, x := range o {
		b[i] |= x
	}
}

// Clone returns an independent copy.
func (b Bitmap) Clone() Bitmap {
	c := make(Bitmap, len(b))
	copy(c, b)
	return c
}

// Reset clears all bits.
func (b Bitmap) Reset() {
	for i := range b {
		b[i] = 0
	}
}

// Intersects reports whether b and o share any marked word — the core
// true-sharing test.
func (b Bitmap) Intersects(o Bitmap) bool {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if b[i]&o[i] != 0 {
			return true
		}
	}
	return false
}

// Overlap appends to dst the word indexes marked in both b and o and
// returns the result. These are the words involved in a data race.
func (b Bitmap) Overlap(o Bitmap, dst []int) []int {
	n := len(b)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		x := b[i] & o[i]
		for x != 0 {
			t := bits.TrailingZeros64(x)
			dst = append(dst, i*64+t)
			x &= x - 1
		}
	}
	return dst
}
