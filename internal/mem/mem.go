// Package mem models the shared address space of the DSM: a paged segment
// of bytes, addressed by word, plus the word-granularity access bitmaps the
// race detector uses to distinguish false sharing from true sharing.
//
// Addresses are offsets into the shared segment, which in the paper is the
// dynamically allocated shared data region of the application (CVM allocates
// all shared memory dynamically, which is what allows ATOM to statically
// eliminate accesses through the static-data base register).
package mem

import "fmt"

const (
	// WordSize is the access granularity in bytes. The paper tracks
	// accesses "at the minimum granularity of data accesses, which is
	// typically a single word"; we use 8-byte words, the natural scalar
	// size on the Alpha and of float64, the dominant type in the
	// benchmark applications.
	WordSize = 8

	// DefaultPageSize mirrors the 8 KB pages of the DECstation Alphas used
	// in the paper ("the large page size of the DECstations").
	DefaultPageSize = 8192
)

// Addr is a byte offset into the shared segment.
type Addr uint64

// PageID numbers pages within the segment.
type PageID int32

// Layout describes the paging geometry of a segment.
type Layout struct {
	PageSize int // bytes per page; must be a multiple of WordSize
	NumPages int
}

// NewLayout validates and builds a layout covering size bytes.
func NewLayout(size, pageSize int) (Layout, error) {
	if pageSize <= 0 || pageSize%WordSize != 0 {
		return Layout{}, fmt.Errorf("mem: page size %d not a positive multiple of %d", pageSize, WordSize)
	}
	if size <= 0 {
		return Layout{}, fmt.Errorf("mem: segment size %d not positive", size)
	}
	np := (size + pageSize - 1) / pageSize
	return Layout{PageSize: pageSize, NumPages: np}, nil
}

// Size returns the total byte size of the segment.
func (l Layout) Size() int { return l.PageSize * l.NumPages }

// Page returns the page containing a.
func (l Layout) Page(a Addr) PageID { return PageID(int(a) / l.PageSize) }

// WordInPage returns the word index of a within its page.
func (l Layout) WordInPage(a Addr) int { return (int(a) % l.PageSize) / WordSize }

// PageBase returns the address of the first byte of page p.
func (l Layout) PageBase(p PageID) Addr { return Addr(int(p) * l.PageSize) }

// WordsPerPage returns the number of words per page.
func (l Layout) WordsPerPage() int { return l.PageSize / WordSize }

// Contains reports whether a names a word wholly inside the segment.
func (l Layout) Contains(a Addr) bool {
	return int(a)+WordSize <= l.Size()
}

// Segment is one process's local copy of the shared address space. Each DSM
// process holds its own Segment; coherence traffic (page fetches, diffs)
// moves bytes between them.
type Segment struct {
	Layout
	data []byte
}

// NewSegment allocates a zeroed segment with the given layout.
func NewSegment(l Layout) *Segment {
	return &Segment{Layout: l, data: make([]byte, l.Size())}
}

// Word reads the 8-byte word at a (little-endian).
func (s *Segment) Word(a Addr) uint64 {
	b := s.data[a : a+WordSize]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// SetWord writes the 8-byte word at a (little-endian).
func (s *Segment) SetWord(a Addr, v uint64) {
	b := s.data[a : a+WordSize]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}

// Page returns the byte slice backing page p; the caller must not retain it
// across coherence operations.
func (s *Segment) PageBytes(p PageID) []byte {
	base := int(p) * s.PageSize
	return s.data[base : base+s.PageSize]
}

// CopyPageIn overwrites page p with src (len must equal PageSize).
func (s *Segment) CopyPageIn(p PageID, src []byte) {
	copy(s.PageBytes(p), src)
}
