package interval

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lrcrace/internal/mem"
	"lrcrace/internal/vc"
)

func layout(t *testing.T) mem.Layout {
	t.Helper()
	l, err := mem.NewLayout(8*mem.DefaultPageSize, mem.DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestBuilderFinishProducesSortedNotices(t *testing.T) {
	l := layout(t)
	b := NewBuilder(l)
	store := NewBitmapStore()
	// Touch pages out of order.
	b.NoteWrite(l.PageBase(5))
	b.NoteWrite(l.PageBase(1) + 8)
	b.NoteRead(l.PageBase(7))
	b.NoteRead(l.PageBase(0))
	b.NoteRead(l.PageBase(7) + 16) // same page twice → one notice

	id := vc.IntervalID{Proc: 2, Index: 3}
	r := b.Finish(id, vc.VC{0, 0, 3}, 1, store)

	if len(r.WriteNotices) != 2 || r.WriteNotices[0] != 1 || r.WriteNotices[1] != 5 {
		t.Errorf("write notices = %v, want [1 5]", r.WriteNotices)
	}
	if len(r.ReadNotices) != 2 || r.ReadNotices[0] != 0 || r.ReadNotices[1] != 7 {
		t.Errorf("read notices = %v, want [0 7]", r.ReadNotices)
	}
	if !r.Wrote(5) || r.Wrote(0) {
		t.Error("Wrote membership wrong")
	}
	if !r.Read(7) || r.Read(5) {
		t.Error("Read membership wrong")
	}
	if !b.Empty() {
		t.Error("builder not drained by Finish")
	}

	// Bitmaps landed in the store with the right word bits.
	rd, wr := store.Get(id, 7)
	if rd == nil || !rd.Get(0) || !rd.Get(2) {
		t.Errorf("read bitmap for page 7 wrong: %v", rd)
	}
	if wr != nil {
		t.Error("unexpected write bitmap for read-only page")
	}
	_, wr1 := store.Get(id, 1)
	if wr1 == nil || !wr1.Get(1) {
		t.Error("write bitmap for page 1 wrong")
	}
}

func TestBuilderWrotePage(t *testing.T) {
	l := layout(t)
	b := NewBuilder(l)
	if b.WrotePage(3) {
		t.Error("fresh builder claims written page")
	}
	b.NoteWrite(l.PageBase(3))
	if !b.WrotePage(3) {
		t.Error("WrotePage false after NoteWrite")
	}
	b.NoteRead(l.PageBase(4))
	if b.WrotePage(4) {
		t.Error("read counted as write")
	}
}

func TestOverlapPages(t *testing.T) {
	a := []mem.PageID{1, 3, 5, 9}
	b := []mem.PageID{2, 3, 9, 10}
	got := OverlapPages(a, b, nil)
	if len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Errorf("OverlapPages = %v, want [3 9]", got)
	}
	if got := OverlapPages(a, nil, nil); len(got) != 0 {
		t.Errorf("overlap with empty = %v", got)
	}
}

func TestPropertyOverlapPages(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		toPages := func(s []uint8) []mem.PageID {
			seen := map[mem.PageID]bool{}
			var out []mem.PageID
			for _, x := range s {
				p := mem.PageID(x % 32)
				if !seen[p] {
					seen[p] = true
					out = append(out, p)
				}
			}
			SortPages(out)
			return out
		}
		a, b := toPages(xs), toPages(ys)
		got := OverlapPages(a, b, nil)
		want := map[mem.PageID]bool{}
		for _, p := range a {
			for _, q := range b {
				if p == q {
					want[p] = true
				}
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, p := range got {
			if !want[p] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBitmapStoreDiscard(t *testing.T) {
	l := layout(t)
	store := NewBitmapStore()
	for idx := 1; idx <= 4; idx++ {
		b := NewBuilder(l)
		b.NoteWrite(l.PageBase(mem.PageID(idx)))
		b.Finish(vc.IntervalID{Proc: 0, Index: vc.Index(idx)}, vc.New(1), 0, store)
	}
	otherB := NewBuilder(l)
	otherB.NoteRead(0)
	otherB.Finish(vc.IntervalID{Proc: 1, Index: 2}, vc.New(2), 0, store)

	if store.Len() != 5 {
		t.Fatalf("store len = %d, want 5", store.Len())
	}
	store.DiscardUpTo(0, 2)
	if store.Len() != 3 {
		t.Errorf("after discard len = %d, want 3", store.Len())
	}
	if _, wr := store.Get(vc.IntervalID{Proc: 0, Index: 3}, 3); wr == nil {
		t.Error("interval above horizon discarded")
	}
	if _, wr := store.Get(vc.IntervalID{Proc: 0, Index: 2}, 2); wr != nil {
		t.Error("interval below horizon survived")
	}
	if rd, _ := store.Get(vc.IntervalID{Proc: 1, Index: 2}, 0); rd == nil {
		t.Error("other process's bitmaps discarded")
	}
}

func TestLogDelta(t *testing.T) {
	log := NewLog()
	add := func(p int, i vc.Index) {
		log.Add(&Record{ID: vc.IntervalID{Proc: p, Index: i}, VC: vc.New(3)})
	}
	add(0, 1)
	add(0, 2)
	add(1, 1)
	add(2, 5)

	// A process that has seen σ0^1 and nothing else.
	d := log.Delta(vc.VC{1, 0, 0})
	if len(d) != 3 {
		t.Fatalf("delta len = %d, want 3 (%v)", len(d), d)
	}
	// Deterministic (proc, index) order.
	want := []vc.IntervalID{{Proc: 0, Index: 2}, {Proc: 1, Index: 1}, {Proc: 2, Index: 5}}
	for i, r := range d {
		if r.ID != want[i] {
			t.Errorf("delta[%d] = %v, want %v", i, r.ID, want[i])
		}
	}

	// Fully caught up: empty delta.
	if d := log.Delta(vc.VC{2, 1, 5}); len(d) != 0 {
		t.Errorf("caught-up delta = %v, want empty", d)
	}
}

func TestLogAddIdempotentAndPrune(t *testing.T) {
	log := NewLog()
	r := &Record{ID: vc.IntervalID{Proc: 0, Index: 1}, VC: vc.New(2)}
	log.Add(r)
	log.Add(r.Clone())
	if log.Len() != 1 {
		t.Errorf("len = %d after duplicate add", log.Len())
	}
	log.Add(&Record{ID: vc.IntervalID{Proc: 1, Index: 3}, VC: vc.New(2)})
	log.PruneBefore(vc.VC{1, 2})
	if log.Len() != 1 {
		t.Errorf("len after prune = %d, want 1", log.Len())
	}
	if log.Get(vc.IntervalID{Proc: 1, Index: 3}) == nil {
		t.Error("record above horizon pruned")
	}
	if log.Get(vc.IntervalID{Proc: 0, Index: 1}) != nil {
		t.Error("record below horizon survived")
	}
}

func TestRecordClone(t *testing.T) {
	r := &Record{
		ID:           vc.IntervalID{Proc: 1, Index: 2},
		VC:           vc.VC{1, 2},
		Epoch:        3,
		WriteNotices: []mem.PageID{1, 2},
		ReadNotices:  []mem.PageID{3},
	}
	c := r.Clone()
	c.VC[0] = 99
	c.WriteNotices[0] = 99
	c.ReadNotices[0] = 99
	if r.VC[0] != 1 || r.WriteNotices[0] != 1 || r.ReadNotices[0] != 3 {
		t.Error("Clone shares storage with original")
	}
}

// Property: Delta never returns a record the receiver has seen and always
// returns every record it hasn't.
func TestPropertyDeltaComplete(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nproc := 2 + r.Intn(3)
		log := NewLog()
		max := make([]vc.Index, nproc)
		for n := 0; n < 20; n++ {
			p := r.Intn(nproc)
			max[p]++
			log.Add(&Record{ID: vc.IntervalID{Proc: p, Index: max[p]}, VC: vc.New(nproc)})
		}
		theirs := vc.New(nproc)
		for p := range theirs {
			if max[p] > 0 {
				theirs[p] = vc.Index(r.Intn(int(max[p]) + 1))
			}
		}
		d := log.Delta(theirs)
		got := map[vc.IntervalID]bool{}
		for _, rec := range d {
			if rec.ID.Index <= theirs[rec.ID.Proc] {
				return false // sent something already seen
			}
			got[rec.ID] = true
		}
		for p := 0; p < nproc; p++ {
			for i := theirs[p] + 1; i <= max[p]; i++ {
				if !got[vc.IntervalID{Proc: p, Index: i}] {
					return false // missed an unseen record
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestPropertyBuilderNotices: Finish's notices are sorted, deduplicated,
// and exactly cover the noted pages; the stored bitmaps reproduce the
// noted word set.
func TestPropertyBuilderNotices(t *testing.T) {
	l, err := mem.NewLayout(8*mem.DefaultPageSize, mem.DefaultPageSize)
	if err != nil {
		t.Fatal(err)
	}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		b := NewBuilder(l)
		store := NewBitmapStore()
		wantR := map[mem.Addr]bool{}
		wantW := map[mem.Addr]bool{}
		n := r.Intn(40)
		for i := 0; i < n; i++ {
			a := mem.Addr(r.Intn(8*l.WordsPerPage())) * mem.WordSize
			if r.Intn(2) == 0 {
				b.NoteRead(a)
				wantR[a] = true
			} else {
				b.NoteWrite(a)
				wantW[a] = true
			}
		}
		id := vc.IntervalID{Proc: 0, Index: 1}
		rec := b.Finish(id, vc.New(1), 0, store)

		sortedUnique := func(ps []mem.PageID) bool {
			for i := 1; i < len(ps); i++ {
				if ps[i] <= ps[i-1] {
					return false
				}
			}
			return true
		}
		if !sortedUnique(rec.ReadNotices) || !sortedUnique(rec.WriteNotices) {
			return false
		}
		// Every noted address's page appears; every bitmap bit was noted.
		check := func(want map[mem.Addr]bool, read bool) bool {
			pages := map[mem.PageID]bool{}
			for a := range want {
				pages[l.Page(a)] = true
			}
			notices := rec.WriteNotices
			if read {
				notices = rec.ReadNotices
			}
			if len(notices) != len(pages) {
				return false
			}
			for _, p := range notices {
				if !pages[p] {
					return false
				}
				rd, wr := store.Get(id, p)
				bm := wr
				if read {
					bm = rd
				}
				if bm == nil {
					return false
				}
				for w := 0; w < l.WordsPerPage(); w++ {
					a := l.PageBase(p) + mem.Addr(w*mem.WordSize)
					if bm.Get(w) != want[a] {
						return false
					}
				}
			}
			return true
		}
		return check(wantR, true) && check(wantW, false)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
