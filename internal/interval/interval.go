// Package interval implements LRC interval records and the bookkeeping
// around them: write notices, the read notices this paper adds, per-interval
// word-access bitmaps, and the per-process log of known intervals with the
// delta computation used to piggyback consistency information on
// synchronization messages.
package interval

import (
	"sort"

	"lrcrace/internal/mem"
	"lrcrace/internal/vc"
)

// Record describes one interval: who created it, its version vector, the
// barrier epoch it belongs to, and the pages it wrote (write notices) and —
// the modification this system makes to CVM — the pages it read (read
// notices). Interval structures "contain version vectors that identify the
// logical time associated with the interval, and permit checks for
// concurrency".
type Record struct {
	ID    vc.IntervalID
	VC    vc.VC
	Epoch int32

	// WriteNotices and ReadNotices are sorted page lists.
	WriteNotices []mem.PageID
	ReadNotices  []mem.PageID
}

// Clone returns a deep copy of r.
func (r *Record) Clone() *Record {
	c := &Record{ID: r.ID, VC: r.VC.Copy(), Epoch: r.Epoch}
	c.WriteNotices = append([]mem.PageID(nil), r.WriteNotices...)
	c.ReadNotices = append([]mem.PageID(nil), r.ReadNotices...)
	return c
}

// Wrote reports whether page p appears in the write notices.
func (r *Record) Wrote(p mem.PageID) bool { return containsPage(r.WriteNotices, p) }

// Read reports whether page p appears in the read notices.
func (r *Record) Read(p mem.PageID) bool { return containsPage(r.ReadNotices, p) }

func containsPage(s []mem.PageID, p mem.PageID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= p })
	return i < len(s) && s[i] == p
}

// SortPages sorts a page list in place (notices are kept sorted so that
// membership tests and overlap scans are cheap).
func SortPages(s []mem.PageID) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// OverlapPages appends to dst every page that appears in both sorted lists
// and returns the result. This is the page-granularity pre-filter: only
// pages accessed by both intervals of a concurrent pair can carry a race,
// and only those proceed to bitmap comparison.
func OverlapPages(a, b []mem.PageID, dst []mem.PageID) []mem.PageID {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}

// Builder accumulates the access footprint of the process's current
// interval: which pages were read/written, and per-page word bitmaps.
type Builder struct {
	layout mem.Layout
	read   map[mem.PageID]mem.Bitmap
	write  map[mem.PageID]mem.Bitmap
}

// NewBuilder returns a Builder for the given segment layout.
func NewBuilder(l mem.Layout) *Builder {
	return &Builder{
		layout: l,
		read:   make(map[mem.PageID]mem.Bitmap),
		write:  make(map[mem.PageID]mem.Bitmap),
	}
}

// NoteRead records a read of the word at a.
func (b *Builder) NoteRead(a mem.Addr) {
	p := b.layout.Page(a)
	bm := b.read[p]
	if bm == nil {
		bm = mem.NewBitmap(b.layout.WordsPerPage())
		b.read[p] = bm
	}
	bm.Set(b.layout.WordInPage(a))
}

// NoteWrite records a write of the word at a.
func (b *Builder) NoteWrite(a mem.Addr) {
	p := b.layout.Page(a)
	bm := b.write[p]
	if bm == nil {
		bm = mem.NewBitmap(b.layout.WordsPerPage())
		b.write[p] = bm
	}
	bm.Set(b.layout.WordInPage(a))
}

// Empty reports whether no accesses have been recorded.
func (b *Builder) Empty() bool { return len(b.read) == 0 && len(b.write) == 0 }

// BitmapCount returns the number of per-page bitmaps currently accumulated
// (read plus write) — the bitmaps the next Finish will deposit.
func (b *Builder) BitmapCount() int { return len(b.read) + len(b.write) }

// WrotePage reports whether any word of page p has been written in the
// current interval (used by the single-writer protocol to avoid re-sending
// write faults, and by tests).
func (b *Builder) WrotePage(p mem.PageID) bool { return b.write[p] != nil }

// Finish turns the accumulated footprint into a Record with the given
// identity and drains the builder for reuse. The per-page bitmaps are
// deposited into store, keyed by the interval, where they stay until a
// barrier check list requests them or the epoch is garbage collected.
func (b *Builder) Finish(id vc.IntervalID, v vc.VC, epoch int32, store *BitmapStore) *Record {
	r := &Record{ID: id, VC: v.Copy(), Epoch: epoch}
	for p := range b.read {
		r.ReadNotices = append(r.ReadNotices, p)
	}
	for p := range b.write {
		r.WriteNotices = append(r.WriteNotices, p)
	}
	SortPages(r.ReadNotices)
	SortPages(r.WriteNotices)
	if store != nil {
		store.put(id, b.read, b.write)
	}
	b.read = make(map[mem.PageID]mem.Bitmap)
	b.write = make(map[mem.PageID]mem.Bitmap)
	return r
}

// BitmapStore retains the word-access bitmaps of locally created intervals
// until the race-detection pass at the next barrier has consumed them.
// "Our system only discards trace information when it has been checked for
// races" (§6.4).
type BitmapStore struct {
	read  map[key]mem.Bitmap
	write map[key]mem.Bitmap
}

type key struct {
	id   vc.IntervalID
	page mem.PageID
}

// NewBitmapStore returns an empty store.
func NewBitmapStore() *BitmapStore {
	return &BitmapStore{read: make(map[key]mem.Bitmap), write: make(map[key]mem.Bitmap)}
}

func (s *BitmapStore) put(id vc.IntervalID, read, write map[mem.PageID]mem.Bitmap) {
	for p, bm := range read {
		s.read[key{id, p}] = bm
	}
	for p, bm := range write {
		s.write[key{id, p}] = bm
	}
}

// Get returns the read and write bitmaps of interval id on page p; either
// may be nil if no such access occurred.
func (s *BitmapStore) Get(id vc.IntervalID, p mem.PageID) (read, write mem.Bitmap) {
	return s.read[key{id, p}], s.write[key{id, p}]
}

// DiscardEpoch drops all bitmaps belonging to intervals with Index <= hi for
// the given process — called after the barrier's race check completes.
func (s *BitmapStore) DiscardUpTo(proc int, hi vc.Index) {
	for k := range s.read {
		if k.id.Proc == proc && k.id.Index <= hi {
			delete(s.read, k)
		}
	}
	for k := range s.write {
		if k.id.Proc == proc && k.id.Index <= hi {
			delete(s.write, k)
		}
	}
}

// Len returns the number of stored (interval,page) bitmaps, read+write.
func (s *BitmapStore) Len() int { return len(s.read) + len(s.write) }

// StoredBitmap is one (interval, page) bitmap held by the store, with its
// access direction — the enumeration form used by checkpointing.
type StoredBitmap struct {
	ID    vc.IntervalID
	Page  mem.PageID
	Write bool
	Bits  mem.Bitmap
}

// Entries returns every stored bitmap in a deterministic order (reads then
// writes, each sorted by (proc, index, page)) so that serialized
// checkpoints are byte-stable.
func (s *BitmapStore) Entries() []StoredBitmap {
	out := make([]StoredBitmap, 0, len(s.read)+len(s.write))
	collect := func(m map[key]mem.Bitmap, write bool) {
		start := len(out)
		for k, bm := range m {
			out = append(out, StoredBitmap{ID: k.id, Page: k.page, Write: write, Bits: bm})
		}
		part := out[start:]
		sort.Slice(part, func(i, j int) bool {
			if part[i].ID.Proc != part[j].ID.Proc {
				return part[i].ID.Proc < part[j].ID.Proc
			}
			if part[i].ID.Index != part[j].ID.Index {
				return part[i].ID.Index < part[j].ID.Index
			}
			return part[i].Page < part[j].Page
		})
	}
	collect(s.read, false)
	collect(s.write, true)
	return out
}

// Put inserts one bitmap (the checkpoint-restore inverse of Entries).
func (s *BitmapStore) Put(id vc.IntervalID, p mem.PageID, write bool, bm mem.Bitmap) {
	if write {
		s.write[key{id, p}] = bm
	} else {
		s.read[key{id, p}] = bm
	}
}

// Log is a process's table of known interval records — its own and those
// received via synchronization messages — used to compute the consistency
// deltas appended to lock grants and barrier messages.
type Log struct {
	byID map[vc.IntervalID]*Record
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{byID: make(map[vc.IntervalID]*Record)} }

// Add inserts r (no-op if already present).
func (l *Log) Add(r *Record) {
	if _, ok := l.byID[r.ID]; !ok {
		l.byID[r.ID] = r
	}
}

// Get returns the record for id, or nil.
func (l *Log) Get(id vc.IntervalID) *Record { return l.byID[id] }

// Len returns the number of records held.
func (l *Log) Len() int { return len(l.byID) }

// Records returns every held record sorted by (proc, index) — the
// deterministic enumeration checkpointing serializes.
func (l *Log) Records() []*Record {
	out := make([]*Record, 0, len(l.byID))
	for _, r := range l.byID {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Proc != out[j].ID.Proc {
			return out[i].ID.Proc < out[j].ID.Proc
		}
		return out[i].ID.Index < out[j].ID.Index
	})
	return out
}

// Delta returns every known record not yet seen by a process whose version
// vector is theirs — the "structures describing intervals seen by the
// releaser but not the acquirer" that LRC piggybacks on synchronization
// messages. Records are returned in (proc, index) order so transfer and
// application are deterministic.
func (l *Log) Delta(theirs vc.VC) []*Record { return l.DeltaCapped(theirs, nil) }

// DeltaCapped is Delta restricted to records within the knowledge horizon
// cap — used for lock grants, which must carry what the releaser had seen
// *at the release*, not what the granter happens to know by grant time
// (knowledge gained after the release is not ordered before the acquire,
// and leaking it would create false happens-before-1 edges that hide
// races). A nil cap means no restriction.
func (l *Log) DeltaCapped(theirs, cap vc.VC) []*Record {
	var out []*Record
	for id, r := range l.byID {
		if id.Index <= theirs[id.Proc] {
			continue
		}
		if cap != nil && id.Index > cap[id.Proc] {
			continue
		}
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].ID.Proc != out[j].ID.Proc {
			return out[i].ID.Proc < out[j].ID.Proc
		}
		return out[i].ID.Index < out[j].ID.Index
	})
	return out
}

// PruneBefore discards records dominated by horizon: after a barrier every
// process has seen every interval of the finished epoch, so records at or
// below the horizon can never appear in a future delta. This is the
// consistency-information garbage collection CVM runs at barriers.
func (l *Log) PruneBefore(horizon vc.VC) {
	for id := range l.byID {
		if id.Index <= horizon[id.Proc] {
			delete(l.byID, id)
		}
	}
}
