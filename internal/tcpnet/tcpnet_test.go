package tcpnet

import (
	"encoding/binary"
	"strings"
	"testing"
	"time"

	"lrcrace/internal/dsm"
	"lrcrace/internal/dsm/debuglog"
	"lrcrace/internal/msg"
	"lrcrace/internal/race"
	"lrcrace/internal/simnet"
)

func TestSendRecvAcrossSockets(t *testing.T) {
	nw, err := New(3)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	nw.Send(0, 2, &msg.PageReq{Page: 7, Write: true}, 111)
	nw.Send(1, 2, &msg.DiffAck{}, 222)
	nw.Send(2, 2, &msg.InvalAck{}, 333) // self loopback

	got := map[int]bool{}
	for i := 0; i < 3; i++ {
		d, ok := nw.Recv(2)
		if !ok {
			t.Fatal("short recv")
		}
		got[d.From] = true
		switch d.From {
		case 0:
			pr := d.Msg.(*msg.PageReq)
			if pr.Page != 7 || !pr.Write || d.VTime != 111 {
				t.Errorf("from 0: %+v vtime=%d", pr, d.VTime)
			}
		case 2:
			if d.VTime != 333 {
				t.Errorf("self delivery vtime = %d", d.VTime)
			}
		}
		if d.Frags != 1 || d.Bytes <= 0 {
			t.Errorf("metadata: %+v", d)
		}
	}
	if len(got) != 3 {
		t.Errorf("senders seen: %v", got)
	}
	if nw.Stats().TotalMessages() != 3 {
		t.Errorf("stats: %d", nw.Stats().TotalMessages())
	}
}

func TestPerPairFIFO(t *testing.T) {
	nw, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()
	const k = 200
	for i := 0; i < k; i++ {
		nw.Send(0, 1, &msg.PageReq{Page: 1}, int64(i))
	}
	for i := 0; i < k; i++ {
		d, ok := nw.Recv(1)
		if !ok || d.VTime != int64(i) {
			t.Fatalf("delivery %d: vtime=%d ok=%v", i, d.VTime, ok)
		}
	}
}

func TestCloseUnblocks(t *testing.T) {
	nw, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan bool)
	go func() {
		_, ok := nw.Recv(0)
		done <- ok
	}()
	nw.Close()
	if ok := <-done; ok {
		t.Error("Recv ok after close")
	}
	nw.Close() // idempotent
}

// TestDSMOverTCP is the marquee test: the full DSM — locks, barriers,
// coherence and the race detector — over real loopback TCP sockets.
func TestDSMOverTCP(t *testing.T) {
	nw, err := New(4)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := dsm.New(dsm.Config{
		NumProcs:   4,
		SharedSize: 16 * 1024,
		Detect:     true,
		Transport:  nw,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctr, _ := sys.AllocWords("ctr", 1)
	racy, _ := sys.AllocWords("racy", 1)
	err = sys.Run(func(p *dsm.Proc) {
		for i := 0; i < 10; i++ {
			p.Lock(1)
			p.Write(ctr, p.Read(ctr)+1)
			p.Unlock(1)
		}
		p.Write(racy, uint64(p.ID()))
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.SnapshotWord(ctr); got != 40 {
		t.Errorf("ctr over TCP = %d, want 40", got)
	}
	races := race.DedupByAddr(sys.Races())
	if len(races) != 1 || races[0].Addr != racy {
		t.Errorf("races over TCP = %v", races)
	}
	if sys.NetStats().TotalMessages() == 0 {
		t.Error("no traffic counted")
	}
}

// BenchmarkTransportRoundTrip compares one send+recv over loopback TCP
// against the in-memory simulated network.
func BenchmarkTransportRoundTrip(b *testing.B) {
	m := &msg.PageReq{Page: 1, Write: true}
	b.Run("tcp", func(b *testing.B) {
		nw, err := New(2)
		if err != nil {
			b.Fatal(err)
		}
		defer nw.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nw.Send(0, 1, m, int64(i))
			if _, ok := nw.Recv(1); !ok {
				b.Fatal("recv failed")
			}
		}
	})
	b.Run("simnet", func(b *testing.B) {
		nw := simnet.New(2)
		defer nw.Close()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			nw.Send(0, 1, m, int64(i))
			if _, ok := nw.Recv(1); !ok {
				b.Fatal("recv failed")
			}
		}
	})
}

// TestCorruptFrameCounted injects a garbage frame directly onto a mesh
// connection: the reader must count it in Stats.Errors and emit a debug
// event, instead of dying silently.
func TestCorruptFrameCounted(t *testing.T) {
	debuglog.Enable()
	defer debuglog.Disable()

	nw, err := New(2)
	if err != nil {
		t.Fatal(err)
	}
	defer nw.Close()

	// A healthy frame first, to prove the stream works.
	nw.Send(0, 1, &msg.DiffAck{}, 1)
	if _, ok := nw.Recv(1); !ok {
		t.Fatal("healthy frame lost")
	}

	// Hand-build a frame whose payload is not a decodable message.
	// conns[0][1] is endpoint 0's end of the 0↔1 connection; endpoint 1's
	// readLoop parses whatever arrives on the other end.
	payload := []byte{0xFF, 0xFF, 0xFF, 0xFF}
	hdr := make([]byte, frameHeader)
	binary.LittleEndian.PutUint16(hdr[0:], 0)                     // from
	binary.LittleEndian.PutUint16(hdr[2:], 1)                     // frags
	binary.LittleEndian.PutUint64(hdr[4:], 42)                    // vtime
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(payload))) // plen
	c := nw.conns[0][1]
	if _, err := c.Write(append(hdr, payload...)); err != nil {
		t.Fatal(err)
	}

	// The reader drops the connection after the decode failure; wait for
	// the error counter rather than sleeping a fixed interval.
	deadline := time.Now().Add(2 * time.Second)
	for nw.Stats().Errors == 0 {
		if time.Now().After(deadline) {
			t.Fatal("corrupt frame never counted in Stats.Errors")
		}
		time.Sleep(time.Millisecond)
	}
	if got := nw.Stats().Errors; got != 1 {
		t.Errorf("Errors = %d, want 1", got)
	}
	found := false
	for _, ev := range debuglog.Events() {
		if strings.Contains(ev, "tcpnet") && strings.Contains(ev, "corrupt") {
			found = true
		}
	}
	if !found {
		t.Errorf("no tcpnet corrupt-frame debug event in %v", debuglog.Events())
	}
}
