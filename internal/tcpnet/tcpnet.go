// Package tcpnet is a real-sockets transport for the DSM: a full mesh of
// loopback TCP connections carrying the same serialized messages as the
// simulated network. It exists to make the claim behind the paper's system
// literal — CVM is "written entirely as a user-level library" over UDP; this
// transport runs the whole DSM, detector included, over an actual kernel
// network stack. TCP (rather than UDP) supplies the reliability and
// per-pair ordering the protocol assumes, which CVM layered over UDP with
// its own end-to-end retransmission.
//
// Virtual-time accounting is identical to simnet: the receiver computes
// modeled wire time from the sender's clock and the byte count, so the
// performance results do not depend on which transport ran.
package tcpnet

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"lrcrace/internal/dsm/debuglog"
	"lrcrace/internal/msg"
	"lrcrace/internal/simnet"
)

// frameHeader is [from u16][frags u16][vtime i64][payloadLen u32].
const frameHeader = 2 + 2 + 8 + 4

// maxFrame bounds a payload to catch stream desync early.
const maxFrame = 64 << 20

// Network is a full mesh of loopback TCP connections between n endpoints.
type Network struct {
	n   int
	mtu int

	listeners []net.Listener
	conns     [][]net.Conn   // conns[from][to], nil on the diagonal
	sendMu    [][]sync.Mutex // one writer lock per connection

	queues []*simnet.Queue

	mu     sync.Mutex
	stats  simnet.Stats
	closed bool
	wg     sync.WaitGroup
}

// New builds the mesh on 127.0.0.1 ephemeral ports and starts the reader
// goroutines.
func New(n int) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("tcpnet: n = %d", n)
	}
	nw := &Network{n: n, mtu: simnet.DefaultMTU}
	nw.queues = make([]*simnet.Queue, n)
	for i := range nw.queues {
		nw.queues[i] = simnet.NewQueue()
	}
	nw.conns = make([][]net.Conn, n)
	nw.sendMu = make([][]sync.Mutex, n)
	for i := range nw.conns {
		nw.conns[i] = make([]net.Conn, n)
		nw.sendMu[i] = make([]sync.Mutex, n)
	}

	// One listener per endpoint.
	nw.listeners = make([]net.Listener, n)
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			nw.Close()
			return nil, fmt.Errorf("tcpnet: listen: %w", err)
		}
		nw.listeners[i] = l
		addrs[i] = l.Addr().String()
	}

	// Dial the full mesh: from < to dials; the accept side learns the
	// dialer's identity from a hello byte pair. Setup errors from the N
	// accept goroutines and the dialing loop are collected under a mutex
	// (they run concurrently), and the first failure stops the dialing —
	// there is no point building the rest of a half-broken mesh.
	var (
		errMu    sync.Mutex
		setupErr error
	)
	fail := func(err error) {
		errMu.Lock()
		if setupErr == nil {
			setupErr = err
		}
		errMu.Unlock()
	}
	failed := func() bool {
		errMu.Lock()
		defer errMu.Unlock()
		return setupErr != nil
	}
	var wg sync.WaitGroup
	for to := 0; to < n; to++ {
		wg.Add(1)
		go func(to int) {
			defer wg.Done()
			for k := 0; k < to; k++ { // expect dials from every from < to
				c, err := nw.listeners[to].Accept()
				if err != nil {
					fail(err)
					return
				}
				var hello [2]byte
				if _, err := io.ReadFull(c, hello[:]); err != nil {
					fail(err)
					return
				}
				from := int(binary.LittleEndian.Uint16(hello[:]))
				nw.conns[to][from] = c // to also sends to from on this conn
			}
		}(to)
	}
dial:
	for from := 0; from < n; from++ {
		for to := from + 1; to < n; to++ {
			if failed() {
				break dial
			}
			c, err := net.Dial("tcp", addrs[to])
			if err != nil {
				fail(err)
				break dial
			}
			var hello [2]byte
			binary.LittleEndian.PutUint16(hello[:], uint16(from))
			if _, err := c.Write(hello[:]); err != nil {
				fail(err)
				break dial
			}
			nw.conns[from][to] = c
		}
	}
	if failed() {
		// Unblock accept goroutines still waiting for dials that will
		// never come.
		for _, l := range nw.listeners {
			l.Close()
		}
	}
	wg.Wait()
	if err := setupErr; err != nil {
		nw.Close()
		return nil, fmt.Errorf("tcpnet: mesh setup: %w", err)
	}

	// Reader goroutines: one per connection endpoint direction. Connection
	// conns[a][b] carries frames in both directions (a→b written by a,
	// b→a written by b), so each side reads its own end.
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a == b || nw.conns[a][b] == nil {
				continue
			}
			nw.wg.Add(1)
			go nw.readLoop(a, nw.conns[a][b])
		}
	}
	return nw, nil
}

// readLoop parses frames arriving at endpoint owner on c. A corrupted or
// oversized frame still drops the connection (the stream offset is lost —
// resynchronizing a length-prefixed stream is not possible), but it is
// counted in Stats.Errors and logged, so a desync diagnoses as an error
// rather than a mystery hang.
func (nw *Network) readLoop(owner int, c net.Conn) {
	defer nw.wg.Done()
	hdr := make([]byte, frameHeader)
	for {
		if _, err := io.ReadFull(c, hdr); err != nil {
			return // peer closed (normal teardown path)
		}
		from := int(binary.LittleEndian.Uint16(hdr[0:]))
		frags := int(binary.LittleEndian.Uint16(hdr[2:]))
		vtime := int64(binary.LittleEndian.Uint64(hdr[4:]))
		plen := binary.LittleEndian.Uint32(hdr[12:])
		if plen > maxFrame {
			nw.streamError(owner, c, fmt.Sprintf("oversized frame: %d bytes (max %d)", plen, maxFrame))
			return
		}
		payload := make([]byte, plen)
		if _, err := io.ReadFull(c, payload); err != nil {
			nw.streamError(owner, c, fmt.Sprintf("truncated frame: %v", err))
			return
		}
		m, err := msg.Unmarshal(payload)
		if err != nil {
			nw.streamError(owner, c, fmt.Sprintf("corrupt payload: %v", err))
			return
		}
		nw.queues[owner].Push(simnet.Delivery{
			From:  from,
			VTime: vtime,
			Bytes: len(payload) + frags*simnet.UDPOverhead,
			Frags: frags,
			Msg:   m,
		})
	}
}

// streamError records a framing/decode failure on a live connection.
// Failures observed during shutdown are the teardown itself, not stream
// corruption, and are not counted.
func (nw *Network) streamError(owner int, c net.Conn, what string) {
	nw.mu.Lock()
	closed := nw.closed
	if !closed {
		nw.stats.Errors++
	}
	nw.mu.Unlock()
	if closed {
		return
	}
	debuglog.Logf("tcpnet: endpoint %d: dropping conn %v: %s", owner, c.RemoteAddr(), what)
}

// Send implements dsm.Transport.
func (nw *Network) Send(from, to int, m msg.Message, vtime int64) int {
	wire := msg.Marshal(m)
	frags := (len(wire) + nw.mtu - 1) / nw.mtu
	if frags < 1 {
		frags = 1
	}
	size := len(wire) + frags*simnet.UDPOverhead

	nw.mu.Lock()
	nw.stats.Messages[m.Type()] += int64(frags)
	nw.stats.Bytes[m.Type()] += int64(size)
	closed := nw.closed
	nw.mu.Unlock()
	if closed {
		return size
	}

	if from == to {
		// Loopback without touching the kernel (a process messaging
		// itself, e.g. the barrier master's own arrival).
		parsed, err := msg.Unmarshal(wire)
		if err != nil {
			panic(fmt.Sprintf("tcpnet: message %v does not survive the wire: %v", m.Type(), err))
		}
		nw.queues[to].Push(simnet.Delivery{From: from, VTime: vtime, Bytes: size, Frags: frags, Msg: parsed})
		return size
	}

	c := nw.conns[from][to]
	if c == nil {
		c = nw.conns[to][from]
	}
	if c == nil {
		return size // torn down
	}
	hdr := make([]byte, frameHeader)
	binary.LittleEndian.PutUint16(hdr[0:], uint16(from))
	binary.LittleEndian.PutUint16(hdr[2:], uint16(frags))
	binary.LittleEndian.PutUint64(hdr[4:], uint64(vtime))
	binary.LittleEndian.PutUint32(hdr[12:], uint32(len(wire)))

	mu := &nw.sendMu[from][to]
	mu.Lock()
	_, err1 := c.Write(hdr)
	_, err2 := c.Write(wire)
	mu.Unlock()
	if err1 != nil || err2 != nil {
		return size // receiver gone (shutdown path)
	}
	return size
}

// Recv implements dsm.Transport.
func (nw *Network) Recv(proc int) (simnet.Delivery, bool) {
	return nw.queues[proc].Pop()
}

// Close implements dsm.Transport: tear down sockets and unblock receivers.
func (nw *Network) Close() {
	nw.mu.Lock()
	if nw.closed {
		nw.mu.Unlock()
		return
	}
	nw.closed = true
	nw.mu.Unlock()

	for _, l := range nw.listeners {
		if l != nil {
			l.Close()
		}
	}
	for a := range nw.conns {
		for b := range nw.conns[a] {
			if nw.conns[a][b] != nil {
				nw.conns[a][b].Close()
			}
		}
	}
	nw.wg.Wait()
	for _, q := range nw.queues {
		q.Close()
	}
}

// Stats implements dsm.Transport.
func (nw *Network) Stats() simnet.Stats {
	nw.mu.Lock()
	defer nw.mu.Unlock()
	return nw.stats
}
