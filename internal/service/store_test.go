package service

import (
	"fmt"
	"testing"
)

func TestStoreSeqsAndSince(t *testing.T) {
	st := NewStore(100)
	for i := 0; i < 10; i++ {
		sess := "a"
		if i%2 == 1 {
			sess = "b"
		}
		r := st.Append(Record{Session: sess, Kind: KindRace, Addr: uint64(i)})
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d got seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if st.Len() != 10 || st.Appended() != 10 || st.Dropped() != 0 {
		t.Fatalf("len/appended/dropped = %d/%d/%d, want 10/10/0", st.Len(), st.Appended(), st.Dropped())
	}

	recs, lost, next := st.Since(0, "", 0)
	if len(recs) != 10 || lost != 0 || next != 10 {
		t.Fatalf("Since(0) = %d recs, lost %d, next %d; want 10, 0, 10", len(recs), lost, next)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("merged view out of order: recs[%d].Seq = %d", i, r.Seq)
		}
	}

	// The per-session view is a subsequence of the merged view under the
	// same cursor space.
	recs, _, _ = st.Since(0, "b", 0)
	if len(recs) != 5 {
		t.Fatalf("session b view has %d records, want 5", len(recs))
	}
	for _, r := range recs {
		if r.Session != "b" || r.Seq%2 != 0 {
			t.Fatalf("session b view contains %+v", r)
		}
	}

	// Resume from a mid-stream cursor.
	recs, lost, next = st.Since(7, "", 0)
	if len(recs) != 3 || lost != 0 || recs[0].Seq != 8 || next != 10 {
		t.Fatalf("Since(7) = %v lost=%d next=%d", recs, lost, next)
	}

	// max truncates; next points at the last returned record.
	recs, _, next = st.Since(0, "", 4)
	if len(recs) != 4 || next != 4 {
		t.Fatalf("Since(0,max=4) = %d recs next=%d, want 4, 4", len(recs), next)
	}
}

func TestStoreRetention(t *testing.T) {
	st := NewStore(8)
	for i := 0; i < 20; i++ {
		st.Append(Record{Session: "s", Kind: KindSession, Detail: fmt.Sprint(i)})
	}
	if st.Len() != 8 || st.Appended() != 20 || st.Dropped() != 12 {
		t.Fatalf("len/appended/dropped = %d/%d/%d, want 8/20/12", st.Len(), st.Appended(), st.Dropped())
	}
	recs, lost, next := st.Since(0, "", 0)
	if lost != 12 {
		t.Fatalf("lost = %d, want 12", lost)
	}
	if len(recs) != 8 || recs[0].Seq != 13 || next != 20 {
		t.Fatalf("retained window = %d recs starting %d next=%d, want 8 from 13, next 20", len(recs), recs[0].Seq, next)
	}
	// A cursor inside the retained window reports no loss.
	if _, lost, _ = st.Since(15, "", 0); lost != 0 {
		t.Fatalf("in-window cursor reported lost=%d", lost)
	}
}

func TestSubscriberDelivery(t *testing.T) {
	st := NewStore(100)
	sub := st.Subscribe("", 16)
	defer sub.Close()
	if st.Subscribers() != 1 {
		t.Fatalf("Subscribers() = %d, want 1", st.Subscribers())
	}
	for i := 0; i < 5; i++ {
		st.Append(Record{Session: "s", Kind: KindRace, Addr: uint64(i)})
	}
	for i := 0; i < 5; i++ {
		r := <-sub.C()
		if r.Seq != uint64(i+1) {
			t.Fatalf("delivery %d got seq %d", i, r.Seq)
		}
	}
	if sub.TakeGap() {
		t.Fatal("gap reported without overflow")
	}
}

func TestSubscriberSessionFilter(t *testing.T) {
	st := NewStore(100)
	sub := st.Subscribe("b", 16)
	defer sub.Close()
	st.Append(Record{Session: "a", Kind: KindRace})
	st.Append(Record{Session: "b", Kind: KindRace})
	st.Append(Record{Session: "a", Kind: KindRace})
	r := <-sub.C()
	if r.Session != "b" || r.Seq != 2 {
		t.Fatalf("filtered subscriber got %+v", r)
	}
	select {
	case r := <-sub.C():
		t.Fatalf("unexpected extra delivery %+v", r)
	default:
	}
}

func TestSubscriberDropOldestAndGap(t *testing.T) {
	st := NewStore(100)
	sub := st.Subscribe("", 4)
	defer sub.Close()
	// Nobody drains: 10 appends into a 4-slot buffer must drop 6, keep the
	// newest 4, and raise the gap flag — without ever blocking Append.
	for i := 0; i < 10; i++ {
		st.Append(Record{Session: "s", Kind: KindRace, Addr: uint64(i)})
	}
	if got := sub.DroppedRecords(); got != 6 {
		t.Fatalf("DroppedRecords = %d, want 6", got)
	}
	if !sub.TakeGap() {
		t.Fatal("overflow did not raise the gap flag")
	}
	if sub.TakeGap() {
		t.Fatal("TakeGap did not clear the flag")
	}
	// Drop-oldest: the survivors are the newest records, in order.
	for want := uint64(7); want <= 10; want++ {
		r := <-sub.C()
		if r.Seq != want {
			t.Fatalf("survivor seq %d, want %d", r.Seq, want)
		}
	}
	// The gap heals by replaying from the cursor before the hole.
	recs, lost, _ := st.Since(2, "", 0)
	if lost != 0 || len(recs) != 8 || recs[0].Seq != 3 {
		t.Fatalf("replay = %d recs from %d lost=%d", len(recs), recs[0].Seq, lost)
	}
}

func TestSubscriberCloseDetaches(t *testing.T) {
	st := NewStore(100)
	sub := st.Subscribe("", 4)
	sub.Close()
	sub.Close() // idempotent
	if st.Subscribers() != 0 {
		t.Fatalf("Subscribers() = %d after Close", st.Subscribers())
	}
	st.Append(Record{Session: "s"})
	select {
	case r := <-sub.C():
		t.Fatalf("closed subscriber received %+v", r)
	default:
	}
}
