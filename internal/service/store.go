// Package service turns the one-shot detector into a long-running
// multi-tenant detection service: clients open sessions over HTTP, each
// session runs one DSM System (with its own handle-scoped telemetry
// recorder and always-on checkpoints) under admission control, and
// everything the detector reports — data races, crash recoveries,
// flight-recorder trips, session lifecycle — lands in an append-only
// report store that clients tail live with `since=<seq>` long-polls or
// SSE streams. The paper's detection is online ("races are reported
// immediately when they occur" at barrier time); this package makes the
// *consumption* online too, in the decoupled-monitoring spirit of Ronsse
// & De Bosschere: the monitored execution never waits for a subscriber.
//
// The service plane is also the dispatch target for distributed sweeps:
// `sweeprun -remote <addr>` submits each grid cell as a session and
// merges the returned results through the sweep's own manifest path (see
// Client and docs/SERVICE.md).
package service

import (
	"encoding/json"
	"fmt"
	"sync"

	"lrcrace/internal/castore"
)

// RecordKind classifies one report-store record.
type RecordKind string

// Report-store record kinds.
const (
	// KindRace is one dynamic data-race report, appended the moment the
	// detector finds it at barrier time (telemetry KRaceFound).
	KindRace RecordKind = "race"
	// KindRecovery is a crash-tolerance event: a peer declared dead, a
	// coordinated rollback started or finished.
	KindRecovery RecordKind = "recovery"
	// KindTrip is a flight-recorder trip (link death, barrier timeout,
	// panic, checkpoint verification failure).
	KindTrip RecordKind = "trip"
	// KindSession marks session lifecycle: admitted, started, finished
	// (the Detail field says which, and with what terminal status).
	KindSession RecordKind = "session"
	// KindTruncated is synthesized by a stream when retention dropped
	// records between the subscriber's cursor and the oldest retained
	// record; Detail carries how many were lost.
	KindTruncated RecordKind = "truncated"
)

// Record is one line of the append-only report store. Seq is assigned by
// the store, monotonically across all sessions; per-session views are
// subsequences of the merged view, so one cursor works for both.
type Record struct {
	Seq     uint64     `json:"seq"`
	Session string     `json:"session"`
	Kind    RecordKind `json:"kind"`
	// Tenant is the tenant the record's session belongs to; empty for
	// store-level records (truncation markers).
	Tenant string `json:"tenant,omitempty"`
	// VT is the virtual (costmodel) timestamp of the underlying protocol
	// event, when there is one.
	VT int64 `json:"vt,omitempty"`
	// Race fields (KindRace): the racing word's byte address, the barrier
	// epoch that exposed it, and whether both endpoints were writes.
	Addr       uint64 `json:"addr,omitempty"`
	Epoch      int64  `json:"epoch,omitempty"`
	WriteWrite bool   `json:"write_write,omitempty"`
	// Detail is the human-readable line for non-race kinds.
	Detail string `json:"detail,omitempty"`
}

// Store is the bounded append-only report log: records get monotonic
// sequence numbers starting at 1, retention keeps the most recent cap
// records (older ones are dropped, counted), and subscribers are notified
// through bounded per-subscriber buffers with drop-oldest semantics — a
// slow reader can never block an appender, only lose its place (which it
// recovers by replaying from its cursor; see Subscriber).
type Store struct {
	mu      sync.Mutex
	cap     int
	recs    []Record // recs[0].Seq == first; contiguous
	first   uint64   // seq of recs[0]; 1 when nothing dropped yet
	next    uint64   // next seq to assign
	dropped uint64   // records lost to retention
	subs    map[*Subscriber]struct{}

	// Durability (nil log → memory-only store; see OpenStore). The log
	// holds the full append history, so retention bounds memory, not
	// replayable history.
	log          *castore.SegLog
	replayed     int
	truncations  int
	persistFails int
	persistErr   error // first persistence failure, kept for diagnostics
}

// DefaultStoreCap is the default retention bound, in records.
const DefaultStoreCap = 65536

// NewStore builds a store retaining at most cap records (0 →
// DefaultStoreCap).
func NewStore(cap int) *Store {
	if cap <= 0 {
		cap = DefaultStoreCap
	}
	return &Store{cap: cap, first: 1, next: 1, subs: make(map[*Subscriber]struct{})}
}

// Append assigns the next sequence number to r, retains it, persists it
// when the store is durable, and notifies matching subscribers. It
// returns the stored record.
func (s *Store) Append(r Record) Record {
	s.mu.Lock()
	r.Seq = s.next
	s.next++
	s.recs = append(s.recs, r)
	if len(s.recs) > s.cap {
		n := len(s.recs) - s.cap
		s.recs = s.recs[n:]
		s.first += uint64(n)
		s.dropped += uint64(n)
	}
	if s.log != nil {
		b, err := json.Marshal(r)
		if err == nil {
			_, err = s.log.Append(b)
		}
		if err != nil {
			// The in-memory store keeps serving; the failure is surfaced
			// through PersistErr and the svc_store_persist_failures metric
			// rather than taking the whole service plane down.
			s.persistFails++
			if s.persistErr == nil {
				s.persistErr = err
			}
		}
	}
	for sub := range s.subs {
		if sub.session == "" || sub.session == r.Session {
			sub.push(r)
		}
	}
	s.mu.Unlock()
	return r
}

// ReplayInfo summarizes what OpenStore restored from its data directory.
type ReplayInfo struct {
	// Records replayed from the log into the store (memory retains at
	// most the store's cap; earlier records count as dropped, exactly as
	// they did before the restart).
	Records int
	// LastSeq is the highest restored sequence number; appends continue
	// at LastSeq+1 (or after the truncation record, when there is one).
	LastSeq uint64
	// Truncation describes a corrupt or torn log tail that was verified,
	// cut off, and surfaced as an explicit KindTruncated record; ""
	// when the log replayed clean.
	Truncation string
}

// OpenStore opens a durable report store over the content-addressed
// segment log in dir: every record ever appended is framed, hashed, and
// fsync'd per opts, and on reopen the log is replayed — verifying each
// chunk against its address — so sequence numbers, session views, and
// subscriber replay cursors resume exactly where they stopped. A tail
// that fails verification (tampered chunk, torn write, undecodable
// record, out-of-order sequence) is truncated at the last good record
// and surfaced as an explicit KindTruncated record carrying the next
// sequence number, never restored blindly and never a panic.
func OpenStore(dir string, cap int, opts castore.SegLogOptions) (*Store, ReplayInfo, error) {
	s := NewStore(cap)
	expect := uint64(1)
	log, trunc, err := castore.OpenSegLog(dir, opts, func(payload []byte) error {
		var r Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("undecodable record: %w", err)
		}
		if r.Seq != expect {
			return fmt.Errorf("sequence break: record %d where %d was expected", r.Seq, expect)
		}
		expect++
		s.restore(r)
		return nil
	})
	if err != nil {
		return nil, ReplayInfo{}, fmt.Errorf("service: opening report store: %w", err)
	}
	s.log = log
	info := ReplayInfo{Records: int(expect - 1), LastSeq: expect - 1}
	if trunc != nil {
		s.truncations++
		info.Truncation = trunc.String()
		s.Append(Record{Kind: KindTruncated,
			Detail: "report log truncated on replay: " + trunc.String()})
	}
	return s, info, nil
}

// restore re-adopts one replayed record without assigning a new sequence
// number or notifying subscribers (none can exist during replay).
func (s *Store) restore(r Record) {
	s.recs = append(s.recs, r)
	s.next = r.Seq + 1
	if len(s.recs) > s.cap {
		s.recs = s.recs[len(s.recs)-s.cap:]
	}
	s.first = s.recs[0].Seq
	s.dropped = s.first - 1
	s.replayed++
}

// Sync flushes any unsynced appends of a durable store; a no-op for
// memory-only stores.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Sync()
}

// Close syncs and closes a durable store's log (appends after Close stay
// in memory and count as persistence failures); a no-op for memory-only
// stores.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return nil
	}
	return s.log.Close()
}

// Durable reports whether the store persists its records.
func (s *Store) Durable() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.log != nil
}

// Replayed returns how many records the store restored at open.
func (s *Store) Replayed() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed
}

// Truncations returns how many corrupt log tails this store has cut off.
func (s *Store) Truncations() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.truncations
}

// PersistFailures returns how many appends failed to reach the log.
func (s *Store) PersistFailures() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistFails
}

// PersistErr returns the first persistence failure, or nil.
func (s *Store) PersistErr() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.persistErr
}

// LogStats returns the underlying segment log's accounting (zero for
// memory-only stores).
func (s *Store) LogStats() castore.SegLogStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.log == nil {
		return castore.SegLogStats{}
	}
	return s.log.Stats()
}

// Since returns retained records with Seq > since, filtered to one
// session when session is non-empty, at most max of them (0 → no limit).
// lost is how many matching-window records retention already dropped
// (since < first-1 means the caller's cursor points into the dropped
// range); next is the store's current tail cursor — passing it back as
// since resumes exactly after the returned batch only when the batch was
// not truncated by max.
func (s *Store) Since(since uint64, session string, max int) (recs []Record, lost uint64, next uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if since+1 < s.first {
		lost = s.first - since - 1
	}
	for _, r := range s.recs {
		if r.Seq <= since {
			continue
		}
		if session != "" && r.Session != session {
			continue
		}
		recs = append(recs, r)
		if max > 0 && len(recs) == max {
			break
		}
	}
	next = since
	if n := len(recs); n > 0 {
		next = recs[n-1].Seq
	} else if s.next > 1 {
		next = s.next - 1
	}
	return recs, lost, next
}

// Len returns how many records the store currently retains.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.recs)
}

// Appended returns how many records have ever been appended.
func (s *Store) Appended() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next - 1
}

// Dropped returns how many records retention has discarded.
func (s *Store) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Subscribers returns how many subscribers are attached.
func (s *Store) Subscribers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.subs)
}

// DefaultSubscriberBuf is the default per-subscriber buffer, in records.
const DefaultSubscriberBuf = 256

// Subscriber is one live tail of the store: a bounded buffer of records
// plus a gap flag. When the buffer overflows, the store drops the
// subscriber's oldest buffered record (never blocking the appender),
// counts the drop, and raises the gap flag; the reader heals the gap by
// replaying from its cursor with Since, which preserves exactly-once
// in-order delivery as long as retention still holds the records (and
// reports the loss explicitly when it does not).
type Subscriber struct {
	store   *Store
	session string // "" subscribes to the merged view
	ch      chan Record

	mu      sync.Mutex
	gap     bool
	dropped uint64
	closed  bool
}

// Subscribe attaches a subscriber for one session ("" for the merged
// view) with a buffer of buf records (0 → DefaultSubscriberBuf). Close it
// when done.
func (s *Store) Subscribe(session string, buf int) *Subscriber {
	if buf <= 0 {
		buf = DefaultSubscriberBuf
	}
	sub := &Subscriber{store: s, session: session, ch: make(chan Record, buf)}
	s.mu.Lock()
	s.subs[sub] = struct{}{}
	s.mu.Unlock()
	return sub
}

// push delivers r without ever blocking: on a full buffer it evicts the
// oldest buffered record to make room (drop-oldest) and marks the gap.
// Called with the store lock held, so pushes are ordered; the reader may
// race a drain against the eviction, in which case the send can still
// fail — the gap flag covers that record too.
func (sub *Subscriber) push(r Record) {
	select {
	case sub.ch <- r:
		return
	default:
	}
	sub.mu.Lock()
	sub.gap = true
	sub.dropped++
	sub.mu.Unlock()
	select {
	case <-sub.ch:
	default:
	}
	select {
	case sub.ch <- r:
	default:
	}
}

// C is the subscriber's record channel. After a drop the channel's
// contents have a hole; callers must check TakeGap before trusting
// continuity and replay via the store when it reports true.
func (sub *Subscriber) C() <-chan Record { return sub.ch }

// TakeGap reports and clears the gap flag: true means at least one record
// was dropped from the buffer since the last call, and the reader should
// re-sync from the store with Since(cursor).
func (sub *Subscriber) TakeGap() bool {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	g := sub.gap
	sub.gap = false
	return g
}

// DroppedRecords returns how many records this subscriber's buffer has
// evicted or refused.
func (sub *Subscriber) DroppedRecords() uint64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.dropped
}

// Close detaches the subscriber from the store. Safe to call twice.
func (sub *Subscriber) Close() {
	sub.store.mu.Lock()
	delete(sub.store.subs, sub)
	sub.store.mu.Unlock()
	sub.mu.Lock()
	sub.closed = true
	sub.mu.Unlock()
}
