package service

import (
	"context"
	"errors"
	"fmt"
	mrand "math/rand"
	"sync"
	"time"

	"lrcrace/internal/sweep"
)

// DispatchConfig tunes the multi-node dispatcher.
type DispatchConfig struct {
	// Workers is how many cells run concurrently across all nodes; 0 → 4.
	Workers int
	// MaxAttempts bounds how many nodes one cell is tried on before it
	// fails; 0 → max(3, 2×nodes).
	MaxAttempts int
	// Backoff is the base redispatch delay after a node failure, doubling
	// per attempt up to MaxBackoff; 0 → 100ms (cap 0 → 2s). Every wait is
	// jittered so failed cells do not stampede the survivors in lockstep.
	Backoff    time.Duration
	MaxBackoff time.Duration
	// BreakerThreshold is how many consecutive failures open a node's
	// circuit breaker; 0 → 3. An open breaker keeps the node out of
	// selection for BreakerCooldown (0 → 2s), after which the next pick
	// health-probes it before trusting it with a cell (half-open).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// HealthTimeout bounds each health probe; 0 → 2s.
	HealthTimeout time.Duration
	// Rand supplies backoff jitter in [0,1); nil → math/rand.
	Rand func() float64
	// Logf receives dispatch progress (failovers, breaker trips); nil →
	// silent.
	Logf func(format string, args ...interface{})
}

func (c DispatchConfig) withDefaults(nodes int) DispatchConfig {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 2 * nodes
		if c.MaxAttempts < 3 {
			c.MaxAttempts = 3
		}
	}
	if c.Backoff <= 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 2 * time.Second
	}
	if c.HealthTimeout <= 0 {
		c.HealthTimeout = 2 * time.Second
	}
	if c.Rand == nil {
		c.Rand = mrand.Float64
	}
	if c.Logf == nil {
		c.Logf = func(string, ...interface{}) {}
	}
	return c
}

// node is one detection service the dispatcher can assign cells to. All
// mutable state is guarded by the dispatcher's mutex.
type node struct {
	client *Client

	inflight  int       // cells currently assigned here
	consec    int       // consecutive failures (resets on success)
	openUntil time.Time // breaker open until; zero/past → closed
	needProbe bool      // health-check before the next dispatch (half-open)

	dispatched   int64
	failures     int64
	breakerTrips int64
}

// NodeStats is one node's dispatch accounting.
type NodeStats struct {
	Addr         string
	Inflight     int
	Dispatched   int64
	Failures     int64
	BreakerTrips int64
	BreakerOpen  bool
}

// Dispatcher fans sweep cells out across several detection-service nodes:
// each cell goes to the least-loaded live node, and a node failure
// (refused connection, mid-session disconnect, shutdown) re-dispatches
// the cell to a survivor with jittered backoff. Repeatedly failing nodes
// are quarantined by a per-node circuit breaker and re-admitted through a
// health probe. Results are merged by the caller through the same
// sweep.Record path a local run uses, so the output stays byte-identical
// to a single-node or local sweep.
type Dispatcher struct {
	cfg   DispatchConfig
	mu    sync.Mutex
	nodes []*node

	redispatches int64
}

// NewDispatcher builds a dispatcher over the given node addresses
// ("host:port" or full URLs). Every node starts unverified: the first
// pick health-probes it.
func NewDispatcher(addrs []string, cfg DispatchConfig) *Dispatcher {
	d := &Dispatcher{cfg: cfg.withDefaults(len(addrs))}
	for _, a := range addrs {
		d.nodes = append(d.nodes, &node{client: NewClient(a), needProbe: true})
	}
	return d
}

// Tenant stamps every node client with a tenant identity (see
// Client.Tenant).
func (d *Dispatcher) Tenant(t string) *Dispatcher {
	for _, n := range d.nodes {
		n.client.Tenant = t
	}
	return d
}

// Stats returns per-node dispatch accounting, in configuration order.
func (d *Dispatcher) Stats() []NodeStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	now := time.Now()
	out := make([]NodeStats, 0, len(d.nodes))
	for _, n := range d.nodes {
		out = append(out, NodeStats{
			Addr: n.client.Base, Inflight: n.inflight,
			Dispatched: n.dispatched, Failures: n.failures,
			BreakerTrips: n.breakerTrips, BreakerOpen: n.openUntil.After(now),
		})
	}
	return out
}

// Redispatches returns how many cell attempts were moved to another node
// after a failure.
func (d *Dispatcher) Redispatches() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.redispatches
}

// pick selects the least-loaded node whose breaker is closed, reserving
// an inflight slot. A node coming out of cooldown is health-probed first
// (half-open); a failed probe re-trips its breaker and selection moves
// on. When every breaker is open, pick waits for the earliest cooldown.
func (d *Dispatcher) pick(ctx context.Context) (*node, error) {
	for {
		d.mu.Lock()
		now := time.Now()
		var best *node
		var earliest time.Time
		for _, n := range d.nodes {
			if n.openUntil.After(now) {
				if earliest.IsZero() || n.openUntil.Before(earliest) {
					earliest = n.openUntil
				}
				continue
			}
			if best == nil || n.inflight < best.inflight {
				best = n
			}
		}
		if best == nil {
			d.mu.Unlock()
			if earliest.IsZero() {
				return nil, errors.New("service: dispatch: no nodes configured")
			}
			select {
			case <-time.After(time.Until(earliest) + 10*time.Millisecond):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			continue
		}
		probe := best.needProbe
		best.inflight++
		d.mu.Unlock()
		if probe {
			hctx, cancel := context.WithTimeout(ctx, d.cfg.HealthTimeout)
			err := best.client.Health(hctx)
			cancel()
			if err != nil {
				d.release(best)
				d.noteFailure(best, err)
				if ctx.Err() != nil {
					return nil, ctx.Err()
				}
				continue
			}
			d.mu.Lock()
			best.needProbe = false
			best.consec = 0
			d.mu.Unlock()
		}
		return best, nil
	}
}

func (d *Dispatcher) release(n *node) {
	d.mu.Lock()
	n.inflight--
	d.mu.Unlock()
}

func (d *Dispatcher) noteSuccess(n *node) {
	d.mu.Lock()
	n.consec = 0
	n.dispatched++
	d.mu.Unlock()
}

func (d *Dispatcher) noteFailure(n *node, err error) {
	d.mu.Lock()
	n.consec++
	n.failures++
	tripped := false
	if n.consec >= d.cfg.BreakerThreshold && !n.openUntil.After(time.Now()) {
		n.openUntil = time.Now().Add(d.cfg.BreakerCooldown)
		n.needProbe = true
		n.breakerTrips++
		tripped = true
	}
	d.mu.Unlock()
	if tripped {
		d.cfg.Logf("dispatch: node %s breaker open for %v after %d consecutive failures (last: %v)",
			n.client.Base, d.cfg.BreakerCooldown, d.cfg.BreakerThreshold, err)
	}
}

// RunCell runs one cell with failover: pick a node, run, and on node
// failure (anything but an admission-time *RequestError) re-dispatch to
// another pick after a jittered, doubling backoff, up to MaxAttempts.
func (d *Dispatcher) RunCell(ctx context.Context, cell sweep.Cell, faults *sweep.FaultAxis, realMsgDelayUS int64) (*sweep.CellResult, error) {
	backoff := d.cfg.Backoff
	for attempt := 1; ; attempt++ {
		n, err := d.pick(ctx)
		if err != nil {
			return nil, err
		}
		res, err := n.client.RunCell(ctx, cell, faults, realMsgDelayUS)
		d.release(n)
		if err == nil {
			d.noteSuccess(n)
			return res, nil
		}
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			// The node is healthy; the request itself can never run. No
			// other node will accept it either.
			d.noteSuccess(n)
			return nil, err
		}
		d.noteFailure(n, err)
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		if attempt >= d.cfg.MaxAttempts {
			return nil, fmt.Errorf("service: dispatch: cell %s failed on %d attempts, last node %s: %w",
				cell.ID, attempt, n.client.Base, err)
		}
		d.mu.Lock()
		d.redispatches++
		d.mu.Unlock()
		wait := backoff + time.Duration(float64(backoff)*d.cfg.Rand())
		d.cfg.Logf("dispatch: cell %s failed on %s (%v); re-dispatching in %v (attempt %d/%d)",
			cell.ID, n.client.Base, err, wait.Round(time.Millisecond), attempt+1, d.cfg.MaxAttempts)
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > d.cfg.MaxBackoff {
			backoff = d.cfg.MaxBackoff
		}
	}
}

// Run drives every cell through RunCell with Workers concurrent slots,
// delivering each result to record as it lands (record must be safe for
// concurrent use — sweep.Record is). It returns the first cell error, but
// keeps dispatching the remaining cells so one poisoned cell does not
// strand the sweep.
func (d *Dispatcher) Run(ctx context.Context, cells []sweep.Cell, faults *sweep.FaultAxis, realMsgDelayUS int64, record func(*sweep.CellResult) error) error {
	jobs := make(chan sweep.Cell)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
	}
	for i := 0; i < d.cfg.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for c := range jobs {
				res, err := d.RunCell(ctx, c, faults, realMsgDelayUS)
				if err != nil {
					fail(fmt.Errorf("cell %s: %w", c.ID, err))
					continue
				}
				if err := record(res); err != nil {
					fail(err)
				}
			}
		}()
	}
feed:
	for _, c := range cells {
		select {
		case jobs <- c:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	if firstErr == nil {
		firstErr = ctx.Err()
	}
	return firstErr
}
