package service

import (
	"errors"
	"testing"
	"time"

	"lrcrace/internal/sweep"
)

// TestGoFrontSession is the service half of the gofront acceptance
// criterion: a go-frontend session is admitted, runs to StatusOK with
// gofront metrics in its result, and streams its race reports into the
// durable store as KindRace records — one per report, attributed to the
// session.
func TestGoFrontSession(t *testing.T) {
	req := RunRequest{App: "KV", Frontend: "go", Procs: 3, Racy: true, HotSkew: 0.7, Seed: 3}
	want := raceKeys(runStandalone(t, req).Races)
	if len(want) == 0 {
		t.Fatal("racy KV reference run found no races; streaming check would be vacuous")
	}

	svc := New(Config{MaxSessions: 2, QueueDepth: 4, SessionTimeout: time.Minute})
	defer svc.Close()

	sess, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sess.Done():
	case <-time.After(time.Minute):
		t.Fatalf("session %s never finished", sess.ID())
	}

	res := sess.Result()
	if res == nil || res.Status != sweep.StatusOK {
		t.Fatalf("session result %+v, want StatusOK", res)
	}
	if res.Metrics == nil || res.Metrics.CounterTotal("gofront_intervals_total") == 0 {
		t.Fatalf("session result missing gofront metrics: %s", metricsJSON(t, res))
	}
	if got := raceKeys(sess.Races()); len(got) != len(want) {
		t.Fatalf("session races %v, standalone %v", got, want)
	}

	recs, _, _ := svc.Store().Since(0, sess.ID(), 0)
	var raceRecs int
	for _, r := range recs {
		if r.Kind == KindRace {
			raceRecs++
		}
	}
	if raceRecs != len(sess.Races()) {
		t.Fatalf("%d KindRace records in store, session result has %d reports", raceRecs, len(sess.Races()))
	}

	// A clean session of the same workload comes back raceless.
	clean, err := svc.Submit(RunRequest{App: "Sessions", Frontend: "go", Procs: 3, HotSkew: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-clean.Done():
	case <-time.After(time.Minute):
		t.Fatalf("session %s never finished", clean.ID())
	}
	if res := clean.Result(); res == nil || res.Status != sweep.StatusOK || res.Races != 0 {
		t.Fatalf("clean Sessions session: %+v", res)
	}
}

// TestGoFrontAdmission: malformed go-frontend requests are refused with a
// typed *RequestError before any pool slot is spent.
func TestGoFrontAdmission(t *testing.T) {
	svc := New(Config{MaxSessions: 1})
	defer svc.Close()
	cases := []struct {
		name string
		req  RunRequest
	}{
		{"unknown frontend", RunRequest{App: "KV", Frontend: "rust"}},
		{"go frontend on dsm app", RunRequest{App: "FFT", Frontend: "go"}},
		{"gofront workload without frontend", RunRequest{App: "KV"}},
		{"go with protocol", RunRequest{App: "KV", Frontend: "go", Protocol: "mw"}},
		{"go with sharded check", RunRequest{App: "KV", Frontend: "go", Sharded: true}},
		{"go without checkpoint layer", RunRequest{App: "KV", Frontend: "go", Checkpoint: boolPtr(false)}},
		{"hot skew on dsm app", RunRequest{App: "FFT", HotSkew: 0.5}},
		{"racy on dsm app", RunRequest{App: "FFT", Racy: true}},
		{"hot skew out of range", RunRequest{App: "KV", Frontend: "go", HotSkew: 1.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := svc.Submit(tc.req)
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("Submit(%+v) = %v, want *RequestError", tc.req, err)
			}
		})
	}
	if got := len(svc.Sessions()); got != 0 {
		t.Fatalf("%d sessions admitted by invalid go-frontend requests", got)
	}
}
