package service

import (
	"bytes"
	"context"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lrcrace/internal/sweep"
)

// TestRemoteDispatchByteIdentical is the distributed-sweep acceptance
// test: the same 2×2 grid executed (a) by a local sweep pool and (b) by
// dispatching every cell to a detection service and merging the returned
// results through sweep.Record produces a byte-identical plan manifest
// and a byte-identical aggregated metrics document.
func TestRemoteDispatchByteIdentical(t *testing.T) {
	mkPlan := func() *sweep.Plan {
		return &sweep.Plan{
			Apps:   []string{"FFT", "SOR"},
			Scales: []float64{0.25},
			Procs:  []int{2},
			Detect: []bool{true, false},
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// Local reference.
	dirLocal := t.TempDir()
	local, err := sweep.New(mkPlan(), sweep.Options{Workers: 2, Dir: dirLocal})
	if err != nil {
		t.Fatal(err)
	}
	sumLocal, err := local.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sumLocal.OK != sumLocal.Total {
		t.Fatalf("local sweep not clean: %+v", sumLocal)
	}

	// Remote: the same grid through a service, merged via Record — the
	// exact loop `sweeprun -remote` runs.
	svc := New(Config{MaxSessions: 4})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Close()
	client := NewClient(ts.URL)

	dirRemote := t.TempDir()
	remote, err := sweep.New(mkPlan(), sweep.Options{Workers: 2, Dir: dirRemote})
	if err != nil {
		t.Fatal(err)
	}
	pending := remote.Pending()
	if len(pending) != 4 {
		t.Fatalf("pending = %d cells, want 4", len(pending))
	}
	for _, c := range pending {
		res, err := client.RunCell(ctx, c, nil, 0)
		if err != nil {
			t.Fatalf("cell %s: %v", c.ID, err)
		}
		if res.ID != c.ID {
			t.Fatalf("service returned result for %q, submitted %q", res.ID, c.ID)
		}
		if err := remote.Record(res); err != nil {
			t.Fatal(err)
		}
	}
	sumRemote := remote.Summary()
	if sumRemote.OK != sumRemote.Total || sumRemote.Missing != 0 {
		t.Fatalf("remote sweep not clean: %+v", sumRemote)
	}

	// The manifests must be byte-identical (same plan, same grid).
	mLocal, err := os.ReadFile(filepath.Join(dirLocal, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	mRemote, err := os.ReadFile(filepath.Join(dirRemote, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mLocal, mRemote) {
		t.Error("manifest.json differs between local and remote execution")
	}

	// The deterministic aggregated metrics document must be byte-identical:
	// the service ran each cell with the same scoped-recorder setup the
	// local pool uses, and Record merged through the same path.
	var bufLocal, bufRemote bytes.Buffer
	if err := local.WriteMetricsJSON(&bufLocal); err != nil {
		t.Fatal(err)
	}
	if err := remote.WriteMetricsJSON(&bufRemote); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bufLocal.Bytes(), bufRemote.Bytes()) {
		t.Errorf("aggregated metrics JSON differs: local %d bytes, remote %d bytes",
			bufLocal.Len(), bufRemote.Len())
	}

	// Race counts agree cell by cell.
	localRaces := map[string]int{}
	for _, r := range sumLocal.Cells {
		localRaces[r.ID] = r.Races
	}
	for _, r := range sumRemote.Cells {
		if r.Races != localRaces[r.ID] {
			t.Errorf("cell %s: remote %d races, local %d", r.ID, r.Races, localRaces[r.ID])
		}
	}

	// The remote directory resumes like a local one: everything terminal,
	// nothing pending.
	resumed, err := sweep.New(mkPlan(), sweep.Options{Dir: dirRemote})
	if err != nil {
		t.Fatal(err)
	}
	if p := resumed.Pending(); len(p) != 0 {
		t.Errorf("resume after remote dispatch still has %d pending cells", len(p))
	}
}
