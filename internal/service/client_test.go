package service

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lrcrace/internal/sweep"
)

func hdr(kv ...string) http.Header {
	h := http.Header{}
	for i := 0; i+1 < len(kv); i += 2 {
		h.Set(kv[i], kv[i+1])
	}
	return h
}

// TestAPIErrorDecode covers the client's error decode on well-formed,
// malformed, and empty bodies: every shape must degrade to a useful typed
// or descriptive error — never a blank message, never a panic.
func TestAPIErrorDecode(t *testing.T) {
	mustJSON := func(code, msg string) []byte {
		b, _ := json.Marshal(apiError{Code: code, Error: msg})
		return b
	}
	t.Run("typed decode", func(t *testing.T) {
		err := apiErrorOf(400, nil, mustJSON(codeInvalidRequest, "no application named"))
		var reqErr *RequestError
		if !errors.As(err, &reqErr) || reqErr.Reason != "no application named" {
			t.Fatalf("got %T %v", err, err)
		}
		err = apiErrorOf(503, hdr("Retry-After", "3"), mustJSON(codeOverloaded, "queue full"))
		var ovl *OverloadError
		if !errors.As(err, &ovl) || ovl.RetryAfter != 3*time.Second || ovl.Detail != "queue full" {
			t.Fatalf("got %T %+v", err, ovl)
		}
		err = apiErrorOf(429, hdr("Retry-After", "2"), mustJSON(codeQuota, `tenant "a" over quota`))
		var quo *QuotaError
		if !errors.As(err, &quo) || quo.RetryAfter != 2*time.Second {
			t.Fatalf("got %T %+v", err, quo)
		}
		if err = apiErrorOf(503, nil, mustJSON(codeShuttingDown, "bye")); !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("malformed 503 stays retryable", func(t *testing.T) {
		err := apiErrorOf(503, hdr("Retry-After", "5"), []byte("<html>proxy overload page</html>"))
		var ovl *OverloadError
		if !errors.As(err, &ovl) {
			t.Fatalf("non-JSON 503 lost its type: %T %v", err, err)
		}
		if ovl.RetryAfter != 5*time.Second {
			t.Errorf("Retry-After dropped: %+v", ovl)
		}
		if !strings.Contains(err.Error(), "proxy overload page") {
			t.Errorf("raw message lost: %v", err)
		}
	})
	t.Run("malformed 429 stays retryable", func(t *testing.T) {
		err := apiErrorOf(429, nil, []byte(`{"broken json`))
		var quo *QuotaError
		if !errors.As(err, &quo) {
			t.Fatalf("non-JSON 429 lost its type: %T %v", err, err)
		}
	})
	t.Run("empty bodies", func(t *testing.T) {
		err := apiErrorOf(503, nil, nil)
		var ovl *OverloadError
		if !errors.As(err, &ovl) || err.Error() == "" {
			t.Fatalf("empty 503 body: %T %q", err, err.Error())
		}
		err = apiErrorOf(500, nil, []byte("   \n"))
		if err == nil || !strings.Contains(err.Error(), "500") || !strings.Contains(err.Error(), "empty") {
			t.Fatalf("empty 500 body: %v", err)
		}
	})
	t.Run("non-JSON 400 keeps the message", func(t *testing.T) {
		err := apiErrorOf(400, nil, []byte("plain text complaint"))
		if err == nil || !strings.Contains(err.Error(), "plain text complaint") {
			t.Fatalf("got %v", err)
		}
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			t.Error("unparseable 400 must not be typed as a validated rejection")
		}
	})
	t.Run("long bodies truncated", func(t *testing.T) {
		err := apiErrorOf(502, nil, []byte(strings.Repeat("x", 5000)))
		if len(err.Error()) > 300 {
			t.Fatalf("error message is %d bytes; snippet not truncated", len(err.Error()))
		}
	})
	t.Run("retry-after parsing", func(t *testing.T) {
		for _, bad := range []string{"", "soon", "-2", "Wed, 21 Oct 2015 07:28:00 GMT"} {
			if d := parseRetryAfter(hdr("Retry-After", bad)); d != 0 {
				t.Errorf("Retry-After %q parsed to %v, want 0", bad, d)
			}
		}
		if d := parseRetryAfter(nil); d != 0 {
			t.Errorf("nil header: %v", d)
		}
		if d := parseRetryAfter(hdr("Retry-After", " 4 ")); d != 4*time.Second {
			t.Errorf("padded value: %v", d)
		}
	})
}

// TestRunCellHonorsRetryAfter: a 503 with Retry-After overrides the
// client's own 50ms backoff schedule, and the jitter source is consulted
// so rejected fleets don't retry in lockstep.
func TestRunCellHonorsRetryAfter(t *testing.T) {
	var submits atomic.Int32
	cell := sweep.Cell{ID: "FFT-test", App: "FFT", Scale: 0.25, Procs: 2}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", func(w http.ResponseWriter, r *http.Request) {
		var req RunRequest
		json.NewDecoder(r.Body).Decode(&req)
		if req.Tenant != "team-a" {
			t.Errorf("client did not stamp its tenant: %+v", req)
		}
		if submits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte("busy, come back"))
			return
		}
		writeJSON(w, http.StatusAccepted, SessionInfo{ID: "s1", State: StateQueued})
	})
	mux.HandleFunc("GET /sessions/s1", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, SessionInfo{ID: "s1", State: StateDone,
			Result: &sweep.CellResult{ID: cell.ID, Status: sweep.StatusOK}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	jitterCalls := 0
	client := NewClient(ts.URL)
	client.Tenant = "team-a"
	client.Rand = func() float64 { jitterCalls++; return 0 }
	start := time.Now()
	res, err := client.RunCell(context.Background(), cell, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ID != cell.ID {
		t.Fatalf("result %+v", res)
	}
	if got := submits.Load(); got != 2 {
		t.Fatalf("submits = %d, want 2 (one rejection, one success)", got)
	}
	if jitterCalls == 0 {
		t.Error("backoff never consulted the jitter source")
	}
	// The server said 1s; the client's own schedule would have waited 50ms.
	if el := time.Since(start); el < 900*time.Millisecond {
		t.Errorf("retried after %v; Retry-After: 1 was ignored", el)
	}
}
