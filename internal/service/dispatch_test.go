package service

import (
	"bytes"
	"context"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"lrcrace/internal/sweep"
)

// failoverPlan is the grid the dispatch tests run: deterministic apps, so
// every execution — local pool, healthy multi-node, multi-node with a
// kill — must produce byte-identical manifests and metrics. The real
// message delay keeps each cell running long enough that a mid-run kill
// demonstrably interrupts sessions.
func failoverPlan() *sweep.Plan {
	return &sweep.Plan{
		Apps:           []string{"FFT", "SOR"},
		Scales:         []float64{0.25},
		Procs:          []int{2},
		Detect:         []bool{true, false},
		RealMsgDelayUS: 1000,
	}
}

// runLocalReference runs the plan in a local sweep pool and returns its
// checkpoint dir, summary, and metrics document.
func runLocalReference(t *testing.T, ctx context.Context) (string, *sweep.Summary, []byte) {
	t.Helper()
	dir := t.TempDir()
	local, err := sweep.New(failoverPlan(), sweep.Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := local.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sum.OK != sum.Total {
		t.Fatalf("local reference not clean: %+v", sum)
	}
	var buf bytes.Buffer
	if err := local.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return dir, sum, buf.Bytes()
}

// assertSweepMatchesLocal compares a dispatched sweep's manifest and
// metrics byte-for-byte against the local reference.
func assertSweepMatchesLocal(t *testing.T, s *sweep.Sweep, dir, localDir string, localMetrics []byte) {
	t.Helper()
	mLocal, err := os.ReadFile(filepath.Join(localDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	mRemote, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mLocal, mRemote) {
		t.Error("manifest.json differs from the local run")
	}
	var buf bytes.Buffer
	if err := s.WriteMetricsJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(localMetrics, buf.Bytes()) {
		t.Errorf("aggregated metrics differ from the local run (%d vs %d bytes)",
			len(localMetrics), buf.Len())
	}
}

// TestDispatchFailoverByteIdentical is the failover acceptance test: a
// 2-node remote sweep with one node killed mid-run completes via the
// survivor, and manifest + deterministic aggregate metrics are
// byte-identical to the local run.
func TestDispatchFailoverByteIdentical(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	localDir, sumLocal, localMetrics := runLocalReference(t, ctx)

	svc0 := New(Config{MaxSessions: 2})
	svc1 := New(Config{MaxSessions: 2})
	defer svc1.Close()
	defer svc0.Close()
	ts0 := httptest.NewServer(svc0.Handler())
	ts1 := httptest.NewServer(svc1.Handler())
	defer ts1.Close()

	dir := t.TempDir()
	s, err := sweep.New(failoverPlan(), sweep.Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher([]string{ts0.URL, ts1.URL}, DispatchConfig{
		Workers:          2,
		MaxAttempts:      8,
		Backoff:          20 * time.Millisecond,
		MaxBackoff:       200 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
		Rand:             func() float64 { return 0.5 },
		Logf:             t.Logf,
	})

	runErr := make(chan error, 1)
	go func() {
		runErr <- d.Run(ctx, s.Pending(), failoverPlan().Faults, failoverPlan().RealMsgDelayUS, s.Record)
	}()

	// Kill node 0 the moment it has live work: in-flight long-polls are cut
	// and every later request to it is refused.
	killed := false
	for deadline := time.Now().Add(time.Minute); time.Now().Before(deadline); {
		c := svc0.Counts()
		if c[StateQueued]+c[StateRunning] > 0 {
			ts0.CloseClientConnections()
			ts0.Close()
			killed = true
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	if !killed {
		t.Fatal("node 0 never received a session to be killed under")
	}
	if err := <-runErr; err != nil {
		t.Fatalf("dispatch with a killed node did not complete: %v", err)
	}
	if d.Redispatches() == 0 {
		t.Error("no re-dispatches recorded despite the mid-run kill")
	}

	sum := s.Summary()
	if sum.OK != sum.Total || sum.Missing != 0 {
		t.Fatalf("failover sweep not clean: %+v", sum)
	}
	assertSweepMatchesLocal(t, s, dir, localDir, localMetrics)

	// Race counts agree cell by cell with the local reference.
	localRaces := map[string]int{}
	for _, r := range sumLocal.Cells {
		localRaces[r.ID] = r.Races
	}
	for _, r := range sum.Cells {
		if r.Races != localRaces[r.ID] {
			t.Errorf("cell %s: failover run %d races, local %d", r.ID, r.Races, localRaces[r.ID])
		}
	}
}

// TestDispatchServiceRestartSameRaceSet is the service-level chaos test:
// a single-node remote sweep whose racedsvc is killed mid-sweep and
// restarted on the same durable data dir completes with the same race
// set (and byte-identical manifest) as a local run, with the pre-kill
// report history replayed intact.
func TestDispatchServiceRestartSameRaceSet(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	localDir, sumLocal, localMetrics := runLocalReference(t, ctx)

	dataDir := t.TempDir()
	svc0, _, err := Open(Config{MaxSessions: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	srv0 := &http.Server{Handler: svc0.Handler()}
	go srv0.Serve(l)

	dir := t.TempDir()
	s, err := sweep.New(failoverPlan(), sweep.Options{Workers: 2, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher([]string{addr}, DispatchConfig{
		Workers:          2,
		MaxAttempts:      20,
		Backoff:          20 * time.Millisecond,
		MaxBackoff:       200 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  100 * time.Millisecond,
		Rand:             func() float64 { return 0.5 },
		Logf:             t.Logf,
	})
	runErr := make(chan error, 1)
	go func() {
		runErr <- d.Run(ctx, s.Pending(), failoverPlan().Faults, failoverPlan().RealMsgDelayUS, s.Record)
	}()

	// Kill the node mid-sweep: cut the HTTP plane, then stop the service
	// (draining its in-flight sessions into the durable log).
	for deadline := time.Now().Add(time.Minute); time.Now().Before(deadline); {
		c := svc0.Counts()
		if c[StateQueued]+c[StateRunning] > 0 {
			break
		}
		time.Sleep(500 * time.Microsecond)
	}
	srv0.Close()
	svc0.Close()

	// Restart on the same address and data dir; the dispatcher's breaker
	// half-opens, health-probes, and resumes.
	svc1, info, err := Open(Config{MaxSessions: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc1.Close()
	if info.Records == 0 {
		t.Error("restarted service replayed nothing; pre-kill history lost")
	}
	if info.Truncation != "" {
		t.Errorf("clean shutdown left a truncated log: %s", info.Truncation)
	}
	l2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv1 := &http.Server{Handler: svc1.Handler()}
	defer srv1.Close()
	go srv1.Serve(l2)

	if err := <-runErr; err != nil {
		t.Fatalf("sweep did not survive the service restart: %v", err)
	}
	sum := s.Summary()
	if sum.OK != sum.Total || sum.Missing != 0 {
		t.Fatalf("restart sweep not clean: %+v", sum)
	}
	assertSweepMatchesLocal(t, s, dir, localDir, localMetrics)
	localRaces := map[string]int{}
	for _, r := range sumLocal.Cells {
		localRaces[r.ID] = r.Races
	}
	for _, r := range sum.Cells {
		if r.Races != localRaces[r.ID] {
			t.Errorf("cell %s: restarted run %d races, local %d (race set must survive the kill)",
				r.ID, r.Races, localRaces[r.ID])
		}
	}
}

// TestDispatchRequestErrorNotRetried: an admission-time invalid request
// fails immediately without burning failover attempts or tripping
// breakers — the node is healthy, the request is not.
func TestDispatchRequestErrorNotRetried(t *testing.T) {
	svc := New(Config{})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	d := NewDispatcher([]string{ts.URL}, DispatchConfig{Workers: 1})
	_, err := d.RunCell(context.Background(), sweep.Cell{ID: "bogus", App: "NoSuchApp", Procs: 2}, nil, 0)
	var reqErr *RequestError
	if !errors.As(err, &reqErr) {
		t.Fatalf("invalid cell returned %T (%v), want *RequestError", err, err)
	}
	for _, ns := range d.Stats() {
		if ns.Failures != 0 || ns.BreakerTrips != 0 {
			t.Errorf("request error charged to the node: %+v", ns)
		}
	}
}
