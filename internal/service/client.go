package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"time"

	"lrcrace/internal/sweep"
)

// Client talks to a running detection service: submit sessions, wait for
// their results, tail the report store. It is the dispatch half of
// distributed sweeps — `sweeprun -remote <addr>` drives every pending
// cell through RunCell and merges the returned results via sweep.Record.
type Client struct {
	// Base is the service root, e.g. "http://127.0.0.1:8321".
	Base string
	// HTTP is the underlying client; nil → a client with a 90s timeout
	// (long-polls are capped at 60s server-side).
	HTTP *http.Client
	// Tenant, when non-empty, is stamped on every submitted request so the
	// service accounts the sessions (and enforces quotas) against it.
	Tenant string
	// Rand supplies backoff jitter in [0,1); nil → math/rand. Tests pin it
	// for determinism.
	Rand func() float64
}

// NewClient builds a client for addr ("host:port" or a full http URL).
func NewClient(addr string) *Client {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return &Client{Base: strings.TrimRight(addr, "/"), HTTP: &http.Client{Timeout: 90 * time.Second}}
}

func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 90 * time.Second}
}

// apiErrorOf decodes a non-2xx response into the matching typed error.
// Malformed and empty bodies still yield useful errors: a 503 or 429
// degrades to the typed retryable error (so dispatch backoff keeps
// working even through a proxy that rewrote the body) with the raw
// message as Detail, everything else to a descriptive untyped error. The
// Retry-After header, when parseable, is surfaced on the typed error.
func apiErrorOf(status int, header http.Header, body []byte) error {
	retryAfter := parseRetryAfter(header)
	var ae apiError
	if json.Unmarshal(body, &ae) == nil && ae.Code != "" {
		switch ae.Code {
		case codeInvalidRequest:
			return &RequestError{Reason: ae.Error}
		case codeQuota:
			return &QuotaError{RetryAfter: retryAfter, Detail: ae.Error}
		case codeOverloaded:
			return &OverloadError{RetryAfter: retryAfter, Detail: ae.Error}
		case codeShuttingDown:
			return ErrClosed
		}
		return fmt.Errorf("service: http %d: %s", status, ae.Error)
	}
	detail := string(bytes.TrimSpace(body))
	if len(detail) > 200 {
		detail = detail[:200] + "..."
	}
	switch status {
	case http.StatusServiceUnavailable:
		return &OverloadError{RetryAfter: retryAfter, Detail: nonEmpty(detail, "503 with unreadable body")}
	case http.StatusTooManyRequests:
		return &QuotaError{RetryAfter: retryAfter, Detail: nonEmpty(detail, "429 with unreadable body")}
	}
	if detail == "" {
		return fmt.Errorf("service: http %d (empty error body)", status)
	}
	return fmt.Errorf("service: http %d: %s", status, detail)
}

func nonEmpty(s, fallback string) string {
	if s == "" {
		return fallback
	}
	return s
}

// parseRetryAfter reads an integer-seconds Retry-After header; 0 when
// absent or in the (unsupported) HTTP-date form.
func parseRetryAfter(h http.Header) time.Duration {
	if h == nil {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(h.Get("Retry-After")))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

func (c *Client) getJSON(ctx context.Context, path string, out interface{}) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+path, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		return apiErrorOf(resp.StatusCode, resp.Header, body)
	}
	return json.Unmarshal(body, out)
}

// Health checks the service's /healthz endpoint.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.Base+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("service: /healthz returned %d", resp.StatusCode)
	}
	return nil
}

// Submit opens a session. The returned errors mirror Service.Submit:
// *RequestError (never retryable), *OverloadError and ErrClosed
// (retryable after backoff).
func (c *Client) Submit(ctx context.Context, r RunRequest) (SessionInfo, error) {
	if r.Tenant == "" {
		r.Tenant = c.Tenant
	}
	b, err := json.Marshal(r)
	if err != nil {
		return SessionInfo{}, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+"/sessions", bytes.NewReader(b))
	if err != nil {
		return SessionInfo{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		return SessionInfo{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return SessionInfo{}, err
	}
	if resp.StatusCode/100 != 2 {
		return SessionInfo{}, apiErrorOf(resp.StatusCode, resp.Header, body)
	}
	var info SessionInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return SessionInfo{}, err
	}
	return info, nil
}

// Wait long-polls the session until it reaches a terminal state (or ctx
// ends), returning its final info.
func (c *Client) Wait(ctx context.Context, id string) (SessionInfo, error) {
	for {
		var info SessionInfo
		if err := c.getJSON(ctx, "/sessions/"+id+"?wait=30s", &info); err != nil {
			return SessionInfo{}, err
		}
		switch info.State {
		case StateDone, StateCanceled:
			return info, nil
		}
		if err := ctx.Err(); err != nil {
			return SessionInfo{}, err
		}
	}
}

// Reports fetches one report-store batch (see ReportBatch).
func (c *Client) Reports(ctx context.Context, session string, since uint64, max int) (ReportBatch, error) {
	path := fmt.Sprintf("/reports?since=%d&max=%d", since, max)
	if session != "" {
		path += "&session=" + session
	}
	var batch ReportBatch
	err := c.getJSON(ctx, path, &batch)
	return batch, err
}

// RunCell runs one sweep cell remotely: submit (retrying overload and
// tenant-quota rejections with jittered backoff), wait, and return the
// cell's result — interchangeable with running the cell in a local sweep
// pool. faults and realMsgDelayUS carry the plan-level template the
// cell's grid was expanded under.
func (c *Client) RunCell(ctx context.Context, cell sweep.Cell, faults *sweep.FaultAxis, realMsgDelayUS int64) (*sweep.CellResult, error) {
	req := RequestFor(cell, faults, realMsgDelayUS)
	backoff := 50 * time.Millisecond
	var info SessionInfo
	for {
		var err error
		info, err = c.Submit(ctx, req)
		if err == nil {
			break
		}
		retryAfter, retryable := retryableAfter(err)
		if !retryable {
			return nil, err
		}
		// The server's Retry-After wins over our own schedule; either way
		// the wait is jittered so a fleet of rejected cells does not retry
		// in lockstep and re-overload the node in one synchronized wave.
		wait := backoff
		if retryAfter > 0 {
			wait = retryAfter
		}
		wait += time.Duration(float64(wait) * c.rand())
		select {
		case <-time.After(wait):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if backoff *= 2; backoff > time.Second {
			backoff = time.Second
		}
	}
	final, err := c.Wait(ctx, info.ID)
	if err != nil {
		return nil, err
	}
	if final.State == StateCanceled || final.Result == nil {
		return nil, fmt.Errorf("service: session %s ended %s without a result", info.ID, final.State)
	}
	return final.Result, nil
}

// retryableAfter classifies a Submit error: overload and tenant-quota
// rejections clear on their own (sessions finish), so they are worth
// retrying, with the server's Retry-After when it sent one.
func retryableAfter(err error) (time.Duration, bool) {
	var ovl *OverloadError
	if errors.As(err, &ovl) {
		return ovl.RetryAfter, true
	}
	var quo *QuotaError
	if errors.As(err, &quo) {
		return quo.RetryAfter, true
	}
	return 0, false
}

func (c *Client) rand() float64 {
	if c.Rand != nil {
		return c.Rand()
	}
	return mrand.Float64()
}
