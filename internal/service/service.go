package service

import (
	"errors"
	"fmt"
	"io"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"lrcrace/internal/apps"
	"lrcrace/internal/castore"
	"lrcrace/internal/gofront"
	"lrcrace/internal/harness"
	"lrcrace/internal/race"
	"lrcrace/internal/sweep"
	"lrcrace/internal/telemetry"
)

// RunRequest is what a client submits to open a session: the same axes a
// sweep cell pins (see sweep.Plan), as one concrete configuration. The
// zero values of the optional fields take the sweep's defaults (scale 1,
// 4 procs, single-writer protocol, detection on, checkpointing on).
type RunRequest struct {
	// Tenant names the client the session is accounted to; empty maps to
	// DefaultTenant. Per-tenant admission quotas (Config.TenantMaxActive,
	// TenantMaxQueued) are enforced against this identity, so one noisy
	// tenant saturates its own quota instead of the whole service.
	Tenant      string           `json:"tenant,omitempty"`
	App         string           `json:"app"`
	Scale       float64          `json:"scale,omitempty"`
	Procs       int              `json:"procs,omitempty"`
	Protocol    string           `json:"protocol,omitempty"`
	Detect      *bool            `json:"detect,omitempty"`
	Sharded     bool             `json:"sharded,omitempty"`
	Checkpoint  *bool            `json:"checkpoint,omitempty"`
	CrashMode   string           `json:"crash_mode,omitempty"`
	CorruptMode string           `json:"corrupt_mode,omitempty"`
	Seed        int64            `json:"seed,omitempty"`
	// Frontend selects the execution engine: "" or "dsm" for the simulated
	// DSM, "go" for the gofront happens-before frontend, whose apps are
	// the gofront workloads and whose knobs are HotSkew and Racy.
	Frontend string           `json:"frontend,omitempty"`
	HotSkew  float64          `json:"hot_skew,omitempty"`
	Racy     bool             `json:"racy,omitempty"`
	Faults   *sweep.FaultAxis `json:"faults,omitempty"`
	// RealMsgDelayUS overrides the per-app real-latency coupling
	// (microseconds); 0 keeps the app default.
	RealMsgDelayUS int64 `json:"real_msg_delay_us,omitempty"`
}

// RequestFor builds the run request that reproduces one sweep cell, with
// the plan-level fault template and message-delay override. It is the
// remote-dispatch bridge: submitting the result as a session yields a
// CellResult interchangeable with running the cell locally.
func RequestFor(c sweep.Cell, faults *sweep.FaultAxis, realMsgDelayUS int64) RunRequest {
	det, ck := c.Detect, c.Checkpoint
	return RunRequest{
		App:            c.App,
		Scale:          c.Scale,
		Procs:          c.Procs,
		Protocol:       c.Protocol,
		Detect:         &det,
		Sharded:        c.Sharded,
		Checkpoint:     &ck,
		CrashMode:      c.CrashMode,
		CorruptMode:    c.CorruptMode,
		Seed:           c.Seed,
		Frontend:       c.Frontend,
		HotSkew:        c.HotSkew,
		Racy:           c.Racy,
		Faults:         faults,
		RealMsgDelayUS: realMsgDelayUS,
	}
}

// plan lifts the request into a one-cell sweep plan, which is where the
// grid's config-time rejection logic already lives.
func (r *RunRequest) plan() *sweep.Plan {
	p := &sweep.Plan{
		Apps:           []string{r.App},
		Seeds:          []int64{r.Seed},
		Faults:         r.Faults,
		RealMsgDelayUS: r.RealMsgDelayUS,
	}
	if r.Scale != 0 {
		p.Scales = []float64{r.Scale}
	}
	if r.Procs != 0 {
		p.Procs = []int{r.Procs}
	}
	if r.Protocol != "" {
		p.Protocols = []string{r.Protocol}
	}
	if r.Detect != nil {
		p.Detect = []bool{*r.Detect}
	}
	p.Sharded = []bool{r.Sharded}
	if r.Checkpoint != nil {
		p.Checkpoint = []bool{*r.Checkpoint}
	}
	if r.CrashMode != "" {
		p.CrashModes = []string{r.CrashMode}
	}
	if r.CorruptMode != "" {
		p.CorruptModes = []string{r.CorruptMode}
	}
	if r.Frontend != "" {
		p.Frontends = []string{r.Frontend}
	}
	if r.HotSkew != 0 {
		p.HotSkews = []float64{r.HotSkew}
	}
	if r.Racy {
		p.Racy = []bool{true}
	}
	return p
}

// Cell resolves the request to its fully determined grid point, rejecting
// configurations the DSM would refuse to build or that could never run
// (unknown app, sharded check without detection, crash modes on
// non-recoverable apps, corruption without a crash). This is the
// admission-time validation: a rejected request fails with a
// *RequestError before any System exists, never mid-run.
func (r *RunRequest) Cell() (sweep.Cell, harness.RunConfig, error) {
	if r.App == "" {
		return sweep.Cell{}, harness.RunConfig{}, &RequestError{Reason: "no application named"}
	}
	if !harness.KnownFrontend(r.Frontend) {
		return sweep.Cell{}, harness.RunConfig{},
			&RequestError{Reason: fmt.Sprintf("unknown frontend %q (have %v)", r.Frontend, harness.Frontends)}
	}
	if !knownApp(r.App) {
		return sweep.Cell{}, harness.RunConfig{},
			&RequestError{Reason: fmt.Sprintf("unknown application %q (have %v, chaos apps %v, and go-frontend workloads %v)",
				r.App, apps.Names(), harness.ChaosAppNames, gofront.Workloads())}
	}
	p := r.plan()
	cells, err := p.Expand()
	if err != nil {
		return sweep.Cell{}, harness.RunConfig{}, &RequestError{Reason: err.Error()}
	}
	if len(cells) != 1 {
		// Expand silently skips combinations the DSM rejects; name the
		// reason instead of running to failure.
		return sweep.Cell{}, harness.RunConfig{}, &RequestError{Reason: rejectReason(r)}
	}
	cfg, err := p.RunConfig(cells[0])
	if err != nil {
		return sweep.Cell{}, harness.RunConfig{}, &RequestError{Reason: err.Error()}
	}
	if err := harness.ValidateRunConfig(cfg); err != nil {
		return sweep.Cell{}, harness.RunConfig{}, &RequestError{Reason: err.Error()}
	}
	return cells[0], cfg, nil
}

func knownApp(name string) bool {
	if harness.IsChaosApp(name) || gofront.IsWorkload(name) {
		return true
	}
	for _, n := range apps.Names() {
		if n == name {
			return true
		}
	}
	return false
}

// rejectReason names why a one-cell plan expanded to zero cells, in the
// same terms Expand's skip conditions use.
func rejectReason(r *RunRequest) string {
	detect := r.Detect == nil || *r.Detect
	ckpt := r.Checkpoint == nil || *r.Checkpoint
	crash := r.CrashMode != "" && r.CrashMode != "none"
	corrupt := r.CorruptMode != "" && r.CorruptMode != "none"
	goFr := harness.IsGoFrontend(r.Frontend)
	switch {
	case goFr && !gofront.IsWorkload(r.App):
		return fmt.Sprintf("%q is not a go-frontend workload (have %v)", r.App, gofront.Workloads())
	case !goFr && gofront.IsWorkload(r.App):
		return fmt.Sprintf("%q is a go-frontend workload; set frontend to \"go\"", r.App)
	case goFr && r.Protocol != "" && r.Protocol != "sw":
		return "the go frontend has no coherence protocol"
	case goFr && r.Sharded:
		return "the go frontend checks at sync points, not sharded barriers"
	case goFr && !ckpt:
		return "the go frontend has no checkpoint layer to disable"
	case !goFr && (r.HotSkew != 0 || r.Racy):
		return "hot_skew and racy parameterize go-frontend workloads; set frontend to \"go\""
	case r.Sharded && !detect:
		return "sharded check requires detection"
	case crash && !harness.IsChaosApp(r.App):
		return fmt.Sprintf("crash mode %q needs a recoverable chaos app (%v); %s is a whole-program benchmark",
			r.CrashMode, harness.ChaosAppNames, r.App)
	case crash && !ckpt:
		return "crash modes require checkpointing (nothing to roll back to)"
	case crash && r.Procs == 1:
		return "crash modes need at least 2 processes (1 leaves no survivor)"
	case r.CrashMode == "double" && r.Procs > 0 && r.Procs < 3:
		return "crash mode double needs at least 3 processes for two distinct victims"
	case corrupt && !crash:
		return "corruption modes require a crash mode (nothing ever reads the corrupted checkpoints back)"
	}
	return "request maps to no runnable configuration"
}

// RequestError is an admission-time rejection: the request as submitted
// can never run, so the service refuses it up front (HTTP 400) instead of
// failing mid-run.
type RequestError struct{ Reason string }

func (e *RequestError) Error() string { return "service: invalid request: " + e.Reason }

// OverloadError is the typed admission rejection under load: the session
// queue is full. Clients should back off and retry (HTTP 503).
type OverloadError struct {
	Queued, Limit int
	// RetryAfter is the server's suggested backoff (decoded from the
	// Retry-After header on the client side); 0 when the server gave none.
	RetryAfter time.Duration
	// Detail carries the raw server message when the error was decoded
	// from a response the client could not fully parse.
	Detail string
}

func (e *OverloadError) Error() string {
	if e.Detail != "" {
		return "service: overloaded: " + e.Detail
	}
	return fmt.Sprintf("service: overloaded: %d sessions queued (limit %d)", e.Queued, e.Limit)
}

// DefaultTenant is the identity of requests that carry no tenant.
const DefaultTenant = "default"

// QuotaError is the typed per-tenant admission rejection: the tenant is
// at its concurrent-session or queue-depth quota. Only that tenant is
// affected — other tenants keep being admitted — so clients should back
// off and retry (HTTP 429). Scope is "sessions" (TenantMaxActive) or
// "queue" (TenantMaxQueued).
type QuotaError struct {
	Tenant string
	Active int // the tenant's queued+running sessions at rejection time
	Limit  int
	Scope  string
	// RetryAfter mirrors OverloadError.RetryAfter on the client side.
	RetryAfter time.Duration
	// Detail carries the raw server message on the client side, where the
	// structured fields are not recoverable from the response body.
	Detail string
}

func (e *QuotaError) Error() string {
	if e.Detail != "" {
		return "service: tenant quota: " + e.Detail
	}
	return fmt.Sprintf("service: tenant %q over its %s quota: %d active (limit %d)",
		e.Tenant, e.Scope, e.Active, e.Limit)
}

// ErrClosed rejects submissions to a service that is shutting down.
var ErrClosed = errors.New("service: shutting down")

// SessionState is a session's lifecycle position.
type SessionState string

// Session lifecycle states.
const (
	// StateQueued: admitted, waiting for a pool slot.
	StateQueued SessionState = "queued"
	// StateRunning: a worker is executing the session's System.
	StateRunning SessionState = "running"
	// StateDone: terminal; the session has a CellResult.
	StateDone SessionState = "done"
	// StateCanceled: the service shut down before the session ran.
	StateCanceled SessionState = "canceled"
)

// Session is one admitted run request and, eventually, its outcome.
type Session struct {
	id     string
	tenant string
	req    RunRequest
	cfg    harness.RunConfig
	ck     sweep.Cell

	done chan struct{} // closed on done/canceled

	mu     sync.Mutex
	state  SessionState
	rec    *telemetry.Recorder
	result *sweep.CellResult
	races  []race.Report
}

// ID returns the session's identifier (unique within the service).
func (s *Session) ID() string { return s.id }

// Tenant returns the tenant the session is accounted to.
func (s *Session) Tenant() string { return s.tenant }

// State returns the session's current lifecycle state.
func (s *Session) State() SessionState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Done is closed when the session reaches a terminal state.
func (s *Session) Done() <-chan struct{} { return s.done }

// Result returns the session's terminal result (nil before done).
func (s *Session) Result() *sweep.CellResult {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.result
}

// Races returns the session's full race reports (nil before done; the
// live stream carries them incrementally as store records).
func (s *Session) Races() []race.Report {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.races
}

// Info freezes the session for the JSON API.
func (s *Session) Info() SessionInfo {
	s.mu.Lock()
	defer s.mu.Unlock()
	return SessionInfo{ID: s.id, Tenant: s.tenant, State: s.state, Request: s.req, Result: s.result, Races: s.races}
}

// SessionInfo is the JSON view of one session.
type SessionInfo struct {
	ID      string            `json:"id"`
	Tenant  string            `json:"tenant,omitempty"`
	State   SessionState      `json:"state"`
	Request RunRequest        `json:"request"`
	Result  *sweep.CellResult `json:"result,omitempty"`
	Races   []race.Report     `json:"races,omitempty"`
}

// Config tunes the service.
type Config struct {
	// MaxSessions is the concurrent-session pool size; 0 → 4.
	MaxSessions int
	// QueueDepth bounds admitted-but-waiting sessions; 0 → 64. A full
	// queue rejects submissions with *OverloadError.
	QueueDepth int
	// SessionTimeout is the per-session wall deadline; 0 → 2 minutes. A
	// session exceeding it is recorded with sweep.StatusTimeout and its
	// run goroutine abandoned (bounded, recorder-isolated leak — the same
	// containment the sweep's cell pool uses).
	SessionTimeout time.Duration
	// StoreCap bounds report-store retention; 0 → DefaultStoreCap.
	StoreCap int
	// SubscriberBuf bounds each subscriber's buffer; 0 → DefaultSubscriberBuf.
	SubscriberBuf int
	// TelemetryCap is each session recorder's per-ring event capacity;
	// 0 → 4096 (the sweep's default), negative → unbounded.
	TelemetryCap int
	// KeepDone bounds how many finished sessions stay queryable; 0 → 1024.
	// Older finished sessions are evicted (their store records remain).
	KeepDone int
	// DataDir, when non-empty, makes the report store durable: records
	// are appended to a content-addressed segment log there and replayed
	// on the next Open, restoring sequence numbers and replay cursors
	// exactly. Requires Open (New panics on open failure).
	DataDir string
	// StoreSyncEvery is the durable store's fsync cadence in records;
	// 0 → 1 (every record durable before Append returns), negative →
	// only sync on Close. Ignored without DataDir.
	StoreSyncEvery int
	// TenantMaxActive caps one tenant's queued+running sessions; beyond
	// it, that tenant's submissions get *QuotaError while other tenants
	// are unaffected. 0 → unlimited (global admission still applies).
	TenantMaxActive int
	// TenantMaxQueued caps one tenant's share of the queue; 0 → unlimited.
	TenantMaxQueued int
}

func (c Config) withDefaults() Config {
	if c.MaxSessions <= 0 {
		c.MaxSessions = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.SessionTimeout <= 0 {
		c.SessionTimeout = 2 * time.Minute
	}
	if c.TelemetryCap == 0 {
		c.TelemetryCap = 4096
	}
	if c.KeepDone <= 0 {
		c.KeepDone = 1024
	}
	return c
}

// Service is the long-running detection service: an admission-controlled
// session pool in front of the harness, feeding one shared report store.
// Create with New, submit with Submit, stop with Close.
type Service struct {
	cfg   Config
	store *Store
	queue chan *Session
	quit  chan struct{}
	wg    sync.WaitGroup

	mu       sync.Mutex
	closed   bool
	nextID   uint64
	sessions map[string]*Session
	order    []string // session IDs in admission order
	tenants  map[string]*tenantCounts
}

// tenantCounts is one tenant's admission-control ledger.
type tenantCounts struct {
	queued, running    int
	admitted, rejected int64
}

// New builds an in-memory service and starts its worker pool. It panics
// when cfg.DataDir is set and the report log cannot be opened — durable
// deployments should use Open, which returns the error (and the replay
// summary) instead.
func New(cfg Config) *Service {
	svc, _, err := Open(cfg)
	if err != nil {
		panic(err)
	}
	return svc
}

// Open builds the service, opening (and replaying) the durable report
// store when cfg.DataDir is set, and starts its worker pool. The
// ReplayInfo reports what was restored: record count, last sequence
// number, and any verified-and-truncated corrupt tail.
func Open(cfg Config) (*Service, ReplayInfo, error) {
	svc := &Service{
		cfg:      cfg.withDefaults(),
		quit:     make(chan struct{}),
		sessions: make(map[string]*Session),
		tenants:  make(map[string]*tenantCounts),
	}
	var info ReplayInfo
	if svc.cfg.DataDir != "" {
		store, ri, err := OpenStore(svc.cfg.DataDir, svc.cfg.StoreCap,
			castore.SegLogOptions{SyncEvery: svc.cfg.StoreSyncEvery})
		if err != nil {
			return nil, ReplayInfo{}, err
		}
		svc.store, info = store, ri
	} else {
		svc.store = NewStore(svc.cfg.StoreCap)
	}
	svc.queue = make(chan *Session, svc.cfg.QueueDepth)
	for i := 0; i < svc.cfg.MaxSessions; i++ {
		svc.wg.Add(1)
		go svc.worker()
	}
	return svc, info, nil
}

// Store returns the service's report store (for subscriptions).
func (svc *Service) Store() *Store { return svc.store }

// Submit validates and admits one run request. It returns *RequestError
// for requests that can never run (map to HTTP 400), *QuotaError when
// the request's tenant is at its per-tenant quota (429), *OverloadError
// when the global queue is full (503), and ErrClosed during shutdown
// (503).
func (svc *Service) Submit(req RunRequest) (*Session, error) {
	cell, cfg, err := req.Cell()
	if err != nil {
		return nil, err
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	svc.mu.Lock()
	if svc.closed {
		svc.mu.Unlock()
		return nil, ErrClosed
	}
	tc := svc.tenants[tenant]
	if tc == nil {
		tc = &tenantCounts{}
		svc.tenants[tenant] = tc
	}
	// Per-tenant quotas come before the global queue check: a tenant at
	// its quota is told so with a 429 even when the queue has room, and a
	// tenant within quota competes for the queue like anyone else.
	if lim := svc.cfg.TenantMaxActive; lim > 0 && tc.queued+tc.running >= lim {
		tc.rejected++
		active := tc.queued + tc.running
		svc.mu.Unlock()
		return nil, &QuotaError{Tenant: tenant, Active: active, Limit: lim, Scope: "sessions"}
	}
	if lim := svc.cfg.TenantMaxQueued; lim > 0 && tc.queued >= lim {
		tc.rejected++
		active := tc.queued + tc.running
		svc.mu.Unlock()
		return nil, &QuotaError{Tenant: tenant, Active: active, Limit: lim, Scope: "queue"}
	}
	svc.nextID++
	sess := &Session{
		id:     fmt.Sprintf("s%d-%s", svc.nextID, cell.ID),
		tenant: tenant,
		req:    req,
		cfg:    cfg,
		ck:     cell,
		state:  StateQueued,
		done:   make(chan struct{}),
	}
	select {
	case svc.queue <- sess:
	default:
		queued := len(svc.queue)
		svc.mu.Unlock()
		return nil, &OverloadError{Queued: queued, Limit: svc.cfg.QueueDepth}
	}
	tc.queued++
	tc.admitted++
	svc.sessions[sess.id] = sess
	svc.order = append(svc.order, sess.id)
	svc.evictDoneLocked()
	svc.mu.Unlock()
	svc.store.Append(Record{Session: sess.id, Tenant: tenant, Kind: KindSession, Detail: "admitted: " + cell.ID})
	return sess, nil
}

// tenantTransition moves one session between the tenant ledger's states:
// dq un-queues it, dr un-runs it, run marks it running.
func (svc *Service) tenantTransition(tenant string, dq, dr, run int) {
	svc.mu.Lock()
	if tc := svc.tenants[tenant]; tc != nil {
		tc.queued -= dq
		tc.running += run - dr
	}
	svc.mu.Unlock()
}

// TenantStat is one tenant's admission-control ledger for the metrics
// surface.
type TenantStat struct {
	Tenant          string
	Queued, Running int
	Admitted        int64
	Rejected        int64
}

// TenantStats returns every tenant's ledger, sorted by tenant name.
func (svc *Service) TenantStats() []TenantStat {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	out := make([]TenantStat, 0, len(svc.tenants))
	for name, tc := range svc.tenants {
		out = append(out, TenantStat{Tenant: name, Queued: tc.queued, Running: tc.running,
			Admitted: tc.admitted, Rejected: tc.rejected})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Tenant < out[j].Tenant })
	return out
}

// evictDoneLocked drops the oldest finished sessions beyond KeepDone.
func (svc *Service) evictDoneLocked() {
	var doneIDs []string
	for _, id := range svc.order {
		if s := svc.sessions[id]; s != nil && (s.State() == StateDone || s.State() == StateCanceled) {
			doneIDs = append(doneIDs, id)
		}
	}
	for len(doneIDs) > svc.cfg.KeepDone {
		id := doneIDs[0]
		doneIDs = doneIDs[1:]
		delete(svc.sessions, id)
		for i, oid := range svc.order {
			if oid == id {
				svc.order = append(svc.order[:i], svc.order[i+1:]...)
				break
			}
		}
	}
}

// Session looks a session up by ID.
func (svc *Service) Session(id string) *Session {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	return svc.sessions[id]
}

// Sessions returns retained sessions in admission order.
func (svc *Service) Sessions() []*Session {
	svc.mu.Lock()
	defer svc.mu.Unlock()
	out := make([]*Session, 0, len(svc.order))
	for _, id := range svc.order {
		if s := svc.sessions[id]; s != nil {
			out = append(out, s)
		}
	}
	return out
}

// Counts returns how many retained sessions are in each state.
func (svc *Service) Counts() map[SessionState]int {
	out := make(map[SessionState]int)
	for _, s := range svc.Sessions() {
		out[s.State()]++
	}
	return out
}

// Close stops admission, cancels queued sessions, waits for the worker
// pool to finish its in-flight sessions, and syncs-and-closes the
// durable report log so every record written before Close returns is on
// disk.
func (svc *Service) Close() {
	svc.mu.Lock()
	if svc.closed {
		svc.mu.Unlock()
		svc.wg.Wait()
		svc.store.Close()
		return
	}
	svc.closed = true
	svc.mu.Unlock()
	close(svc.quit)
	// Drain the queue: whatever no worker picked up is canceled.
	for {
		select {
		case sess := <-svc.queue:
			sess.mu.Lock()
			sess.state = StateCanceled
			sess.mu.Unlock()
			close(sess.done)
			svc.tenantTransition(sess.tenant, 1, 0, 0)
			svc.store.Append(Record{Session: sess.id, Tenant: sess.tenant, Kind: KindSession,
				Detail: "canceled: service shutting down"})
		default:
			svc.wg.Wait()
			svc.store.Close()
			return
		}
	}
}

func (svc *Service) worker() {
	defer svc.wg.Done()
	for {
		select {
		case <-svc.quit:
			return
		case sess := <-svc.queue:
			svc.runSession(sess)
		}
	}
}

type sessionOutcome struct {
	res *harness.Result
	err error
}

// runSession executes one session the way the sweep pool runs a cell: its
// own System, its own scoped recorder, its own goroutine so a wedged run
// is abandoned at the deadline. The recorder's Observer streams detector
// output into the report store as it happens.
func (svc *Service) runSession(sess *Session) {
	cfg := sess.cfg
	rec := telemetry.New(telemetry.Config{
		Procs:      cfg.Procs,
		Cap:        svc.cfg.TelemetryCap,
		FlightSink: io.Discard,
		Observer: func(e telemetry.Event) {
			svc.observe(sess.id, sess.tenant, e)
		},
		TripObserver: func(reason telemetry.TripReason, detail string) {
			svc.store.Append(Record{Session: sess.id, Tenant: sess.tenant, Kind: KindTrip,
				Detail: reason.String() + ": " + detail})
		},
	})
	cfg.Recorder = rec
	// Mirror the sweep pool: the session deadline doubles as the barrier
	// wall timeout unless the reliable sublayer (or a chaos app's tight
	// default) is the crash detector in charge.
	if cfg.BarrierWallTimeout == 0 && !cfg.Reliable && !harness.IsChaosApp(cfg.App) {
		cfg.BarrierWallTimeout = svc.cfg.SessionTimeout
	}

	sess.mu.Lock()
	sess.state = StateRunning
	sess.rec = rec
	sess.mu.Unlock()
	svc.tenantTransition(sess.tenant, 1, 0, 1) // queued → running
	svc.store.Append(Record{Session: sess.id, Tenant: sess.tenant, Kind: KindSession, Detail: "started"})

	out := make(chan sessionOutcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				out <- sessionOutcome{err: fmt.Errorf("panic: %v\n%s", p, debug.Stack())}
			}
		}()
		res, err := harness.Run(cfg)
		out <- sessionOutcome{res: res, err: err}
	}()

	timer := time.NewTimer(svc.cfg.SessionTimeout)
	defer timer.Stop()
	var result *sweep.CellResult
	var races []race.Report
	select {
	case o := <-out:
		if o.err != nil {
			status := sweep.StatusFailed
			if len(o.err.Error()) > 6 && o.err.Error()[:6] == "panic:" {
				status = sweep.StatusPanic
			}
			result = &sweep.CellResult{ID: sess.ck.ID, Status: status, Error: o.err.Error(),
				Attempt: 1, Metrics: rec.Metrics().Snapshot().Canonical()}
		} else {
			races = o.res.Races
			result = &sweep.CellResult{
				ID:            sess.ck.ID,
				Status:        sweep.StatusOK,
				Attempt:       1,
				Races:         len(o.res.Races),
				DistinctRaces: len(race.DedupByAddr(o.res.Races)),
				VirtualNS:     o.res.VirtualNS,
				WallNS:        o.res.WallNS,
				Metrics:       rec.Metrics().Snapshot().Canonical(),
			}
		}
	case <-timer.C:
		// Abandon the wedged run goroutine; its System and recorder are
		// private to this session, so the leak is bounded and harmless.
		result = &sweep.CellResult{ID: sess.ck.ID, Status: sweep.StatusTimeout, Attempt: 1,
			Error:   fmt.Sprintf("session exceeded %v", svc.cfg.SessionTimeout),
			Metrics: rec.Metrics().Snapshot().Canonical()}
	}

	sess.mu.Lock()
	sess.state = StateDone
	sess.result = result
	sess.races = races
	sess.mu.Unlock()
	svc.tenantTransition(sess.tenant, 0, 1, 0) // running → done frees quota
	svc.store.Append(Record{Session: sess.id, Tenant: sess.tenant, Kind: KindSession,
		Detail: fmt.Sprintf("finished: %s (%d races)", result.Status, result.Races)})
	close(sess.done)
}

// observe routes one live telemetry event of a running session into the
// report store. Races, crash detections, and rollback milestones are the
// events a subscriber cares about; everything else stays in the session's
// recorder (rings, metrics, flight buffer).
func (svc *Service) observe(session, tenant string, e telemetry.Event) {
	switch e.Kind {
	case telemetry.KRaceFound:
		svc.store.Append(Record{Session: session, Tenant: tenant, Kind: KindRace, VT: e.VT,
			Addr: uint64(e.A), Epoch: e.B, WriteWrite: e.C == 1})
	case telemetry.KCrashDetected:
		via := "barrier timeout"
		if e.B == 1 {
			via = "link death"
		}
		svc.store.Append(Record{Session: session, Tenant: tenant, Kind: KindRecovery, VT: e.VT,
			Detail: fmt.Sprintf("crash detected: suspect p%d via %s", e.A, via)})
	case telemetry.KRecoveryStart:
		svc.store.Append(Record{Session: session, Tenant: tenant, Kind: KindRecovery, VT: e.VT,
			Detail: fmt.Sprintf("rollback to epoch %d (victim p%d)", e.A, e.B)})
	case telemetry.KRecoveryDone:
		svc.store.Append(Record{Session: session, Tenant: tenant, Kind: KindRecovery, VT: e.VT,
			Detail: fmt.Sprintf("recovered at epoch %d (%d virtual ns re-executed)", e.A, e.B)})
	}
}

// snapshots returns every retained session's metrics snapshot — running
// sessions live off their recorders, finished ones from their canonical
// results — keyed by session ID, for the /metrics surface.
func (svc *Service) snapshots() map[string]*telemetry.Snapshot {
	out := make(map[string]*telemetry.Snapshot)
	for _, s := range svc.Sessions() {
		s.mu.Lock()
		switch {
		case s.state == StateRunning && s.rec != nil:
			out[s.id] = s.rec.Metrics().Snapshot()
		case s.result != nil && s.result.Metrics != nil:
			out[s.id] = s.result.Metrics
		}
		s.mu.Unlock()
	}
	return out
}

// flightRecorder returns a session's recorder, or nil.
func (svc *Service) flightRecorder(id string) *telemetry.Recorder {
	s := svc.Session(id)
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}
