package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"lrcrace/internal/harness"
	"lrcrace/internal/race"
	"lrcrace/internal/sweep"
)

// raceKeys reduces race reports to a sorted, schedule-independent set:
// one key per distinct (address, write-write) pair.
func raceKeys(reports []race.Report) []string {
	var out []string
	for _, r := range race.DedupByAddr(reports) {
		out = append(out, fmt.Sprintf("0x%x/ww=%v", uint64(r.Addr), r.WriteWrite()))
	}
	sort.Strings(out)
	return out
}

// runStandalone executes a request's configuration directly through the
// harness — the reference a service session must match.
func runStandalone(t *testing.T, req RunRequest) *harness.Result {
	t.Helper()
	_, cfg, err := req.Cell()
	if err != nil {
		t.Fatal(err)
	}
	res, err := harness.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func metricsJSON(t *testing.T, r *sweep.CellResult) string {
	t.Helper()
	if r == nil || r.Metrics == nil {
		t.Fatal("result has no metrics snapshot")
	}
	b, err := json.Marshal(r.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestConcurrentSessionsIsolated is the multi-tenancy acceptance test: 32
// sessions across four distinct configurations, all admitted at once into
// a pool wide enough to run them concurrently, must each produce exactly
// the race set a standalone run of its configuration produces, and the
// deterministic configurations must produce byte-identical canonical
// metrics — i.e. no telemetry or detector state leaks between tenants.
func TestConcurrentSessionsIsolated(t *testing.T) {
	reqs := []RunRequest{
		{App: "FFT", Scale: 0.25, Procs: 2},
		{App: "SOR", Scale: 0.25, Procs: 2},
		{App: "ChaosMW", Procs: 4},
		{App: "ChaosTSP", Procs: 4},
	}
	const copies = 8 // 4 configs × 8 = 32 sessions

	// References first, single-tenant. The distinct race set (addresses ×
	// write-write) is schedule-independent for all four configurations; the
	// raw dynamic report count is not for the chaos apps (their racing
	// accesses ride the reliable sublayer's real timers), so equality is
	// asserted on the deduplicated sets.
	wantRaces := make([][]string, len(reqs))
	for i, req := range reqs {
		res := runStandalone(t, req)
		wantRaces[i] = raceKeys(res.Races)
	}
	// The chaos configurations must actually race, or the cross-talk check
	// below is vacuous.
	if len(wantRaces[2]) == 0 || len(wantRaces[3]) == 0 {
		t.Fatalf("chaos references found no races: ChaosMW=%v ChaosTSP=%v", wantRaces[2], wantRaces[3])
	}

	svc := New(Config{MaxSessions: 32, QueueDepth: 32, SessionTimeout: 2 * time.Minute})
	defer svc.Close()

	var sessions []*Session
	var which []int
	for c := 0; c < copies; c++ {
		for i, req := range reqs {
			sess, err := svc.Submit(req)
			if err != nil {
				t.Fatalf("submit %s copy %d: %v", req.App, c, err)
			}
			sessions = append(sessions, sess)
			which = append(which, i)
		}
	}

	for _, sess := range sessions {
		select {
		case <-sess.Done():
		case <-time.After(2 * time.Minute):
			t.Fatalf("session %s never finished", sess.ID())
		}
	}

	fftMetrics := map[string]bool{}
	for k, sess := range sessions {
		i := which[k]
		res := sess.Result()
		if res == nil || res.Status != sweep.StatusOK {
			t.Fatalf("session %s (%s): result %+v", sess.ID(), reqs[i].App, res)
		}
		if got := raceKeys(sess.Races()); fmt.Sprint(got) != fmt.Sprint(wantRaces[i]) {
			t.Errorf("session %s (%s): races %v, standalone %v", sess.ID(), reqs[i].App, got, wantRaces[i])
		}
		if res.Races != len(sess.Races()) || res.DistinctRaces != len(wantRaces[i]) {
			t.Errorf("session %s (%s): result counts %d/%d, want %d/%d", sess.ID(), reqs[i].App,
				res.Races, res.DistinctRaces, len(sess.Races()), len(wantRaces[i]))
		}
		// FFT's virtual-time simulation is schedule-independent: every
		// tenant's canonical snapshot must be byte-identical. A single
		// shared counter bleeding across sessions shows up here.
		if reqs[i].App == "FFT" {
			fftMetrics[metricsJSON(t, res)] = true
		}
	}
	if len(fftMetrics) != 1 {
		t.Errorf("FFT sessions produced %d distinct canonical metrics documents, want 1", len(fftMetrics))
	}

	// Every session left its race reports in the store, attributed to the
	// right session: exactly one KindRace record per report in its result.
	for _, sess := range sessions {
		recs, _, _ := svc.Store().Since(0, sess.ID(), 0)
		var raceRecs int
		for _, r := range recs {
			if r.Session != sess.ID() {
				t.Fatalf("session filter returned foreign record %+v", r)
			}
			if r.Kind == KindRace {
				raceRecs++
			}
		}
		if raceRecs != len(sess.Races()) {
			t.Errorf("session %s: %d race records in store, result has %d reports", sess.ID(), raceRecs, len(sess.Races()))
		}
	}
}

// TestSubscriberReplayMatchesStore: a merged-view subscriber attached
// before any session starts sees every record exactly once, in sequence
// order, and its transcript equals the final store contents.
func TestSubscriberReplayMatchesStore(t *testing.T) {
	svc := New(Config{MaxSessions: 4, QueueDepth: 16})
	sub := svc.Store().Subscribe("", 8192)
	defer sub.Close()

	var sessions []*Session
	for _, req := range []RunRequest{
		{App: "ChaosMW", Procs: 4},
		{App: "FFT", Scale: 0.25, Procs: 2},
		{App: "ChaosTSP", Procs: 4},
	} {
		sess, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, sess)
	}
	for _, sess := range sessions {
		<-sess.Done()
	}
	svc.Close()

	var got []Record
drain:
	for {
		select {
		case r := <-sub.C():
			got = append(got, r)
		default:
			break drain
		}
	}
	if sub.TakeGap() {
		t.Fatal("oversized subscriber buffer still dropped records")
	}
	want, lost, _ := svc.Store().Since(0, "", 0)
	if lost != 0 {
		t.Fatalf("store dropped %d records under default retention", lost)
	}
	if len(got) != len(want) {
		t.Fatalf("subscriber saw %d records, store holds %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Session != want[i].Session || got[i].Kind != want[i].Kind {
			t.Fatalf("record %d: subscriber %+v, store %+v", i, got[i], want[i])
		}
		if i > 0 && got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("subscriber sequence gap: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
}

// TestOverloadTyped: with a single-slot pool and a single-slot queue, a
// third concurrent submission is rejected with *OverloadError while the
// first two are unaffected.
func TestOverloadTyped(t *testing.T) {
	svc := New(Config{MaxSessions: 1, QueueDepth: 1, SessionTimeout: 5 * time.Second})
	defer svc.Close()

	// Occupy the one worker. TSP at scale 0.25 runs for several seconds —
	// long enough to deterministically fill the queue behind it. Its
	// session deadline reaps it, so Close stays fast.
	slow, err := svc.Submit(RunRequest{App: "TSP", Scale: 0.25, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for slow.State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("slow session never started")
		}
		time.Sleep(5 * time.Millisecond)
	}

	queued, err := svc.Submit(RunRequest{App: "FFT", Scale: 0.25, Procs: 2})
	if err != nil {
		t.Fatalf("queue-filling submission rejected: %v", err)
	}
	if queued.State() != StateQueued {
		t.Fatalf("second session state %s, want queued", queued.State())
	}

	_, err = svc.Submit(RunRequest{App: "FFT", Scale: 0.25, Procs: 2})
	var ovl *OverloadError
	if !errors.As(err, &ovl) {
		t.Fatalf("overflow submission returned %v, want *OverloadError", err)
	}
	if ovl.Limit != 1 {
		t.Errorf("OverloadError.Limit = %d, want 1", ovl.Limit)
	}
}

// TestAdmissionValidation: requests that can never run are rejected with
// *RequestError at submission time — no session is admitted, nothing runs.
func TestAdmissionValidation(t *testing.T) {
	svc := New(Config{MaxSessions: 1})
	defer svc.Close()
	cases := []struct {
		name string
		req  RunRequest
	}{
		{"empty", RunRequest{}},
		{"unknown app", RunRequest{App: "NoSuchApp"}},
		{"sharded without detect", RunRequest{App: "FFT", Sharded: true, Detect: boolPtr(false)}},
		{"crash on whole-program app", RunRequest{App: "FFT", CrashMode: "single"}},
		{"crash without checkpointing", RunRequest{App: "ChaosTSP", Procs: 4, CrashMode: "single", Checkpoint: boolPtr(false)}},
		{"crash with one proc", RunRequest{App: "ChaosTSP", Procs: 1, CrashMode: "single"}},
		{"double crash with two procs", RunRequest{App: "ChaosMW", Procs: 2, CrashMode: "double"}},
		{"corruption without crash", RunRequest{App: "ChaosTSP", Procs: 4, CorruptMode: "chunk"}},
		{"negative scale", RunRequest{App: "FFT", Scale: -1}},
		{"bogus protocol", RunRequest{App: "FFT", Protocol: "bogus"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := svc.Submit(tc.req)
			var reqErr *RequestError
			if !errors.As(err, &reqErr) {
				t.Fatalf("Submit(%+v) = %v, want *RequestError", tc.req, err)
			}
		})
	}
	if got := len(svc.Sessions()); got != 0 {
		t.Fatalf("%d sessions admitted by invalid requests", got)
	}
}

// TestClosedService: Submit after Close returns ErrClosed.
func TestClosedService(t *testing.T) {
	svc := New(Config{MaxSessions: 1})
	svc.Close()
	if _, err := svc.Submit(RunRequest{App: "FFT", Scale: 0.25, Procs: 2}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
}

func boolPtr(b bool) *bool { return &b }
