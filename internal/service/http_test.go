package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server, *Client) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		svc.Close()
	})
	return svc, ts, NewClient(ts.URL)
}

// TestHTTPSessionLifecycle drives one session end to end over the wire:
// submit, long-poll to completion, read the result and its reports.
func TestHTTPSessionLifecycle(t *testing.T) {
	_, _, client := newTestServer(t, Config{MaxSessions: 2})
	ctx := context.Background()

	info, err := client.Submit(ctx, RunRequest{App: "ChaosMW", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.State != StateQueued && info.State != StateRunning {
		t.Fatalf("fresh session state %s", info.State)
	}
	final, err := client.Wait(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || final.Result == nil || final.Result.Status != "ok" {
		t.Fatalf("final session: %+v", final)
	}
	if len(final.Races) == 0 || final.Result.Races != len(final.Races) {
		t.Fatalf("ChaosMW session carried %d race reports (result says %d)", len(final.Races), final.Result.Races)
	}

	batch, err := client.Reports(ctx, info.ID, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	var races int
	for _, r := range batch.Records {
		if r.Kind == KindRace {
			races++
		}
	}
	if races != len(final.Races) || batch.Lost != 0 {
		t.Fatalf("report batch: %d race records, lost %d; session has %d", races, batch.Lost, len(final.Races))
	}
}

// TestHTTPTypedErrors: admission failures map onto machine-readable
// statuses — 400 invalid_request, 503 overloaded with Retry-After, 404
// not_found — and the client decodes them back into the same typed errors
// Service.Submit returns in-process.
func TestHTTPTypedErrors(t *testing.T) {
	svc, ts, client := newTestServer(t, Config{MaxSessions: 1, QueueDepth: 1, SessionTimeout: 5 * time.Second})
	ctx := context.Background()

	resp, err := http.Post(ts.URL+"/sessions", "application/json",
		strings.NewReader(`{"app":"NoSuchApp"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ae apiError
	if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusBadRequest || ae.Code != codeInvalidRequest {
		t.Fatalf("invalid request: status %d code %q", resp.StatusCode, ae.Code)
	}
	var reqErr *RequestError
	if _, err := client.Submit(ctx, RunRequest{App: "NoSuchApp"}); !errors.As(err, &reqErr) {
		t.Fatalf("client decoded %v, want *RequestError", err)
	}

	// Fill the pool and the queue, then overflow it.
	slow, err := client.Submit(ctx, RunRequest{App: "TSP", Scale: 0.25, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for svc.Session(slow.ID).State() != StateRunning {
		if time.Now().After(deadline) {
			t.Fatal("slow session never started")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := client.Submit(ctx, RunRequest{App: "FFT", Scale: 0.25, Procs: 2}); err != nil {
		t.Fatalf("queue-filling submission rejected: %v", err)
	}
	resp2, err := http.Post(ts.URL+"/sessions", "application/json",
		strings.NewReader(`{"app":"FFT","scale":0.25,"procs":2}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var ae2 apiError
	if err := json.NewDecoder(resp2.Body).Decode(&ae2); err != nil {
		t.Fatal(err)
	}
	if resp2.StatusCode != http.StatusServiceUnavailable || ae2.Code != codeOverloaded {
		t.Fatalf("overflow: status %d code %q", resp2.StatusCode, ae2.Code)
	}
	if resp2.Header.Get("Retry-After") == "" {
		t.Error("503 carried no Retry-After")
	}
	var ovl *OverloadError
	if _, err := client.Submit(ctx, RunRequest{App: "FFT", Scale: 0.25, Procs: 2}); !errors.As(err, &ovl) {
		t.Fatalf("client decoded %v, want *OverloadError", err)
	}

	if resp, err := http.Get(ts.URL + "/sessions/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("unknown session: status %d", resp.StatusCode)
		}
	}
}

// TestHTTPReportsLongPoll: a /reports?wait= request parked on an empty
// window returns as soon as a record lands.
func TestHTTPReportsLongPoll(t *testing.T) {
	svc, _, client := newTestServer(t, Config{MaxSessions: 1})
	ctx := context.Background()

	type res struct {
		batch ReportBatch
		err   error
	}
	ch := make(chan res, 1)
	go func() {
		// The store is empty; this parks until the append below.
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet,
			client.Base+"/reports?since=0&wait=30s", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			ch <- res{err: err}
			return
		}
		defer resp.Body.Close()
		var b ReportBatch
		err = json.NewDecoder(resp.Body).Decode(&b)
		ch <- res{batch: b, err: err}
	}()

	time.Sleep(100 * time.Millisecond) // let the poller park
	svc.Store().Append(Record{Session: "x", Kind: KindSession, Detail: "poke"})

	select {
	case r := <-ch:
		if r.err != nil {
			t.Fatal(r.err)
		}
		if len(r.batch.Records) != 1 || r.batch.Records[0].Detail != "poke" {
			t.Fatalf("long-poll returned %+v", r.batch)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("long-poll never woke up")
	}
}

// sseRecords reads SSE frames off a stream until the session's "finished"
// lifecycle record arrives (or the context ends), returning every decoded
// record in arrival order.
func sseRecords(t *testing.T, ctx context.Context, url string, doneSession string) []Record {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	var out []Record
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec); err != nil {
			t.Fatalf("bad SSE data line %q: %v", line, err)
		}
		out = append(out, rec)
		if rec.Session == doneSession && rec.Kind == KindSession && strings.HasPrefix(rec.Detail, "finished") {
			return out
		}
	}
	t.Fatalf("stream ended before session %s finished: %v", doneSession, sc.Err())
	return nil
}

// TestHTTPStreamMidRunExactlyOnce is the live-subscription acceptance
// test: a subscriber who connects while a session is already emitting
// must receive every one of that session's records exactly once, in
// sequence order — the catch-up replay and the live tail must meet with
// neither a gap nor a duplicate.
func TestHTTPStreamMidRunExactlyOnce(t *testing.T) {
	svc, ts, client := newTestServer(t, Config{MaxSessions: 2})
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	info, err := client.Submit(ctx, RunRequest{App: "ChaosTSP", Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Connect mid-run: wait for the session to start, then give it a beat
	// to emit some records before the stream attaches.
	for svc.Session(info.ID).State() == StateQueued {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(10 * time.Millisecond)

	got := sseRecords(t, ctx, ts.URL+"/reports/stream?since=0&session="+info.ID, info.ID)

	seen := map[uint64]bool{}
	var prev uint64
	for _, rec := range got {
		if rec.Kind == KindTruncated {
			t.Fatalf("stream reported truncation under default retention: %+v", rec)
		}
		if seen[rec.Seq] {
			t.Fatalf("record %d delivered twice", rec.Seq)
		}
		seen[rec.Seq] = true
		if rec.Seq <= prev {
			t.Fatalf("out-of-order delivery: %d after %d", rec.Seq, prev)
		}
		prev = rec.Seq
	}
	// Completeness: the stream saw exactly the session's store records.
	want, lost, _ := svc.Store().Since(0, info.ID, 0)
	if lost != 0 {
		t.Fatalf("store lost %d records", lost)
	}
	if len(got) != len(want) {
		t.Fatalf("stream delivered %d records, store holds %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq {
			t.Fatalf("stream[%d].Seq = %d, store %d", i, got[i].Seq, want[i].Seq)
		}
	}
	var races int
	for _, rec := range got {
		if rec.Kind == KindRace {
			races++
		}
	}
	final, err := client.Wait(ctx, info.ID)
	if err != nil {
		t.Fatal(err)
	}
	if races != final.Result.Races {
		t.Fatalf("stream carried %d race records, session result says %d", races, final.Result.Races)
	}
}

// TestHTTPStreamGapHealing: a stream whose subscriber buffer is too small
// for the burst still delivers everything by replaying from the store.
func TestHTTPStreamGapHealing(t *testing.T) {
	svc, ts, _ := newTestServer(t, Config{MaxSessions: 1, SubscriberBuf: 2})
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	// Park a stream on the empty store first, then burst appends at it:
	// a 2-slot buffer cannot hold the burst, so delivery must go through
	// the gap-healing replay path.
	ready := make(chan struct{})
	done := make(chan []Record, 1)
	go func() {
		req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/reports/stream?since=0", nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			done <- nil
			return
		}
		defer resp.Body.Close()
		close(ready)
		var out []Record
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			line := sc.Text()
			if !strings.HasPrefix(line, "data: ") {
				continue
			}
			var rec Record
			json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &rec)
			out = append(out, rec)
			if len(out) == 100 {
				break
			}
		}
		done <- out
	}()
	<-ready
	time.Sleep(100 * time.Millisecond) // let the subscriber attach
	for i := 0; i < 100; i++ {
		svc.Store().Append(Record{Session: "burst", Kind: KindRace, Addr: uint64(i)})
	}
	select {
	case got := <-done:
		if len(got) != 100 {
			t.Fatalf("stream delivered %d records, want 100", len(got))
		}
		for i, rec := range got {
			if rec.Seq != uint64(i+1) {
				t.Fatalf("stream[%d].Seq = %d, want %d (exactly-once in order)", i, rec.Seq, i+1)
			}
		}
	case <-ctx.Done():
		t.Fatal("stream never delivered the burst")
	}
}

// TestHTTPMetrics: the service /metrics surface carries the service
// gauges and session-labeled telemetry series.
func TestHTTPMetrics(t *testing.T) {
	_, ts, client := newTestServer(t, Config{MaxSessions: 1})
	ctx := context.Background()
	info, err := client.Submit(ctx, RunRequest{App: "FFT", Scale: 0.25, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(ctx, info.ID); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	body := buf.String()
	for _, want := range []string{
		"svc_sessions_done 1",
		"svc_store_appended_total",
		fmt.Sprintf(`session="%s"`, info.ID),
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
