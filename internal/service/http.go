package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"lrcrace/internal/sweep"
)

// Handler returns the service's HTTP surface, sharing one mux with the
// observability endpoints the sweep established:
//
//	POST /sessions                — submit a RunRequest; 202 + SessionInfo,
//	                                400 (invalid request) or 503 (overloaded)
//	GET  /sessions                — list retained sessions
//	GET  /sessions/{id}           — one session; ?wait=<dur> long-polls
//	                                until it reaches a terminal state
//	GET  /reports                 — report-store batch: ?since=<seq>,
//	                                ?session=<id>, ?max=<n>; ?wait=<dur>
//	                                long-polls for new records
//	GET  /reports/stream          — SSE: one `data:` record per line,
//	                                ?since/?session as above
//	GET  /metrics                 — Prometheus text: service gauges plus
//	                                every session's series, session-labeled
//	GET  /flight/{id}             — flight-recorder dump of one session
//
// Commands wrap this handler with the shared /healthz and /version
// endpoints (cmd/internal/cli).
func (svc *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /sessions", svc.handleSubmit)
	mux.HandleFunc("GET /sessions", svc.handleSessions)
	mux.HandleFunc("GET /sessions/{id}", svc.handleSession)
	mux.HandleFunc("GET /reports", svc.handleReports)
	mux.HandleFunc("GET /reports/stream", svc.handleStream)
	mux.HandleFunc("GET /metrics", svc.handleMetrics)
	mux.HandleFunc("GET /flight/{id}", svc.handleFlight)
	// The dispatcher health-probes nodes through /healthz; commands shadow
	// this with cli.Mux's identical liveness endpoint, but the service
	// handler answers on its own so a bare Handler() is a complete node.
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/{$}", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, "lrcrace detection service: POST /sessions, GET /sessions[/{id}], /reports[/stream], /metrics, /flight/{id}\n")
	})
	return mux
}

// apiError is the JSON error body; Code is machine-readable so clients
// (the remote sweep dispatcher) can distinguish rejection classes.
type apiError struct {
	Code  string `json:"code"`
	Error string `json:"error"`
}

// Error codes carried in apiError.Code.
const (
	codeInvalidRequest = "invalid_request"
	codeOverloaded     = "overloaded"
	codeQuota          = "tenant_quota"
	codeShuttingDown   = "shutting_down"
	codeNotFound       = "not_found"
)

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeAdmissionError maps Submit's typed errors onto HTTP statuses: a
// *RequestError can never succeed (400), a *QuotaError affects only its
// tenant (429 + Retry-After), overload and shutdown are retryable by
// anyone (503 + Retry-After).
func writeAdmissionError(w http.ResponseWriter, err error) {
	var reqErr *RequestError
	var ovlErr *OverloadError
	var quoErr *QuotaError
	switch {
	case errors.As(err, &reqErr):
		writeJSON(w, http.StatusBadRequest, apiError{Code: codeInvalidRequest, Error: err.Error()})
	case errors.As(err, &quoErr):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, apiError{Code: codeQuota, Error: err.Error()})
	case errors.As(err, &ovlErr):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, apiError{Code: codeOverloaded, Error: err.Error()})
	case errors.Is(err, ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, apiError{Code: codeShuttingDown, Error: err.Error()})
	default:
		writeJSON(w, http.StatusInternalServerError, apiError{Code: "internal", Error: err.Error()})
	}
}

func (svc *Service) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req RunRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Code: codeInvalidRequest, Error: "parsing request body: " + err.Error()})
		return
	}
	sess, err := svc.Submit(req)
	if err != nil {
		writeAdmissionError(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, sess.Info())
}

func (svc *Service) handleSessions(w http.ResponseWriter, _ *http.Request) {
	sessions := svc.Sessions()
	out := make([]SessionInfo, 0, len(sessions))
	for _, s := range sessions {
		info := s.Info()
		info.Races = nil // keep the listing lean; fetch one session for reports
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (svc *Service) handleSession(w http.ResponseWriter, r *http.Request) {
	sess := svc.Session(r.PathValue("id"))
	if sess == nil {
		writeJSON(w, http.StatusNotFound, apiError{Code: codeNotFound, Error: "no such session (evicted or never admitted)"})
		return
	}
	if wait := parseWait(r); wait > 0 {
		select {
		case <-sess.Done():
		case <-time.After(wait):
		case <-r.Context().Done():
			return
		}
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

// parseWait bounds a ?wait=<duration> long-poll window to 60s.
func parseWait(r *http.Request) time.Duration {
	d, err := time.ParseDuration(r.URL.Query().Get("wait"))
	if err != nil || d <= 0 {
		return 0
	}
	if d > time.Minute {
		d = time.Minute
	}
	return d
}

// ReportBatch is the /reports response: the records, the cursor to pass
// back as since, and loss accounting (records dropped by store retention
// inside the requested window).
type ReportBatch struct {
	Records []Record `json:"records"`
	// Next is the last returned record's sequence number (or the store
	// tail when the batch is empty): the next request's since.
	Next uint64 `json:"next"`
	// Lost is how many records between since and the oldest retained one
	// were discarded by retention; 0 means the batch is gapless.
	Lost uint64 `json:"lost,omitempty"`
}

func (svc *Service) handleReports(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	since, _ := strconv.ParseUint(q.Get("since"), 10, 64)
	session := q.Get("session")
	max, _ := strconv.Atoi(q.Get("max"))
	if max <= 0 || max > 10000 {
		max = 10000
	}
	recs, lost, next := svc.store.Since(since, session, max)
	if len(recs) == 0 {
		if wait := parseWait(r); wait > 0 {
			sub := svc.store.Subscribe(session, 1)
			defer sub.Close()
			// Re-check under the subscription so an append between the
			// first read and Subscribe cannot be slept through.
			if recs, lost, next = svc.store.Since(since, session, max); len(recs) == 0 {
				select {
				case <-sub.C():
				case <-time.After(wait):
				case <-r.Context().Done():
					return
				}
				recs, lost, next = svc.store.Since(since, session, max)
			}
		}
	}
	if recs == nil {
		recs = []Record{}
	}
	writeJSON(w, http.StatusOK, ReportBatch{Records: recs, Next: next, Lost: lost})
}

// handleStream is the SSE feed: replay from ?since, then follow the
// subscriber, healing buffer gaps by replaying from the store so every
// retained record is delivered exactly once, in sequence order.
func (svc *Service) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusNotImplemented)
		return
	}
	q := r.URL.Query()
	since, _ := strconv.ParseUint(q.Get("since"), 10, 64)
	session := q.Get("session")
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	sub := svc.store.Subscribe(session, svc.cfg.SubscriberBuf)
	defer sub.Close()
	last := since
	emit := func(rec Record) {
		b, _ := json.Marshal(rec)
		fmt.Fprintf(w, "id: %d\ndata: %s\n\n", rec.Seq, b)
		last = rec.Seq
	}
	// replay pulls everything after the cursor straight from the store —
	// the initial catch-up, and the gap-healing path after buffer drops.
	replay := func() {
		recs, lost, _ := svc.store.Since(last, session, 0)
		if lost > 0 {
			emit(Record{Seq: last + lost, Session: session, Kind: KindTruncated,
				Detail: fmt.Sprintf("%d records dropped by store retention", lost)})
		}
		for _, rec := range recs {
			emit(rec)
		}
		fl.Flush()
	}
	replay()
	for {
		select {
		case <-r.Context().Done():
			return
		case rec := <-sub.C():
			if sub.TakeGap() {
				// The buffer dropped records; the store still has them.
				replay()
				continue
			}
			if rec.Seq <= last {
				continue // already delivered by a replay
			}
			emit(rec)
			fl.Flush()
		}
	}
}

func (svc *Service) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	counts := svc.Counts()
	for _, g := range []struct {
		name, help string
		v          int
	}{
		{"svc_sessions_queued", "Sessions admitted and waiting for a pool slot.", counts[StateQueued]},
		{"svc_sessions_running", "Sessions currently executing.", counts[StateRunning]},
		{"svc_sessions_done", "Retained sessions with a terminal result.", counts[StateDone]},
		{"svc_sessions_canceled", "Sessions canceled by shutdown.", counts[StateCanceled]},
		{"svc_store_records", "Records currently retained by the report store.", svc.store.Len()},
		{"svc_store_appended_total", "Records ever appended to the report store.", int(svc.store.Appended())},
		{"svc_store_dropped_total", "Records discarded by report-store retention.", int(svc.store.Dropped())},
		{"svc_subscribers", "Live report-store subscribers.", svc.store.Subscribers()},
		{"svc_store_durable", "1 when the report store persists to a segment log.", boolGauge(svc.store.Durable())},
		{"svc_store_replayed_total", "Records restored from the durable log at startup.", svc.store.Replayed()},
		{"svc_store_truncations_total", "Corrupt log tails verified and cut off on replay.", svc.store.Truncations()},
		{"svc_store_persist_failures_total", "Appends that failed to reach the durable log.", svc.store.PersistFailures()},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v)
	}
	if ls := svc.store.LogStats(); svc.store.Durable() {
		for _, g := range []struct {
			name, help string
			v          int64
		}{
			{"svc_store_log_segments", "Segment files in the durable report log.", int64(ls.Segments)},
			{"svc_store_log_bytes", "Bytes across the durable report log's segments.", ls.DiskBytes},
			{"svc_store_log_fsyncs_total", "fsync calls the durable report log has issued.", ls.Fsyncs},
		} {
			fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", g.name, g.help, g.name, g.name, g.v)
		}
	}
	writeTenantProm(w, svc.TenantStats())
	sweep.WriteSnapshotsProm(w, "session", svc.snapshots())
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// writeTenantProm emits the per-tenant admission ledger as tenant-labeled
// series, one block per metric so HELP/TYPE headers appear once.
func writeTenantProm(w io.Writer, stats []TenantStat) {
	if len(stats) == 0 {
		return
	}
	for _, m := range []struct {
		name, help string
		v          func(TenantStat) int64
	}{
		{"svc_tenant_queued", "Sessions queued per tenant.", func(t TenantStat) int64 { return int64(t.Queued) }},
		{"svc_tenant_running", "Sessions running per tenant.", func(t TenantStat) int64 { return int64(t.Running) }},
		{"svc_tenant_admitted_total", "Sessions ever admitted per tenant.", func(t TenantStat) int64 { return t.Admitted }},
		{"svc_tenant_rejected_total", "Submissions rejected by per-tenant quota.", func(t TenantStat) int64 { return t.Rejected }},
	} {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", m.name, m.help, m.name)
		for _, t := range stats {
			fmt.Fprintf(w, "%s{tenant=%q} %d\n", m.name, t.Tenant, m.v(t))
		}
	}
}

func (svc *Service) handleFlight(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec := svc.flightRecorder(id)
	if rec == nil {
		http.Error(w, fmt.Sprintf("no recorder for session %q (not started yet?)", id), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	rec.DumpFlight(w, "on-demand dump over /flight")
}
