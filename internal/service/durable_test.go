package service

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"lrcrace/internal/castore"
)

// runOne submits req and waits for the session to finish.
func runOne(t *testing.T, svc *Service, req RunRequest) *Session {
	t.Helper()
	sess, err := svc.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-sess.Done():
	case <-time.After(2 * time.Minute):
		t.Fatalf("session %s did not finish", sess.ID())
	}
	return sess
}

// TestDurableRestartReplay is the restart acceptance test: fill a durable
// store with real session history, close the service, reopen it against
// the same data directory, and the records, sequence numbers, and append
// cursor are restored exactly.
func TestDurableRestartReplay(t *testing.T) {
	dir := t.TempDir()
	svc, info, err := Open(Config{MaxSessions: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info.Records != 0 || !svc.Store().Durable() {
		t.Fatalf("fresh durable store: replay %+v, durable %v", info, svc.Store().Durable())
	}
	runOne(t, svc, RunRequest{App: "FFT", Scale: 0.25, Procs: 2})
	runOne(t, svc, RunRequest{App: "SOR", Scale: 0.25, Procs: 2, Tenant: "acme"})
	before, _, _ := svc.Store().Since(0, "", 0)
	if len(before) == 0 {
		t.Fatal("no records before restart")
	}
	appended := svc.Store().Appended()
	svc.Close()

	svc2, info2, err := Open(Config{MaxSessions: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	if info2.Truncation != "" {
		t.Fatalf("clean restart reported truncation: %s", info2.Truncation)
	}
	if uint64(info2.Records) != appended || info2.LastSeq != appended {
		t.Fatalf("replay restored %d records to seq %d, want %d", info2.Records, info2.LastSeq, appended)
	}
	after, _, _ := svc2.Store().Since(0, "", 0)
	if len(after) != len(before) {
		t.Fatalf("restart changed record count: %d -> %d", len(before), len(after))
	}
	for i := range before {
		b, _ := json.Marshal(before[i])
		a, _ := json.Marshal(after[i])
		if string(a) != string(b) {
			t.Fatalf("record %d changed across restart:\n  before %s\n  after  %s", i, b, a)
		}
	}
	// Appends continue exactly after the replayed history, and tenants
	// carried through the log.
	rec := svc2.Store().Append(Record{Kind: KindSession, Detail: "post-restart"})
	if rec.Seq != appended+1 {
		t.Fatalf("post-restart append got seq %d, want %d", rec.Seq, appended+1)
	}
	acme, _, _ := svc2.Store().Since(0, "", 0)
	var sawTenant bool
	for _, r := range acme {
		if r.Tenant == "acme" {
			sawTenant = true
		}
	}
	if !sawTenant {
		t.Error("tenant identity lost across restart")
	}
}

// sseRecord reads SSE frames off r until it has delivered want records or
// the deadline passes.
func readSSE(t *testing.T, r *bufio.Reader, want int) []Record {
	t.Helper()
	var out []Record
	deadline := time.Now().Add(30 * time.Second)
	for len(out) < want && time.Now().Before(deadline) {
		line, err := r.ReadString('\n')
		if err != nil {
			t.Fatalf("SSE read after %d records: %v", len(out), err)
		}
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var rec Record
		if err := json.Unmarshal([]byte(strings.TrimPrefix(strings.TrimSpace(line), "data: ")), &rec); err != nil {
			t.Fatalf("SSE payload: %v", err)
		}
		out = append(out, rec)
	}
	return out
}

// TestDurableSSEResumeExactlyOnce: an SSE subscriber that read part of
// the history before a restart resumes from its cursor against the
// restarted service and sees every remaining record exactly once, in
// order, with no gap marker.
func TestDurableSSEResumeExactlyOnce(t *testing.T) {
	dir := t.TempDir()
	svc, _, err := Open(Config{MaxSessions: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(svc.Handler())
	runOne(t, svc, RunRequest{App: "FFT", Scale: 0.25, Procs: 2})
	runOne(t, svc, RunRequest{App: "SOR", Scale: 0.25, Procs: 2})
	total := svc.Store().Appended()
	if total < 4 {
		t.Fatalf("only %d records; need a few to split across the restart", total)
	}

	// First subscriber reads part of the stream, then disconnects.
	resp, err := http.Get(ts.URL + "/reports/stream?since=0")
	if err != nil {
		t.Fatal(err)
	}
	part := readSSE(t, bufio.NewReader(resp.Body), int(total)/2)
	resp.Body.Close()
	cursor := part[len(part)-1].Seq

	ts.Close()
	svc.Close()

	// Restart on the same data dir; the subscriber resumes from its cursor.
	svc2, _, err := Open(Config{MaxSessions: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc2.Close()
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	resp2, err := http.Get(fmt.Sprintf("%s/reports/stream?since=%d", ts2.URL, cursor))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	rest := readSSE(t, bufio.NewReader(resp2.Body), int(total-cursor))
	want := cursor + 1
	for _, r := range rest {
		if r.Kind == KindTruncated {
			t.Fatalf("resume saw a gap/truncation record: %+v", r)
		}
		if r.Seq != want {
			t.Fatalf("resume delivered seq %d, want %d (exactly-once, in order)", r.Seq, want)
		}
		want++
	}
	if want != total+1 {
		t.Fatalf("resume ended at seq %d, want %d", want-1, total)
	}
}

// TestDurableTamperedTail: a flipped byte in the log's tail yields a
// verified truncation — the store reopens with the intact prefix plus an
// explicit truncation record (itself durable), and never panics.
func TestDurableTamperedTail(t *testing.T) {
	dir := t.TempDir()
	svc, _, err := Open(Config{MaxSessions: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	runOne(t, svc, RunRequest{App: "FFT", Scale: 0.25, Procs: 2})
	appended := svc.Store().Appended()
	svc.Close()

	segs, err := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	last := segs[len(segs)-1]
	b, err := os.ReadFile(last)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)-2] ^= 0x20 // corrupt the final record's payload
	if err := os.WriteFile(last, b, 0o644); err != nil {
		t.Fatal(err)
	}

	svc2, info, err := Open(Config{MaxSessions: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if info.Truncation == "" {
		t.Fatal("tampered tail replayed without a truncation report")
	}
	if svc2.Store().Truncations() != 1 {
		t.Fatalf("truncations = %d, want 1", svc2.Store().Truncations())
	}
	recs, _, _ := svc2.Store().Since(0, "", 0)
	lastRec := recs[len(recs)-1]
	if lastRec.Kind != KindTruncated || lastRec.Seq != appended {
		t.Fatalf("expected an explicit truncation record at seq %d, got %+v", appended, lastRec)
	}
	svc2.Close()

	// Third open: the truncation record itself was persisted, and the log
	// is healed — no new truncation.
	svc3, info3, err := Open(Config{MaxSessions: 2, DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer svc3.Close()
	if info3.Truncation != "" {
		t.Fatalf("healed log truncated again: %s", info3.Truncation)
	}
	recs3, _, _ := svc3.Store().Since(0, "", 0)
	if got := recs3[len(recs3)-1]; got.Kind != KindTruncated {
		t.Fatalf("truncation record not durable: tail is %+v", got)
	}
}

// TestOpenStoreSequenceBreak: a log whose records replay out of sequence
// (e.g. hand-edited) is cut at the break, not trusted.
func TestOpenStoreSequenceBreak(t *testing.T) {
	dir := t.TempDir()
	l, _, err := castore.OpenSegLog(dir, castore.SegLogOptions{}, func([]byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	for _, seq := range []uint64{1, 2, 5} {
		b, _ := json.Marshal(Record{Seq: seq, Kind: KindSession, Detail: "x"})
		if _, err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	s, info, err := OpenStore(dir, 0, castore.SegLogOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if info.Truncation == "" || !strings.Contains(info.Truncation, "sequence break") {
		t.Fatalf("sequence break not surfaced: %+v", info)
	}
	if s.Appended() != 3 { // 2 good records + the truncation record at seq 3
		t.Fatalf("appended = %d, want 3", s.Appended())
	}
}

// TestTenantQuota is the per-tenant admission acceptance test: a tenant
// at its quota gets a typed rejection while a second tenant's sessions
// are admitted and complete.
func TestTenantQuota(t *testing.T) {
	svc := New(Config{MaxSessions: 1, TenantMaxActive: 1})
	defer svc.Close()
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	client := NewClient(ts.URL)
	ctx := context.Background()

	// RealMsgDelayUS couples virtual message latency to real time, keeping
	// the first session running long enough that the quota is demonstrably
	// held while it executes (the submits below take microseconds).
	req := RunRequest{App: "FFT", Scale: 0.25, Procs: 2, Tenant: "noisy", RealMsgDelayUS: 2000}
	first, err := client.Submit(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if first.Tenant != "noisy" {
		t.Fatalf("session tenant = %q, want noisy", first.Tenant)
	}

	// Same tenant, over quota: typed *QuotaError through the HTTP round
	// trip, with the server's Retry-After attached.
	_, err = client.Submit(ctx, req)
	var quo *QuotaError
	if !errors.As(err, &quo) {
		t.Fatalf("over-quota submit returned %T (%v), want *QuotaError", err, err)
	}
	if quo.RetryAfter <= 0 {
		t.Errorf("quota rejection lost the Retry-After header: %+v", quo)
	}

	// A different tenant is unaffected by the noisy one's quota.
	quiet, err := client.Submit(ctx, RunRequest{App: "FFT", Scale: 0.25, Procs: 2, Tenant: "quiet"})
	if err != nil {
		t.Fatalf("second tenant rejected alongside the first: %v", err)
	}
	for _, id := range []string{first.ID, quiet.ID} {
		final, err := client.Wait(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone || final.Result == nil {
			t.Fatalf("session %s ended %s", id, final.State)
		}
	}

	// The ledger: noisy admitted 1 rejected 1, quiet admitted 1 rejected 0,
	// and both quotas fully released after completion.
	stats := svc.TenantStats()
	byName := map[string]TenantStat{}
	for _, s := range stats {
		byName[s.Tenant] = s
	}
	if s := byName["noisy"]; s.Admitted != 1 || s.Rejected != 1 || s.Queued+s.Running != 0 {
		t.Errorf("noisy ledger %+v", s)
	}
	if s := byName["quiet"]; s.Admitted != 1 || s.Rejected != 0 || s.Queued+s.Running != 0 {
		t.Errorf("quiet ledger %+v", s)
	}

	// After quota release the noisy tenant is admitted again.
	if _, err := svc.Submit(RunRequest{App: "FFT", Scale: 0.25, Procs: 2, Tenant: "noisy"}); err != nil {
		t.Errorf("tenant still blocked after its sessions finished: %v", err)
	}
}

// TestTenantMetrics: the /metrics surface carries the per-tenant series
// and the store durability gauges.
func TestTenantMetrics(t *testing.T) {
	svc, _, err := Open(Config{MaxSessions: 1, DataDir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	runOne(t, svc, RunRequest{App: "FFT", Scale: 0.25, Procs: 2, Tenant: "acme"})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, want := range []string{
		`svc_tenant_admitted_total{tenant="acme"} 1`,
		"svc_store_durable 1",
		"svc_store_replayed_total 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
