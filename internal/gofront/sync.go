package gofront

// This file models the Go sync primitives. Every operation (a) closes the
// calling goroutine's current interval, (b) transfers release clocks along
// the happens-before edges the Go memory model defines for the primitive,
// and (c) appends its linearization event to the trace. Blocking
// operations close their interval at the call — accesses before the call
// belong to the closed interval — and are completed later by the peer that
// unblocks them; the completion event is appended at the peer's position,
// which is the operation's linearization point.

import "fmt"

// Chan is a modeled channel of uint64 values. Cap 0 is a rendezvous
// channel; cap > 0 a buffered FIFO with the Go memory model's
// backpressure edge (receive k happens before send k+cap completes).
type Chan struct {
	p   *Program
	id  int
	cap int

	buf      []chanElem
	bpq      []vcClock // receive-completion clocks, for the backpressure edge
	sends    int       // completed sends (1-based sequence)
	recvs    int       // completed receives
	sendq    []*G
	recvq    []*G
	closed   bool
	closeRel vcClock
}

type chanElem struct {
	v   uint64
	rel vcClock // sender's release clock, joined by the receiver
}

// NewChan makes a channel of the given capacity.
func (p *Program) NewChan(capacity int) *Chan {
	if capacity < 0 {
		panic("gofront: negative channel capacity")
	}
	ch := &Chan{p: p, id: p.nextChan, cap: capacity}
	p.nextChan++
	p.emit(OpChanMake, 0, ch.id, capacity, 0, 0)
	return ch
}

func (ch *Chan) chanOp() {
	ch.p.vt += costSync
	ch.p.stats.Syncs++
	ch.p.stats.ChanOps++
}

// Send sends v on the channel, blocking per channel semantics.
func (ch *Chan) Send(g *G, v uint64) {
	p := ch.p
	ch.chanOp()
	if ch.closed {
		panic(fmt.Sprintf("gofront: send on closed channel %d", ch.id))
	}
	rel := p.det.closeInterval(g.id)
	if ch.cap == 0 {
		if len(ch.recvq) > 0 {
			r := ch.recvq[0]
			ch.recvq = ch.recvq[1:]
			ch.rendezvous(g, rel, r, v)
			g.yield()
			return
		}
		g.sendVal, g.rel = v, rel
		ch.sendq = append(ch.sendq, g)
		g.block(fmt.Sprintf("send chan %d", ch.id))
		return
	}
	if len(ch.buf) < ch.cap {
		ch.commitSend(g.id, v, rel)
		ch.drainRecvq()
		g.yield()
		return
	}
	g.sendVal, g.rel = v, rel
	ch.sendq = append(ch.sendq, g)
	g.block(fmt.Sprintf("send chan %d (full)", ch.id))
}

// Recv receives from the channel; ok is false for the zero value of a
// closed drained channel.
func (ch *Chan) Recv(g *G) (v uint64, ok bool) {
	p := ch.p
	ch.chanOp()
	rel := p.det.closeInterval(g.id)
	if ch.cap == 0 {
		if len(ch.sendq) > 0 {
			s := ch.sendq[0]
			ch.sendq = ch.sendq[1:]
			v := s.sendVal
			ch.rendezvousAsRecv(s, g, rel)
			s.wake()
			g.yield()
			return v, true
		}
		if ch.closed {
			p.det.join(g.id, ch.closeRel)
			p.emit(OpChanRecvClosed, g.id, ch.id, 0, 0, 0)
			g.yield()
			return 0, false
		}
		g.rel = rel
		ch.recvq = append(ch.recvq, g)
		g.block(fmt.Sprintf("recv chan %d", ch.id))
		return g.recvVal, g.recvOK
	}
	if len(ch.buf) > 0 {
		v := ch.commitRecv(g.id, rel)
		ch.completeBlockedSender()
		g.yield()
		return v, true
	}
	if ch.closed {
		p.det.join(g.id, ch.closeRel)
		p.emit(OpChanRecvClosed, g.id, ch.id, 0, 0, 0)
		g.yield()
		return 0, false
	}
	g.rel = rel
	ch.recvq = append(ch.recvq, g)
	g.block(fmt.Sprintf("recv chan %d (empty)", ch.id))
	return g.recvVal, g.recvOK
}

// Close closes the channel: blocked receivers complete with the zero
// value and acquire the close edge; later receives drain the buffer
// first, as in Go.
func (ch *Chan) Close(g *G) {
	p := ch.p
	ch.chanOp()
	if ch.closed {
		panic(fmt.Sprintf("gofront: close of closed channel %d", ch.id))
	}
	if len(ch.sendq) > 0 {
		panic(fmt.Sprintf("gofront: close of channel %d with blocked senders", ch.id))
	}
	rel := p.det.closeInterval(g.id)
	ch.closed = true
	ch.closeRel = rel
	p.emit(OpChanClose, g.id, ch.id, 0, 0, 0)
	for _, r := range ch.recvq {
		r.recvVal, r.recvOK = 0, false
		p.det.join(r.id, rel)
		p.emit(OpChanRecvClosed, r.id, ch.id, 0, 0, 0)
		r.wake()
	}
	ch.recvq = nil
	g.yield()
}

// rendezvous completes an unbuffered send meeting a blocked receiver:
// both directions join (the receive happens before the send completes and
// vice versa).
func (ch *Chan) rendezvous(s *G, sRel vcClock, r *G, v uint64) {
	p := ch.p
	ch.sends++
	ch.recvs++
	p.det.join(s.id, r.rel)
	p.det.join(r.id, sRel)
	r.recvVal, r.recvOK = v, true
	p.emit(OpChanSend, s.id, ch.id, ch.sends, 0, 0)
	p.emit(OpChanRecv, r.id, ch.id, ch.recvs, 0, 0)
	r.wake()
}

// rendezvousAsRecv completes an unbuffered receive meeting a blocked
// sender (the mirror case: the receiver is the active party).
func (ch *Chan) rendezvousAsRecv(s *G, r *G, rRel vcClock) {
	p := ch.p
	ch.sends++
	ch.recvs++
	p.det.join(r.id, s.rel)
	p.det.join(s.id, rRel)
	p.emit(OpChanSend, s.id, ch.id, ch.sends, 0, 0)
	p.emit(OpChanRecv, r.id, ch.id, ch.recvs, 0, 0)
}

// commitSend places a value in the buffer for sender g (which holds a
// free slot), applying the backpressure edge when the send sequence
// exceeds the capacity.
func (ch *Chan) commitSend(gid int, v uint64, rel vcClock) {
	p := ch.p
	ch.sends++
	if ch.sends > ch.cap {
		bp := ch.bpq[0]
		ch.bpq = ch.bpq[1:]
		p.det.join(gid, bp)
	}
	ch.buf = append(ch.buf, chanElem{v: v, rel: rel})
	p.emit(OpChanSend, gid, ch.id, ch.sends, 0, 0)
}

// commitRecv takes the buffer head for receiver g and publishes the
// receive-completion clock the backpressure edge carries: the receiver's
// knowledge at the call merged with the joined sender clock.
func (ch *Chan) commitRecv(gid int, rRel vcClock) uint64 {
	p := ch.p
	e := ch.buf[0]
	ch.buf = ch.buf[1:]
	ch.recvs++
	p.det.join(gid, e.rel)
	bp := rRel.Copy()
	bp.Merge(e.rel)
	ch.bpq = append(ch.bpq, bp)
	p.emit(OpChanRecv, gid, ch.id, ch.recvs, 0, 0)
	return e.v
}

// completeBlockedSender moves the head blocked sender's value into the
// slot a receive just freed.
func (ch *Chan) completeBlockedSender() {
	if len(ch.sendq) == 0 || len(ch.buf) >= ch.cap {
		return
	}
	s := ch.sendq[0]
	ch.sendq = ch.sendq[1:]
	ch.commitSend(s.id, s.sendVal, s.rel)
	s.wake()
}

// drainRecvq completes blocked receivers while buffered values are
// available.
func (ch *Chan) drainRecvq() {
	for len(ch.recvq) > 0 && len(ch.buf) > 0 {
		r := ch.recvq[0]
		ch.recvq = ch.recvq[1:]
		r.recvVal, r.recvOK = ch.commitRecv(r.id, r.rel), true
		r.wake()
	}
}

// Mutex is a modeled sync.Mutex: unlock n happens before lock n+1.
type Mutex struct {
	p      *Program
	id     int
	holder *G
	rel    vcClock // release clock of the last Unlock
	waitq  []*G
}

// NewMutex makes a mutex.
func (p *Program) NewMutex() *Mutex {
	m := &Mutex{p: p, id: p.nextMutex}
	p.nextMutex++
	return m
}

func (m *Mutex) lockOp() {
	m.p.vt += costSync
	m.p.stats.Syncs++
	m.p.stats.LockOps++
}

// Lock acquires the mutex, blocking FIFO behind the current holder.
func (m *Mutex) Lock(g *G) {
	p := m.p
	m.lockOp()
	p.det.closeInterval(g.id)
	if m.holder == nil {
		m.holder = g
		p.det.join(g.id, m.rel)
		p.emit(OpMuLock, g.id, m.id, 0, 0, 0)
		g.yield()
		return
	}
	m.waitq = append(m.waitq, g)
	// Resume lower bound for the horizon GC: the waiter will join a
	// hand-off clock at least as large as the current holder's knowledge.
	g.futureLB = func() vcClock {
		if m.holder != nil {
			return p.det.vcs[m.holder.id]
		}
		return nil
	}
	g.block(fmt.Sprintf("lock mutex %d", m.id))
}

// Unlock releases the mutex and hands it to the head waiter, if any.
func (m *Mutex) Unlock(g *G) {
	p := m.p
	m.lockOp()
	if m.holder != g {
		panic(fmt.Sprintf("gofront: unlock of mutex %d by non-holder g%d", m.id, g.id))
	}
	rel := p.det.closeInterval(g.id)
	m.rel = rel
	p.emit(OpMuUnlock, g.id, m.id, 0, 0, 0)
	if len(m.waitq) > 0 {
		h := m.waitq[0]
		m.waitq = m.waitq[1:]
		m.holder = h
		p.det.join(h.id, rel)
		p.emit(OpMuLock, h.id, m.id, 0, 0, 0)
		h.wake()
	} else {
		m.holder = nil
	}
	g.yield()
}

// RWMutex is a modeled sync.RWMutex. Writer Unlock happens before both
// the next Lock and the next RLocks; every RUnlock happens before the
// next writer Lock. Readers do not order each other. Writers take
// priority: new readers queue behind a waiting writer.
type RWMutex struct {
	p        *Program
	id       int
	wHolder  *G
	readers  int
	wRel     vcClock // last writer Unlock clock
	rdRel    vcClock // merged RUnlock clocks since the last writer Lock
	runlocks int     // RUnlock sequence for the per-unlock reader edges
	rWaitq   []*G
	wWaitq   []*G
}

// NewRWMutex makes a reader/writer mutex.
func (p *Program) NewRWMutex() *RWMutex {
	m := &RWMutex{p: p, id: p.nextRW}
	p.nextRW++
	return m
}

func (m *RWMutex) lockOp() {
	m.p.vt += costSync
	m.p.stats.Syncs++
	m.p.stats.LockOps++
}

// RLock takes a read lock.
func (m *RWMutex) RLock(g *G) {
	p := m.p
	m.lockOp()
	p.det.closeInterval(g.id)
	if m.wHolder == nil && len(m.wWaitq) == 0 {
		m.readers++
		p.det.join(g.id, m.wRel)
		p.emit(OpRWRLock, g.id, m.id, 0, 0, 0)
		g.yield()
		return
	}
	m.rWaitq = append(m.rWaitq, g)
	g.futureLB = func() vcClock {
		if m.wHolder != nil {
			return p.det.vcs[m.wHolder.id]
		}
		return nil
	}
	g.block(fmt.Sprintf("rlock rwmutex %d", m.id))
}

// RUnlock drops a read lock; when the last reader leaves, a waiting
// writer is admitted with every reader release clock joined.
func (m *RWMutex) RUnlock(g *G) {
	p := m.p
	m.lockOp()
	if m.readers <= 0 {
		panic(fmt.Sprintf("gofront: runlock of rwmutex %d with no readers", m.id))
	}
	rel := p.det.closeInterval(g.id)
	m.readers--
	m.runlocks++
	if m.rdRel == nil {
		m.rdRel = rel.Copy()
	} else {
		m.rdRel.Merge(rel)
	}
	p.emit(OpRWRUnlock, g.id, m.id, m.runlocks, 0, 0)
	if m.readers == 0 && len(m.wWaitq) > 0 {
		m.admitWriter()
	}
	g.yield()
}

// Lock takes the write lock.
func (m *RWMutex) Lock(g *G) {
	p := m.p
	m.lockOp()
	p.det.closeInterval(g.id)
	if m.wHolder == nil && m.readers == 0 {
		m.wHolder = g
		p.det.join(g.id, m.wRel)
		p.det.join(g.id, m.rdRel)
		m.rdRel = nil
		p.emit(OpRWLock, g.id, m.id, 0, 0, 0)
		g.yield()
		return
	}
	m.wWaitq = append(m.wWaitq, g)
	g.futureLB = func() vcClock {
		if m.wHolder != nil {
			return p.det.vcs[m.wHolder.id]
		}
		return nil
	}
	g.block(fmt.Sprintf("lock rwmutex %d", m.id))
}

// Unlock drops the write lock; all queued readers are admitted together,
// else the next writer.
func (m *RWMutex) Unlock(g *G) {
	p := m.p
	m.lockOp()
	if m.wHolder != g {
		panic(fmt.Sprintf("gofront: unlock of rwmutex %d by non-holder g%d", m.id, g.id))
	}
	rel := p.det.closeInterval(g.id)
	m.wRel = rel
	m.wHolder = nil
	p.emit(OpRWUnlock, g.id, m.id, 0, 0, 0)
	if len(m.rWaitq) > 0 {
		for _, r := range m.rWaitq {
			m.readers++
			p.det.join(r.id, m.wRel)
			p.emit(OpRWRLock, r.id, m.id, 0, 0, 0)
			r.wake()
		}
		m.rWaitq = nil
	} else if len(m.wWaitq) > 0 {
		m.admitWriter()
	}
	g.yield()
}

func (m *RWMutex) admitWriter() {
	p := m.p
	h := m.wWaitq[0]
	m.wWaitq = m.wWaitq[1:]
	m.wHolder = h
	p.det.join(h.id, m.wRel)
	p.det.join(h.id, m.rdRel)
	m.rdRel = nil
	p.emit(OpRWLock, h.id, m.id, 0, 0, 0)
	h.wake()
}

// WaitGroup is a modeled sync.WaitGroup: the Done calls that complete a
// counter cycle happen before the Waits that observe it.
type WaitGroup struct {
	p      *Program
	id     int
	count  int
	dones  int     // Done sequence counter
	acc    vcClock // merged Done clocks of the running cycle
	cycRel vcClock // merged Done clocks of the last completed cycle
	cycLo  int     // Done sequence range of the last completed cycle
	cycHi  int
	waitq  []*G
}

// NewWaitGroup makes a wait group.
func (p *Program) NewWaitGroup() *WaitGroup {
	w := &WaitGroup{p: p, id: p.nextWG}
	p.nextWG++
	return w
}

// Add adds delta to the counter. Negative deltas behave as Dones.
func (w *WaitGroup) Add(g *G, delta int) {
	if delta < 0 {
		for i := 0; i < -delta; i++ {
			w.Done(g)
		}
		return
	}
	w.count += delta
}

// Done decrements the counter, releasing waiters when it reaches zero.
func (w *WaitGroup) Done(g *G) {
	p := w.p
	p.vt += costSync
	p.stats.Syncs++
	p.stats.WGOps++
	if w.count <= 0 {
		panic(fmt.Sprintf("gofront: negative WaitGroup %d counter", w.id))
	}
	rel := p.det.closeInterval(g.id)
	w.count--
	w.dones++
	if w.acc == nil {
		w.acc = rel.Copy()
	} else {
		w.acc.Merge(rel)
	}
	p.emit(OpWgDone, g.id, w.id, w.dones, 0, 0)
	if w.count == 0 {
		w.cycRel = w.acc
		w.acc = nil
		w.cycLo = w.cycHi + 1
		w.cycHi = w.dones
		for _, waiter := range w.waitq {
			p.det.join(waiter.id, w.cycRel)
			p.emit(OpWgWait, waiter.id, w.id, w.cycLo, w.cycHi, 0)
			waiter.wake()
		}
		w.waitq = nil
	}
	g.yield()
}

// Wait blocks until the counter reaches zero; a Wait on a zero counter
// joins the last completed cycle's Dones.
func (w *WaitGroup) Wait(g *G) {
	p := w.p
	p.vt += costSync
	p.stats.Syncs++
	p.stats.WGOps++
	p.det.closeInterval(g.id)
	if w.count == 0 {
		p.det.join(g.id, w.cycRel)
		p.emit(OpWgWait, g.id, w.id, w.cycLo, w.cycHi, 0)
		g.yield()
		return
	}
	w.waitq = append(w.waitq, g)
	// The waiter will join the cycle release clock, which accumulates every
	// Done of the running cycle — the Dones merged so far bound it below.
	g.futureLB = func() vcClock { return w.acc }
	g.block(fmt.Sprintf("wait wg %d", w.id))
}
