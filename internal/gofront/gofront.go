// Package gofront is a Go-native happens-before frontend for the paper's
// interval/vector-clock race detector. Where the DSM frontend derives
// intervals from lock tenures and barrier epochs over page traffic, this
// frontend models Go-memory-model programs directly: goroutines
// (spawn/join), channels (unbuffered rendezvous and buffered FIFO edges),
// Mutex/RWMutex, and WaitGroup. Every synchronization operation closes the
// running goroutine's current interval and opens a new one — the paper's
// "new interval at every acquire, release, or barrier" rule generalized to
// Go sync edges — and the per-location access bitmaps of each closed
// interval are checked against the retained concurrent history exactly as
// the DSM detector checks at barriers.
//
// Programs execute under a deterministic cooperative scheduler: exactly one
// modeled goroutine runs at a time, control is handed off through a baton
// channel pair, and a seeded PRNG picks the next runnable goroutine at each
// yield point. The same seed therefore produces the same linearization, the
// same trace, and the same race set — which is what makes the package's
// cross-validation contract testable: the linearized trace replays through
// the classic per-access detector (internal/hbdet) via ReplayHB, and the
// two detectors must flag identical racy-address sets.
package gofront

import (
	"fmt"
	"math/rand"
	"sort"

	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/telemetry"
)

// Virtual-time costs per modeled operation, in nanoseconds. They are
// arbitrary but fixed: virtual time orders nothing (the scheduler does) and
// exists so gofront runs report a deterministic VirtualNS alongside the DSM
// frontend's.
const (
	costAccess = 2
	costSync   = 40
	costSpawn  = 100
	costSched  = 8
)

// Config sizes one modeled program.
type Config struct {
	// MaxGs bounds the goroutine count and fixes the version-vector width.
	// 0 → 16.
	MaxGs int
	// MemBytes is the modeled shared segment size. 0 → 64 KiB.
	MemBytes int
	// PageBytes is the detector page size (the page-granularity race-check
	// pre-filter). 0 → 512.
	PageBytes int
	// Seed drives the scheduler's runnable-goroutine choice.
	Seed int64
	// Detect enables the interval detector. The trace is recorded either
	// way, so hbdet replay works on detection-off runs too.
	Detect bool
	// Recorder optionally receives scoped telemetry (KGoSync, KGoCheck,
	// KIntervalClose, KRaceFound).
	Recorder *telemetry.Recorder
}

func (c Config) withDefaults() Config {
	if c.MaxGs <= 0 {
		c.MaxGs = 16
	}
	if c.MemBytes <= 0 {
		c.MemBytes = 1 << 16
	}
	if c.PageBytes <= 0 {
		c.PageBytes = 512
	}
	return c
}

// Symbol names a modeled shared variable: Alloc'd address range plus name.
type Symbol struct {
	Name  string
	Addr  mem.Addr
	Words int
}

type gstate uint8

const (
	gRunnable gstate = iota
	gRunning
	gBlocked
	gDone
)

// G is one modeled goroutine. All its methods must be called from inside
// the goroutine's own body function (they assume the caller holds the
// scheduler baton).
type G struct {
	p      *Program
	id     int
	state  gstate
	resume chan struct{}
	reason string // why blocked, for deadlock diagnostics

	// Completion slots for blocking ops, filled by the waking peer.
	recvVal uint64
	recvOK  bool
	sendVal uint64
	rel     vcClock // pending release clock while blocked on a channel/join

	joiners []*G
	final   vcClock // release clock at exit, joined by Join

	// futureLB, set while blocked, returns a clock the goroutine is
	// guaranteed to merge before it runs again (the join target's or lock
	// holder's current clock). The horizon GC uses it so a parked waiter
	// — the ubiquitous root-waits-for-workers shape — does not pin the
	// whole record history at its stale knowledge.
	futureLB func() vcClock
}

// ID returns the goroutine's index (0 is the root).
func (g *G) ID() int { return g.id }

// Program is one modeled Go program: shared memory, goroutines, sync
// objects, the interval detector, and the linearized event trace.
type Program struct {
	cfg    Config
	layout mem.Layout
	seg    *mem.Segment
	rng    *rand.Rand
	scope  telemetry.Scope

	gs     []*G
	parked chan struct{}

	det   *detector
	trace []Event
	vt    int64

	syms     []Symbol
	nextAddr mem.Addr

	nextChan, nextMutex, nextRW, nextWG int

	stats      Stats
	deadlocked bool
	ran        bool
}

// New returns a Program for cfg.
func New(cfg Config) *Program {
	cfg = cfg.withDefaults()
	layout, err := mem.NewLayout(cfg.MemBytes, cfg.PageBytes)
	if err != nil {
		panic(fmt.Sprintf("gofront: bad layout: %v", err))
	}
	p := &Program{
		cfg:    cfg,
		layout: layout,
		seg:    mem.NewSegment(layout),
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		scope:  telemetry.To(cfg.Recorder),
		parked: make(chan struct{}),
	}
	p.det = newDetector(p)
	return p
}

// Alloc reserves words consecutive shared words under name and returns the
// base address. Callable during setup or from a running goroutine (both
// hold the baton).
func (p *Program) Alloc(name string, words int) mem.Addr {
	if words <= 0 {
		panic("gofront: Alloc of <= 0 words")
	}
	a := p.nextAddr
	end := a + mem.Addr(words*mem.WordSize)
	if !p.layout.Contains(end - 1) {
		panic(fmt.Sprintf("gofront: out of modeled memory allocating %q (%d words)", name, words))
	}
	p.nextAddr = end
	p.syms = append(p.syms, Symbol{Name: name, Addr: a, Words: words})
	return a
}

// Layout returns the modeled segment layout.
func (p *Program) Layout() mem.Layout { return p.layout }

func (p *Program) newG() *G {
	if len(p.gs) >= p.cfg.MaxGs {
		panic(fmt.Sprintf("gofront: goroutine limit MaxGs=%d exceeded", p.cfg.MaxGs))
	}
	g := &G{p: p, id: len(p.gs), state: gRunnable, resume: make(chan struct{})}
	p.gs = append(p.gs, g)
	p.stats.Goroutines++
	return g
}

// Run executes root as goroutine 0 and schedules until every goroutine has
// exited or the remainder are deadlocked (a deadlock is recorded, not
// fatal: the trace prefix and all closed intervals are still checked, so
// cross-validation covers deadlocking programs too). Run may be called
// once.
func (p *Program) Run(root func(*G)) *Result {
	if p.ran {
		panic("gofront: Run called twice")
	}
	p.ran = true
	p.startG(p.newG(), nil, root)

	runnable := make([]*G, 0, p.cfg.MaxGs)
	for {
		runnable = runnable[:0]
		blocked := false
		for _, g := range p.gs {
			switch g.state {
			case gRunnable:
				runnable = append(runnable, g)
			case gBlocked:
				blocked = true
			}
		}
		if len(runnable) == 0 {
			p.deadlocked = blocked
			break
		}
		g := runnable[p.rng.Intn(len(runnable))]
		g.state = gRunning
		p.vt += costSched
		p.stats.SchedSteps++
		g.resume <- struct{}{}
		<-p.parked
	}
	return p.finish()
}

// startG begins goroutine g with the parent's release clock (nil for the
// root) and launches its OS goroutine, which waits for its first schedule.
func (p *Program) startG(g *G, parentRel vcClock, fn func(*G)) {
	p.det.startG(g.id, parentRel)
	go func() {
		<-g.resume
		fn(g)
		g.exit()
	}()
}

// exit closes the goroutine's final interval, publishes its release clock
// to joiners, and parks for good.
func (g *G) exit() {
	p := g.p
	p.vt += costSync
	g.final = p.det.closeInterval(g.id)
	p.emit(OpExit, g.id, g.id, 0, 0, 0)
	for _, j := range g.joiners {
		p.det.join(j.id, g.final)
		p.emit(OpJoin, j.id, g.id, 0, 0, 0)
		j.state = gRunnable
	}
	g.joiners = nil
	g.state = gDone
	p.parked <- struct{}{}
}

// yield hands the baton back to the scheduler. If the state is still
// gRunning the goroutine stays runnable (a preemption point); ops that
// block set gBlocked first.
func (g *G) yield() {
	if g.state == gRunning {
		g.state = gRunnable
	}
	g.p.parked <- struct{}{}
	<-g.resume
}

// block parks the goroutine until a peer completes its pending op.
func (g *G) block(reason string) {
	g.state = gBlocked
	g.reason = reason
	g.yield()
	g.reason = ""
}

// wake marks a blocked goroutine runnable (its pending op was completed by
// the caller).
func (g *G) wake() {
	g.state = gRunnable
	g.futureLB = nil
}

// Go spawns fn as a new goroutine. The spawn is a release edge: the
// parent's current interval closes and the child's first interval starts
// with the parent's knowledge.
func (g *G) Go(fn func(*G)) *G {
	p := g.p
	p.vt += costSpawn
	p.stats.Syncs++
	p.stats.SpawnOps++
	child := p.newG()
	rel := p.det.closeInterval(g.id)
	p.emit(OpSpawn, g.id, child.id, 0, 0, 0)
	p.startG(child, rel, fn)
	g.yield()
	return child
}

// Join blocks until t exits, then joins t's final release clock (the Go
// memory model's "goroutine exit is not ordered" caveat does not apply:
// Join models the usual channel/WaitGroup-based join idiom as a direct
// edge).
func (g *G) Join(t *G) {
	p := g.p
	p.vt += costSync
	p.stats.Syncs++
	p.stats.SpawnOps++
	p.det.closeInterval(g.id)
	if t.state == gDone {
		p.det.join(g.id, t.final)
		p.emit(OpJoin, g.id, t.id, 0, 0, 0)
		g.yield()
		return
	}
	t.joiners = append(t.joiners, g)
	g.futureLB = func() vcClock { return p.det.vcs[t.id] }
	g.block(fmt.Sprintf("join g%d", t.id))
}

// Load reads the shared word at a.
func (g *G) Load(a mem.Addr) uint64 {
	p := g.p
	p.vt += costAccess
	p.stats.Loads++
	p.det.noteRead(g.id, a)
	p.emit(OpLoad, g.id, 0, 0, 0, a)
	return p.seg.Word(a)
}

// Store writes the shared word at a.
func (g *G) Store(a mem.Addr, v uint64) {
	p := g.p
	p.vt += costAccess
	p.stats.Stores++
	p.det.noteWrite(g.id, a)
	p.emit(OpStore, g.id, 0, 0, 0, a)
	p.seg.SetWord(a, v)
}

func (p *Program) emit(op Op, g, obj, seq, seq2 int, a mem.Addr) {
	p.trace = append(p.trace, Event{Op: op, G: g, Obj: obj, Seq: seq, Seq2: seq2, Addr: a})
	if op > OpStore { // sync ops only; loads/stores would flood the rings
		p.scope.Emit(g, telemetry.KGoSync, p.vt, int64(op), int64(obj), int64(p.det.idx[g]))
	}
}

// Stats counts the work a program run performed.
type Stats struct {
	Goroutines int
	Loads      int
	Stores     int
	Syncs      int // sync operations (chan + lock + wg + spawn/join)
	ChanOps    int
	LockOps    int // Mutex + RWMutex
	WGOps      int
	SpawnOps   int // Go + Join

	Intervals       int // interval records materialized
	PairsExamined   int // closed-record pairs version-vector-compared
	ConcurrentPairs int
	CheckEntries    int // (pair, page) bitmap-comparison entries
	BitmapsCompared int
	WordOverlaps    int // racing words found (before dedup)
	RecordsGCed     int // records retired by the knowledge-horizon GC

	SchedSteps int64
}

// Result is everything one program run produced.
type Result struct {
	// Races is the deduplicated race set (one representative per address
	// and endpoint-kind pair), in deterministic discovery order.
	Races []race.Report
	// RacyAddrs is the sorted distinct address set — the cross-validation
	// currency against hbdet.
	RacyAddrs []mem.Addr
	// Trace is the linearized event stream; ReplayHB drives the reference
	// detector from it.
	Trace []Event
	Stats Stats
	// NumGs is the goroutine count (the clock width ReplayHB needs).
	NumGs      int
	VirtualNS  int64
	Deadlocked bool
	Symbols    []Symbol

	layout mem.Layout
}

// SymbolAt resolves a modeled address to "name[i]" via the Alloc table.
func (r *Result) SymbolAt(a mem.Addr) (string, bool) {
	for _, s := range r.Symbols {
		if a >= s.Addr && a < s.Addr+mem.Addr(s.Words*mem.WordSize) {
			if s.Words == 1 {
				return s.Name, true
			}
			return fmt.Sprintf("%s[%d]", s.Name, int(a-s.Addr)/mem.WordSize), true
		}
	}
	return "", false
}

func (p *Program) finish() *Result {
	p.det.finishAll()
	p.stats.Intervals = p.det.intervals
	p.stats.PairsExamined = p.det.pairsExamined
	p.stats.ConcurrentPairs = p.det.concurrentPairs
	p.stats.CheckEntries = p.det.checkEntries
	p.stats.BitmapsCompared = p.det.bitmapsCompared
	p.stats.WordOverlaps = p.det.wordOverlaps
	p.stats.RecordsGCed = p.det.recordsGCed

	deduped := race.DedupByAddr(p.det.reports)
	for _, rep := range deduped {
		p.scope.Emit(rep.A.Interval.Proc, telemetry.KRaceFound, p.vt,
			int64(rep.Addr), 0, b2i(rep.WriteWrite()))
	}
	addrSet := make(map[mem.Addr]bool)
	for _, rep := range deduped {
		addrSet[rep.Addr] = true
	}
	addrs := make([]mem.Addr, 0, len(addrSet))
	for a := range addrSet {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	return &Result{
		Races:      deduped,
		RacyAddrs:  addrs,
		Trace:      p.trace,
		Stats:      p.stats,
		NumGs:      len(p.gs),
		VirtualNS:  p.vt,
		Deadlocked: p.deadlocked,
		Symbols:    p.syms,
		layout:     p.layout,
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
