package gofront

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"lrcrace/internal/mem"
)

// Randomized cross-validation: generate seeded programs over the full sync
// vocabulary (spawn/join, buffered and unbuffered channels, Mutex, RWMutex,
// WaitGroup), run them under the interval detector, and require the racy
// address set to match the classic per-access happens-before detector
// replaying the identical trace. Programs are free to deadlock — the
// scheduler abandons blocked goroutines and both detectors see the same
// trace prefix, so the contract holds on the prefix too.

// rinst is one generated instruction.
type rinst struct {
	kind int
	a    int  // object index (mutex/chan/script) or address word
	b    int  // secondary operand (address word for locked blocks)
	wg   bool // spawn: register the child with the shared WaitGroup
}

const (
	riLoad    = iota // a = word
	riStore          // a = word
	riLocked         // a = mutex, b = word: lock; load+store b; unlock
	riRWRead         // a = word: RLock; load; RUnlock
	riRWWrite        // a = word: Lock; load+store; Unlock
	riSend           // a = chan
	riRecv           // a = chan
	riSpawn          // a = script index
	riJoin           // join the oldest unjoined child, if any
	riWgWait
)

// rprog is a generated program: a script per goroutine, script 0 = root.
type rprog struct {
	scripts  [][]rinst
	chanCaps []int
	numMu    int
	words    int
}

const (
	rpMaxGs    = 8
	rpMaxDepth = 2
	rpWords    = 8
)

func genProg(seed int64) *rprog {
	rng := rand.New(rand.NewSource(seed))
	p := &rprog{
		chanCaps: []int{rng.Intn(3), rng.Intn(3)},
		numMu:    2,
		words:    rpWords,
	}
	p.scripts = append(p.scripts, nil) // reserve root slot
	p.scripts[0] = p.genScript(rng, 0)
	return p
}

func (p *rprog) genScript(rng *rand.Rand, depth int) []rinst {
	n := 5 + rng.Intn(25)
	script := make([]rinst, 0, n+1)
	for i := 0; i < n; i++ {
		w := rng.Intn(100)
		switch {
		case w < 25:
			script = append(script, rinst{kind: riLoad, a: rng.Intn(p.words)})
		case w < 50:
			script = append(script, rinst{kind: riStore, a: rng.Intn(p.words)})
		case w < 65:
			script = append(script, rinst{kind: riLocked, a: rng.Intn(p.numMu), b: rng.Intn(p.words)})
		case w < 70:
			script = append(script, rinst{kind: riRWRead, a: rng.Intn(p.words)})
		case w < 75:
			script = append(script, rinst{kind: riRWWrite, a: rng.Intn(p.words)})
		case w < 83:
			script = append(script, rinst{kind: riSend, a: rng.Intn(len(p.chanCaps))})
		case w < 91:
			script = append(script, rinst{kind: riRecv, a: rng.Intn(len(p.chanCaps))})
		case w < 97:
			if depth < rpMaxDepth && len(p.scripts) < rpMaxGs {
				idx := len(p.scripts)
				p.scripts = append(p.scripts, nil) // reserve before recursing
				p.scripts[idx] = p.genScript(rng, depth+1)
				script = append(script, rinst{kind: riSpawn, a: idx, wg: rng.Intn(2) == 0})
			}
		case w < 99:
			script = append(script, rinst{kind: riJoin})
		default:
			script = append(script, rinst{kind: riWgWait})
		}
	}
	// Roots usually collect their children so traces exercise join edges.
	if depth == 0 && rng.Intn(4) != 0 {
		script = append(script, rinst{kind: riJoin}, rinst{kind: riJoin}, rinst{kind: riWgWait})
	}
	return script
}

// run executes the generated program under gofront and returns the result.
func (p *rprog) run(seed int64, detect bool) *Result {
	prog := New(Config{MaxGs: rpMaxGs, Seed: seed, Detect: detect})
	base := prog.Alloc("s", p.words)
	addr := func(w int) mem.Addr { return base + mem.Addr(w*mem.WordSize) }
	mus := make([]*Mutex, p.numMu)
	for i := range mus {
		mus[i] = prog.NewMutex()
	}
	rw := prog.NewRWMutex()
	wg := prog.NewWaitGroup()
	var chans []*Chan

	var exec func(g *G, idx int)
	exec = func(g *G, idx int) {
		var kids []*G
		for _, in := range p.scripts[idx] {
			switch in.kind {
			case riLoad:
				g.Load(addr(in.a))
			case riStore:
				g.Store(addr(in.a), uint64(in.a+1))
			case riLocked:
				mu := mus[in.a]
				mu.Lock(g)
				a := addr(in.b)
				g.Store(a, g.Load(a)+1)
				mu.Unlock(g)
			case riRWRead:
				rw.RLock(g)
				g.Load(addr(in.a))
				rw.RUnlock(g)
			case riRWWrite:
				rw.Lock(g)
				a := addr(in.a)
				g.Store(a, g.Load(a)+1)
				rw.Unlock(g)
			case riSend:
				chans[in.a].Send(g, uint64(idx))
			case riRecv:
				chans[in.a].Recv(g)
			case riSpawn:
				child := in.a
				useWg := in.wg
				if useWg {
					wg.Add(g, 1)
				}
				kids = append(kids, g.Go(func(cg *G) {
					exec(cg, child)
					if useWg {
						wg.Done(cg)
					}
				}))
			case riJoin:
				if len(kids) > 0 {
					g.Join(kids[0])
					kids = kids[1:]
				}
			case riWgWait:
				wg.Wait(g)
			}
		}
	}

	return prog.Run(func(g *G) {
		for i, c := range p.chanCaps {
			_ = i
			chans = append(chans, prog.NewChan(c))
		}
		exec(g, 0)
	})
}

// TestRandomProgramsCrossValidate is the headline cross-validation contract:
// over 250 seeded random programs, the interval detector and the per-access
// happens-before replay agree on the racy address set.
func TestRandomProgramsCrossValidate(t *testing.T) {
	const programs = 250
	racy, deadlocked := 0, 0
	for seed := int64(0); seed < programs; seed++ {
		p := genProg(seed)
		res := p.run(seed, true)
		got := res.RacyAddrs
		want := RacyAddrsHB(res.Trace, res.NumGs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("seed %d: racy addr mismatch\n gofront: %v\n hbdet:   %v\n trace (%d events): %v",
				seed, got, want, len(res.Trace), res.Trace)
		}
		if len(got) > 0 {
			racy++
		}
		if res.Deadlocked {
			deadlocked++
		}
	}
	t.Logf("%d programs: %d racy, %d deadlocked", programs, racy, deadlocked)
	// The generator must actually produce diverse behavior or the
	// cross-validation is vacuous.
	if racy < programs/10 {
		t.Fatalf("generator too tame: only %d/%d programs raced", racy, programs)
	}
	if racy == programs {
		t.Fatalf("generator never produced a race-free program")
	}
}

// TestRandomProgramsDeterministic reruns a sample of seeds and requires
// byte-identical traces, race sets, and stats — the determinism contract the
// sweep grid depends on.
func TestRandomProgramsDeterministic(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		p := genProg(seed)
		r1 := p.run(seed, true)
		r2 := p.run(seed, true)
		if !reflect.DeepEqual(r1.Trace, r2.Trace) {
			t.Fatalf("seed %d: trace not deterministic", seed)
		}
		if !reflect.DeepEqual(r1.RacyAddrs, r2.RacyAddrs) {
			t.Fatalf("seed %d: race set not deterministic: %v vs %v", seed, r1.RacyAddrs, r2.RacyAddrs)
		}
		if r1.Stats != r2.Stats {
			t.Fatalf("seed %d: stats not deterministic:\n%+v\n%+v", seed, r1.Stats, r2.Stats)
		}
	}
}

// TestRandomProgramsDetectOffReplay checks the trace-only mode: with the
// inline detector off, replaying the trace still yields the same set as a
// detecting run of the same seed.
func TestRandomProgramsDetectOffReplay(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		p := genProg(seed)
		on := p.run(seed, true)
		off := p.run(seed, false)
		if !reflect.DeepEqual(on.Trace, off.Trace) {
			t.Fatalf("seed %d: detect on/off changed the trace", seed)
		}
		if want := RacyAddrsHB(off.Trace, off.NumGs); !reflect.DeepEqual(on.RacyAddrs, want) {
			t.Fatalf("seed %d: detect-off replay mismatch: %v vs %v", seed, on.RacyAddrs, want)
		}
	}
}

func init() {
	// Guard against accidental generator drift: scripts must stay within the
	// goroutine budget (the reserve-before-recurse pattern above).
	p := genProg(1)
	if len(p.scripts) > rpMaxGs {
		panic(fmt.Sprintf("randprog: %d scripts exceeds budget %d", len(p.scripts), rpMaxGs))
	}
}
