package gofront

import (
	"fmt"
	"sort"

	"lrcrace/internal/telemetry"
)

// WorkloadConfig parameterizes a registered gofront workload — the
// Go-frontend analogue of the harness RunConfig knobs.
type WorkloadConfig struct {
	// Clients is the traffic-driving goroutine count. 0 → 4.
	Clients int
	// Ops is the operation count per client. 0 → the workload default
	// scaled by Scale.
	Ops int
	// Scale scales the default op count when Ops is 0. 0 → 1.
	Scale float64
	// HotKeySkew in [0,1) is the probability a client op targets the hot
	// key set instead of the uniform keyspace.
	HotKeySkew float64
	// Racy plants the workload's racy fast path.
	Racy bool
	// Seed drives both the scheduler and the simulated traffic.
	Seed int64
	// Detect enables the interval detector.
	Detect bool
	// Recorder optionally receives scoped telemetry.
	Recorder *telemetry.Recorder
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

// OpsOrDefault resolves the per-client op count against the workload's
// scaled default.
func (c WorkloadConfig) OpsOrDefault(def int) int {
	if c.Ops > 0 {
		return c.Ops
	}
	n := int(float64(def) * c.Scale)
	if n < 1 {
		n = 1
	}
	return n
}

// Workload is a registered gofront program family.
type Workload struct {
	Name string
	Desc string
	Run  func(WorkloadConfig) (*Result, error)
}

var workloads = map[string]Workload{}

// RegisterWorkload adds a workload to the registry (called from app
// package init functions, like the DSM app registry).
func RegisterWorkload(name, desc string, run func(WorkloadConfig) (*Result, error)) {
	if _, dup := workloads[name]; dup {
		panic(fmt.Sprintf("gofront: duplicate workload %q", name))
	}
	workloads[name] = Workload{Name: name, Desc: desc, Run: run}
}

// Workloads returns the registered workload names, sorted.
func Workloads() []string {
	names := make([]string, 0, len(workloads))
	for n := range workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// IsWorkload reports whether name is a registered gofront workload.
func IsWorkload(name string) bool {
	_, ok := workloads[name]
	return ok
}

// RunWorkload runs the named workload under cfg.
func RunWorkload(name string, cfg WorkloadConfig) (*Result, error) {
	w, ok := workloads[name]
	if !ok {
		return nil, fmt.Errorf("gofront: unknown workload %q (have %v)", name, Workloads())
	}
	return w.Run(cfg.withDefaults())
}
