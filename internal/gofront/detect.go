package gofront

import (
	"lrcrace/internal/interval"
	"lrcrace/internal/mem"
	"lrcrace/internal/race"
	"lrcrace/internal/telemetry"
	"lrcrace/internal/vc"
)

// vcClock is the version-vector type the frontend threads through sync
// objects as release clocks.
type vcClock = vc.VC

// gcEvery is how many interval closes pass between knowledge-horizon GC
// sweeps over the retained record history.
const gcEvery = 64

// detector is the gofront incarnation of the paper's detection procedure.
// Instead of batching the concurrency check at barriers, it checks each
// interval as it closes against every retained record that is concurrent
// with it: the version-vector comparison is the same constant-time check,
// the page-notice intersection the same pre-filter, and the word-bitmap
// comparison the same race.CompareShard kernel the DSM barrier master
// runs. Records ordered before every live goroutine's current knowledge
// (the pointwise-minimum horizon) can never be concurrent with a future
// interval and are retired, bounding the history — the Go-frontend
// analogue of "our system only discards trace information when it has
// been checked for races" (§6.4).
type detector struct {
	p       *Program
	n       int
	enabled bool

	started []bool
	idx     []vc.Index
	vcs     []vc.VC
	bld     []*interval.Builder
	store   *interval.BitmapStore
	records []*interval.Record
	reports []race.Report

	closes          int
	intervals       int
	pairsExamined   int
	concurrentPairs int
	checkEntries    int
	bitmapsCompared int
	wordOverlaps    int
	recordsGCed     int

	pageScratch []mem.PageID
}

func newDetector(p *Program) *detector {
	n := p.cfg.MaxGs
	d := &detector{
		p:       p,
		n:       n,
		enabled: p.cfg.Detect,
		started: make([]bool, n),
		idx:     make([]vc.Index, n),
		vcs:     make([]vc.VC, n),
		bld:     make([]*interval.Builder, n),
	}
	if d.enabled {
		d.store = interval.NewBitmapStore()
	}
	return d
}

// startG opens goroutine g's first interval with the spawning parent's
// release clock (nil for the root).
func (d *detector) startG(g int, parentRel vc.VC) {
	d.started[g] = true
	d.idx[g] = 1
	d.vcs[g] = vc.New(d.n)
	if parentRel != nil {
		d.vcs[g].Merge(parentRel)
	}
	d.vcs[g][g] = 1
	if d.enabled {
		d.bld[g] = interval.NewBuilder(d.p.layout)
	}
}

func (d *detector) noteRead(g int, a mem.Addr) {
	if d.enabled {
		d.bld[g].NoteRead(a)
	}
}

func (d *detector) noteWrite(g int, a mem.Addr) {
	if d.enabled {
		d.bld[g].NoteWrite(a)
	}
}

// closeInterval ends goroutine g's current interval and opens the next.
// The returned release clock snapshots g's knowledge up to and including
// the closed interval — but never the newly opened one, so joining it
// elsewhere cannot falsely order accesses that follow this sync op. If
// the interval recorded accesses, it is materialized and immediately
// checked against the retained concurrent history.
func (d *detector) closeInterval(g int) vc.VC {
	rel := d.vcs[g].Copy()
	if d.enabled && !d.bld[g].Empty() {
		id := vc.IntervalID{Proc: g, Index: d.idx[g]}
		r := d.bld[g].Finish(id, d.vcs[g], 0, d.store)
		d.intervals++
		d.p.scope.Emit(g, telemetry.KIntervalClose, d.p.vt,
			int64(d.idx[g]), int64(len(r.WriteNotices)), int64(len(r.ReadNotices)))
		d.check(r)
		d.records = append(d.records, r)
	}
	d.idx[g]++
	d.vcs[g][g] = d.idx[g]
	d.closes++
	if d.enabled && d.closes%gcEvery == 0 {
		d.gc()
	}
	return rel
}

// join merges a release clock into goroutine g's current knowledge — the
// acquire half of every happens-before edge.
func (d *detector) join(g int, rel vc.VC) {
	if rel != nil {
		d.vcs[g].Merge(rel)
	}
}

// check compares the newly closed record r against every retained record
// of another goroutine that is concurrent with it: page-notice overlap
// pre-filter, then the word-bitmap comparison kernel.
func (d *detector) check(r *interval.Record) {
	pairs, bitmaps, found := 0, 0, 0
	var entries []race.CheckEntry
	for _, s := range d.records {
		if s.ID.Proc == r.ID.Proc {
			continue
		}
		pairs++
		if !vc.Concurrent(s.ID, s.VC, r.ID, r.VC) {
			continue
		}
		d.concurrentPairs++
		pages := d.pageScratch[:0]
		pages = interval.OverlapPages(s.WriteNotices, r.WriteNotices, pages)
		pages = interval.OverlapPages(s.WriteNotices, r.ReadNotices, pages)
		pages = interval.OverlapPages(s.ReadNotices, r.WriteNotices, pages)
		d.pageScratch = pages
		if len(pages) == 0 {
			continue
		}
		interval.SortPages(pages)
		last := mem.PageID(-1)
		for _, pg := range pages {
			if pg == last {
				continue
			}
			last = pg
			entries = append(entries, race.CheckEntry{A: s.ID, B: r.ID, Page: pg})
		}
	}
	d.pairsExamined += pairs
	if len(entries) > 0 {
		reports, st := race.CompareShard(d.p.layout, entries, race.StoreSource{Store: d.store}, 0)
		d.checkEntries += len(entries)
		d.bitmapsCompared += st.BitmapsCompared
		d.wordOverlaps += st.WordOverlaps
		bitmaps = st.BitmapsCompared
		found = len(reports)
		d.reports = append(d.reports, reports...)
	}
	d.p.scope.Emit(r.ID.Proc, telemetry.KGoCheck, d.p.vt, int64(pairs), int64(bitmaps), int64(found))
}

// gc retires records at or below the knowledge horizon: the pointwise
// minimum of every live goroutine's version vector. Such a record precedes
// every interval any live goroutine can still open (vectors only grow), so
// it can never again appear in a concurrent pair.
//
// A blocked goroutine contributes not its stale current clock but that
// clock merged with its resume lower bound (futureLB): the clock it is
// guaranteed to join before it runs again — the join target's current
// clock, the lock holder's, the WaitGroup's accumulated Dones. Without
// this, a root goroutine parked in Join for the whole run would pin the
// horizon at its spawn-time knowledge and nothing could ever be retired.
func (d *detector) gc() {
	var horizon vc.VC
	for _, g := range d.p.gs {
		if g.state == gDone || !d.started[g.id] {
			continue
		}
		eff := d.vcs[g.id]
		if g.state == gBlocked && g.futureLB != nil {
			if lb := g.futureLB(); lb != nil {
				eff = eff.Copy()
				eff.Merge(lb)
			}
		}
		if horizon == nil {
			horizon = eff.Copy()
			continue
		}
		for i, x := range eff {
			if x < horizon[i] {
				horizon[i] = x
			}
		}
	}
	if horizon == nil {
		return
	}
	// A goroutine slot that may still be spawned into has seen nothing
	// yet from the horizon's perspective only via its future parent's
	// clock — but the spawn edge will carry the parent's knowledge, which
	// is already bounded below by the horizon, so unspawned slots need no
	// adjustment.
	kept := d.records[:0]
	for _, r := range d.records {
		if r.ID.Index > horizon[r.ID.Proc] {
			kept = append(kept, r)
		} else {
			d.recordsGCed++
		}
	}
	clear(d.records[len(kept):])
	d.records = kept
	for proc := 0; proc < d.n; proc++ {
		d.store.DiscardUpTo(proc, horizon[proc])
	}
}

// finishAll closes the current interval of every goroutine that has not
// exited (blocked or abandoned by a deadlock), so accesses up to the block
// point still enter the check.
func (d *detector) finishAll() {
	for _, g := range d.p.gs {
		if g.state != gDone && d.started[g.id] {
			d.closeInterval(g.id)
		}
	}
}
