package gofront

import (
	"lrcrace/internal/hbdet"
	"lrcrace/internal/mem"
)

// Op is the kind of one linearized trace event.
type Op uint8

// Trace event kinds. OpLoad and OpStore are data accesses; everything
// above OpStore is a synchronization operation (the emit path relies on
// that ordering).
const (
	OpLoad Op = iota
	OpStore
	OpSpawn          // G=parent, Obj=child goroutine
	OpExit           // G exiting (release of its exit edge)
	OpJoin           // G joiner, Obj=target goroutine
	OpChanMake       // Obj=channel, Seq=capacity
	OpChanSend       // Obj=channel, Seq=send sequence (1-based)
	OpChanRecv       // Obj=channel, Seq=receive sequence (1-based)
	OpChanRecvClosed // Obj=channel: receive of the zero value after close
	OpChanClose      // Obj=channel
	OpMuLock         // Obj=mutex
	OpMuUnlock       // Obj=mutex
	OpRWRLock        // Obj=rwmutex
	OpRWRUnlock      // Obj=rwmutex, Seq=runlock sequence (1-based)
	OpRWLock         // Obj=rwmutex (writer)
	OpRWUnlock       // Obj=rwmutex (writer)
	OpWgDone         // Obj=waitgroup, Seq=done sequence (1-based)
	OpWgWait         // Obj=waitgroup, joins dones Seq..Seq2 (0,0 = none)
)

var opNames = [...]string{
	OpLoad: "Load", OpStore: "Store", OpSpawn: "Spawn", OpExit: "Exit",
	OpJoin: "Join", OpChanMake: "ChanMake", OpChanSend: "ChanSend",
	OpChanRecv: "ChanRecv", OpChanRecvClosed: "ChanRecvClosed",
	OpChanClose: "ChanClose", OpMuLock: "MuLock", OpMuUnlock: "MuUnlock",
	OpRWRLock: "RWRLock", OpRWRUnlock: "RWRUnlock", OpRWLock: "RWLock",
	OpRWUnlock: "RWUnlock", OpWgDone: "WgDone", OpWgWait: "WgWait",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return "Op?"
}

// Event is one entry of the linearized trace. Events are appended at the
// point an operation takes effect: a blocked operation's event carries the
// blocked goroutine's id but appears at the position its completing peer
// committed it, which is exactly its happens-before linearization point.
type Event struct {
	Op   Op
	G    int
	Obj  int
	Seq  int
	Seq2 int
	Addr mem.Addr
}

// Edge-key kinds for the synthetic hbdet lock ids ReplayHB mints. Each
// distinct happens-before edge of the trace becomes a release/acquire pair
// on its own synthetic lock; mutexes and rwmutex writer tenures reuse one
// id per object like real locks do.
const (
	eSpawn = iota
	eExit
	eChanSend
	eChanRecv
	eChanClose
	eMutex
	eRWWriter
	eRWReader
	eWgDone
)

type edgeKey struct{ kind, obj, seq int }

// ReplayHB feeds a recorded trace through the classic per-access
// happens-before detector, mapping every Go-memory-model edge onto
// synthetic release/acquire pairs:
//
//   - spawn: parent releases, child acquires, one edge per child
//   - exit/join: the exiting goroutine releases its exit edge, joiners
//     acquire it
//   - channel send k: release of the send-k edge; on a buffered channel
//     of capacity C, send k > C also acquires the receive-(k-C) edge (the
//     backpressure edge: "the k-th receive happens before the k+C-th send
//     completes")
//   - channel receive k: acquire of the send-k edge, then release of the
//     receive-k edge; on an unbuffered channel the sender additionally
//     acquires the receive-k edge at this point — the rendezvous back-join
//     ("a receive from an unbuffered channel happens before the send
//     completes"); performing it at the receive's trace position is sound
//     because the sender is blocked until the rendezvous, so its next
//     trace event follows
//   - close / receive-of-zero: release / acquire of the channel's close
//     edge
//   - Mutex: acquire/release of one lock id per mutex
//   - RWMutex: writer Lock/Unlock use the writer id; each RUnlock
//     releases a fresh reader edge that the next writer Lock acquires
//     (readers don't order each other)
//   - WaitGroup: each Done releases its own edge; a Wait acquires every
//     Done edge of the counter cycle it observed
//
// n is the goroutine-slot count (Result.NumGs).
func ReplayHB(trace []Event, n int) *hbdet.Detector {
	d := hbdet.New(n)
	edges := make(map[edgeKey]int)
	next := -1 // negative ids cannot collide with modeled object ids
	edge := func(kind, obj, seq int) int {
		k := edgeKey{kind, obj, seq}
		if id, ok := edges[k]; ok {
			return id
		}
		id := next
		next--
		edges[k] = id
		return id
	}
	caps := make(map[int]int)
	sender := make(map[edgeKey]int) // (chan, send seq) -> sending goroutine
	rwPending := make(map[int][]int)

	for _, e := range trace {
		switch e.Op {
		case OpLoad:
			d.Read(e.G, e.Addr)
		case OpStore:
			d.Write(e.G, e.Addr)
		case OpSpawn:
			id := edge(eSpawn, e.Obj, 0)
			d.Release(e.G, id)
			d.Acquire(e.Obj, id)
		case OpExit:
			d.Release(e.G, edge(eExit, e.G, 0))
		case OpJoin:
			d.Acquire(e.G, edge(eExit, e.Obj, 0))
		case OpChanMake:
			caps[e.Obj] = e.Seq
		case OpChanSend:
			sender[edgeKey{0, e.Obj, e.Seq}] = e.G
			d.Release(e.G, edge(eChanSend, e.Obj, e.Seq))
			if c := caps[e.Obj]; c > 0 && e.Seq > c {
				d.Acquire(e.G, edge(eChanRecv, e.Obj, e.Seq-c))
			}
		case OpChanRecv:
			d.Acquire(e.G, edge(eChanSend, e.Obj, e.Seq))
			id := edge(eChanRecv, e.Obj, e.Seq)
			d.Release(e.G, id)
			if caps[e.Obj] == 0 {
				d.Acquire(sender[edgeKey{0, e.Obj, e.Seq}], id)
			}
		case OpChanClose:
			d.Release(e.G, edge(eChanClose, e.Obj, 0))
		case OpChanRecvClosed:
			d.Acquire(e.G, edge(eChanClose, e.Obj, 0))
		case OpMuLock:
			d.Acquire(e.G, edge(eMutex, e.Obj, 0))
		case OpMuUnlock:
			d.Release(e.G, edge(eMutex, e.Obj, 0))
		case OpRWRLock:
			d.Acquire(e.G, edge(eRWWriter, e.Obj, 0))
		case OpRWRUnlock:
			id := edge(eRWReader, e.Obj, e.Seq)
			d.Release(e.G, id)
			rwPending[e.Obj] = append(rwPending[e.Obj], id)
		case OpRWLock:
			d.Acquire(e.G, edge(eRWWriter, e.Obj, 0))
			for _, id := range rwPending[e.Obj] {
				d.Acquire(e.G, id)
			}
			delete(rwPending, e.Obj)
		case OpRWUnlock:
			d.Release(e.G, edge(eRWWriter, e.Obj, 0))
		case OpWgDone:
			d.Release(e.G, edge(eWgDone, e.Obj, e.Seq))
		case OpWgWait:
			for i := e.Seq; i >= 1 && i <= e.Seq2; i++ {
				d.Acquire(e.G, edge(eWgDone, e.Obj, i))
			}
		}
	}
	return d
}

// RacyAddrsHB replays the trace through hbdet and returns its sorted racy
// address set — the comparison side of the cross-validation contract.
func RacyAddrsHB(trace []Event, n int) []mem.Addr {
	return ReplayHB(trace, n).RacyAddrs()
}
