package gofront

import (
	"fmt"
	"reflect"
	"testing"

	"lrcrace/internal/mem"
)

// runProg runs body under a fresh program and cross-validates the gofront
// race set against the hbdet replay of the same trace, returning the
// agreed racy-address set.
func runProg(t *testing.T, seed int64, setup func(p *Program) func(*G)) *Result {
	t.Helper()
	p := New(Config{Seed: seed, Detect: true, MaxGs: 16})
	root := setup(p)
	res := p.Run(root)
	hb := RacyAddrsHB(res.Trace, res.NumGs)
	if !addrsEqual(res.RacyAddrs, hb) {
		t.Fatalf("cross-validation mismatch:\n  gofront: %v\n  hbdet:   %v", res.RacyAddrs, hb)
	}
	return res
}

func addrsEqual(a, b []mem.Addr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func wantRacy(t *testing.T, res *Result, want ...mem.Addr) {
	t.Helper()
	if !addrsEqual(res.RacyAddrs, want) {
		t.Fatalf("racy addrs = %v, want %v", res.RacyAddrs, want)
	}
}

// Two goroutines write the same word with no synchronization: the canonical
// racy program. The spawn edges order each child after the root, but not
// the children against each other.
func TestUnsyncedWritesRace(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		var x mem.Addr
		res := runProg(t, seed, func(p *Program) func(*G) {
			x = p.Alloc("x", 1)
			return func(g *G) {
				a := g.Go(func(g *G) { g.Store(x, 1) })
				b := g.Go(func(g *G) { g.Store(x, 2) })
				g.Join(a)
				g.Join(b)
			}
		})
		wantRacy(t, res, x)
		if len(res.Races) == 0 || !res.Races[0].WriteWrite() {
			t.Fatalf("want a write-write report, got %v", res.Races)
		}
	}
}

// The same program with the accesses under one mutex is clean.
func TestMutexOrdersWrites(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res := runProg(t, seed, func(p *Program) func(*G) {
			x := p.Alloc("x", 1)
			mu := p.NewMutex()
			worker := func(g *G) {
				mu.Lock(g)
				g.Store(x, g.Load(x)+1)
				mu.Unlock(g)
			}
			return func(g *G) {
				a := g.Go(worker)
				b := g.Go(worker)
				g.Join(a)
				g.Join(b)
			}
		})
		wantRacy(t, res)
	}
}

// Unbuffered channel rendezvous orders the producer's write before the
// consumer's read — and the consumer's pre-send accesses before the
// producer's post-send accesses (the back edge).
func TestRendezvousOrdersBothWays(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res := runProg(t, seed, func(p *Program) func(*G) {
			x := p.Alloc("x", 1)
			y := p.Alloc("y", 1)
			ch := p.NewChan(0)
			return func(g *G) {
				c := g.Go(func(g *G) {
					g.Store(y, 7) // before the recv: ordered before sender's post-send code
					if v, ok := ch.Recv(g); !ok || v != 42 {
						panic("bad recv")
					}
					_ = g.Load(x)
				})
				g.Store(x, 1)
				ch.Send(g, 42)
				_ = g.Load(y) // after the send completes: sees the consumer's y store
				g.Join(c)
			}
		})
		wantRacy(t, res)
	}
}

// Without the channel, the same accesses race.
func TestNoChannelRaces(t *testing.T) {
	var x mem.Addr
	res := runProg(t, 3, func(p *Program) func(*G) {
		x = p.Alloc("x", 1)
		return func(g *G) {
			c := g.Go(func(g *G) { _ = g.Load(x) })
			g.Store(x, 1)
			g.Join(c)
		}
	})
	wantRacy(t, res, x)
}

// Buffered channel backpressure: on a capacity-1 channel, receive k
// happens before send k+1 completes. The consumer's store is therefore
// ordered before the producer's post-second-send load — but only when the
// second send exists.
func TestBufferedBackpressure(t *testing.T) {
	build := func(secondSend bool) func(p *Program) (func(*G), mem.Addr) {
		return func(p *Program) (func(*G), mem.Addr) {
			y := p.Alloc("y", 1)
			ch := p.NewChan(1)
			root := func(g *G) {
				c := g.Go(func(g *G) {
					g.Store(y, 9)
					if _, ok := ch.Recv(g); !ok {
						panic("bad recv")
					}
					if secondSend {
						if _, ok := ch.Recv(g); !ok {
							panic("bad recv2")
						}
					}
				})
				ch.Send(g, 1)
				if secondSend {
					ch.Send(g, 2)
				}
				_ = g.Load(y)
				g.Join(c)
			}
			return root, y
		}
	}
	for seed := int64(0); seed < 8; seed++ {
		var y mem.Addr
		res := runProg(t, seed, func(p *Program) func(*G) {
			root, addr := build(true)(p)
			y = addr
			return root
		})
		_ = y
		wantRacy(t, res) // second send ordered after the first recv: clean
	}
	// With a single send the store y (before recv) and load y (after send 1)
	// are unordered: send 1 needs no backpressure edge on a cap-1 channel.
	sawRace := false
	for seed := int64(0); seed < 8; seed++ {
		var y mem.Addr
		res := runProg(t, seed, func(p *Program) func(*G) {
			root, addr := build(false)(p)
			y = addr
			return root
		})
		if len(res.RacyAddrs) > 0 {
			wantRacy(t, res, y)
			sawRace = true
		}
	}
	if !sawRace {
		t.Fatal("single-send variant never raced across seeds")
	}
}

// Channel close edge: a store before close is visible to the receive of
// the zero value.
func TestCloseOrdersReceiveOfZero(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res := runProg(t, seed, func(p *Program) func(*G) {
			x := p.Alloc("x", 1)
			ch := p.NewChan(0)
			return func(g *G) {
				c := g.Go(func(g *G) {
					if _, ok := ch.Recv(g); ok {
						panic("want closed")
					}
					_ = g.Load(x)
				})
				g.Store(x, 5)
				ch.Close(g)
				g.Join(c)
			}
		})
		wantRacy(t, res)
	}
}

// WaitGroup: worker stores are ordered before the Wait-ing root's loads.
func TestWaitGroupOrdersWorkers(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res := runProg(t, seed, func(p *Program) func(*G) {
			xs := p.Alloc("xs", 4)
			wg := p.NewWaitGroup()
			return func(g *G) {
				wg.Add(g, 4)
				for i := 0; i < 4; i++ {
					i := i
					g.Go(func(g *G) {
						g.Store(xs+mem.Addr(i*mem.WordSize), uint64(i))
						wg.Done(g)
					})
				}
				wg.Wait(g)
				for i := 0; i < 4; i++ {
					_ = g.Load(xs + mem.Addr(i*mem.WordSize))
				}
			}
		})
		wantRacy(t, res)
	}
}

// RWMutex: reader/reader sharing is clean, and the writer is ordered
// against both directions. Removing the reader lock makes it race.
func TestRWMutex(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res := runProg(t, seed, func(p *Program) func(*G) {
			x := p.Alloc("x", 1)
			rw := p.NewRWMutex()
			reader := func(g *G) {
				rw.RLock(g)
				_ = g.Load(x)
				rw.RUnlock(g)
			}
			return func(g *G) {
				r1 := g.Go(reader)
				r2 := g.Go(reader)
				w := g.Go(func(g *G) {
					rw.Lock(g)
					g.Store(x, 1)
					rw.Unlock(g)
				})
				g.Join(r1)
				g.Join(r2)
				g.Join(w)
			}
		})
		wantRacy(t, res)
	}

	// Unlocked reader: racy.
	sawRace := false
	for seed := int64(0); seed < 8; seed++ {
		var x mem.Addr
		res := runProg(t, seed, func(p *Program) func(*G) {
			x = p.Alloc("x", 1)
			rw := p.NewRWMutex()
			return func(g *G) {
				r := g.Go(func(g *G) { _ = g.Load(x) })
				w := g.Go(func(g *G) {
					rw.Lock(g)
					g.Store(x, 1)
					rw.Unlock(g)
				})
				g.Join(r)
				g.Join(w)
			}
		})
		if len(res.RacyAddrs) > 0 {
			wantRacy(t, res, x)
			sawRace = true
		}
	}
	if !sawRace {
		t.Fatal("unlocked-reader variant never raced across seeds")
	}
}

// Transitive ordering across three goroutines through two channels.
func TestTransitiveChannelChain(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		res := runProg(t, seed, func(p *Program) func(*G) {
			x := p.Alloc("x", 1)
			ab := p.NewChan(0)
			bc := p.NewChan(0)
			return func(g *G) {
				b := g.Go(func(g *G) {
					if _, ok := ab.Recv(g); !ok {
						panic("recv ab")
					}
					bc.Send(g, 1)
				})
				c := g.Go(func(g *G) {
					if _, ok := bc.Recv(g); !ok {
						panic("recv bc")
					}
					_ = g.Load(x)
				})
				g.Store(x, 1)
				ab.Send(g, 1)
				g.Join(b)
				g.Join(c)
			}
		})
		wantRacy(t, res)
	}
}

// A deadlocked program still reports the races of its executed prefix and
// still cross-validates.
func TestDeadlockedProgramStillChecks(t *testing.T) {
	var x mem.Addr
	res := runProg(t, 1, func(p *Program) func(*G) {
		x = p.Alloc("x", 1)
		ch := p.NewChan(0)
		return func(g *G) {
			c := g.Go(func(g *G) {
				g.Store(x, 1)
				ch.Recv(g) // never paired: deadlocks
			})
			g.Store(x, 2)
			g.Join(c) // c never exits
		}
	})
	if !res.Deadlocked {
		t.Fatal("want Deadlocked")
	}
	wantRacy(t, res, x)
}

// Same seed, same program: byte-identical trace and race set. Different
// seeds may schedule differently but must stay internally consistent.
func TestDeterministicPerSeed(t *testing.T) {
	build := func(seed int64) *Result {
		p := New(Config{Seed: seed, Detect: true, MaxGs: 8})
		x := p.Alloc("x", 1)
		mu := p.NewMutex()
		return p.Run(func(g *G) {
			a := g.Go(func(g *G) { g.Store(x, 1) })
			b := g.Go(func(g *G) {
				mu.Lock(g)
				g.Store(x, 2)
				mu.Unlock(g)
			})
			g.Join(a)
			g.Join(b)
		})
	}
	r1, r2 := build(7), build(7)
	if !reflect.DeepEqual(r1.Trace, r2.Trace) {
		t.Fatal("same seed produced different traces")
	}
	if fmt.Sprint(r1.Races) != fmt.Sprint(r2.Races) {
		t.Fatalf("same seed produced different races:\n%v\n%v", r1.Races, r2.Races)
	}
}

// The knowledge-horizon GC retires checked records on a long well-locked
// run without losing the planted race at the end.
func TestHorizonGC(t *testing.T) {
	p := New(Config{Seed: 1, Detect: true, MaxGs: 8})
	x := p.Alloc("x", 1)
	y := p.Alloc("y", 1)
	mu := p.NewMutex()
	res := p.Run(func(g *G) {
		worker := func(g *G) {
			for i := 0; i < 200; i++ {
				mu.Lock(g)
				g.Store(x, g.Load(x)+1)
				mu.Unlock(g)
			}
			g.Store(y, 1) // unsynchronized: the planted race
		}
		a := g.Go(worker)
		b := g.Go(worker)
		g.Join(a)
		g.Join(b)
	})
	if res.Stats.RecordsGCed == 0 {
		t.Fatal("horizon GC never retired a record")
	}
	wantRacy(t, res, y)
	hb := RacyAddrsHB(res.Trace, res.NumGs)
	if !addrsEqual(res.RacyAddrs, hb) {
		t.Fatalf("cross-validation mismatch after GC: %v vs %v", res.RacyAddrs, hb)
	}
}

// Symbol resolution maps racy addresses back to Alloc names.
func TestSymbolAt(t *testing.T) {
	p := New(Config{Seed: 0, Detect: true})
	_ = p.Alloc("a", 1)
	arr := p.Alloc("arr", 4)
	res := p.Run(func(g *G) {})
	if name, ok := res.SymbolAt(arr + 2*mem.WordSize); !ok || name != "arr[2]" {
		t.Fatalf("SymbolAt = %q, %v", name, ok)
	}
	if _, ok := res.SymbolAt(arr + 100*mem.WordSize); ok {
		t.Fatal("out-of-range address resolved")
	}
}

// Detection off still records the trace (for replay) but no intervals.
func TestDetectOff(t *testing.T) {
	p := New(Config{Seed: 0, Detect: false})
	x := p.Alloc("x", 1)
	res := p.Run(func(g *G) {
		c := g.Go(func(g *G) { g.Store(x, 1) })
		g.Store(x, 2)
		g.Join(c)
	})
	if len(res.Races) != 0 || res.Stats.Intervals != 0 {
		t.Fatalf("detect-off run produced races/intervals: %+v", res.Stats)
	}
	if hb := RacyAddrsHB(res.Trace, res.NumGs); len(hb) != 1 || hb[0] != x {
		t.Fatalf("replay on detect-off trace = %v, want [%v]", hb, x)
	}
}
